package kecss

// Executor-equivalence regression tests: the simulator contract is that the
// executor only chooses a host-parallel schedule — programs touch per-node
// state only and delivery order is fixed by the network — so every executor
// must produce byte-identical outputs AND byte-identical Metrics
// (Rounds/Messages/Bits). A divergence here means the simulator rewrite
// broke the model, not just performance.

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/primitives"
)

// executorsUnderTest enumerates every executor the simulator ships.
func executorsUnderTest() []struct {
	name string
	exec congest.Executor
} {
	return []struct {
		name string
		exec congest.Executor
	}{
		{"sequential", congest.SequentialExecutor{}},
		{"parallel", congest.ParallelExecutor{}},
		{"sharded", congest.ShardedExecutor{}},
	}
}

// equivalenceGraphs returns the seeded instances the equivalence suite runs
// on: large enough to engage the worker pool (n >= its inline cutoff), with
// parallel-edge multigraph structure mixed in via RandomKConnected.
func equivalenceGraphs(tb testing.TB) []*graph.Graph {
	tb.Helper()
	rng := rand.New(rand.NewSource(99))
	return []*graph.Graph{
		graph.RandomKConnected(128, 2, 256, rng, graph.RandomWeights(rng, 1000)),
		graph.Grid(8, 24, graph.RandomWeights(rng, 50)),
		graph.Cycle(200, graph.UnitWeights()),
	}
}

func TestExecutorEquivalenceBoruvkaMST(t *testing.T) {
	for gi, g := range equivalenceGraphs(t) {
		var want *mst.Result
		for _, tc := range executorsUnderTest() {
			got, err := mst.DistributedBoruvka(g, congest.WithExecutor(tc.exec))
			if err != nil {
				t.Fatalf("graph %d %s: %v", gi, tc.name, err)
			}
			if want == nil {
				want = got
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("graph %d: %s Borůvka result diverges from sequential:\n got %+v\nwant %+v",
					gi, tc.name, got, want)
			}
		}
	}
}

func TestExecutorEquivalenceBFSTree(t *testing.T) {
	for gi, g := range equivalenceGraphs(t) {
		type out struct {
			parent     []int
			parentEdge []int
			metrics    congest.Metrics
		}
		var want *out
		for _, tc := range executorsUnderTest() {
			tr, m, err := primitives.BuildBFSTree(g, 0, congest.WithExecutor(tc.exec))
			if err != nil {
				t.Fatalf("graph %d %s: %v", gi, tc.name, err)
			}
			got := &out{parent: tr.Parent, parentEdge: tr.ParentEdge, metrics: m}
			if want == nil {
				want = got
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("graph %d: %s BFS tree diverges from sequential", gi, tc.name)
			}
		}
	}
}

func TestExecutorEquivalenceSolve2ECSS(t *testing.T) {
	for gi, g := range equivalenceGraphs(t) {
		var want *core.TwoECSSResult
		for _, tc := range executorsUnderTest() {
			got, err := core.Solve2ECSS(g, core.TwoECSSOptions{
				Rng:         rand.New(rand.NewSource(7)),
				SimulateMST: true,
				Executor:    tc.exec,
			})
			if err != nil {
				t.Fatalf("graph %d %s: %v", gi, tc.name, err)
			}
			if want == nil {
				want = got
				continue
			}
			if !reflect.DeepEqual(got.Edges, want.Edges) || got.Weight != want.Weight ||
				got.Rounds != want.Rounds || got.MSTWeight != want.MSTWeight {
				t.Errorf("graph %d: %s 2-ECSS diverges from sequential:\n got edges=%v w=%d rounds=%d\nwant edges=%v w=%d rounds=%d",
					gi, tc.name, got.Edges, got.Weight, got.Rounds, want.Edges, want.Weight, want.Rounds)
			}
		}
	}
}

// TestExecutorEquivalenceWithArena re-runs the Borůvka comparison with every
// network of a run drawing from one shared arena, proving buffer recycling
// does not leak state between runs or executors.
func TestExecutorEquivalenceWithArena(t *testing.T) {
	for gi, g := range equivalenceGraphs(t) {
		arena := congest.NewArena()
		var want *mst.Result
		for _, tc := range executorsUnderTest() {
			// Two runs per executor through the same arena: the second must
			// see no trace of the first.
			for rep := 0; rep < 2; rep++ {
				got, err := mst.DistributedBoruvka(g,
					congest.WithExecutor(tc.exec), congest.WithArena(arena))
				if err != nil {
					t.Fatalf("graph %d %s rep %d: %v", gi, tc.name, rep, err)
				}
				if want == nil {
					want = got
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("graph %d: %s rep %d with arena diverges", gi, tc.name, rep)
				}
			}
		}
	}
}
