package kecss

// Micro-benchmarks for the §5 3-ECSS augmentation loop and the incremental
// cycle-space labeling engine that now drives it. These are the benches the
// CI 3-ECSS bench-smoke step watches: BENCH_3ecss.json is generated from
// their output and the job fails if allocs/op exceeds the pinned ceilings
// (see .github/workflows/ci.yml).
//
// RandomKConnected(n, 3, 2n) is the instance family: guaranteed
// 3-edge-connected with enough surplus edges that the augmentation loop has
// a real candidate pool at every iteration.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/congest"
	"repro/internal/cycles"
	"repro/internal/graph"
)

func bench3ECSSGraph(n int) *graph.Graph {
	rng := rand.New(rand.NewSource(int64(3000 + n)))
	return graph.RandomKConnected(n, 3, 2*n, rng, graph.UnitWeights())
}

func BenchmarkMicro_Solve3ECSSEndToEnd(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			g := bench3ECSSGraph(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Solve3ECSSUnweighted(g, WithSeed(int64(i)))
				if err != nil {
					b.Fatal(err)
				}
				if res.Size == 0 {
					b.Fatal("empty result")
				}
			}
		})
	}
}

// BenchmarkMicro_Solve3ECSSEndToEndLarge is the opt-in n=10^4 scale bench:
// one cold end-to-end solve per op (~4 minutes; run with -benchtime 1x).
// The regular bench smoke's regex excludes it; the `large-bench` CI job
// (workflow_dispatch, or a commit message containing [large-bench]) runs it
// and appends the row to BENCH_cuts.json with allocs/op and ns/op ceilings
// enforced by benchjson.
func BenchmarkMicro_Solve3ECSSEndToEndLarge(b *testing.B) {
	for _, n := range []int{10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			rng := rand.New(rand.NewSource(int64(13000)))
			g := graph.RandomKConnected(n, 3, 2*n, rng, graph.UnitWeights())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Solve3ECSSUnweighted(g, WithSeed(int64(i)))
				if err != nil {
					b.Fatal(err)
				}
				if res.Size == 0 {
					b.Fatal("empty result")
				}
			}
		})
	}
}

// BenchmarkMicro_Solve3ECSSEndToEndReference is the labeling-strategy
// ablation: the same solves driven through the retained from-scratch
// per-iteration label scan (results are identical; see the equivalence
// corpus). CI's bench regex anchors to the non-Reference benchmarks, so
// this never runs in CI — it is the live "how much does incrementality buy
// on its own" column.
func BenchmarkMicro_Solve3ECSSEndToEndReference(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			g := bench3ECSSGraph(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Solve3ECSSUnweighted(g, WithSeed(int64(i)), WithReferenceLabeling()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMicro_IncrementalLabelUpdate times one warm engine update step —
// AddEdges of a single candidate (label sample + fundamental-cycle XOR +
// count maintenance), one CoverCount query, and the O(1) termination
// predicate — on a 512-vertex host. The engine is rebuilt (outside the
// timer, arenas recycled) whenever the candidate pool is exhausted; a warm
// step must stay allocation-free up to amortized count-map growth.
func BenchmarkMicro_IncrementalLabelUpdate(b *testing.B) {
	b.ReportAllocs()
	const n = 512
	rng := rand.New(rand.NewSource(9))
	g := graph.New(n)
	base := make([]int, 0, n)
	for v := 0; v < n; v++ {
		base = append(base, g.AddEdge(v, (v+1)%n, 1))
	}
	cands := make([]int, 0, 3*n)
	for len(cands) < 3*n {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			cands = append(cands, g.AddEdge(u, v, 1))
		}
	}
	labelArena := cycles.NewLabelArena()
	simArena := congest.NewArena()
	rebuilds := int64(0)
	newEngine := func() *cycles.Incremental {
		rebuilds++
		inc, err := cycles.NewIncremental(g, base, 48, rand.New(rand.NewSource(rebuilds)),
			labelArena, congest.WithArena(simArena))
		if err != nil {
			b.Fatal(err)
		}
		return inc
	}
	inc := newEngine()
	next := 0
	var sink int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if next == len(cands) {
			b.StopTimer()
			inc.Release()
			inc = newEngine()
			next = 0
			b.StartTimer()
		}
		id := cands[next]
		next++
		e := g.Edge(id)
		sink += inc.CoverCount(e.U, e.V)
		inc.AddEdges(cands[next-1 : next])
		if inc.ThreeEdgeConnected() {
			sink++
		}
	}
	b.StopTimer()
	if sink == 0 {
		b.Fatal("no coverage observed")
	}
}
