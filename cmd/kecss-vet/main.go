// Command kecss-vet is the repo's static-contract multichecker: it runs
// the four project-specific analyzers (lockcheck, determcheck, alloccheck,
// arenacheck — see internal/analysis for the contracts and the annotation
// conventions) over a package pattern and exits non-zero if any contract
// is violated.
//
// Usage:
//
//	go run ./cmd/kecss-vet ./...
//	go run ./cmd/kecss-vet -lockcheck=false ./internal/core/
//
// Diagnostics are file:line:col, one per line, grep- and editor-friendly.
// The loader reuses the go build cache (go list -export), so a warm run
// costs roughly one type-check of the tree; CI runs it as a blocking step
// before the bench smokes.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/alloccheck"
	"repro/internal/analysis/arenacheck"
	"repro/internal/analysis/determcheck"
	"repro/internal/analysis/lockcheck"
)

func main() {
	all := []*analysis.Analyzer{
		lockcheck.Analyzer,
		determcheck.Analyzer,
		alloccheck.Analyzer,
		arenacheck.Analyzer,
	}
	enabled := make(map[string]*bool, len(all))
	for _, a := range all {
		enabled[a.Name] = flag.Bool(a.Name, true, a.Doc)
	}
	dir := flag.String("C", ".", "directory to load packages from")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: kecss-vet [flags] [packages]\n\nkecss-vet statically enforces the repo's lock, determinism and allocation\ncontracts. See internal/analysis for annotation conventions.\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	var run []*analysis.Analyzer
	for _, a := range all {
		if *enabled[a.Name] {
			run = append(run, a)
		}
	}
	prog, pkgs, err := analysis.Load(*dir, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kecss-vet:", err)
		os.Exit(2)
	}
	diags, errs := analysis.RunAnalyzers(prog, pkgs, run)
	for _, e := range errs {
		fmt.Fprintln(os.Stderr, "kecss-vet:", e)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	switch {
	case len(errs) > 0:
		os.Exit(2)
	case len(diags) > 0:
		os.Exit(1)
	}
}
