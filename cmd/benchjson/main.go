// benchjson converts `go test -bench` output (stdin) into a JSON report and
// optionally enforces allocation ceilings, for the CI bench-smoke step:
//
//	go test -run '^$' -bench '...' -benchtime 200ms . | \
//	    go run ./cmd/benchjson -out BENCH_cuts.json \
//	        -max-allocs 'BenchmarkMicro_EnumerateMinCuts=4096'
//
// Each -max-allocs (-max-bytes, -max-ns) entry is substring=ceiling; every
// parsed benchmark whose name contains the substring must report allocs/op
// (bytes/op, ns/op) <= ceiling or the tool exits non-zero (after still
// writing the report, so the artifact survives for debugging). The
// allocation ceilings pin a warm path's behaviour: a regression that
// reintroduces per-trial or per-iteration allocations trips them
// immediately. The ns/op ceilings are the coarse guard for the opt-in
// large-bench smoke, where a single n=10^4 solve at -benchtime 1x is the
// whole measurement.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

type ceiling struct {
	substr string
	max    float64
}

type ceilingList []ceiling

func (c *ceilingList) String() string { return fmt.Sprint(*c) }

func (c *ceilingList) Set(v string) error {
	sub, maxStr, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want substring=ceiling, got %q", v)
	}
	max, err := strconv.ParseFloat(maxStr, 64)
	if err != nil {
		return fmt.Errorf("bad ceiling in %q: %v", v, err)
	}
	*c = append(*c, ceiling{substr: sub, max: max})
	return nil
}

// parseLine parses one benchmark result line, e.g.
//
//	BenchmarkFoo/case=1-8   	 100	 123456 ns/op	 789 B/op	 12 allocs/op
func parseLine(line string) (benchResult, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return benchResult{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return benchResult{}, false
	}
	iters, err1 := strconv.ParseInt(fields[1], 10, 64)
	ns, err2 := strconv.ParseFloat(fields[2], 64)
	if err1 != nil || err2 != nil {
		return benchResult{}, false
	}
	r := benchResult{Name: fields[0], Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		}
	}
	return r, true
}

func main() {
	out := flag.String("out", "", "write the JSON report to this file (default stdout)")
	var ceilings, byteCeilings, nsCeilings ceilingList
	flag.Var(&ceilings, "max-allocs", "substring=ceiling; fail if a matching benchmark exceeds ceiling allocs/op (repeatable)")
	flag.Var(&byteCeilings, "max-bytes", "substring=ceiling; fail if a matching benchmark exceeds ceiling bytes/op (repeatable)")
	flag.Var(&nsCeilings, "max-ns", "substring=ceiling; fail if a matching benchmark exceeds ceiling ns/op (repeatable; a coarse wall-clock guard for the opt-in large benches — set it with several-x headroom over the measured baseline, since CI machines vary)")
	flag.Parse()

	var results []benchResult
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		// Pass the raw output through for the build log — on stderr, so the
		// stdout-default mode still emits a single parseable JSON document.
		fmt.Fprintln(os.Stderr, line)
		if r, ok := parseLine(line); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	blob, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if *out == "" {
		os.Stdout.Write(blob)
	} else if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	failed := false
	check := func(cs ceilingList, unit string, value func(benchResult) float64) {
		for _, c := range cs {
			matched := false
			for _, r := range results {
				if !strings.Contains(r.Name, c.substr) {
					continue
				}
				matched = true
				if v := value(r); v > c.max {
					fmt.Fprintf(os.Stderr, "benchjson: %s %s %.0f exceeds ceiling %.0f\n",
						r.Name, unit, v, c.max)
					failed = true
				}
			}
			if !matched {
				fmt.Fprintf(os.Stderr, "benchjson: ceiling %q matched no benchmark\n", c.substr)
				failed = true
			}
		}
	}
	check(ceilings, "allocs/op", func(r benchResult) float64 { return r.AllocsPerOp })
	check(byteCeilings, "bytes/op", func(r benchResult) float64 { return r.BytesPerOp })
	check(nsCeilings, "ns/op", func(r benchResult) float64 { return r.NsPerOp })
	if failed {
		os.Exit(1)
	}
}
