// Command kecss runs one of the paper's algorithms on a generated graph and
// prints the result with verification.
//
// Usage:
//
//	kecss -algo 2ecss  -gen random -n 200 -seed 1
//	kecss -algo kecss  -k 3 -gen random -n 80
//	kecss -algo 3ecss  -gen chain -n 60
//	kecss -algo tap    -gen grid -n 100
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	kecss "repro"
	"repro/internal/graph"
	"repro/internal/mst"
)

func main() {
	var (
		algo    = flag.String("algo", "2ecss", "algorithm: 2ecss | kecss | 3ecss | tap")
		gen     = flag.String("gen", "random", "graph family: random | grid | harary | chain | geometric")
		n       = flag.Int("n", 100, "approximate vertex count")
		k       = flag.Int("k", 3, "connectivity target (kecss/3ecss generators)")
		seed    = flag.Int64("seed", 1, "random seed (graph and algorithm)")
		maxW    = flag.Int64("maxw", 100, "maximum edge weight (1 = unweighted)")
		verbose = flag.Bool("v", false, "print per-level / breakdown details")
	)
	flag.Parse()
	if err := run(*algo, *gen, *n, *k, *seed, *maxW, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "kecss:", err)
		os.Exit(1)
	}
}

func buildGraph(gen string, n, k int, seed, maxW int64) (*graph.Graph, error) {
	rng := rand.New(rand.NewSource(seed))
	wf := graph.RandomWeights(rng, maxW)
	if maxW <= 1 {
		wf = graph.UnitWeights()
	}
	switch gen {
	case "random":
		return graph.RandomKConnected(n, k, 2*n, rng, wf), nil
	case "grid":
		cols := n / 4
		if cols < 2 {
			cols = 2
		}
		return graph.Grid(4, cols, wf), nil
	case "harary":
		return graph.Harary(k, n, wf), nil
	case "chain":
		length := n / 6
		if length < 2 {
			length = 2
		}
		return graph.CliqueChain(length, 6, k, wf), nil
	case "geometric":
		return graph.RandomGeometric(n, 0.25, k, rng), nil
	default:
		return nil, fmt.Errorf("unknown generator %q", gen)
	}
}

func run(algo, gen string, n, k int, seed, maxW int64, verbose bool) error {
	g, err := buildGraph(gen, n, k, seed, maxW)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %s family=%s diameter≈%d\n", g, gen, g.DiameterEstimate())

	switch algo {
	case "2ecss":
		res, err := kecss.Solve2ECSS(g, kecss.WithSeed(seed))
		if err != nil {
			return err
		}
		fmt.Printf("2-ECSS: %d edges, weight %d (MST lower bound %d), %d TAP iterations, %d rounds\n",
			len(res.Edges), res.Weight, res.MSTWeight, res.TAP.Iterations, res.Rounds)
		if verbose {
			for _, c := range res.TAP.RoundBreakdown {
				fmt.Printf("  rounds[%s] = %d\n", c.Label, c.Rounds)
			}
		}
		fmt.Printf("verified 2-edge-connected: %v\n", kecss.VerifyKEdgeConnected(g, res.Edges, 2))

	case "kecss":
		res, err := kecss.SolveKECSS(g, k, kecss.WithSeed(seed))
		if err != nil {
			return err
		}
		fmt.Printf("%d-ECSS: %d edges, weight %d, %d Aug iterations, %d rounds\n",
			k, len(res.Edges), res.Weight, res.Iterations, res.Rounds)
		if verbose {
			for i, lv := range res.Levels {
				fmt.Printf("  level %d: +%d edges (w=%d) cuts=%d iters=%d rounds=%d\n",
					i+1, len(lv.Added), lv.Weight, lv.Cuts, lv.Iterations, lv.Rounds)
			}
		}
		fmt.Printf("verified %d-edge-connected: %v\n", k, kecss.VerifyKEdgeConnected(g, res.Edges, k))

	case "3ecss":
		res, err := kecss.Solve3ECSSUnweighted(g, kecss.WithSeed(seed))
		if err != nil {
			return err
		}
		fmt.Printf("3-ECSS (unweighted): %d edges (base H: %d), %d iterations, %d rounds (%d measured label rounds)\n",
			res.Size, res.BaseSize, res.Iterations, res.Rounds, res.LabelRoundsMeasured)
		fmt.Printf("size lower bound ⌈3n/2⌉ = %d\n", (3*g.N()+1)/2)
		fmt.Printf("verified 3-edge-connected: %v\n", kecss.VerifyKEdgeConnected(g, res.Edges, 3))

	case "tap":
		treeIDs, w := mst.Kruskal(g)
		res, err := kecss.SolveTAP(g, treeIDs, 0, kecss.WithSeed(seed))
		if err != nil {
			return err
		}
		fmt.Printf("TAP over MST (w=%d): augmentation %d edges, weight %d, %d iterations, %d rounds\n",
			w, len(res.Augmentation), res.Weight, res.Iterations, res.Rounds)
		all := append(treeIDs, res.Augmentation...)
		fmt.Printf("verified 2-edge-connected: %v\n", kecss.VerifyKEdgeConnected(g, all, 2))

	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}
	return nil
}
