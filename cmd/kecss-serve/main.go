// Command kecss-serve exposes the k-ECSS solver stack as an HTTP service:
// a thin frontend (admission, journal, digest-keyed result store) over a
// leased work queue, with solver capacity provided by agents — fused
// in-process by default, or attached from other processes over the broker
// API.
//
// Usage:
//
//	kecss-serve -addr :8080 -workers 4 -cache 4096 -queue 64 \
//	            -journal /var/lib/kecss/journal.wal \
//	            -store /var/lib/kecss/store
//
// Modes (-mode):
//
//	all       (default) frontend plus one in-process agent — the single-
//	          binary behavior; remote agents may still attach for extra
//	          capacity.
//	frontend  HTTP API, journal and store only. Solves wait until
//	          cmd/kecss-agent processes claim them via /broker/v1.
//
// Endpoints (see internal/server):
//
//	POST /v1/solve        synchronous solve
//	POST /v1/jobs         asynchronous solve (202 + job id)
//	GET  /v1/jobs/{id}    poll a job
//	GET  /v1/deadletters  jobs that exhausted their retry budget (?limit=N)
//	GET  /healthz         liveness (503 only once closed)
//	GET  /readyz          readiness (503 during drain; replay summary)
//	GET  /metrics         Prometheus text metrics
//	*    /broker/v1/...   work-queue API consumed by remote agents
//
// With -journal, accepted jobs survive kill -9: on restart the journal is
// replayed, finished jobs come back pollable and unfinished jobs are
// re-enqueued and solved again. With -store, results are durable too:
// a restarted frontend answers yesterday's digests from disk without a
// single re-solve.
//
// On SIGTERM/SIGINT the server stops accepting work, finishes in-flight
// solves (bounded by -drain-timeout), and exits 0 on a clean drain.
//
// Fault injection (testing only): -chaos takes a chaos plan spec (see
// internal/chaos), also readable from $KECSS_CHAOS; a planned crash exits
// with status 43.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/server"
)

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		mode         = flag.String("mode", "all", "what to run: all (frontend + fused agent) or frontend (agents attach via /broker/v1)")
		storeDir     = flag.String("store", "", "durable result-store root (empty = results die with the process)")
		workers      = flag.Int("workers", 0, "solver pool workers (0 = GOMAXPROCS)")
		solveWorkers = flag.Int("solve-workers", 0, "queue consumer goroutines (0 = pool workers)")
		cacheSize    = flag.Int("cache", 4096, "result cache entries (negative disables)")
		queueDepth   = flag.Int("queue", 0, "max in-flight jobs before 429 (0 = 4×workers)")
		jobHistory   = flag.Int("job-history", 1024, "finished async jobs kept pollable")
		journalPath  = flag.String("journal", "", "job journal path (empty = no durability)")
		leaseTTL     = flag.Duration("lease-ttl", 30*time.Second, "work-queue lease TTL")
		maxAttempts  = flag.Int("max-attempts", 5, "delivery budget before dead-lettering")
		backoffBase  = flag.Duration("backoff-base", 50*time.Millisecond, "first retry delay")
		backoffMax   = flag.Duration("backoff-max", 5*time.Second, "retry delay cap")
		seed         = flag.Int64("seed", 1, "retry-jitter seed")
		chaosSpec    = flag.String("chaos", os.Getenv("KECSS_CHAOS"), "fault-injection plan (testing only)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight solves on shutdown")
	)
	flag.Parse()

	inj, err := chaos.Parse(*chaosSpec, *seed)
	if err != nil {
		log.Fatalf("kecss-serve: %v", err)
	}
	if inj != nil {
		log.Printf("kecss-serve: FAULT INJECTION ACTIVE: %s", *chaosSpec)
	}

	s, err := server.New(server.Config{
		Workers:      *workers,
		SolveWorkers: *solveWorkers,
		CacheSize:    *cacheSize,
		QueueDepth:   *queueDepth,
		JobHistory:   *jobHistory,
		JournalPath:  *journalPath,
		LeaseTTL:     *leaseTTL,
		MaxAttempts:  *maxAttempts,
		BackoffBase:  *backoffBase,
		BackoffMax:   *backoffMax,
		Seed:         *seed,
		Chaos:        inj,
		Mode:         *mode,
		StoreDir:     *storeDir,
	})
	if err != nil {
		log.Fatalf("kecss-serve: %v", err)
	}
	if rep := s.Replay(); *journalPath != "" {
		log.Printf("kecss-serve: journal replay: %d records, %d finished jobs recovered, %d re-enqueued, %d torn bytes truncated",
			rep.Records, rep.Completed, rep.Requeued, rep.TornBytes)
	}
	hs := &http.Server{Addr: *addr, Handler: s.Handler()}

	errc := make(chan error, 1)
	go func() {
		log.Printf("kecss-serve: listening on %s (mode=%s, store=%s)", *addr, *mode, orNone(*storeDir))
		errc <- hs.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)

	select {
	case err := <-errc:
		log.Fatalf("kecss-serve: %v", err)
	case got := <-sig:
		log.Printf("kecss-serve: %v received, draining", got)
	}

	// Refuse new work (readyz → 503) before closing the listener, so load
	// balancers and in-flight keep-alive clients see the drain, then stop
	// accepting connections and wait for admitted jobs.
	s.StartDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("kecss-serve: http shutdown: %v", err)
	}
	if err := s.Drain(ctx); err != nil {
		s.Close()
		log.Fatalf("kecss-serve: %v", err)
	}
	s.Close()
	fmt.Println("kecss-serve: drain complete")
}
