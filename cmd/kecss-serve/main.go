// Command kecss-serve exposes the k-ECSS solver stack as an HTTP service:
// a thin frontend (admission, journal, digest-keyed result store) over a
// leased work queue, with solver capacity provided by agents — fused
// in-process by default, or attached from other processes over the broker
// API.
//
// Usage:
//
//	kecss-serve -addr :8080 -workers 4 -cache 4096 -queue 64 \
//	            -journal /var/lib/kecss/journal.wal \
//	            -store /var/lib/kecss/store
//
// Modes (-mode):
//
//	all       (default) frontend plus one in-process agent — the single-
//	          binary behavior; remote agents may still attach for extra
//	          capacity.
//	frontend  HTTP API, journal and store only. Solves wait until
//	          cmd/kecss-agent processes claim them via /broker/v1.
//
// Endpoints (see internal/server):
//
//	POST /v1/solve        synchronous solve
//	POST /v1/jobs         asynchronous solve (202 + job id)
//	GET  /v1/jobs/{id}    poll a job
//	GET  /v1/jobs/{id}/trace  a job's span timeline (JSON)
//	GET  /v1/deadletters  jobs that exhausted their retry budget (?limit=N)
//	GET  /debug/traces    bounded trace retention listing (recent + slowest)
//	GET  /healthz         liveness (503 only once closed)
//	GET  /readyz          readiness (503 during drain; replay summary)
//	GET  /metrics         Prometheus text metrics
//	*    /broker/v1/...   work-queue API consumed by remote agents
//	*    /debug/pprof/... net/http/pprof profiling (only with -pprof)
//
// With -journal, accepted jobs survive kill -9: on restart the journal is
// replayed, finished jobs come back pollable and unfinished jobs are
// re-enqueued and solved again. With -store, results are durable too:
// a restarted frontend answers yesterday's digests from disk without a
// single re-solve.
//
// On SIGTERM/SIGINT the server stops accepting work, finishes in-flight
// solves (bounded by -drain-timeout), and exits 0 on a clean drain.
//
// Fault injection (testing only): -chaos takes a chaos plan spec (see
// internal/chaos), also readable from $KECSS_CHAOS; a planned crash exits
// with status 43.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/server"
)

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

func parseLogLevel(s string) (slog.Level, error) {
	var lvl slog.Level
	err := lvl.UnmarshalText([]byte(s))
	return lvl, err
}

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		mode         = flag.String("mode", "all", "what to run: all (frontend + fused agent) or frontend (agents attach via /broker/v1)")
		storeDir     = flag.String("store", "", "durable result-store root (empty = results die with the process)")
		workers      = flag.Int("workers", 0, "solver pool workers (0 = GOMAXPROCS)")
		solveWorkers = flag.Int("solve-workers", 0, "queue consumer goroutines (0 = pool workers)")
		cacheSize    = flag.Int("cache", 4096, "result cache entries (negative disables)")
		queueDepth   = flag.Int("queue", 0, "max in-flight jobs before 429 (0 = 4×workers)")
		jobHistory   = flag.Int("job-history", 1024, "finished async jobs kept pollable")
		journalPath  = flag.String("journal", "", "job journal path (empty = no durability)")
		leaseTTL     = flag.Duration("lease-ttl", 30*time.Second, "work-queue lease TTL")
		maxAttempts  = flag.Int("max-attempts", 5, "delivery budget before dead-lettering")
		backoffBase  = flag.Duration("backoff-base", 50*time.Millisecond, "first retry delay")
		backoffMax   = flag.Duration("backoff-max", 5*time.Second, "retry delay cap")
		seed         = flag.Int64("seed", 1, "retry-jitter seed")
		chaosSpec    = flag.String("chaos", os.Getenv("KECSS_CHAOS"), "fault-injection plan (testing only)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight solves on shutdown")
		logLevel     = flag.String("log-level", "info", "minimum log level (debug, info, warn, error)")
		enablePprof  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (opt-in; exposes goroutine and heap internals)")
		traceRecent  = flag.Int("trace-recent", 0, "finished job traces retained by recency (0 = default)")
		traceSlow    = flag.Int("trace-slow", 0, "slowest finished job traces retained beyond recency (0 = default)")
	)
	flag.Parse()

	lvl, err := parseLogLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kecss-serve: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(1)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	inj, err := chaos.Parse(*chaosSpec, *seed)
	if err != nil {
		fatal("bad chaos spec", "err", err)
	}
	if inj != nil {
		logger.Warn("FAULT INJECTION ACTIVE", "plan", *chaosSpec)
	}

	s, err := server.New(server.Config{
		Workers:      *workers,
		SolveWorkers: *solveWorkers,
		CacheSize:    *cacheSize,
		QueueDepth:   *queueDepth,
		JobHistory:   *jobHistory,
		JournalPath:  *journalPath,
		LeaseTTL:     *leaseTTL,
		MaxAttempts:  *maxAttempts,
		BackoffBase:  *backoffBase,
		BackoffMax:   *backoffMax,
		Seed:         *seed,
		Chaos:        inj,
		Mode:         *mode,
		StoreDir:     *storeDir,
		Logger:       logger,
		TraceRecent:  *traceRecent,
		TraceSlow:    *traceSlow,
	})
	if err != nil {
		fatal("startup failed", "err", err)
	}
	if rep := s.Replay(); *journalPath != "" {
		logger.Info("journal replay",
			"records", rep.Records, "recovered", rep.Completed,
			"requeued", rep.Requeued, "torn_bytes", rep.TornBytes)
	}
	handler := s.Handler()
	if *enablePprof {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	hs := &http.Server{Addr: *addr, Handler: handler}

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "mode", *mode, "store", orNone(*storeDir))
		errc <- hs.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)

	select {
	case err := <-errc:
		fatal("http server failed", "err", err)
	case got := <-sig:
		logger.Info("draining", "signal", got.String())
	}

	// Refuse new work (readyz → 503) before closing the listener, so load
	// balancers and in-flight keep-alive clients see the drain, then stop
	// accepting connections and wait for admitted jobs.
	s.StartDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		logger.Warn("http shutdown", "err", err)
	}
	if err := s.Drain(ctx); err != nil {
		s.Close()
		fatal("drain interrupted", "err", err)
	}
	s.Close()
	// CI and the smoke scripts grep for this exact line; keep it on stdout.
	fmt.Println("kecss-serve: drain complete")
}
