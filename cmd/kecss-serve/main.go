// Command kecss-serve exposes the k-ECSS solver stack as an HTTP service:
// a shared solver pool behind a content-addressed result cache, with
// bounded-queue backpressure, Prometheus metrics and graceful drain.
//
// Usage:
//
//	kecss-serve -addr :8080 -workers 4 -cache 4096 -queue 64
//
// Endpoints (see internal/server):
//
//	POST /v1/solve      synchronous solve
//	POST /v1/jobs       asynchronous solve (202 + job id)
//	GET  /v1/jobs/{id}  poll a job
//	GET  /healthz       liveness (503 while draining)
//	GET  /metrics       Prometheus text metrics
//
// On SIGTERM/SIGINT the server stops accepting work, finishes in-flight
// solves (bounded by -drain-timeout), and exits 0 on a clean drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "solver pool workers (0 = GOMAXPROCS)")
		cacheSize    = flag.Int("cache", 4096, "result cache entries (negative disables)")
		queueDepth   = flag.Int("queue", 0, "max admitted solves before 429 (0 = 4×workers)")
		jobHistory   = flag.Int("job-history", 1024, "finished async jobs kept pollable")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight solves on shutdown")
	)
	flag.Parse()

	s := server.New(server.Config{
		Workers:    *workers,
		CacheSize:  *cacheSize,
		QueueDepth: *queueDepth,
		JobHistory: *jobHistory,
	})
	hs := &http.Server{Addr: *addr, Handler: s.Handler()}

	errc := make(chan error, 1)
	go func() {
		log.Printf("kecss-serve: listening on %s", *addr)
		errc <- hs.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)

	select {
	case err := <-errc:
		log.Fatalf("kecss-serve: %v", err)
	case got := <-sig:
		log.Printf("kecss-serve: %v received, draining", got)
	}

	// Refuse new work (healthz → 503) before closing the listener, so load
	// balancers and in-flight keep-alive clients see the drain, then stop
	// accepting connections and wait for admitted solves.
	s.StartDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("kecss-serve: http shutdown: %v", err)
	}
	if err := s.Drain(ctx); err != nil {
		s.Close()
		log.Fatalf("kecss-serve: %v", err)
	}
	s.Close()
	fmt.Println("kecss-serve: drain complete")
}
