package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/promtext"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// buildAgentBinary compiles cmd/kecss-agent once per test run.
var buildAgentBinary = sync.OnceValues(func() (string, error) {
	dir, err := os.MkdirTemp("", "kecss-agent-test")
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, "kecss-agent")
	out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/kecss-agent").CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("go build: %v\n%s", err, out)
	}
	return bin, nil
})

// startProc launches a binary with explicit args and wires up the same
// lifecycle plumbing as startServe (log capture, cleanup kill, done channel).
func startProc(t *testing.T, name, bin string, args ...string) *serveProc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var logs bytes.Buffer
	cmd.Stdout = &logs
	cmd.Stderr = &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &serveProc{cmd: cmd, done: make(chan error, 1)}
	go func() { p.done <- cmd.Wait() }()
	t.Cleanup(func() {
		select {
		case <-p.done:
		default:
			cmd.Process.Kill()
			<-p.done
		}
		if t.Failed() {
			t.Logf("%s output:\n%s", name, logs.String())
		}
	})
	return p
}

func startFrontend(t *testing.T, bin, wal, storeDir string, port int) *serveProc {
	t.Helper()
	p := startProc(t, "kecss-serve", bin,
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-mode", "frontend",
		"-journal", wal,
		"-store", storeDir,
		"-queue", "64",
		"-lease-ttl", "1s",
		"-backoff-base", "10ms",
		"-backoff-max", "100ms",
		"-seed", "1",
	)
	p.base = fmt.Sprintf("http://127.0.0.1:%d", port)
	return p
}

// startAgent launches a kecss-agent; adminPort != 0 adds the -admin
// listener so the test can scrape the agent's own /metrics.
func startAgent(t *testing.T, bin, frontend, chaosSpec string, adminPort int) *serveProc {
	t.Helper()
	args := []string{
		"-frontend", frontend,
		"-workers", "1",
		"-claim-wait", "2s",
		"-claim-retry", "100ms",
		"-seed", "1",
		"-chaos", chaosSpec,
	}
	if adminPort != 0 {
		args = append(args, "-admin", fmt.Sprintf("127.0.0.1:%d", adminPort))
	}
	return startProc(t, "kecss-agent", bin, args...)
}

// getBody fetches a URL, failing the test on transport or non-200.
func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, body)
	}
	return body
}

// fetchJobTrace polls GET /v1/jobs/{id}/trace until the trace is complete.
func fetchJobTrace(t *testing.T, base, id string, timeout time.Duration) *telemetry.Data {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var d telemetry.Data
		if err := json.Unmarshal(getBody(t, base+"/v1/jobs/"+id+"/trace"), &d); err != nil {
			t.Fatalf("job %s: bad trace payload: %v", id, err)
		}
		if d.Complete {
			return &d
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace for %s never completed (%d spans)", id, len(d.Spans))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func namedSpans(d *telemetry.Data, name string) []telemetry.Span {
	var out []telemetry.Span
	for _, s := range d.Spans {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

func postSolve(t *testing.T, base string, req *wire.SolveRequest, timeout time.Duration) *wire.SolveResponse {
	t.Helper()
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: timeout}
	resp, err := client.Post(base+"/v1/solve", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/solve = %d: %s", resp.StatusCode, body)
	}
	var out wire.SolveResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	return &out
}

// TestMultiProcessSmoke runs the split deployment end to end: one frontend
// process (journal + store, no fused agent) and two kecss-agent processes
// claiming over HTTP. One agent is SIGKILLed while stalled mid-solve; its
// lease expires and the surviving agent finishes the job. Every acked job
// must complete exactly once (one done record in the journal) with digests
// byte-identical to direct in-process solves, and a fresh frontend sharing
// only the store — not the journal — must answer those digests from disk
// without any agent attached.
func TestMultiProcessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke spawns real processes; skipped in -short")
	}
	serveBin, err := buildServeBinary()
	if err != nil {
		t.Fatal(err)
	}
	agentBin, err := buildAgentBinary()
	if err != nil {
		t.Fatal(err)
	}

	jobs := crashWorkload(t, 12)
	dir := t.TempDir()
	wal := filepath.Join(dir, "journal.wal")
	storeDir := filepath.Join(dir, "store")

	fe := startFrontend(t, serveBin, wal, storeDir, freePort(t))
	fe.waitReady(t, 10*time.Second)

	// The victim stalls 60s into its first solve — a deterministic
	// mid-solve hang to SIGKILL — while the survivor runs clean with an
	// admin listener for the metrics scrape below.
	adminPort := freePort(t)
	victim := startAgent(t, agentBin, fe.base, "stall@worker.solve#1:60s", 0)
	survivor := startAgent(t, agentBin, fe.base, "", adminPort)
	_ = survivor

	acked := make(map[string]int)
	for i, job := range jobs {
		id := submitAsync(t, fe.base, job.req)
		if id == "" {
			t.Fatalf("job %d not acknowledged by a healthy frontend", i)
		}
		acked[id] = i
	}

	// Give the victim time to claim and enter its stall, then kill it
	// mid-solve. The held lease expires (1s TTL) and the job redelivers.
	time.Sleep(500 * time.Millisecond)
	victim.cmd.Process.Signal(syscall.SIGKILL)
	<-victim.done
	victim.done <- nil

	for id, i := range acked {
		res := pollDone(t, fe.base, id, 60*time.Second)
		if res == nil {
			t.Fatalf("job %s done without result", id)
		}
		if res.Digest != jobs[i].digest || res.ResultDigest != jobs[i].resultDigest {
			t.Errorf("job %s digests (%s, %s), want (%s, %s)",
				id, res.Digest, res.ResultDigest, jobs[i].digest, jobs[i].resultDigest)
		}
	}

	// The SIGKILL-recovered job's trace stitches both deliveries into one
	// timeline: the victim's claim closed as expired, a lease.expired
	// marker, and the survivor's agent subtree grafted under attempt 2 —
	// across three real processes. Every other job shows one clean claim.
	recovered := 0
	for id := range acked {
		d := fetchJobTrace(t, fe.base, id, 10*time.Second)
		claims := namedSpans(d, "claim")
		switch len(claims) {
		case 1:
			continue
		case 2:
			recovered++
		default:
			t.Fatalf("job %s has %d claim spans, want 1 or 2", id, len(claims))
		}
		if claims[0].Attempt != 1 || claims[1].Attempt != 2 {
			t.Errorf("job %s claim attempts = %d, %d; want 1, 2", id, claims[0].Attempt, claims[1].Attempt)
		}
		if a, ok := claims[0].Attr("expired"); !ok || !a.Bool {
			t.Errorf("job %s: first claim not marked expired: %+v", id, claims[0])
		}
		if len(namedSpans(d, "lease.expired")) != 1 {
			t.Errorf("job %s: trace missing the lease.expired marker", id)
		}
		if claims[1].Start < claims[0].End {
			t.Errorf("job %s: attempt 2 (start %d) overlaps attempt 1 (end %d)", id, claims[1].Start, claims[0].End)
		}
		agentOK := false
		for _, a := range namedSpans(d, "agent") {
			if a.Parent == claims[1].ID && a.Process == "agent" {
				agentOK = true
			}
		}
		if !agentOK {
			t.Errorf("job %s: no agent subtree under attempt 2's claim", id)
		}
	}
	if recovered != 1 {
		t.Errorf("%d jobs show a redelivered trace, want exactly 1 (the SIGKILLed solve)", recovered)
	}

	// Both processes' /metrics speak valid exposition format.
	feMetrics := getBody(t, fe.base+"/metrics")
	if err := promtext.Lint(feMetrics); err != nil {
		t.Errorf("frontend /metrics fails exposition lint: %v", err)
	}
	agentMetrics := getBody(t, fmt.Sprintf("http://127.0.0.1:%d/metrics", adminPort))
	if err := promtext.Lint(agentMetrics); err != nil {
		t.Errorf("agent /metrics fails exposition lint: %v", err)
	}
	for _, want := range []string{"kecss_agent_claims_total", "kecss_agent_solves_total", "kecss_agent_solve_seconds_bucket"} {
		if !bytes.Contains(agentMetrics, []byte(want)) {
			t.Errorf("agent /metrics missing %s:\n%s", want, agentMetrics)
		}
	}

	// Exactly-once on the durable record: one done record per acked job
	// across every delivery, including the redelivered one.
	fe.cmd.Process.Signal(syscall.SIGTERM)
	<-fe.done
	fe.done <- nil
	rep, err := journal.ReadAll(wal)
	if err != nil {
		t.Fatal(err)
	}
	doneCount := make(map[string]int)
	for _, rec := range rep.Records {
		if rec.Type == journal.TypeDone {
			doneCount[rec.JobID]++
		}
	}
	for id := range acked {
		if doneCount[id] != 1 {
			t.Errorf("job %s has %d done records, want exactly 1", id, doneCount[id])
		}
	}

	// A frontend sharing only the result store (fresh journal, zero agents)
	// answers the same digests from disk: the store, not the journal or any
	// solver, is the source of those bytes.
	fe2 := startFrontend(t, serveBin, filepath.Join(dir, "journal2.wal"), storeDir, freePort(t))
	fe2.waitReady(t, 10*time.Second)
	for i := range 3 {
		res := postSolve(t, fe2.base, jobs[i].req, 5*time.Second)
		if !res.Cached {
			t.Errorf("restarted frontend re-solved job %d instead of serving the store", i)
		}
		if res.Digest != jobs[i].digest || res.ResultDigest != jobs[i].resultDigest {
			t.Errorf("store-served job %d digests (%s, %s), want (%s, %s)",
				i, res.Digest, res.ResultDigest, jobs[i].digest, jobs[i].resultDigest)
		}
	}
}
