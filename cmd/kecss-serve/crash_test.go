package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	kecss "repro"
	"repro/internal/chaos"
	"repro/internal/graph"
	"repro/internal/journal"
	"repro/internal/wire"
)

// buildServeBinary compiles this package once per test run.
var buildServeBinary = sync.OnceValues(func() (string, error) {
	dir, err := os.MkdirTemp("", "kecss-serve-test")
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, "kecss-serve")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("go build: %v\n%s", err, out)
	}
	return bin, nil
})

func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

// crashJob is one request of the workload plus its expected result digest
// from a direct in-process solve (the byte-identity oracle).
type crashJob struct {
	req          *wire.SolveRequest
	digest       string
	resultDigest string
}

func crashWorkload(t *testing.T, n int) []crashJob {
	t.Helper()
	jobs := make([]crashJob, n)
	for i := range jobs {
		seed := int64(101 + 2*i)
		g := graph.Harary(2, 16+i, graph.RandomWeights(rand.New(rand.NewSource(seed)), 30))
		spec := wire.SolveSpec{Solver: "2ecss", Seed: seed}
		res, err := kecss.Solve2ECSS(g, kecss.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = crashJob{
			req:          &wire.SolveRequest{Graph: wire.GraphToJSON(g), SolveSpec: spec},
			digest:       wire.Digest(g, spec),
			resultDigest: wire.SolveResultDigest(res.Edges, res.Weight, res.Rounds),
		}
	}
	return jobs
}

// serveProc is one incarnation of the kecss-serve binary under test.
type serveProc struct {
	cmd  *exec.Cmd
	base string
	done chan error
}

func startServe(t *testing.T, bin, wal string, port int, chaosSpec string, seed int64) *serveProc {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-workers", "1",
		"-solve-workers", "1",
		"-journal", wal,
		"-queue", "64",
		"-lease-ttl", "500ms",
		"-backoff-base", "10ms",
		"-backoff-max", "100ms",
		"-seed", fmt.Sprint(seed),
		"-chaos", chaosSpec,
	)
	var logs bytes.Buffer
	cmd.Stdout = &logs
	cmd.Stderr = &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &serveProc{cmd: cmd, base: fmt.Sprintf("http://127.0.0.1:%d", port), done: make(chan error, 1)}
	go func() { p.done <- cmd.Wait() }()
	t.Cleanup(func() {
		select {
		case <-p.done:
		default:
			cmd.Process.Kill()
			<-p.done
		}
		if t.Failed() {
			t.Logf("kecss-serve output:\n%s", logs.String())
		}
	})
	return p
}

// waitReady polls /readyz until it answers 200 or the process exits.
func (p *serveProc) waitReady(t *testing.T, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		select {
		case err := <-p.done:
			p.done <- err
			t.Fatalf("kecss-serve exited while waiting for readiness: %v", err)
		default:
		}
		resp, err := http.Get(p.base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("kecss-serve not ready after %v", timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// exitedPlanned waits for the process to exit and reports whether the exit
// was the planned chaos crash (exit code 43).
func (p *serveProc) exitedPlanned(t *testing.T, timeout time.Duration) bool {
	t.Helper()
	select {
	case err := <-p.done:
		p.done <- err
		var ee *exec.ExitError
		if errors.As(err, &ee) {
			return ee.ExitCode() == chaos.ExitCode
		}
		return false
	case <-time.After(timeout):
		return false
	}
}

// submitAsync posts one job; it returns the acked job ID, or "" if the
// server dropped the connection (the job was never acknowledged and is
// exempt from the exactly-once contract).
func submitAsync(t *testing.T, base string, req *wire.SolveRequest) string {
	t.Helper()
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		return "" // connection dropped mid-crash: not acked
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs = %d: %s", resp.StatusCode, body)
	}
	var jr wire.JobResponse
	if err := json.Unmarshal(body, &jr); err != nil || jr.ID == "" {
		return ""
	}
	return jr.ID
}

func pollDone(t *testing.T, base, id string, timeout time.Duration) *wire.SolveResponse {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			var jr wire.JobResponse
			if resp.StatusCode == http.StatusOK && json.Unmarshal(body, &jr) == nil {
				switch jr.State {
				case wire.JobDone:
					return jr.Result
				case wire.JobFailed:
					t.Fatalf("job %s failed after restart: %s", id, jr.Error)
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s not done after %v", id, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestCrashRestartMatrix is the tentpole's integration harness: for each
// planned fault, run the real binary, inject the crash (or SIGKILL a stalled
// worker), restart on the same journal, and assert every acknowledged job is
// eventually served exactly once with a result digest byte-identical to a
// direct in-process solve.
func TestCrashRestartMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix spawns real processes; skipped in -short")
	}
	bin, err := buildServeBinary()
	if err != nil {
		t.Fatal(err)
	}

	scenarios := []struct {
		name string
		plan string
		seed int64
		kill bool // SIGKILL instead of waiting for a planned exit
	}{
		{name: "crash-before-fsync", plan: "crash@journal.before-fsync#2", seed: 1},
		{name: "torn-before-fsync", plan: "torn@journal.before-fsync#2", seed: 1},
		{name: "crash-after-lease", plan: "crash@queue.after-lease#1", seed: 1},
		{name: "crash-before-done", plan: "crash@worker.before-done#1", seed: 1},
		{name: "crash-before-done-seeded", plan: "crash@worker.before-done", seed: 7},
		{name: "stall-then-sigkill", plan: "stall@worker.solve#1:30s", seed: 1, kill: true},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			// Eight jobs: enough that a seed-derived hit index (uniform in
			// [1, 8]) always lands on a real delivery.
			jobs := crashWorkload(t, 8)
			wal := filepath.Join(t.TempDir(), "journal.wal")

			p1 := startServe(t, bin, wal, freePort(t), sc.plan, sc.seed)
			p1.waitReady(t, 10*time.Second)

			// Submit the workload; under a crash plan some POSTs may lose
			// their connection — only acknowledged jobs are tracked.
			acked := make(map[string]int) // job ID → workload index
			for i, job := range jobs {
				if id := submitAsync(t, p1.base, job.req); id != "" {
					acked[id] = i
				}
			}
			if len(acked) == 0 {
				t.Fatal("no job was acknowledged before the fault")
			}

			if sc.kill {
				// The stalled worker holds its lease past the TTL; kill the
				// process outright mid-solve.
				time.Sleep(200 * time.Millisecond)
				p1.cmd.Process.Signal(syscall.SIGKILL)
				if p1.exitedPlanned(t, 10*time.Second) {
					t.Fatal("SIGKILLed process reported a planned exit")
				}
			} else if !p1.exitedPlanned(t, 20*time.Second) {
				t.Fatal("server did not die with the planned-crash exit code")
			}

			// Restart without chaos on the same journal: replay must finish
			// every acknowledged job.
			p2 := startServe(t, bin, wal, freePort(t), "", sc.seed)
			p2.waitReady(t, 10*time.Second)
			for id, i := range acked {
				res := pollDone(t, p2.base, id, 30*time.Second)
				if res == nil {
					t.Fatalf("job %s done without result", id)
				}
				if res.Digest != jobs[i].digest || res.ResultDigest != jobs[i].resultDigest {
					t.Errorf("job %s digests (%s, %s), want (%s, %s)",
						id, res.Digest, res.ResultDigest, jobs[i].digest, jobs[i].resultDigest)
				}
			}

			// Exactly-once on the durable record: across both incarnations
			// the journal holds exactly one done record per acknowledged job
			// (and none for unacked ones is not required — they may exist if
			// the ack raced the crash, but never twice).
			p2.cmd.Process.Signal(syscall.SIGTERM)
			<-p2.done
			p2.done <- nil
			rep, err := journal.ReadAll(wal)
			if err != nil {
				t.Fatal(err)
			}
			doneCount := make(map[string]int)
			for _, rec := range rep.Records {
				if rec.Type == journal.TypeDone {
					doneCount[rec.JobID]++
				}
			}
			for id := range acked {
				if doneCount[id] != 1 {
					t.Errorf("job %s has %d done records, want exactly 1", id, doneCount[id])
				}
			}
			for id, n := range doneCount {
				if n > 1 {
					t.Errorf("job %s journaled done %d times", id, n)
				}
			}
		})
	}
}
