// Command kecss-bench regenerates every reproduction experiment E1–E14 and
// the ablations A1–A4 (see DESIGN.md §4–5 and EXPERIMENTS.md) and prints the
// result tables, and runs JSON-described scenario sweeps on the solver pool.
//
// Usage:
//
//	kecss-bench                      # full tables (minutes)
//	kecss-bench -quick               # smallest sizes (seconds)
//	kecss-bench -only E7 -workers 4  # one experiment, 4 sweep workers
//	kecss-bench sweep -scenario scenarios/e11.json           # pooled sweep
//	kecss-bench sweep -scenario scenarios/e11.json -compare  # vs workers=1
//
// Experiment trials and sweep tasks run on a fixed worker pool (-workers,
// default GOMAXPROCS); tables and sweep results are byte-identical at any
// worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "sweep" {
		fs := flag.NewFlagSet("sweep", flag.ExitOnError)
		var (
			scenarioPath = fs.String("scenario", "", "JSON scenario file (required)")
			workers      = fs.Int("workers", 0, "pool workers (0 = GOMAXPROCS)")
			compare      = fs.Bool("compare", false, "rerun at workers=1, report speedup and check byte-identical results")
		)
		fs.Parse(os.Args[2:])
		if *scenarioPath == "" {
			fmt.Fprintln(os.Stderr, "kecss-bench sweep: -scenario is required")
			os.Exit(2)
		}
		if err := runSweep(*scenarioPath, *workers, *compare); err != nil {
			fmt.Fprintln(os.Stderr, "kecss-bench sweep:", err)
			os.Exit(1)
		}
		return
	}
	var (
		quick   = flag.Bool("quick", false, "run the reduced-size sweeps")
		only    = flag.String("only", "", "comma-separated experiment IDs (e.g. E1,E7,A1); empty = all")
		workers = flag.Int("workers", 0, "pool workers for experiment trials (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if err := run(*quick, *only, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "kecss-bench:", err)
		os.Exit(1)
	}
}

func run(quick bool, only string, workers int) error {
	scale := experiments.Scale{Quick: quick, Workers: workers}
	want := map[string]bool{}
	if only != "" {
		for _, id := range strings.Split(only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	all := map[string]func(experiments.Scale) (*experiments.Table, error){
		"E1": experiments.E1, "E2": experiments.E2, "E3": experiments.E3,
		"E4": experiments.E4, "E5": experiments.E5, "E6": experiments.E6,
		"E7": experiments.E7, "E8": experiments.E8, "E9": experiments.E9,
		"E10": experiments.E10,
		"E11": experiments.E11,
		"E12": experiments.E12,
		"E13": experiments.E13,
		"E14": experiments.E14,
		"A1":  experiments.AblationVoteThreshold,
		"A2":  experiments.AblationRounding,
		"A3":  experiments.AblationPhaseLength,
		"A4":  experiments.AblationExecutor,
	}
	order := []string{
		"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10",
		"E11", "E12", "E13", "E14", "A1", "A2", "A3", "A4",
	}
	for _, id := range order {
		if len(want) > 0 && !want[id] {
			continue
		}
		tbl, err := all[id](scale)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		tbl.Fprint(os.Stdout)
	}
	return nil
}
