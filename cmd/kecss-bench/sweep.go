package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	kecss "repro"
	"repro/internal/experiments"
	"repro/internal/scenario"
	"repro/internal/wire"
)

// resultDigest hashes the sweep's visible outcome (edge sets, weights,
// rounds, errors) through the shared wire.ResultDigest — the same function
// the serve stack uses, so the bench's byte-identity check and the server's
// cache keys can never drift apart.
func resultDigest(results []kecss.Result) string {
	lines := make([]wire.ResultLine, len(results))
	for i, r := range results {
		lines[i] = wire.ResultLine{Task: r.Task, Edges: r.Edges, Weight: r.Weight, Rounds: r.Rounds}
		if r.Err != nil {
			lines[i].Err = r.Err.Error()
		}
	}
	return wire.ResultDigest(lines)
}

// runSweepOnce executes the whole task batch on a fresh pool.
func runSweepOnce(tasks []kecss.Task, workers int) ([]kecss.Result, time.Duration) {
	pool := kecss.NewPool(workers)
	defer pool.Close()
	start := time.Now()
	results := pool.Sweep(tasks)
	return results, time.Since(start)
}

// runSweep is the `kecss-bench sweep` subcommand: read a scenario file,
// sweep it on a worker pool, print one summary row per scenario. With
// compare=true it runs the identical batch at workers=1 and workers=N and
// reports speedup plus the byte-identity of the two result sets.
func runSweep(path string, workers int, compare bool) error {
	sf, err := scenario.Load(path)
	if err != nil {
		return err
	}
	tasks, counts, err := sf.Tasks()
	if err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results, elapsed := runSweepOnce(tasks, workers)

	t := &experiments.Table{
		ID:     "SWEEP",
		Title:  fmt.Sprintf("%s (%d tasks, workers=%d)", sf.Name, len(tasks), workers),
		Claim:  "per-task results are byte-identical at any worker count (seed ⊕ task index)",
		Header: []string{"scenario", "family", "solver", "n", "m", "trials", "failed", "mean weight", "mean rounds"},
	}
	idx := 0
	for i, sc := range sf.Scenarios {
		var wsum, rsum int64
		failed := 0
		n, m := 0, 0
		for trial := 0; trial < counts[i]; trial++ {
			r := results[idx]
			idx++
			if r.Err != nil {
				failed++
				continue
			}
			wsum += r.Weight
			rsum += r.Rounds
		}
		if g := tasks[idx-1].Graph; g != nil {
			n, m = g.N(), g.M()
		}
		if ok := counts[i] - failed; ok > 0 {
			t.AddRow(sc.Name, sc.Family, sc.Solver, n, m, counts[i], failed,
				wsum/int64(ok), rsum/int64(ok))
		} else {
			// Every trial failed: means would be a misleading 0.
			t.AddRow(sc.Name, sc.Family, sc.Solver, n, m, counts[i], failed, "-", "-")
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf("wall-clock %v at workers=%d", elapsed.Round(time.Millisecond), workers))
	t.Fprint(os.Stdout)

	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "kecss-bench: task %d failed: %v\n", r.Task, r.Err)
		}
	}

	if compare {
		serialResults, serialElapsed := runSweepOnce(tasks, 1)
		d1, dN := resultDigest(serialResults), resultDigest(results)
		fmt.Printf("\ncompare: workers=1 %v, workers=%d %v (%.2fx), digests %s vs %s",
			serialElapsed.Round(time.Millisecond), workers, elapsed.Round(time.Millisecond),
			float64(serialElapsed)/float64(elapsed), d1, dN)
		if d1 != dN {
			fmt.Println(" — MISMATCH")
			return fmt.Errorf("results differ between workers=1 and workers=%d", workers)
		}
		fmt.Println(" — identical")
	}
	return nil
}
