package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	kecss "repro"
	"repro/internal/experiments"
	"repro/internal/graph"
)

// scenarioFile is the JSON schema of a sweep scenario set (see scenarios/).
type scenarioFile struct {
	// Name labels the set in the output.
	Name string `json:"name"`
	// Scenarios are run as one pooled sweep (all trials of all scenarios in
	// a single task batch).
	Scenarios []scenario `json:"scenarios"`
}

// scenario describes one (topology, solver) pair swept over Trials
// independent runs. Exactly one graph is built per scenario; the pool
// validates it once and derives each trial's RNG from the trial's task
// index, so results are reproducible at any worker count.
type scenario struct {
	Name   string `json:"name"`
	Family string `json:"family"` // random | grid | ring | clique-chain | chung-lu | geometric | fattree | harary
	N      int    `json:"n"`      // vertices (approximate for grid/fattree)
	K      int    `json:"k"`      // generator connectivity floor and kecss solver target (default 2)
	Extra  int    `json:"extra"`  // random family: extra edges (default 2n)

	Beta   float64 `json:"beta"`    // chung-lu exponent (default 2.5)
	AvgDeg float64 `json:"avg_deg"` // chung-lu mean degree (default 6)
	Radius float64 `json:"radius"`  // geometric radius (default 0.2)
	Pods   int     `json:"pods"`    // fattree arity k (default 4; N ignored)

	MaxW int64 `json:"max_w"` // edge weight cap; 0 = unit weights

	Solver      string `json:"solver"` // 2ecss | kecss | 3ecss | 3ecss-weighted
	SimulateMST bool   `json:"simulate_mst"`
	Trials      int    `json:"trials"` // default 1
	Seed        int64  `json:"seed"`   // base seed passed to WithSeed (omitted = 0)
}

func (sc scenario) buildGraph() (*graph.Graph, error) {
	rng := rand.New(rand.NewSource(sc.Seed + 1))
	wf := graph.UnitWeights()
	if sc.MaxW > 0 {
		wf = graph.RandomWeights(rng, sc.MaxW)
	}
	k := sc.K
	if k == 0 {
		k = 2
	}
	switch sc.Family {
	case "random", "":
		extra := sc.Extra
		if extra == 0 {
			extra = 2 * sc.N
		}
		return graph.RandomKConnected(sc.N, k, extra, rng, wf), nil
	case "grid":
		cols := sc.N / 4
		if cols < 2 {
			cols = 2
		}
		return graph.Grid(4, cols, wf), nil
	case "ring":
		return graph.Cycle(sc.N, wf), nil
	case "clique-chain":
		size := 6
		length := sc.N / size
		if length < 1 {
			length = 1
		}
		return graph.CliqueChain(length, size, k, wf), nil
	case "chung-lu":
		beta := sc.Beta
		if beta == 0 {
			beta = 2.5
		}
		avg := sc.AvgDeg
		if avg == 0 {
			avg = 6
		}
		return graph.ChungLu(sc.N, beta, avg, k, rng, wf), nil
	case "geometric":
		r := sc.Radius
		if r == 0 {
			r = 0.2
		}
		return graph.RandomGeometric(sc.N, r, k, rng), nil
	case "fattree":
		pods := sc.Pods
		if pods == 0 {
			pods = 4
		}
		return graph.FatTree(pods, wf), nil
	case "harary":
		return graph.Harary(k, sc.N, wf), nil
	}
	return nil, fmt.Errorf("unknown family %q", sc.Family)
}

func (sc scenario) solver() (kecss.Solver, error) {
	switch sc.Solver {
	case "2ecss", "":
		return kecss.Solver2ECSS, nil
	case "kecss":
		return kecss.SolverKECSS, nil
	case "3ecss":
		return kecss.Solver3ECSSUnweighted, nil
	case "3ecss-weighted":
		return kecss.Solver3ECSSWeighted, nil
	}
	return 0, fmt.Errorf("unknown solver %q", sc.Solver)
}

// buildTasks expands the scenario set into one flat task list, returning
// the per-scenario task count for the report.
func buildTasks(sf *scenarioFile) ([]kecss.Task, []int, error) {
	var tasks []kecss.Task
	counts := make([]int, len(sf.Scenarios))
	for i, sc := range sf.Scenarios {
		g, err := sc.buildGraph()
		if err != nil {
			return nil, nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		solver, err := sc.solver()
		if err != nil {
			return nil, nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		opts := []kecss.Option{kecss.WithSeed(sc.Seed)}
		if sc.SimulateMST {
			opts = append(opts, kecss.WithSimulatedMST())
		}
		trials := sc.Trials
		if trials == 0 {
			trials = 1
		}
		k := sc.K
		if k == 0 {
			k = 2
		}
		counts[i] = trials
		for trial := 0; trial < trials; trial++ {
			tasks = append(tasks, kecss.Task{Graph: g, Solver: solver, K: k, Opts: opts})
		}
	}
	return tasks, counts, nil
}

// resultDigest hashes the sweep's visible outcome (edge sets, weights,
// rounds, errors), the byte-identity check across worker counts.
func resultDigest(results []kecss.Result) string {
	h := sha256.New()
	for _, r := range results {
		fmt.Fprintf(h, "%d|%v|%d|%d|%v\n", r.Task, r.Edges, r.Weight, r.Rounds, r.Err)
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:8])
}

// runSweepOnce executes the whole task batch on a fresh pool.
func runSweepOnce(tasks []kecss.Task, workers int) ([]kecss.Result, time.Duration) {
	pool := kecss.NewPool(workers)
	defer pool.Close()
	start := time.Now()
	results := pool.Sweep(tasks)
	return results, time.Since(start)
}

// runSweep is the `kecss-bench sweep` subcommand: read a scenario file,
// sweep it on a worker pool, print one summary row per scenario. With
// compare=true it runs the identical batch at workers=1 and workers=N and
// reports speedup plus the byte-identity of the two result sets.
func runSweep(path string, workers int, compare bool) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var sf scenarioFile
	if err := json.Unmarshal(raw, &sf); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(sf.Scenarios) == 0 {
		return fmt.Errorf("%s: no scenarios", path)
	}
	tasks, counts, err := buildTasks(&sf)
	if err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results, elapsed := runSweepOnce(tasks, workers)

	t := &experiments.Table{
		ID:     "SWEEP",
		Title:  fmt.Sprintf("%s (%d tasks, workers=%d)", sf.Name, len(tasks), workers),
		Claim:  "per-task results are byte-identical at any worker count (seed ⊕ task index)",
		Header: []string{"scenario", "family", "solver", "n", "m", "trials", "failed", "mean weight", "mean rounds"},
	}
	idx := 0
	for i, sc := range sf.Scenarios {
		var wsum, rsum int64
		failed := 0
		n, m := 0, 0
		for trial := 0; trial < counts[i]; trial++ {
			r := results[idx]
			idx++
			if r.Err != nil {
				failed++
				continue
			}
			wsum += r.Weight
			rsum += r.Rounds
		}
		if g := tasks[idx-1].Graph; g != nil {
			n, m = g.N(), g.M()
		}
		if ok := counts[i] - failed; ok > 0 {
			t.AddRow(sc.Name, sc.Family, sc.Solver, n, m, counts[i], failed,
				wsum/int64(ok), rsum/int64(ok))
		} else {
			// Every trial failed: means would be a misleading 0.
			t.AddRow(sc.Name, sc.Family, sc.Solver, n, m, counts[i], failed, "-", "-")
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf("wall-clock %v at workers=%d", elapsed.Round(time.Millisecond), workers))
	t.Fprint(os.Stdout)

	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "kecss-bench: task %d failed: %v\n", r.Task, r.Err)
		}
	}

	if compare {
		serialResults, serialElapsed := runSweepOnce(tasks, 1)
		d1, dN := resultDigest(serialResults), resultDigest(results)
		fmt.Printf("\ncompare: workers=1 %v, workers=%d %v (%.2fx), digests %s vs %s",
			serialElapsed.Round(time.Millisecond), workers, elapsed.Round(time.Millisecond),
			float64(serialElapsed)/float64(elapsed), d1, dN)
		if d1 != dN {
			fmt.Println(" — MISMATCH")
			return fmt.Errorf("results differ between workers=1 and workers=%d", workers)
		}
		fmt.Println(" — identical")
	}
	return nil
}
