// Command kecss-agent is a stateless solver agent for the kecss serving
// stack. It attaches to a frontend's broker API (kecss-serve mounts it at
// /broker/v1), claims jobs under TTL leases, solves them on a local
// kecss.Pool, and reports outcomes back through the lease. All durable
// state — journal, result store of record — lives in the frontend;
// SIGKILLing an agent at any instant costs one lease expiry, never an
// acked job.
//
// Usage:
//
//	kecss-agent -frontend http://frontend:8080 -workers 4
//
// Scaling out is just starting more of these: each agent claims from the
// same queue, the frontend's lease/redelivery/dead-letter semantics apply
// identically over the wire (the broker conformance suite pins this), and
// solves are deterministic so any agent's result for a digest is
// byte-identical to any other's.
//
// With -store the agent keeps its own content-addressed read cache on
// disk: a redelivered digest it has solved before completes without a
// re-solve. This is an optimization, never a source of truth — the
// frontend re-publishes every outcome to its own store.
//
// The agent survives frontend restarts: claim long-polls that fail at the
// transport level are retried with a pause until the frontend comes back.
// On SIGTERM/SIGINT the agent stops claiming, finishes in-flight solves
// (their outcomes still flow through the held leases), and exits 0.
//
// Fault injection (testing only): -chaos takes a chaos plan spec (see
// internal/chaos), also readable from $KECSS_CHAOS; a planned crash exits
// with status 43.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/queue/httpbroker"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/wire"
)

func main() {
	var (
		frontend  = flag.String("frontend", "http://127.0.0.1:8080", "frontend base URL (the agent claims from <frontend>/broker/v1)")
		workers   = flag.Int("workers", 0, "solver pool workers (0 = GOMAXPROCS)")
		loops     = flag.Int("loops", 0, "concurrent claim loops (0 = pool workers)")
		storeDir  = flag.String("store", "", "local result read-cache root (empty = memory only)")
		cacheSize = flag.Int("cache", 1024, "in-memory result cache entries (negative disables)")
		wait      = flag.Duration("claim-wait", 25*time.Second, "long-poll window per claim round")
		retry     = flag.Duration("claim-retry", 500*time.Millisecond, "pause before re-polling after a transport error")
		seed      = flag.Int64("seed", 1, "chaos plan seed (testing only)")
		chaosSpec = flag.String("chaos", os.Getenv("KECSS_CHAOS"), "fault-injection plan (testing only)")
	)
	flag.Parse()

	inj, err := chaos.Parse(*chaosSpec, *seed)
	if err != nil {
		log.Fatalf("kecss-agent: %v", err)
	}
	if inj != nil {
		log.Printf("kecss-agent: FAULT INJECTION ACTIVE: %s", *chaosSpec)
	}

	cache := *cacheSize
	if cache < 0 {
		cache = 0
	}
	st, err := store.Open(store.Options{
		Dir:       *storeDir,
		CacheSize: cache,
		Decode:    server.DecodeStoredResponse,
		Inject:    inj,
	})
	if err != nil {
		log.Fatalf("kecss-agent: %v", err)
	}

	broker := httpbroker.NewClient(*frontend+"/broker/v1", httpbroker.ClientOptions{
		Wait:  *wait,
		Retry: *retry,
	})
	agent := server.NewAgent(broker, server.AgentConfig{
		Workers: *workers,
		Loops:   *loops,
		Store:   st,
		Chaos:   inj,
	})
	log.Printf("kecss-agent: %d workers claiming from %s (digest format v%d)",
		agent.Workers(), *frontend, wire.DigestVersion)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	got := <-sig
	log.Printf("kecss-agent: %v received, finishing in-flight solves", got)

	// Stop claiming; in-flight solves complete and report through their
	// leases before Close returns. The remote broker is untouched — other
	// agents keep claiming from it.
	broker.Close()
	agent.Close()
	log.Println("kecss-agent: drained")
}
