// Command kecss-agent is a stateless solver agent for the kecss serving
// stack. It attaches to a frontend's broker API (kecss-serve mounts it at
// /broker/v1), claims jobs under TTL leases, solves them on a local
// kecss.Pool, and reports outcomes back through the lease. All durable
// state — journal, result store of record — lives in the frontend;
// SIGKILLing an agent at any instant costs one lease expiry, never an
// acked job.
//
// Usage:
//
//	kecss-agent -frontend http://frontend:8080 -workers 4
//
// Scaling out is just starting more of these: each agent claims from the
// same queue, the frontend's lease/redelivery/dead-letter semantics apply
// identically over the wire (the broker conformance suite pins this), and
// solves are deterministic so any agent's result for a digest is
// byte-identical to any other's.
//
// With -store the agent keeps its own content-addressed read cache on
// disk: a redelivered digest it has solved before completes without a
// re-solve. This is an optimization, never a source of truth — the
// frontend re-publishes every outcome to its own store.
//
// The agent survives frontend restarts: claim long-polls that fail at the
// transport level are retried with a pause until the frontend comes back.
// On SIGTERM/SIGINT the agent stops claiming, finishes in-flight solves
// (their outcomes still flow through the held leases), and exits 0.
//
// With -admin the agent serves its own observability listener:
//
//	GET /metrics   agent-side Prometheus metrics (claims, solves, store
//	               hits, lease extends, solve latency)
//	GET /healthz   liveness
//	/debug/pprof/  net/http/pprof (only with -pprof)
//
// Solver phase telemetry rides the leases automatically: when the
// frontend traces a job, the agent records store.get/solve/store.put
// spans — with one "phase.*" sub-span per solver phase, annotated with
// CONGEST round/message counts — and ships them back on the completion,
// where they are stitched into the job's end-to-end trace.
//
// Fault injection (testing only): -chaos takes a chaos plan spec (see
// internal/chaos), also readable from $KECSS_CHAOS; a planned crash exits
// with status 43.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/queue/httpbroker"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/wire"
)

func main() {
	var (
		frontend    = flag.String("frontend", "http://127.0.0.1:8080", "frontend base URL (the agent claims from <frontend>/broker/v1)")
		workers     = flag.Int("workers", 0, "solver pool workers (0 = GOMAXPROCS)")
		loops       = flag.Int("loops", 0, "concurrent claim loops (0 = pool workers)")
		storeDir    = flag.String("store", "", "local result read-cache root (empty = memory only)")
		cacheSize   = flag.Int("cache", 1024, "in-memory result cache entries (negative disables)")
		wait        = flag.Duration("claim-wait", 25*time.Second, "long-poll window per claim round")
		retry       = flag.Duration("claim-retry", 500*time.Millisecond, "pause before re-polling after a transport error")
		adminAddr   = flag.String("admin", "", "admin listener address for /metrics and /healthz (empty = no listener)")
		process     = flag.String("process", "", "process tag on this agent's trace spans (default \"agent\")")
		extendEvery = flag.Duration("extend-every", 0, "lease-extend heartbeat period for long solves (0 = off; keep off under fault injection)")
		logLevel    = flag.String("log-level", "info", "minimum log level (debug, info, warn, error)")
		enablePprof = flag.Bool("pprof", false, "mount net/http/pprof on the admin listener (requires -admin)")
		seed        = flag.Int64("seed", 1, "chaos plan seed (testing only)")
		chaosSpec   = flag.String("chaos", os.Getenv("KECSS_CHAOS"), "fault-injection plan (testing only)")
	)
	flag.Parse()

	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "kecss-agent: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(1)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	inj, err := chaos.Parse(*chaosSpec, *seed)
	if err != nil {
		fatal("bad chaos spec", "err", err)
	}
	if inj != nil {
		logger.Warn("FAULT INJECTION ACTIVE", "plan", *chaosSpec)
	}

	cache := *cacheSize
	if cache < 0 {
		cache = 0
	}
	st, err := store.Open(store.Options{
		Dir:       *storeDir,
		CacheSize: cache,
		Decode:    server.DecodeStoredResponse,
		Inject:    inj,
	})
	if err != nil {
		fatal("store open failed", "err", err)
	}

	metrics := server.NewAgentMetrics()
	var admin *http.Server
	if *adminAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			metrics.WriteMetrics(w)
		})
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"status":"ok"}`)
		})
		if *enablePprof {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		admin = &http.Server{Addr: *adminAddr, Handler: mux}
		go func() {
			logger.Info("admin listening", "addr", *adminAddr, "pprof", *enablePprof)
			if err := admin.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("admin listener failed", "err", err)
			}
		}()
	} else if *enablePprof {
		fatal("-pprof requires -admin")
	}

	broker := httpbroker.NewClient(*frontend+"/broker/v1", httpbroker.ClientOptions{
		Wait:  *wait,
		Retry: *retry,
	})
	agent := server.NewAgent(broker, server.AgentConfig{
		Workers:     *workers,
		Loops:       *loops,
		Store:       st,
		Chaos:       inj,
		Process:     *process,
		Metrics:     metrics,
		ExtendEvery: *extendEvery,
		Logger:      logger,
	})
	logger.Info("claiming", "workers", agent.Workers(), "frontend", *frontend, "digest_version", wire.DigestVersion)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	got := <-sig
	logger.Info("finishing in-flight solves", "signal", got.String())

	// Stop claiming; in-flight solves complete and report through their
	// leases before Close returns. The remote broker is untouched — other
	// agents keep claiming from it.
	broker.Close()
	agent.Close()
	if admin != nil {
		admin.Close()
	}
	logger.Info("drained")
}
