package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// The -trace report: the load generator samples job IDs from X-Kecss-Job
// response headers (only cache-miss solves mint a job, so the samples are
// exactly the requests that exercised the queue and an agent), fetches each
// job's span timeline from /v1/jobs/{id}/trace after the replay, and prints
// a per-stage latency table — where did a solve's wall clock go, in
// percentiles across the sampled jobs.

// traceSampler collects up to cap sampled jobs, concurrency-safe. A nil
// sampler ignores adds, so the hot path stays unconditional.
type traceSampler struct {
	mu      sync.Mutex
	cap     int        // immutable after newTraceSampler
	entries []traceRef // guarded by mu
	dropped int        // guarded by mu
}

type traceRef struct{ addr, jobID string }

func newTraceSampler(cap int) *traceSampler { return &traceSampler{cap: cap} }

func (ts *traceSampler) add(addr, jobID string) {
	if ts == nil || jobID == "" {
		return
	}
	ts.mu.Lock()
	if len(ts.entries) < ts.cap {
		ts.entries = append(ts.entries, traceRef{addr: addr, jobID: jobID})
	} else {
		ts.dropped++
	}
	ts.mu.Unlock()
}

// fetchTrace retrieves one job's trace, retrying briefly: the solve response
// races the frontend's trace finalisation by a hair, so a just-answered job
// can be a snapshot away from Complete. A 404 means the trace aged out of
// the server's bounded retention — reported as absent, not an error.
func fetchTrace(client *http.Client, addr, jobID string) (*telemetry.Data, error) {
	for attempt := 0; ; attempt++ {
		resp, err := client.Get(addr + "/v1/jobs/" + jobID + "/trace")
		if err != nil {
			return nil, err
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusNotFound {
			return nil, nil
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s/v1/jobs/%s/trace: status %d: %s", addr, jobID, resp.StatusCode, raw)
		}
		var d telemetry.Data
		if err := json.Unmarshal(raw, &d); err != nil {
			return nil, fmt.Errorf("job %s: bad trace payload: %w", jobID, err)
		}
		if d.Complete || attempt >= 10 {
			return &d, nil
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// stageDurations folds one trace's spans into per-stage totals keyed
// "process/name" (a lease expiry yields two queue.wait spans; they sum into
// the job's total time spent waiting). The root span is reported as total.
func stageDurations(d *telemetry.Data) map[string]time.Duration {
	out := make(map[string]time.Duration)
	for _, s := range d.Spans {
		if s.End == 0 || s.Name == "job" {
			continue
		}
		key := s.Name
		if s.Process != "" {
			key = s.Process + "/" + s.Name
		}
		out[key] += time.Duration(s.End - s.Start)
	}
	if d.DurationNanos > 0 {
		out["total"] = time.Duration(d.DurationNanos)
	}
	return out
}

// traceReport fetches every sampled trace and prints the stage table,
// slowest stages first.
func (ts *traceSampler) report(client *http.Client) error {
	ts.mu.Lock()
	entries := append([]traceRef(nil), ts.entries...)
	dropped := ts.dropped
	ts.mu.Unlock()
	if len(entries) == 0 {
		fmt.Println("\ntrace: no jobs sampled — every request was a cache hit (use -cold or -spread for cache-miss traffic)")
		return nil
	}

	byStage := make(map[string][]time.Duration)
	fetched, missing := 0, 0
	for _, e := range entries {
		d, err := fetchTrace(client, e.addr, e.jobID)
		if err != nil {
			return err
		}
		if d == nil {
			missing++
			continue
		}
		fetched++
		for stage, total := range stageDurations(d) {
			byStage[stage] = append(byStage[stage], total)
		}
	}
	if fetched == 0 {
		fmt.Printf("\ntrace: all %d sampled traces already aged out of server retention\n", len(entries))
		return nil
	}

	type row struct {
		stage              string
		n                  int
		p50, p90, p99, max time.Duration
	}
	rows := make([]row, 0, len(byStage))
	for stage, ds := range byStage {
		sort.Slice(ds, func(a, b int) bool { return ds[a] < ds[b] })
		rows = append(rows, row{
			stage: stage,
			n:     len(ds),
			p50:   percentile(ds, 0.50),
			p90:   percentile(ds, 0.90),
			p99:   percentile(ds, 0.99),
			max:   ds[len(ds)-1],
		})
	}
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].p50 != rows[b].p50 {
			return rows[a].p50 > rows[b].p50
		}
		return rows[a].stage < rows[b].stage
	})

	fmt.Printf("\ntrace: stage breakdown across %d sampled jobs", fetched)
	if missing > 0 {
		fmt.Printf(" (%d aged out)", missing)
	}
	if dropped > 0 {
		fmt.Printf(" (%d over the sample cap)", dropped)
	}
	fmt.Println()
	fmt.Printf("%-28s %5s %10s %10s %10s %10s\n", "stage", "jobs", "p50", "p90", "p99", "max")
	for _, r := range rows {
		fmt.Printf("%-28s %5d %10.3f %10.3f %10.3f %10.3f\n",
			r.stage, r.n, ms(r.p50), ms(r.p90), ms(r.p99), ms(r.max))
	}
	return nil
}
