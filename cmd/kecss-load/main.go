// Command kecss-load replays scenario families (scenarios/*.json) against a
// running kecss-serve instance at a target QPS and reports throughput,
// latency percentiles, cache behaviour and — with -check — verifies that
// every served result is byte-identical to a direct in-process solve of the
// same request.
//
// Usage:
//
//	kecss-load -addr http://127.0.0.1:8080 -scenario scenarios/serve.json \
//	           -duration 5s -conc 8 -qps 0 -check
//
// The run has three phases: an optional -check phase (solve every distinct
// request locally to learn the expected digests), a warm phase (send every
// distinct request once, cold, measuring cold-solve latency), and the timed
// replay phase (cycle the request mix from -conc connections, cache-hot).
// The tool exits non-zero on transport errors, HTTP failures, or any digest
// mismatch.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"reflect"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	kecss "repro"
	"repro/internal/scenario"
	"repro/internal/server"
	"repro/internal/wire"
)

type request struct {
	body []byte
	// expected is the direct in-process result (nil without -check).
	expected *wire.SolveResponse
}

// sample is one measured round-trip of the replay phase.
type sample struct {
	latency time.Duration
	cached  bool
}

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "kecss-serve base URL")
		path     = flag.String("scenario", "scenarios/serve.json", "scenario file to replay")
		duration = flag.Duration("duration", 5*time.Second, "timed replay phase length")
		conc     = flag.Int("conc", 8, "concurrent connections")
		qps      = flag.Float64("qps", 0, "target requests/s across all connections (0 = unthrottled)")
		warm     = flag.Bool("warm", true, "send every distinct request once before timing (cache-hot replay)")
		check    = flag.Bool("check", true, "verify served results against direct in-process solves")
		timeout  = flag.Duration("timeout", 60*time.Second, "per-request timeout")
	)
	flag.Parse()
	if err := run(*addr, *path, *duration, *conc, *qps, *warm, *check, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "kecss-load:", err)
		os.Exit(1)
	}
}

func run(addr, path string, duration time.Duration, conc int, qps float64, warm, check bool, timeout time.Duration) error {
	sf, err := scenario.Load(path)
	if err != nil {
		return err
	}
	wireReqs, err := sf.Requests()
	if err != nil {
		return err
	}
	reqs := make([]*request, len(wireReqs))
	for i, wr := range wireReqs {
		body, err := json.Marshal(wr)
		if err != nil {
			return err
		}
		reqs[i] = &request{body: body}
	}
	fmt.Printf("kecss-load: %s → %s: %d scenarios, %d distinct requests\n",
		path, addr, len(sf.Scenarios), len(reqs))

	if check {
		start := time.Now()
		if err := solveDirect(wireReqs, reqs); err != nil {
			return err
		}
		fmt.Printf("check: solved all %d requests in-process in %v\n",
			len(reqs), time.Since(start).Round(time.Millisecond))
	}

	client := &http.Client{
		Timeout: timeout,
		Transport: &http.Transport{
			MaxIdleConns:        conc,
			MaxIdleConnsPerHost: conc,
		},
	}

	// Warm phase: every distinct request once, measuring cold round-trips,
	// then once more to measure unloaded cache-hit round-trips — the
	// like-for-like pair behind the reported cache speedup (the timed replay
	// below measures hits under full concurrency instead).
	var coldRTT, hitRTT []time.Duration
	var coldSolveMS []float64
	if warm {
		for i, r := range reqs {
			start := time.Now()
			resp, err := post(client, addr, r.body)
			if err != nil {
				return fmt.Errorf("warm request %d: %w", i, err)
			}
			coldRTT = append(coldRTT, time.Since(start))
			if !resp.Cached {
				coldSolveMS = append(coldSolveMS, resp.SolveMillis)
			}
			if err := verify(r, resp, check); err != nil {
				return fmt.Errorf("warm request %d: %w", i, err)
			}
		}
		for i, r := range reqs {
			start := time.Now()
			resp, err := post(client, addr, r.body)
			if err != nil {
				return fmt.Errorf("hit-measure request %d: %w", i, err)
			}
			hitRTT = append(hitRTT, time.Since(start))
			if !resp.Cached {
				return fmt.Errorf("hit-measure request %d missed the cache", i)
			}
			if err := verify(r, resp, check); err != nil {
				return fmt.Errorf("hit-measure request %d: %w", i, err)
			}
		}
		fmt.Printf("warm: %d requests, mean cold round-trip %v, mean cache-hit round-trip %v\n",
			len(coldRTT), meanDuration(coldRTT).Round(time.Microsecond),
			meanDuration(hitRTT).Round(time.Microsecond))
	}

	// Timed replay phase.
	var (
		next         atomic.Int64
		mismatch     atomic.Int64
		throttled    atomic.Int64
		retries      atomic.Int64
		backoffNanos atomic.Int64
		failures     atomic.Int64
		mu           sync.Mutex
		samples      []sample
	)
	start := time.Now()
	deadline := start.Add(duration)
	var wg sync.WaitGroup
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			local := make([]sample, 0, 4096)
			rng := rand.New(rand.NewSource(int64(worker) + 1))
			attempt := 0
			for {
				now := time.Now()
				if now.After(deadline) {
					break
				}
				seq := next.Add(1) - 1
				if qps > 0 {
					// Global pacing: request #seq is due at start + seq/qps.
					due := start.Add(time.Duration(float64(seq) / qps * float64(time.Second)))
					if wait := time.Until(due); wait > 0 {
						time.Sleep(wait)
					}
				}
				r := reqs[int(seq)%len(reqs)]
				t0 := time.Now()
				resp, err := post(client, addr, r.body)
				rtt := time.Since(t0)
				if err != nil {
					var te *throttleError
					if errors.As(err, &te) {
						// The server shed us (429 queue-full or 503 draining):
						// honour its Retry-After, with jittered exponential
						// backoff on top so shed workers do not re-arrive in
						// lockstep.
						throttled.Add(1)
						retries.Add(1)
						d := backoffDelay(attempt, te.retryAfter, rng)
						attempt++
						backoffNanos.Add(int64(d))
						time.Sleep(d)
						continue
					}
					failures.Add(1)
					fmt.Fprintf(os.Stderr, "kecss-load: %v\n", err)
					continue
				}
				attempt = 0
				if err := verify(r, resp, check); err != nil {
					mismatch.Add(1)
					fmt.Fprintf(os.Stderr, "kecss-load: %v\n", err)
				}
				local = append(local, sample{latency: rtt, cached: resp.Cached})
			}
			mu.Lock()
			samples = append(samples, local...)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if len(samples) == 0 {
		return fmt.Errorf("no successful requests in %v", elapsed)
	}
	report(samples, elapsed, coldRTT, hitRTT, coldSolveMS, throttled.Load(), retries.Load(),
		time.Duration(backoffNanos.Load()), failures.Load(), mismatch.Load(), check)

	if failures.Load() > 0 {
		return fmt.Errorf("%d requests failed", failures.Load())
	}
	if mismatch.Load() > 0 {
		return fmt.Errorf("%d digest mismatches — served results diverge from direct solves", mismatch.Load())
	}
	return nil
}

// solveDirect computes every request's expected result with the in-process
// pool (one single-task sweep per request, matching the server's execution
// exactly) and records it on the request.
func solveDirect(wireReqs []*wire.SolveRequest, reqs []*request) error {
	pool := kecss.NewPool(0)
	defer pool.Close()
	for i, wr := range wireReqs {
		g, err := wr.Graph.ToGraph()
		if err != nil {
			return fmt.Errorf("request %d: %w", i, err)
		}
		solver, err := kecss.ParseSolver(wr.Solver)
		if err != nil {
			return fmt.Errorf("request %d: %w", i, err)
		}
		res := pool.Sweep([]kecss.Task{{
			Graph:  g,
			Solver: solver,
			K:      wr.K,
			Opts:   server.OptionsFromSpec(wr.SolveSpec),
		}})[0]
		if res.Err != nil {
			return fmt.Errorf("request %d: direct solve: %w", i, res.Err)
		}
		reqs[i].expected = &wire.SolveResponse{
			Edges:        res.Edges,
			Weight:       res.Weight,
			Rounds:       res.Rounds,
			ResultDigest: wire.SolveResultDigest(res.Edges, res.Weight, res.Rounds),
		}
	}
	return nil
}

// throttleError marks a shed request (429 queue-full or 503 draining) so
// the replay loop can back off without counting it as a failure. retryAfter
// is the server's Retry-After hint (0 when absent).
type throttleError struct {
	msg        string
	retryAfter time.Duration
}

func (e *throttleError) Error() string { return e.msg }

// backoffBase and backoffCap shape the client-side retry schedule; the
// server's Retry-After floors the delay when present.
const (
	backoffBase = 10 * time.Millisecond
	backoffCap  = 2 * time.Second
)

// backoffDelay computes the sleep before retry number attempt (0-based):
// capped exponential growth from backoffBase, floored at the server's
// Retry-After hint, with jitter in [0.5, 1.5) to spread shed workers out.
func backoffDelay(attempt int, retryAfter time.Duration, rng *rand.Rand) time.Duration {
	d := backoffBase
	if attempt < 30 {
		d = backoffBase << attempt
	}
	if d > backoffCap || d <= 0 {
		d = backoffCap
	}
	if retryAfter > d {
		d = retryAfter
	}
	return time.Duration(float64(d) * (0.5 + rng.Float64()))
}

func post(client *http.Client, addr string, body []byte) (*wire.SolveResponse, error) {
	resp, err := client.Post(addr+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
		var after time.Duration
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			after = time.Duration(secs) * time.Second
		}
		return nil, &throttleError{msg: fmt.Sprintf("%d: %s", resp.StatusCode, raw), retryAfter: after}
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	var out wire.SolveResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// verify checks a served response against the request's expected direct
// result (when -check gathered one) and its internal digest consistency.
func verify(r *request, resp *wire.SolveResponse, check bool) error {
	if got := wire.SolveResultDigest(resp.Edges, resp.Weight, resp.Rounds); got != resp.ResultDigest {
		return fmt.Errorf("response digest %s does not match its own payload (%s)", resp.ResultDigest, got)
	}
	if !check || r.expected == nil {
		return nil
	}
	if resp.ResultDigest != r.expected.ResultDigest ||
		!reflect.DeepEqual(resp.Edges, r.expected.Edges) ||
		resp.Weight != r.expected.Weight || resp.Rounds != r.expected.Rounds {
		return fmt.Errorf("served result digest %s != direct solve digest %s",
			resp.ResultDigest, r.expected.ResultDigest)
	}
	return nil
}

func meanFloat(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

func meanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func report(samples []sample, elapsed time.Duration, coldRTT, hitRTT []time.Duration, coldSolveMS []float64,
	throttled, retries int64, backoff time.Duration, failures, mismatches int64, check bool) {
	lat := make([]time.Duration, 0, len(samples))
	hits := 0
	for _, s := range samples {
		lat = append(lat, s.latency)
		if s.cached {
			hits++
		}
	}
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })

	rps := float64(len(samples)) / elapsed.Seconds()
	fmt.Printf("\nreplay: %d requests in %v (%.0f req/s), %d failures, %d throttled (429/503)\n",
		len(samples), elapsed.Round(time.Millisecond), rps, failures, throttled)
	if retries > 0 {
		fmt.Printf("backoff: %d retries, %v total backoff (mean %v per retry)\n",
			retries, backoff.Round(time.Millisecond), (backoff / time.Duration(retries)).Round(time.Microsecond))
	}
	fmt.Printf("latency: p50 %v  p90 %v  p99 %v  max %v\n",
		percentile(lat, 0.50).Round(time.Microsecond),
		percentile(lat, 0.90).Round(time.Microsecond),
		percentile(lat, 0.99).Round(time.Microsecond),
		lat[len(lat)-1].Round(time.Microsecond))
	fmt.Printf("cache: %d/%d hits (%.1f%%)\n", hits, len(samples), 100*float64(hits)/float64(len(samples)))

	if len(coldRTT) > 0 && len(hitRTT) > 0 {
		coldMean := meanDuration(coldRTT)
		hitMean := meanDuration(hitRTT)
		fmt.Printf("speedup: mean cold round-trip %v vs mean cache-hit round-trip %v → %.1fx (mean in-server cold solve %v)\n",
			coldMean.Round(time.Microsecond), hitMean.Round(time.Microsecond),
			float64(coldMean)/float64(hitMean),
			time.Duration(meanFloat(coldSolveMS)*float64(time.Millisecond)).Round(time.Microsecond))
	}
	if check {
		if mismatches == 0 {
			fmt.Println("digests: every served result matches the direct in-process solve")
		} else {
			fmt.Printf("digests: %d MISMATCHES\n", mismatches)
		}
	}
}
