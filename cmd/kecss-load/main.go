// Command kecss-load replays scenario families (scenarios/*.json) against
// one or more running kecss-serve frontends at a target QPS and reports
// throughput, latency percentiles, cache behaviour and — with -check —
// verifies that every served result is byte-identical to a direct
// in-process solve of the same request.
//
// Usage:
//
//	kecss-load -addr http://127.0.0.1:8080 -scenario scenarios/serve.json \
//	           -duration 5s -conc 8 -qps 0 -check
//
//	# N-frontend run: repeat -addr; requests are dispatched round-robin
//	# and the report breaks throughput/latency down per target.
//	kecss-load -addr http://fe1:8080 -addr http://fe2:8080 ...
//
//	# Agent-scaling run: -spread multiplies the request mix with distinct
//	# seeds (distinct digests), -cold sends each exactly once — a
//	# cache-cold workload whose throughput tracks solver capacity, not
//	# cache hits. -json appends a summary row for BENCH_serve.json.
//	kecss-load -addr http://fe:8080 -spread 8 -cold -label agents=2 \
//	           -json BENCH_row.json
//
//	# Stage breakdown: -trace samples job IDs from X-Kecss-Job response
//	# headers (cache misses only), fetches /v1/jobs/{id}/trace for each
//	# after the replay, and prints where the wall clock went — queue wait,
//	# solve, store writes, solver phases — as percentiles across jobs.
//	kecss-load -addr http://fe:8080 -spread 4 -cold -trace
//
// The default run has three phases: an optional -check phase (solve every
// distinct request locally to learn the expected digests), a warm phase
// (send every distinct request once, cold, measuring cold-solve latency),
// and the timed replay phase (cycle the request mix from -conc
// connections, cache-hot). With -cold the warm phase is skipped and the
// timed phase ends when every distinct request has been served once. The
// tool exits non-zero on transport errors, HTTP failures, or any digest
// mismatch.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	kecss "repro"
	"repro/internal/scenario"
	"repro/internal/server"
	"repro/internal/wire"
)

type request struct {
	body []byte
	// expected is the direct in-process result (nil without -check).
	expected *wire.SolveResponse
}

// sample is one measured round-trip of the replay phase. target indexes
// the -addr list the request was dispatched to.
type sample struct {
	latency time.Duration
	cached  bool
	target  int
}

// opts is the parsed command line.
type opts struct {
	addrs    []string
	path     string
	duration time.Duration
	conc     int
	qps      float64
	warm     bool
	check    bool
	cold     bool
	spread   int
	label    string
	jsonPath string
	timeout  time.Duration
	trace    bool
}

func main() {
	var o opts
	flag.Func("addr", "kecss-serve base URL (repeatable; requests round-robin across targets)", func(v string) error {
		o.addrs = append(o.addrs, v)
		return nil
	})
	flag.StringVar(&o.path, "scenario", "scenarios/serve.json", "scenario file to replay")
	flag.DurationVar(&o.duration, "duration", 5*time.Second, "timed replay phase length (ignored with -cold)")
	flag.IntVar(&o.conc, "conc", 8, "concurrent connections")
	flag.Float64Var(&o.qps, "qps", 0, "target requests/s across all connections (0 = unthrottled)")
	flag.BoolVar(&o.warm, "warm", true, "send every distinct request once before timing (cache-hot replay)")
	flag.BoolVar(&o.check, "check", true, "verify served results against direct in-process solves")
	flag.BoolVar(&o.cold, "cold", false, "cache-cold run: send each distinct request exactly once, no warm phase")
	flag.IntVar(&o.spread, "spread", 1, "replicate the request mix N times with distinct seeds (distinct digests)")
	flag.StringVar(&o.label, "label", "", "row label for the -json summary (e.g. agents=2)")
	flag.StringVar(&o.jsonPath, "json", "", "write a one-row JSON summary of the replay phase to this file")
	flag.DurationVar(&o.timeout, "timeout", 60*time.Second, "per-request timeout")
	flag.BoolVar(&o.trace, "trace", false, "sample per-job traces and print a stage-breakdown percentile table")
	flag.Parse()
	if len(o.addrs) == 0 {
		o.addrs = []string{"http://127.0.0.1:8080"}
	}
	if o.spread < 1 {
		o.spread = 1
	}
	if o.cold {
		o.warm = false
	}
	if err := run(&o); err != nil {
		fmt.Fprintln(os.Stderr, "kecss-load:", err)
		os.Exit(1)
	}
}

func run(o *opts) error {
	sf, err := scenario.Load(o.path)
	if err != nil {
		return err
	}
	baseReqs, err := sf.Requests()
	if err != nil {
		return err
	}
	// -spread: N seed-varied copies of every request. Distinct seeds mean
	// distinct digests, so a spread mix is cache-cold by construction —
	// throughput then measures solver capacity (how many agents), not
	// cache hits.
	wireReqs := make([]*wire.SolveRequest, 0, len(baseReqs)*o.spread)
	for c := 0; c < o.spread; c++ {
		for _, wr := range baseReqs {
			if c == 0 {
				wireReqs = append(wireReqs, wr)
				continue
			}
			cp := *wr
			cp.Seed = wr.Seed + int64(c)*1_000_003
			wireReqs = append(wireReqs, &cp)
		}
	}
	reqs := make([]*request, len(wireReqs))
	for i, wr := range wireReqs {
		body, err := json.Marshal(wr)
		if err != nil {
			return err
		}
		reqs[i] = &request{body: body}
	}
	fmt.Printf("kecss-load: %s → %s: %d scenarios, %d distinct requests (spread %d)\n",
		o.path, strings.Join(o.addrs, ", "), len(sf.Scenarios), len(reqs), o.spread)

	if o.check {
		start := time.Now()
		if err := solveDirect(wireReqs, reqs); err != nil {
			return err
		}
		fmt.Printf("check: solved all %d requests in-process in %v\n",
			len(reqs), time.Since(start).Round(time.Millisecond))
	}

	client := &http.Client{
		Timeout: o.timeout,
		Transport: &http.Transport{
			MaxIdleConns:        o.conc * len(o.addrs),
			MaxIdleConnsPerHost: o.conc,
		},
	}

	// Warm phase: every distinct request once per target, measuring cold
	// round-trips (first target only — later targets may hit a shared
	// store), then once more to measure unloaded cache-hit round-trips —
	// the like-for-like pair behind the reported cache speedup (the timed
	// replay below measures hits under full concurrency instead).
	var sampler *traceSampler
	if o.trace {
		sampler = newTraceSampler(64)
	}

	var coldRTT, hitRTT []time.Duration
	var coldSolveMS []float64
	if o.warm {
		for ti, addr := range o.addrs {
			for i, r := range reqs {
				start := time.Now()
				resp, jobID, err := post(client, addr, r.body)
				if err != nil {
					return fmt.Errorf("warm request %d via %s: %w", i, addr, err)
				}
				sampler.add(addr, jobID)
				if ti == 0 {
					coldRTT = append(coldRTT, time.Since(start))
					if !resp.Cached {
						coldSolveMS = append(coldSolveMS, resp.SolveMillis)
					}
				}
				if err := verify(r, resp, o.check); err != nil {
					return fmt.Errorf("warm request %d via %s: %w", i, addr, err)
				}
			}
		}
		for i, r := range reqs {
			addr := o.addrs[i%len(o.addrs)]
			start := time.Now()
			resp, _, err := post(client, addr, r.body)
			if err != nil {
				return fmt.Errorf("hit-measure request %d: %w", i, err)
			}
			hitRTT = append(hitRTT, time.Since(start))
			if !resp.Cached {
				return fmt.Errorf("hit-measure request %d missed the cache on %s", i, addr)
			}
			if err := verify(r, resp, o.check); err != nil {
				return fmt.Errorf("hit-measure request %d: %w", i, err)
			}
		}
		fmt.Printf("warm: %d requests, mean cold round-trip %v, mean cache-hit round-trip %v\n",
			len(coldRTT), meanDuration(coldRTT).Round(time.Microsecond),
			meanDuration(hitRTT).Round(time.Microsecond))
	}

	// Timed replay phase. Requests round-robin across targets by global
	// sequence number. In -cold mode the phase sends each distinct request
	// exactly once and ends when the mix is exhausted; otherwise it cycles
	// the mix until -duration elapses.
	var (
		next         atomic.Int64
		mismatch     atomic.Int64
		throttled    atomic.Int64
		retries      atomic.Int64
		backoffNanos atomic.Int64
		failures     atomic.Int64
		mu           sync.Mutex
		samples      []sample
	)
	start := time.Now()
	deadline := start.Add(o.duration)
	var wg sync.WaitGroup
	for c := 0; c < o.conc; c++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			local := make([]sample, 0, 4096)
			rng := rand.New(rand.NewSource(int64(worker) + 1))
			attempt := 0
			var redo int64 = -1 // cold mode: sequence to retry after a shed
			for {
				var seq int64
				if redo >= 0 {
					seq, redo = redo, -1
				} else {
					seq = next.Add(1) - 1
				}
				if o.cold {
					if seq >= int64(len(reqs)) {
						break
					}
				} else if time.Now().After(deadline) {
					break
				}
				if o.qps > 0 {
					// Global pacing: request #seq is due at start + seq/qps.
					due := start.Add(time.Duration(float64(seq) / o.qps * float64(time.Second)))
					if wait := time.Until(due); wait > 0 {
						time.Sleep(wait)
					}
				}
				target := int(seq) % len(o.addrs)
				r := reqs[int(seq)%len(reqs)]
				t0 := time.Now()
				resp, jobID, err := post(client, o.addrs[target], r.body)
				rtt := time.Since(t0)
				if err != nil {
					var te *throttleError
					if errors.As(err, &te) {
						// The server shed us (429 queue-full or 503 draining):
						// honour its Retry-After, with jittered exponential
						// backoff on top so shed workers do not re-arrive in
						// lockstep. In cold mode the shed request must still
						// be sent, so its sequence is retried.
						throttled.Add(1)
						retries.Add(1)
						d := backoffDelay(attempt, te.retryAfter, rng)
						attempt++
						backoffNanos.Add(int64(d))
						if o.cold {
							redo = seq
						}
						time.Sleep(d)
						continue
					}
					failures.Add(1)
					fmt.Fprintf(os.Stderr, "kecss-load: %v\n", err)
					continue
				}
				attempt = 0
				sampler.add(o.addrs[target], jobID)
				if err := verify(r, resp, o.check); err != nil {
					mismatch.Add(1)
					fmt.Fprintf(os.Stderr, "kecss-load: %v\n", err)
				}
				local = append(local, sample{latency: rtt, cached: resp.Cached, target: target})
			}
			mu.Lock()
			samples = append(samples, local...)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if len(samples) == 0 {
		return fmt.Errorf("no successful requests in %v", elapsed)
	}
	report(o, samples, elapsed, coldRTT, hitRTT, coldSolveMS, throttled.Load(), retries.Load(),
		time.Duration(backoffNanos.Load()), failures.Load(), mismatch.Load())

	if o.trace {
		if err := sampler.report(client); err != nil {
			return err
		}
	}
	if o.jsonPath != "" {
		if err := writeSummary(o, samples, elapsed, failures.Load(), mismatch.Load(), throttled.Load()); err != nil {
			return err
		}
	}
	if failures.Load() > 0 {
		return fmt.Errorf("%d requests failed", failures.Load())
	}
	if mismatch.Load() > 0 {
		return fmt.Errorf("%d digest mismatches — served results diverge from direct solves", mismatch.Load())
	}
	return nil
}

// solveDirect computes every request's expected result with the in-process
// pool and records it on the request. Each request MUST run as its own
// single-task sweep: the pool XORs the task index into the solver seed, and
// the server solves every job at index 0 — batching here would check the
// served bytes against differently-seeded solves. Sweeps are safe to run
// concurrently, so a -spread mix still checks at full parallelism.
func solveDirect(wireReqs []*wire.SolveRequest, reqs []*request) error {
	tasks := make([]kecss.Task, len(wireReqs))
	for i, wr := range wireReqs {
		g, err := wr.Graph.ToGraph()
		if err != nil {
			return fmt.Errorf("request %d: %w", i, err)
		}
		solver, err := kecss.ParseSolver(wr.Solver)
		if err != nil {
			return fmt.Errorf("request %d: %w", i, err)
		}
		tasks[i] = kecss.Task{
			Graph:  g,
			Solver: solver,
			K:      wr.K,
			Opts:   server.OptionsFromSpec(wr.SolveSpec),
		}
	}
	pool := kecss.NewPool(0)
	defer pool.Close()
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
		firstEr error
	)
	for w := 0; w < min(len(tasks), 8); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(tasks) {
					return
				}
				res := pool.Sweep(tasks[i : i+1])[0]
				if res.Err != nil {
					errOnce.Do(func() { firstEr = fmt.Errorf("request %d: direct solve: %w", i, res.Err) })
					return
				}
				reqs[i].expected = &wire.SolveResponse{
					Edges:        res.Edges,
					Weight:       res.Weight,
					Rounds:       res.Rounds,
					ResultDigest: wire.SolveResultDigest(res.Edges, res.Weight, res.Rounds),
				}
			}
		}()
	}
	wg.Wait()
	return firstEr
}

// throttleError marks a shed request (429 queue-full or 503 draining) so
// the replay loop can back off without counting it as a failure. retryAfter
// is the server's Retry-After hint (0 when absent).
type throttleError struct {
	msg        string
	retryAfter time.Duration
}

func (e *throttleError) Error() string { return e.msg }

// backoffBase and backoffCap shape the client-side retry schedule; the
// server's Retry-After floors the delay when present.
const (
	backoffBase = 10 * time.Millisecond
	backoffCap  = 2 * time.Second
)

// backoffDelay computes the sleep before retry number attempt (0-based):
// capped exponential growth from backoffBase, floored at the server's
// Retry-After hint, with jitter in [0.5, 1.5) to spread shed workers out.
func backoffDelay(attempt int, retryAfter time.Duration, rng *rand.Rand) time.Duration {
	d := backoffBase
	if attempt < 30 {
		d = backoffBase << attempt
	}
	if d > backoffCap || d <= 0 {
		d = backoffCap
	}
	if retryAfter > d {
		d = retryAfter
	}
	return time.Duration(float64(d) * (0.5 + rng.Float64()))
}

// post sends one solve request. The returned job ID is the X-Kecss-Job
// response header — present only when the request missed the cache and ran
// as a durable job, so it doubles as the -trace sampling signal.
func post(client *http.Client, addr string, body []byte) (*wire.SolveResponse, string, error) {
	resp, err := client.Post(addr+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
		var after time.Duration
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			after = time.Duration(secs) * time.Second
		}
		return nil, "", &throttleError{msg: fmt.Sprintf("%d: %s", resp.StatusCode, raw), retryAfter: after}
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	var out wire.SolveResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, "", err
	}
	return &out, resp.Header.Get("X-Kecss-Job"), nil
}

// verify checks a served response against the request's expected direct
// result (when -check gathered one) and its internal digest consistency.
func verify(r *request, resp *wire.SolveResponse, check bool) error {
	if got := wire.SolveResultDigest(resp.Edges, resp.Weight, resp.Rounds); got != resp.ResultDigest {
		return fmt.Errorf("response digest %s does not match its own payload (%s)", resp.ResultDigest, got)
	}
	if !check || r.expected == nil {
		return nil
	}
	if resp.ResultDigest != r.expected.ResultDigest ||
		!reflect.DeepEqual(resp.Edges, r.expected.Edges) ||
		resp.Weight != r.expected.Weight || resp.Rounds != r.expected.Rounds {
		return fmt.Errorf("served result digest %s != direct solve digest %s",
			resp.ResultDigest, r.expected.ResultDigest)
	}
	return nil
}

func meanFloat(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

func meanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// targetStats aggregates the replay samples dispatched to one -addr target.
type targetStats struct {
	Addr     string  `json:"addr"`
	Requests int     `json:"requests"`
	RPS      float64 `json:"rps"`
	P50Ms    float64 `json:"p50_ms"`
	P90Ms    float64 `json:"p90_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MaxMs    float64 `json:"max_ms"`
	Hits     int     `json:"cache_hits"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// perTarget splits the replay samples by dispatch target and computes each
// target's throughput and latency percentiles over the shared elapsed
// window (round-robin dispatch keeps the windows comparable).
func perTarget(o *opts, samples []sample, elapsed time.Duration) []targetStats {
	byTarget := make([][]time.Duration, len(o.addrs))
	hits := make([]int, len(o.addrs))
	for _, s := range samples {
		byTarget[s.target] = append(byTarget[s.target], s.latency)
		if s.cached {
			hits[s.target]++
		}
	}
	out := make([]targetStats, len(o.addrs))
	for i, lat := range byTarget {
		sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
		st := targetStats{Addr: o.addrs[i], Requests: len(lat), Hits: hits[i]}
		if len(lat) > 0 {
			st.RPS = float64(len(lat)) / elapsed.Seconds()
			st.P50Ms = ms(percentile(lat, 0.50))
			st.P90Ms = ms(percentile(lat, 0.90))
			st.P99Ms = ms(percentile(lat, 0.99))
			st.MaxMs = ms(lat[len(lat)-1])
		}
		out[i] = st
	}
	return out
}

func report(o *opts, samples []sample, elapsed time.Duration, coldRTT, hitRTT []time.Duration, coldSolveMS []float64,
	throttled, retries int64, backoff time.Duration, failures, mismatches int64) {
	lat := make([]time.Duration, 0, len(samples))
	hits := 0
	for _, s := range samples {
		lat = append(lat, s.latency)
		if s.cached {
			hits++
		}
	}
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })

	rps := float64(len(samples)) / elapsed.Seconds()
	fmt.Printf("\nreplay: %d requests in %v (%.0f req/s), %d failures, %d throttled (429/503)\n",
		len(samples), elapsed.Round(time.Millisecond), rps, failures, throttled)
	if retries > 0 {
		fmt.Printf("backoff: %d retries, %v total backoff (mean %v per retry)\n",
			retries, backoff.Round(time.Millisecond), (backoff / time.Duration(retries)).Round(time.Microsecond))
	}
	fmt.Printf("latency: p50 %v  p90 %v  p99 %v  max %v\n",
		percentile(lat, 0.50).Round(time.Microsecond),
		percentile(lat, 0.90).Round(time.Microsecond),
		percentile(lat, 0.99).Round(time.Microsecond),
		lat[len(lat)-1].Round(time.Microsecond))
	fmt.Printf("cache: %d/%d hits (%.1f%%)\n", hits, len(samples), 100*float64(hits)/float64(len(samples)))

	if len(o.addrs) > 1 {
		for _, st := range perTarget(o, samples, elapsed) {
			fmt.Printf("target %-28s %6d req (%.0f req/s)  p50 %.2fms  p90 %.2fms  p99 %.2fms  hits %d\n",
				st.Addr, st.Requests, st.RPS, st.P50Ms, st.P90Ms, st.P99Ms, st.Hits)
		}
	}

	if len(coldRTT) > 0 && len(hitRTT) > 0 {
		coldMean := meanDuration(coldRTT)
		hitMean := meanDuration(hitRTT)
		fmt.Printf("speedup: mean cold round-trip %v vs mean cache-hit round-trip %v → %.1fx (mean in-server cold solve %v)\n",
			coldMean.Round(time.Microsecond), hitMean.Round(time.Microsecond),
			float64(coldMean)/float64(hitMean),
			time.Duration(meanFloat(coldSolveMS)*float64(time.Millisecond)).Round(time.Microsecond))
	}
	if o.check {
		if mismatches == 0 {
			fmt.Println("digests: every served result matches the direct in-process solve")
		} else {
			fmt.Printf("digests: %d MISMATCHES\n", mismatches)
		}
	}
}

// summaryRow is the -json output: one row describing the replay phase, in
// the same spirit as cmd/benchjson rows — CI's agent-scaling smoke collects
// these into BENCH_serve.json and gates on the rps ratio between rows.
type summaryRow struct {
	Label      string        `json:"label,omitempty"`
	Addrs      []string      `json:"addrs"`
	Scenario   string        `json:"scenario"`
	Cold       bool          `json:"cold"`
	Spread     int           `json:"spread"`
	Conc       int           `json:"conc"`
	Requests   int           `json:"requests"`
	Seconds    float64       `json:"seconds"`
	RPS        float64       `json:"rps"`
	P50Ms      float64       `json:"p50_ms"`
	P90Ms      float64       `json:"p90_ms"`
	P99Ms      float64       `json:"p99_ms"`
	MaxMs      float64       `json:"max_ms"`
	HitRate    float64       `json:"hit_rate"`
	Failures   int64         `json:"failures"`
	Mismatches int64         `json:"mismatches"`
	Throttled  int64         `json:"throttled"`
	Targets    []targetStats `json:"targets,omitempty"`
}

func writeSummary(o *opts, samples []sample, elapsed time.Duration, failures, mismatches, throttled int64) error {
	lat := make([]time.Duration, 0, len(samples))
	hits := 0
	for _, s := range samples {
		lat = append(lat, s.latency)
		if s.cached {
			hits++
		}
	}
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	row := summaryRow{
		Label:      o.label,
		Addrs:      o.addrs,
		Scenario:   o.path,
		Cold:       o.cold,
		Spread:     o.spread,
		Conc:       o.conc,
		Requests:   len(samples),
		Seconds:    elapsed.Seconds(),
		RPS:        float64(len(samples)) / elapsed.Seconds(),
		P50Ms:      ms(percentile(lat, 0.50)),
		P90Ms:      ms(percentile(lat, 0.90)),
		P99Ms:      ms(percentile(lat, 0.99)),
		MaxMs:      ms(lat[len(lat)-1]),
		HitRate:    float64(hits) / float64(len(samples)),
		Failures:   failures,
		Mismatches: mismatches,
		Throttled:  throttled,
	}
	if len(o.addrs) > 1 {
		row.Targets = perTarget(o, samples, elapsed)
	}
	raw, err := json.MarshalIndent(row, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(o.jsonPath, raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("summary: wrote %s\n", o.jsonPath)
	return nil
}
