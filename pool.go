package kecss

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/service"
)

// ErrPoolClosed is reported for every task of a Sweep (and wrapped by the
// batch helpers' errors) submitted after the pool's Close has begun. Test
// with errors.Is.
var ErrPoolClosed = errors.New("kecss: pool is closed")

// Solver names one of the pool's algorithms in a Task.
type Solver int

const (
	// Solver2ECSS runs Solve2ECSS (weighted 2-ECSS, Theorem 1.1).
	Solver2ECSS Solver = iota
	// SolverKECSS runs SolveKECSS with the task's K (Theorem 1.2).
	SolverKECSS
	// Solver3ECSSUnweighted runs Solve3ECSSUnweighted (Theorem 1.3).
	Solver3ECSSUnweighted
	// Solver3ECSSWeighted runs Solve3ECSSWeighted (§5.4).
	Solver3ECSSWeighted
)

// String returns the solver's short name (matching the sweep scenario
// vocabulary of cmd/kecss-bench).
func (s Solver) String() string {
	switch s {
	case Solver2ECSS:
		return "2ecss"
	case SolverKECSS:
		return "kecss"
	case Solver3ECSSUnweighted:
		return "3ecss"
	case Solver3ECSSWeighted:
		return "3ecss-weighted"
	}
	return fmt.Sprintf("Solver(%d)", int(s))
}

// ParseSolver maps a solver's short name ("2ecss", "kecss", "3ecss",
// "3ecss-weighted" — the vocabulary of Solver.String, the bench scenario
// files and the serve API) back to the Solver constant. The empty string
// defaults to Solver2ECSS, matching the scenario files.
func ParseSolver(name string) (Solver, error) {
	switch name {
	case "2ecss", "":
		return Solver2ECSS, nil
	case "kecss":
		return SolverKECSS, nil
	case "3ecss":
		return Solver3ECSSUnweighted, nil
	case "3ecss-weighted":
		return Solver3ECSSWeighted, nil
	}
	return 0, fmt.Errorf("kecss: unknown solver %q", name)
}

// Task is one solve in a Pool sweep.
type Task struct {
	// Graph is the instance to solve. Several tasks may share one *Graph
	// (per-trial sweeps); the pool validates each distinct graph once.
	Graph *Graph
	// Solver selects the algorithm.
	Solver Solver
	// K is the target connectivity for SolverKECSS (ignored otherwise).
	K int
	// Opts are per-task options, applied on top of the pool's defaults.
	// WithSeed here sets the task's base seed; the effective seed is
	// baseSeed XOR the task's index in the sweep, so repeating a graph
	// across tasks yields independent, reproducible trials.
	Opts []Option
}

// Result is one task's outcome. Exactly one of Two/KECSS/Three is non-nil
// on success, matching the task's solver; Edges, Weight and Rounds mirror
// that result for solver-agnostic consumers.
type Result struct {
	// Task is the task's index in the sweep (results keep sweep order).
	Task int
	// Err is the task's failure, nil on success.
	Err error
	// Edges, Weight and Rounds are the solved subgraph's edge IDs, total
	// weight and charged/measured round count.
	Edges  []int
	Weight int64
	Rounds int64
	// Two/KECSS/Three hold the full per-solver result struct.
	Two   *TwoECSSResult
	KECSS *KECSSResult
	Three *ThreeECSSResult
}

// PoolOption configures NewPool.
type PoolOption func(*poolConfig)

type poolConfig struct {
	arenas   bool
	defaults []Option
}

// WithoutArenas builds the pool's workers without recycled simulation
// arenas, so every network allocates fresh buffers. Results are identical
// either way; this exists to measure the arenas' effect and for the
// determinism tests.
func WithoutArenas() PoolOption {
	return func(c *poolConfig) { c.arenas = false }
}

// WithPoolDefaults sets solver options applied to every task of every sweep
// (a task's own Opts are applied after these and win on conflict).
func WithPoolDefaults(opts ...Option) PoolOption {
	return func(c *poolConfig) { c.defaults = append(c.defaults, opts...) }
}

// Pool solves batches of instances on a fixed set of worker goroutines.
//
// Each worker owns a private simulation arena, recycled across the tasks it
// runs; each task draws from its own RNG seeded with baseSeed XOR task
// index. Together these make every batch API deterministic: the same tasks
// produce byte-identical results whether the pool has 1 worker or
// GOMAXPROCS, with arenas or without, and regardless of how the scheduler
// interleaves the workers.
//
// A Pool is goroutine-safe: Sweep and the batch helpers may be called
// concurrently from multiple goroutines, and Close may race with them —
// sweeps admitted before Close complete normally, later ones report
// ErrPoolClosed on every task. Close is idempotent.
type Pool struct {
	svc      *service.Pool
	defaults []Option
}

// NewPool starts a solver pool with the given number of workers (<= 0 means
// GOMAXPROCS). Call Close when done.
func NewPool(workers int, opts ...PoolOption) *Pool {
	c := poolConfig{arenas: true}
	for _, o := range opts {
		o(&c)
	}
	return &Pool{
		svc:      service.NewPool(workers, c.arenas),
		defaults: c.defaults,
	}
}

// Workers returns the number of workers.
func (p *Pool) Workers() int { return p.svc.Size() }

// Close shuts the workers down, waiting for in-flight sweeps to finish.
// Close is idempotent; sweeps and batch solves submitted after it report
// ErrPoolClosed instead of running.
func (p *Pool) Close() { p.svc.Close() }

// Sweep solves every task on the pool's workers and returns one Result per
// task, in task order. Individual failures land in Result.Err; Sweep itself
// never fails (on a closed pool every Result carries ErrPoolClosed). Before
// solving, each distinct graph's edge connectivity is checked once (up to
// the largest k any of its tasks needs, using the capped max-flow's early
// exit) instead of once per task, so multi-trial sweeps do not re-validate
// identical graphs.
func (p *Pool) Sweep(tasks []Task) []Result {
	results := make([]Result, len(tasks))
	for i := range results {
		results[i].Task = i
	}
	if err := p.preValidate(tasks, results); err != nil {
		return p.failAll(results, err)
	}
	err := p.svc.Run(len(tasks), func(i int, w *service.Worker) {
		if results[i].Err != nil {
			return // validation already rejected this task
		}
		results[i] = p.solveOne(i, tasks[i], w)
	})
	if err != nil {
		return p.failAll(results, err)
	}
	return results
}

// failAll marks every not-yet-failed result with the sweep-level error,
// translating the service layer's ErrClosed into the public ErrPoolClosed.
func (p *Pool) failAll(results []Result, err error) []Result {
	if errors.Is(err, service.ErrClosed) {
		err = ErrPoolClosed
	}
	for i := range results {
		if results[i].Err == nil {
			results[i].Err = err
		}
	}
	return results
}

// requiredConnectivity returns the edge connectivity the task's solver
// demands of its input (0 = no up-front requirement).
func (t Task) requiredConnectivity() (int, error) {
	switch t.Solver {
	case Solver2ECSS:
		// core.Solve2ECSS validates only n >= 2 itself; keep parity.
		return 0, nil
	case SolverKECSS:
		if t.K < 1 {
			return 0, fmt.Errorf("kecss: SolverKECSS needs K >= 1, got %d", t.K)
		}
		return t.K, nil
	case Solver3ECSSUnweighted, Solver3ECSSWeighted:
		return 3, nil
	}
	return 0, fmt.Errorf("kecss: unknown solver %d", int(t.Solver))
}

// preValidate computes, once per distinct graph, min(λ, maxK) with maxK the
// largest connectivity any of the graph's tasks requires — one capped Dinic
// sweep answers every task's "is it k-edge-connected?" — and records an
// error on each task whose requirement fails. Validations of distinct
// graphs run on the pool's workers; a non-nil return means the pool was
// closed and nothing was validated.
func (p *Pool) preValidate(tasks []Task, results []Result) error {
	needBy := make(map[*Graph]int)
	var order []*Graph
	for i, t := range tasks {
		if t.Graph == nil {
			results[i].Err = fmt.Errorf("kecss: task %d has a nil graph", i)
			continue
		}
		k, err := t.requiredConnectivity()
		if err != nil {
			results[i].Err = fmt.Errorf("kecss: task %d: %w", i, err)
			continue
		}
		if k == 0 {
			continue
		}
		if prev, seen := needBy[t.Graph]; !seen {
			needBy[t.Graph] = k
			order = append(order, t.Graph)
		} else if k > prev {
			needBy[t.Graph] = k
		}
	}
	if len(order) == 0 {
		return nil
	}
	lam := make(map[*Graph]int, len(order))
	lams := make([]int, len(order))
	if err := p.svc.Run(len(order), func(i int, _ *service.Worker) {
		lams[i] = order[i].EdgeConnectivityUpTo(needBy[order[i]])
	}); err != nil {
		return err
	}
	for i, g := range order {
		lam[g] = lams[i]
	}
	for i, t := range tasks {
		if results[i].Err != nil || t.Graph == nil {
			continue
		}
		k, _ := t.requiredConnectivity()
		if k > 0 && lam[t.Graph] < k {
			results[i].Err = fmt.Errorf("kecss: task %d: input graph is not %d-edge-connected", i, k)
		}
	}
	return nil
}

// solveOne runs one validated task on a worker. All state is derived from
// the task index and the task itself, never from the worker, so results are
// schedule-independent; the worker contributes only its recycled arena.
func (p *Pool) solveOne(idx int, t Task, w *service.Worker) Result {
	opts := make([]Option, 0, len(p.defaults)+len(t.Opts))
	opts = append(opts, p.defaults...)
	opts = append(opts, t.Opts...)
	c := buildConfig(opts)
	env := solveEnv{
		// The task-index XOR keeps trials on a shared graph independent
		// while index 0 with the default seed reproduces the serial API.
		rng:            rand.New(rand.NewSource(c.seed ^ int64(idx))),
		arena:          w.Arena,
		labels:         w.Labels,
		skipValidation: true, // preValidate already ran
	}
	r := Result{Task: idx}
	switch t.Solver {
	case Solver2ECSS:
		res, err := core.Solve2ECSS(t.Graph, c.twoOpts(env))
		if err != nil {
			r.Err = err
			return r
		}
		r.Two, r.Edges, r.Weight, r.Rounds = res, res.Edges, res.Weight, res.Rounds
	case SolverKECSS:
		res, err := core.SolveKECSS(t.Graph, t.K, c.kecssOpts(env))
		if err != nil {
			r.Err = err
			return r
		}
		r.KECSS, r.Edges, r.Weight, r.Rounds = res, res.Edges, res.Weight, res.Rounds
	case Solver3ECSSUnweighted:
		res, err := core.Solve3ECSSUnweighted(t.Graph, c.threeOpts(env))
		if err != nil {
			r.Err = err
			return r
		}
		r.Three, r.Edges, r.Weight, r.Rounds = res, res.Edges, res.Weight, res.Rounds
	case Solver3ECSSWeighted:
		res, err := core.Solve3ECSSWeighted(t.Graph, c.threeOpts(env))
		if err != nil {
			r.Err = err
			return r
		}
		r.Three, r.Edges, r.Weight, r.Rounds = res, res.Edges, res.Weight, res.Rounds
	default:
		r.Err = fmt.Errorf("kecss: unknown solver %d", int(t.Solver))
	}
	return r
}

// Solve2ECSS solves every graph with Solve2ECSS on the pool, returning
// results in input order. The first failure aborts with its error.
func (p *Pool) Solve2ECSS(graphs []*Graph, opts ...Option) ([]*TwoECSSResult, error) {
	results := p.Sweep(makeTasks(graphs, Solver2ECSS, 0, opts))
	out := make([]*TwoECSSResult, len(results))
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("kecss: batch 2-ECSS task %d: %w", i, r.Err)
		}
		out[i] = r.Two
	}
	return out, nil
}

// SolveKECSS solves every graph with SolveKECSS(k) on the pool, returning
// results in input order. The first failure aborts with its error.
func (p *Pool) SolveKECSS(graphs []*Graph, k int, opts ...Option) ([]*KECSSResult, error) {
	results := p.Sweep(makeTasks(graphs, SolverKECSS, k, opts))
	out := make([]*KECSSResult, len(results))
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("kecss: batch %d-ECSS task %d: %w", k, i, r.Err)
		}
		out[i] = r.KECSS
	}
	return out, nil
}

// Solve3ECSS solves every graph with Solve3ECSSUnweighted on the pool,
// returning results in input order. The first failure aborts with its
// error.
func (p *Pool) Solve3ECSS(graphs []*Graph, opts ...Option) ([]*ThreeECSSResult, error) {
	results := p.Sweep(makeTasks(graphs, Solver3ECSSUnweighted, 0, opts))
	out := make([]*ThreeECSSResult, len(results))
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("kecss: batch 3-ECSS task %d: %w", i, r.Err)
		}
		out[i] = r.Three
	}
	return out, nil
}

func makeTasks(graphs []*Graph, s Solver, k int, opts []Option) []Task {
	tasks := make([]Task, len(graphs))
	for i, g := range graphs {
		tasks[i] = Task{Graph: g, Solver: s, K: k, Opts: opts}
	}
	return tasks
}
