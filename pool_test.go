package kecss

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/graph"
)

// poolTestTasks builds a mixed sweep: every solver, with two graphs shared
// across multiple trial tasks (exercising the validate-once path and the
// per-index seed derivation).
func poolTestTasks() []Task {
	rng := rand.New(rand.NewSource(11))
	g2 := graph.RandomKConnected(24, 2, 30, rng, graph.RandomWeights(rng, 40))
	g3 := graph.RandomKConnected(16, 3, 18, rng, graph.UnitWeights())
	g3w := graph.RandomKConnected(14, 3, 16, rng, graph.RandomWeights(rng, 20))
	var tasks []Task
	for trial := 0; trial < 3; trial++ {
		tasks = append(tasks,
			Task{Graph: g2, Solver: Solver2ECSS, Opts: []Option{WithSeed(7)}},
			Task{Graph: g3, Solver: SolverKECSS, K: 3, Opts: []Option{WithSeed(5)}},
			Task{Graph: g3, Solver: Solver3ECSSUnweighted, Opts: []Option{WithSeed(3), WithLabelBits(40)}},
			Task{Graph: g3w, Solver: Solver3ECSSWeighted, Opts: []Option{WithSeed(9)}},
		)
	}
	return tasks
}

// digest flattens a sweep's results into a byte-comparable form covering
// the full visible outcome: edge sets, weights, rounds and solver-specific
// iteration counts.
func digest(results []Result) string {
	var b strings.Builder
	for _, r := range results {
		fmt.Fprintf(&b, "task=%d err=%v edges=%v w=%d rounds=%d", r.Task, r.Err, r.Edges, r.Weight, r.Rounds)
		if r.KECSS != nil {
			fmt.Fprintf(&b, " iters=%d", r.KECSS.Iterations)
		}
		if r.Three != nil {
			fmt.Fprintf(&b, " iters=%d size=%d", r.Three.Iterations, r.Three.Size)
		}
		if r.Two != nil {
			fmt.Fprintf(&b, " tapiters=%d", r.Two.TAP.Iterations)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// The headline determinism contract: Pool.Sweep produces byte-identical
// Edges/Weight/Rounds for all solvers at workers=1 and workers=GOMAXPROCS,
// with and without arenas.
func TestPoolSweepDeterministic(t *testing.T) {
	tasks := poolTestTasks()
	ref := func() string {
		p := NewPool(1)
		defer p.Close()
		return digest(p.Sweep(tasks))
	}()
	for _, line := range strings.Split(strings.TrimSpace(ref), "\n") {
		if !strings.Contains(line, "err=<nil>") {
			t.Fatalf("reference sweep has failures:\n%s", ref)
		}
	}
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, workers := range workerCounts {
		for _, arenas := range []bool{true, false} {
			var popts []PoolOption
			if !arenas {
				popts = append(popts, WithoutArenas())
			}
			p := NewPool(workers, popts...)
			got := digest(p.Sweep(tasks))
			p.Close()
			if got != ref {
				t.Fatalf("workers=%d arenas=%v diverged from workers=1:\n--- got\n%s--- want\n%s",
					workers, arenas, got, ref)
			}
		}
	}
}

// Race regression (run under -race in CI): two goroutines sweeping the same
// batch on one shared pool must not race and must produce byte-identical
// results. Before the pool existed, sharing one *rand.Rand across
// concurrent solver calls was a silent data race; the pool's per-task
// derived RNGs are the fix under test.
func TestPoolConcurrentSweepsIdentical(t *testing.T) {
	tasks := poolTestTasks()
	p := NewPool(4)
	defer p.Close()
	const repeats = 4
	digests := make([]string, repeats)
	var wg sync.WaitGroup
	for i := 0; i < repeats; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			digests[i] = digest(p.Sweep(tasks))
		}(i)
	}
	wg.Wait()
	for i := 1; i < repeats; i++ {
		if digests[i] != digests[0] {
			t.Fatalf("concurrent sweep %d diverged:\n--- got\n%s--- want\n%s", i, digests[i], digests[0])
		}
	}
}

// Index 0 with a given seed reproduces the serial API exactly, so existing
// callers can move single solves into a pool without changing results.
// TestPool3ECSSLabelingDeterministic pins the incremental labeling engine
// under the pool: a 3-ECSS sweep (both variants, per-worker label arenas)
// is byte-identical at workers=1 vs 4, and switching every task to the
// retained from-scratch reference scan changes none of the decisions —
// edges, weights and iteration counts stay identical (rounds differ by the
// measured-vs-charged split, so the digest here omits them). Run with
// -race in CI.
func TestPool3ECSSLabelingDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := graph.RandomKConnected(20, 3, 24, rng, graph.RandomWeights(rng, 30))
	build := func(extra ...Option) []Task {
		var tasks []Task
		for trial := 0; trial < 4; trial++ {
			tasks = append(tasks,
				Task{Graph: g, Solver: Solver3ECSSUnweighted, Opts: append([]Option{WithSeed(3)}, extra...)},
				Task{Graph: g, Solver: Solver3ECSSWeighted, Opts: append([]Option{WithSeed(5)}, extra...)},
			)
		}
		return tasks
	}
	decisions := func(results []Result) string {
		var b strings.Builder
		for _, r := range results {
			fmt.Fprintf(&b, "task=%d err=%v edges=%v w=%d", r.Task, r.Err, r.Edges, r.Weight)
			if r.Three != nil {
				fmt.Fprintf(&b, " iters=%d base=%d corr=%d", r.Three.Iterations, r.Three.BaseSize, r.Three.CorrectionEdges)
			}
			b.WriteByte('\n')
		}
		return b.String()
	}
	sweep := func(workers int, extra ...Option) string {
		p := NewPool(workers)
		defer p.Close()
		return decisions(p.Sweep(build(extra...)))
	}
	inc1 := sweep(1)
	inc4 := sweep(4)
	if inc1 != inc4 {
		t.Fatal("incremental labeling sweep differs at workers=1 vs 4")
	}
	ref4 := sweep(4, WithReferenceLabeling())
	if inc1 != ref4 {
		t.Fatal("reference labeling changed sweep decisions")
	}
}

func TestPoolMatchesSerialAtIndexZero(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.RandomKConnected(20, 2, 24, rng, graph.RandomWeights(rng, 30))
	serial, err := Solve2ECSS(g, WithSeed(77))
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(2)
	defer p.Close()
	batch, err := p.Solve2ECSS([]*Graph{g}, WithSeed(77))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Edges, batch[0].Edges) || serial.Weight != batch[0].Weight ||
		serial.Rounds != batch[0].Rounds {
		t.Fatalf("pool task 0 diverged from serial API: %v/%d/%d vs %v/%d/%d",
			batch[0].Edges, batch[0].Weight, batch[0].Rounds, serial.Edges, serial.Weight, serial.Rounds)
	}
}

// Trials on a shared graph get independent seeds (baseSeed XOR index), so a
// multi-trial sweep actually explores different random runs.
func TestPoolTrialsAreIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.RandomKConnected(30, 2, 60, rng, graph.RandomWeights(rng, 100))
	graphs := make([]*Graph, 6)
	for i := range graphs {
		graphs[i] = g
	}
	p := NewPool(2)
	defer p.Close()
	res, err := p.Solve2ECSS(graphs, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[string]bool{}
	for _, r := range res {
		if !VerifyKEdgeConnected(g, r.Edges, 2) {
			t.Fatal("trial output not 2-edge-connected")
		}
		distinct[fmt.Sprintf("%v", r.Edges)] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("6 trials produced %d distinct augmentations; seeds not derived per task", len(distinct))
	}
}

func TestPoolBatchHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g3a := graph.RandomKConnected(14, 3, 14, rng, graph.UnitWeights())
	g3b := graph.Harary(3, 16, graph.UnitWeights())
	p := NewPool(0) // GOMAXPROCS
	defer p.Close()

	kres, err := p.SolveKECSS([]*Graph{g3a, g3b}, 3, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range []*Graph{g3a, g3b} {
		if !VerifyKEdgeConnected(g, kres[i].Edges, 3) {
			t.Fatalf("k-ECSS batch result %d invalid", i)
		}
	}
	tres, err := p.Solve3ECSS([]*Graph{g3a, g3b}, WithSeed(8), WithLabelBits(40))
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range []*Graph{g3a, g3b} {
		if !VerifyKEdgeConnected(g, tres[i].Edges, 3) {
			t.Fatalf("3-ECSS batch result %d invalid", i)
		}
	}
}

// Validation failures surface per task in Sweep and abort batch helpers;
// the shared under-connected graph is detected once and rejected for every
// task that needs more connectivity than it has.
func TestPoolValidationRejectsPerTask(t *testing.T) {
	ring := graph.Cycle(12, graph.UnitWeights()) // 2- but not 3-edge-connected
	p := NewPool(2)
	defer p.Close()
	results := p.Sweep([]Task{
		{Graph: ring, Solver: Solver2ECSS, Opts: []Option{WithSeed(1)}},
		{Graph: ring, Solver: SolverKECSS, K: 3},
		{Graph: ring, Solver: Solver3ECSSUnweighted},
		{Graph: nil, Solver: Solver2ECSS},
		{Graph: ring, Solver: SolverKECSS, K: 0},
	})
	if results[0].Err != nil {
		t.Fatalf("2-ECSS on a ring must pass: %v", results[0].Err)
	}
	for _, i := range []int{1, 2, 3, 4} {
		if results[i].Err == nil {
			t.Fatalf("task %d should have failed validation", i)
		}
	}
	if _, err := p.Solve3ECSS([]*Graph{ring}); err == nil {
		t.Fatal("batch helper must surface validation failure")
	}
}

func TestSolverString(t *testing.T) {
	for s, want := range map[Solver]string{
		Solver2ECSS:           "2ecss",
		SolverKECSS:           "kecss",
		Solver3ECSSUnweighted: "3ecss",
		Solver3ECSSWeighted:   "3ecss-weighted",
		Solver(42):            "Solver(42)",
	} {
		if got := s.String(); got != want {
			t.Errorf("Solver(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestPoolCloseIdempotentAndTyped(t *testing.T) {
	p := NewPool(2)
	g := graph.Harary(2, 10, graph.UnitWeights())
	if _, err := p.Solve2ECSS([]*Graph{g}, WithSeed(3)); err != nil {
		t.Fatalf("solve before close: %v", err)
	}
	p.Close()
	p.Close() // idempotent

	results := p.Sweep([]Task{{Graph: g, Solver: Solver2ECSS}, {Graph: g, Solver: SolverKECSS, K: 2}})
	if len(results) != 2 {
		t.Fatalf("Sweep on a closed pool returned %d results, want 2", len(results))
	}
	for i, r := range results {
		if !errors.Is(r.Err, ErrPoolClosed) {
			t.Fatalf("task %d after Close: err = %v, want ErrPoolClosed", i, r.Err)
		}
	}
	if _, err := p.Solve2ECSS([]*Graph{g}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("batch helper after Close: err = %v, want ErrPoolClosed", err)
	}
	if _, err := p.SolveKECSS([]*Graph{g}, 2); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("SolveKECSS after Close: err = %v, want ErrPoolClosed", err)
	}
}

// Sweeps racing Close must each either complete fully or fail every task
// with ErrPoolClosed — never panic, never mix. Exercised under -race in CI.
func TestPoolCloseConcurrentWithSweep(t *testing.T) {
	g := graph.Harary(2, 12, graph.UnitWeights())
	for trial := 0; trial < 8; trial++ {
		p := NewPool(2)
		var wg sync.WaitGroup
		for r := 0; r < 3; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				results := p.Sweep([]Task{{Graph: g, Solver: Solver2ECSS}, {Graph: g, Solver: Solver2ECSS}})
				closed, solved := 0, 0
				for _, res := range results {
					switch {
					case errors.Is(res.Err, ErrPoolClosed):
						closed++
					case res.Err == nil:
						solved++
					default:
						t.Errorf("unexpected sweep error: %v", res.Err)
					}
				}
				if closed != 0 && solved != 0 {
					t.Errorf("sweep mixed %d solved with %d pool-closed tasks", solved, closed)
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Close()
		}()
		wg.Wait()
		p.Close()
	}
}

func TestParseSolverRoundTrips(t *testing.T) {
	for _, s := range []Solver{Solver2ECSS, SolverKECSS, Solver3ECSSUnweighted, Solver3ECSSWeighted} {
		got, err := ParseSolver(s.String())
		if err != nil || got != s {
			t.Errorf("ParseSolver(%q) = %v, %v; want %v", s.String(), got, err, s)
		}
	}
	if got, err := ParseSolver(""); err != nil || got != Solver2ECSS {
		t.Errorf("ParseSolver(\"\") = %v, %v; want Solver2ECSS", got, err)
	}
	if _, err := ParseSolver("nope"); err == nil {
		t.Error("ParseSolver accepted an unknown name")
	}
}
