package kecss

// Micro-benchmarks for the min-cut enumeration engine and the capped
// max-flow connectivity check that feeds it (and the pool's validation
// sweep). These are the "warm enumeration path" benches the CI bench-smoke
// step watches: BENCH_cuts.json is generated from their output and the job
// fails if allocs/op on the enumeration path exceeds the pinned ceiling
// (see .github/workflows/ci.yml).
//
// Harary(k, n) is used as the instance family because its edge connectivity
// is exactly k by construction, which is the precondition of
// EnumerateMinCuts(g, k).

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func BenchmarkMicro_EnumerateMinCuts(b *testing.B) {
	cases := []struct{ size, n int }{
		{3, 64},
		{3, 256},
		{4, 96},
		{5, 64},
		{3, 2000},
	}
	for _, tc := range cases {
		b.Run(fmt.Sprintf("size=%d/n=%d", tc.size, tc.n), func(b *testing.B) {
			b.ReportAllocs()
			g := graph.Harary(tc.size, tc.n, graph.UnitWeights())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cuts, err := core.EnumerateMinCuts(g, tc.size, rand.New(rand.NewSource(int64(i))))
				if err != nil {
					b.Fatal(err)
				}
				if len(cuts) == 0 {
					b.Fatalf("no size-%d cuts found on Harary(%d,%d)", tc.size, tc.size, tc.n)
				}
			}
		})
	}
}

func BenchmarkMicro_EdgeConnectivityUpTo(b *testing.B) {
	cases := []struct{ k, n int }{
		{4, 128},
		{4, 512},
		{3, 2000},
	}
	for _, tc := range cases {
		b.Run(fmt.Sprintf("k=%d/n=%d", tc.k, tc.n), func(b *testing.B) {
			b.ReportAllocs()
			g := graph.Harary(tc.k, tc.n, graph.UnitWeights())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if lam := g.EdgeConnectivityUpTo(tc.k + 1); lam != tc.k {
					b.Fatalf("λ=%d, want %d", lam, tc.k)
				}
			}
		})
	}
}

// BenchmarkMicro_SolveKECSSEndToEnd is the end-to-end solve bench for the
// cut-enumeration-dominated workloads: k=3 (3-ECSS through the Aug
// framework, size-2 cut enumeration) and k=4 (the first k whose Aug level
// enumerates size-3 cuts by contraction).
func BenchmarkMicro_SolveKECSSEndToEnd(b *testing.B) {
	cases := []struct{ k, n int }{
		{3, 96},
		{4, 64},
	}
	for _, tc := range cases {
		b.Run(fmt.Sprintf("k=%d/n=%d", tc.k, tc.n), func(b *testing.B) {
			b.ReportAllocs()
			rng := rand.New(rand.NewSource(int64(tc.k*1000 + tc.n)))
			g := graph.RandomKConnected(tc.n, tc.k, 2*tc.n, rng, graph.RandomWeights(rng, 1000))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := SolveKECSS(g, tc.k, WithSeed(int64(i))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMicro_EnumerateMinCutsReference benches the retained flat-Karger
// oracle on the smaller instances (it is Θ(n²·log n) trials, so larger
// sizes are impractical) — the live "before" column for the table in
// CHANGES.md. CI's bench-smoke step anchors its -bench regex to the
// non-Reference benchmarks, so this never runs in CI.
func BenchmarkMicro_EnumerateMinCutsReference(b *testing.B) {
	cases := []struct{ size, n int }{
		{3, 64},
		{3, 256},
	}
	for _, tc := range cases {
		b.Run(fmt.Sprintf("size=%d/n=%d", tc.size, tc.n), func(b *testing.B) {
			b.ReportAllocs()
			g := graph.Harary(tc.size, tc.n, graph.UnitWeights())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cuts, err := core.EnumerateMinCutsReference(g, tc.size, rand.New(rand.NewSource(int64(i))))
				if err != nil {
					b.Fatal(err)
				}
				if len(cuts) == 0 {
					b.Fatal("no cuts found")
				}
			}
		})
	}
}
