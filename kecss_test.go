package kecss

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestPublicSolve2ECSS(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.RandomKConnected(30, 2, 40, rng, graph.RandomWeights(rng, 50))
	res, err := Solve2ECSS(g, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyKEdgeConnected(g, res.Edges, 2) {
		t.Fatal("output not 2-edge-connected")
	}
	// Reproducibility: same seed, same result.
	res2, err := Solve2ECSS(g, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight != res2.Weight || len(res.Edges) != len(res2.Edges) {
		t.Fatal("same seed produced different results")
	}
	// Different seed may differ but must stay valid.
	res3, err := Solve2ECSS(g, WithSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyKEdgeConnected(g, res3.Edges, 2) {
		t.Fatal("seed 99 output invalid")
	}
}

func TestPublicSolveKECSS(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.RandomKConnected(18, 3, 20, rng, graph.RandomWeights(rng, 20))
	res, err := SolveKECSS(g, 3, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyKEdgeConnected(g, res.Edges, 3) {
		t.Fatal("output not 3-edge-connected")
	}
	if res.Rounds <= 0 {
		t.Fatal("no rounds recorded")
	}
}

func TestPublicSolve3ECSSUnweighted(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.RandomKConnected(16, 3, 16, rng, graph.UnitWeights())
	res, err := Solve3ECSSUnweighted(g, WithSeed(11), WithLabelBits(40))
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyKEdgeConnected(g, res.Edges, 3) {
		t.Fatal("output not 3-edge-connected")
	}
}

func TestPublicSolve3ECSSWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomKConnected(16, 3, 16, rng, graph.RandomWeights(rng, 20))
	res, err := Solve3ECSSWeighted(g, WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyKEdgeConnected(g, res.Edges, 3) {
		t.Fatal("weighted 3-ECSS output not 3-edge-connected")
	}
	if res.Weight != g.WeightOf(res.Edges) {
		t.Fatal("weight bookkeeping wrong")
	}
}

func TestPublicSolveTAP(t *testing.T) {
	g := NewGraph(5)
	var treeEdges []int
	for i := 0; i+1 < 5; i++ {
		treeEdges = append(treeEdges, g.AddEdge(i, i+1, 3))
	}
	g.AddEdge(4, 0, 2)
	g.AddEdge(0, 2, 1)
	res, err := SolveTAP(g, treeEdges, 0, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	all := append(append([]int(nil), treeEdges...), res.Augmentation...)
	if !VerifyKEdgeConnected(g, all, 2) {
		t.Fatal("TAP output invalid")
	}
}

func TestPublicOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.RandomKConnected(14, 2, 12, rng, graph.RandomWeights(rng, 9))
	res, err := Solve2ECSS(g,
		WithSeed(3),
		WithSimulatedMST(),
		WithParallelExecutor(),
		WithVoteDenominator(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyKEdgeConnected(g, res.Edges, 2) {
		t.Fatal("output invalid with options")
	}
	kres, err := SolveKECSS(g, 2, WithSeed(3), WithPhaseLength(2))
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyKEdgeConnected(g, kres.Edges, 2) {
		t.Fatal("k-ECSS output invalid with phase option")
	}
}

func TestVerifyKEdgeConnectedRejects(t *testing.T) {
	g := NewGraph(4)
	a := g.AddEdge(0, 1, 1)
	b := g.AddEdge(1, 2, 1)
	cEdge := g.AddEdge(2, 3, 1)
	g.AddEdge(3, 0, 1)
	if VerifyKEdgeConnected(g, []int{a, b, cEdge}, 2) {
		t.Fatal("a path should not verify as 2-edge-connected")
	}
	if VerifyKEdgeConnected(g, []int{a, b}, 1) {
		t.Fatal("a non-spanning subgraph should not verify")
	}
}
