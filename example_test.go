package kecss_test

import (
	"fmt"
	"log"

	kecss "repro"
)

// ring6 builds a weighted 6-cycle with two chords: the standard toy input.
func ring6() *kecss.Graph {
	g := kecss.NewGraph(6)
	weights := []int64{4, 3, 5, 2, 6, 4}
	for i := 0; i < 6; i++ {
		g.AddEdge(i, (i+1)%6, weights[i])
	}
	g.AddEdge(0, 3, 9)
	g.AddEdge(1, 4, 7)
	return g
}

func ExampleSolve2ECSS() {
	g := ring6()
	res, err := kecss.Solve2ECSS(g, kecss.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("2-edge-connected:", kecss.VerifyKEdgeConnected(g, res.Edges, 2))
	fmt.Println("weight:", res.Weight)
	// Output:
	// 2-edge-connected: true
	// weight: 24
}

func ExampleSolveKECSS() {
	// A 4-edge-connected circulant; ask for a 3-ECSS.
	g := kecss.NewGraph(8)
	for off := 1; off <= 2; off++ {
		for i := 0; i < 8; i++ {
			g.AddEdge(i, (i+off)%8, int64(1+off))
		}
	}
	res, err := kecss.SolveKECSS(g, 3, kecss.WithSeed(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("3-edge-connected:", kecss.VerifyKEdgeConnected(g, res.Edges, 3))
	fmt.Println("levels:", len(res.Levels))
	// Output:
	// 3-edge-connected: true
	// levels: 3
}

func ExampleSolveTAP() {
	// Augment an explicitly chosen spanning tree (the path 0-1-2-3).
	g := kecss.NewGraph(4)
	var tree []int
	for i := 0; i+1 < 4; i++ {
		tree = append(tree, g.AddEdge(i, i+1, 10))
	}
	g.AddEdge(3, 0, 1) // the cheap closing chord
	res, err := kecss.SolveTAP(g, tree, 0, kecss.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("augmentation edges:", len(res.Augmentation), "weight:", res.Weight)
	// Output:
	// augmentation edges: 1 weight: 1
}
