package journal

// Replay micro-benchmark for the CI bench-smoke step: BENCH_journal.json is
// generated from this output and the job fails if allocs/op or bytes/op on
// a 10k-record replay exceed the pinned ceilings (see
// .github/workflows/ci.yml). Replay cost is what bounds restart time, so it
// is the path worth watching.

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"
)

// buildJournal writes a journal of n realistic job lifecycles (accepted →
// leased → done with a small result payload) and returns its path.
func buildJournal(b *testing.B, dir string, n int) string {
	b.Helper()
	path := filepath.Join(dir, fmt.Sprintf("bench-%d.wal", n))
	j, _, err := Open(path, Options{})
	if err != nil {
		b.Fatal(err)
	}
	req := json.RawMessage(`{"graph":{"n":16,"edges":[[0,1,3],[1,2,5]]},"solver":"2ecss","seed":7}`)
	res := json.RawMessage(`{"digest":"abcdef0123456789","edges":[0,1,2,3,4,5,6,7],"weight":123,"rounds":42,"result_digest":"fedcba9876543210"}`)
	per := n / 3
	for i := 0; i < per; i++ {
		id := fmt.Sprintf("j%06d-abcdef012345", i)
		for _, rec := range []Record{
			{Type: TypeAccepted, JobID: id, Digest: "abcdef0123456789", Request: req},
			{Type: TypeLeased, JobID: id, Digest: "abcdef0123456789", Attempt: 1, Worker: "w0"},
			{Type: TypeDone, JobID: id, Digest: "abcdef0123456789", Result: res},
		} {
			rec := rec
			if err := j.Append(&rec); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := j.Close(); err != nil {
		b.Fatal(err)
	}
	return path
}

// BenchmarkMicro_JournalReplay measures a full ReadAll of a 10k-record
// journal — the startup replay path.
func BenchmarkMicro_JournalReplay(b *testing.B) {
	path := buildJournal(b, b.TempDir(), 10002)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := ReadAll(path)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Records) != 10002 || rep.TornBytes != 0 {
			b.Fatalf("replayed %d records, %d torn", len(rep.Records), rep.TornBytes)
		}
	}
}

// BenchmarkMicro_JournalAppend measures one durable (fsynced) append —
// the per-job admission overhead when appenders do not share batches.
func BenchmarkMicro_JournalAppend(b *testing.B) {
	path := filepath.Join(b.TempDir(), "append.wal")
	j, _, err := Open(path, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	rec := Record{Type: TypeAccepted, JobID: "j000001-abcdef012345", Digest: "abcdef0123456789",
		Request: json.RawMessage(`{"solver":"2ecss","seed":7}`)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := rec
		if err := j.Append(&r); err != nil {
			b.Fatal(err)
		}
	}
}
