package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

func openT(t *testing.T, path string) (*Journal, *Replay) {
	t.Helper()
	j, rep, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return j, rep
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, rep := openT(t, path)
	if len(rep.Records) != 0 || rep.TornBytes != 0 {
		t.Fatalf("fresh journal replayed %+v", rep)
	}
	want := []Record{
		{Type: TypeAccepted, JobID: "j1", Digest: "d1", Request: []byte(`{"x":1}`)},
		{Type: TypeLeased, JobID: "j1", Digest: "d1", Attempt: 1, Worker: "w0"},
		{Type: TypeDone, JobID: "j1", Digest: "d1", Result: []byte(`{"y":2}`)},
	}
	for i := range want {
		rec := want[i]
		if err := j.Append(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	rep2, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Records) != len(want) || rep2.TornBytes != 0 {
		t.Fatalf("replayed %d records, %d torn bytes; want %d, 0", len(rep2.Records), rep2.TornBytes, len(want))
	}
	for i, got := range rep2.Records {
		got.Unix = 0 // Append stamps it
		if !reflect.DeepEqual(got, want[i]) {
			t.Errorf("record %d = %+v, want %+v", i, got, want[i])
		}
	}

	// Reopen for appending: old records replayed, new ones go after them.
	j2, rep3 := openT(t, path)
	if len(rep3.Records) != len(want) {
		t.Fatalf("reopen replayed %d records, want %d", len(rep3.Records), len(want))
	}
	if err := j2.Append(&Record{Type: TypeAccepted, JobID: "j2"}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	rep4, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep4.Records) != len(want)+1 || rep4.Records[3].JobID != "j2" {
		t.Fatalf("after reopen+append got %d records (last %+v)", len(rep4.Records), rep4.Records[len(rep4.Records)-1])
	}
}

// writeRecords builds a journal with n records and returns its bytes and the
// offsets of each record boundary.
func writeRecords(t *testing.T, path string, n int) ([]byte, []int64) {
	t.Helper()
	j, _ := openT(t, path)
	for i := 0; i < n; i++ {
		if err := j.Append(&Record{Type: TypeAccepted, JobID: fmt.Sprintf("j%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var offs []int64
	off := int64(0)
	for off < int64(len(raw)) {
		offs = append(offs, off)
		n := binary.LittleEndian.Uint32(raw[off : off+4])
		off += 8 + int64(n)
	}
	offs = append(offs, off) // end
	return raw, offs
}

func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.wal")
	raw, offs := writeRecords(t, base, 3)

	// Cut the file at every byte position inside the last record (torn
	// header, torn payload) and verify replay keeps exactly the prefix.
	last := offs[2]
	for cut := last + 1; cut < int64(len(raw)); cut++ {
		path := filepath.Join(dir, fmt.Sprintf("cut%d.wal", cut))
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rep, err := ReadAll(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(rep.Records) != 2 || rep.TornBytes != cut-last {
			t.Fatalf("cut %d: %d records, %d torn bytes; want 2, %d", cut, len(rep.Records), rep.TornBytes, cut-last)
		}
	}

	// Open (not ReadAll) must truncate the torn tail and keep appending.
	path := filepath.Join(dir, "truncate.wal")
	if err := os.WriteFile(path, raw[:last+5], 0o644); err != nil {
		t.Fatal(err)
	}
	j, rep := openT(t, path)
	if len(rep.Records) != 2 || rep.TornBytes != 5 {
		t.Fatalf("open replayed %d records, %d torn; want 2, 5", len(rep.Records), rep.TornBytes)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != last {
		t.Fatalf("after open size = %v (err %v), want %d", fi.Size(), err, last)
	}
	if err := j.Append(&Record{Type: TypeDone, JobID: "after"}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	rep2, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Records) != 3 || rep2.Records[2].JobID != "after" || rep2.TornBytes != 0 {
		t.Fatalf("after truncate+append replay = %d records torn %d", len(rep2.Records), rep2.TornBytes)
	}
}

func TestCorruptChecksumStopsReplay(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.wal")
	raw, offs := writeRecords(t, base, 3)

	// Flip one payload byte of the second record: replay keeps record 0 only
	// (everything from the corrupt record on is discarded as torn).
	corrupt := append([]byte(nil), raw...)
	corrupt[offs[1]+8] ^= 0xff
	path := filepath.Join(dir, "corrupt.wal")
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 1 || rep.TornBytes != int64(len(raw))-offs[1] {
		t.Fatalf("corrupt replay = %d records, %d torn; want 1, %d", len(rep.Records), rep.TornBytes, int64(len(raw))-offs[1])
	}

	// An absurd length header is corruption, not an allocation request.
	huge := append([]byte(nil), raw[:offs[1]]...)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 1<<30)
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(nil, crcTable))
	huge = append(huge, hdr[:]...)
	path2 := filepath.Join(dir, "huge.wal")
	if err := os.WriteFile(path2, huge, 0o644); err != nil {
		t.Fatal(err)
	}
	rep2, err := ReadAll(path2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Records) != 1 || rep2.TornBytes != 8 {
		t.Fatalf("huge-length replay = %d records, %d torn; want 1, 8", len(rep2.Records), rep2.TornBytes)
	}
}

func TestConcurrentAppendsShareFsyncs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _ := openT(t, path)
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := j.Append(&Record{Type: TypeAccepted, JobID: fmt.Sprintf("j%d", i)}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	syncs := j.Syncs()
	if syncs < 1 || syncs > n {
		t.Fatalf("syncs = %d, want within [1, %d]", syncs, n)
	}
	j.Close()
	rep, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != n {
		t.Fatalf("replayed %d records, want %d", len(rep.Records), n)
	}
	seen := make(map[string]bool)
	for _, r := range rep.Records {
		if seen[r.JobID] {
			t.Fatalf("duplicate record %q", r.JobID)
		}
		seen[r.JobID] = true
	}
	t.Logf("%d concurrent appends used %d fsyncs", n, syncs)
}

func TestCloseSemantics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _ := openT(t, path)
	if err := j.Append(&Record{Type: TypeAccepted, JobID: "j0"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := j.Append(&Record{Type: TypeDone, JobID: "j0"}); err != ErrClosed {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	rep, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 1 {
		t.Fatalf("replayed %d records, want 1", len(rep.Records))
	}
}

func TestOnFsyncObserved(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	var mu sync.Mutex
	var calls int
	j, _, err := Open(path, Options{OnFsync: func(d time.Duration) {
		mu.Lock()
		calls++
		mu.Unlock()
		if d < 0 {
			t.Errorf("negative fsync latency %v", d)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(&Record{Type: TypeAccepted, JobID: fmt.Sprintf("j%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	mu.Lock()
	defer mu.Unlock()
	if calls < 1 {
		t.Fatalf("OnFsync never called")
	}
}
