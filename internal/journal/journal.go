// Package journal is an append-only, fsync-batched, checksummed write-ahead
// log of job lifecycle records for the kecss-serve job layer.
//
// # File layout
//
// The journal is a single file of length-prefixed records:
//
//	┌────────────┬────────────┬──────────────────┐
//	│ len uint32 │ crc uint32 │ payload (len B)  │   repeated
//	└────────────┴────────────┴──────────────────┘
//
// Both header fields are little-endian; crc is CRC-32C (Castagnoli) over
// the payload, which is the canonical JSON encoding of a Record. Records
// are strictly appended; nothing is ever rewritten in place.
//
// # Durability and batching
//
// Append returns only after the record — and everything appended before
// it — has been written and fsynced (group commit: one flusher goroutine
// batches every record that arrives while the previous fsync is in flight
// into the next write+fsync, so concurrent appenders share fsyncs instead
// of queueing one each). A record for which Append has returned nil
// survives kill -9.
//
// # Truncation tolerance
//
// A crash can leave a torn tail: a partially written header or payload, or
// a payload whose checksum fails. Replay (Open) accepts any valid prefix:
// it stops at the first short or corrupt record, reports how many trailing
// bytes were dropped, and truncates the file back to the valid prefix so
// subsequent appends never interleave with garbage. Only the tail can be
// torn — records are written in order and fsynced in order — so mid-file
// corruption (valid-looking data after a bad record) is indistinguishable
// from a torn tail and is likewise discarded.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/chaos"
)

// Record types, in lifecycle order.
const (
	// TypeAccepted: a job was admitted; Request holds the full solve
	// request so replay can re-enqueue it.
	TypeAccepted = "accepted"
	// TypeLeased: a worker claimed the job (Attempt is the 1-based
	// delivery count, Worker the claimant).
	TypeLeased = "leased"
	// TypeDone: the job completed; Result holds the solve response.
	TypeDone = "done"
	// TypeFailed: the job failed permanently (bad input); Error explains.
	TypeFailed = "failed"
	// TypeDead: the job exhausted its retry budget; Error is the last
	// failure or lease-expiry reason.
	TypeDead = "dead"
)

// Record is one job lifecycle event. Unused fields are omitted from the
// encoding; Request/Result are stored as raw JSON so replay round-trips
// them byte-identically.
type Record struct {
	Type     string          `json:"t"`
	JobID    string          `json:"job"`
	Digest   string          `json:"digest,omitempty"`
	Attempt  int             `json:"attempt,omitempty"`
	Worker   string          `json:"worker,omitempty"`
	Error    string          `json:"error,omitempty"`
	Unix     int64           `json:"unix,omitempty"`     // event time, unix nanos (informational)
	Deadline int64           `json:"deadline,omitempty"` // unix nanos; 0 = none
	Request  json.RawMessage `json:"req,omitempty"`
	Result   json.RawMessage `json:"res,omitempty"`
}

// Options configures Open.
type Options struct {
	// Inject is the fault-injection hook (nil in production).
	Inject *chaos.Injector
	// OnFsync, when set, observes the latency of every fsync batch.
	OnFsync func(time.Duration)
}

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("journal: closed")

// maxRecordLen bounds a single record; a length header beyond it is treated
// as corruption (protects replay from allocating garbage lengths).
const maxRecordLen = 64 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Journal is the open write-ahead log. Safe for concurrent Append.
type Journal struct {
	f       *os.File
	inj     *chaos.Injector
	onFsync func(time.Duration)

	mu      sync.Mutex
	pending []byte        // guarded by mu
	waiters []chan error  // guarded by mu
	closed  bool          // guarded by mu
	kick    chan struct{} // immutable after Open; sends race-free by design
	flushed chan struct{} // immutable after Open; closed when the flusher exits
	syncs   int64         // guarded by mu
}

// Replay is what Open recovered from an existing journal file.
type Replay struct {
	// Records is every valid record, in append order.
	Records []Record
	// TornBytes is how many trailing bytes were dropped as a torn tail
	// (0 for a cleanly closed journal).
	TornBytes int64
}

// Open opens (creating if absent) the journal at path, replays it, and
// truncates any torn tail. The returned Journal is ready for Append.
func Open(path string, opts Options) (*Journal, *Replay, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	rep, valid, err := scan(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > valid {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{
		f:       f,
		inj:     opts.Inject,
		onFsync: opts.OnFsync,
		kick:    make(chan struct{}, 1),
		flushed: make(chan struct{}),
	}
	go j.flusher()
	return j, rep, nil
}

// ReadAll replays the journal at path read-only — the inspection entry
// point for tests and tooling. The file is not truncated.
func ReadAll(path string) (*Replay, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	rep, _, err := scan(f)
	return rep, err
}

// scan decodes records from the start of f, stopping at the first short or
// corrupt record. It returns the replay and the byte offset of the valid
// prefix.
func scan(f *os.File) (*Replay, int64, error) {
	raw, err := io.ReadAll(f)
	if err != nil {
		return nil, 0, fmt.Errorf("journal: reading: %w", err)
	}
	rep := &Replay{}
	off := 0
	for {
		rest := raw[off:]
		if len(rest) == 0 {
			break
		}
		if len(rest) < 8 {
			rep.TornBytes = int64(len(rest))
			break
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		crc := binary.LittleEndian.Uint32(rest[4:8])
		if n > maxRecordLen || len(rest) < 8+int(n) {
			rep.TornBytes = int64(len(rest))
			break
		}
		payload := rest[8 : 8+n]
		if crc32.Checksum(payload, crcTable) != crc {
			rep.TornBytes = int64(len(rest))
			break
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			// A checksummed record that fails to decode is a format bug,
			// not a torn tail — surface it.
			return nil, 0, fmt.Errorf("journal: record %d at offset %d: %w", len(rep.Records), off, err)
		}
		rep.Records = append(rep.Records, rec)
		off += 8 + int(n)
	}
	return rep, int64(off), nil
}

// appendFrame encodes rec into buf in the journal's framing.
func appendFrame(buf []byte, rec *Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return buf, fmt.Errorf("journal: encoding record: %w", err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...), nil
}

// Append durably logs rec: it returns nil only after rec (and every record
// appended before it) is written and fsynced. Concurrent appends share
// fsync batches.
func (j *Journal) Append(rec *Record) error {
	if rec.Unix == 0 {
		rec.Unix = time.Now().UnixNano()
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return ErrClosed
	}
	var err error
	j.pending, err = appendFrame(j.pending, rec)
	if err != nil {
		j.mu.Unlock()
		return err
	}
	ch := make(chan error, 1)
	j.waiters = append(j.waiters, ch)
	j.mu.Unlock()
	select {
	case j.kick <- struct{}{}:
	default:
	}
	return <-ch
}

// flusher is the single goroutine that writes and fsyncs pending batches.
// It exits after a grab that observes the closed flag: the closed flag is
// set under mu before Close's kick, and Append refuses once it is set, so
// that final grab necessarily contains every acked-pending record.
func (j *Journal) flusher() {
	defer close(j.flushed)
	for {
		<-j.kick
		j.mu.Lock()
		batch, waiters := j.pending, j.waiters
		j.pending, j.waiters = nil, nil
		closed := j.closed
		j.mu.Unlock()
		if len(batch) > 0 {
			err := j.flushBatch(batch)
			for _, ch := range waiters {
				ch <- err
			}
		}
		if closed {
			return
		}
	}
}

// flushBatch writes one batch and fsyncs, honouring the chaos plan: a
// planned crash here exits before any byte reaches the file (the un-acked
// batch is lost, as a real pre-write crash would lose it), and a planned
// torn crash persists only a prefix of the batch — the torn tail replay
// must tolerate.
func (j *Journal) flushBatch(batch []byte) error {
	switch j.inj.At(chaos.JournalBeforeFsync) {
	case chaos.ActCrashTorn:
		if _, err := j.f.Write(batch[:len(batch)/2]); err == nil {
			j.f.Sync()
		}
		j.inj.Exit()
	}
	start := time.Now()
	if _, err := j.f.Write(batch); err != nil {
		return fmt.Errorf("journal: write: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.mu.Lock()
	j.syncs++
	j.mu.Unlock()
	if j.onFsync != nil {
		j.onFsync(time.Since(start))
	}
	return nil
}

// Syncs reports how many fsync batches have completed.
func (j *Journal) Syncs() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncs
}

// Close flushes pending records and closes the file. Appends racing Close
// may get ErrClosed. Idempotent.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		<-j.flushed
		return nil
	}
	j.closed = true
	j.mu.Unlock()
	select {
	case j.kick <- struct{}{}:
	default:
	}
	<-j.flushed
	return j.f.Close()
}
