// Package tapdist is the message-level implementation of the per-iteration
// information flows of the paper's §3.1: given the segment decomposition
// and the current coverage state, it runs the actual CONGEST computations —
// the segment-internal pipelined ancestor/highway scans (Claims 3.1/3.2),
// the global dissemination of per-segment uncovered counts over a BFS tree,
// and the per-edge endpoint exchange — on the simulator, then computes
// every non-tree edge's |Ce| from exactly the information those flows
// delivered, via the paper's Case 1–3 analysis.
//
// internal/tap charges the per-iteration O(D+√n) cost from measured
// decomposition parameters; this package *measures* it. The test suite
// proves the distributed computation agrees with the direct tree-path count
// on every edge, and experiment E11 compares charged vs measured rounds.
//
//kecss:deterministic
package tapdist

import (
	"fmt"
	"sort"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/primitives"
	"repro/internal/segments"
	"repro/internal/tree"
)

const (
	kindAncestor int8 = iota + 60
	kindHighwayUp
	kindHighwayDown
	kindSummary
	kindPathStream
)

// pathItem is one (tree edge, covered) fact as shipped in messages.
type pathItem struct {
	edge    int
	covered bool
}

// vertexView is what a vertex has learned by the end of the information
// phases: its in-segment ancestor path and its home segment's highway, both
// with coverage bits (Claims 3.1/3.2).
type vertexView struct {
	up      []pathItem // P_{v,rS}: own parent edge first, rS-side last
	highway []pathItem // home segment's highway facts (order unimportant)
}

// Result is the outcome of one measured information phase.
type Result struct {
	// Ce maps every non-tree edge ID to its number of uncovered tree path
	// edges, as computed from the distributed information.
	Ce map[int]int64
	// Metrics accumulates the simulator cost of all phases.
	Metrics congest.Metrics
}

// ComputeCe runs the §3.1 information flows for one iteration over the
// decomposition dec, where covered[t] reports whether tree edge t is
// already covered, and returns |Ce| for every non-tree edge together with
// the measured cost. bfs is the global-communication BFS tree (built once
// per run by the caller; pass nil to have one built and its rounds counted).
func ComputeCe(g *graph.Graph, dec *segments.Decomposition, covered map[int]bool, bfs *tree.Rooted, opts ...congest.Option) (*Result, error) {
	// The four phases run consecutive networks over g; share their buffers.
	opts = congest.WithDefaultArena(opts)
	res := &Result{Ce: make(map[int]int64)}
	if bfs == nil {
		built, m, err := primitives.BuildBFSTree(g, 0, opts...)
		if err != nil {
			return nil, fmt.Errorf("tapdist: BFS tree: %w", err)
		}
		accAdd(&res.Metrics, m)
		bfs = built
	}
	views := make([]vertexView, g.N())

	if err := runAncestorScan(g, dec, covered, views, &res.Metrics, opts); err != nil {
		return nil, err
	}
	if err := runHighwayScan(g, dec, covered, views, &res.Metrics, opts); err != nil {
		return nil, err
	}
	segUncov, err := runSegmentSummaries(g, dec, bfs, views, &res.Metrics, opts)
	if err != nil {
		return nil, err
	}
	if err := runExchangeAndCompute(g, dec, views, segUncov, res, opts); err != nil {
		return nil, err
	}
	return res, nil
}

func accAdd(dst *congest.Metrics, m congest.Metrics) {
	dst.Rounds += m.Rounds
	dst.Messages += m.Messages
	dst.Bits += m.Bits
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// ---------------------------------------------------------------------------
// Phase 1: ancestor scan. Every vertex learns (edge, covered) for its
// in-segment path P_{v,rS} by pipelined push-down: an unmarked vertex
// forwards its facts to all children (which are in its segment); a marked
// vertex forwards nothing (its children's segment paths start fresh at it).
// ---------------------------------------------------------------------------

type ancestorProgram struct {
	tr     *tree.Rooted
	marked bool
	buf    []pathItem
	sent   int
	out    *[]pathItem
}

func (p *ancestorProgram) Init(ctx *congest.Context) { p.step(ctx) }

func (p *ancestorProgram) step(ctx *congest.Context) {
	if p.marked || p.sent >= len(p.buf) {
		p.sent = len(p.buf) // marked vertices never forward
		return
	}
	item := p.buf[p.sent]
	p.sent++
	for _, c := range p.tr.Children(ctx.Node()) {
		ctx.SendTo(c, congest.Payload{Kind: kindAncestor, A: int64(item.edge), B: boolToInt(item.covered)})
	}
}

func (p *ancestorProgram) Round(ctx *congest.Context, inbox []congest.Message) bool {
	for _, m := range inbox {
		if m.Kind == kindAncestor {
			p.buf = append(p.buf, pathItem{edge: int(m.A), covered: m.B != 0})
		}
	}
	p.step(ctx)
	*p.out = p.buf
	return p.sent == len(p.buf)
}

func runAncestorScan(g *graph.Graph, dec *segments.Decomposition, covered map[int]bool, views []vertexView, acc *congest.Metrics, opts []congest.Option) error {
	tr := dec.Tree
	net := congest.NewNetwork(g, func(v int) congest.Program {
		p := &ancestorProgram{tr: tr, marked: dec.Marked[v], out: &views[v].up}
		if v != tr.Root {
			te := tr.ParentEdge[v]
			p.buf = append(p.buf, pathItem{edge: te, covered: covered[te]})
		}
		return p
	}, opts...)
	m, err := net.Run(2*dec.MaxSegmentDiameter() + 8)
	if err != nil {
		return fmt.Errorf("tapdist: ancestor scan: %w", err)
	}
	accAdd(acc, m)
	return nil
}

// ---------------------------------------------------------------------------
// Phase 2: highway scan. Per segment, highway facts are pipelined up the
// highway to rS, which pipelines the complete list down the whole segment.
// All segments run in parallel (their edge sets are disjoint). Messages
// carry the segment ID so boundary vertices (members of several segments)
// can demultiplex.
// ---------------------------------------------------------------------------

type hwState struct {
	buf  []pathItem
	sent int
}

type highwayProgram struct {
	dec  *segments.Decomposition
	node int
	// Upcast state: facts still travelling to rS (only highway vertices).
	upParentEdge int // tree edge toward the highway parent, -1 if none
	upBuf        []pathItem
	upSent       int
	// Downcast state, per segment this vertex originates or forwards for.
	down      map[int]*hwState // segment ID -> broadcast progress
	downOrder []int            // sorted keys of down: sends iterate this, not the map
	expect    map[int]int      // segment ID -> highway length
	childEdge map[int][]int    // segment ID -> tree edges to children in it
	out       *[]pathItem      // facts of the home segment's highway
	homeSeg   int
}

func (p *highwayProgram) Init(ctx *congest.Context) {
	p.node = ctx.Node()
	p.step(ctx)
}

func (p *highwayProgram) step(ctx *congest.Context) {
	if p.upSent < len(p.upBuf) && p.upParentEdge != -1 {
		item := p.upBuf[p.upSent]
		p.upSent++
		ctx.Send(p.upParentEdge, congest.Payload{
			Kind: kindHighwayUp, A: int64(item.edge), B: boolToInt(item.covered),
		})
	}
	// Iterate the sorted key list: inboxes preserve each sender's send
	// order, so sending in map order would leak iteration order into the
	// receivers' buffers.
	for _, segID := range p.downOrder {
		st := p.down[segID]
		if st.sent >= len(st.buf) {
			continue
		}
		item := st.buf[st.sent]
		st.sent++
		for _, e := range p.childEdge[segID] {
			ctx.Send(e, congest.Payload{
				Kind: kindHighwayDown, A: int64(item.edge), B: boolToInt(item.covered), C: int64(segID),
			})
		}
	}
}

func (p *highwayProgram) Round(ctx *congest.Context, inbox []congest.Message) bool {
	for _, m := range inbox {
		switch m.Kind {
		case kindHighwayUp:
			item := pathItem{edge: int(m.A), covered: m.B != 0}
			segID := p.dec.SegOfEdge[m.Edge]
			if p.dec.Segments[segID].Root == p.node {
				// Facts reaching the segment root join its downcast buffer.
				p.down[segID].buf = append(p.down[segID].buf, item)
			} else {
				p.upBuf = append(p.upBuf, item)
			}
		case kindHighwayDown:
			segID := int(m.C)
			item := pathItem{edge: int(m.A), covered: m.B != 0}
			if st, ok := p.down[segID]; ok {
				st.buf = append(st.buf, item)
			}
			if segID == p.homeSeg {
				*p.out = append(*p.out, item)
			}
		}
	}
	p.step(ctx)
	done := p.upSent == len(p.upBuf)
	for segID, st := range p.down {
		if st.sent < len(st.buf) || len(st.buf) < p.expect[segID] {
			done = false
		}
	}
	return done
}

func runHighwayScan(g *graph.Graph, dec *segments.Decomposition, covered map[int]bool, views []vertexView, acc *congest.Metrics, opts []congest.Option) error {
	tr := dec.Tree
	// Static per-vertex segment topology (vertices know it from the
	// decomposition construction, Claim 3.1).
	childEdges := make([]map[int][]int, g.N())
	for v := range childEdges {
		childEdges[v] = map[int][]int{}
	}
	for v := 0; v < g.N(); v++ {
		if v == tr.Root {
			continue
		}
		te := tr.ParentEdge[v]
		segID := dec.SegOfEdge[te]
		p := tr.Parent[v]
		childEdges[p][segID] = append(childEdges[p][segID], te)
	}
	onHighway := make(map[int]int, g.N()) // vertex -> segment whose highway it sits on (as non-root)
	hwParentEdge := make([]int, g.N())
	for v := range hwParentEdge {
		hwParentEdge[v] = -1
	}
	for _, s := range dec.Segments {
		for i := 1; i < len(s.Highway); i++ {
			x := s.Highway[i]
			onHighway[x] = s.ID
			hwParentEdge[x] = tr.ParentEdge[x]
		}
	}
	rootsOf := make([][]int, g.N())
	for _, s := range dec.Segments {
		rootsOf[s.Root] = append(rootsOf[s.Root], s.ID)
	}

	maxHwy := 0
	for _, s := range dec.Segments {
		if len(s.HighwayEdges) > maxHwy {
			maxHwy = len(s.HighwayEdges)
		}
	}

	net := congest.NewNetwork(g, func(v int) congest.Program {
		p := &highwayProgram{
			dec:          dec,
			upParentEdge: -1,
			down:         map[int]*hwState{},
			expect:       map[int]int{},
			childEdge:    childEdges[v],
			out:          &views[v].highway,
			homeSeg:      dec.SegOfVertex[v],
		}
		if _, ok := onHighway[v]; ok {
			p.upParentEdge = hwParentEdge[v]
			te := tr.ParentEdge[v]
			p.upBuf = append(p.upBuf, pathItem{edge: te, covered: covered[te]})
		}
		// Forwarding state for every segment this vertex has children in,
		// plus the segments it roots (where the downcast originates).
		for segID := range childEdges[v] {
			p.down[segID] = &hwState{}
			p.expect[segID] = len(dec.Segments[segID].HighwayEdges)
		}
		for _, segID := range rootsOf[v] {
			if _, ok := p.down[segID]; !ok {
				p.down[segID] = &hwState{}
				p.expect[segID] = len(dec.Segments[segID].HighwayEdges)
			}
		}
		for segID := range p.down {
			p.downOrder = append(p.downOrder, segID)
		}
		sort.Ints(p.downOrder)
		return p
	}, opts...)
	m, err := net.Run(4*dec.MaxSegmentDiameter() + 2*maxHwy + 10)
	if err != nil {
		return fmt.Errorf("tapdist: highway scan: %w", err)
	}
	accAdd(acc, m)
	// Segment roots' own home-views do not include highways they root;
	// every member of a segment (including boundary vertices) needs the
	// home highway facts, which arrived per segment ID above. The root of a
	// segment serves as origin and holds the facts in down[segID].buf; it
	// is not a home member, so nothing further is needed.
	return nil
}

// ---------------------------------------------------------------------------
// Phase 3: segment summaries. Each segment root computes mS (uncovered
// highway edges) from the facts gathered in phase 2, the pairs (S, mS) are
// pipelined up the BFS tree and broadcast back down: O(D + #segments).
// ---------------------------------------------------------------------------

func runSegmentSummaries(g *graph.Graph, dec *segments.Decomposition, bfs *tree.Rooted, views []vertexView, acc *congest.Metrics, opts []congest.Option) (map[int]int64, error) {
	// mS computed at each root from its phase-2 buffers: equivalently, from
	// the highway facts (the root has them; we recompute from views of the
	// deepest highway vertex to stay within delivered information).
	items := make([][]int64, g.N())
	for _, s := range dec.Segments {
		var m int64
		if s.Root != s.Desc {
			// The facts were delivered in phase 2; the unique descendant dS
			// is always a home member holding the full highway view.
			for _, it := range views[s.Desc].highway {
				if !it.covered {
					m++
				}
			}
		}
		items[s.Root] = append(items[s.Root], int64(s.ID)<<20|m)
	}
	up, m1, err := primitives.Upcast(g, bfs, items)
	if err != nil {
		return nil, fmt.Errorf("tapdist: summary upcast: %w", err)
	}
	accAdd(acc, m1)
	down, m2, err := primitives.BroadcastMany(g, bfs, up)
	if err != nil {
		return nil, fmt.Errorf("tapdist: summary broadcast: %w", err)
	}
	accAdd(acc, m2)
	// All vertices received identical lists; decode once.
	segUncov := make(map[int]int64, len(dec.Segments))
	for _, enc := range down[0] {
		segUncov[int(enc>>20)] = enc & ((1 << 20) - 1)
	}
	return segUncov, nil
}

// ---------------------------------------------------------------------------
// Phase 4: endpoint exchange and local |Ce| computation (Cases 1–3).
// ---------------------------------------------------------------------------

// summary is what one endpoint sends across a non-tree edge in one message.
type summary struct {
	segID       int   // home segment
	uncovToRoot int64 // uncovered on P_{v,Mv} (0 if v is marked)
	uncovToDesc int64 // uncovered on P_{v,dS(home)} (0 if v is marked)
}

type exchangeProgram struct {
	mySummary   summary
	streamFor   map[int][]pathItem // edge ID -> path items to stream (same-home edges)
	streamOrder []int              // streamFor keys in adjacency order: sends iterate this
	streamSent  map[int]int
	gotSummary  map[int]summary    // edge ID -> other endpoint's summary
	gotPath     map[int][]pathItem // edge ID -> other endpoint's streamed path
	nonTree     []int              // incident non-tree edge IDs
	sentSum     bool
}

func (p *exchangeProgram) Init(ctx *congest.Context) {
	for _, e := range p.nonTree {
		ctx.Send(e, congest.Payload{
			Kind: kindSummary,
			A:    int64(p.mySummary.segID),
			B:    p.mySummary.uncovToRoot,
			C:    p.mySummary.uncovToDesc,
		})
	}
	p.sentSum = true
}

func (p *exchangeProgram) Round(ctx *congest.Context, inbox []congest.Message) bool {
	for _, m := range inbox {
		switch m.Kind {
		case kindSummary:
			p.gotSummary[m.Edge] = summary{segID: int(m.A), uncovToRoot: m.B, uncovToDesc: m.C}
		case kindPathStream:
			p.gotPath[m.Edge] = append(p.gotPath[m.Edge], pathItem{edge: int(m.A), covered: m.B != 0})
		}
	}
	done := true
	// Iterate the ordered key list: inboxes preserve each sender's send
	// order, so sending in map order would leak iteration order into the
	// receivers' gotPath buffers.
	for _, e := range p.streamOrder {
		items := p.streamFor[e]
		i := p.streamSent[e]
		if i < len(items) {
			done = false
			ctx.Send(e, congest.Payload{
				Kind: kindPathStream, A: int64(items[i].edge), B: boolToInt(items[i].covered),
			})
			p.streamSent[e] = i + 1
		}
	}
	return done
}

func runExchangeAndCompute(g *graph.Graph, dec *segments.Decomposition, views []vertexView, segUncov map[int]int64, res *Result, opts []congest.Option) error {
	tr := dec.Tree
	inTree := tr.IsTreeEdge()
	progs := make([]*exchangeProgram, g.N())
	net := congest.NewNetwork(g, func(v int) congest.Program {
		p := &exchangeProgram{
			mySummary:  makeSummary(dec, views, v),
			streamFor:  map[int][]pathItem{},
			streamSent: map[int]int{},
			gotSummary: map[int]summary{},
			gotPath:    map[int][]pathItem{},
		}
		for _, a := range g.Adj(v) {
			if inTree[a.Edge] {
				continue
			}
			p.nonTree = append(p.nonTree, a.Edge)
			// Same-home edges additionally stream the full ancestor path
			// (Case 1 needs it to locate the LCA).
			if dec.SegOfVertex[v] == dec.SegOfVertex[a.To] {
				p.streamFor[a.Edge] = views[v].up
				p.streamOrder = append(p.streamOrder, a.Edge)
			}
		}
		progs[v] = p
		return p
	}, opts...)
	m, err := net.Run(2*dec.MaxSegmentDiameter() + 8)
	if err != nil {
		return fmt.Errorf("tapdist: exchange: %w", err)
	}
	accAdd(&res.Metrics, m)

	// Local computation at the smaller endpoint of each non-tree edge.
	for _, e := range g.Edges() {
		if inTree[e.ID] {
			continue
		}
		u, v := e.U, e.V
		if v < u {
			u, v = v, u
		}
		pu := progs[u]
		other, ok := pu.gotSummary[e.ID]
		if !ok {
			return fmt.Errorf("tapdist: edge %d missing summary at vertex %d", e.ID, u)
		}
		ce, err := localCe(dec, views, segUncov, u, v, other, pu.gotPath[e.ID])
		if err != nil {
			return fmt.Errorf("tapdist: edge %d {%d,%d}: %w", e.ID, u, v, err)
		}
		res.Ce[e.ID] = ce
	}
	return nil
}

func makeSummary(dec *segments.Decomposition, views []vertexView, v int) summary {
	s := summary{segID: dec.SegOfVertex[v]}
	if dec.Marked[v] {
		return s // both paths are empty at a marked vertex
	}
	s.uncovToRoot = uncovCount(views[v].up)
	s.uncovToDesc = uncovPathToDesc(views[v])
	return s
}

func uncovCount(items []pathItem) int64 {
	var c int64
	for _, it := range items {
		if !it.covered {
			c++
		}
	}
	return c
}

// uncovPathToDesc computes the uncovered count of P_{v,dS}: the symmetric
// difference of P_{v,rS} and the highway (both end at rS).
func uncovPathToDesc(view vertexView) int64 {
	inUp := make(map[int]bool, len(view.up))
	for _, it := range view.up {
		inUp[it.edge] = true
	}
	var c int64
	for _, it := range view.up {
		if !onList(view.highway, it.edge) && !it.covered {
			c++
		}
	}
	for _, it := range view.highway {
		if !inUp[it.edge] && !it.covered {
			c++
		}
	}
	return c
}

func onList(items []pathItem, edge int) bool {
	for _, it := range items {
		if it.edge == edge {
			return true
		}
	}
	return false
}

// localCe evaluates the Case 1–3 analysis at endpoint u for edge {u,v},
// using only u's own view, v's exchanged summary (and streamed path for
// Case 1), the skeleton tree and the global segment summaries.
func localCe(dec *segments.Decomposition, views []vertexView, segUncov map[int]int64, u, v int, other summary, otherPath []pathItem) (int64, error) {
	homeU := dec.SegOfVertex[u]
	homeV := other.segID
	if homeU == homeV {
		// Case 1: same segment; LCA from the two ancestor paths (shared
		// rS-side suffix).
		mine := views[u].up
		shared := 0
		for shared < len(mine) && shared < len(otherPath) &&
			mine[len(mine)-1-shared].edge == otherPath[len(otherPath)-1-shared].edge {
			shared++
		}
		var c int64
		for _, it := range mine[:len(mine)-shared] {
			if !it.covered {
				c++
			}
		}
		for _, it := range otherPath[:len(otherPath)-shared] {
			if !it.covered {
				c++
			}
		}
		return c, nil
	}

	anchor := func(x, home int) int {
		if dec.Marked[x] {
			return x
		}
		return dec.Segments[home].Root
	}
	mu := anchor(u, homeU)
	mv := anchor(v, homeV)
	// The below-side entry point of an endpoint's segment: for an unmarked
	// vertex, its home segment's unique descendant; for a marked vertex, the
	// vertex itself (it is a skeleton vertex — its home names the segment it
	// is dS of, except for the tree root, whose home is a segment rooted at
	// it, so the override matters there).
	du, dv := u, v
	if !dec.Marked[u] {
		du = dec.Segments[homeU].Desc
	}
	if !dec.Marked[v] {
		dv = dec.Segments[homeV].Desc
	}
	myToRoot := int64(0)
	myToDesc := int64(0)
	if !dec.Marked[u] {
		myToRoot = uncovCount(views[u].up)
		myToDesc = uncovPathToDesc(views[u])
	}

	switch {
	case skelAncestorOf(dec, du, mv):
		// Case A: v lies below u's segment descendant du.
		sum, err := skelChainUncov(dec, segUncov, du, mv)
		if err != nil {
			return 0, err
		}
		return myToDesc + sum + other.uncovToRoot, nil
	case skelAncestorOf(dec, dv, mu):
		// Case B: u lies below v's segment descendant dv.
		sum, err := skelChainUncov(dec, segUncov, dv, mu)
		if err != nil {
			return 0, err
		}
		return other.uncovToDesc + sum + myToRoot, nil
	default:
		// General case: the path meets at the skeleton LCA of the anchors.
		path, err := dec.SkeletonPath(mu, mv)
		if err != nil {
			return 0, err
		}
		var sum int64
		for i := 0; i+1 < len(path); i++ {
			deeper := path[i]
			if dec.Tree.Depth[path[i+1]] > dec.Tree.Depth[deeper] {
				deeper = path[i+1]
			}
			sum += segUncov[dec.SegOfVertex[deeper]]
		}
		return myToRoot + sum + other.uncovToRoot, nil
	}
}

// skelAncestorOf reports whether marked vertex a is an ancestor (inclusive)
// of marked vertex b in the skeleton tree.
func skelAncestorOf(dec *segments.Decomposition, a, b int) bool {
	for x := b; ; {
		if x == a {
			return true
		}
		p, ok := dec.SkeletonParent[x]
		if !ok || p == -1 {
			return false
		}
		x = p
	}
}

// skelChainUncov sums the uncovered highway counts of the segments on the
// descending skeleton chain from ancestor a down to descendant b.
func skelChainUncov(dec *segments.Decomposition, segUncov map[int]int64, a, b int) (int64, error) {
	var sum int64
	for x := b; x != a; {
		sum += segUncov[dec.SegOfVertex[x]] // home of marked x = segment with dS = x
		p, ok := dec.SkeletonParent[x]
		if !ok || p == -1 {
			return 0, fmt.Errorf("tapdist: %d is not a skeleton descendant of %d", b, a)
		}
		x = p
	}
	return sum, nil
}
