package tapdist

import (
	"math/rand"
	"testing"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/segments"
	"repro/internal/tree"
)

// centralCe computes |Ce| for every non-tree edge directly from tree paths —
// the oracle the distributed computation must match.
func centralCe(g *graph.Graph, tr *tree.Rooted, covered map[int]bool) map[int]int64 {
	inTree := tr.IsTreeEdge()
	out := make(map[int]int64)
	for _, e := range g.Edges() {
		if inTree[e.ID] {
			continue
		}
		var c int64
		for _, t := range tr.PathEdges(e.U, e.V) {
			if !covered[t] {
				c++
			}
		}
		out[e.ID] = c
	}
	return out
}

func decompose(t *testing.T, g *graph.Graph) (*tree.Rooted, *segments.Decomposition) {
	t.Helper()
	ids, _ := mst.Kruskal(g)
	tr, err := tree.FromEdges(g, ids, 0)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := segments.Decompose(g, tr, segments.DefaultTarget(g.N()))
	if err != nil {
		t.Fatal(err)
	}
	return tr, dec
}

func randomCoverage(tr *tree.Rooted, rng *rand.Rand, p float64) map[int]bool {
	covered := make(map[int]bool)
	for _, id := range tr.EdgeIDs() {
		covered[id] = rng.Float64() < p
	}
	return covered
}

func checkInstance(t *testing.T, g *graph.Graph, coverP float64, seed int64) {
	t.Helper()
	tr, dec := decompose(t, g)
	rng := rand.New(rand.NewSource(seed))
	covered := randomCoverage(tr, rng, coverP)
	res, err := ComputeCe(g, dec, covered, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := centralCe(g, tr, covered)
	if len(res.Ce) != len(want) {
		t.Fatalf("computed %d Ce values, want %d", len(res.Ce), len(want))
	}
	for id, w := range want {
		if res.Ce[id] != w {
			e := g.Edge(id)
			t.Fatalf("edge %d {%d,%d}: distributed Ce=%d, central=%d (segU=%d segV=%d markedU=%v markedV=%v)",
				id, e.U, e.V, res.Ce[id], w,
				dec.SegOfVertex[e.U], dec.SegOfVertex[e.V], dec.Marked[e.U], dec.Marked[e.V])
		}
	}
}

func TestComputeCeMatchesCentralKnownFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := map[string]*graph.Graph{
		"cycle30":    graph.Cycle(30, graph.RandomWeights(rng, 20)),
		"grid6x7":    graph.Grid(6, 7, graph.RandomWeights(rng, 20)),
		"chain":      graph.CliqueChain(6, 5, 2, graph.RandomWeights(rng, 20)),
		"random60":   graph.RandomKConnected(60, 2, 90, rng, graph.RandomWeights(rng, 30)),
		"random120":  graph.RandomKConnected(120, 2, 200, rng, graph.RandomWeights(rng, 30)),
		"geometric":  graph.RandomGeometric(60, 0.3, 2, rng),
		"harary4":    graph.Harary(4, 40, graph.RandomWeights(rng, 10)),
		"multigraph": multigraphCase(rng),
	}
	for name, g := range cases {
		g := g
		t.Run(name, func(t *testing.T) {
			for _, p := range []float64{0, 0.3, 0.7, 1} {
				checkInstance(t, g, p, int64(p*100)+7)
			}
		})
	}
}

func multigraphCase(rng *rand.Rand) *graph.Graph {
	g := graph.RandomKConnected(25, 2, 10, rng, graph.RandomWeights(rng, 15))
	// Parallel edges stress the edge-ID-based bookkeeping.
	g.AddEdge(0, 1, 3)
	g.AddEdge(0, 1, 9)
	g.AddEdge(5, 6, 2)
	return g
}

func TestComputeCeManyRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		n := 20 + rng.Intn(60)
		g := graph.RandomKConnected(n, 2, n+rng.Intn(2*n), rng, graph.RandomWeights(rng, 40))
		checkInstance(t, g, rng.Float64(), int64(trial))
	}
}

func TestComputeCeRoundsAreDPlusSqrtN(t *testing.T) {
	// Lemma 3.3 measured: the information phases cost O(D + √n) rounds.
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{100, 400, 900} {
		g := graph.RandomKConnected(n, 2, 2*n, rng, graph.RandomWeights(rng, 50))
		tr, dec := decompose(t, g)
		covered := randomCoverage(tr, rng, 0.5)
		res, err := ComputeCe(g, dec, covered, nil)
		if err != nil {
			t.Fatal(err)
		}
		d := g.DiameterEstimate()
		budget := 12 * (d + dec.MaxSegmentDiameter() + len(dec.Segments) + 4)
		if res.Metrics.Rounds > budget {
			t.Errorf("n=%d: measured %d rounds, want O(D+√n) <= %d", n, res.Metrics.Rounds, budget)
		}
	}
}

func TestComputeCeParallelExecutorMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.RandomKConnected(40, 2, 60, rng, graph.RandomWeights(rng, 25))
	tr, dec := decompose(t, g)
	covered := randomCoverage(tr, rng, 0.4)
	seq, err := ComputeCe(g, dec, covered, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ComputeCe(g, dec, covered, nil, congest.WithExecutor(congest.ParallelExecutor{}))
	if err != nil {
		t.Fatal(err)
	}
	for id, v := range seq.Ce {
		if par.Ce[id] != v {
			t.Fatalf("edge %d: executors disagree (%d vs %d)", id, v, par.Ce[id])
		}
	}
}

func TestComputeCeWithProvidedBFSTree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomKConnected(30, 2, 40, rng, graph.RandomWeights(rng, 25))
	tr, dec := decompose(t, g)
	bfs, err := tree.FromBFS(g.BFS(0))
	if err != nil {
		t.Fatal(err)
	}
	covered := randomCoverage(tr, rng, 0.5)
	res, err := ComputeCe(g, dec, covered, bfs)
	if err != nil {
		t.Fatal(err)
	}
	want := centralCe(g, tr, covered)
	for id, w := range want {
		if res.Ce[id] != w {
			t.Fatalf("edge %d: Ce=%d, want %d", id, res.Ce[id], w)
		}
	}
}
