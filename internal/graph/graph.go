// Package graph provides the undirected weighted multigraph substrate used
// by every algorithm in this repository: representation, traversals,
// connectivity tests (bridges, cut pairs, edge connectivity via max-flow,
// global min cut), and the graph generators used by the experiment harness.
//
// Vertices are dense integers 0..N-1. Edges carry non-negative integer
// weights, matching the paper's assumption that weights are integers
// polynomial in n (so a weight fits in an O(log n)-bit message).
//
//kecss:deterministic
package graph

import (
	"fmt"
	"sort"
)

// Edge is an undirected edge {U, V} with weight W. ID is the edge's index in
// Graph.Edges and is the canonical identity used throughout the repository
// (multigraphs are allowed, so endpoints alone do not identify an edge).
type Edge struct {
	ID int
	U  int
	V  int
	W  int64
}

// Other returns the endpoint of e that is not v. It panics if v is not an
// endpoint of e, since that always indicates a bug in the caller.
func (e Edge) Other(v int) int {
	switch v {
	case e.U:
		return e.V
	case e.V:
		return e.U
	default:
		panic(fmt.Sprintf("graph: vertex %d is not an endpoint of edge %d {%d,%d}", v, e.ID, e.U, e.V))
	}
}

// Arc is one direction of an undirected edge, as seen from a vertex's
// adjacency list.
type Arc struct {
	To   int // neighbouring vertex
	Edge int // ID of the underlying undirected edge
}

// Graph is an undirected weighted multigraph on vertices 0..N-1.
// The zero value is an empty graph with no vertices; use New to create a
// graph with a fixed vertex count.
type Graph struct {
	n     int
	edges []Edge
	adj   [][]Arc
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{n: n, adj: make([][]Arc, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Edges returns the edge slice. Callers must not mutate it.
func (g *Graph) Edges() []Edge { return g.edges }

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id int) Edge { return g.edges[id] }

// AddEdge adds an undirected edge {u, v} with weight w and returns its ID.
// Self-loops are rejected (they are never useful for connectivity and the
// paper's model excludes them); parallel edges are allowed.
func (g *Graph) AddEdge(u, v int, w int64) int {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at vertex %d", u))
	}
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, g.n))
	}
	if w < 0 {
		panic(fmt.Sprintf("graph: negative weight %d on edge {%d,%d}", w, u, v))
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{ID: id, U: u, V: v, W: w})
	g.adj[u] = append(g.adj[u], Arc{To: v, Edge: id})
	g.adj[v] = append(g.adj[v], Arc{To: u, Edge: id})
	return id
}

// Adj returns the adjacency list of v. Callers must not mutate it.
func (g *Graph) Adj(v int) []Arc { return g.adj[v] }

// Degree returns the number of edges incident to v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MinDegree returns the minimum vertex degree, or 0 for an empty graph.
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	min := g.Degree(0)
	for v := 1; v < g.n; v++ {
		if d := g.Degree(v); d < min {
			min = d
		}
	}
	return min
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() int64 {
	var sum int64
	for _, e := range g.edges {
		sum += e.W
	}
	return sum
}

// WeightOf returns the total weight of the edges whose IDs are in ids.
func (g *Graph) WeightOf(ids []int) int64 {
	var sum int64
	for _, id := range ids {
		sum += g.edges[id].W
	}
	return sum
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	c.edges = make([]Edge, len(g.edges))
	copy(c.edges, g.edges)
	for v := range g.adj {
		c.adj[v] = make([]Arc, len(g.adj[v]))
		copy(c.adj[v], g.adj[v])
	}
	return c
}

// SubgraphOf returns a new graph on the same vertex set containing only the
// edges of g whose IDs are listed in ids. Edge IDs are renumbered; the
// returned mapping gives, for each new edge ID, the original edge ID.
func (g *Graph) SubgraphOf(ids []int) (*Graph, []int) {
	sub := New(g.n)
	orig := make([]int, 0, len(ids))
	for _, id := range ids {
		e := g.edges[id]
		sub.AddEdge(e.U, e.V, e.W)
		orig = append(orig, id)
	}
	return sub, orig
}

// SubgraphWithout returns a new graph on the same vertex set containing all
// edges of g except those whose IDs appear in exclude.
func (g *Graph) SubgraphWithout(exclude map[int]bool) (*Graph, []int) {
	ids := make([]int, 0, len(g.edges))
	for _, e := range g.edges {
		if !exclude[e.ID] {
			ids = append(ids, e.ID)
		}
	}
	return g.SubgraphOf(ids)
}

// SortedEdgeIDsByWeight returns all edge IDs sorted by (weight, ID).
// The secondary key makes the order deterministic for multigraphs and is the
// lexicographic tie-breaking used to make MSTs unique.
func (g *Graph) SortedEdgeIDsByWeight() []int {
	ids := make([]int, len(g.edges))
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		ea, eb := g.edges[ids[a]], g.edges[ids[b]]
		if ea.W != eb.W {
			return ea.W < eb.W
		}
		return ea.ID < eb.ID
	})
	return ids
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d, w=%d)", g.n, len(g.edges), g.TotalWeight())
}
