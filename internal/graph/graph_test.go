package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestAddEdgeAndAccessors(t *testing.T) {
	g := New(4)
	id := g.AddEdge(0, 1, 5)
	if id != 0 {
		t.Fatalf("first edge ID = %d, want 0", id)
	}
	id2 := g.AddEdge(1, 2, 7)
	if id2 != 1 {
		t.Fatalf("second edge ID = %d, want 1", id2)
	}
	if g.N() != 4 || g.M() != 2 {
		t.Fatalf("N=%d M=%d, want 4, 2", g.N(), g.M())
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Fatalf("degrees wrong: deg(1)=%d deg(3)=%d", g.Degree(1), g.Degree(3))
	}
	if w := g.TotalWeight(); w != 12 {
		t.Fatalf("TotalWeight = %d, want 12", w)
	}
	if got := g.Edge(0).Other(0); got != 1 {
		t.Fatalf("Other(0) = %d, want 1", got)
	}
	if got := g.Edge(0).Other(1); got != 0 {
		t.Fatalf("Other(1) = %d, want 0", got)
	}
}

func TestAddEdgePanics(t *testing.T) {
	tests := []struct {
		name string
		f    func()
	}{
		{"self-loop", func() { New(3).AddEdge(1, 1, 0) }},
		{"out of range", func() { New(3).AddEdge(0, 3, 0) }},
		{"negative weight", func() { New(3).AddEdge(0, 1, -1) }},
		{"negative n", func() { New(-1) }},
		{"other non-endpoint", func() { e := Edge{U: 0, V: 1}; e.Other(2) }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", tc.name)
				}
			}()
			tc.f()
		})
	}
}

func TestParallelEdgesAllowed(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 1, 2)
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	if !g.TwoEdgeConnected() {
		t.Fatal("parallel pair should be 2-edge-connected")
	}
}

func TestBFSDistancesOnCycle(t *testing.T) {
	g := Cycle(6, UnitWeights())
	res := g.BFS(0)
	want := []int{0, 1, 2, 3, 2, 1}
	for v, d := range want {
		if res.Dist[v] != d {
			t.Errorf("Dist[%d] = %d, want %d", v, res.Dist[v], d)
		}
	}
	if res.Parent[0] != -1 {
		t.Errorf("source parent = %d, want -1", res.Parent[0])
	}
	if len(res.Order) != 6 {
		t.Errorf("visited %d vertices, want 6", len(res.Order))
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	res := g.BFS(0)
	if res.Dist[2] != -1 || res.Parent[2] != -1 {
		t.Fatalf("unreachable vertex should have Dist/Parent -1, got %d/%d", res.Dist[2], res.Parent[2])
	}
}

func TestDiameter(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{"cycle6", Cycle(6, UnitWeights()), 3},
		{"cycle7", Cycle(7, UnitWeights()), 3},
		{"grid3x4", Grid(3, 4, UnitWeights()), 5},
		{"single edge", func() *Graph { g := New(2); g.AddEdge(0, 1, 1); return g }(), 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.g.Diameter(); got != tc.want {
				t.Errorf("Diameter = %d, want %d", got, tc.want)
			}
			if est := tc.g.DiameterEstimate(); est < tc.want || est > 2*tc.want {
				t.Errorf("DiameterEstimate = %d, want within [D, 2D] = [%d, %d]", est, tc.want, 2*tc.want)
			}
		})
	}
}

func TestComponents(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(3, 4, 1)
	comp, count := g.Components()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if comp[0] != comp[1] || comp[3] != comp[4] || comp[0] == comp[2] || comp[2] == comp[3] {
		t.Fatalf("bad component assignment: %v", comp)
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Sets() != 5 {
		t.Fatalf("Sets = %d, want 5", uf.Sets())
	}
	if !uf.Union(0, 1) {
		t.Fatal("first union should merge")
	}
	if uf.Union(1, 0) {
		t.Fatal("repeated union should not merge")
	}
	uf.Union(2, 3)
	uf.Union(0, 2)
	if !uf.Same(1, 3) {
		t.Fatal("1 and 3 should be connected")
	}
	if uf.Same(1, 4) {
		t.Fatal("4 should be isolated")
	}
	if uf.Sets() != 2 {
		t.Fatalf("Sets = %d, want 2", uf.Sets())
	}
}

func TestBridgesOnKnownGraphs(t *testing.T) {
	t.Run("path has all bridges", func(t *testing.T) {
		g := New(4)
		g.AddEdge(0, 1, 1)
		g.AddEdge(1, 2, 1)
		g.AddEdge(2, 3, 1)
		if got := g.Bridges(); len(got) != 3 {
			t.Fatalf("bridges = %v, want all 3 edges", got)
		}
	})
	t.Run("cycle has none", func(t *testing.T) {
		if got := Cycle(5, UnitWeights()).Bridges(); len(got) != 0 {
			t.Fatalf("bridges = %v, want none", got)
		}
	})
	t.Run("two triangles joined by an edge", func(t *testing.T) {
		g := New(6)
		g.AddEdge(0, 1, 1)
		g.AddEdge(1, 2, 1)
		g.AddEdge(2, 0, 1)
		bridge := g.AddEdge(2, 3, 1)
		g.AddEdge(3, 4, 1)
		g.AddEdge(4, 5, 1)
		g.AddEdge(5, 3, 1)
		got := g.Bridges()
		if len(got) != 1 || got[0] != bridge {
			t.Fatalf("bridges = %v, want [%d]", got, bridge)
		}
	})
	t.Run("parallel edges are not bridges", func(t *testing.T) {
		g := New(3)
		g.AddEdge(0, 1, 1)
		g.AddEdge(0, 1, 1)
		b := g.AddEdge(1, 2, 1)
		got := g.Bridges()
		if len(got) != 1 || got[0] != b {
			t.Fatalf("bridges = %v, want [%d]", got, b)
		}
	})
}

// bridgesBruteForce recomputes bridges by removing each edge and checking
// connectivity, as an independent oracle.
func bridgesBruteForce(g *Graph) map[int]bool {
	out := make(map[int]bool)
	if !g.Connected() {
		return out
	}
	for _, e := range g.Edges() {
		rem, _ := g.SubgraphWithout(map[int]bool{e.ID: true})
		if !rem.Connected() {
			out[e.ID] = true
		}
	}
	return out
}

func TestBridgesMatchBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(20)
		g := New(n)
		m := n + rng.Intn(2*n)
		for i := 0; i < m; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v, 1)
			}
		}
		want := bridgesBruteForce(g)
		// Bridges() works per component; restrict oracle comparison to a
		// connected graph by adding a spanning path when disconnected.
		if !g.Connected() {
			for v := 0; v+1 < n; v++ {
				g.AddEdge(v, v+1, 1)
			}
			want = bridgesBruteForce(g)
		}
		got := g.Bridges()
		gotSet := make(map[int]bool, len(got))
		for _, id := range got {
			gotSet[id] = true
		}
		if len(gotSet) != len(want) {
			t.Fatalf("trial %d: got %d bridges, want %d", trial, len(gotSet), len(want))
		}
		for id := range want {
			if !gotSet[id] {
				t.Fatalf("trial %d: missing bridge %d", trial, id)
			}
		}
	}
}

func TestEdgeConnectivityKnown(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{"cycle", Cycle(8, UnitWeights()), 2},
		{"circulant j=2", Circulant(9, 2, UnitWeights()), 4},
		{"harary k=3 even n", Harary(3, 10, UnitWeights()), 3},
		{"harary k=3 odd n", Harary(3, 11, UnitWeights()), 3},
		{"harary k=4", Harary(4, 12, UnitWeights()), 4},
		{"harary k=5", Harary(5, 12, UnitWeights()), 5},
		{"path", func() *Graph {
			g := New(4)
			g.AddEdge(0, 1, 1)
			g.AddEdge(1, 2, 1)
			g.AddEdge(2, 3, 1)
			return g
		}(), 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.g.EdgeConnectivity(); got != tc.want {
				t.Errorf("EdgeConnectivity = %d, want %d", got, tc.want)
			}
			if !tc.g.IsKEdgeConnected(tc.want) {
				t.Errorf("IsKEdgeConnected(%d) = false", tc.want)
			}
			if tc.g.IsKEdgeConnected(tc.want + 1) {
				t.Errorf("IsKEdgeConnected(%d) = true", tc.want+1)
			}
		})
	}
}

func TestEdgeConnectivityDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	if got := g.EdgeConnectivity(); got != 0 {
		t.Fatalf("EdgeConnectivity = %d, want 0", got)
	}
}

func TestCutPairsOnKnownGraphs(t *testing.T) {
	t.Run("cycle4: every pair is a cut pair", func(t *testing.T) {
		g := Cycle(4, UnitWeights())
		pairs := g.CutPairs()
		if len(pairs) != 6 { // C(4,2)
			t.Fatalf("got %d cut pairs, want 6: %v", len(pairs), pairs)
		}
	})
	t.Run("K4 has no cut pairs", func(t *testing.T) {
		g := New(4)
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				g.AddEdge(i, j, 1)
			}
		}
		if pairs := g.CutPairs(); len(pairs) != 0 {
			t.Fatalf("K4 cut pairs = %v, want none", pairs)
		}
	})
	t.Run("figure2 graph", func(t *testing.T) {
		g := PaperFigure2Graph()
		if !g.TwoEdgeConnected() {
			t.Fatal("figure-2 graph must be 2-edge-connected")
		}
		pairs := g.CutPairs()
		if len(pairs) == 0 {
			t.Fatal("figure-2 graph should contain cut pairs")
		}
		// Removing any cut pair must disconnect the graph.
		for _, p := range pairs {
			rem, _ := g.SubgraphWithout(map[int]bool{p.A: true, p.B: true})
			if rem.Connected() {
				t.Errorf("removing cut pair %v leaves graph connected", p)
			}
		}
	})
}

func TestCutPairsMatchDefinitionRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		g := RandomKConnected(10+rng.Intn(8), 2, 3, rng, UnitWeights())
		pairs := g.CutPairs()
		inPairs := make(map[CutPair]bool, len(pairs))
		for _, p := range pairs {
			inPairs[p] = true
		}
		for a := 0; a < g.M(); a++ {
			for b := a + 1; b < g.M(); b++ {
				rem, _ := g.SubgraphWithout(map[int]bool{a: true, b: true})
				disconnects := !rem.Connected()
				if disconnects != inPairs[CutPair{A: a, B: b}] {
					t.Fatalf("trial %d: pair {%d,%d} disconnects=%v but CutPairs=%v",
						trial, a, b, disconnects, inPairs[CutPair{A: a, B: b}])
				}
			}
		}
	}
}

func TestGlobalMinCutWeight(t *testing.T) {
	t.Run("unit cycle", func(t *testing.T) {
		if got := Cycle(6, UnitWeights()).GlobalMinCutWeight(); got != 2 {
			t.Fatalf("min cut = %d, want 2", got)
		}
	})
	t.Run("weighted dumbbell", func(t *testing.T) {
		// Two triangles of heavy edges joined by two light edges.
		g := New(6)
		for _, tri := range [][3]int{{0, 1, 2}, {3, 4, 5}} {
			g.AddEdge(tri[0], tri[1], 100)
			g.AddEdge(tri[1], tri[2], 100)
			g.AddEdge(tri[2], tri[0], 100)
		}
		g.AddEdge(2, 3, 1)
		g.AddEdge(0, 5, 3)
		if got := g.GlobalMinCutWeight(); got != 4 {
			t.Fatalf("min cut = %d, want 4", got)
		}
	})
	t.Run("matches unit edge connectivity", func(t *testing.T) {
		rng := rand.New(rand.NewSource(3))
		for trial := 0; trial < 10; trial++ {
			g := RandomKConnected(8+rng.Intn(8), 2, 4, rng, UnitWeights())
			if got, want := g.GlobalMinCutWeight(), int64(g.EdgeConnectivity()); got != want {
				t.Fatalf("trial %d: StoerWagner=%d, Dinic=%d", trial, got, want)
			}
		}
	})
}

func TestGeneratorsConnectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tests := []struct {
		name string
		g    *Graph
		k    int
	}{
		{"cycle", Cycle(12, UnitWeights()), 2},
		{"grid", Grid(4, 5, UnitWeights()), 2},
		{"harary k=2", Harary(2, 9, UnitWeights()), 2},
		{"harary k=4 odd", Harary(4, 13, UnitWeights()), 4},
		{"harary k=5 even", Harary(5, 14, UnitWeights()), 5},
		{"random k=3", RandomKConnected(15, 3, 10, rng, UnitWeights()), 3},
		{"clique chain k=2", CliqueChain(5, 4, 2, UnitWeights()), 2},
		{"clique chain k=3", CliqueChain(4, 5, 3, UnitWeights()), 3},
		{"geometric", RandomGeometric(30, 0.3, 2, rng), 2},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if !tc.g.IsKEdgeConnected(tc.k) {
				t.Errorf("graph is not %d-edge-connected (λ=%d)", tc.k, tc.g.EdgeConnectivity())
			}
		})
	}
}

func TestHararyEdgeCount(t *testing.T) {
	// Harary graphs are minimum-size: ceil(k*n/2) edges.
	for _, tc := range []struct{ k, n int }{{2, 10}, {3, 10}, {3, 11}, {4, 9}, {5, 12}} {
		g := Harary(tc.k, tc.n, UnitWeights())
		want := (tc.k*tc.n + 1) / 2
		if g.M() != want {
			t.Errorf("Harary(%d,%d): m=%d, want %d", tc.k, tc.n, g.M(), want)
		}
	}
}

func TestCliqueChainDiameter(t *testing.T) {
	g := CliqueChain(8, 4, 2, UnitWeights())
	d := g.Diameter()
	if d < 8 || d > 3*8 {
		t.Fatalf("CliqueChain diameter = %d, want Θ(length)=Θ(8)", d)
	}
}

func TestSubgraphOf(t *testing.T) {
	g := New(4)
	a := g.AddEdge(0, 1, 3)
	g.AddEdge(1, 2, 5)
	c := g.AddEdge(2, 3, 7)
	sub, orig := g.SubgraphOf([]int{a, c})
	if sub.M() != 2 || sub.N() != 4 {
		t.Fatalf("sub = %v", sub)
	}
	if orig[0] != a || orig[1] != c {
		t.Fatalf("orig mapping = %v", orig)
	}
	if sub.TotalWeight() != 10 {
		t.Fatalf("sub weight = %d, want 10", sub.TotalWeight())
	}
}

func TestCloneIsIndependent(t *testing.T) {
	g := Cycle(5, UnitWeights())
	c := g.Clone()
	c.AddEdge(0, 2, 9)
	if g.M() == c.M() {
		t.Fatal("mutating clone changed original")
	}
}

func TestSortedEdgeIDsByWeight(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 2)
	g.AddEdge(0, 2, 5)
	ids := g.SortedEdgeIDsByWeight()
	if ids[0] != 1 || ids[1] != 0 || ids[2] != 2 {
		t.Fatalf("sorted = %v, want [1 0 2]", ids)
	}
}

// Property: union-find Same is an equivalence relation consistent with the
// sequence of unions applied.
func TestUnionFindQuick(t *testing.T) {
	f := func(ops []uint16, n uint8) bool {
		size := int(n%32) + 2
		uf := NewUnionFind(size)
		// Mirror connectivity with a brute-force graph.
		g := New(size)
		for _, op := range ops {
			u := int(op) % size
			v := int(op>>8) % size
			if u == v {
				continue
			}
			uf.Union(u, v)
			g.AddEdge(u, v, 1)
		}
		comp, _ := g.Components()
		for u := 0; u < size; u++ {
			for v := 0; v < size; v++ {
				if uf.Same(u, v) != (comp[u] == comp[v]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: every generated RandomKConnected graph has λ >= k.
func TestRandomKConnectedQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(seed int64, kRaw, nRaw uint8) bool {
		k := int(kRaw%4) + 1
		n := int(nRaw%20) + 2*k + 3
		local := rand.New(rand.NewSource(seed))
		g := RandomKConnected(n, k, int(nRaw%10), local, RandomWeights(rng, 50))
		return g.IsKEdgeConnected(k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestChungLu(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := ChungLu(200, 2.5, 6, 2, rng, UnitWeights())
	if g.N() != 200 {
		t.Fatalf("n = %d", g.N())
	}
	if !g.IsKEdgeConnected(2) {
		t.Fatal("minConn=2 backbone did not guarantee 2-edge-connectivity")
	}
	// Heavy tail: the maximum degree must far exceed the mean (a power law
	// at beta=2.5 and n=200 concentrates a large share of edges on the top
	// vertices; a uniform G(n,p) at the same density stays within ~2x).
	maxDeg, sumDeg := 0, 0
	for v := 0; v < g.N(); v++ {
		d := g.Degree(v)
		sumDeg += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	mean := float64(sumDeg) / float64(g.N())
	if float64(maxDeg) < 3*mean {
		t.Errorf("max degree %d not heavy-tailed vs mean %.1f", maxDeg, mean)
	}
	// 3-edge-connected variant for the 3-ECSS sweeps.
	g3 := ChungLu(60, 2.5, 8, 3, rng, UnitWeights())
	if !g3.IsKEdgeConnected(3) {
		t.Fatal("minConn=3 backbone did not guarantee 3-edge-connectivity")
	}
}

func TestChungLuDeterministic(t *testing.T) {
	a := ChungLu(80, 2.5, 5, 2, rand.New(rand.NewSource(3)), UnitWeights())
	b := ChungLu(80, 2.5, 5, 2, rand.New(rand.NewSource(3)), UnitWeights())
	if a.M() != b.M() {
		t.Fatalf("same seed, different edge counts: %d vs %d", a.M(), b.M())
	}
	for i := 0; i < a.M(); i++ {
		if a.Edge(i) != b.Edge(i) {
			t.Fatalf("same seed, edge %d differs", i)
		}
	}
}

func TestFatTree(t *testing.T) {
	for _, k := range []int{4, 6} {
		g := FatTree(k, UnitWeights())
		h := k / 2
		if want := h*h + k*k; g.N() != want {
			t.Fatalf("FatTree(%d): n = %d, want %d", k, g.N(), want)
		}
		if want := k * k * k / 2; g.M() != want {
			t.Fatalf("FatTree(%d): m = %d, want %d", k, g.M(), want)
		}
		if d := g.Diameter(); d != 4 {
			t.Fatalf("FatTree(%d): diameter = %d, want 4", k, d)
		}
		if lam := g.EdgeConnectivity(); lam != h {
			t.Fatalf("FatTree(%d): edge connectivity = %d, want %d", k, lam, h)
		}
	}
}

func TestUnionFindReset(t *testing.T) {
	uf := NewUnionFind(6)
	uf.Union(0, 1)
	uf.Union(2, 3)
	uf.Union(0, 3)
	if uf.Sets() != 3 {
		t.Fatalf("sets=%d, want 3", uf.Sets())
	}
	uf.Reset()
	if uf.Sets() != 6 {
		t.Fatalf("after Reset sets=%d, want 6", uf.Sets())
	}
	for v := 0; v < 6; v++ {
		if uf.Find(v) != v {
			t.Fatalf("after Reset vertex %d not a singleton", v)
		}
	}
	if !uf.Union(4, 5) || uf.Same(0, 1) {
		t.Fatal("Reset did not fully restore singleton state")
	}
}

// TestEdgeConnectivityPooledReload interleaves connectivity queries on
// graphs of very different sizes, which forces the pooled Dinic scratch to
// reload across shapes — any stale arc state would surface as a wrong λ.
func TestEdgeConnectivityPooledReload(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	big := RandomKConnected(120, 4, 80, rng, UnitWeights())
	small := Cycle(5, UnitWeights())
	tiny := New(2)
	tiny.AddEdge(0, 1, 1)
	tiny.AddEdge(0, 1, 1)
	tiny.AddEdge(0, 1, 1)
	for round := 0; round < 3; round++ {
		if lam := big.EdgeConnectivityUpTo(5); lam < 4 {
			t.Fatalf("round %d: big λ=%d, want >= 4", round, lam)
		}
		if lam := small.EdgeConnectivity(); lam != 2 {
			t.Fatalf("round %d: cycle λ=%d, want 2", round, lam)
		}
		if lam := tiny.EdgeConnectivity(); lam != 3 {
			t.Fatalf("round %d: multigraph λ=%d, want 3", round, lam)
		}
		disc := New(4)
		disc.AddEdge(0, 1, 1)
		if lam := disc.EdgeConnectivityUpTo(3); lam != 0 {
			t.Fatalf("round %d: disconnected λ=%d, want 0", round, lam)
		}
	}
}

// cutPairsBruteForce is the original O(m·(n+m)) formulation — for each edge
// e, rescan G−e for bridges — retained as the oracle for the fingerprint
// CutPairs implementation.
func cutPairsBruteForce(g *Graph) []CutPair {
	seen := make(map[CutPair]bool)
	var want []CutPair
	for _, e := range g.Edges() {
		rem, orig := g.SubgraphWithout(map[int]bool{e.ID: true})
		for _, b := range rem.Bridges() {
			a, c := e.ID, orig[b]
			if a > c {
				a, c = c, a
			}
			p := CutPair{A: a, B: c}
			if !seen[p] {
				seen[p] = true
				want = append(want, p)
			}
		}
	}
	sort.Slice(want, func(i, j int) bool {
		if want[i].A != want[j].A {
			return want[i].A < want[j].A
		}
		return want[i].B < want[j].B
	})
	return want
}

// TestCutPairsMatchesSubgraphOracle pins the single-pass fingerprint
// enumeration against the remove-one-edge-and-rescan brute force across
// families exercising each branch: cnt==1 tree/non-tree pairs (cycles),
// cnt>=2 tree/tree cliques (theta graphs: parallel internally-disjoint
// paths), parallel edges (multigraphs), and sparse random 2-edge-connected
// graphs.
func TestCutPairsMatchesSubgraphOracle(t *testing.T) {
	theta := func(paths, hops int) *Graph {
		// Two hubs joined by `paths` internally-disjoint paths of `hops`
		// edges. Every path's edge set is one 2-cut clique when paths >= 3.
		g := New(2 + paths*(hops-1))
		next := 2
		for p := 0; p < paths; p++ {
			prev := 0
			for h := 0; h < hops-1; h++ {
				g.AddEdge(prev, next, 1)
				prev = next
				next++
			}
			g.AddEdge(prev, 1, 1)
		}
		return g
	}
	multi := func() *Graph {
		// A 6-cycle with doubled chords and a tripled edge: parallel copies
		// are mutual cut pairs only when doubling, never when tripled.
		g := Cycle(6, UnitWeights())
		g.AddEdge(0, 3, 1)
		g.AddEdge(0, 3, 1)
		g.AddEdge(1, 4, 1)
		g.AddEdge(2, 5, 1)
		g.AddEdge(2, 5, 1)
		g.AddEdge(2, 5, 1)
		return g
	}
	cases := []*Graph{
		Cycle(4, UnitWeights()),
		Cycle(9, UnitWeights()),
		theta(3, 4),
		theta(4, 3),
		multi(),
	}
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 8; trial++ {
		cases = append(cases, RandomKConnected(10+3*trial, 2, trial*2, rng, UnitWeights()))
	}
	for i, g := range cases {
		got := g.CutPairs()
		want := cutPairsBruteForce(g)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d (n=%d m=%d): CutPairs %v, oracle %v", i, g.N(), g.M(), got, want)
		}
	}
}
