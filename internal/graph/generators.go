package graph

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// WeightFn produces the weight of the i-th generated edge. Generators call
// it once per edge in a deterministic order, so a WeightFn backed by a
// seeded *rand.Rand yields reproducible weighted instances.
type WeightFn func(i int) int64

// UnitWeights assigns weight 1 to every edge (the unweighted case).
func UnitWeights() WeightFn { return func(int) int64 { return 1 } }

// RandomWeights assigns independent uniform weights in [1, maxW].
func RandomWeights(rng *rand.Rand, maxW int64) WeightFn {
	if maxW < 1 {
		panic("graph: RandomWeights needs maxW >= 1")
	}
	return func(int) int64 { return 1 + rng.Int63n(maxW) }
}

// Cycle returns the n-cycle 0-1-...-(n-1)-0. It is 2-edge-connected for
// n >= 3.
func Cycle(n int, wf WeightFn) *Graph {
	if n < 3 {
		panic("graph: Cycle needs n >= 3")
	}
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n, wf(i))
	}
	return g
}

// Circulant returns the circulant graph C_n(1..j): vertex i is adjacent to
// i±1, ..., i±j (mod n). C_n(1..j) is 2j-edge-connected (each vertex has
// degree exactly 2j and the graph is maximally edge-connected).
func Circulant(n, j int, wf WeightFn) *Graph {
	if n < 2*j+1 {
		panic(fmt.Sprintf("graph: Circulant needs n >= 2j+1 (n=%d, j=%d)", n, j))
	}
	g := New(n)
	idx := 0
	for off := 1; off <= j; off++ {
		for i := 0; i < n; i++ {
			t := (i + off) % n
			g.AddEdge(i, t, wf(idx))
			idx++
		}
	}
	return g
}

// Harary returns the Harary graph H_{k,n}: the minimum-size k-connected
// (hence k-edge-connected) graph on n vertices, with ceil(k·n/2) edges.
func Harary(k, n int, wf WeightFn) *Graph {
	if k < 1 || n <= k {
		panic(fmt.Sprintf("graph: Harary needs 1 <= k < n (k=%d, n=%d)", k, n))
	}
	if k == 1 {
		// Path graph (1-connected, minimal).
		g := New(n)
		for i := 0; i+1 < n; i++ {
			g.AddEdge(i, i+1, wf(i))
		}
		return g
	}
	j := k / 2
	g := Circulant(n, j, wf)
	idx := g.M()
	if k%2 == 1 {
		if n%2 == 0 {
			// Add diameters i -- i+n/2.
			for i := 0; i < n/2; i++ {
				g.AddEdge(i, i+n/2, wf(idx))
				idx++
			}
		} else {
			// Odd n: connect 0 to both (n-1)/2 and (n+1)/2, and i to
			// i+(n+1)/2 for 1 <= i < (n-1)/2.
			half := (n - 1) / 2
			g.AddEdge(0, half, wf(idx))
			idx++
			g.AddEdge(0, half+1, wf(idx))
			idx++
			for i := 1; i < half; i++ {
				g.AddEdge(i, i+half+1, wf(idx))
				idx++
			}
		}
	}
	return g
}

// RandomKConnected returns a random k-edge-connected graph: a circulant
// backbone C_n(1..ceil(k/2)) guaranteeing edge connectivity >= k, plus
// `extra` uniformly random additional edges (no self-loops; parallels to
// backbone edges allowed — the model permits multigraphs, and duplicate
// random pairs are simply regenerated a bounded number of times then kept).
func RandomKConnected(n, k, extra int, rng *rand.Rand, wf WeightFn) *Graph {
	j := (k + 1) / 2
	if j < 1 {
		j = 1
	}
	g := Circulant(n, j, wf)
	idx := g.M()
	for i := 0; i < extra; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		for tries := 0; u == v && tries < 8; tries++ {
			v = rng.Intn(n)
		}
		if u == v {
			v = (u + 1) % n
		}
		g.AddEdge(u, v, wf(idx))
		idx++
	}
	return g
}

// Grid returns the rows×cols grid graph. It is 2-edge-connected for
// rows, cols >= 2 and has diameter rows+cols-2, making it the standard
// high-diameter family for round-complexity sweeps. Vertex (r,c) has index
// r*cols+c.
func Grid(rows, cols int, wf WeightFn) *Graph {
	if rows < 2 || cols < 2 {
		panic("graph: Grid needs rows, cols >= 2")
	}
	g := New(rows * cols)
	idx := 0
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1), wf(idx))
				idx++
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c), wf(idx))
				idx++
			}
		}
	}
	return g
}

// CliqueChain returns a chain of `length` cliques, each of size `size`,
// where consecutive cliques are joined by k parallel "bundles" (k disjoint
// edges between distinct vertex pairs of the two cliques). The result is
// min(k, size-1)-edge-connected and has diameter Θ(length): the
// high-diameter, tunably-k-connected family used for the E7 diameter sweep.
func CliqueChain(length, size, k int, wf WeightFn) *Graph {
	if length < 1 || size < 2 || k < 1 || k > size {
		panic(fmt.Sprintf("graph: CliqueChain bad parameters (length=%d, size=%d, k=%d)", length, size, k))
	}
	g := New(length * size)
	idx := 0
	for b := 0; b < length; b++ {
		base := b * size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				g.AddEdge(base+i, base+j, wf(idx))
				idx++
			}
		}
		if b+1 < length {
			next := (b + 1) * size
			for i := 0; i < k; i++ {
				g.AddEdge(base+i, next+i, wf(idx))
				idx++
			}
		}
	}
	return g
}

// RandomGeometric returns a random geometric graph: n points uniform in the
// unit square, edges between pairs within Euclidean distance radius, with
// edge weight proportional to distance (scaled to integers in [1, 1000]).
// To guarantee the connectivity the algorithms require, a Circulant(1..j)
// ring over the points sorted by x-coordinate is added, which makes the
// result at least 2j-edge-connected.
func RandomGeometric(n int, radius float64, minConn int, rng *rand.Rand) *Graph {
	if n < 5 {
		panic("graph: RandomGeometric needs n >= 5")
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	// Sort points by x so that the guarantee ring has mostly-short edges.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return xs[order[a]] < xs[order[b]] })

	g := New(n)
	dist := func(a, b int) float64 {
		dx, dy := xs[a]-xs[b], ys[a]-ys[b]
		return math.Sqrt(dx*dx + dy*dy)
	}
	weight := func(d float64) int64 {
		w := int64(d * 1000)
		if w < 1 {
			w = 1
		}
		return w
	}
	type pair struct{ u, v int }
	present := make(map[pair]bool, 4*n)
	add := func(u, v int) {
		if u == v {
			return
		}
		p := pair{u, v}
		if u > v {
			p = pair{v, u}
		}
		if present[p] {
			return
		}
		present[p] = true
		g.AddEdge(u, v, weight(dist(u, v)))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if dist(i, j) <= radius {
				add(i, j)
			}
		}
	}
	j := (minConn + 1) / 2
	if j < 1 {
		j = 1
	}
	for off := 1; off <= j; off++ {
		for i := 0; i < n; i++ {
			add(order[i], order[(i+off)%n])
		}
	}
	return g
}

// ChungLu returns a Chung–Lu random graph with a power-law expected degree
// sequence: vertex i gets target weight w_i ∝ (i+1)^(-1/(beta-1)) scaled so
// the mean degree is avgDeg, and each pair {i,j} is joined independently
// with probability min(1, w_i·w_j/Σw). beta is the power-law exponent
// (2 < beta <= 3 is the scale-free regime; beta=2.5 is a sensible default).
// Because a bare Chung–Lu draw has isolated and pendant vertices, a
// Circulant(1..j) backbone over a random vertex permutation is added, which
// guarantees the result is at least 2j-edge-connected with j = ⌈minConn/2⌉
// while leaving the heavy-tailed degree shape intact.
func ChungLu(n int, beta, avgDeg float64, minConn int, rng *rand.Rand, wf WeightFn) *Graph {
	if n < 5 {
		panic("graph: ChungLu needs n >= 5")
	}
	if beta <= 2 {
		panic("graph: ChungLu needs beta > 2 (finite mean degree)")
	}
	if avgDeg <= 0 {
		panic("graph: ChungLu needs avgDeg > 0")
	}
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = math.Pow(float64(i+1), -1/(beta-1))
		sum += w[i]
	}
	scale := avgDeg * float64(n) / sum
	for i := range w {
		w[i] *= scale
	}
	sum *= scale

	g := New(n)
	type pair struct{ u, v int }
	present := make(map[pair]bool, int(avgDeg)*n)
	idx := 0
	add := func(u, v int) {
		p := pair{u, v}
		if u > v {
			p = pair{v, u}
		}
		if present[p] {
			return
		}
		present[p] = true
		g.AddEdge(u, v, wf(idx))
		idx++
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := w[i] * w[j] / sum
			if p >= 1 || rng.Float64() < p {
				add(i, j)
			}
		}
	}
	// Connectivity backbone over a random permutation, so the guarantee ring
	// does not correlate with the degree ranking.
	perm := rng.Perm(n)
	j := (minConn + 1) / 2
	if j < 1 {
		j = 1
	}
	for off := 1; off <= j; off++ {
		for i := 0; i < n; i++ {
			add(perm[i], perm[(i+off)%n])
		}
	}
	return g
}

// FatTree returns the switch layer of a k-ary fat-tree datacenter topology
// (k even, k >= 4): (k/2)² core switches and k pods of k/2 aggregation plus
// k/2 edge switches. Every edge switch links to all k/2 aggregation
// switches of its pod, and the j-th aggregation switch of each pod links to
// core switches j·k/2 .. j·k/2+k/2-1. The graph has k²·5/4 vertices, k³/2
// edges, diameter 4 and edge connectivity exactly k/2 (each edge switch has
// k/2 uplinks), so FatTree(2k') is the standard datacenter family for
// k'-ECSS sweeps. Vertex layout: cores first, then pod by pod (aggregation
// before edge switches).
func FatTree(k int, wf WeightFn) *Graph {
	if k < 4 || k%2 != 0 {
		panic(fmt.Sprintf("graph: FatTree needs even k >= 4, got %d", k))
	}
	h := k / 2
	cores := h * h
	g := New(cores + k*k)
	idx := 0
	for p := 0; p < k; p++ {
		podBase := cores + p*k
		for a := 0; a < h; a++ {
			agg := podBase + a
			// Aggregation a serves core group a.
			for c := 0; c < h; c++ {
				g.AddEdge(agg, a*h+c, wf(idx))
				idx++
			}
			// Full bipartite aggregation–edge mesh within the pod.
			for e := 0; e < h; e++ {
				g.AddEdge(agg, podBase+h+e, wf(idx))
				idx++
			}
		}
	}
	return g
}

// PaperFigure2Graph returns the 2-edge-connected example graph of the
// paper's Figure 2 (left side): a spanning tree with 3 non-tree edges whose
// cycle-space labels expose two cut pairs. The exact drawing is not
// recoverable from the text, so this is a faithful small instance with the
// same structure: a depth-3 tree plus 3 chords producing tree edges that
// share labels pairwise.
func PaperFigure2Graph() *Graph {
	// Tree: 0-1, 1-2, 2-3, 1-4, 4-5 plus chords 3-5, 2-4, 0-3.
	g := New(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(1, 4, 1)
	g.AddEdge(4, 5, 1)
	g.AddEdge(3, 5, 1)
	g.AddEdge(2, 4, 1)
	g.AddEdge(0, 3, 1)
	return g
}
