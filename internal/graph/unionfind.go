package graph

// UnionFind is a disjoint-set forest with union by rank and path compression.
// It is used by Kruskal's algorithm, Borůvka fragment merging, and the
// Thurimella sparse-certificate baseline.
type UnionFind struct {
	parent []int
	rank   []int
	sets   int
}

// NewUnionFind returns a union-find structure over n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{
		parent: make([]int, n),
		rank:   make([]int, n),
		sets:   n,
	}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

// Find returns the canonical representative of x's set.
func (uf *UnionFind) Find(x int) int {
	root := x
	for uf.parent[root] != root {
		root = uf.parent[root]
	}
	for uf.parent[x] != root {
		uf.parent[x], x = root, uf.parent[x]
	}
	return root
}

// Union merges the sets containing x and y. It returns true if they were in
// different sets (a merge happened).
func (uf *UnionFind) Union(x, y int) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	uf.sets--
	return true
}

// Reset restores the structure to n singleton sets in place, so hot loops
// (one union-find per Aug iteration, for example) can reuse one allocation
// instead of constructing a fresh structure every pass.
func (uf *UnionFind) Reset() {
	for i := range uf.parent {
		uf.parent[i] = i
		uf.rank[i] = 0
	}
	uf.sets = len(uf.parent)
}

// Same reports whether x and y are in the same set.
func (uf *UnionFind) Same(x, y int) bool { return uf.Find(x) == uf.Find(y) }

// Sets returns the current number of disjoint sets.
func (uf *UnionFind) Sets() int { return uf.sets }
