package graph

import (
	"sort"
	"sync"
)

// bridgeFrame is one stack entry of the iterative Tarjan low-link scan.
type bridgeFrame struct {
	v          int
	parentEdge int
	arcIdx     int
}

// bridgeScanner holds the reusable scratch of the low-link bridge scan, so
// sweeps that scan many times (CutPairs scans once per nontrivial 2-cut
// clique) allocate the disc/low/stack buffers once instead of per scan.
type bridgeScanner struct {
	disc  []int
	low   []int
	stack []bridgeFrame
}

// scan appends to dst the IDs of all bridges of g, ignoring the edge with ID
// skip (pass skip = -1 to scan the whole graph), and returns dst. Output
// order follows the traversal; callers that need sorted output sort it.
func (bs *bridgeScanner) scan(g *Graph, skip int, dst []int) []int {
	bs.disc = growInts(bs.disc, g.n)
	bs.low = growInts(bs.low, g.n)
	disc, low := bs.disc, bs.low
	for v := 0; v < g.n; v++ {
		disc[v] = -1
	}
	stack := bs.stack[:0]
	timer := 0

	for start := 0; start < g.n; start++ {
		if disc[start] != -1 {
			continue
		}
		disc[start] = timer
		low[start] = timer
		timer++
		stack = append(stack, bridgeFrame{v: start, parentEdge: -1})
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			if top.arcIdx < len(g.adj[top.v]) {
				a := g.adj[top.v][top.arcIdx]
				top.arcIdx++
				if a.Edge == top.parentEdge || a.Edge == skip {
					continue
				}
				if disc[a.To] == -1 {
					disc[a.To] = timer
					low[a.To] = timer
					timer++
					stack = append(stack, bridgeFrame{v: a.To, parentEdge: a.Edge})
				} else if disc[a.To] < low[top.v] {
					low[top.v] = disc[a.To]
				}
			} else {
				stack = stack[:len(stack)-1]
				if len(stack) > 0 {
					parent := &stack[len(stack)-1]
					if low[top.v] < low[parent.v] {
						low[parent.v] = low[top.v]
					}
					if low[top.v] > disc[parent.v] {
						dst = append(dst, top.parentEdge)
					}
				}
			}
		}
	}
	bs.stack = stack[:0]
	return dst
}

// Bridges returns the IDs of all bridge edges (cuts of size 1) using an
// iterative Tarjan low-link computation. For a multigraph, a parallel pair is
// never a bridge: the low-link traversal tracks the specific parent edge ID
// rather than the parent vertex, which handles parallel edges correctly.
func (g *Graph) Bridges() []int {
	var bs bridgeScanner
	bridges := bs.scan(g, -1, nil)
	sort.Ints(bridges)
	return bridges
}

// TwoEdgeConnected reports whether g is connected and has no bridges, i.e.
// whether g remains connected after the removal of any single edge.
func (g *Graph) TwoEdgeConnected() bool {
	if g.n <= 1 {
		return true
	}
	return g.Connected() && len(g.Bridges()) == 0
}

// CutPair is an unordered pair of edge IDs whose joint removal disconnects a
// 2-edge-connected graph. By convention A < B.
type CutPair struct {
	A, B int
}

// mix64 is the splitmix64 finalizer, used to fingerprint covering-edge sets
// so that distinct sets collide with probability ~2^-64 per component.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// CutPairs enumerates every cut pair of g with one DFS pass plus one bridge
// scan per nontrivial 2-cut class, replacing the former per-edge skip-scan
// (O(m·(n+m))) with an output-sensitive O(n + m + classes·(n+m)) sweep.
//
// The structure it exploits: fix any DFS spanning tree. A pair of two
// non-tree edges never disconnects (the tree survives), so every cut pair
// contains a tree edge t, and the cut it realises is t's fundamental cut —
// hence the partner is either (a) the unique non-tree edge covering t, when
// exactly one does, or (b) another tree edge covered by exactly the same
// set of non-tree edges. "Same covering set" is an equivalence relation, so
// case (b) groups tree edges into cliques. The covering set of every tree
// edge is fingerprinted in O(n+m) total by subtree aggregation: a back edge
// (d, a) with d the deeper endpoint contributes (+1 at d, −1 at a) to the
// count (ancestor a is never in a subtree without d, so the subtree sum at
// a tree edge's child vertex counts exactly the covering edges), its ID to
// an xor at both endpoints (fully-contained edges cancel), and a mixed hash
// with opposite signs (same cancellation). Count-1 edges read their partner
// straight out of the xor. Fingerprint groups of count ≥ 2 and size ≥ 2 are
// then resolved exactly — never trusting the hash — by scanning bridges of
// G−t for one representative t per clique: those bridges are, by
// definition, the exact partner set of t, and resolve the whole clique at
// once. Equal covering sets always produce equal fingerprints, so no pair
// is ever missed; a hash collision merely costs one extra verification
// scan.
//
// The graph must be 2-edge-connected (so that every size-2 cut is a pair of
// edges, each individually removable without disconnecting).
func (g *Graph) CutPairs() []CutPair {
	n, m := g.n, len(g.edges)
	if n == 0 || m == 0 {
		return nil
	}
	disc := make([]int, n)
	parentEdge := make([]int, n)
	order := make([]int, 0, n) // preorder: parents precede children
	for v := range disc {
		disc[v] = -1
		parentEdge[v] = -1
	}
	isTree := make([]bool, m)
	var stack []bridgeFrame
	timer := 0
	for start := 0; start < n; start++ {
		if disc[start] != -1 {
			continue
		}
		disc[start] = timer
		timer++
		order = append(order, start)
		stack = append(stack, bridgeFrame{v: start, parentEdge: -1})
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			if top.arcIdx < len(g.adj[top.v]) {
				a := g.adj[top.v][top.arcIdx]
				top.arcIdx++
				if a.Edge == top.parentEdge || disc[a.To] != -1 {
					continue
				}
				disc[a.To] = timer
				timer++
				parentEdge[a.To] = a.Edge
				isTree[a.Edge] = true
				order = append(order, a.To)
				stack = append(stack, bridgeFrame{v: a.To, parentEdge: a.Edge})
			} else {
				stack = stack[:len(stack)-1]
			}
		}
	}

	// Per-vertex accumulators; after subtree aggregation, the entry at child
	// vertex x describes the set of non-tree edges covering tree edge
	// parentEdge[x].
	cnt := make([]int, n)
	xr := make([]uint64, n)
	hs := make([]uint64, n)
	for _, e := range g.edges {
		if isTree[e.ID] || e.U == e.V {
			continue
		}
		d, a := e.U, e.V
		if disc[d] < disc[a] {
			d, a = a, d
		}
		h := mix64(uint64(e.ID))
		cnt[d]++
		cnt[a]--
		xr[d] ^= uint64(e.ID)
		xr[a] ^= uint64(e.ID)
		hs[d] += h
		hs[a] -= h
	}
	for i := len(order) - 1; i >= 0; i-- {
		x := order[i]
		pe := parentEdge[x]
		if pe == -1 {
			continue
		}
		p := g.edges[pe].Other(x)
		cnt[p] += cnt[x]
		xr[p] ^= xr[x]
		hs[p] += hs[x]
	}

	var pairs []CutPair
	addPair := func(a, b int) {
		if a > b {
			a, b = b, a
		}
		pairs = append(pairs, CutPair{A: a, B: b})
	}
	emitClique := func(class []int) {
		for i := 0; i < len(class); i++ {
			for j := i + 1; j < len(class); j++ {
				addPair(class[i], class[j])
			}
		}
	}
	type fingerprint struct {
		cnt int
		xr  uint64
		hs  uint64
	}
	groups := make(map[fingerprint][]int)
	for _, x := range order {
		pe := parentEdge[x]
		if pe == -1 || cnt[x] < 1 {
			continue
		}
		if cnt[x] == 1 {
			// Exactly one covering non-tree edge: the xor IS its ID.
			addPair(pe, int(xr[x]))
		}
		k := fingerprint{cnt[x], xr[x], hs[x]}
		groups[k] = append(groups[k], pe)
	}
	var bs bridgeScanner
	var scratch []int
	var resolved map[int]bool
	// The emitted pair set is iteration-order independent: a scan resolves
	// a whole equivalence class whichever member is scanned first, and the
	// pairs are sorted before return.
	//kecss:nondeterministic-ok pair set is order-independent and sorted below
	for k, members := range groups {
		if len(members) < 2 {
			continue
		}
		if k.cnt == 1 {
			// A one-element covering set is determined exactly by (cnt, xor):
			// the whole group genuinely shares the set, no scan needed.
			emitClique(members)
			continue
		}
		// cnt >= 2: verify each clique with one scan of a representative.
		// Bridges of G−t are the exact partners of t, so one scan settles t's
		// entire equivalence class; hash-merged strangers stay unresolved and
		// get their own scan.
		if resolved == nil {
			resolved = make(map[int]bool)
		}
		for _, t := range members {
			if resolved[t] {
				continue
			}
			resolved[t] = true
			scratch = bs.scan(g, t, scratch[:0])
			if len(scratch) == 0 {
				continue
			}
			class := make([]int, 0, len(scratch)+1)
			class = append(class, t)
			class = append(class, scratch...)
			for _, p := range class {
				resolved[p] = true
			}
			emitClique(class)
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	return pairs
}

// EdgeConnectivity returns the global edge connectivity λ(g): the minimum
// number of edges whose removal disconnects g. It fixes s=0 and computes a
// unit-capacity max-flow to every other vertex (λ = min over t≠s of
// maxflow(s,t) because any global min cut separates s from some t).
// Returns 0 for disconnected graphs and n-1... is undefined for n<=1, where
// it returns a large value (the graph cannot be disconnected).
func (g *Graph) EdgeConnectivity() int {
	return g.EdgeConnectivityUpTo(g.M() + 1)
}

// EdgeConnectivityUpTo returns min(λ(g), cap). Capping lets k-connectivity
// checks terminate each max-flow after cap augmenting paths.
//
// The Dinic scratch (arc arrays, levels, iterators, BFS queue) is drawn from
// a package-level pool and reloaded in place, so repeated calls — the
// kecss.Pool validation sweep, the cut enumerator's λ check, and the
// post-solve k-connectivity audits — allocate nothing once the pool is warm.
func (g *Graph) EdgeConnectivityUpTo(capLimit int) int {
	if g.n <= 1 {
		return capLimit
	}
	best := capLimit
	if d := g.MinDegree(); d < best {
		best = d
	}
	d := dinicPool.Get().(*dinic)
	d.reload(g)
	// An unreachable t yields flow 0, so disconnected graphs report 0
	// without a separate connectivity pre-pass.
	for t := 1; t < g.n && best > 0; t++ {
		if f := d.maxFlow(0, t, best); f < best {
			best = f
		}
	}
	dinicPool.Put(d)
	return best
}

// IsKEdgeConnected reports whether g remains connected after removal of any
// k-1 edges.
func (g *Graph) IsKEdgeConnected(k int) bool {
	if k <= 0 {
		return true
	}
	if k == 1 {
		return g.Connected()
	}
	if k == 2 {
		return g.TwoEdgeConnected()
	}
	return g.EdgeConnectivityUpTo(k) >= k
}

// dinic is a unit-capacity max-flow structure over an undirected graph:
// every undirected edge becomes a pair of directed arcs with capacity 1 each
// (the standard reduction for edge connectivity). Instances are recycled
// through dinicPool and reloaded per graph, so the seven scratch slices are
// allocated once per pooled instance, not once per connectivity query.
type dinic struct {
	n     int
	head  []int
	next  []int
	to    []int
	cap   []int8
	level []int
	iter  []int
	queue []int
}

var dinicPool = sync.Pool{New: func() any { return new(dinic) }}

// reload rebuilds the arc arrays for g in place, growing the scratch slices
// only when g outsizes every graph this instance has seen before.
func (d *dinic) reload(g *Graph) {
	d.n = g.n
	arcs := 2 * g.M()
	d.head = growInts(d.head, g.n)
	d.level = growInts(d.level, g.n)
	d.iter = growInts(d.iter, g.n)
	d.next = growInts(d.next, arcs)
	d.to = growInts(d.to, arcs)
	if cap(d.cap) < arcs {
		d.cap = make([]int8, arcs)
	} else {
		d.cap = d.cap[:arcs]
	}
	for v := 0; v < g.n; v++ {
		d.head[v] = -1
	}
	a := 0
	addArc := func(u, v int) {
		d.to[a] = v
		d.next[a] = d.head[u]
		d.head[u] = a
		a++
	}
	for _, e := range g.Edges() {
		// Undirected unit edge: arc and reverse arc both have capacity 1.
		addArc(e.U, e.V)
		addArc(e.V, e.U)
	}
}

// growInts returns s resized to n, reusing its backing array when possible.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// reset restores all capacities to 1 (valid because the undirected reduction
// starts every arc at capacity 1).
//
//kecss:alloc-free
func (d *dinic) reset() {
	for i := range d.cap {
		d.cap[i] = 1
	}
	// Note: arcs are stored in (arc, reverse) pairs at indices (2i, 2i+1)...
	// for the undirected case both start at 1, so a flat reset is correct.
}

//kecss:alloc-free
func (d *dinic) bfs(s, t int) bool {
	for v := 0; v < d.n; v++ {
		d.level[v] = -1
	}
	d.level[s] = 0
	d.queue = append(d.queue[:0], s)
	for qi := 0; qi < len(d.queue); qi++ {
		v := d.queue[qi]
		for a := d.head[v]; a != -1; a = d.next[a] {
			if d.cap[a] > 0 && d.level[d.to[a]] == -1 {
				d.level[d.to[a]] = d.level[v] + 1
				d.queue = append(d.queue, d.to[a])
			}
		}
	}
	return d.level[t] != -1
}

//kecss:alloc-free
func (d *dinic) dfs(v, t int) bool {
	if v == t {
		return true
	}
	for ; d.iter[v] != -1; d.iter[v] = d.next[d.iter[v]] {
		a := d.iter[v]
		u := d.to[a]
		if d.cap[a] > 0 && d.level[u] == d.level[v]+1 && d.dfs(u, t) {
			d.cap[a]--
			d.cap[a^1]++
			return true
		}
	}
	return false
}

// maxFlow computes the s→t max flow, stopping early once it reaches limit.
//
//kecss:alloc-free
func (d *dinic) maxFlow(s, t, limit int) int {
	d.reset()
	flow := 0
	for flow < limit && d.bfs(s, t) {
		copy(d.iter, d.head)
		for flow < limit && d.dfs(s, t) {
			flow++
		}
	}
	return flow
}

// GlobalMinCutWeight returns the weight of a global minimum weight edge cut
// using the Stoer–Wagner algorithm in O(n³). Used as an oracle in tests.
// The graph must be connected and have at least 2 vertices.
func (g *Graph) GlobalMinCutWeight() int64 {
	n := g.n
	if n < 2 {
		panic("graph: GlobalMinCutWeight needs at least 2 vertices")
	}
	// Dense weight matrix; parallel edges accumulate.
	w := make([][]int64, n)
	for i := range w {
		w[i] = make([]int64, n)
	}
	for _, e := range g.edges {
		w[e.U][e.V] += e.W
		w[e.V][e.U] += e.W
	}
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	const inf = int64(1) << 62
	best := inf
	for len(active) > 1 {
		// Maximum adjacency (minimum cut phase).
		inA := make([]bool, n)
		weightTo := make([]int64, n)
		var prev, last int
		for i := 0; i < len(active); i++ {
			sel := -1
			for _, v := range active {
				if !inA[v] && (sel == -1 || weightTo[v] > weightTo[sel]) {
					sel = v
				}
			}
			inA[sel] = true
			if i == len(active)-1 {
				if weightTo[sel] < best {
					best = weightTo[sel]
				}
				// Merge last into prev.
				last = sel
				for _, v := range active {
					if v != last && v != prev {
						w[prev][v] += w[last][v]
						w[v][prev] = w[prev][v]
					}
				}
				// Remove last from active.
				out := active[:0]
				for _, v := range active {
					if v != last {
						out = append(out, v)
					}
				}
				active = out
				break
			}
			prev = sel
			for _, v := range active {
				if !inA[v] {
					weightTo[v] += w[sel][v]
				}
			}
		}
	}
	return best
}
