package graph

// BFSResult holds the outcome of a breadth-first search from a source vertex.
type BFSResult struct {
	Source     int
	Dist       []int // Dist[v] = hop distance from Source, -1 if unreachable
	Parent     []int // Parent[v] = BFS-tree parent, -1 for Source/unreachable
	ParentEdge []int // ParentEdge[v] = edge ID to parent, -1 if none
	Order      []int // vertices in visit order (reachable only)
}

// BFS runs a breadth-first search from src, exploring neighbours in
// adjacency-list order (deterministic for a fixed graph).
func (g *Graph) BFS(src int) *BFSResult {
	res := &BFSResult{
		Source:     src,
		Dist:       make([]int, g.n),
		Parent:     make([]int, g.n),
		ParentEdge: make([]int, g.n),
		Order:      make([]int, 0, g.n),
	}
	for v := 0; v < g.n; v++ {
		res.Dist[v] = -1
		res.Parent[v] = -1
		res.ParentEdge[v] = -1
	}
	res.Dist[src] = 0
	queue := make([]int, 0, g.n)
	queue = append(queue, src)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		res.Order = append(res.Order, v)
		for _, a := range g.adj[v] {
			if res.Dist[a.To] == -1 {
				res.Dist[a.To] = res.Dist[v] + 1
				res.Parent[a.To] = v
				res.ParentEdge[a.To] = a.Edge
				queue = append(queue, a.To)
			}
		}
	}
	return res
}

// Eccentricity returns the maximum BFS distance from v to any reachable
// vertex.
func (g *Graph) Eccentricity(v int) int {
	res := g.BFS(v)
	max := 0
	for _, d := range res.Dist {
		if d > max {
			max = d
		}
	}
	return max
}

// Diameter returns the exact hop diameter of g, computed by BFS from every
// vertex (O(n·m)). It returns 0 for graphs with fewer than 2 vertices and
// panics if g is disconnected, since a hop diameter is undefined there.
func (g *Graph) Diameter() int {
	if g.n <= 1 {
		return 0
	}
	max := 0
	for v := 0; v < g.n; v++ {
		res := g.BFS(v)
		for _, d := range res.Dist {
			if d == -1 {
				panic("graph: Diameter on disconnected graph")
			}
			if d > max {
				max = d
			}
		}
	}
	return max
}

// DiameterEstimate returns a fast 2-approximation of the diameter using a
// double BFS sweep (exact on trees). Use for large benchmark instances where
// exact diameter computation is too slow.
func (g *Graph) DiameterEstimate() int {
	if g.n <= 1 {
		return 0
	}
	first := g.BFS(0)
	far := 0
	for v, d := range first.Dist {
		if d > first.Dist[far] {
			far = v
		}
	}
	return g.Eccentricity(far)
}

// Connected reports whether g is connected. Graphs with at most one vertex
// are connected.
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	res := g.BFS(0)
	return len(res.Order) == g.n
}

// Components returns, for each vertex, the index of its connected component,
// along with the number of components. Component indices are assigned in
// order of smallest contained vertex.
func (g *Graph) Components() ([]int, int) {
	comp := make([]int, g.n)
	for v := range comp {
		comp[v] = -1
	}
	count := 0
	for v := 0; v < g.n; v++ {
		if comp[v] != -1 {
			continue
		}
		res := g.BFS(v)
		for _, u := range res.Order {
			comp[u] = count
		}
		count++
	}
	return comp, count
}
