package analysistest

import (
	"reflect"
	"testing"
)

func TestParseTxtar(t *testing.T) {
	archive := "leading comment\nis discarded\n" +
		"-- a/one.go --\npackage a\n" +
		"-- b.txt --\nno trailing newline" // parser must add one
	got := ParseTxtar([]byte(archive))
	want := []File{
		{Name: "a/one.go", Data: []byte("package a\n")},
		{Name: "b.txt", Data: []byte("no trailing newline\n")},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d files, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Name != want[i].Name || string(got[i].Data) != string(want[i].Data) {
			t.Errorf("file %d: got %q %q, want %q %q", i, got[i].Name, got[i].Data, want[i].Name, want[i].Data)
		}
	}
}

func TestParseTxtarEmptyFile(t *testing.T) {
	got := ParseTxtar([]byte("-- empty --\n-- next --\nx\n"))
	if len(got) != 2 || got[0].Name != "empty" || len(got[0].Data) != 0 {
		t.Fatalf("empty file mishandled: %+v", got)
	}
}

func TestParseWantPatterns(t *testing.T) {
	got, err := parseWantPatterns("`first re` \"second \\\"re\\\"\"")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"first re", `second "re"`}; !reflect.DeepEqual(got, want) {
		t.Errorf("got %q, want %q", got, want)
	}
	for _, bad := range []string{"", "unquoted", "`unterminated", `"unterminated`} {
		if _, err := parseWantPatterns(bad); err == nil {
			t.Errorf("parseWantPatterns(%q): expected error", bad)
		}
	}
}

func TestCollectWants(t *testing.T) {
	files := []File{
		{Name: "p/x.go", Data: []byte("package p\nvar x = 1 // want `one` `two`\n")},
		{Name: "notes.txt", Data: []byte("// want `ignored outside go files`\n")},
	}
	wants, err := collectWants(files)
	if err != nil {
		t.Fatal(err)
	}
	if len(wants) != 2 {
		t.Fatalf("got %d wants, want 2: %+v", len(wants), wants)
	}
	for i, pattern := range []string{"one", "two"} {
		if wants[i].file != "p/x.go" || wants[i].line != 2 || wants[i].pattern != pattern {
			t.Errorf("want %d: got %+v", i, wants[i])
		}
	}
	if !claim(wants, "p/x.go", 2, "message two") {
		t.Error("claim failed to match `two`")
	}
	if claim(wants, "p/x.go", 2, "message two") {
		t.Error("claim matched the same want twice")
	}
}
