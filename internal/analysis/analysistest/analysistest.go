// Package analysistest runs kecss-vet analyzers against self-contained
// fixture modules and checks their diagnostics against expectations written
// in the fixture source. It mirrors the x/tools analysistest workflow —
// txtar fixtures, `// want` comments — without the dependency, using the
// same loader as cmd/kecss-vet, so a fixture exercises exactly the code
// path a real run does (go list -export, go/types, and for alloccheck the
// real `go tool compile -m`).
//
// # Fixtures
//
// A fixture is a txtar archive: a sequence of files introduced by
// `-- name --` marker lines. Run extracts it into a fresh temporary
// directory (synthesizing a `module fixture` go.mod when the archive has
// none), loads `./...` there, applies the analyzers, and compares
// diagnostics with expectations:
//
//	return e.job // want `read of e\.job after unlocking`
//
// A want comment carries one or more regexps, each quoted with `...` or
// "..." (Go syntax). Every diagnostic reported on that line must be matched
// by one of the line's regexps and every regexp must match a diagnostic:
// unexpected findings and unfulfilled expectations both fail the test, so
// fixtures pin both the positives and the negatives (a clean function with
// no want comment asserts the analyzer stays quiet on it).
//
// Fixtures must import only the standard library: the harness runs where
// the module cache has no third-party packages and the network is absent.
package analysistest

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// File is one file of a txtar archive.
type File struct {
	Name string
	Data []byte
}

var markerRE = regexp.MustCompile(`^-- (.+) --$`)

// ParseTxtar splits a txtar archive into its files. Text before the first
// `-- name --` marker is a comment and is discarded. The format guarantees
// every file body ends with a newline (one is added if missing), matching
// the reference implementation.
func ParseTxtar(data []byte) []File {
	var (
		files []File
		cur   *File
	)
	for _, line := range bytes.SplitAfter(data, []byte("\n")) {
		trimmed := strings.TrimRight(string(line), "\r\n")
		if m := markerRE.FindStringSubmatch(trimmed); m != nil {
			files = append(files, File{Name: strings.TrimSpace(m[1])})
			cur = &files[len(files)-1]
			continue
		}
		if cur != nil {
			cur.Data = append(cur.Data, line...)
		}
	}
	for i := range files {
		if n := len(files[i].Data); n > 0 && files[i].Data[n-1] != '\n' {
			files[i].Data = append(files[i].Data, '\n')
		}
	}
	return files
}

// want is one expectation: a regexp at a (file, line), plus match state.
type want struct {
	file    string // slash-separated, fixture-relative
	line    int
	pattern string
	re      *regexp.Regexp
	matched bool
}

// Run extracts the fixture at path into a temporary module, runs the
// analyzers on it with the production loader, and reports any mismatch
// between diagnostics and `// want` comments through t.
func Run(t *testing.T, path string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading fixture: %v", err)
	}
	files := ParseTxtar(data)
	if len(files) == 0 {
		t.Fatalf("fixture %s has no files (missing `-- name --` markers?)", path)
	}

	dir := t.TempDir()
	hasMod := false
	for _, f := range files {
		if f.Name == "go.mod" {
			hasMod = true
		}
		dst := filepath.Join(dir, filepath.FromSlash(f.Name))
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			t.Fatalf("extracting fixture: %v", err)
		}
		if err := os.WriteFile(dst, f.Data, 0o644); err != nil {
			t.Fatalf("extracting fixture: %v", err)
		}
	}
	if !hasMod {
		mod := []byte("module fixture\n\ngo 1.24\n")
		if err := os.WriteFile(filepath.Join(dir, "go.mod"), mod, 0o644); err != nil {
			t.Fatalf("writing go.mod: %v", err)
		}
	}

	wants, err := collectWants(files)
	if err != nil {
		t.Fatalf("fixture %s: %v", path, err)
	}

	prog, pkgs, err := analysis.Load(dir, "./...")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, errs := analysis.RunAnalyzers(prog, pkgs, analyzers)
	for _, e := range errs {
		t.Errorf("analyzer error: %v", e)
	}

	for _, d := range diags {
		rel, err := filepath.Rel(dir, d.Position.Filename)
		if err != nil {
			rel = d.Position.Filename
		}
		rel = filepath.ToSlash(rel)
		if !claim(wants, rel, d.Position.Line, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s: %s", rel, d.Position.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.pattern)
		}
	}
}

// claim marks the first unmatched want on (file, line) whose regexp matches
// msg, reporting whether one was found.
func claim(wants []*want, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants scans the archive's .go files for `// want` comments.
func collectWants(files []File) ([]*want, error) {
	var wants []*want
	for _, f := range files {
		if !strings.HasSuffix(f.Name, ".go") {
			continue
		}
		for i, line := range strings.Split(string(f.Data), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			patterns, err := parseWantPatterns(line[idx+len("// want "):])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", f.Name, i+1, err)
			}
			for _, p := range patterns {
				re, err := regexp.Compile(p)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", f.Name, i+1, p, err)
				}
				wants = append(wants, &want{file: f.Name, line: i + 1, pattern: p, re: re})
			}
		}
	}
	return wants, nil
}

// parseWantPatterns reads the space-separated Go-quoted regexps after
// `// want `.
func parseWantPatterns(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimLeft(s, " \t")
		if s == "" {
			break
		}
		var raw string
		switch s[0] {
		case '"':
			i := 1
			for i < len(s) && s[i] != '"' {
				if s[i] == '\\' {
					i++
				}
				i++
			}
			if i >= len(s) {
				return nil, fmt.Errorf("unterminated %q in want comment", s)
			}
			raw, s = s[:i+1], s[i+1:]
		case '`':
			i := strings.IndexByte(s[1:], '`')
			if i < 0 {
				return nil, fmt.Errorf("unterminated %q in want comment", s)
			}
			raw, s = s[:i+2], s[i+2:]
		default:
			return nil, fmt.Errorf("want comment must hold quoted regexps, got %q", s)
		}
		p, err := strconv.Unquote(raw)
		if err != nil {
			return nil, fmt.Errorf("bad quoted regexp %s: %v", raw, err)
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want comment with no patterns")
	}
	return out, nil
}
