// Package arenacheck enforces the arena ownership rules documented on
// congest.NetworkArena and cycles.Arena: an arena may be borrowed by at
// most one live network/engine at a time, must never be shared across
// concurrently-running workers, and the buffers it hands out are loans —
// valid only until the arena's owner recycles them — so they must not be
// stored into structures that outlive the owner.
//
// Types participate via directives on their declarations:
//
//   - //kecss:arena marks an arena type. arenacheck tracks values of the
//     type (and pointers to it) through the package.
//   - //kecss:arena-owner marks a type whose fields may legitimately hold
//     an arena or arena-derived buffers, because its lifetime is bounded
//     by the arena's owner (service.Worker, congest.Network, the solver
//     engines holding per-worker scratch).
//
// In every package it then reports:
//
//   - an arena value stored into a field (or composite literal) of a type
//     not marked arena-owner — re-sharing an existing arena widens its
//     ownership, which is how two live borrowers happen. Constructing a
//     fresh arena into a field (x.f = NewArena()) is ownership creation
//     and always fine.
//   - an arena value referenced inside a `go` statement — an arena moving
//     onto another goroutine is exactly "shared across service workers";
//     every worker must own its arena outright.
//   - a buffer obtained from an arena method stored into a field of a
//     non-owner type (directly or through one local alias) — the loaned
//     buffer would outlive its loan.
//
// A vetted exception carries `//kecss:arena-ok <justification>` on its
// line or the line above.
package arenacheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the arenacheck instance wired into kecss-vet.
var Analyzer = &analysis.Analyzer{
	Name: "arenacheck",
	Doc:  "enforce //kecss:arena ownership: no re-sharing arenas into non-owner fields, across goroutines, or leaking arena-backed buffers",
	Run:  run,
}

const (
	arenaDirective = "arena"
	ownerDirective = "arena-owner"
	okDirective    = "arena-ok"
)

func run(pass *analysis.Pass) (any, error) {
	dirs := analysis.CollectDirectives(pass)
	c := &checker{
		pass:   pass,
		dirs:   dirs,
		arenas: collectMarked(pass, dirs, arenaDirective),
		owners: collectMarked(pass, dirs, ownerDirective),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				c.checkFunc(fn.Body)
			}
		}
	}
	return nil, nil
}

// wellKnownArenas are the repo's arena types, recognized across package
// boundaries (a directive in package congest is invisible when analyzing
// package service, which stores *congest.NetworkArena in its workers).
var wellKnownArenas = map[string]map[string]bool{
	"repro/internal/congest": {"NetworkArena": true},
	"repro/internal/cycles":  {"Arena": true},
}

// wellKnownOwners are cross-package owner types: the //kecss:arena-owner
// directive on a declaration is visible only to its own package's analysis,
// so owners whose literals are built elsewhere (the core option bags, the
// pool worker) are mirrored here.
var wellKnownOwners = map[string]map[string]bool{
	"repro/internal/service": {"Worker": true},
	"repro/internal/core": {
		"TwoECSSOptions":   true,
		"ThreeECSSOptions": true,
		"KECSSOptions":     true,
	},
}

// collectMarked resolves directive-marked type declarations of this
// package to their named types.
func collectMarked(pass *analysis.Pass, dirs *analysis.Directives, directive string) map[*types.TypeName]bool {
	out := make(map[*types.TypeName]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				marked := dirs.GenDeclHas(ts.Doc, ts.Pos(), directive)
				if !marked && len(gd.Specs) == 1 {
					marked = dirs.GenDeclHas(gd.Doc, gd.Pos(), directive)
				}
				if !marked {
					continue
				}
				if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
					out[tn] = true
				}
			}
		}
	}
	return out
}

type checker struct {
	pass   *analysis.Pass
	dirs   *analysis.Directives
	arenas map[*types.TypeName]bool
	owners map[*types.TypeName]bool

	// derived tracks locals assigned from arena-method results in the
	// current function, one level deep.
	derived map[*types.Var]bool
}

func (c *checker) ok(pos token.Pos) bool { return c.dirs.HasAt(pos, okDirective) }

// namedOf unwraps pointers to the named type, if any.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

func (c *checker) isArena(t types.Type) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	if c.arenas[n.Obj()] {
		return true
	}
	if pkg := n.Obj().Pkg(); pkg != nil {
		return wellKnownArenas[pkg.Path()][n.Obj().Name()]
	}
	return false
}

func (c *checker) isOwner(t types.Type) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	if c.owners[n.Obj()] {
		return true
	}
	if pkg := n.Obj().Pkg(); pkg != nil {
		return wellKnownOwners[pkg.Path()][n.Obj().Name()]
	}
	return false
}

func (c *checker) checkFunc(body *ast.BlockStmt) {
	saved := c.derived
	c.derived = make(map[*types.Var]bool)
	defer func() { c.derived = saved }()
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			c.checkAssign(n)
		case *ast.GoStmt:
			c.checkGo(n)
		case *ast.CompositeLit:
			c.checkCompositeLit(n)
		}
		return true
	})
	return
}

// checkAssign applies the field-store rules and maintains local tracking.
func (c *checker) checkAssign(s *ast.AssignStmt) {
	n := len(s.Lhs)
	for i, lhs := range s.Lhs {
		var rhs ast.Expr
		if len(s.Rhs) == n {
			rhs = s.Rhs[i]
		} else if len(s.Rhs) == 1 {
			rhs = s.Rhs[0] // multi-value call; derived tracking skips these
		}
		// Track locals aliasing arena-derived buffers.
		if id, ok := lhs.(*ast.Ident); ok {
			if obj, ok := c.pass.TypesInfo.ObjectOf(id).(*types.Var); ok {
				c.derived[obj] = len(s.Rhs) == n && c.isArenaDerived(rhs)
			}
			continue
		}
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		selection := c.pass.TypesInfo.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			continue
		}
		target := c.pass.TypesInfo.TypeOf(sel.X)
		if rhs == nil || len(s.Rhs) != n {
			continue
		}
		rv := unparen(rhs)
		switch {
		case c.isArena(c.pass.TypesInfo.TypeOf(rv)):
			if isConstructorCall(rv) {
				continue // x.f = NewArena(): ownership creation
			}
			if c.isOwner(target) || c.ok(s.Pos()) {
				continue
			}
			c.pass.Reportf(s.Pos(), "existing arena value %s stored into field of non-owner type %s: re-sharing an arena widens its ownership (mark the type //kecss:arena-owner if its lifetime is bounded by the arena's owner, or //kecss:arena-ok with a justification)", types.ExprString(rv), typeName(target))
		case c.isArenaDerived(rv):
			if c.isOwner(target) || c.ok(s.Pos()) {
				continue
			}
			c.pass.Reportf(s.Pos(), "arena-derived buffer %s stored into field of non-owner type %s: the buffer is a loan that must not outlive the arena's owner (//kecss:arena-owner or //kecss:arena-ok to vet)", types.ExprString(rv), typeName(target))
		}
	}
}

// checkGo reports arena values crossing into a spawned goroutine.
func (c *checker) checkGo(s *ast.GoStmt) {
	ast.Inspect(s.Call, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr:
		default:
			return true
		}
		if sel, ok := e.(*ast.SelectorExpr); ok {
			// Only the selected value itself, not the path to it.
			if selection := c.pass.TypesInfo.Selections[sel]; selection == nil || selection.Kind() != types.FieldVal {
				return true
			}
		}
		if c.isArena(c.pass.TypesInfo.TypeOf(e)) && !c.ok(s.Pos()) && !c.ok(e.Pos()) {
			c.pass.Reportf(e.Pos(), "arena value %s crosses into a goroutine: arenas are single-owner scratch and must not be shared across workers (//kecss:arena-ok to vet)", types.ExprString(e))
			return false
		}
		return true
	})
}

// checkCompositeLit reports arena values seeded into literals of non-owner
// struct types.
func (c *checker) checkCompositeLit(lit *ast.CompositeLit) {
	t := c.pass.TypesInfo.TypeOf(lit)
	if namedOf(t) == nil {
		return
	}
	if _, isStruct := namedOf(t).Underlying().(*types.Struct); !isStruct {
		return
	}
	if c.isOwner(t) || c.isArena(t) {
		return
	}
	for _, el := range lit.Elts {
		v := el
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			v = kv.Value
		}
		v = unparen(v)
		if c.isArena(c.pass.TypesInfo.TypeOf(v)) && !isConstructorCall(v) && !c.ok(v.Pos()) && !c.ok(lit.Pos()) {
			c.pass.Reportf(v.Pos(), "existing arena value %s seeded into literal of non-owner type %s (//kecss:arena-owner on the type or //kecss:arena-ok to vet)", types.ExprString(v), typeName(t))
		}
	}
}

// isArenaDerived reports whether e is (an alias of) a buffer handed out by
// an arena method.
func (c *checker) isArenaDerived(e ast.Expr) bool {
	switch e := unparen(e).(type) {
	case *ast.CallExpr:
		sel, ok := e.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		selection := c.pass.TypesInfo.Selections[sel]
		if selection == nil || selection.Kind() != types.MethodVal {
			return false
		}
		return c.isArena(selection.Recv())
	case *ast.Ident:
		obj, ok := c.pass.TypesInfo.ObjectOf(e).(*types.Var)
		return ok && c.derived[obj]
	case *ast.IndexExpr:
		return c.isArenaDerived(e.X)
	case *ast.SliceExpr:
		return c.isArenaDerived(e.X)
	}
	return false
}

// isConstructorCall reports whether e is a direct call (not an arena
// method call) — the shape of NewArena()/pool.Get-style ownership
// creation.
func isConstructorCall(e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	return ok && call != nil
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func typeName(t types.Type) string {
	if n := namedOf(t); n != nil {
		return n.Obj().Name()
	}
	if t == nil {
		return "?"
	}
	return t.String()
}
