package arenacheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/arenacheck"
)

// TestOwnershipRules pins the analyzer on re-shared arenas (literal and
// field stores), loaned buffers leaking out of owner types (directly and
// through an alias), goroutine crossings, and the cases that must stay
// quiet: owner types, fresh construction, and //kecss:arena-ok handoffs.
func TestOwnershipRules(t *testing.T) {
	analysistest.Run(t, "testdata/ownership.txtar", arenacheck.Analyzer)
}
