package lockcheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockcheck"
)

// TestQueueClaimRace pins the analyzer on the distilled PR-8 Queue.Claim
// read-after-Unlock race (and its fixed form, which must stay quiet).
func TestQueueClaimRace(t *testing.T) {
	analysistest.Run(t, "testdata/queue.txtar", lockcheck.Analyzer)
}
