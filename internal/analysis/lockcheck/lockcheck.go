// Package lockcheck reports reads and writes of mutex-guarded struct
// fields outside a critical section of their mutex.
//
// The guard map comes from the repo's existing comment convention: a
// struct field whose declaration comment says `guarded by mu` is protected
// by the sibling field `mu` (a sync.Mutex or sync.RWMutex); `guarded by
// Queue.mu` names a mutex living in another struct of the same package
// (for satellite structs like queue.entry, whose instances are owned by a
// Queue).
//
// The checker is deliberately intra-procedural and precise about the bug
// class that has actually bitten this repo twice (the PR-7 Claim shutdown
// race and the PR-8 Claim/reaper race): within a function that locks and
// unlocks a guard, an access to a guarded field while the guard is not
// held — most often a read of a captured pointer *after* mu.Unlock(), when
// the reaper or a concurrent claimer may already be mutating the entry.
// Functions that never touch the guard (constructors, `...Locked` helpers
// whose caller holds the lock) are skipped: whole-program lock inference
// is out of scope, the runtime -race matrix covers it statistically, and
// skipping keeps the checker's findings precise enough to block CI on.
//
// With an RWMutex, RLock admits reads of guarded fields but not writes.
//
// A finding is suppressed by `//kecss:lockcheck-ok <justification>` on the
// access's line or the line above — for accesses that are safe by
// ownership transfer rather than by holding the lock.
package lockcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the lockcheck instance wired into kecss-vet.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "report accesses to `guarded by mu` struct fields outside the mutex's critical section",
	Run:  run,
}

// okDirective suppresses a finding on its line.
const okDirective = "lockcheck-ok"

var guardRE = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)(?:\.([A-Za-z_][A-Za-z0-9_]*))?`)

// guardKey identifies a mutex as (struct type, field name): any value of
// that struct type locking that field counts as the same critical section.
// This collapses distinct instances of one type into one lock identity,
// which is the right granularity for the intra-procedural check: the base
// expressions in one function overwhelmingly refer to one instance.
type guardKey struct {
	recv  *types.Named
	field string
}

func (k guardKey) String() string { return k.recv.Obj().Name() + "." + k.field }

// lockState is the checker's per-guard abstract state.
type lockState int

const (
	stUnlocked lockState = iota
	stRLocked
	stLocked
	stUnknown // conflicting paths; no reports
)

func join(a, b lockState) lockState {
	if a == b {
		return a
	}
	return stUnknown
}

func run(pass *analysis.Pass) (any, error) {
	dirs := analysis.CollectDirectives(pass)
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil, nil
	}
	c := &checker{pass: pass, dirs: dirs, guards: guards}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			c.checkFunc(fn.Body)
		}
	}
	return nil, nil
}

// collectGuards builds the field→mutex map from `guarded by` comments and
// validates each annotation (the named mutex must exist and be a
// sync.Mutex/RWMutex, reported otherwise so a typo cannot silently disable
// the check).
func collectGuards(pass *analysis.Pass) map[*types.Var]guardKey {
	guards := make(map[*types.Var]guardKey)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			def := pass.TypesInfo.Defs[ts.Name]
			if def == nil {
				return true
			}
			named, ok := def.Type().(*types.Named)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				text := commentText(field)
				m := guardRE.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				key, err := resolveGuard(pass, named, m[1], m[2])
				if err != nil {
					pass.Reportf(field.Pos(), "bad `guarded by` annotation: %v", err)
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						guards[v] = key
					}
				}
			}
			return true
		})
	}
	return guards
}

func commentText(field *ast.Field) string {
	var sb strings.Builder
	if field.Doc != nil {
		sb.WriteString(field.Doc.Text())
		sb.WriteString(" ")
	}
	if field.Comment != nil {
		sb.WriteString(field.Comment.Text())
	}
	return sb.String()
}

// resolveGuard maps a `guarded by X` / `guarded by T.X` comment to its
// guard key. The bare form names a mutex field of the annotated struct
// itself; the qualified form names a struct type of the same package.
func resolveGuard(pass *analysis.Pass, owner *types.Named, a, b string) (guardKey, error) {
	holder, mutex := owner, a
	if b != "" {
		obj := pass.Pkg.Scope().Lookup(a)
		if obj == nil {
			return guardKey{}, fmt.Errorf("no type %q in package %s", a, pass.Pkg.Name())
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			return guardKey{}, fmt.Errorf("%q is not a named type", a)
		}
		holder, mutex = named, b
	}
	st, ok := holder.Underlying().(*types.Struct)
	if !ok {
		return guardKey{}, fmt.Errorf("%s is not a struct", holder.Obj().Name())
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != mutex {
			continue
		}
		if !isMutexType(f.Type()) {
			return guardKey{}, fmt.Errorf("%s.%s is not a sync.Mutex or sync.RWMutex", holder.Obj().Name(), mutex)
		}
		return guardKey{recv: holder, field: mutex}, nil
	}
	return guardKey{}, fmt.Errorf("struct %s has no field %q", holder.Obj().Name(), mutex)
}

func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

type checker struct {
	pass   *analysis.Pass
	dirs   *analysis.Directives
	guards map[*types.Var]guardKey

	// Per-function state:
	used     map[guardKey]bool // guards this function locks or unlocks
	silent   bool              // true during the loop-body pre-simulation
	reported map[token.Pos]bool
}

// checkFunc analyzes one function (or function literal) body in isolation.
func (c *checker) checkFunc(body *ast.BlockStmt) {
	saveUsed, saveSilent, saveReported := c.used, c.silent, c.reported
	defer func() { c.used, c.silent, c.reported = saveUsed, saveSilent, saveReported }()

	c.used = make(map[guardKey]bool)
	c.silent = false
	c.reported = make(map[token.Pos]bool)
	c.scanLockOps(body)
	if len(c.used) == 0 {
		return
	}
	st := make(map[guardKey]*stateEntry)
	for k := range c.used {
		st[k] = &stateEntry{state: stUnlocked}
	}
	c.walkStmts(body.List, st)
}

// stateEntry is the abstract state of one guard plus how it got there —
// `afterUnlock` distinguishes "after mu.Unlock()" (the PR-7/PR-8 race
// shape) from "before ever locking" in the diagnostic.
type stateEntry struct {
	state       lockState
	afterUnlock bool
}

func cloneState(st map[guardKey]*stateEntry) map[guardKey]*stateEntry {
	out := make(map[guardKey]*stateEntry, len(st))
	for k, v := range st {
		cp := *v
		out[k] = &cp
	}
	return out
}

func joinState(a, b map[guardKey]*stateEntry) map[guardKey]*stateEntry {
	out := make(map[guardKey]*stateEntry, len(a))
	for k, av := range a {
		bv := b[k]
		out[k] = &stateEntry{state: join(av.state, bv.state), afterUnlock: av.afterUnlock || bv.afterUnlock}
	}
	return out
}

// scanLockOps records which guards the function manipulates directly —
// the opt-in that keeps caller-holds-the-lock helpers out of scope. Nested
// function literals are their own functions and do not opt the outer one in.
func (c *checker) scanLockOps(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if key, _, ok := c.lockOp(call); ok {
				c.used[key] = true
			}
		}
		return true
	})
}

// lockOp matches `<expr>.<mutexfield>.Lock/RLock/Unlock/RUnlock()` calls
// and returns the guard key plus the operation name.
func (c *checker) lockOp(call *ast.CallExpr) (guardKey, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return guardKey{}, "", false
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return guardKey{}, "", false
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return guardKey{}, "", false
	}
	if !isMutexType(c.pass.TypesInfo.TypeOf(inner)) {
		return guardKey{}, "", false
	}
	base := c.pass.TypesInfo.TypeOf(inner.X)
	if base == nil {
		return guardKey{}, "", false
	}
	if p, ok := base.(*types.Pointer); ok {
		base = p.Elem()
	}
	named, ok := base.(*types.Named)
	if !ok {
		return guardKey{}, "", false
	}
	return guardKey{recv: named, field: inner.Sel.Name}, op, true
}

// walkStmts simulates a statement list, reporting guarded accesses made
// while their guard is not held. It returns the exit state.
func (c *checker) walkStmts(stmts []ast.Stmt, st map[guardKey]*stateEntry) map[guardKey]*stateEntry {
	for _, s := range stmts {
		st = c.walkStmt(s, st)
	}
	return st
}

func (c *checker) walkStmt(s ast.Stmt, st map[guardKey]*stateEntry) map[guardKey]*stateEntry {
	switch s := s.(type) {
	case *ast.ExprStmt:
		c.checkExpr(s.X, st, false)
		c.applyLockOps(s.X, st)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			c.checkExpr(rhs, st, false)
			c.applyLockOps(rhs, st)
		}
		for _, lhs := range s.Lhs {
			c.checkLHS(lhs, st)
		}
	case *ast.IncDecStmt:
		c.checkLHS(s.X, st)
	case *ast.DeferStmt:
		// defer mu.Unlock() releases at return: the lock stays held for the
		// rest of the simulated body. Any other deferred call is checked as
		// an opaque expression (its own FuncLit body is analyzed separately).
		if _, _, ok := c.lockOp(s.Call); ok {
			return st
		}
		c.checkExpr(s.Call, st, false)
	case *ast.GoStmt:
		c.checkExprFuncLitsOnly(s.Call)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.checkExpr(r, st, false)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			st = c.walkStmt(s.Init, st)
		}
		c.checkExpr(s.Cond, st, false)
		thenSt := c.walkStmts(s.Body.List, cloneState(st))
		var elseSt map[guardKey]*stateEntry
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			elseSt = c.walkStmts(e.List, cloneState(st))
		case *ast.IfStmt:
			elseSt = c.walkStmt(e, cloneState(st))
		default:
			elseSt = st
		}
		switch {
		case terminates(s.Body):
			return elseSt
		case s.Else != nil && stmtTerminates(s.Else):
			return thenSt
		default:
			return joinState(thenSt, elseSt)
		}
	case *ast.BlockStmt:
		return c.walkStmts(s.List, st)
	case *ast.ForStmt:
		if s.Init != nil {
			st = c.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			c.checkExpr(s.Cond, st, false)
		}
		// Two-pass loop body: a silent pass estimates the loop-carried exit
		// state, then the reporting pass runs from the join of entry and
		// back-edge states — so a body that leaves the lock in a different
		// state than it entered is analyzed as Unknown, not half-right.
		exit := c.silently(func() map[guardKey]*stateEntry {
			bst := c.walkStmts(s.Body.List, cloneState(st))
			if s.Post != nil {
				bst = c.walkStmt(s.Post, bst)
			}
			return bst
		})
		entry := joinState(st, exit)
		bst := c.walkStmts(s.Body.List, cloneState(entry))
		if s.Post != nil {
			bst = c.walkStmt(s.Post, bst)
		}
		return joinState(st, bst)
	case *ast.RangeStmt:
		c.checkExpr(s.X, st, false)
		exit := c.silently(func() map[guardKey]*stateEntry {
			return c.walkStmts(s.Body.List, cloneState(st))
		})
		entry := joinState(st, exit)
		if s.Key != nil {
			c.checkLHS(s.Key, entry)
		}
		if s.Value != nil {
			c.checkLHS(s.Value, entry)
		}
		bst := c.walkStmts(s.Body.List, cloneState(entry))
		return joinState(st, bst)
	case *ast.SwitchStmt:
		if s.Init != nil {
			st = c.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			c.checkExpr(s.Tag, st, false)
		}
		return c.walkCases(s.Body, st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st = c.walkStmt(s.Init, st)
		}
		c.walkStmt(s.Assign, cloneState(st))
		return c.walkCases(s.Body, st)
	case *ast.SelectStmt:
		return c.walkCases(s.Body, st)
	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, st)
	case *ast.SendStmt:
		c.checkExpr(s.Chan, st, false)
		c.checkExpr(s.Value, st, false)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.checkExpr(v, st, false)
					}
				}
			}
		}
	}
	return st
}

// walkCases joins the exits of every case clause (plus fallthrough of the
// pre-switch state, since no case may match).
func (c *checker) walkCases(body *ast.BlockStmt, st map[guardKey]*stateEntry) map[guardKey]*stateEntry {
	out := cloneState(st)
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				c.checkExpr(e, st, false)
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm != nil {
				c.walkStmt(cl.Comm, cloneState(st))
			}
			stmts = cl.Body
		}
		caseSt := c.walkStmts(stmts, cloneState(st))
		if !stmtsTerminate(stmts) {
			out = joinState(out, caseSt)
		}
	}
	return out
}

func (c *checker) silently(fn func() map[guardKey]*stateEntry) map[guardKey]*stateEntry {
	save := c.silent
	c.silent = true
	defer func() { c.silent = save }()
	return fn()
}

// applyLockOps updates the state for every lock operation in an expression
// (in practice: the single call of an ExprStmt).
func (c *checker) applyLockOps(e ast.Expr, st map[guardKey]*stateEntry) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	key, op, ok := c.lockOp(call)
	if !ok {
		return
	}
	entry, tracked := st[key]
	if !tracked {
		return
	}
	switch op {
	case "Lock":
		entry.state = stLocked
		entry.afterUnlock = false
	case "RLock":
		entry.state = stRLocked
		entry.afterUnlock = false
	case "Unlock", "RUnlock":
		entry.state = stUnlocked
		entry.afterUnlock = true
	default: // TryLock/TryRLock: held only on one branch
		entry.state = stUnknown
	}
}

// checkLHS checks an assignment target: the stored-to field is a write,
// any guarded fields on the path to it (e.g. the map in m[k] = v) too.
func (c *checker) checkLHS(e ast.Expr, st map[guardKey]*stateEntry) {
	switch e := e.(type) {
	case *ast.IndexExpr:
		c.checkExpr(e.Index, st, false)
		c.checkLHS(e.X, st) // writing through an index mutates the container
	case *ast.StarExpr:
		c.checkExpr(e.X, st, false)
	case *ast.SelectorExpr:
		c.checkAccess(e, st, true)
		c.checkExpr(e.X, st, false)
	default:
		c.checkExpr(e, st, false)
	}
}

// checkExpr walks an expression tree reporting guarded accesses; write
// applies to the outermost selector only (via checkLHS).
func (c *checker) checkExpr(e ast.Expr, st map[guardKey]*stateEntry, write bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.checkFunc(n.Body)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				// Taking a guarded field's address lets it escape the
				// critical section; treat as a write.
				if sel, ok := n.X.(*ast.SelectorExpr); ok {
					c.checkAccess(sel, st, true)
					c.checkExpr(sel.X, st, false)
					return false
				}
			}
		case *ast.SelectorExpr:
			c.checkAccess(n, st, write)
		}
		return true
	})
}

// checkExprFuncLitsOnly analyzes function literals inside a go statement
// as their own functions; the spawned call's own arguments are evaluated
// at spawn time under the current state, but flagging them adds noise for
// little value, so only literals are descended into.
func (c *checker) checkExprFuncLitsOnly(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			c.checkFunc(fl.Body)
			return false
		}
		return true
	})
}

// checkAccess reports a guarded-field access whose guard is not held.
func (c *checker) checkAccess(sel *ast.SelectorExpr, st map[guardKey]*stateEntry, write bool) {
	selection := c.pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return
	}
	v, ok := selection.Obj().(*types.Var)
	if !ok {
		return
	}
	key, guarded := c.guards[v]
	if !guarded {
		return
	}
	entry, tracked := st[key]
	if !tracked {
		return // this function never touches the guard: out of scope
	}
	ok = entry.state == stLocked || entry.state == stUnknown ||
		(entry.state == stRLocked && !write)
	if ok {
		return
	}
	if c.silent || c.reported[sel.Pos()] {
		return
	}
	if c.dirs.HasAt(sel.Pos(), okDirective) {
		return
	}
	c.reported[sel.Pos()] = true
	kind := "read of"
	if write {
		kind = "write to"
	}
	expr := types.ExprString(sel)
	if entry.state == stRLocked {
		c.pass.Reportf(sel.Pos(), "%s %s while holding only %s.RLock (field guarded by %s)", kind, expr, key, key)
		return
	}
	how := "without holding"
	if entry.afterUnlock {
		how = "after unlocking"
	}
	c.pass.Reportf(sel.Pos(), "%s %s %s %s (field guarded by %s)", kind, expr, how, key, key)
}

// terminates reports whether a block always transfers control out
// (return, panic-like call, continue, break, goto).
func terminates(b *ast.BlockStmt) bool { return stmtsTerminate(b.List) }

func stmtsTerminate(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	return stmtTerminates(stmts[len(stmts)-1])
}

func stmtTerminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				// os.Exit, log.Fatal*, t.Fatal* and friends.
				name := sel.Sel.Name
				if name == "Exit" || strings.HasPrefix(name, "Fatal") {
					return true
				}
			}
		}
	case *ast.BlockStmt:
		return terminates(s)
	case *ast.IfStmt:
		return terminates(s.Body) && s.Else != nil && stmtTerminates(s.Else)
	case *ast.LabeledStmt:
		return stmtTerminates(s.Stmt)
	}
	return false
}
