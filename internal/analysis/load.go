package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// PackageMeta is the slice of a `go list -json` record the driver needs.
type PackageMeta struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string // absolute paths
	Imports    []string
	Export     string // export-data file (built by go list -export)
	Standard   bool
	DepOnly    bool
	Module     *struct {
		Path      string
		GoVersion string
	}
	Error *struct {
		Err string
	}
}

// Package is one target package: its metadata, parsed files, and
// type-check results.
type Package struct {
	Meta      *PackageMeta
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Program is a loaded set of target packages plus the export-data index of
// everything they (transitively) import.
type Program struct {
	Fset *token.FileSet
	// Dir is the directory Load ran in (module root for relative patterns).
	Dir string
	// export maps import path → export-data file for every dependency.
	export map[string]string
	// GoTool is the `go` binary used for loading (re-used by alloccheck).
	GoTool string
}

// ExportFile returns the export-data file for an import path ("" when
// unknown — e.g. "unsafe", which has none).
func (p *Program) ExportFile(path string) string { return p.export[path] }

// ExportedDeps returns every (importPath, exportFile) pair the program
// knows, for building compiler importcfg files.
func (p *Program) ExportedDeps() map[string]string { return p.export }

// Load runs `go list -deps -export -json` on the patterns in dir, parses
// and type-checks every matched (non-dependency-only) package of the main
// module, and returns the program. Dependencies — the standard library and
// in-module packages alike — are consumed as compiled export data, so each
// target package type-checks independently; the underlying build is cached
// by the go build cache.
func Load(dir string, patterns ...string) (*Program, []*Package, error) {
	goTool, err := exec.LookPath("go")
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: cannot find the go tool: %w", err)
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-deps", "-export", "-json=Dir,ImportPath,Name,GoFiles,Imports,Export,Standard,DepOnly,Module,Error", "--"}, patterns...)
	cmd := exec.Command(goTool, args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, nil, fmt.Errorf("analysis: go list failed: %v\n%s", err, stderr.String())
	}

	prog := &Program{
		Fset:   token.NewFileSet(),
		Dir:    dir,
		export: make(map[string]string),
		GoTool: goTool,
	}
	var metas []*PackageMeta
	dec := json.NewDecoder(&stdout)
	for {
		m := new(PackageMeta)
		if err := dec.Decode(m); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if m.Error != nil {
			return nil, nil, fmt.Errorf("analysis: %s: %s", m.ImportPath, m.Error.Err)
		}
		if m.Export != "" {
			prog.export[m.ImportPath] = m.Export
		}
		metas = append(metas, m)
	}

	imp := importer.ForCompiler(prog.Fset, "gc", func(path string) (io.ReadCloser, error) {
		file := prog.export[path]
		if file == "" {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, m := range metas {
		if m.DepOnly || m.Standard {
			continue
		}
		pkg, err := typeCheck(prog, imp, m)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return prog, pkgs, nil
}

// typeCheck parses and type-checks one package against export data.
func typeCheck(prog *Program, imp types.Importer, m *PackageMeta) (*Package, error) {
	var files []*ast.File
	for _, name := range m.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(m.Dir, name)
		}
		f, err := parser.ParseFile(prog.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	goVersion := ""
	if m.Module != nil && m.Module.GoVersion != "" {
		goVersion = "go" + m.Module.GoVersion
	}
	var typeErrs []error
	conf := types.Config{
		Importer:  imp,
		GoVersion: goVersion,
		Error:     func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(m.ImportPath, prog.Fset, files, info)
	if len(typeErrs) > 0 {
		var sb strings.Builder
		for i, e := range typeErrs {
			if i > 0 {
				sb.WriteString("\n")
			}
			sb.WriteString(e.Error())
		}
		return nil, fmt.Errorf("analysis: type-checking %s:\n%s", m.ImportPath, sb.String())
	}
	return &Package{Meta: m, Files: files, Types: tpkg, TypesInfo: info}, nil
}
