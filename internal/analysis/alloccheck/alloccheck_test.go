package alloccheck_test

import (
	"testing"

	"repro/internal/analysis/alloccheck"
	"repro/internal/analysis/analysistest"
)

// TestHotPathContract pins the analyzer against the compiler's real escape
// analysis: a clean //kecss:alloc-free function, a violating one, the
// panic-path exemption, and both outcomes of a //kecss:noescape line.
func TestHotPathContract(t *testing.T) {
	analysistest.Run(t, "testdata/hotpath.txtar", alloccheck.Analyzer)
}
