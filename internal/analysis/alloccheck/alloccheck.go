// Package alloccheck verifies the repo's allocation-free hot-path
// contract against the compiler's actual escape analysis, gcassert-style.
//
// The hot paths that PRs 1/4/5 drove to ~0 allocs/op (simulator round
// delivery, cycles.Incremental.AddEdges, the pooled Dinic reload,
// tree.ForEachPathEdge, ...) were protected only by bench-smoke ceilings
// running at -benchtime=1x — an accidental heap escape fails a benchmark
// hours later, with no pointer to the offending expression. alloccheck
// moves that to build time: it recompiles each annotated package with
// `go tool compile -m` (using the same cached export data the loader
// already resolved, so no network and no second dependency build) and maps
// every `escapes to heap` / `moved to heap` finding back to the
// annotations:
//
//   - //kecss:alloc-free on a function declaration asserts the compiled
//     function body contains no heap allocation site at all. Any escape
//     or heap move inside it becomes a diagnostic at the allocating line.
//     Note this is stronger than "0 allocs/op warm": a function that
//     allocates only to grow a pool cannot carry it — annotate the
//     allocation-free leaves instead.
//   - //kecss:noescape on (or directly above) a line asserts the
//     allocation-like expressions on that line stay on the stack: `make`,
//     `new`, composite literals and closures there must compile to
//     `does not escape`.
//
// `leaking param` findings are deliberately ignored: a leaking parameter
// allocates in the caller, not in the annotated function. Escapes on lines
// inside a panic(...) call are likewise ignored for //kecss:alloc-free
// spans: a panic path allocates only while the process is dying, no
// benchmark ever observes it, and charging for it would push hot paths to
// drop their invariant guards. (//kecss:noescape lines stay strict.)
package alloccheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the alloccheck instance wired into kecss-vet.
var Analyzer = &analysis.Analyzer{
	Name: "alloccheck",
	Doc:  "verify //kecss:alloc-free functions and //kecss:noescape lines against go tool compile -m escape analysis",
	Run:  run,
}

const (
	allocFreeDirective = "alloc-free"
	noEscapeDirective  = "noescape"
)

// span is one //kecss:alloc-free function's extent.
type span struct {
	file       string
	start, end int // line range, inclusive
	name       string
	pos        token.Pos
}

func run(pass *analysis.Pass) (any, error) {
	dirs := analysis.CollectDirectives(pass)

	var spans []span
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !dirs.FuncHas(fn, allocFreeDirective) {
				continue
			}
			start := pass.Fset.Position(fn.Pos())
			end := pass.Fset.Position(fn.End())
			name := fn.Name.Name
			if fn.Recv != nil && len(fn.Recv.List) > 0 {
				name = recvTypeName(fn.Recv.List[0].Type) + "." + name
			}
			spans = append(spans, span{file: start.Filename, start: start.Line, end: end.Line, name: name, pos: fn.Pos()})
		}
	}

	// A //kecss:noescape directive on line L asserts line L (trailing
	// comment) and line L+1 (comment-above form).
	noescape := make(map[string]map[int]bool)
	for file, lines := range dirs.Lines(noEscapeDirective) {
		m := make(map[int]bool)
		for _, l := range lines {
			m[l] = true
			m[l+1] = true
		}
		noescape[file] = m
	}

	if len(spans) == 0 && len(noescape) == 0 {
		return nil, nil
	}

	findings, err := escapeFindings(pass)
	if err != nil {
		return nil, err
	}
	panicLines := collectPanicLines(pass)
	for _, f := range findings {
		if m := noescape[f.file]; m != nil && m[f.line] {
			pass.Reportf(posAt(pass, f.file, f.line), "//kecss:noescape violated: %s", f.msg)
			continue
		}
		if m := panicLines[f.file]; m != nil && m[f.line] {
			continue // dying-process allocation, not a hot-path cost
		}
		for _, sp := range spans {
			if f.file == sp.file && f.line >= sp.start && f.line <= sp.end {
				pass.Reportf(posAt(pass, f.file, f.line), "//kecss:alloc-free function %s allocates: %s (line %d)", sp.name, f.msg, f.line)
				break
			}
		}
	}
	return nil, nil
}

// collectPanicLines maps file -> line numbers covered by a panic(...) call
// expression, so alloc-free spans are not charged for allocations that only
// happen while the process is dying.
func collectPanicLines(pass *analysis.Pass) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "panic" {
				return true
			}
			start := pass.Fset.Position(call.Pos())
			end := pass.Fset.Position(call.End())
			m := out[start.Filename]
			if m == nil {
				m = make(map[int]bool)
				out[start.Filename] = m
			}
			for l := start.Line; l <= end.Line; l++ {
				m[l] = true
			}
			return true
		})
	}
	return out
}

func recvTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(e.X)
	}
	return "?"
}

// finding is one escape-analysis event at a source line.
type finding struct {
	file string
	line int
	msg  string
}

var escapeLineRE = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// escapeFindings compiles the package with -m and returns every
// heap-allocation finding. The compile consumes the loader's export data
// through an importcfg, so it needs no GOPATH, no network, and no second
// build of the dependency graph.
func escapeFindings(pass *analysis.Pass) ([]finding, error) {
	tmp, err := os.MkdirTemp("", "kecss-vet-alloccheck-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)

	cfg := new(strings.Builder)
	deps := pass.Prog.ExportedDeps()
	paths := make([]string, 0, len(deps))
	for p := range deps {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		fmt.Fprintf(cfg, "packagefile %s=%s\n", p, deps[p])
	}
	cfgPath := filepath.Join(tmp, "importcfg")
	if err := os.WriteFile(cfgPath, []byte(cfg.String()), 0o644); err != nil {
		return nil, err
	}

	importPath := pass.Meta.ImportPath
	if pass.Pkg.Name() == "main" {
		importPath = "main"
	}
	args := []string{"tool", "compile",
		"-p", importPath,
		"-importcfg", cfgPath,
		"-m",
		"-o", filepath.Join(tmp, "out.a"),
	}
	for _, f := range pass.Meta.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(pass.Meta.Dir, f)
		}
		args = append(args, f)
	}
	cmd := exec.Command(pass.Prog.GoTool, args...)
	cmd.Dir = pass.Meta.Dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("escape-analysis compile of %s failed: %v\n%s", importPath, err, out)
	}

	var findings []finding
	for _, line := range strings.Split(string(out), "\n") {
		m := escapeLineRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.HasPrefix(msg, "moved to heap") {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(pass.Meta.Dir, file)
		}
		findings = append(findings, finding{file: file, line: atoi(m[2]), msg: msg})
	}
	return findings, nil
}

func atoi(s string) int {
	n := 0
	for _, c := range s {
		n = n*10 + int(c-'0')
	}
	return n
}

// posAt converts (file, line) from compiler output back to a token.Pos in
// the pass's fileset.
func posAt(pass *analysis.Pass, file string, line int) token.Pos {
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		if tf == nil || tf.Name() != file {
			continue
		}
		if line <= tf.LineCount() {
			return tf.LineStart(line)
		}
	}
	return token.NoPos
}
