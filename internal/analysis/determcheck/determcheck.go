// Package determcheck enforces the solver stack's determinism contract:
// for a fixed (graph, options, seed), every solver path must produce
// byte-identical output at any worker count, on any scheduler, on any run
// — that is what makes wire.Digest a content address, result stores
// idempotent, and the equivalence corpora meaningful.
//
// The analyzer applies only to packages that declare the contract with a
// `//kecss:deterministic` directive above their package clause. In such
// packages it flags the constructs that have actually produced (or nearly
// produced) nondeterminism in this repo:
//
//   - range over a map, unless the loop body is a commutative fold
//     (order-insensitive accumulation: +=, ^=, |=, &=, *=, ++/--, writes
//     into other maps, delete, constant flag assignments) or the
//     collect-then-sort idiom (the body only appends to one slice and the
//     statement immediately after the loop sorts that slice). The PR-1
//     Borůvka bug — EdgeIDs assembled in map-iteration order and returned
//     — is exactly the non-fold, non-sorted case.
//   - time.Now (and time.Since/time.Until), which smuggle wall-clock into
//     solver output.
//   - the global math/rand functions (rand.Intn, rand.Shuffle, ...): all
//     solver randomness must flow from a seeded *rand.Rand or the repo's
//     splitmix64 streams, derived from the task seed.
//   - select statements with more than one communication case, whose
//     choice among ready cases is randomized by the runtime.
//
// A construct that is nondeterministic by design (diagnostics, jitter
// outside the digest path) is silenced with
// `//kecss:nondeterministic-ok <justification>` on its line or the line
// above.
package determcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the determcheck instance wired into kecss-vet.
var Analyzer = &analysis.Analyzer{
	Name: "determcheck",
	Doc:  "flag map-iteration, wall-clock, global-rand and select nondeterminism in //kecss:deterministic packages",
	Run:  run,
}

const (
	pkgDirective = "deterministic"
	okDirective  = "nondeterministic-ok"
)

func run(pass *analysis.Pass) (any, error) {
	if !analysis.PackageHas(pass, pkgDirective) {
		return nil, nil
	}
	dirs := analysis.CollectDirectives(pass)
	c := &checker{pass: pass, dirs: dirs, sortedAfter: make(map[*ast.RangeStmt]bool)}
	for _, f := range pass.Files {
		ast.Inspect(f, c.markSortedAfter)
		ast.Inspect(f, c.visit)
	}
	return nil, nil
}

type checker struct {
	pass *analysis.Pass
	dirs *analysis.Directives
	// sortedAfter holds the map-range loops sanctioned by the
	// collect-then-sort idiom.
	sortedAfter map[*ast.RangeStmt]bool
}

// markSortedAfter scans statement lists for the collect-then-sort idiom: a
// range loop whose body only appends to one slice, immediately followed by
// a statement that sorts that slice. Iteration order cannot reach the
// result, so such loops are deterministic even over maps.
func (c *checker) markSortedAfter(n ast.Node) bool {
	var list []ast.Stmt
	switch n := n.(type) {
	case *ast.BlockStmt:
		list = n.List
	case *ast.CaseClause:
		list = n.Body
	case *ast.CommClause:
		list = n.Body
	default:
		return true
	}
	for i := 0; i+1 < len(list); i++ {
		rng, ok := list[i].(*ast.RangeStmt)
		if !ok {
			continue
		}
		if target := appendTarget(rng.Body.List); target != "" && sortsSlice(list[i+1], target) {
			c.sortedAfter[rng] = true
		}
	}
	return true
}

// appendTarget returns the printed form of the one slice the statements
// append to, or "" if they do anything else. An if-without-else wrapper is
// allowed (conditional collection stays order-free).
func appendTarget(stmts []ast.Stmt) string {
	target := ""
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.AssignStmt:
			if s.Tok != token.ASSIGN || len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return ""
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok {
				return ""
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" || len(call.Args) < 2 {
				return ""
			}
			lhs := types.ExprString(s.Lhs[0])
			if len(call.Args) > 0 && types.ExprString(call.Args[0]) != lhs {
				return ""
			}
			if target != "" && target != lhs {
				return ""
			}
			target = lhs
		case *ast.IfStmt:
			if s.Init != nil || s.Else != nil {
				return ""
			}
			t := appendTarget(s.Body.List)
			if t == "" || (target != "" && target != t) {
				return ""
			}
			target = t
		default:
			return ""
		}
	}
	return target
}

// sortsSlice reports whether s is a sort call whose subject is the named
// slice: sort.Ints/Strings/Float64s/Slice/SliceStable/Sort(target, ...) or
// slices.Sort*/SortFunc(target, ...).
func sortsSlice(s ast.Stmt, target string) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
		return false
	}
	if !strings.HasPrefix(sel.Sel.Name, "Sort") &&
		!strings.HasPrefix(sel.Sel.Name, "Ints") &&
		!strings.HasPrefix(sel.Sel.Name, "Strings") &&
		!strings.HasPrefix(sel.Sel.Name, "Float64s") &&
		!strings.HasPrefix(sel.Sel.Name, "Slice") {
		return false
	}
	return types.ExprString(call.Args[0]) == target
}

func (c *checker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.RangeStmt:
		c.checkRange(n)
	case *ast.CallExpr:
		c.checkCall(n)
	case *ast.SelectStmt:
		c.checkSelect(n)
	}
	return true
}

func (c *checker) ok(pos token.Pos) bool { return c.dirs.HasAt(pos, okDirective) }

// checkRange flags `range m` over a map unless the body is a commutative
// fold, so iteration order cannot reach the result.
func (c *checker) checkRange(n *ast.RangeStmt) {
	t := c.pass.TypesInfo.TypeOf(n.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	if c.ok(n.Pos()) {
		return
	}
	if c.sortedAfter[n] || commutativeFold(n.Body.List) {
		return
	}
	c.pass.Reportf(n.Pos(), "range over map %s in a deterministic package: iteration order is random; iterate sorted keys, restructure as a commutative fold, or annotate //kecss:nondeterministic-ok with a justification", types.ExprString(n.X))
}

// commutativeFold reports whether every statement of a loop body is an
// order-insensitive accumulation, so running the iterations in any order
// produces the same final state.
func commutativeFold(stmts []ast.Stmt) bool {
	for _, s := range stmts {
		if !commutativeStmt(s) {
			return false
		}
	}
	return len(stmts) > 0
}

func commutativeStmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		switch s.Tok {
		case token.ADD_ASSIGN, token.XOR_ASSIGN, token.OR_ASSIGN,
			token.AND_ASSIGN, token.MUL_ASSIGN:
			return true
		case token.ASSIGN:
			// m[k] = v is commutative when distinct iterations write
			// distinct keys; the common shape here is indexing by the
			// range key, which is unique per iteration. A constant flag
			// assignment (done = false) lands on the same value whichever
			// iteration runs last. Other writes to plain variables are
			// order-sensitive (last writer wins).
			for i, lhs := range s.Lhs {
				if _, ok := lhs.(*ast.IndexExpr); ok {
					continue
				}
				if _, ok := lhs.(*ast.Ident); ok && len(s.Lhs) == len(s.Rhs) && isConstLit(s.Rhs[i]) {
					continue
				}
				return false
			}
			return true
		default:
			return false
		}
	case *ast.IncDecStmt:
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" {
			return true
		}
		return false
	case *ast.IfStmt:
		// Conditional accumulation stays commutative only if every branch
		// is; a guarded `best = x` min/max fold is NOT (ties break by
		// order) unless the condition is strict on the folded value —
		// being strict is beyond syntax, so require annotations there.
		if s.Init != nil || s.Else != nil {
			return false
		}
		return commutativeFold(s.Body.List)
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE
	}
	return false
}

// isConstLit reports whether e is a literal constant (true/false/nil, a
// basic literal, or their negation).
func isConstLit(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		return e.Name == "true" || e.Name == "false" || e.Name == "nil"
	case *ast.UnaryExpr:
		return isConstLit(e.X)
	}
	return false
}

// checkCall flags wall-clock reads and global math/rand draws.
func (c *checker) checkCall(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := c.pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return
	}
	switch pkgName.Imported().Path() {
	case "time":
		switch sel.Sel.Name {
		case "Now", "Since", "Until":
			if !c.ok(call.Pos()) {
				c.pass.Reportf(call.Pos(), "time.%s in a deterministic package: wall-clock readings are nondeterministic; thread times through options, or annotate //kecss:nondeterministic-ok with a justification", sel.Sel.Name)
			}
		}
	case "math/rand", "math/rand/v2":
		if !c.ok(call.Pos()) {
			c.pass.Reportf(call.Pos(), "global %s.%s in a deterministic package: the process-wide source is not seed-derived; use a *rand.Rand (or splitmix64 stream) derived from the task seed, or annotate //kecss:nondeterministic-ok", pkgName.Imported().Path(), sel.Sel.Name)
		}
	}
}

// checkSelect flags selects that choose among multiple ready cases.
func (c *checker) checkSelect(n *ast.SelectStmt) {
	comms := 0
	for _, cl := range n.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
			comms++
		}
	}
	if comms < 2 {
		return
	}
	if c.ok(n.Pos()) {
		return
	}
	c.pass.Reportf(n.Pos(), "select with %d communication cases in a deterministic package: the runtime picks among ready cases pseudo-randomly; sequence the channels explicitly or annotate //kecss:nondeterministic-ok with a justification", comms)
}
