package determcheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/determcheck"
)

// TestBoruvkaMapOrder pins the analyzer on the distilled PR-1 Borůvka
// map-iteration-order bug, the sanctioned collect-then-sort and
// commutative-fold idioms, wall-clock and global-rand reads, and the
// //kecss:nondeterministic-ok escape.
func TestBoruvkaMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata/boruvka.txtar", determcheck.Analyzer)
}
