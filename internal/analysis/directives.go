package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// DirectivePrefix introduces kecss-vet directive comments. Like `//go:`
// directives they are written with no space after `//`.
const DirectivePrefix = "//kecss:"

// Directives indexes the `//kecss:` directive comments of one package by
// file and line, so analyzers can answer "is this line annotated?" and
// "does this declaration carry directive X?".
type Directives struct {
	fset *token.FileSet
	// byLine maps filename → line → directive names on that line.
	byLine map[string]map[int][]string
}

// CollectDirectives scans every comment of the pass's files.
func CollectDirectives(pass *Pass) *Directives {
	d := &Directives{fset: pass.Fset, byLine: make(map[string]map[int][]string)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				lines := d.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					d.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], name)
			}
		}
	}
	return d
}

// parseDirective extracts the directive name from a `//kecss:name ...`
// comment (the remainder is the human justification; it is required by
// convention but not parsed).
func parseDirective(text string) (string, bool) {
	if !strings.HasPrefix(text, DirectivePrefix) {
		return "", false
	}
	rest := strings.TrimPrefix(text, DirectivePrefix)
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	if rest == "" {
		return "", false
	}
	return rest, true
}

// at reports whether the given file line carries the named directive.
func (d *Directives) at(filename string, line int, name string) bool {
	for _, got := range d.byLine[filename][line] {
		if got == name {
			return true
		}
	}
	return false
}

// Lines returns every (filename, line) on which the named directive
// appears.
func (d *Directives) Lines(name string) map[string][]int {
	out := make(map[string][]int)
	for file, lines := range d.byLine {
		for line, names := range lines {
			for _, got := range names {
				if got == name {
					out[file] = append(out[file], line)
					break
				}
			}
		}
	}
	return out
}

// HasAt reports whether the named directive annotates pos: on the same
// line (a trailing comment) or on the line directly above it.
func (d *Directives) HasAt(pos token.Pos, name string) bool {
	p := d.fset.Position(pos)
	return d.at(p.Filename, p.Line, name) || d.at(p.Filename, p.Line-1, name)
}

// FuncHas reports whether a function declaration carries the directive in
// its doc comment or on the lines directly above its first line.
func (d *Directives) FuncHas(fn *ast.FuncDecl, name string) bool {
	if fn.Doc != nil {
		for _, c := range fn.Doc.List {
			if got, ok := parseDirective(c.Text); ok && got == name {
				return true
			}
		}
	}
	return d.HasAt(fn.Pos(), name)
}

// GenDeclHas reports whether a declaration (or its enclosing GenDecl)
// carries the directive in a doc comment or directly above it.
func (d *Directives) GenDeclHas(doc *ast.CommentGroup, pos token.Pos, name string) bool {
	if doc != nil {
		for _, c := range doc.List {
			if got, ok := parseDirective(c.Text); ok && got == name {
				return true
			}
		}
	}
	return d.HasAt(pos, name)
}

// PackageHas reports whether any file of the pass declares the package-
// level directive: in the package doc comment or anywhere above the
// package clause.
func PackageHas(pass *Pass, name string) bool {
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			if cg.End() > f.Package {
				continue // only comments above the package clause count
			}
			for _, c := range cg.List {
				if got, ok := parseDirective(c.Text); ok && got == name {
					return true
				}
			}
		}
	}
	return false
}
