// Package analysis is the static-analysis layer behind cmd/kecss-vet: a
// small, dependency-free clone of the golang.org/x/tools/go/analysis API
// plus a package loader built on `go list -export` and go/types. It exists
// because the repo's three load-bearing contracts — mutex discipline in the
// serving stack, byte-identical deterministic solver output, and
// allocation-free hot paths — were enforced only at runtime (race tests,
// equivalence corpora, bench ceilings), which means a violation surfaces
// hours later as a flaky digest or a tripped allocation ceiling instead of
// failing the build at the offending line.
//
// # Analyzers
//
// Four project-specific analyzers live in subpackages and are wired into
// the cmd/kecss-vet multichecker:
//
//   - lockcheck: parses `guarded by` field comments into a field→mutex map
//     and reports reads/writes of guarded fields outside a critical section
//     of that mutex — including the exact read-after-Unlock pattern behind
//     the PR-7 and PR-8 Queue.Claim races.
//   - determcheck: in packages marked `//kecss:deterministic`, flags
//     iteration-order and wall-clock nondeterminism: range over maps (unless
//     the body is a commutative fold), time.Now, the global math/rand
//     functions, and multi-case selects.
//   - alloccheck: verifies `//kecss:alloc-free` functions and
//     `//kecss:noescape` sites against the compiler's real escape analysis
//     (`go tool compile -m`), so an accidental heap escape on a hot path
//     fails the build rather than a bench ceiling hours later.
//   - arenacheck: enforces the NetworkArena/cutArena ownership rules —
//     arena values must not be re-shared into other structs or leaked into
//     goroutine closures, and arena-derived buffers may live only in fields
//     of types marked `//kecss:arena-owner`.
//
// # Annotation conventions
//
// Struct-field guard comments (lockcheck):
//
//	mu     sync.Mutex
//	ready  []*entry // guarded by mu
//	job    *Job     // guarded by Queue.mu  (mutex lives in a sibling struct)
//
// Directive comments (all `//kecss:` directives are written without a
// space, like `//go:` directives, either on the flagged line, on the line
// directly above it, or in a declaration's doc comment):
//
//	//kecss:deterministic        package doc: solver package, determcheck applies
//	//kecss:nondeterministic-ok  this line is intentionally order/time-dependent
//	//kecss:alloc-free           this function must compile with zero heap escapes
//	//kecss:noescape             the allocation on this line must stay on the stack
//	//kecss:arena                this type is an arena (arenacheck tracks its values)
//	//kecss:arena-owner          this type legitimately holds arena-backed buffers
//	//kecss:arena-ok             this arena use is vetted (with a justification!)
//	//kecss:lockcheck-ok         this guarded access is vetted (with a justification!)
//
// Run the suite locally with:
//
//	go run ./cmd/kecss-vet ./...
//
// It exits non-zero with file:line:col diagnostics on any violation, and
// runs as a blocking CI step before the bench smokes.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one analysis: its name, documentation, and how to
// run it on a single package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI flags.
	Name string
	// Doc is the one-paragraph description shown by kecss-vet -help.
	Doc string
	// Run applies the analyzer to one package and reports diagnostics
	// through the pass. The result value is unused (kept for API parity
	// with golang.org/x/tools/go/analysis).
	Run func(*Pass) (any, error)
}

// A Pass provides one analyzer run with a single type-checked package and
// a sink for diagnostics.
type Pass struct {
	Analyzer *Analyzer
	// Fset maps token positions of every file in the pass to file:line:col.
	Fset *token.FileSet
	// Files are the package's parsed source files (no test files).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo records types, definitions, uses and selections for every
	// expression in Files.
	TypesInfo *types.Info
	// Meta is the `go list` record for the package (directory, file list,
	// import path, export-data locations of its dependencies via Prog).
	Meta *PackageMeta
	// Prog is the whole loaded program; analyzers that drive external
	// tooling (alloccheck's escape-analysis compile) use it to resolve
	// dependency export data.
	Prog *Program
	// Report delivers one diagnostic.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// RunAnalyzers applies every analyzer to every package and returns the
// diagnostics sorted by position. Analyzer errors (not diagnostics —
// failures to run at all) are returned as errs.
func RunAnalyzers(prog *Program, pkgs []*Package, analyzers []*Analyzer) (diags []SortedDiagnostic, errs []error) {
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      prog.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Meta:      pkg.Meta,
				Prog:      prog,
			}
			pass.Report = func(d Diagnostic) {
				diags = append(diags, SortedDiagnostic{
					Analyzer: a.Name,
					Position: prog.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if _, err := a.Run(pass); err != nil {
				errs = append(errs, fmt.Errorf("%s: %s: %w", pkg.Meta.ImportPath, a.Name, err))
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, errs
}

// SortedDiagnostic is a diagnostic resolved to a concrete file position,
// tagged with the analyzer that produced it.
type SortedDiagnostic struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (d SortedDiagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
}
