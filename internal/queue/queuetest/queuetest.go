// Package queuetest is the conformance suite for queue.Broker
// implementations. Both the in-memory queue and the httpbroker
// client/server pair run the same suite, which is what lets kecss-serve
// promise that lease semantics — TTL expiry, redelivery, attempt counts,
// dead-lettering — are identical whether an agent is fused in-process or
// attached over HTTP.
package queuetest

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/queue"
)

// Factory builds the broker under test on top of a queue configured with
// cfg. Implementations register teardown with t.Cleanup; the suite closes
// the returned broker itself.
type Factory func(t *testing.T, cfg queue.Config) queue.Broker

// Run exercises every Broker contract point against brokers built by mk.
func Run(t *testing.T, mk Factory) {
	t.Run("FIFOAndOutcomeDelivery", func(t *testing.T) { testFIFOAndOutcome(t, mk) })
	t.Run("AttemptCountsAcrossRedelivery", func(t *testing.T) { testAttempts(t, mk) })
	t.Run("LeaseExpiryTwoClaimants", func(t *testing.T) { testExpiryTwoClaimants(t, mk) })
	t.Run("ExtendKeepsLeaseAlive", func(t *testing.T) { testExtend(t, mk) })
	t.Run("DeadLetterRingAndLimit", func(t *testing.T) { testDeadLetters(t, mk) })
	t.Run("ConcurrentClaimExtendComplete", func(t *testing.T) { testConcurrent(t, mk) })
	t.Run("CancelledContextBeatsReadyJob", func(t *testing.T) { testCancelledContext(t, mk) })
}

// testCancelledContext pins the shutdown contract consumers rely on: a
// Claim whose context is already done returns the context error even when
// jobs are ready — a stopping agent must never walk away with a fresh
// lease. The job stays claimable by a live consumer.
func testCancelledContext(t *testing.T, mk Factory) {
	b := mk(t, queue.Config{})
	defer b.Close()
	b.Enqueue(&queue.Job{ID: "ready"})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if l, err := b.Claim(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Claim with cancelled ctx = (%v, %v), want context.Canceled", l, err)
	}
	l := claim(t, b)
	if l.Job.ID != "ready" || l.Job.Attempt != 1 {
		t.Fatalf("job after refused claim = %s attempt %d, want ready attempt 1", l.Job.ID, l.Job.Attempt)
	}
	l.Ack()
}

func claim(t *testing.T, b queue.Broker) *queue.Lease {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	l, err := b.Claim(ctx)
	if err != nil {
		t.Fatalf("claim: %v", err)
	}
	return l
}

func testFIFOAndOutcome(t *testing.T, mk Factory) {
	var mu sync.Mutex
	done := map[string]queue.Outcome{}
	b := mk(t, queue.Config{OnComplete: func(j *queue.Job, out queue.Outcome) {
		mu.Lock()
		done[j.ID] = out
		mu.Unlock()
	}})
	defer b.Close()
	for i := 0; i < 3; i++ {
		if err := b.Enqueue(&queue.Job{ID: fmt.Sprintf("j%d", i), Digest: fmt.Sprintf("d%d", i), Request: json.RawMessage(`{"n":1}`)}); err != nil {
			t.Fatalf("enqueue: %v", err)
		}
	}
	for i := 0; i < 3; i++ {
		l := claim(t, b)
		if want := fmt.Sprintf("j%d", i); l.Job.ID != want {
			t.Fatalf("claim %d = %s, want %s (FIFO)", i, l.Job.ID, want)
		}
		if l.Job.Attempt != 1 {
			t.Fatalf("fresh claim attempt = %d, want 1", l.Job.Attempt)
		}
		if string(l.Job.Request) != `{"n":1}` {
			t.Fatalf("request payload did not survive delivery: %q", l.Job.Request)
		}
		if !l.Complete(&queue.Outcome{Result: json.RawMessage(`{"ok":true}`)}) {
			t.Fatal("Complete on live lease returned false")
		}
		if l.Complete(&queue.Outcome{}) {
			t.Fatal("second Complete returned true")
		}
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(done) == 3
	}, "OnComplete for all three jobs")
	mu.Lock()
	defer mu.Unlock()
	if string(done["j1"].Result) != `{"ok":true}` {
		t.Fatalf("outcome for j1 = %+v", done["j1"])
	}
}

func testAttempts(t *testing.T, mk Factory) {
	b := mk(t, queue.Config{MaxAttempts: 5, BackoffBase: time.Millisecond, BackoffMax: 3 * time.Millisecond})
	defer b.Close()
	b.Enqueue(&queue.Job{ID: "fresh"})
	// Attempt is stamped at claim time and climbs across Fail redeliveries.
	for want := 1; want <= 3; want++ {
		l := claim(t, b)
		if l.Job.Attempt != want {
			t.Fatalf("delivery %d has attempt %d", want, l.Job.Attempt)
		}
		if want < 3 {
			if !l.Nack("try again") {
				t.Fatal("Nack on live lease returned false")
			}
		} else {
			l.Ack()
		}
	}
	// A job enqueued with prior attempts (journal replay) keeps its budget.
	b.Enqueue(&queue.Job{ID: "replayed", Attempt: 2})
	if l := claim(t, b); l.Job.ID != "replayed" || l.Job.Attempt != 3 {
		t.Fatalf("replayed claim = %s attempt %d, want replayed attempt 3", l.Job.ID, l.Job.Attempt)
	} else {
		l.Ack()
	}
}

func testExpiryTwoClaimants(t *testing.T, mk Factory) {
	b := mk(t, queue.Config{LeaseTTL: 40 * time.Millisecond, BackoffBase: time.Millisecond, BackoffMax: 3 * time.Millisecond, MaxAttempts: 5})
	defer b.Close()
	b.Enqueue(&queue.Job{ID: "j0"})
	first := claim(t, b)
	// A second claimant is already waiting when the first lease expires:
	// the reaper must hand the same job to it with the attempt bumped.
	second := claim(t, b)
	if second.Job.ID != "j0" || second.Job.Attempt != 2 {
		t.Fatalf("redelivery = %s attempt %d, want j0 attempt 2", second.Job.ID, second.Job.Attempt)
	}
	// The loser's token is inert in every direction.
	if first.Extend() {
		t.Fatal("Extend on expired lease returned true")
	}
	if first.Complete(&queue.Outcome{Result: json.RawMessage(`"stale"`)}) {
		t.Fatal("Complete on expired lease returned true")
	}
	if first.Nack("stale") {
		t.Fatal("Nack on expired lease returned true")
	}
	// The winner's lease is live.
	if !second.Extend() {
		t.Fatal("Extend on live lease returned false")
	}
	if !second.Complete(&queue.Outcome{Result: json.RawMessage(`"fresh"`)}) {
		t.Fatal("Complete on live redelivered lease returned false")
	}
}

func testExtend(t *testing.T, mk Factory) {
	b := mk(t, queue.Config{LeaseTTL: 50 * time.Millisecond, BackoffBase: time.Millisecond, BackoffMax: 3 * time.Millisecond})
	defer b.Close()
	b.Enqueue(&queue.Job{ID: "slow"})
	l := claim(t, b)
	// Heartbeat past several TTLs; the lease must never lapse.
	deadline := time.Now().Add(180 * time.Millisecond)
	for time.Now().Before(deadline) {
		if !l.Extend() {
			t.Fatal("Extend lost a heartbeated lease")
		}
		time.Sleep(15 * time.Millisecond)
	}
	if !l.Ack() {
		t.Fatal("Ack after heartbeats returned false")
	}
	if s := b.Stats(); s.Ready+s.Delayed+s.Leased != 0 {
		t.Fatalf("census after heartbeated ack = %+v, want all zero", s)
	}
}

func testDeadLetters(t *testing.T, mk Factory) {
	b := mk(t, queue.Config{MaxAttempts: 1, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond, DeadLetterCap: 3})
	defer b.Close()
	for i := 0; i < 5; i++ {
		b.Enqueue(&queue.Job{ID: fmt.Sprintf("j%d", i)})
		l := claim(t, b)
		l.Nack("budget of one")
	}
	waitFor(t, func() bool { return b.Stats().Dead == 5 }, "all five dead-lettered")
	// The ring keeps only the newest cap entries, reported oldest-first.
	all := b.DeadLetters(0)
	if len(all) != 3 || all[0].Job.ID != "j2" || all[2].Job.ID != "j4" {
		t.Fatalf("DeadLetters(0) = %v", ids(all))
	}
	if got := b.DeadLetters(2); len(got) != 2 || got[0].Job.ID != "j3" || got[1].Job.ID != "j4" {
		t.Fatalf("DeadLetters(2) = %v", ids(got))
	}
	if got := b.DeadLetters(10); len(got) != 3 {
		t.Fatalf("DeadLetters(10) = %v, want the 3 retained", ids(got))
	}
	// Returned entries are copies, not aliases into the ring.
	all[0].Job.ID = "mutated"
	all[0].Reason = "mutated"
	if again := b.DeadLetters(0); again[0].Job.ID != "j2" || again[0].Reason != "budget of one" {
		t.Fatalf("mutating a returned dead letter leaked into the ring: %+v", again[0])
	}
	if s := b.Stats(); s.Dead != 5 {
		t.Fatalf("Stats.Dead = %d, want all-time 5", s.Dead)
	}
}

func testConcurrent(t *testing.T, mk Factory) {
	const jobs, workers = 60, 8
	var completions atomic.Int64
	b := mk(t, queue.Config{
		LeaseTTL:    2 * time.Second,
		MaxAttempts: 8,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
		OnComplete:  func(*queue.Job, queue.Outcome) { completions.Add(1) },
	})
	defer b.Close()
	for i := 0; i < jobs; i++ {
		b.Enqueue(&queue.Job{ID: fmt.Sprintf("j%03d", i)})
	}
	var mu sync.Mutex
	delivered := map[string]int{}
	var wg sync.WaitGroup
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	var remaining atomic.Int64
	remaining.Store(jobs)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for remaining.Load() > 0 {
				// Short per-claim window so a worker blocked on an empty
				// queue notices when its peers finish the drain.
				cctx, ccancel := context.WithTimeout(ctx, 250*time.Millisecond)
				l, err := b.Claim(cctx)
				ccancel()
				if err != nil {
					if errors.Is(err, queue.ErrClosed) || ctx.Err() != nil {
						return
					}
					continue
				}
				// Race Extend against Complete from the same holder; both
				// must be safe and the job must complete exactly once.
				l.Extend()
				if l.Complete(&queue.Outcome{Result: json.RawMessage(`"r"`)}) {
					mu.Lock()
					delivered[l.Job.ID]++
					mu.Unlock()
					remaining.Add(-1)
				}
			}
		}(w)
	}
	wg.Wait()
	if ctx.Err() != nil {
		t.Fatal("workers timed out draining the queue")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(delivered) != jobs {
		t.Fatalf("completed %d distinct jobs, want %d", len(delivered), jobs)
	}
	for id, n := range delivered {
		if n != 1 {
			t.Fatalf("job %s completed %d times, want exactly once", id, n)
		}
	}
	waitFor(t, func() bool { return completions.Load() == jobs }, "OnComplete once per job")
	if s := b.Stats(); s.Ready+s.Delayed+s.Leased != 0 || s.Dead != 0 {
		t.Fatalf("census after drain = %+v, want empty", s)
	}
}

func ids(dls []queue.DeadLetter) []string {
	out := make([]string, len(dls))
	for i, d := range dls {
		out[i] = d.Job.ID
	}
	return out
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
