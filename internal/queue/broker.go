package queue

import (
	"context"
	"encoding/json"

	"repro/internal/telemetry"
)

// Broker is the delivery contract of the work-queue layer: producers
// Enqueue, consumers Claim under a TTL lease and then Extend / Complete /
// Fail it by token. The in-memory Queue is the local implementation;
// httpbroker.Client speaks the same interface to a Queue in another
// process, so consumers (solver agents) are written once and run fused or
// remote unchanged.
//
// Semantics every implementation must preserve (the conformance suite in
// package queuetest pins them):
//
//   - Delivery is at-least-once, FIFO among ready jobs. Attempt is stamped
//     at claim time (1-based, carried across redeliveries and Enqueue).
//   - A lease not completed, failed or extended within the TTL expires and
//     the job is redelivered with capped exponential backoff.
//   - Fail returns the job for retry (same backoff); a job delivered
//     MaxAttempts times is dead-lettered instead.
//   - Extend / Complete / Fail report whether the lease was still held.
//     A Complete on an expired lease is dropped — the producer's
//     completion path must be idempotent (kecss dedups by job ID, and the
//     result store makes duplicate solves byte-identical no-ops).
type Broker interface {
	// Enqueue adds a job to the ready set.
	Enqueue(j *Job) error
	// Claim blocks until a job is ready (or ctx ends, or the broker
	// closes) and returns it under a lease.
	Claim(ctx context.Context) (*Lease, error)
	// Extend renews the lease TTL (a heartbeat for long solves).
	Extend(token uint64) bool
	// Complete reports the job's outcome and releases the lease. A nil
	// outcome is a plain ack (release without a result — used for
	// duplicate deliveries of already-finished jobs).
	Complete(token uint64, out *Outcome) bool
	// Fail returns the job for retry with backoff (or dead-letters it if
	// the budget is spent).
	Fail(token uint64, reason string) bool
	// DeadLetters returns the most recent dead-lettered jobs, oldest
	// first; limit <= 0 returns every retained entry. The returned
	// entries are copies — mutating them does not touch broker state.
	DeadLetters(limit int) []DeadLetter
	// Stats reports the broker census.
	Stats() Stats
	// Close stops the broker: blocked Claims return ErrClosed, Enqueue
	// refuses, outstanding leases become inert.
	Close()
}

// Outcome is what a consumer reports with Complete: either a result
// payload, or a permanent (non-retryable) failure with an optional
// HTTP-ish classification code. Retryable failures go through Fail
// instead.
type Outcome struct {
	Result json.RawMessage `json:"result,omitempty"`
	Err    string          `json:"error,omitempty"`
	Code   int             `json:"code,omitempty"`
	// Spans carries the consumer's telemetry spans for this delivery
	// (rooted at parent 0; the producer grafts them into the job's trace
	// under the delivery's claim span). They ride the outcome across
	// process boundaries — httpbroker ships them in the /complete body —
	// so a remote agent's solve timeline lands in the frontend's trace.
	Spans []telemetry.Span `json:"spans,omitempty"`
}

// Lease is a claimed job. The holder must Complete, Fail (Nack) or let the
// lease expire; after expiry all lease methods become no-ops and the job
// is redelivered.
type Lease struct {
	Job   *Job
	Token uint64
	b     Broker
}

// NewLease binds a claimed job to the broker that issued it. Broker
// implementations use it; consumers receive leases from Claim.
func NewLease(j *Job, token uint64, b Broker) *Lease {
	return &Lease{Job: j, Token: token, b: b}
}

// Ack releases the lease without an outcome (a duplicate delivery of an
// already-completed job). Reports whether the lease was still held.
func (l *Lease) Ack() bool { return l.b.Complete(l.Token, nil) }

// Complete reports the job's outcome and releases the lease. Reports
// whether the lease was still held (false means it expired and the
// outcome was dropped; the job may run again elsewhere).
func (l *Lease) Complete(out *Outcome) bool { return l.b.Complete(l.Token, out) }

// Nack returns the job for retry with backoff (or dead-letters it if the
// budget is spent). Reports whether the lease was still held.
func (l *Lease) Nack(reason string) bool { return l.b.Fail(l.Token, reason) }

// Extend renews the lease TTL. Reports whether the lease was still held.
func (l *Lease) Extend() bool { return l.b.Extend(l.Token) }
