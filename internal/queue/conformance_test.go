package queue_test

import (
	"testing"

	"repro/internal/queue"
	"repro/internal/queue/queuetest"
)

// TestBrokerConformance runs the shared Broker suite against the
// in-memory queue. httpbroker runs the identical suite against its
// client/server pair; together they pin that the two transports expose
// the same lease semantics.
func TestBrokerConformance(t *testing.T) {
	queuetest.Run(t, func(t *testing.T, cfg queue.Config) queue.Broker {
		return queue.New(cfg)
	})
}
