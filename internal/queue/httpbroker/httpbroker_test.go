package httpbroker_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/queue"
	"repro/internal/queue/httpbroker"
	"repro/internal/queue/queuetest"
)

// newPair builds a queue behind an HTTP broker server and returns a
// client speaking to it — the remote deployment shape in miniature.
func newPair(t *testing.T, cfg queue.Config) queue.Broker {
	t.Helper()
	q := queue.New(cfg)
	srv := httpbroker.NewServer(q, httpbroker.ServerOptions{MaxWait: 250 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		q.Close()
		ts.Close()
	})
	return httpbroker.NewClient(ts.URL, httpbroker.ClientOptions{
		Wait:  200 * time.Millisecond,
		Retry: 20 * time.Millisecond,
	})
}

// TestBrokerConformance runs the same suite the in-memory queue passes —
// the wire transport must not change a single lease semantic.
func TestBrokerConformance(t *testing.T) {
	queuetest.Run(t, newPair)
}

// TestRemoteCloseSurfacesErrClosed pins that closing the queue on the
// server side turns into ErrClosed at the client, for both Claim and
// Enqueue.
func TestRemoteCloseSurfacesErrClosed(t *testing.T) {
	q := queue.New(queue.Config{})
	srv := httpbroker.NewServer(q, httpbroker.ServerOptions{MaxWait: 100 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := httpbroker.NewClient(ts.URL, httpbroker.ClientOptions{Wait: 80 * time.Millisecond})
	q.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Claim(ctx); !errors.Is(err, queue.ErrClosed) {
		t.Fatalf("claim against closed remote queue = %v, want ErrClosed", err)
	}
	if err := c.Enqueue(&queue.Job{ID: "j"}); !errors.Is(err, queue.ErrClosed) {
		t.Fatalf("enqueue against closed remote queue = %v, want ErrClosed", err)
	}
}

// TestClientCloseIsLocal pins that Close on one client does not close
// the remote broker other agents are using.
func TestClientCloseIsLocal(t *testing.T) {
	q := queue.New(queue.Config{})
	defer q.Close()
	srv := httpbroker.NewServer(q, httpbroker.ServerOptions{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	a := httpbroker.NewClient(ts.URL, httpbroker.ClientOptions{Wait: 100 * time.Millisecond})
	b := httpbroker.NewClient(ts.URL, httpbroker.ClientOptions{Wait: 100 * time.Millisecond})
	a.Close()
	if _, err := a.Claim(context.Background()); !errors.Is(err, queue.ErrClosed) {
		t.Fatalf("claim on closed client = %v, want ErrClosed", err)
	}
	if err := b.Enqueue(&queue.Job{ID: "j"}); err != nil {
		t.Fatalf("enqueue via sibling client after a.Close: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	l, err := b.Claim(ctx)
	if err != nil {
		t.Fatalf("sibling claim after a.Close: %v", err)
	}
	if !l.Ack() {
		t.Fatal("sibling ack returned false")
	}
}
