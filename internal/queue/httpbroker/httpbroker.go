// Package httpbroker transports the queue.Broker interface over HTTP, so
// solver agents in other processes can claim leases from a frontend's
// in-memory queue. Server wraps any queue.Broker behind a small JSON API;
// Client implements queue.Broker against that API. The lease semantics —
// TTL expiry, redelivery with backoff, attempt counts, dead-lettering —
// live entirely in the wrapped broker, so they are preserved verbatim
// across the wire (the queuetest conformance suite runs against both the
// in-memory queue and a Client/Server pair).
//
// Endpoints (mounted by the frontend under its broker prefix):
//
//	POST /claim        long-poll for a job: {"wait_ms":N} → 200 {token, job},
//	                   204 when nothing became ready within the wait,
//	                   503 {"error":"closed"} once the broker is closed
//	POST /extend       {"token":T} → {"held":bool}
//	POST /complete     {"token":T,"outcome":{...}} → {"held":bool}
//	POST /fail         {"token":T,"reason":"..."} → {"held":bool}
//	POST /enqueue      {"job":{...}} → 204, or 503 once closed
//	GET  /deadletters  ?limit=N → {"dead_letters":[...]}
//	GET  /stats        → queue.Stats
//
// Claim is a long poll: the server blocks up to wait_ms (capped by
// MaxWait) on the underlying broker and answers 204 on timeout; the client
// loops until its context ends. Tokens are meaningful only to the broker
// incarnation that issued them — after a frontend restart every stale
// token simply reports held=false, which is exactly the expired-lease
// path consumers must handle anyway.
package httpbroker

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/queue"
)

// Trace-context headers. The lease payload (queue.Job.TraceSpan) is the
// authoritative carrier; the headers duplicate it at the HTTP layer so the
// broker endpoints can be correlated to a job's trace from access logs and
// middleware without parsing bodies: /claim responses carry the context
// out, /complete and /fail requests carry it back.
const (
	HeaderTraceID   = "X-Kecss-Trace-Id"
	HeaderTraceSpan = "X-Kecss-Trace-Span"
	HeaderAttempt   = "X-Kecss-Attempt"
)

// claimRequest is the body of POST /claim.
type claimRequest struct {
	WaitMillis int64 `json:"wait_ms"`
}

// claimResponse is the 200 body of POST /claim.
type claimResponse struct {
	Token uint64     `json:"token"`
	Job   *queue.Job `json:"job"`
}

// tokenRequest is the body of POST /extend, /complete and /fail.
type tokenRequest struct {
	Token   uint64         `json:"token"`
	Outcome *queue.Outcome `json:"outcome,omitempty"`
	Reason  string         `json:"reason,omitempty"`
}

// heldResponse reports whether the lease was still held.
type heldResponse struct {
	Held bool `json:"held"`
}

// enqueueRequest is the body of POST /enqueue.
type enqueueRequest struct {
	Job *queue.Job `json:"job"`
}

// deadLettersResponse is the body of GET /deadletters.
type deadLettersResponse struct {
	DeadLetters []queue.DeadLetter `json:"dead_letters"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Server exposes a queue.Broker over HTTP.
type Server struct {
	b queue.Broker
	// MaxWait caps a single claim long poll (default 30s); clients loop.
	maxWait time.Duration
	log     *slog.Logger
	mux     *http.ServeMux
}

// ServerOptions tunes a Server. The zero value is fine.
type ServerOptions struct {
	// MaxWait caps one claim long poll (0 = 30s).
	MaxWait time.Duration
	// Logger, when set, logs lease traffic (claims, completes, fails) at
	// debug level, keyed by the trace-context headers.
	Logger *slog.Logger
}

// NewServer wraps b. Mount Handler under the broker path prefix with
// http.StripPrefix.
func NewServer(b queue.Broker, opts ServerOptions) *Server {
	if opts.MaxWait <= 0 {
		opts.MaxWait = 30 * time.Second
	}
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.DiscardHandler)
	}
	s := &Server{b: b, maxWait: opts.MaxWait, log: opts.Logger, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /claim", s.handleClaim)
	s.mux.HandleFunc("POST /extend", s.handleExtend)
	s.mux.HandleFunc("POST /complete", s.handleComplete)
	s.mux.HandleFunc("POST /fail", s.handleFail)
	s.mux.HandleFunc("POST /enqueue", s.handleEnqueue)
	s.mux.HandleFunc("GET /deadletters", s.handleDeadLetters)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	return s
}

// Handler returns the broker API routing table (paths are relative; mount
// with http.StripPrefix).
func (s *Server) Handler() http.Handler { return s.mux }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("bad request body: %v", err)})
		return false
	}
	return true
}

func (s *Server) handleClaim(w http.ResponseWriter, r *http.Request) {
	var req claimRequest
	if !decodeBody(w, r, &req) {
		return
	}
	wait := time.Duration(req.WaitMillis) * time.Millisecond
	if wait <= 0 || wait > s.maxWait {
		wait = s.maxWait
	}
	ctx, cancel := context.WithTimeout(r.Context(), wait)
	defer cancel()
	lease, err := s.b.Claim(ctx)
	switch {
	case err == nil:
		// Trace context rides out both in the job payload and as headers.
		w.Header().Set(HeaderTraceID, lease.Job.ID)
		w.Header().Set(HeaderTraceSpan, strconv.FormatUint(lease.Job.TraceSpan, 10))
		w.Header().Set(HeaderAttempt, strconv.Itoa(lease.Job.Attempt))
		s.log.Debug("broker claim", "job_id", lease.Job.ID, "digest", lease.Job.Digest,
			"attempt", lease.Job.Attempt, "trace_span", lease.Job.TraceSpan)
		writeJSON(w, http.StatusOK, claimResponse{Token: lease.Token, Job: lease.Job})
	case errors.Is(err, queue.ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "closed"})
	default:
		// Context ended (long-poll timeout or client gone): nothing ready.
		w.WriteHeader(http.StatusNoContent)
	}
}

func (s *Server) handleExtend(w http.ResponseWriter, r *http.Request) {
	var req tokenRequest
	if !decodeBody(w, r, &req) {
		return
	}
	writeJSON(w, http.StatusOK, heldResponse{Held: s.b.Extend(req.Token)})
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req tokenRequest
	if !decodeBody(w, r, &req) {
		return
	}
	held := s.b.Complete(req.Token, req.Outcome)
	s.log.Debug("broker complete", "job_id", r.Header.Get(HeaderTraceID),
		"attempt", r.Header.Get(HeaderAttempt), "held", held)
	writeJSON(w, http.StatusOK, heldResponse{Held: held})
}

func (s *Server) handleFail(w http.ResponseWriter, r *http.Request) {
	var req tokenRequest
	if !decodeBody(w, r, &req) {
		return
	}
	held := s.b.Fail(req.Token, req.Reason)
	s.log.Debug("broker fail", "job_id", r.Header.Get(HeaderTraceID),
		"attempt", r.Header.Get(HeaderAttempt), "reason", req.Reason, "held", held)
	writeJSON(w, http.StatusOK, heldResponse{Held: held})
}

func (s *Server) handleEnqueue(w http.ResponseWriter, r *http.Request) {
	var req enqueueRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Job == nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "enqueue without a job"})
		return
	}
	if err := s.b.Enqueue(req.Job); err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleDeadLetters(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "limit must be a non-negative integer"})
			return
		}
		limit = n
	}
	dls := s.b.DeadLetters(limit)
	if dls == nil {
		dls = []queue.DeadLetter{}
	}
	writeJSON(w, http.StatusOK, deadLettersResponse{DeadLetters: dls})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.b.Stats())
}

// Client is a queue.Broker speaking to a Server in another process.
type Client struct {
	base   string
	hc     *http.Client
	wait   time.Duration
	retry  time.Duration
	closed atomic.Bool

	// leaseCtx remembers each held lease's trace context (recorded at
	// claim, dropped at complete/fail) so the closing round trip can carry
	// the trace headers back without the caller re-threading them.
	mu       sync.Mutex
	leaseCtx map[uint64]traceCtx // guarded by mu
}

// traceCtx is the per-lease trace context echoed on /complete and /fail.
type traceCtx struct {
	jobID   string
	attempt int
}

var _ queue.Broker = (*Client)(nil)

// ClientOptions tunes a Client. The zero value is fine.
type ClientOptions struct {
	// Wait is the long-poll window requested per claim round (0 = 25s).
	Wait time.Duration
	// Retry is the pause after a transport error before re-polling
	// (0 = 500ms); it keeps agents alive across frontend restarts.
	Retry time.Duration
	// HTTPClient overrides the transport (nil = a client with no overall
	// timeout — long polls must be allowed to run their window out).
	HTTPClient *http.Client
}

// NewClient speaks the broker API rooted at base (e.g.
// "http://frontend:8080/broker/v1").
func NewClient(base string, opts ClientOptions) *Client {
	if opts.Wait <= 0 {
		opts.Wait = 25 * time.Second
	}
	if opts.Retry <= 0 {
		opts.Retry = 500 * time.Millisecond
	}
	hc := opts.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	return &Client{base: base, hc: hc, wait: opts.Wait, retry: opts.Retry, leaseCtx: make(map[uint64]traceCtx)}
}

// post sends one JSON request/response round trip; a nil out discards the
// response body. hdr entries, if any, are added as request headers. The
// returned status is 0 on transport errors.
func (c *Client) post(ctx context.Context, path string, in, out any, hdr map[string]string) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, out); err != nil {
			return resp.StatusCode, fmt.Errorf("httpbroker: decoding %s response: %w", path, err)
		}
	}
	return resp.StatusCode, nil
}

// Enqueue adds a job to the remote ready set.
func (c *Client) Enqueue(j *queue.Job) error {
	if c.closed.Load() {
		return queue.ErrClosed
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	code, err := c.post(ctx, "/enqueue", enqueueRequest{Job: j}, nil, nil)
	if err != nil {
		return fmt.Errorf("httpbroker: enqueue: %w", err)
	}
	switch code {
	case http.StatusNoContent, http.StatusOK:
		return nil
	case http.StatusServiceUnavailable:
		return queue.ErrClosed
	default:
		return fmt.Errorf("httpbroker: enqueue: status %d", code)
	}
}

// Claim long-polls the remote broker until a job is ready, ctx ends, or
// the broker (local or remote) closes. Transport errors are retried after
// the configured pause, so an agent survives a frontend restart and
// reattaches on its own.
func (c *Client) Claim(ctx context.Context) (*queue.Lease, error) {
	for {
		if c.closed.Load() {
			return nil, queue.ErrClosed
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var out claimResponse
		code, err := c.post(ctx, "/claim", claimRequest{WaitMillis: c.wait.Milliseconds()}, &out, nil)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(c.retry):
			}
		case code == http.StatusOK:
			c.mu.Lock()
			c.leaseCtx[out.Token] = traceCtx{jobID: out.Job.ID, attempt: out.Job.Attempt}
			c.mu.Unlock()
			return queue.NewLease(out.Job, out.Token, c), nil
		case code == http.StatusNoContent:
			// Long poll ran its window out; go again.
		case code == http.StatusServiceUnavailable:
			return nil, queue.ErrClosed
		default:
			return nil, fmt.Errorf("httpbroker: claim: status %d", code)
		}
	}
}

// held runs one token round trip; transport errors count as "not held" —
// indistinguishable, for the caller, from a lease that expired (the job
// will be redelivered either way).
func (c *Client) held(path string, req tokenRequest, hdr map[string]string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var out heldResponse
	code, err := c.post(ctx, path, req, &out, hdr)
	if err != nil || code != http.StatusOK {
		return false
	}
	return out.Held
}

// traceHeaders returns the trace-context headers for a held lease,
// dropping the stored context when done is true (the lease is ending).
func (c *Client) traceHeaders(token uint64, done bool) map[string]string {
	c.mu.Lock()
	tc, ok := c.leaseCtx[token]
	if done {
		delete(c.leaseCtx, token)
	}
	c.mu.Unlock()
	if !ok {
		return nil
	}
	return map[string]string{
		HeaderTraceID: tc.jobID,
		HeaderAttempt: strconv.Itoa(tc.attempt),
	}
}

// Extend renews a lease's TTL on the remote broker.
func (c *Client) Extend(token uint64) bool {
	return c.held("/extend", tokenRequest{Token: token}, c.traceHeaders(token, false))
}

// Complete reports a job's outcome and releases the lease.
func (c *Client) Complete(token uint64, out *queue.Outcome) bool {
	return c.held("/complete", tokenRequest{Token: token, Outcome: out}, c.traceHeaders(token, true))
}

// Fail returns the job for retry with backoff.
func (c *Client) Fail(token uint64, reason string) bool {
	return c.held("/fail", tokenRequest{Token: token, Reason: reason}, c.traceHeaders(token, true))
}

// DeadLetters fetches the remote dead-letter ring (nil on transport
// errors; this is an observability call, not a correctness one).
func (c *Client) DeadLetters(limit int) []queue.DeadLetter {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	url := c.base + "/deadletters"
	if limit > 0 {
		url += "?limit=" + strconv.Itoa(limit)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var out deadLettersResponse
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&out) != nil {
		return nil
	}
	return out.DeadLetters
}

// Stats fetches the remote queue census (zero value on transport errors).
func (c *Client) Stats() queue.Stats {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/stats", nil)
	if err != nil {
		return queue.Stats{}
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return queue.Stats{}
	}
	defer resp.Body.Close()
	var out queue.Stats
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&out) != nil {
		return queue.Stats{}
	}
	return out
}

// Close stops the client side: subsequent Claims and Enqueues return
// ErrClosed. The remote broker is not touched — other agents keep
// claiming from it.
func (c *Client) Close() { c.closed.Store(true) }
