package queue

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func claimT(t *testing.T, q *Queue) *Lease {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	l, err := q.Claim(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestFIFOClaimAndAck(t *testing.T) {
	q := New(Config{})
	defer q.Close()
	for i := 0; i < 3; i++ {
		if err := q.Enqueue(&Job{ID: fmt.Sprintf("j%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		l := claimT(t, q)
		if want := fmt.Sprintf("j%d", i); l.Job.ID != want {
			t.Fatalf("claim %d = %s, want %s (FIFO)", i, l.Job.ID, want)
		}
		if l.Job.Attempt != 1 {
			t.Fatalf("fresh claim attempt = %d, want 1", l.Job.Attempt)
		}
		if !l.Ack() {
			t.Fatalf("Ack on live lease returned false")
		}
		if l.Ack() {
			t.Fatalf("second Ack returned true")
		}
	}
	if d := q.Depth(); d != 0 {
		t.Fatalf("depth after draining = %d, want 0", d)
	}
}

func TestNackBackoffRedelivery(t *testing.T) {
	q := New(Config{BackoffBase: 10 * time.Millisecond, BackoffMax: 50 * time.Millisecond, MaxAttempts: 5})
	defer q.Close()
	q.Enqueue(&Job{ID: "j0"})
	l := claimT(t, q)
	start := time.Now()
	if !l.Nack("try again") {
		t.Fatal("Nack on live lease returned false")
	}
	l2 := claimT(t, q)
	if l2.Job.ID != "j0" || l2.Job.Attempt != 2 {
		t.Fatalf("redelivery = %s attempt %d, want j0 attempt 2", l2.Job.ID, l2.Job.Attempt)
	}
	// Jitter is [0.5, 1.5) of the 10ms base for attempt 1.
	if d := time.Since(start); d < 4*time.Millisecond {
		t.Fatalf("redelivered after %v, want backoff >= 5ms", d)
	}
	l2.Ack()
}

func TestLeaseExpiryRedelivery(t *testing.T) {
	var mu sync.Mutex
	var events []Event
	q := New(Config{
		LeaseTTL:    20 * time.Millisecond,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
		OnEvent: func(ev Event) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
	})
	defer q.Close()
	q.Enqueue(&Job{ID: "j0"})
	l := claimT(t, q)
	// Stall past the TTL: the reaper must expire the lease and redeliver.
	l2 := claimT(t, q)
	if l2.Job.ID != "j0" || l2.Job.Attempt != 2 {
		t.Fatalf("expired redelivery = %s attempt %d, want j0 attempt 2", l2.Job.ID, l2.Job.Attempt)
	}
	if l.Ack() {
		t.Fatal("Ack on expired lease returned true")
	}
	if !l2.Extend() {
		t.Fatal("Extend on live lease returned false")
	}
	l2.Ack()
	mu.Lock()
	defer mu.Unlock()
	var expires int
	for _, ev := range events {
		if ev == EventExpire {
			expires++
		}
	}
	if expires != 1 {
		t.Fatalf("saw %d EventExpire, want 1 (events %v)", expires, events)
	}
}

func TestDeadLetterAfterBudget(t *testing.T) {
	var mu sync.Mutex
	var dead []DeadLetter
	q := New(Config{
		MaxAttempts: 3,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
		OnDead: func(d DeadLetter) {
			mu.Lock()
			dead = append(dead, d)
			mu.Unlock()
		},
	})
	defer q.Close()
	q.Enqueue(&Job{ID: "j0", Digest: "d0"})
	for i := 1; i <= 3; i++ {
		l := claimT(t, q)
		if l.Job.Attempt != i {
			t.Fatalf("attempt = %d, want %d", l.Job.Attempt, i)
		}
		l.Nack("solver exploded")
	}
	// Budget spent: no redelivery, the job is dead.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if l, err := q.Claim(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("claim after dead-letter = %v, %v; want deadline exceeded", l, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(dead) != 1 || dead[0].Job.ID != "j0" || dead[0].Reason != "solver exploded" {
		t.Fatalf("OnDead got %+v, want one j0/\"solver exploded\"", dead)
	}
	dls := q.DeadLetters(0)
	if len(dls) != 1 || dls[0].Job.ID != "j0" {
		t.Fatalf("DeadLetters() = %+v", dls)
	}
	if s := q.Stats(); s.Dead != 1 || s.Ready+s.Delayed+s.Leased != 0 {
		t.Fatalf("stats after dead-letter = %+v", s)
	}
}

func TestAttemptCarriedFromEnqueue(t *testing.T) {
	// A replayed job re-enters with its prior delivery count; the budget
	// spans restarts.
	q := New(Config{MaxAttempts: 3, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond})
	defer q.Close()
	q.Enqueue(&Job{ID: "j0", Attempt: 2})
	l := claimT(t, q)
	if l.Job.Attempt != 3 {
		t.Fatalf("claimed attempt = %d, want 3", l.Job.Attempt)
	}
	l.Nack("still broken")
	if s := q.Stats(); s.Dead != 1 {
		t.Fatalf("job with carried attempts not dead-lettered: %+v", s)
	}
}

func TestClaimBlocksUntilEnqueue(t *testing.T) {
	q := New(Config{})
	defer q.Close()
	got := make(chan string, 1)
	go func() {
		l, err := q.Claim(context.Background())
		if err != nil {
			got <- "err:" + err.Error()
			return
		}
		l.Ack()
		got <- l.Job.ID
	}()
	time.Sleep(10 * time.Millisecond)
	q.Enqueue(&Job{ID: "late"})
	select {
	case id := <-got:
		if id != "late" {
			t.Fatalf("claim got %q, want late", id)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("claim never woke")
	}
}

func TestCloseUnblocksAndRefuses(t *testing.T) {
	q := New(Config{})
	errc := make(chan error, 1)
	go func() {
		_, err := q.Claim(context.Background())
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	q.Close() // idempotent
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("claim after close = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("close did not unblock claim")
	}
	if err := q.Enqueue(&Job{ID: "j"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after close = %v, want ErrClosed", err)
	}
}

func TestJitterDeterministicPerSeed(t *testing.T) {
	// Two queues with the same seed and event order produce identical
	// backoff schedules; a different seed diverges.
	sched := func(seed int64) []time.Duration {
		q := New(Config{Seed: seed, BackoffBase: 50 * time.Millisecond, BackoffMax: 5 * time.Second, MaxAttempts: 10})
		defer q.Close()
		var out []time.Duration
		for i := 0; i < 4; i++ {
			e := &entry{job: &Job{ID: "j", Attempt: i + 1}}
			before := time.Now()
			q.mu.Lock()
			q.rescheduleLocked(e, "x")
			q.mu.Unlock()
			out = append(out, e.at.Sub(before).Round(time.Millisecond))
		}
		return out
	}
	a, b, c := sched(7), sched(7), sched(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a, b)
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("different seeds gave identical jitter: %v", a)
	}
	// Growth stays within the jittered exponential envelope.
	base := 50 * time.Millisecond
	for i, d := range a {
		lo := time.Duration(float64(base<<i) * 0.5)
		hi := time.Duration(float64(base<<i) * 1.5)
		if cap := 5 * time.Second; hi > time.Duration(float64(cap)*1.5) {
			hi = time.Duration(float64(cap) * 1.5)
		}
		if d < lo || d > hi {
			t.Fatalf("attempt %d delay %v outside [%v, %v]", i+1, d, lo, hi)
		}
	}
}
