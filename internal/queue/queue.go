// Package queue is the lease-based work-queue layer for the kecss serving
// stack. The Broker interface (broker.go) is the delivery contract: claim
// under a TTL lease, explicit complete/fail by token, redelivery of expired
// leases with capped exponential backoff and jitter, and a bounded
// dead-letter ring for jobs that exhaust their retry budget. Queue is the
// in-memory implementation; package httpbroker transports the same
// interface over HTTP so consumers in other processes can claim leases.
//
// Delivery is at-least-once: a worker that claims a job and stalls past its
// lease TTL loses the lease, and the job is redelivered to another worker.
// Consumers must therefore make completion idempotent (kecss-serve dedups
// completions by job ID; solves are deterministic, so duplicate executions
// produce byte-identical results).
package queue

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"time"
)

// Job is one unit of work. The queue owns Attempt (1-based delivery count,
// stamped at claim time); everything else is the producer's. Every field is
// wire-safe: a Job crosses process boundaries through httpbroker intact.
type Job struct {
	ID     string `json:"id"`
	Digest string `json:"digest"`
	// DeadlineUnixNanos, when non-zero, is the latest useful completion
	// time; the queue passes it through for the consumer to enforce.
	DeadlineUnixNanos int64 `json:"deadline,omitempty"`
	// Request carries the producer's work description (for kecss-serve,
	// the canonical solve-request JSON).
	Request json.RawMessage `json:"request,omitempty"`
	// Attempt is how many times this job has been delivered, including the
	// current delivery.
	Attempt int `json:"attempt,omitempty"`
	// TraceSpan is trace context riding the lease payload: the span ID
	// (within the job's trace; the trace ID is the job ID) under which the
	// claiming worker's spans will be stitched. The producer stamps it per
	// delivery on the leased copy; the queue itself never reads it.
	TraceSpan uint64 `json:"trace_span,omitempty"`
}

// Deadline returns DeadlineUnixNanos as a time (zero time when unset).
func (j *Job) Deadline() time.Time {
	if j.DeadlineUnixNanos == 0 {
		return time.Time{}
	}
	return time.Unix(0, j.DeadlineUnixNanos)
}

// clone deep-copies a job (DeadLetters hands out copies, never aliases).
func (j *Job) clone() *Job {
	out := *j
	out.Request = append(json.RawMessage(nil), j.Request...)
	return &out
}

// Event identifies a queue state transition, for metrics hooks.
type Event int

const (
	// EventEnqueue: a job entered the ready set.
	EventEnqueue Event = iota
	// EventLease: a job was claimed.
	EventLease
	// EventAck: a lease was acked (job finished).
	EventAck
	// EventNack: a lease was returned for retry by its holder.
	EventNack
	// EventExpire: a lease TTL lapsed without ack.
	EventExpire
	// EventRetry: an expired or nacked job was rescheduled with backoff.
	EventRetry
	// EventDead: a job exhausted its retry budget and was dead-lettered.
	EventDead
)

// DeadLetter is a job that exhausted its retry budget.
type DeadLetter struct {
	Job    *Job      `json:"job"`
	Reason string    `json:"reason"`
	At     time.Time `json:"at"`
}

// Config sizes a Queue. Zero values get defaults from New.
type Config struct {
	// LeaseTTL is how long a claim holds a job before it is redelivered
	// (default 30s).
	LeaseTTL time.Duration
	// MaxAttempts is the delivery budget before dead-lettering (default 5).
	MaxAttempts int
	// BackoffBase is the first retry delay; each further attempt doubles it
	// (default 50ms).
	BackoffBase time.Duration
	// BackoffMax caps the exponential growth (default 5s).
	BackoffMax time.Duration
	// Seed drives the retry jitter (deterministic for a fixed seed and
	// event order).
	Seed int64
	// DeadLetterCap bounds the retained dead-letter ring (default 256).
	// Older entries are overwritten; Stats.Dead keeps the all-time count.
	DeadLetterCap int
	// OnEvent, when set, observes every state transition (called outside
	// the queue lock; must not call back into the queue's blocking APIs).
	OnEvent func(Event)
	// OnDead, when set, is told about every dead-lettered job (called
	// outside the queue lock), so the producer can fail its waiters.
	OnDead func(DeadLetter)
	// OnComplete, when set, receives every outcome reported through
	// Complete while the lease was still held — the producer's completion
	// channel, fed identically by in-process consumers and remote ones
	// arriving through httpbroker. Called outside the queue lock.
	OnComplete func(j *Job, out Outcome)
	// OnExpired, when set, is told about every lease that lapsed without
	// ack (called outside the queue lock, with a copy of the job as of the
	// expired delivery), so the producer can mark the gap — e.g. record a
	// lease-expiry event on the job's trace before the redelivery starts.
	OnExpired func(j *Job)
}

// ErrClosed is returned by Enqueue and Claim after Close.
var ErrClosed = errors.New("queue: closed")

// entry is a job plus its scheduling state. Entries are owned by a Queue
// and live in exactly one of its sets (ready, delayed, leased) at a time.
type entry struct {
	job   *Job      // guarded by Queue.mu
	at    time.Time // guarded by Queue.mu; delayed: eligible time; leased: expiry time
	token uint64    // guarded by Queue.mu
}

// Queue is the in-memory Broker implementation. Safe for concurrent use.
type Queue struct {
	cfg Config

	mu        sync.Mutex
	ready     []*entry          // guarded by mu; FIFO
	delayed   []*entry          // guarded by mu; unordered, reap scans for due entries
	leased    map[uint64]*entry // guarded by mu; token → entry
	dead      []DeadLetter      // guarded by mu; ring, at most cfg.DeadLetterCap entries
	deadPos   int               // guarded by mu; next overwrite index once the ring is full
	deadTotal int               // guarded by mu; all-time dead-letter count
	events    []Event           // guarded by mu; delivered by flushEvents
	deadq     []DeadLetter      // guarded by mu; delivered by flushEvents to OnDead
	expq      []*Job            // guarded by mu; delivered by flushEvents to OnExpired
	next      uint64            // guarded by mu
	rng       uint64            // guarded by mu
	notify    chan struct{}     // guarded by mu; closed to broadcast a state change, then replaced
	closed    bool              // guarded by mu
	quit      chan struct{}     // closed by Close; immutable otherwise
}

var _ Broker = (*Queue)(nil)

// New starts a Queue (and its lease reaper goroutine).
func New(cfg Config) *Queue {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 5 * time.Second
	}
	if cfg.DeadLetterCap <= 0 {
		cfg.DeadLetterCap = 256
	}
	q := &Queue{
		cfg:    cfg,
		leased: make(map[uint64]*entry),
		rng:    uint64(cfg.Seed)*0x9e3779b97f4a7c15 + 0x6a09e667f3bcc909,
		notify: make(chan struct{}),
		quit:   make(chan struct{}),
	}
	go q.reaper()
	return q
}

// Close stops the queue: blocked Claims return ErrClosed, Enqueue refuses.
// Outstanding leases become inert (Ack/Nack are no-ops). Idempotent.
func (q *Queue) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	close(q.quit)
	q.wakeLocked()
	q.mu.Unlock()
}

// Enqueue adds a job to the ready set.
func (q *Queue) Enqueue(j *Job) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return ErrClosed
	}
	q.ready = append(q.ready, &entry{job: j})
	q.wakeLocked()
	q.mu.Unlock()
	q.emit(EventEnqueue)
	q.flushEvents()
	return nil
}

// Claim blocks until a job is ready (or ctx ends, or the queue closes) and
// returns it under a lease. The caller must Ack, Nack, or let the lease
// expire. A ctx that is already done always wins over a ready job: a
// consumer told to stop never walks away holding a fresh lease.
func (q *Queue) Claim(ctx context.Context) (*Lease, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		q.mu.Lock()
		if q.closed {
			q.mu.Unlock()
			return nil, ErrClosed
		}
		q.reapLocked(time.Now())
		if len(q.ready) > 0 {
			e := q.ready[0]
			q.ready = q.ready[1:]
			e.job.Attempt++
			e.at = time.Now().Add(q.cfg.LeaseTTL)
			q.next++
			e.token = q.next
			q.leased[e.token] = e
			// The delivery gets its own copy of the job, captured while the
			// lock is held: the moment the entry sits in q.leased the reaper
			// may expire it and hand the queue's own Job to the next
			// delivery (Attempt++, token reset), so a consumer must never
			// alias it.
			token := e.token
			delivered := e.job.clone()
			// Wake the reaper so it re-arms its timer against this lease's
			// expiry (it may be sleeping its idle interval otherwise).
			q.wakeLocked()
			q.mu.Unlock()
			q.emit(EventLease)
			q.flushEvents()
			return NewLease(delivered, token, q), nil
		}
		ch := q.notify
		q.mu.Unlock()
		q.flushEvents()
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-q.quit:
			return nil, ErrClosed
		}
	}
}

// Complete reports a job's outcome and releases its lease. The outcome is
// delivered to the OnComplete hook only while the lease is still held; a
// Complete on an expired lease is dropped (the job was redelivered and its
// other delivery will complete it — completion is idempotent upstream).
// A nil outcome is a plain ack. Reports whether the lease was still held.
func (q *Queue) Complete(token uint64, out *Outcome) bool {
	q.mu.Lock()
	e, held := q.leased[token]
	delete(q.leased, token)
	// Capture the job while the lock is held: after Unlock this entry's
	// fields belong to whoever holds mu next (the PR-8 Claim race was
	// exactly a post-Unlock read of e.job racing the reaper's reschedule).
	var job *Job
	if held {
		job = e.job
	}
	q.mu.Unlock()
	if !held {
		return false
	}
	q.emit(EventAck)
	if out != nil && q.cfg.OnComplete != nil {
		q.cfg.OnComplete(job, *out)
	}
	return true
}

// Fail returns the job for retry with backoff (or dead-letters it if the
// budget is spent). Reports whether the lease was still held.
func (q *Queue) Fail(token uint64, reason string) bool {
	q.mu.Lock()
	e, held := q.leased[token]
	if held {
		delete(q.leased, token)
		q.rescheduleLocked(e, reason)
		q.wakeLocked()
	}
	q.mu.Unlock()
	if held {
		q.emit(EventNack)
	}
	q.flushEvents()
	return held
}

// Extend renews a lease's TTL (a heartbeat for long solves). Reports
// whether the lease was still held.
func (q *Queue) Extend(token uint64) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	e, held := q.leased[token]
	if held {
		e.at = time.Now().Add(q.cfg.LeaseTTL)
	}
	return held
}

// rescheduleLocked applies the retry policy to a nacked or expired entry:
// dead-letter when the budget is spent, else delay by capped exponential
// backoff with ±50% deterministic jitter.
func (q *Queue) rescheduleLocked(e *entry, reason string) {
	if e.job.Attempt >= q.cfg.MaxAttempts {
		d := DeadLetter{Job: e.job, Reason: reason, At: time.Now()}
		if len(q.dead) < q.cfg.DeadLetterCap {
			q.dead = append(q.dead, d)
		} else {
			// Ring full: overwrite the oldest retained entry.
			q.dead[q.deadPos] = d
			q.deadPos = (q.deadPos + 1) % q.cfg.DeadLetterCap
		}
		q.deadTotal++
		q.events = append(q.events, EventDead)
		q.deadq = append(q.deadq, d)
		return
	}
	backoff := q.cfg.BackoffBase << (e.job.Attempt - 1)
	if backoff > q.cfg.BackoffMax || backoff <= 0 {
		backoff = q.cfg.BackoffMax
	}
	// splitmix64 jitter in [0.5, 1.5).
	q.rng += 0x9e3779b97f4a7c15
	z := q.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	frac := float64(z>>11) / float64(1<<53) // [0,1)
	delay := time.Duration(float64(backoff) * (0.5 + frac))
	e.at = time.Now().Add(delay)
	e.token = 0
	q.delayed = append(q.delayed, e)
	q.events = append(q.events, EventRetry)
}

// reapLocked promotes due delayed entries to ready and expires overdue
// leases into the retry path.
func (q *Queue) reapLocked(now time.Time) {
	kept := q.delayed[:0]
	woke := false
	for _, e := range q.delayed {
		if !e.at.After(now) {
			q.ready = append(q.ready, e)
			woke = true
		} else {
			kept = append(kept, e)
		}
	}
	q.delayed = kept
	for tok, e := range q.leased {
		if e.at.After(now) {
			continue
		}
		delete(q.leased, tok)
		q.events = append(q.events, EventExpire)
		if q.cfg.OnExpired != nil {
			q.expq = append(q.expq, e.job.clone())
		}
		q.rescheduleLocked(e, "lease expired")
		woke = true
	}
	if woke {
		q.wakeLocked()
	}
}

// wakeLocked broadcasts a state change to Claim waiters and the reaper.
func (q *Queue) wakeLocked() {
	close(q.notify)
	q.notify = make(chan struct{})
}

// emit invokes the metrics hook; callers must not hold mu.
func (q *Queue) emit(ev Event) {
	if q.cfg.OnEvent != nil {
		q.cfg.OnEvent(ev)
	}
}

// flushEvents delivers events and dead letters buffered by locked sections
// to their hooks.
func (q *Queue) flushEvents() {
	if q.cfg.OnEvent == nil && q.cfg.OnDead == nil && q.cfg.OnExpired == nil {
		return
	}
	q.mu.Lock()
	evs, dead, expired := q.events, q.deadq, q.expq
	q.events, q.deadq, q.expq = nil, nil, nil
	q.mu.Unlock()
	if q.cfg.OnEvent != nil {
		for _, ev := range evs {
			q.cfg.OnEvent(ev)
		}
	}
	if q.cfg.OnExpired != nil {
		for _, j := range expired {
			q.cfg.OnExpired(j)
		}
	}
	if q.cfg.OnDead != nil {
		for _, d := range dead {
			q.cfg.OnDead(d)
		}
	}
}

// reaper drives time-based transitions (lease expiry, backoff maturity)
// even when no Claim is blocked, sleeping until the next scheduled event.
func (q *Queue) reaper() {
	for {
		q.mu.Lock()
		now := time.Now()
		q.reapLocked(now)
		d := q.nextEventLocked(now)
		ch := q.notify
		q.mu.Unlock()
		q.flushEvents()
		timer := time.NewTimer(d)
		select {
		case <-q.quit:
			timer.Stop()
			return
		case <-ch:
			timer.Stop()
		case <-timer.C:
		}
	}
}

// nextEventLocked returns how long the reaper may sleep: until the next
// delayed-entry maturity or lease expiry, clamped to [1ms, 1s].
func (q *Queue) nextEventLocked(now time.Time) time.Duration {
	d := time.Second
	for _, e := range q.delayed {
		if until := e.at.Sub(now); until < d {
			d = until
		}
	}
	for _, e := range q.leased {
		if until := e.at.Sub(now); until < d {
			d = until
		}
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// Stats is a point-in-time census of the queue.
type Stats struct {
	Ready   int `json:"ready"`   // claimable now
	Delayed int `json:"delayed"` // waiting out a backoff
	Leased  int `json:"leased"`  // claimed, in flight
	Dead    int `json:"dead"`    // dead-lettered, all-time (the ring retains fewer)
}

// Stats reports the queue census.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return Stats{
		Ready:   len(q.ready),
		Delayed: len(q.delayed),
		Leased:  len(q.leased),
		Dead:    q.deadTotal,
	}
}

// Depth is the number of jobs the queue is responsible for (ready, delayed
// or leased).
func (q *Queue) Depth() int {
	s := q.Stats()
	return s.Ready + s.Delayed + s.Leased
}

// DeadLetters returns the most recent dead-lettered jobs in chronological
// order, at most limit of them (limit <= 0 returns every retained entry).
// Entries are deep copies: callers can hold or mutate them freely without
// aliasing queue state.
func (q *Queue) DeadLetters(limit int) []DeadLetter {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := len(q.dead)
	if limit <= 0 || limit > n {
		limit = n
	}
	out := make([]DeadLetter, 0, limit)
	// Oldest entry is deadPos when the ring has wrapped, 0 otherwise; we
	// want the newest `limit` entries, oldest-first.
	for i := n - limit; i < n; i++ {
		d := q.dead[(q.deadPos+i)%n]
		d.Job = d.Job.clone()
		out = append(out, d)
	}
	return out
}
