// Package queue is a lease-based work queue for the kecss-serve job layer:
// an in-memory broker with the delivery contract of a real one (claim under
// a TTL lease, explicit ack/nack, redelivery of expired leases with capped
// exponential backoff and jitter, and a dead-letter list for jobs that
// exhaust their retry budget), so the broker behind the interface can later
// be swapped for a networked one without changing the consumers.
//
// Delivery is at-least-once: a worker that claims a job and stalls past its
// lease TTL loses the lease, and the job is redelivered to another worker.
// Consumers must therefore make completion idempotent (kecss-serve dedups
// completions by job ID; solves are deterministic, so duplicate executions
// produce byte-identical results).
package queue

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Job is one unit of work. The queue owns Attempt (1-based delivery count,
// stamped at claim time); everything else is the producer's.
type Job struct {
	ID     string
	Digest string
	// Deadline, when non-zero, is the latest useful completion time; the
	// queue passes it through for the consumer to enforce.
	Deadline time.Time
	// Payload carries the producer's work description.
	Payload any
	// Attempt is how many times this job has been delivered, including the
	// current delivery.
	Attempt int
}

// Event identifies a queue state transition, for metrics hooks.
type Event int

const (
	// EventEnqueue: a job entered the ready set.
	EventEnqueue Event = iota
	// EventLease: a job was claimed.
	EventLease
	// EventAck: a lease was acked (job finished).
	EventAck
	// EventNack: a lease was returned for retry by its holder.
	EventNack
	// EventExpire: a lease TTL lapsed without ack.
	EventExpire
	// EventRetry: an expired or nacked job was rescheduled with backoff.
	EventRetry
	// EventDead: a job exhausted its retry budget and was dead-lettered.
	EventDead
)

// DeadLetter is a job that exhausted its retry budget.
type DeadLetter struct {
	Job    *Job
	Reason string
	At     time.Time
}

// Config sizes a Queue. Zero values get defaults from New.
type Config struct {
	// LeaseTTL is how long a claim holds a job before it is redelivered
	// (default 30s).
	LeaseTTL time.Duration
	// MaxAttempts is the delivery budget before dead-lettering (default 5).
	MaxAttempts int
	// BackoffBase is the first retry delay; each further attempt doubles it
	// (default 50ms).
	BackoffBase time.Duration
	// BackoffMax caps the exponential growth (default 5s).
	BackoffMax time.Duration
	// Seed drives the retry jitter (deterministic for a fixed seed and
	// event order).
	Seed int64
	// OnEvent, when set, observes every state transition (called outside
	// the queue lock; must not call back into the queue's blocking APIs).
	OnEvent func(Event)
	// OnDead, when set, is told about every dead-lettered job (called
	// outside the queue lock), so the producer can fail its waiters.
	OnDead func(DeadLetter)
}

// ErrClosed is returned by Enqueue and Claim after Close.
var ErrClosed = errors.New("queue: closed")

// entry is a job plus its scheduling state.
type entry struct {
	job   *Job
	at    time.Time // delayed: eligible time; leased: expiry time
	token uint64
}

// Queue is the broker. Safe for concurrent use.
type Queue struct {
	cfg Config

	mu      sync.Mutex
	ready   []*entry          // FIFO
	delayed []*entry          // unordered; reap scans for due entries
	leased  map[uint64]*entry // token → entry
	dead    []DeadLetter
	events  []Event      // buffered under mu, delivered by flushEvents
	deadq   []DeadLetter // buffered under mu, delivered by flushEvents to OnDead
	next    uint64
	rng     uint64
	notify  chan struct{} // closed to broadcast a state change, then replaced
	closed  bool
	quit    chan struct{}
}

// New starts a Queue (and its lease reaper goroutine).
func New(cfg Config) *Queue {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 5 * time.Second
	}
	q := &Queue{
		cfg:    cfg,
		leased: make(map[uint64]*entry),
		rng:    uint64(cfg.Seed)*0x9e3779b97f4a7c15 + 0x6a09e667f3bcc909,
		notify: make(chan struct{}),
		quit:   make(chan struct{}),
	}
	go q.reaper()
	return q
}

// Close stops the queue: blocked Claims return ErrClosed, Enqueue refuses.
// Outstanding leases become inert (Ack/Nack are no-ops). Idempotent.
func (q *Queue) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	close(q.quit)
	q.wakeLocked()
	q.mu.Unlock()
}

// Enqueue adds a job to the ready set.
func (q *Queue) Enqueue(j *Job) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return ErrClosed
	}
	q.ready = append(q.ready, &entry{job: j})
	q.wakeLocked()
	q.mu.Unlock()
	q.emit(EventEnqueue)
	q.flushEvents()
	return nil
}

// Claim blocks until a job is ready (or ctx ends, or the queue closes) and
// returns it under a lease. The caller must Ack, Nack, or let the lease
// expire.
func (q *Queue) Claim(ctx context.Context) (*Lease, error) {
	for {
		q.mu.Lock()
		if q.closed {
			q.mu.Unlock()
			return nil, ErrClosed
		}
		q.reapLocked(time.Now())
		if len(q.ready) > 0 {
			e := q.ready[0]
			q.ready = q.ready[1:]
			e.job.Attempt++
			e.at = time.Now().Add(q.cfg.LeaseTTL)
			q.next++
			e.token = q.next
			q.leased[e.token] = e
			// Wake the reaper so it re-arms its timer against this lease's
			// expiry (it may be sleeping its idle interval otherwise).
			q.wakeLocked()
			q.mu.Unlock()
			q.emit(EventLease)
			q.flushEvents()
			return &Lease{Job: e.job, q: q, token: e.token}, nil
		}
		ch := q.notify
		q.mu.Unlock()
		q.flushEvents()
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-q.quit:
			return nil, ErrClosed
		}
	}
}

// Lease is a claimed job. Exactly one of Ack/Nack should be called; after
// the TTL lapses both become no-ops and the job is redelivered.
type Lease struct {
	Job   *Job
	q     *Queue
	token uint64
}

// Ack completes the job and releases the lease. Reports whether the lease
// was still held (false means it had already expired and the job may run
// again elsewhere).
func (l *Lease) Ack() bool {
	q := l.q
	q.mu.Lock()
	_, held := q.leased[l.token]
	delete(q.leased, l.token)
	q.mu.Unlock()
	if held {
		q.emit(EventAck)
	}
	return held
}

// Nack returns the job for retry with backoff (or dead-letters it if the
// budget is spent). Reports whether the lease was still held.
func (l *Lease) Nack(reason string) bool {
	q := l.q
	q.mu.Lock()
	e, held := q.leased[l.token]
	if held {
		delete(q.leased, l.token)
		q.rescheduleLocked(e, reason)
		q.wakeLocked()
	}
	q.mu.Unlock()
	if held {
		q.emit(EventNack)
	}
	q.flushEvents()
	return held
}

// Extend renews the lease TTL (a heartbeat for long solves). Reports
// whether the lease was still held.
func (l *Lease) Extend() bool {
	q := l.q
	q.mu.Lock()
	defer q.mu.Unlock()
	e, held := q.leased[l.token]
	if held {
		e.at = time.Now().Add(q.cfg.LeaseTTL)
	}
	return held
}

// rescheduleLocked applies the retry policy to a nacked or expired entry:
// dead-letter when the budget is spent, else delay by capped exponential
// backoff with ±50% deterministic jitter.
func (q *Queue) rescheduleLocked(e *entry, reason string) {
	if e.job.Attempt >= q.cfg.MaxAttempts {
		d := DeadLetter{Job: e.job, Reason: reason, At: time.Now()}
		q.dead = append(q.dead, d)
		q.events = append(q.events, EventDead)
		q.deadq = append(q.deadq, d)
		return
	}
	backoff := q.cfg.BackoffBase << (e.job.Attempt - 1)
	if backoff > q.cfg.BackoffMax || backoff <= 0 {
		backoff = q.cfg.BackoffMax
	}
	// splitmix64 jitter in [0.5, 1.5).
	q.rng += 0x9e3779b97f4a7c15
	z := q.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	frac := float64(z>>11) / float64(1<<53) // [0,1)
	delay := time.Duration(float64(backoff) * (0.5 + frac))
	e.at = time.Now().Add(delay)
	e.token = 0
	q.delayed = append(q.delayed, e)
	q.events = append(q.events, EventRetry)
}

// reapLocked promotes due delayed entries to ready and expires overdue
// leases into the retry path.
func (q *Queue) reapLocked(now time.Time) {
	kept := q.delayed[:0]
	woke := false
	for _, e := range q.delayed {
		if !e.at.After(now) {
			q.ready = append(q.ready, e)
			woke = true
		} else {
			kept = append(kept, e)
		}
	}
	q.delayed = kept
	for tok, e := range q.leased {
		if e.at.After(now) {
			continue
		}
		delete(q.leased, tok)
		q.events = append(q.events, EventExpire)
		q.rescheduleLocked(e, "lease expired")
		woke = true
	}
	if woke {
		q.wakeLocked()
	}
}

// wakeLocked broadcasts a state change to Claim waiters and the reaper.
func (q *Queue) wakeLocked() {
	close(q.notify)
	q.notify = make(chan struct{})
}

// emit invokes the metrics hook; callers must not hold mu.
func (q *Queue) emit(ev Event) {
	if q.cfg.OnEvent != nil {
		q.cfg.OnEvent(ev)
	}
}

// flushEvents delivers events and dead letters buffered by locked sections
// to their hooks.
func (q *Queue) flushEvents() {
	if q.cfg.OnEvent == nil && q.cfg.OnDead == nil {
		return
	}
	q.mu.Lock()
	evs, dead := q.events, q.deadq
	q.events, q.deadq = nil, nil
	q.mu.Unlock()
	if q.cfg.OnEvent != nil {
		for _, ev := range evs {
			q.cfg.OnEvent(ev)
		}
	}
	if q.cfg.OnDead != nil {
		for _, d := range dead {
			q.cfg.OnDead(d)
		}
	}
}

// reaper drives time-based transitions (lease expiry, backoff maturity)
// even when no Claim is blocked, sleeping until the next scheduled event.
func (q *Queue) reaper() {
	for {
		q.mu.Lock()
		now := time.Now()
		q.reapLocked(now)
		d := q.nextEventLocked(now)
		ch := q.notify
		q.mu.Unlock()
		q.flushEvents()
		timer := time.NewTimer(d)
		select {
		case <-q.quit:
			timer.Stop()
			return
		case <-ch:
			timer.Stop()
		case <-timer.C:
		}
	}
}

// nextEventLocked returns how long the reaper may sleep: until the next
// delayed-entry maturity or lease expiry, clamped to [1ms, 1s].
func (q *Queue) nextEventLocked(now time.Time) time.Duration {
	d := time.Second
	for _, e := range q.delayed {
		if until := e.at.Sub(now); until < d {
			d = until
		}
	}
	for _, e := range q.leased {
		if until := e.at.Sub(now); until < d {
			d = until
		}
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// Stats is a point-in-time census of the queue.
type Stats struct {
	Ready   int // claimable now
	Delayed int // waiting out a backoff
	Leased  int // claimed, in flight
	Dead    int // dead-lettered
}

// Stats reports the queue census.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return Stats{
		Ready:   len(q.ready),
		Delayed: len(q.delayed),
		Leased:  len(q.leased),
		Dead:    len(q.dead),
	}
}

// Depth is the number of jobs the queue is responsible for (ready, delayed
// or leased).
func (q *Queue) Depth() int {
	s := q.Stats()
	return s.Ready + s.Delayed + s.Leased
}

// DeadLetters returns a copy of the dead-letter list.
func (q *Queue) DeadLetters() []DeadLetter {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]DeadLetter, len(q.dead))
	copy(out, q.dead)
	return out
}
