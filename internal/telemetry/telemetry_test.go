package telemetry

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

func TestSpanTreeOrdering(t *testing.T) {
	tr := New("j1", "frontend")
	root := tr.Start(0, "job", 0, String("digest", "abc"))
	adm := tr.Start(root.ID(), "admission", 0)
	adm.End()
	enq := tr.Start(root.ID(), "enqueue", 0)
	enq.End(Int("depth", 3))
	root.End()

	d := tr.Snapshot(true)
	if len(d.Spans) != 3 {
		t.Fatalf("want 3 spans, got %d", len(d.Spans))
	}
	if d.Spans[0].Name != "job" || d.Spans[0].Parent != 0 {
		t.Fatalf("bad root: %+v", d.Spans[0])
	}
	for _, s := range d.Spans[1:] {
		if s.Parent != d.Spans[0].ID {
			t.Fatalf("span %q not parented to root", s.Name)
		}
		if s.End < s.Start {
			t.Fatalf("span %q ends before it starts", s.Name)
		}
	}
	// Monotonic ordering: spans were started in order.
	for i := 1; i < len(d.Spans); i++ {
		if d.Spans[i].Start < d.Spans[i-1].Start {
			t.Fatalf("span %d starts before span %d", i, i-1)
		}
	}
	if d.DurationNanos <= 0 {
		t.Fatalf("root duration not recorded: %d", d.DurationNanos)
	}
	enqSpan := d.FindSpan("enqueue")
	if enqSpan == nil {
		t.Fatal("enqueue span missing")
	}
	if a, ok := enqSpan.Attr("depth"); !ok || a.Int != 3 {
		t.Fatalf("enqueue attrs wrong: %+v", enqSpan.Attrs)
	}
}

func TestEndIsIdempotent(t *testing.T) {
	tr := New("j", "p")
	s := tr.Start(0, "x", 0)
	s.End()
	first := tr.Snapshot(false).Spans[0].End
	time.Sleep(time.Millisecond)
	s.End()
	if got := tr.Snapshot(false).Spans[0].End; got != first {
		t.Fatalf("second End moved the timestamp: %d -> %d", first, got)
	}
	// Zero SpanRef is inert.
	var zero SpanRef
	zero.End()
	if zero.ID() != 0 || zero.Valid() {
		t.Fatal("zero SpanRef should be invalid")
	}
}

func TestGraftRemapsBatchPreservingExternalParents(t *testing.T) {
	front := New("j2", "frontend")
	root := front.Start(0, "job", 0)
	claim := front.Start(root.ID(), "claim", 1)
	claim.End()

	// Agent records its own trace rooted at parent 0; the frontend attaches
	// the batch under the claim span of the attempt that produced it. Note
	// the agent's span IDs (1, 2) collide with the frontend's — the graft
	// must not confuse them.
	agent := New("j2", "agent")
	aroot := agent.Start(0, "agent", 1)
	solve := agent.Start(aroot.ID(), "solve", 1, Int("rounds", 42))
	solve.End()
	aroot.End()
	batch := agent.Export()

	front.Graft(batch, claim.ID())
	root.End()
	d := front.Snapshot(true)

	if len(d.Spans) != 4 {
		t.Fatalf("want 4 spans after graft, got %d", len(d.Spans))
	}
	var gAgent, gSolve *Span
	for i := range d.Spans {
		switch d.Spans[i].Name {
		case "agent":
			gAgent = &d.Spans[i]
		case "solve":
			gSolve = &d.Spans[i]
		}
	}
	if gAgent == nil || gSolve == nil {
		t.Fatal("grafted spans missing")
	}
	if gAgent.Parent != claim.ID() {
		t.Fatalf("agent root should be grafted under claim span %d, got %d", claim.ID(), gAgent.Parent)
	}
	if gSolve.Parent != gAgent.ID {
		t.Fatalf("batch-internal parent not remapped: solve.Parent=%d agent.ID=%d", gSolve.Parent, gAgent.ID)
	}
	if gAgent.Process != "agent" {
		t.Fatalf("grafted span lost its process tag: %q", gAgent.Process)
	}
	// No duplicate span IDs after the remap.
	seen := map[uint64]bool{}
	for _, s := range d.Spans {
		if seen[s.ID] {
			t.Fatalf("duplicate span ID %d after graft", s.ID)
		}
		seen[s.ID] = true
	}
	if a, ok := gSolve.Attr("rounds"); !ok || a.Int != 42 {
		t.Fatalf("grafted span lost attrs: %+v", gSolve.Attrs)
	}
}

func TestAddExplicitTiming(t *testing.T) {
	tr := New("j3", "agent")
	start := time.Now()
	time.Sleep(2 * time.Millisecond)
	tr.Add(0, "phase.mst", 1, start, 2*time.Millisecond, Int("rounds", 7))
	d := tr.Snapshot(false)
	s := d.FindSpan("phase.mst")
	if s == nil {
		t.Fatal("phase span missing")
	}
	if got := s.DurationNanos(); got != int64(2*time.Millisecond) {
		t.Fatalf("explicit duration not preserved: %d", got)
	}
}

func TestRegistryRetention(t *testing.T) {
	r := NewRegistry(4, 2)

	finishWith := func(id string, d time.Duration) {
		tr := r.Start(id, "frontend")
		root := tr.Start(0, "job", 0)
		// Fake the duration by backdating the root span.
		tr.mu.Lock()
		tr.spans[0].Start -= int64(d)
		tr.mu.Unlock()
		root.End()
		r.Finish(id)
	}

	// j0 is the slowest; it must survive the recent ring's eviction.
	finishWith("j0", time.Hour)
	for i := 1; i <= 6; i++ {
		finishWith(fmt.Sprintf("j%d", i), time.Duration(i)*time.Millisecond)
	}

	if _, ok := r.Lookup("j0"); !ok {
		t.Fatal("slowest trace evicted despite slowest-N retention")
	}
	if _, ok := r.Lookup("j1"); ok {
		t.Fatal("j1 should be evicted (not recent, not slow)")
	}
	if _, ok := r.Lookup("j6"); !ok {
		t.Fatal("most recent trace missing")
	}

	l := r.List()
	if len(l.Recent) != 4 {
		t.Fatalf("want 4 recent, got %d", len(l.Recent))
	}
	if l.Recent[0].TraceID != "j6" {
		t.Fatalf("recent not newest-first: %+v", l.Recent)
	}
	if len(l.Slowest) != 2 || l.Slowest[0].TraceID != "j0" {
		t.Fatalf("slowest list wrong: %+v", l.Slowest)
	}
	for _, s := range l.Slowest {
		if !s.Complete {
			t.Fatalf("retained trace not marked complete: %+v", s)
		}
	}
}

func TestRegistryLiveLookup(t *testing.T) {
	r := NewRegistry(0, 0)
	tr := r.Start("live", "frontend")
	tr.Start(0, "job", 0)
	d, ok := r.Lookup("live")
	if !ok || d.Complete {
		t.Fatalf("live lookup wrong: ok=%v d=%+v", ok, d)
	}
	if len(d.Spans) != 1 || d.Spans[0].End != 0 {
		t.Fatalf("open span should have End=0: %+v", d.Spans)
	}
	if _, ok := r.Lookup("nope"); ok {
		t.Fatal("unknown ID should miss")
	}
	r.Drop("live")
	if _, ok := r.Lookup("live"); ok {
		t.Fatal("dropped trace still visible")
	}
}

func TestDataJSONRoundTrip(t *testing.T) {
	tr := New("j4", "frontend")
	s := tr.Start(0, "job", 2, String("digest", "d"), Float("w", 1.5), Bool("hit", true))
	s.End()
	d := tr.Snapshot(true)
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back Data
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.TraceID != "j4" || len(back.Spans) != 1 || back.Spans[0].Attempt != 2 {
		t.Fatalf("round trip mangled data: %+v", back)
	}
	if len(back.Spans[0].Attrs) != 3 {
		t.Fatalf("attrs lost: %+v", back.Spans[0].Attrs)
	}
}
