// Package telemetry is the serving stack's per-job tracing layer: an
// ordered span tree with monotonic timestamps and typed attributes that
// follows one job end to end — admission, journal append, enqueue, queue
// wait, broker claim, agent solve, store put, complete.
//
// A Trace is a single job's timeline. Its trace ID is the job ID; span IDs
// are allocated from a per-trace counter, so every process records into its
// own Trace and the frontend stitches agent spans back into the job's
// timeline with Graft, which remaps the incoming batch's span IDs into the
// frontend's ID space while preserving the batch's internal parent/child
// links, and re-parents the batch's roots under the claim span of the
// attempt that produced them — which is what makes retries and SIGKILL
// recoveries read as sibling attempt subtrees in one timeline.
//
// Timestamps are wall-clock nanoseconds derived from a single monotonic
// anchor captured when the Trace is created, so spans recorded by one
// process are totally ordered even if the wall clock steps. Spans from
// different processes share ordering only as far as their clocks agree;
// that is fine for a timeline whose stages are separated by network hops.
//
// The Registry owns every live Trace (keyed by job ID) plus a bounded
// retention set of finished ones: a recent ring and a slowest-N list, so
// the pathological traces an operator actually wants survive eviction by
// newer, faster ones.
package telemetry

import (
	"sync"
	"time"
)

// Attr is a typed key/value annotation on a span. Exactly one of the value
// fields is meaningful, named by Type.
type Attr struct {
	Key   string  `json:"key"`
	Type  string  `json:"type"` // "string" | "int" | "float" | "bool"
	Str   string  `json:"str,omitempty"`
	Int   int64   `json:"int,omitempty"`
	Float float64 `json:"float,omitempty"`
	Bool  bool    `json:"bool,omitempty"`
}

// String builds a string attribute.
func String(key, v string) Attr { return Attr{Key: key, Type: "string", Str: v} }

// Int builds an integer attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, Type: "int", Int: v} }

// Float builds a float attribute.
func Float(key string, v float64) Attr { return Attr{Key: key, Type: "float", Float: v} }

// Bool builds a boolean attribute.
func Bool(key string, v bool) Attr { return Attr{Key: key, Type: "bool", Bool: v} }

// Span is one node of a trace's span tree. Parent is 0 for roots. A span
// with End == Start is an instant event; a span with End == 0 was still
// open when the trace was snapshotted.
type Span struct {
	ID      uint64 `json:"id"`
	Parent  uint64 `json:"parent,omitempty"`
	Name    string `json:"name"`
	Process string `json:"process,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Start   int64  `json:"start_unix_nanos"`
	End     int64  `json:"end_unix_nanos,omitempty"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// DurationNanos is the span's recorded duration, 0 while it is open.
func (s *Span) DurationNanos() int64 {
	if s.End == 0 {
		return 0
	}
	return s.End - s.Start
}

// Attr returns the named attribute and whether it exists.
func (s *Span) Attr(key string) (Attr, bool) {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a, true
		}
	}
	return Attr{}, false
}

// Trace is one job's span tree, safe for concurrent use.
type Trace struct {
	mu      sync.Mutex
	id      string
	process string
	next    uint64         // guarded by mu
	spans   []Span         // guarded by mu
	open    map[uint64]int // guarded by mu; span ID -> index in spans, while open

	// anchorWall + anchorMono turn monotonic readings into wall-clock
	// nanoseconds that cannot go backwards within this trace.
	anchorWall int64
	anchorMono time.Time
}

// New creates a trace for the given trace (= job) ID. The process tag is
// stamped on every span the trace records locally.
func New(id, process string) *Trace {
	now := time.Now()
	return &Trace{
		id:         id,
		process:    process,
		open:       map[uint64]int{},
		anchorWall: now.UnixNano(),
		anchorMono: now,
	}
}

// ID returns the trace ID (the job ID).
func (t *Trace) ID() string { return t.id }

// now returns the current time as anchored wall-clock nanoseconds.
// Callers hold t.mu.
func (t *Trace) now() int64 { return t.anchorWall + int64(time.Since(t.anchorMono)) }

// at converts a time.Time carrying a monotonic reading (e.g. captured with
// time.Now in this process) into the trace's anchored nanoseconds.
func (t *Trace) at(ts time.Time) int64 { return t.anchorWall + int64(ts.Sub(t.anchorMono)) }

// SpanRef is a handle on an open span of a trace. The zero SpanRef is
// inert: End and ID are no-ops on it.
type SpanRef struct {
	t  *Trace
	id uint64
}

// ID returns the referenced span's ID (0 for the zero SpanRef).
func (r SpanRef) ID() uint64 { return r.id }

// Valid reports whether the ref points at a span.
func (r SpanRef) Valid() bool { return r.t != nil }

// Start opens a span under parent (0 = root) and returns its handle.
// attempt is the delivery attempt the span belongs to (0 = not
// attempt-scoped).
func (t *Trace) Start(parent uint64, name string, attempt int, attrs ...Attr) SpanRef {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next++
	id := t.next
	t.spans = append(t.spans, Span{
		ID:      id,
		Parent:  parent,
		Name:    name,
		Process: t.process,
		Attempt: attempt,
		Start:   t.now(),
		Attrs:   attrs,
	})
	t.open[id] = len(t.spans) - 1
	return SpanRef{t: t, id: id}
}

// End closes the span, appending any extra attributes. Ending a span twice
// (or ending the zero SpanRef) is a no-op.
func (r SpanRef) End(attrs ...Attr) {
	if r.t == nil {
		return
	}
	t := r.t
	t.mu.Lock()
	defer t.mu.Unlock()
	i, ok := t.open[r.id]
	if !ok {
		return
	}
	delete(t.open, r.id)
	t.spans[i].End = t.now()
	t.spans[i].Attrs = append(t.spans[i].Attrs, attrs...)
}

// Annotate appends attributes to the span, open or closed.
func (r SpanRef) Annotate(attrs ...Attr) {
	if r.t == nil {
		return
	}
	t := r.t
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.spans {
		if t.spans[i].ID == r.id {
			t.spans[i].Attrs = append(t.spans[i].Attrs, attrs...)
			return
		}
	}
}

// Event records an instant (zero-duration) span and returns its ID.
func (t *Trace) Event(parent uint64, name string, attempt int, attrs ...Attr) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next++
	id := t.next
	now := t.now()
	t.spans = append(t.spans, Span{
		ID:      id,
		Parent:  parent,
		Name:    name,
		Process: t.process,
		Attempt: attempt,
		Start:   now,
		End:     now,
		Attrs:   attrs,
	})
	return id
}

// Add records a closed span with explicit timing — start must carry a
// monotonic reading from this process (i.e. come from time.Now). It exists
// for observers that report (start, duration) pairs after the fact, like
// the solver phase hook.
func (t *Trace) Add(parent uint64, name string, attempt int, start time.Time, d time.Duration, attrs ...Attr) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next++
	id := t.next
	s := t.at(start)
	t.spans = append(t.spans, Span{
		ID:      id,
		Parent:  parent,
		Name:    name,
		Process: t.process,
		Attempt: attempt,
		Start:   s,
		End:     s + int64(d),
		Attrs:   attrs,
	})
	return id
}

// Graft splices a batch of spans recorded by another process into this
// trace, attaching the batch's roots under the given span. Every incoming
// span gets a fresh ID from this trace's counter; parent links inside the
// batch follow the remapping, while spans whose parent is not in the batch
// (the other process records its subtree rooted at parent 0) are
// re-parented under `under`. Re-parenting structurally rather than by raw
// ID matters because both processes allocate span IDs from 1, so an
// agent's IDs routinely collide with the frontend's. Spans keep their own
// process tags and timestamps.
func (t *Trace) Graft(spans []Span, under uint64) {
	if len(spans) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	remap := make(map[uint64]uint64, len(spans))
	for _, s := range spans {
		t.next++
		remap[s.ID] = t.next
	}
	for _, s := range spans {
		s.ID = remap[s.ID]
		if mapped, ok := remap[s.Parent]; ok {
			s.Parent = mapped
		} else {
			s.Parent = under
		}
		t.spans = append(t.spans, s)
	}
}

// Export snapshots the trace's spans (open ones included, with End == 0)
// for shipping to another process.
func (t *Trace) Export() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.copySpansLocked()
}

func (t *Trace) copySpansLocked() []Span {
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	for i := range out {
		if len(out[i].Attrs) > 0 {
			attrs := make([]Attr, len(out[i].Attrs))
			copy(attrs, out[i].Attrs)
			out[i].Attrs = attrs
		}
	}
	return out
}

// Data is an immutable snapshot of a trace: the JSON form served by
// GET /v1/jobs/{id}/trace.
type Data struct {
	TraceID string `json:"trace_id"`
	// Complete is true once the trace was finished (its job reached a
	// terminal state) and its root span closed.
	Complete bool `json:"complete"`
	// DurationNanos is the root span's duration (0 while incomplete).
	DurationNanos int64  `json:"duration_nanos"`
	Spans         []Span `json:"spans"`
}

// Snapshot renders the trace's current state. Spans are in recording
// order per process; grafted spans keep their original timestamps.
func (t *Trace) Snapshot(complete bool) *Data {
	t.mu.Lock()
	defer t.mu.Unlock()
	d := &Data{TraceID: t.id, Complete: complete, Spans: t.copySpansLocked()}
	d.DurationNanos = rootDuration(d.Spans)
	return d
}

// rootDuration returns the first root span's duration, or 0 if it is
// still open (or there is no root).
func rootDuration(spans []Span) int64 {
	for i := range spans {
		if spans[i].Parent == 0 {
			return spans[i].DurationNanos()
		}
	}
	return 0
}

// FindSpan returns the first span with the given name, or nil.
func (d *Data) FindSpan(name string) *Span {
	for i := range d.Spans {
		if d.Spans[i].Name == name {
			return &d.Spans[i]
		}
	}
	return nil
}

// Summary is one row of the /debug/traces listing.
type Summary struct {
	TraceID       string `json:"trace_id"`
	Complete      bool   `json:"complete"`
	DurationNanos int64  `json:"duration_nanos"`
	Spans         int    `json:"spans"`
}

func (d *Data) summary() Summary {
	return Summary{
		TraceID:       d.TraceID,
		Complete:      d.Complete,
		DurationNanos: d.DurationNanos,
		Spans:         len(d.Spans),
	}
}

// retained is a finished trace plus its retention refcount: a Data may sit
// in both the recent ring and the slowest-N list, and is dropped from the
// lookup index only when evicted from both.
type retained struct {
	data *Data
	refs int
}

// Registry tracks live traces by job ID and retains a bounded set of
// finished ones: the most recent `recentCap` and the slowest `slowCap` by
// root duration.
type Registry struct {
	mu     sync.Mutex
	active map[string]*Trace    // guarded by mu
	byID   map[string]*retained // guarded by mu

	recent  []*retained // guarded by mu; ring, len <= recentCap
	recentI int         // guarded by mu
	slow    []*retained // guarded by mu; sorted slowest-first, len <= slowCap

	recentCap int
	slowCap   int
}

// NewRegistry builds a registry retaining up to recentCap recently
// finished traces and slowCap slowest finished traces (values <= 0 pick
// the defaults 256 and 32).
func NewRegistry(recentCap, slowCap int) *Registry {
	if recentCap <= 0 {
		recentCap = 256
	}
	if slowCap <= 0 {
		slowCap = 32
	}
	return &Registry{
		active:    make(map[string]*Trace),
		byID:      make(map[string]*retained),
		recentCap: recentCap,
		slowCap:   slowCap,
	}
}

// Start creates (or returns the existing) live trace for the job.
func (r *Registry) Start(id, process string) *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.active[id]; ok {
		return t
	}
	t := New(id, process)
	r.active[id] = t
	return t
}

// Active returns the live trace for the job, if any.
func (r *Registry) Active(id string) (*Trace, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.active[id]
	return t, ok
}

// Lookup returns a snapshot of the job's trace: a live view while the job
// is in flight, the retained snapshot after it finished.
func (r *Registry) Lookup(id string) (*Data, bool) {
	r.mu.Lock()
	t, live := r.active[id]
	ret, done := r.byID[id]
	r.mu.Unlock()
	if live {
		return t.Snapshot(false), true
	}
	if done {
		return ret.data, true
	}
	return nil, false
}

// Finish snapshots the job's live trace, moves it into the retention
// sets, and returns the snapshot (nil if the job had no live trace).
func (r *Registry) Finish(id string) *Data {
	r.mu.Lock()
	t, ok := r.active[id]
	if !ok {
		r.mu.Unlock()
		return nil
	}
	delete(r.active, id)
	r.mu.Unlock()

	d := t.Snapshot(true)

	r.mu.Lock()
	defer r.mu.Unlock()
	ret := &retained{data: d}
	r.byID[id] = ret
	r.insertRecentLocked(ret)
	r.insertSlowLocked(ret)
	return d
}

func (r *Registry) insertRecentLocked(ret *retained) {
	ret.refs++
	if len(r.recent) < r.recentCap {
		r.recent = append(r.recent, ret)
		return
	}
	old := r.recent[r.recentI]
	r.recent[r.recentI] = ret
	r.recentI = (r.recentI + 1) % r.recentCap
	r.releaseLocked(old)
}

func (r *Registry) insertSlowLocked(ret *retained) {
	// Insertion sort into the slowest-first list; cheap at slowCap ~32.
	i := len(r.slow)
	for i > 0 && r.slow[i-1].data.DurationNanos < ret.data.DurationNanos {
		i--
	}
	if i >= r.slowCap {
		return // faster than everything retained, list full
	}
	ret.refs++
	r.slow = append(r.slow, nil)
	copy(r.slow[i+1:], r.slow[i:])
	r.slow[i] = ret
	if len(r.slow) > r.slowCap {
		evicted := r.slow[len(r.slow)-1]
		r.slow = r.slow[:len(r.slow)-1]
		r.releaseLocked(evicted)
	}
}

func (r *Registry) releaseLocked(ret *retained) {
	ret.refs--
	if ret.refs <= 0 {
		// Only delete the index entry if it still points at this snapshot
		// (the job ID may have been reused by a newer finish).
		if cur, ok := r.byID[ret.data.TraceID]; ok && cur == ret {
			delete(r.byID, ret.data.TraceID)
		}
	}
}

// Drop discards the live trace for the job without retaining it (e.g. a
// job admitted but never enqueued).
func (r *Registry) Drop(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.active, id)
}

// Stats reports the registry's current sizes.
func (r *Registry) Stats() (active, retainedN int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.active), len(r.byID)
}

// Listing is the /debug/traces payload.
type Listing struct {
	Active  int       `json:"active"`
	Recent  []Summary `json:"recent"`
	Slowest []Summary `json:"slowest"`
}

// List renders the registry's retained traces: most recent first, then
// slowest first.
func (r *Registry) List() Listing {
	r.mu.Lock()
	defer r.mu.Unlock()
	l := Listing{Active: len(r.active)}
	// Walk the ring newest-first: the slot before recentI is the newest
	// once the ring has wrapped; before that, the ring is append-ordered.
	n := len(r.recent)
	for i := 0; i < n; i++ {
		var idx int
		if n < r.recentCap {
			idx = n - 1 - i
		} else {
			idx = ((r.recentI-1-i)%n + n) % n
		}
		l.Recent = append(l.Recent, r.recent[idx].data.summary())
	}
	for _, ret := range r.slow {
		l.Slowest = append(l.Slowest, ret.data.summary())
	}
	return l
}
