package server

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"repro/internal/wire"
)

// job is one async solve. State transitions are queued → running →
// done|failed; a job created for an already-cached digest is born done.
type job struct {
	id string

	mu    sync.Mutex
	state string
	resp  *wire.SolveResponse
	err   *solveError
}

func (j *job) snapshot() wire.JobResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := wire.JobResponse{ID: j.id, State: j.state}
	switch j.state {
	case wire.JobDone:
		out.Result = j.resp
	case wire.JobFailed:
		out.Error = j.err.msg
	}
	return out
}

func (j *job) finish(resp *wire.SolveResponse, err *solveError) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err != nil {
		j.state, j.err = wire.JobFailed, err
		return
	}
	j.state, j.resp = wire.JobDone, resp
}

// jobStore indexes jobs by ID and evicts the oldest *finished* jobs beyond
// the history bound; queued/running jobs are never evicted.
type jobStore struct {
	mu      sync.Mutex
	max     int
	jobs    map[string]*job
	order   []string // creation order, for eviction scans
	counter atomic.Int64
}

func newJobStore(max int) *jobStore {
	return &jobStore{max: max, jobs: make(map[string]*job)}
}

func (s *jobStore) create(digest string) *job {
	n := s.counter.Add(1)
	j := &job{
		id:    fmt.Sprintf("j%06d-%s", n, digest[:12]),
		state: wire.JobQueued,
	}
	s.mu.Lock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.evictLocked()
	s.mu.Unlock()
	return j
}

func (s *jobStore) get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// evictLocked drops the oldest finished jobs until at most max remain.
func (s *jobStore) evictLocked() {
	if len(s.jobs) <= s.max {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if j == nil {
			continue
		}
		j.mu.Lock()
		finished := j.state == wire.JobDone || j.state == wire.JobFailed
		j.mu.Unlock()
		if finished && len(s.jobs) > s.max {
			delete(s.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// handleJobCreate is POST /v1/jobs: 202 with a queued job (or a born-done
// job on a cache hit); 429 when the queue is full.
func (s *Server) handleJobCreate(w http.ResponseWriter, r *http.Request) {
	work, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	if resp, ok := s.cache.get(work.digest); ok {
		s.metrics.cacheHits.Add(1)
		j := s.jobs.create(work.digest)
		out := *resp
		out.Cached = true
		j.finish(&out, nil)
		writeJSON(w, http.StatusAccepted, j.snapshot())
		return
	}
	// Reserve the queue slot at submission time so a full queue is explicit
	// backpressure (429) instead of an ever-growing set of pending jobs.
	if serr := s.admitSolve(); serr != nil {
		if serr.code == http.StatusTooManyRequests {
			s.metrics.throttled.Add(1)
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, serr.code, "%s", serr.msg)
		return
	}
	j := s.jobs.create(work.digest)
	go func() {
		defer s.releaseSolve()
		j.mu.Lock()
		j.state = wire.JobRunning
		j.mu.Unlock()
		// Single-flight with concurrent solves of the same digest; the job
		// already holds its queue slot, so the solve closure needs no
		// admission of its own.
		j.finish(s.solveShared(work, func() (*wire.SolveResponse, *solveError) {
			return s.solveOnPool(work)
		}))
	}()
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

// handleJobGet is GET /v1/jobs/{id}.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}
