package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/wire"
)

// job is one admitted solve — the durable unit of work. Sync requests,
// async jobs and replayed journal entries all become jobs; a job finishes
// exactly once (state transitions queued → running → done|failed), every
// waiter is released by the done channel, and the finishing transition is
// claimed under the job lock so duplicate queue deliveries cannot double-
// journal or double-release.
type job struct {
	id     string
	digest string
	// work is the decoded pool task (rebuilt from rawReq for replayed jobs).
	work *solveWork
	// rawReq is the canonical request JSON, journaled in the accepted
	// record so a restart can rebuild work.
	rawReq json.RawMessage
	// deadline, when non-zero, is the latest useful completion time.
	deadline time.Time
	// admitted reports whether this job holds an admission slot (replayed
	// jobs do not; they were admitted by a previous incarnation).
	admitted bool

	mu        sync.Mutex
	state     string              // guarded by mu
	attempt   int                 // guarded by mu; deliveries so far
	finishing bool                // guarded by mu
	resp      *wire.SolveResponse // guarded by mu
	err       *solveError         // guarded by mu
	done      chan struct{}       // closed on finish

	// Trace state (lock order: j.mu before trace.mu — the trace never
	// calls back into the job). trace is nil for jobs that never entered
	// the queue (cache-hit async jobs, replayed finished jobs).
	trace        *telemetry.Trace  // guarded by mu
	rootSpan     telemetry.SpanRef // guarded by mu; the "job" span, open for the job's life
	waitSpan     telemetry.SpanRef // guarded by mu; the current "queue.wait" span
	claimSpan    telemetry.SpanRef // guarded by mu; the current attempt's "claim" span
	waitStart    time.Time         // guarded by mu; when the current queue.wait began
	claimAt      time.Time         // guarded by mu; when the current claim began
	claimAttempt int               // guarded by mu; the attempt claimSpan belongs to
}

func newJob(id, digest string) *job {
	return &job{id: id, digest: digest, state: wire.JobQueued, done: make(chan struct{})}
}

func (j *job) snapshot() wire.JobResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := wire.JobResponse{ID: j.id, State: j.state, Attempts: j.attempt}
	switch j.state {
	case wire.JobDone:
		out.Result = j.resp
	case wire.JobFailed:
		out.Error = j.err.msg
	}
	return out
}

func (j *job) setRunning(attempt int) {
	j.mu.Lock()
	if j.state == wire.JobQueued || j.state == wire.JobRunning {
		j.state = wire.JobRunning
		j.attempt = attempt
	}
	j.mu.Unlock()
}

// tryFinish claims the finishing transition: the first caller gets true and
// must follow through with finish (journaling in between); later callers —
// duplicate deliveries of an expired lease — get false and walk away.
func (j *job) tryFinish() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.finishing {
		return false
	}
	j.finishing = true
	return true
}

// finish publishes the outcome and releases every waiter. The caller must
// have won tryFinish.
func (j *job) finish(resp *wire.SolveResponse, serr *solveError) {
	j.mu.Lock()
	if serr != nil {
		j.state, j.err = wire.JobFailed, serr
	} else {
		j.state, j.resp = wire.JobDone, resp
	}
	j.mu.Unlock()
	close(j.done)
}

func (j *job) finished() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// jobStore indexes jobs by ID and evicts the oldest *finished* jobs beyond
// the history bound; unfinished jobs are never evicted.
type jobStore struct {
	mu      sync.Mutex
	max     int             // immutable after newJobStore
	jobs    map[string]*job // guarded by mu
	order   []string        // guarded by mu; creation order, for eviction scans
	counter int64           // guarded by mu
}

func newJobStore(max int) *jobStore {
	return &jobStore{max: max, jobs: make(map[string]*job)}
}

// create mints a new job with a fresh ID and registers it.
func (s *jobStore) create(digest string) *job {
	s.mu.Lock()
	s.counter++
	j := newJob(fmt.Sprintf("j%06d-%s", s.counter, digest[:12]), digest)
	s.insertLocked(j)
	s.mu.Unlock()
	return j
}

// insert registers a job that already has an ID (journal replay), bumping
// the ID counter past it so new IDs never collide with replayed ones.
func (s *jobStore) insert(j *job) {
	var n int64
	fmt.Sscanf(j.id, "j%d-", &n)
	s.mu.Lock()
	if n > s.counter {
		s.counter = n
	}
	s.insertLocked(j)
	s.mu.Unlock()
}

func (s *jobStore) insertLocked(j *job) {
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.evictLocked()
}

func (s *jobStore) get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// evictLocked drops the oldest finished jobs until at most max remain.
func (s *jobStore) evictLocked() {
	if len(s.jobs) <= s.max {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if j == nil {
			continue
		}
		if j.finished() && len(s.jobs) > s.max {
			delete(s.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// handleJobCreate is POST /v1/jobs: 202 with a queued job (or a born-done
// job on a cache hit); 429/503 when admission is refused. Concurrent
// submissions of one digest share a single durable job — the job ID is a
// content-addressed handle, so duplicates get the in-flight job's ID
// instead of a second solve.
func (s *Server) handleJobCreate(w http.ResponseWriter, r *http.Request) {
	work, rawReq, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	if resp, ok := s.storeGet(work.digest); ok {
		s.metrics.cacheHits.Add(1)
		j := s.jobs.create(work.digest)
		out := *resp
		out.Cached = true
		if j.tryFinish() {
			j.finish(&out, nil)
		}
		writeJSON(w, http.StatusAccepted, j.snapshot())
		return
	}
	j, _, serr := s.ensureJob(work, rawReq)
	if serr != nil {
		s.writeSolveError(w, serr)
		return
	}
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

// handleJobGet is GET /v1/jobs/{id}.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

// handleDeadLetters is GET /v1/deadletters: the jobs that exhausted their
// retry budget since startup (the newest DeadLetterCap of them; ?limit=N
// asks for at most the newest N).
func (s *Server) handleDeadLetters(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad limit %q: want a non-negative integer", v)
			return
		}
		limit = n
	}
	dead := s.queue.DeadLetters(limit)
	out := wire.DeadLettersResponse{DeadLetters: []wire.DeadLetter{}}
	for _, d := range dead {
		out.DeadLetters = append(out.DeadLetters, wire.DeadLetter{
			JobID:    d.Job.ID,
			Digest:   d.Job.Digest,
			Attempts: d.Job.Attempt,
			Reason:   d.Reason,
			Unix:     d.At.Unix(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}
