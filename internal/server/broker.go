package server

import (
	"context"
	"fmt"

	"repro/internal/chaos"
	"repro/internal/journal"
	"repro/internal/queue"
)

// journalBroker is the frontend's view of the work queue: it wraps the
// raw in-memory queue and makes every claim durable before the claimant
// sees it. Both the fused in-process agent and remote agents (through the
// /broker/v1 HTTP mount) consume this wrapper, so the journal stays
// single-writer in the frontend and a lease looks the same in the log no
// matter where the solve runs.
type journalBroker struct {
	queue.Broker // the raw queue: Enqueue/Extend/Complete/Fail/... pass through
	s            *Server
}

// Claim hands out the next job with its lease record already journaled.
// Duplicate deliveries of jobs the frontend has finished are acked and
// skipped here, before any agent wastes a solve on them.
func (b *journalBroker) Claim(ctx context.Context) (*queue.Lease, error) {
	for {
		lease, err := b.Broker.Claim(ctx)
		if err != nil {
			return nil, err
		}
		qj := lease.Job
		j, known := b.s.jobs.get(qj.ID)
		if known && j.finished() {
			// The lease expired after the work was done and the queue
			// redelivered; nothing is left to do.
			lease.Ack()
			continue
		}
		if err := b.s.journalAppend(&journal.Record{
			Type:    journal.TypeLeased,
			JobID:   qj.ID,
			Digest:  qj.Digest,
			Attempt: qj.Attempt,
			Worker:  "agent",
		}); err != nil {
			lease.Nack(fmt.Sprintf("journal: %v", err))
			continue
		}
		b.s.inj.At(chaos.QueueAfterLease) // planned crash: lease durable, no solve
		if known {
			j.setRunning(qj.Attempt)
			if span := b.s.traceClaim(j, qj.Attempt); span != 0 {
				// Stamp the claim span onto the delivered copy, not the
				// queue's own entry — the stamp is per delivery, and a
				// redelivery must get the next attempt's span instead.
				stamped := *qj
				stamped.TraceSpan = span
				lease.Job = &stamped
			}
			b.s.log.Debug("job claimed", "job_id", qj.ID, "digest", qj.Digest, "attempt", qj.Attempt)
		}
		return lease, nil
	}
}
