// Package server implements kecss-serve as a thin frontend plus stateless
// solver agents over a pluggable broker and a durable content-addressed
// result store.
//
// The frontend owns everything durable and client-facing: the HTTP API,
// admission control, the single-flight job table, the write-ahead journal
// and the result store. Agents own only compute: each runs a kecss.Pool
// and a claim → solve → store put → complete loop against a queue.Broker.
// In the default fused mode ("all") one in-process Agent consumes the
// local broker directly — today's single-binary behavior. In split mode
// the frontend runs with -mode frontend and any number of cmd/kecss-agent
// processes attach over HTTP (the /broker/v1 mount, always available), so
// solve capacity scales out without moving any durable state.
//
// Endpoints:
//
//	POST /v1/solve        solve synchronously (wire.SolveRequest → wire.SolveResponse)
//	POST /v1/jobs         enqueue an async solve (202 + wire.JobResponse)
//	GET  /v1/jobs/{id}    poll an async solve
//	GET  /v1/deadletters  jobs that exhausted their retry budget (?limit=N)
//	GET  /healthz         liveness (503 only once the server is closed)
//	GET  /readyz          readiness (503 during replay, drain and shutdown)
//	GET  /metrics         Prometheus text metrics
//	*    /broker/v1/...   the broker API remote agents consume (httpbroker)
//
// Every request is content-addressed by wire.Digest(graph, spec); because
// the solver stack is deterministic in (graph, spec), a digest hit is
// served from the store with byte-identical results to a fresh solve —
// and with Config.StoreDir set the store survives restarts, so yesterday's
// solves are this morning's cache hits.
//
// # The job layer
//
// A store miss does not solve inline. It becomes a job: journaled to the
// write-ahead log (when Config.JournalPath is set), enqueued on the
// broker, and solved by whichever agent claims it under a TTL lease. Sync
// requests block on the job's completion; async requests poll it.
// Concurrent identical misses share one job (single-flight by digest),
// and a client that disconnects mid-solve does not abandon the job — the
// solve completes into the store for the waiters and the future.
//
// Agents that stall past the lease TTL lose the lease and the job is
// redelivered with capped exponential backoff; a job that exhausts its
// retry budget is dead-lettered (visible at /v1/deadletters) and reported
// to its waiters as a 503. Admission is bounded: beyond Config.QueueDepth
// in-flight jobs the server sheds load with 429 + Retry-After scaled to
// the backlog, rather than queueing unboundedly.
//
// # Crash safety
//
// With a journal configured, every accepted job is durable before its
// 202/200 is written: accepted → leased → done/failed records are
// fsync-batched to the log, and startup replay reconstructs the job table
// — finished jobs come back pollable with their results (which also
// repopulate the result store), unfinished jobs are re-enqueued and solved
// again. Completions are deduplicated per job ID, so a job accepted once
// is journaled done exactly once even across lease expiries, duplicate
// deliveries, agent SIGKILLs and restarts. Agents hold no durable state
// at all: killing one mid-solve costs a lease expiry, never an acked job.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	kecss "repro"
	"repro/internal/chaos"
	"repro/internal/journal"
	"repro/internal/queue"
	"repro/internal/queue/httpbroker"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Config sizes a Server. The zero value gets sensible defaults from New.
type Config struct {
	// Workers is the solver pool size (0 = GOMAXPROCS).
	Workers int
	// SolveWorkers is how many queue-consumer goroutines run solves
	// (0 = pool workers).
	SolveWorkers int
	// CacheSize is the maximum number of cached results (0 = 4096;
	// negative disables the cache).
	CacheSize int
	// QueueDepth bounds how many jobs may be in flight (queued, delayed or
	// running) before the server answers 429 (0 = 4×workers).
	QueueDepth int
	// JobHistory bounds how many finished async jobs stay pollable
	// (0 = 1024). Oldest finished jobs are evicted first.
	JobHistory int
	// JournalPath enables the durable job journal; empty keeps the job
	// layer ephemeral (the queue still runs, nothing survives a restart).
	JournalPath string
	// LeaseTTL is how long a worker may hold a job before it is
	// redelivered (0 = 30s).
	LeaseTTL time.Duration
	// MaxAttempts is the delivery budget before a job is dead-lettered
	// (0 = 5).
	MaxAttempts int
	// BackoffBase and BackoffMax shape the redelivery backoff
	// (0 = 50ms / 5s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed drives the queue's retry jitter.
	Seed int64
	// Chaos is the fault-injection plan (nil in production).
	Chaos *chaos.Injector
	// Mode selects what this process runs: "all" (default) fuses the
	// frontend with one in-process agent; "frontend" runs only the HTTP
	// API, journal and store — solves wait for remote agents to attach
	// via /broker/v1.
	Mode string
	// StoreDir is the durable result-store root; empty keeps results in
	// memory only (they die with the process, as the pre-store cache did).
	StoreDir string
	// Logger receives structured logs keyed by job_id/digest/attempt; nil
	// discards them (tests, benchmarks).
	Logger *slog.Logger
	// TraceRecent and TraceSlow bound the finished-trace retention sets
	// (0 = 256 recent / 32 slowest).
	TraceRecent int
	TraceSlow   int
}

// Server is the HTTP solve service. Create with New, mount Handler, stop
// with Drain (stop accepting, wait for in-flight jobs) then Close.
type Server struct {
	cfg       Config
	agent     *Agent        // fused in-process agent; nil in frontend mode
	store     *store.Store  // durable (or memory-only) result store
	sem       chan struct{} // admission tokens for new jobs
	metrics   *metrics
	jobs      *jobStore
	queue     *queue.Queue // the raw local queue
	broker    queue.Broker // journaling wrapper over queue; what agents consume
	brokerAPI *httpbroker.Server
	jnl       *journal.Journal // nil when ephemeral
	inj       *chaos.Injector
	start     time.Time
	replay    ReplayInfo
	traces    *telemetry.Registry
	log       *slog.Logger

	// drainMu makes admission atomic with the draining flag: ensureJob
	// holds it shared around (check draining, Add to inflight), Drain holds
	// it exclusively while setting the flag — so once Drain owns the flag,
	// no late admission can Add to a WaitGroup that Drain is Waiting on.
	drainMu  sync.RWMutex
	draining atomic.Bool
	closed   atomic.Bool
	inflight sync.WaitGroup // every unfinished job

	flightMu sync.Mutex
	flight   map[string]*job // guarded by flightMu; digest → active job (single-flight)

	closeOnce sync.Once
}

// ReplayInfo summarizes what startup recovered from the journal.
type ReplayInfo struct {
	// Records is how many valid journal records were replayed.
	Records int
	// Completed is how many finished jobs (done or failed) came back.
	Completed int
	// Requeued is how many unfinished jobs were re-enqueued.
	Requeued int
	// TornBytes is the size of the truncated torn tail (0 = clean).
	TornBytes int64
}

// solveError is a solve failure with its HTTP classification. retryable
// marks transient failures the queue should redeliver (pool shutdown mid-
// solve) as opposed to permanent input errors.
type solveError struct {
	code      int
	msg       string
	retryable bool
}

// maxBodyBytes bounds request bodies; a million-edge graph is ~20 MB of
// JSON, well inside this.
const maxBodyBytes = 64 << 20

// New starts a Server with its work queue, result store and (when
// configured) journal and fused agent; journal replay happens here, so
// once New returns the server is ready.
func New(cfg Config) (*Server, error) {
	switch cfg.Mode {
	case "", "all", "frontend":
	default:
		return nil, fmt.Errorf("server: unknown mode %q (want all or frontend)", cfg.Mode)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 4096
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * workers
	}
	if cfg.JobHistory <= 0 {
		cfg.JobHistory = 1024
	}
	if cfg.SolveWorkers <= 0 {
		cfg.SolveWorkers = workers
	}
	cacheSize := cfg.CacheSize
	if cacheSize < 0 {
		cacheSize = 0 // negative disables the memory tier
	}
	st, err := store.Open(store.Options{
		Dir:       cfg.StoreDir,
		CacheSize: cacheSize,
		Decode:    DecodeStoredResponse,
		Inject:    cfg.Chaos,
	})
	if err != nil {
		return nil, err
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	s := &Server{
		cfg:     cfg,
		store:   st,
		sem:     make(chan struct{}, cfg.QueueDepth),
		metrics: newMetrics(),
		jobs:    newJobStore(cfg.JobHistory),
		inj:     cfg.Chaos,
		flight:  make(map[string]*job),
		start:   time.Now(),
		traces:  telemetry.NewRegistry(cfg.TraceRecent, cfg.TraceSlow),
		log:     logger,
	}
	s.queue = queue.New(queue.Config{
		LeaseTTL:    cfg.LeaseTTL,
		MaxAttempts: cfg.MaxAttempts,
		BackoffBase: cfg.BackoffBase,
		BackoffMax:  cfg.BackoffMax,
		Seed:        cfg.Seed,
		OnEvent:     s.metrics.countQueueEvent,
		OnDead:      s.onDeadLetter,
		OnComplete:  s.onQueueComplete,
		OnExpired:   s.onLeaseExpired,
	})
	s.broker = &journalBroker{Broker: s.queue, s: s}
	s.brokerAPI = httpbroker.NewServer(s.broker, httpbroker.ServerOptions{Logger: logger})
	if cfg.JournalPath != "" {
		jnl, rep, err := journal.Open(cfg.JournalPath, journal.Options{
			Inject:  cfg.Chaos,
			OnFsync: s.metrics.journalFsync.observe,
		})
		if err != nil {
			s.queue.Close()
			return nil, err
		}
		s.jnl = jnl
		if err := s.applyReplay(rep); err != nil {
			s.queue.Close()
			jnl.Close()
			return nil, err
		}
	}
	if cfg.Mode != "frontend" {
		s.agent = NewAgent(s.broker, AgentConfig{
			Workers: cfg.Workers,
			Loops:   cfg.SolveWorkers,
			Store:   st,
			Chaos:   cfg.Chaos,
			OnSolve: s.metrics.solveLatency.observe,
		})
	}
	return s, nil
}

// DecodeStoredResponse is the store's decode hook: entries hold the
// canonical response JSON, the memory tier holds decoded values. It is
// shared with cmd/kecss-agent, whose local store holds the same entries.
func DecodeStoredResponse(b []byte) (any, error) {
	var r wire.SolveResponse
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// storeGet fetches a decoded response by digest. Entries are immutable:
// callers copy before mutating presentation fields (Cached).
func (s *Server) storeGet(digest string) (*wire.SolveResponse, bool) {
	v, ok := s.store.Get(digest)
	if !ok {
		return nil, false
	}
	return v.(*wire.SolveResponse), true
}

// Handler returns the server's routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.instrument("/v1/solve", s.handleSolve))
	mux.HandleFunc("POST /v1/jobs", s.instrument("/v1/jobs", s.handleJobCreate))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("/v1/jobs/{id}", s.handleJobGet))
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.instrument("/v1/jobs/{id}/trace", s.handleJobTrace))
	mux.HandleFunc("GET /debug/traces", s.instrument("/debug/traces", s.handleDebugTraces))
	mux.HandleFunc("GET /v1/deadletters", s.instrument("/v1/deadletters", s.handleDeadLetters))
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealth))
	mux.HandleFunc("GET /readyz", s.instrument("/readyz", s.handleReady))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	// The broker API is always mounted: remote agents can attach to a
	// fused server too (extra capacity alongside the in-process agent).
	mux.Handle("/broker/v1/", http.StripPrefix("/broker/v1", s.brokerAPI.Handler()))
	return mux
}

// Replay reports what startup recovered from the journal.
func (s *Server) Replay() ReplayInfo { return s.replay }

// StartDrain flips the server into draining mode: /readyz turns 503 (so
// load balancers stop routing here) and new jobs are refused, while cached
// results keep being served and in-flight jobs run to completion. Call it
// before shutting the HTTP listener down; Drain calls it implicitly.
func (s *Server) StartDrain() {
	s.drainMu.Lock()
	s.draining.Store(true)
	s.drainMu.Unlock()
}

// Drain stops admitting new jobs and waits (bounded by ctx) for in-flight
// ones — including jobs waiting out a retry backoff — the SIGTERM half of
// graceful shutdown; pair with Close once the HTTP listener has stopped.
func (s *Server) Drain(ctx context.Context) error {
	s.StartDrain()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain interrupted with jobs in flight: %w", ctx.Err())
	}
}

// Close stops the fused agent, the queue and the journal. /healthz turns
// 503. Requests arriving afterwards fail cleanly. Remote agents see the
// broker close and detach on their own. Idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.StartDrain()
		s.closed.Store(true)
		// The agent first: in-flight solves run to completion and their
		// outcomes route through the still-open queue into the journal.
		if s.agent != nil {
			s.agent.Close()
		}
		s.queue.Close()
		// Unfinished jobs (abandoned mid-drain) keep their journal state and
		// will be replayed by the next incarnation; release their waiters.
		s.flightMu.Lock()
		stranded := make([]*job, 0, len(s.flight))
		for _, j := range s.flight {
			stranded = append(stranded, j)
		}
		s.flightMu.Unlock()
		for _, j := range stranded {
			if j.tryFinish() {
				s.finishJob(j, nil, &solveError{code: http.StatusServiceUnavailable, msg: "server shut down before the job completed"})
			}
		}
		if s.jnl != nil {
			s.jnl.Close()
		}
	})
}

// instrument wraps a handler with request counting and latency observation.
func (s *Server) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		s.metrics.countRequest(path, rec.code)
		if path == "/v1/solve" {
			s.metrics.requestLatency.observe(time.Since(start))
		}
	}
}

type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, wire.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeSolveError writes a classified solve failure, attaching Retry-After
// backpressure hints to 429 (queue full — scaled to the backlog) and 503
// (draining) so clients back off instead of hammering.
func (s *Server) writeSolveError(w http.ResponseWriter, serr *solveError) {
	switch serr.code {
	case http.StatusTooManyRequests:
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.retryAfterSeconds()))
		s.metrics.throttled.Add(1)
	case http.StatusServiceUnavailable:
		w.Header().Set("Retry-After", "1")
	}
	writeError(w, serr.code, "%s", serr.msg)
}

// retryAfterSeconds estimates how long a shed client should wait: the
// backlog divided by the worker parallelism, clamped to [1, 30] seconds.
func (s *Server) retryAfterSeconds() int {
	depth := s.queue.Depth()
	workers := s.cfg.SolveWorkers
	if workers < 1 {
		workers = 1
	}
	secs := 1 + depth/workers
	if secs > 30 {
		secs = 30
	}
	return secs
}

// decodeRequest parses and validates a solve request body, computes its
// graph and content digest, and re-encodes the request canonically for the
// journal. A false return means the response was already written.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request) (*solveWork, json.RawMessage, bool) {
	var req wire.SolveRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return nil, nil, false
	}
	work, raw, err := buildWork(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return nil, nil, false
	}
	if req.TimeoutMillis > 0 {
		work.deadline = time.Now().Add(time.Duration(req.TimeoutMillis) * time.Millisecond)
	} else if dl, ok := r.Context().Deadline(); ok {
		work.deadline = dl
	}
	return work, raw, true
}

// buildWork validates a request and maps it to a pool task — the single
// decode path shared by the HTTP handlers and journal replay.
func buildWork(req *wire.SolveRequest) (*solveWork, json.RawMessage, error) {
	if err := req.Validate(); err != nil {
		return nil, nil, err
	}
	g, err := req.Graph.ToGraph()
	if err != nil {
		return nil, nil, err
	}
	solver, err := kecss.ParseSolver(req.Solver)
	if err != nil {
		return nil, nil, err
	}
	raw, err := json.Marshal(req)
	if err != nil {
		return nil, nil, err
	}
	return &solveWork{
		digest: wire.Digest(g, req.SolveSpec),
		task: kecss.Task{
			Graph:  g,
			Solver: solver,
			K:      req.K,
			Opts:   OptionsFromSpec(req.SolveSpec),
		},
	}, raw, nil
}

// solveWork is a decoded, validated request: its content digest, the pool
// task it maps to, and the client deadline (zero = none).
type solveWork struct {
	digest   string
	task     kecss.Task
	deadline time.Time
}

// OptionsFromSpec maps the wire-level solver knobs onto kecss options —
// the single definition of how a network request configures a solve, shared
// with cmd/kecss-load's direct-solve verification.
func OptionsFromSpec(spec wire.SolveSpec) []kecss.Option {
	opts := []kecss.Option{kecss.WithSeed(spec.Seed)}
	if spec.SimulateMST {
		opts = append(opts, kecss.WithSimulatedMST())
	}
	if spec.VoteDenom > 0 {
		opts = append(opts, kecss.WithVoteDenominator(spec.VoteDenom))
	}
	if spec.LabelBits > 0 {
		opts = append(opts, kecss.WithLabelBits(spec.LabelBits))
	}
	if spec.PhaseLen > 0 {
		opts = append(opts, kecss.WithPhaseLength(spec.PhaseLen))
	}
	return opts
}

// handleSolve is POST /v1/solve: cache hit → immediate response; miss →
// join or create the digest's job (admission may shed with 429/503) and
// wait for it. A waiter that times out or disconnects leaves the job
// running for everyone else.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	work, rawReq, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	if resp, ok := s.storeGet(work.digest); ok {
		s.metrics.cacheHits.Add(1)
		s.serveCached(w, resp)
		return
	}
	j, created, serr := s.ensureJob(work, rawReq)
	if serr != nil {
		s.writeSolveError(w, serr)
		return
	}
	s.awaitJob(w, r, j, work, created)
}

// awaitJob blocks a sync request on a job's completion, honouring the
// client deadline and surviving client disconnects (the job keeps running;
// the disconnect is a metric, not a failure).
func (s *Server) awaitJob(w http.ResponseWriter, r *http.Request, j *job, work *solveWork, created bool) {
	// The job ID doubles as the trace ID; surfacing it lets clients fetch
	// GET /v1/jobs/{id}/trace for a solve they issued through /v1/solve.
	w.Header().Set("X-Kecss-Job", j.id)
	var deadlineC <-chan time.Time
	if !work.deadline.IsZero() {
		t := time.NewTimer(time.Until(work.deadline))
		defer t.Stop()
		deadlineC = t.C
	}
	select {
	case <-j.done:
	case <-deadlineC:
		writeError(w, http.StatusGatewayTimeout,
			"deadline exceeded waiting for job %s (the solve continues; retry to hit the cache)", j.id)
		return
	case <-r.Context().Done():
		// Client went away: count it and let the shared job finish for the
		// cache and any other waiters. No response can be written.
		s.metrics.clientDisconnects.Add(1)
		return
	}
	snap := j.snapshot()
	if snap.Error != "" {
		j.mu.Lock()
		serr := j.err
		j.mu.Unlock()
		s.writeSolveError(w, serr)
		return
	}
	resp := *snap.Result
	if !created {
		// A joiner shares the creator's solve: a cache-equivalent hit.
		resp.Cached = true
	}
	if resp.Digest != work.digest {
		// Shared job solved the same digest by construction; this is a bug.
		writeError(w, http.StatusInternalServerError, "job/digest mismatch")
		return
	}
	writeJSON(w, http.StatusOK, &resp)
}

// serveCached re-serves a cached response (value copied; cache entries are
// immutable).
func (s *Server) serveCached(w http.ResponseWriter, resp *wire.SolveResponse) {
	out := *resp
	out.Cached = true
	writeJSON(w, http.StatusOK, &out)
}

// ensureJob returns the active job for work's digest, creating (admitting,
// journaling and enqueueing) it if none is in flight. Single-flight: one
// durable job per digest, shared by every concurrent sync waiter and async
// submission. The accepted record is durable before ensureJob returns. The
// second return reports whether this caller created the job (false = joined
// an existing flight).
func (s *Server) ensureJob(work *solveWork, rawReq json.RawMessage) (*job, bool, *solveError) {
	admitStart := time.Now()
	s.flightMu.Lock()
	if j, ok := s.flight[work.digest]; ok {
		s.flightMu.Unlock()
		s.metrics.cacheHits.Add(1) // joins a flight: a cache-equivalent hit
		return j, false, nil
	}
	serr := s.admitJob()
	if serr != nil {
		s.flightMu.Unlock()
		return nil, false, serr
	}
	s.metrics.cacheMisses.Add(1)
	j := s.jobs.create(work.digest)
	j.work = work
	j.rawReq = rawReq
	j.deadline = work.deadline
	j.admitted = true
	s.flight[work.digest] = j
	s.flightMu.Unlock()
	s.beginTrace(j, admitStart)
	s.log.Info("job accepted", "job_id", j.id, "digest", j.digest)

	jspan := s.traceSpan(j, "journal.accept", 0)
	err := s.journalAppend(&journal.Record{
		Type:     journal.TypeAccepted,
		JobID:    j.id,
		Digest:   j.digest,
		Deadline: unixOrZero(j.deadline),
		Request:  rawReq,
	})
	jspan.End()
	if err != nil {
		s.log.Error("journal append failed", "job_id", j.id, "digest", j.digest, "err", err)
		if j.tryFinish() {
			s.finishJob(j, nil, &solveError{code: http.StatusServiceUnavailable, msg: fmt.Sprintf("journal unavailable: %v", err)})
		}
		return nil, false, &solveError{code: http.StatusServiceUnavailable, msg: "journal unavailable"}
	}
	espan := s.traceSpan(j, "enqueue", 0)
	err = s.queue.Enqueue(&queue.Job{
		ID:                j.id,
		Digest:            j.digest,
		DeadlineUnixNanos: unixOrZero(j.deadline),
		Request:           rawReq,
	})
	espan.End()
	if err != nil {
		if j.tryFinish() {
			s.finishJob(j, nil, &solveError{code: http.StatusServiceUnavailable, msg: "server is shutting down"})
		}
		return nil, false, &solveError{code: http.StatusServiceUnavailable, msg: "server is shutting down"}
	}
	s.traceWait(j)
	return j, true, nil
}

func unixOrZero(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// admitJob reserves an admission slot for one new job, refusing while
// draining (503) or when the backlog is full (429). The drainMu read lock
// makes the draining check atomic with the inflight registration.
func (s *Server) admitJob() *solveError {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining.Load() {
		return &solveError{code: http.StatusServiceUnavailable, msg: "server is draining"}
	}
	select {
	case s.sem <- struct{}{}:
	default:
		return &solveError{code: http.StatusTooManyRequests, msg: fmt.Sprintf("solve queue full (%d jobs in flight); retry later", cap(s.sem))}
	}
	s.inflight.Add(1)
	return nil
}

// finishJob publishes a job's outcome and releases its resources: the
// flight entry, the admission slot and the drain waiter. The caller must
// have won j.tryFinish (completion is exactly-once per job).
func (s *Server) finishJob(j *job, resp *wire.SolveResponse, serr *solveError) {
	j.finish(resp, serr)
	s.finishTrace(j, serr)
	if serr != nil {
		s.log.Info("job failed", "job_id", j.id, "digest", j.digest, "code", serr.code, "err", serr.msg)
	} else {
		s.log.Info("job done", "job_id", j.id, "digest", j.digest)
	}
	s.flightMu.Lock()
	if s.flight[j.digest] == j {
		delete(s.flight, j.digest)
	}
	s.flightMu.Unlock()
	if j.admitted {
		<-s.sem
	}
	s.inflight.Done()
}

// journalAppend durably logs rec, or does nothing in ephemeral mode.
func (s *Server) journalAppend(rec *journal.Record) error {
	if s.jnl == nil {
		return nil
	}
	return s.jnl.Append(rec)
}

// onQueueComplete is the broker's completion hook: an agent reported an
// outcome while still holding the lease. It journals the outcome, feeds
// the store, and finishes the job — exactly once per job; duplicate
// deliveries lose the tryFinish race and are dropped. The outcome record
// is durable before waiters are released (the hook runs synchronously
// inside the agent's Complete call, local or over HTTP).
func (s *Server) onQueueComplete(qj *queue.Job, out queue.Outcome) {
	j, ok := s.jobs.get(qj.ID)
	if !ok {
		return // evicted from history; the result is in the store regardless
	}
	if !j.tryFinish() {
		return
	}
	s.traceOutcome(j, &out)
	var resp *wire.SolveResponse
	var serr *solveError
	if out.Err != "" {
		code := out.Code
		if code == 0 {
			code = http.StatusUnprocessableEntity
		}
		serr = &solveError{code: code, msg: out.Err}
	} else {
		resp = new(wire.SolveResponse)
		if err := json.Unmarshal(out.Result, resp); err != nil {
			resp = nil
			serr = &solveError{code: http.StatusInternalServerError, msg: fmt.Sprintf("agent returned an undecodable result: %v", err)}
		}
	}
	rec := &journal.Record{JobID: j.id, Digest: j.digest}
	if serr != nil {
		rec.Type = journal.TypeFailed
		rec.Error = serr.msg
	} else {
		rec.Type = journal.TypeDone
		rec.Result = out.Result
	}
	if err := s.journalAppend(rec); err != nil {
		// The outcome could not be made durable; fail the waiters (the next
		// incarnation will re-solve from the accepted record).
		serr = &solveError{code: http.StatusServiceUnavailable, msg: fmt.Sprintf("journal unavailable: %v", err)}
		resp = nil
	}
	if resp != nil {
		// Idempotent for the fused agent (it already published); for
		// remote agents with their own store this is where the frontend's
		// store learns the result.
		putStart := time.Now()
		pspan := s.traceSpan(j, "store.put", qj.Attempt)
		_ = s.store.Put(j.digest, out.Result, resp)
		pspan.End()
		s.metrics.stageStorePut.observe(time.Since(putStart))
	}
	s.finishJob(j, resp, serr)
}

// onDeadLetter finishes a job the queue gave up on (retry budget spent).
func (s *Server) onDeadLetter(d queue.DeadLetter) {
	s.log.Warn("job dead-lettered", "job_id", d.Job.ID, "digest", d.Job.Digest, "attempt", d.Job.Attempt, "reason", d.Reason)
	_ = s.journalAppend(&journal.Record{
		Type:    journal.TypeDead,
		JobID:   d.Job.ID,
		Digest:  d.Job.Digest,
		Attempt: d.Job.Attempt,
		Error:   d.Reason,
	})
	j, ok := s.jobs.get(d.Job.ID)
	if !ok {
		return
	}
	if j.tryFinish() {
		s.finishJob(j, nil, &solveError{code: http.StatusServiceUnavailable, msg: fmt.Sprintf("job %s dead-lettered after %d attempts: %s", j.id, d.Job.Attempt, d.Reason)})
	}
}

// applyReplay reconstructs the job table from journal records: finished
// jobs come back pollable (results repopulate the cache), unfinished jobs
// are re-enqueued with their attempt count carried over.
func (s *Server) applyReplay(rep *journal.Replay) error {
	type jobState struct {
		accepted *journal.Record
		attempts int
		outcome  *journal.Record // done, failed or dead
	}
	states := make(map[string]*jobState)
	order := make([]string, 0, len(rep.Records))
	for i := range rep.Records {
		rec := &rep.Records[i]
		st := states[rec.JobID]
		if st == nil {
			st = &jobState{}
			states[rec.JobID] = st
			order = append(order, rec.JobID)
		}
		switch rec.Type {
		case journal.TypeAccepted:
			st.accepted = rec
		case journal.TypeLeased:
			if rec.Attempt > st.attempts {
				st.attempts = rec.Attempt
			}
		case journal.TypeDone, journal.TypeFailed, journal.TypeDead:
			st.outcome = rec
		}
	}
	s.replay = ReplayInfo{Records: len(rep.Records), TornBytes: rep.TornBytes}
	for _, id := range order {
		st := states[id]
		if st.accepted == nil {
			// Lease/outcome records whose accepted record was torn away are
			// orphans; the job was never acked to a client, skip it.
			continue
		}
		rec := st.accepted
		j := newJob(id, rec.Digest)
		if st.outcome != nil {
			s.replay.Completed++
			switch st.outcome.Type {
			case journal.TypeDone:
				var resp wire.SolveResponse
				if err := json.Unmarshal(st.outcome.Result, &resp); err != nil {
					return fmt.Errorf("server: replaying job %s result: %w", id, err)
				}
				j.finishing = true
				j.finish(&resp, nil)
				_ = s.store.Put(rec.Digest, st.outcome.Result, &resp)
			case journal.TypeFailed:
				j.finishing = true
				j.finish(nil, &solveError{code: http.StatusUnprocessableEntity, msg: st.outcome.Error})
			case journal.TypeDead:
				j.finishing = true
				j.finish(nil, &solveError{code: http.StatusServiceUnavailable, msg: fmt.Sprintf("job %s dead-lettered after %d attempts: %s", id, st.outcome.Attempt, st.outcome.Error)})
			}
			s.jobs.insert(j)
			continue
		}
		// Unfinished: rebuild the work from the journaled request and
		// re-enqueue. Replayed jobs bypass admission (they were admitted by
		// the previous incarnation) but count toward drain.
		var req wire.SolveRequest
		if err := json.Unmarshal(rec.Request, &req); err != nil {
			return fmt.Errorf("server: replaying job %s request: %w", id, err)
		}
		work, rawReq, err := buildWork(&req)
		if err != nil {
			return fmt.Errorf("server: replaying job %s request: %w", id, err)
		}
		j.work = work
		j.rawReq = rawReq
		if rec.Deadline != 0 {
			j.deadline = time.Unix(0, rec.Deadline)
		}
		s.jobs.insert(j)
		s.flightMu.Lock()
		s.flight[j.digest] = j
		s.flightMu.Unlock()
		s.inflight.Add(1)
		s.replay.Requeued++
		// A replayed job's trace starts at the restart: the original
		// timeline died with the previous incarnation, so the root is
		// tagged and the attempts already spent are recorded on it.
		tr := s.traces.Start(j.id, "frontend")
		j.trace = tr
		j.rootSpan = tr.Start(0, "job", 0,
			telemetry.String("digest", j.digest),
			telemetry.Bool("replayed", true),
			telemetry.Int("prior_attempts", int64(st.attempts)))
		if err := s.queue.Enqueue(&queue.Job{
			ID:                j.id,
			Digest:            j.digest,
			DeadlineUnixNanos: unixOrZero(j.deadline),
			Request:           rawReq,
			Attempt:           st.attempts,
		}); err != nil {
			return fmt.Errorf("server: re-enqueueing job %s: %w", id, err)
		}
		s.traceWait(j)
	}
	return nil
}

// handleHealth is GET /healthz: liveness. 200 while the process can serve
// anything at all (including cache hits during drain); 503 only once Close
// has torn the serving stack down.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	code := http.StatusOK
	status := "ok"
	switch {
	case s.closed.Load():
		code = http.StatusServiceUnavailable
		status = "closed"
	case s.draining.Load():
		status = "draining"
	}
	writeJSON(w, code, map[string]any{
		"status":         status,
		"workers":        s.workerCount(),
		"cache_entries":  s.store.CacheLen(),
		"uptime_seconds": int64(time.Since(s.start).Seconds()),
	})
}

// workerCount is the local solver parallelism: the fused agent's pool size,
// or 0 in frontend mode (capacity lives in remote agents).
func (s *Server) workerCount() int {
	if s.agent != nil {
		return s.agent.Workers()
	}
	return 0
}

// handleReady is GET /readyz: readiness. 503 while draining or closed —
// load balancers stop routing here before liveness ever flips — with the
// journal replay summary in the body.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	code := http.StatusOK
	status := "ready"
	switch {
	case s.closed.Load():
		code = http.StatusServiceUnavailable
		status = "closed"
	case s.draining.Load():
		code = http.StatusServiceUnavailable
		status = "draining"
	}
	qs := s.queue.Stats()
	writeJSON(w, code, map[string]any{
		"status":          status,
		"journal":         s.cfg.JournalPath != "",
		"replay_records":  s.replay.Records,
		"replay_requeued": s.replay.Requeued,
		"replay_torn":     s.replay.TornBytes,
		"queue_ready":     qs.Ready,
		"queue_delayed":   qs.Delayed,
		"queue_leased":    qs.Leased,
		"dead_letters":    qs.Dead,
	})
}

// handleMetrics is GET /metrics in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.write(w, s)
	s.metrics.countRequest("/metrics", http.StatusOK)
}
