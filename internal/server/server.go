// Package server implements the kecss-serve HTTP API: a network-facing
// front end over a shared kecss.Pool with a content-addressed result cache.
//
// Endpoints:
//
//	POST /v1/solve        solve synchronously (wire.SolveRequest → wire.SolveResponse)
//	POST /v1/jobs         enqueue an async solve (202 + wire.JobResponse)
//	GET  /v1/jobs/{id}    poll an async solve
//	GET  /healthz         liveness/readiness (503 while draining)
//	GET  /metrics         Prometheus text metrics
//
// Every request is content-addressed by wire.Digest(graph, spec); because
// the solver stack is deterministic in (graph, spec), a digest hit can be
// served from the LRU cache with byte-identical results to a fresh solve.
// Concurrent identical misses are deduplicated (single-flight): one request
// solves, the rest wait for its result. Distinct misses are admitted up to
// a bounded queue; beyond that the server sheds load explicitly with
// 429 + Retry-After rather than queueing unboundedly.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	kecss "repro"
	"repro/internal/wire"
)

// Config sizes a Server. The zero value gets sensible defaults from New.
type Config struct {
	// Workers is the solver pool size (0 = GOMAXPROCS).
	Workers int
	// CacheSize is the maximum number of cached results (0 = 4096;
	// negative disables the cache).
	CacheSize int
	// QueueDepth bounds how many non-cached solves may be admitted
	// (queued + running) before the server answers 429 (0 = 4×workers).
	QueueDepth int
	// JobHistory bounds how many finished async jobs stay pollable
	// (0 = 1024). Oldest finished jobs are evicted first.
	JobHistory int
}

// Server is the HTTP solve service. Create with New, mount Handler, stop
// with Drain (stop accepting, wait for in-flight solves) then Close.
type Server struct {
	cfg     Config
	pool    *kecss.Pool
	cache   *resultCache
	sem     chan struct{} // admission tokens for non-cached solves
	metrics *metrics
	jobs    *jobStore
	start   time.Time

	// drainMu makes admission atomic with the draining flag: admitSolve
	// holds it shared around (check draining, Add to inflight), Drain holds
	// it exclusively while setting the flag — so once Drain owns the flag,
	// no late admission can Add to a WaitGroup that Drain is Waiting on.
	drainMu  sync.RWMutex
	draining atomic.Bool
	inflight sync.WaitGroup // every admitted solve, sync or async

	flightMu sync.Mutex
	flight   map[string]*flightCall
}

// flightCall is one in-progress cold solve that duplicate requests wait on.
type flightCall struct {
	done chan struct{}
	resp *wire.SolveResponse
	err  *solveError
}

// solveError is a solve failure with its HTTP classification.
type solveError struct {
	code int
	msg  string
}

// maxBodyBytes bounds request bodies; a million-edge graph is ~20 MB of
// JSON, well inside this.
const maxBodyBytes = 64 << 20

// New starts a Server with its own solver pool.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 0 // kecss.NewPool reads 0 as GOMAXPROCS
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 4096
	}
	pool := kecss.NewPool(cfg.Workers)
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * pool.Workers()
	}
	if cfg.JobHistory <= 0 {
		cfg.JobHistory = 1024
	}
	return &Server{
		cfg:     cfg,
		pool:    pool,
		cache:   newResultCache(cfg.CacheSize),
		sem:     make(chan struct{}, cfg.QueueDepth),
		metrics: newMetrics(),
		jobs:    newJobStore(cfg.JobHistory),
		flight:  make(map[string]*flightCall),
		start:   time.Now(),
	}
}

// Handler returns the server's routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.instrument("/v1/solve", s.handleSolve))
	mux.HandleFunc("POST /v1/jobs", s.instrument("/v1/jobs", s.handleJobCreate))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("/v1/jobs/{id}", s.handleJobGet))
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealth))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// StartDrain flips the server into draining mode: /healthz turns 503 (so
// load balancers stop routing here) and new solves are refused, while
// cached results keep being served. Call it before shutting the HTTP
// listener down; Drain calls it implicitly.
func (s *Server) StartDrain() {
	s.drainMu.Lock()
	s.draining.Store(true)
	s.drainMu.Unlock()
}

// Drain stops admitting new solves and waits (bounded by ctx) for in-flight
// ones — the SIGTERM half of graceful shutdown; pair with Close once the
// HTTP listener has stopped.
func (s *Server) Drain(ctx context.Context) error {
	s.StartDrain()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain interrupted with solves in flight: %w", ctx.Err())
	}
}

// Close releases the solver pool. Requests arriving afterwards fail cleanly
// (the pool reports kecss.ErrPoolClosed, mapped to 503). Idempotent.
func (s *Server) Close() {
	s.StartDrain()
	s.pool.Close()
}

// instrument wraps a handler with request counting and latency observation.
func (s *Server) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		s.metrics.countRequest(path, rec.code)
		if path == "/v1/solve" {
			s.metrics.requestLatency.observe(time.Since(start))
		}
	}
}

type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, wire.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// decodeRequest parses and validates a solve request body and computes its
// graph and content digest. A nil return with code != 0 means the response
// was already written.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request) (*solveWork, bool) {
	var req wire.SolveRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return nil, false
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return nil, false
	}
	g, err := req.Graph.ToGraph()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return nil, false
	}
	solver, err := kecss.ParseSolver(req.Solver)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return nil, false
	}
	return &solveWork{
		digest: wire.Digest(g, req.SolveSpec),
		task: kecss.Task{
			Graph:  g,
			Solver: solver,
			K:      req.K,
			Opts:   OptionsFromSpec(req.SolveSpec),
		},
	}, true
}

// solveWork is a decoded, validated request: its content digest and the
// pool task it maps to.
type solveWork struct {
	digest string
	task   kecss.Task
}

// OptionsFromSpec maps the wire-level solver knobs onto kecss options —
// the single definition of how a network request configures a solve, shared
// with cmd/kecss-load's direct-solve verification.
func OptionsFromSpec(spec wire.SolveSpec) []kecss.Option {
	opts := []kecss.Option{kecss.WithSeed(spec.Seed)}
	if spec.SimulateMST {
		opts = append(opts, kecss.WithSimulatedMST())
	}
	if spec.VoteDenom > 0 {
		opts = append(opts, kecss.WithVoteDenominator(spec.VoteDenom))
	}
	if spec.LabelBits > 0 {
		opts = append(opts, kecss.WithLabelBits(spec.LabelBits))
	}
	if spec.PhaseLen > 0 {
		opts = append(opts, kecss.WithPhaseLength(spec.PhaseLen))
	}
	return opts
}

// handleSolve is POST /v1/solve: cache hit → immediate response; miss →
// admit (or 429), solve on the pool, cache, respond.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	work, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	if resp, ok := s.cache.get(work.digest); ok {
		s.metrics.cacheHits.Add(1)
		s.serveCached(w, resp)
		return
	}
	resp, serr := s.solveShared(work, func() (*wire.SolveResponse, *solveError) {
		if serr := s.admitSolve(); serr != nil {
			return nil, serr
		}
		defer s.releaseSolve()
		return s.solveOnPool(work)
	})
	if serr != nil {
		if serr.code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
			s.metrics.throttled.Add(1)
		}
		writeError(w, serr.code, "%s", serr.msg)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// serveCached re-serves a cached response (value copied; cache entries are
// immutable).
func (s *Server) serveCached(w http.ResponseWriter, resp *wire.SolveResponse) {
	out := *resp
	out.Cached = true
	writeJSON(w, http.StatusOK, &out)
}

// solveShared runs a cold solve with single-flight deduplication: the first
// caller for a digest becomes the leader and runs solve (the cache miss is
// counted once, on the leader), every concurrent duplicate waits for the
// leader's result — a cache-equivalent hit — instead of burning a queue
// slot on identical work. Shared by the sync and async paths, which differ
// only in the solve closure's admission handling.
func (s *Server) solveShared(work *solveWork, solve func() (*wire.SolveResponse, *solveError)) (*wire.SolveResponse, *solveError) {
	s.flightMu.Lock()
	if fc, ok := s.flight[work.digest]; ok {
		s.flightMu.Unlock()
		<-fc.done
		if fc.err != nil {
			return nil, fc.err
		}
		s.metrics.cacheHits.Add(1)
		out := *fc.resp
		out.Cached = true
		return &out, nil
	}
	fc := &flightCall{done: make(chan struct{})}
	s.flight[work.digest] = fc
	s.flightMu.Unlock()

	s.metrics.cacheMisses.Add(1)
	fc.resp, fc.err = solve()
	s.flightMu.Lock()
	delete(s.flight, work.digest)
	s.flightMu.Unlock()
	close(fc.done)
	return fc.resp, fc.err
}

// admitSolve reserves a queue slot for one cold solve, refusing while
// draining (503) or when the queue is full (429). Each successful call must
// be paired with releaseSolve. The drainMu read lock makes the draining
// check atomic with the inflight registration (see drainMu).
func (s *Server) admitSolve() *solveError {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining.Load() {
		return &solveError{http.StatusServiceUnavailable, "server is draining"}
	}
	select {
	case s.sem <- struct{}{}:
	default:
		return &solveError{http.StatusTooManyRequests,
			fmt.Sprintf("solve queue full (%d in flight); retry later", cap(s.sem))}
	}
	s.metrics.queueDepth.Add(1)
	s.inflight.Add(1)
	return nil
}

// releaseSolve returns an admitSolve reservation.
func (s *Server) releaseSolve() {
	<-s.sem
	s.metrics.queueDepth.Add(-1)
	s.inflight.Done()
}

// solveOnPool runs one already-admitted solve on the shared pool and caches
// the response. Callers hold a queue slot.
func (s *Server) solveOnPool(work *solveWork) (*wire.SolveResponse, *solveError) {
	start := time.Now()
	results := s.pool.Sweep([]kecss.Task{work.task})
	elapsed := time.Since(start)
	res := results[0]
	if res.Err != nil {
		if errors.Is(res.Err, kecss.ErrPoolClosed) {
			return nil, &solveError{http.StatusServiceUnavailable, "server is shut down"}
		}
		// Anything else is an input the solver rejected (wrong connectivity,
		// bad k, ...): the request was well-formed but unsolvable.
		return nil, &solveError{http.StatusUnprocessableEntity, res.Err.Error()}
	}
	s.metrics.solveLatency.observe(elapsed)
	resp := &wire.SolveResponse{
		Digest:       work.digest,
		Edges:        res.Edges,
		Weight:       res.Weight,
		Rounds:       res.Rounds,
		ResultDigest: wire.SolveResultDigest(res.Edges, res.Weight, res.Rounds),
		SolveMillis:  float64(elapsed) / float64(time.Millisecond),
	}
	s.cache.add(work.digest, resp)
	return resp, nil
}

// handleHealth is GET /healthz: 200 with a status document while serving,
// 503 once draining begins (so load balancers stop routing here).
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	code := http.StatusOK
	status := "ok"
	if s.draining.Load() {
		code = http.StatusServiceUnavailable
		status = "draining"
	}
	writeJSON(w, code, map[string]any{
		"status":         status,
		"workers":        s.pool.Workers(),
		"cache_entries":  s.cache.len(),
		"queue_depth":    s.metrics.queueDepth.Load(),
		"queue_capacity": cap(s.sem),
		"uptime_seconds": int64(time.Since(s.start).Seconds()),
	})
}

// handleMetrics is GET /metrics in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.write(w, s)
	s.metrics.countRequest("/metrics", http.StatusOK)
}
