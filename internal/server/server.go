// Package server implements the kecss-serve HTTP API: a network-facing
// front end over a shared kecss.Pool with a content-addressed result cache
// and a crash-safe job layer.
//
// Endpoints:
//
//	POST /v1/solve        solve synchronously (wire.SolveRequest → wire.SolveResponse)
//	POST /v1/jobs         enqueue an async solve (202 + wire.JobResponse)
//	GET  /v1/jobs/{id}    poll an async solve
//	GET  /v1/deadletters  jobs that exhausted their retry budget
//	GET  /healthz         liveness (503 only once the server is closed)
//	GET  /readyz          readiness (503 during replay, drain and shutdown)
//	GET  /metrics         Prometheus text metrics
//
// Every request is content-addressed by wire.Digest(graph, spec); because
// the solver stack is deterministic in (graph, spec), a digest hit can be
// served from the LRU cache with byte-identical results to a fresh solve.
//
// # The job layer
//
// A cache miss does not solve inline. It becomes a job: journaled to the
// write-ahead log (when Config.JournalPath is set), enqueued on a leased
// work queue, and solved by a worker goroutine that claims it under a TTL
// lease. Sync requests block on the job's completion; async requests poll
// it. Concurrent identical misses share one job (single-flight by digest),
// and a client that disconnects mid-solve does not abandon the job — the
// solve completes into the cache for the waiters and the future.
//
// Workers that stall past the lease TTL lose the lease and the job is
// redelivered with capped exponential backoff; a job that exhausts its
// retry budget is dead-lettered (visible at /v1/deadletters) and reported
// to its waiters as a 503. Admission is bounded: beyond Config.QueueDepth
// in-flight jobs the server sheds load with 429 + Retry-After scaled to
// the backlog, rather than queueing unboundedly.
//
// # Crash safety
//
// With a journal configured, every accepted job is durable before its
// 202/200 is written: accepted → leased → done/failed records are
// fsync-batched to the log, and startup replay reconstructs the job table
// — finished jobs come back pollable with their results (which also
// repopulate the result cache), unfinished jobs are re-enqueued and solved
// again. Completions are deduplicated per job ID, so a job accepted once
// is journaled done exactly once even across lease expiries, duplicate
// deliveries and restarts.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	kecss "repro"
	"repro/internal/chaos"
	"repro/internal/journal"
	"repro/internal/queue"
	"repro/internal/wire"
)

// Config sizes a Server. The zero value gets sensible defaults from New.
type Config struct {
	// Workers is the solver pool size (0 = GOMAXPROCS).
	Workers int
	// SolveWorkers is how many queue-consumer goroutines run solves
	// (0 = pool workers).
	SolveWorkers int
	// CacheSize is the maximum number of cached results (0 = 4096;
	// negative disables the cache).
	CacheSize int
	// QueueDepth bounds how many jobs may be in flight (queued, delayed or
	// running) before the server answers 429 (0 = 4×workers).
	QueueDepth int
	// JobHistory bounds how many finished async jobs stay pollable
	// (0 = 1024). Oldest finished jobs are evicted first.
	JobHistory int
	// JournalPath enables the durable job journal; empty keeps the job
	// layer ephemeral (the queue still runs, nothing survives a restart).
	JournalPath string
	// LeaseTTL is how long a worker may hold a job before it is
	// redelivered (0 = 30s).
	LeaseTTL time.Duration
	// MaxAttempts is the delivery budget before a job is dead-lettered
	// (0 = 5).
	MaxAttempts int
	// BackoffBase and BackoffMax shape the redelivery backoff
	// (0 = 50ms / 5s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed drives the queue's retry jitter.
	Seed int64
	// Chaos is the fault-injection plan (nil in production).
	Chaos *chaos.Injector
}

// Server is the HTTP solve service. Create with New, mount Handler, stop
// with Drain (stop accepting, wait for in-flight jobs) then Close.
type Server struct {
	cfg     Config
	pool    *kecss.Pool
	cache   *resultCache
	sem     chan struct{} // admission tokens for new jobs
	metrics *metrics
	jobs    *jobStore
	queue   *queue.Queue
	jnl     *journal.Journal // nil when ephemeral
	inj     *chaos.Injector
	start   time.Time
	replay  ReplayInfo

	// drainMu makes admission atomic with the draining flag: ensureJob
	// holds it shared around (check draining, Add to inflight), Drain holds
	// it exclusively while setting the flag — so once Drain owns the flag,
	// no late admission can Add to a WaitGroup that Drain is Waiting on.
	drainMu  sync.RWMutex
	draining atomic.Bool
	closed   atomic.Bool
	inflight sync.WaitGroup // every unfinished job

	flightMu sync.Mutex
	flight   map[string]*job // digest → active job (single-flight)

	workerCancel context.CancelFunc
	workerWG     sync.WaitGroup
	closeOnce    sync.Once
}

// ReplayInfo summarizes what startup recovered from the journal.
type ReplayInfo struct {
	// Records is how many valid journal records were replayed.
	Records int
	// Completed is how many finished jobs (done or failed) came back.
	Completed int
	// Requeued is how many unfinished jobs were re-enqueued.
	Requeued int
	// TornBytes is the size of the truncated torn tail (0 = clean).
	TornBytes int64
}

// solveError is a solve failure with its HTTP classification. retryable
// marks transient failures the queue should redeliver (pool shutdown mid-
// solve) as opposed to permanent input errors.
type solveError struct {
	code      int
	msg       string
	retryable bool
}

// maxBodyBytes bounds request bodies; a million-edge graph is ~20 MB of
// JSON, well inside this.
const maxBodyBytes = 64 << 20

// New starts a Server with its own solver pool, work queue and (when
// configured) journal; journal replay happens here, so once New returns
// the server is ready.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 0 // kecss.NewPool reads 0 as GOMAXPROCS
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 4096
	}
	pool := kecss.NewPool(cfg.Workers)
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * pool.Workers()
	}
	if cfg.JobHistory <= 0 {
		cfg.JobHistory = 1024
	}
	if cfg.SolveWorkers <= 0 {
		cfg.SolveWorkers = pool.Workers()
	}
	s := &Server{
		cfg:     cfg,
		pool:    pool,
		cache:   newResultCache(cfg.CacheSize),
		sem:     make(chan struct{}, cfg.QueueDepth),
		metrics: newMetrics(),
		jobs:    newJobStore(cfg.JobHistory),
		inj:     cfg.Chaos,
		flight:  make(map[string]*job),
		start:   time.Now(),
	}
	s.queue = queue.New(queue.Config{
		LeaseTTL:    cfg.LeaseTTL,
		MaxAttempts: cfg.MaxAttempts,
		BackoffBase: cfg.BackoffBase,
		BackoffMax:  cfg.BackoffMax,
		Seed:        cfg.Seed,
		OnEvent:     s.metrics.countQueueEvent,
		OnDead:      s.onDeadLetter,
	})
	if cfg.JournalPath != "" {
		jnl, rep, err := journal.Open(cfg.JournalPath, journal.Options{
			Inject:  cfg.Chaos,
			OnFsync: s.metrics.journalFsync.observe,
		})
		if err != nil {
			s.queue.Close()
			pool.Close()
			return nil, err
		}
		s.jnl = jnl
		if err := s.applyReplay(rep); err != nil {
			s.queue.Close()
			pool.Close()
			jnl.Close()
			return nil, err
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.workerCancel = cancel
	for i := 0; i < cfg.SolveWorkers; i++ {
		s.workerWG.Add(1)
		go s.worker(ctx, fmt.Sprintf("w%d", i))
	}
	return s, nil
}

// Handler returns the server's routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.instrument("/v1/solve", s.handleSolve))
	mux.HandleFunc("POST /v1/jobs", s.instrument("/v1/jobs", s.handleJobCreate))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("/v1/jobs/{id}", s.handleJobGet))
	mux.HandleFunc("GET /v1/deadletters", s.instrument("/v1/deadletters", s.handleDeadLetters))
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealth))
	mux.HandleFunc("GET /readyz", s.instrument("/readyz", s.handleReady))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// Replay reports what startup recovered from the journal.
func (s *Server) Replay() ReplayInfo { return s.replay }

// StartDrain flips the server into draining mode: /readyz turns 503 (so
// load balancers stop routing here) and new jobs are refused, while cached
// results keep being served and in-flight jobs run to completion. Call it
// before shutting the HTTP listener down; Drain calls it implicitly.
func (s *Server) StartDrain() {
	s.drainMu.Lock()
	s.draining.Store(true)
	s.drainMu.Unlock()
}

// Drain stops admitting new jobs and waits (bounded by ctx) for in-flight
// ones — including jobs waiting out a retry backoff — the SIGTERM half of
// graceful shutdown; pair with Close once the HTTP listener has stopped.
func (s *Server) Drain(ctx context.Context) error {
	s.StartDrain()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain interrupted with jobs in flight: %w", ctx.Err())
	}
}

// Close stops the workers, the queue, the journal and the solver pool.
// /healthz turns 503. Requests arriving afterwards fail cleanly. Idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.StartDrain()
		s.closed.Store(true)
		s.workerCancel()
		s.queue.Close()
		s.workerWG.Wait()
		// Unfinished jobs (abandoned mid-drain) keep their journal state and
		// will be replayed by the next incarnation; release their waiters.
		s.flightMu.Lock()
		stranded := make([]*job, 0, len(s.flight))
		for _, j := range s.flight {
			stranded = append(stranded, j)
		}
		s.flightMu.Unlock()
		for _, j := range stranded {
			if j.tryFinish() {
				s.finishJob(j, nil, &solveError{code: http.StatusServiceUnavailable, msg: "server shut down before the job completed"})
			}
		}
		s.pool.Close()
		if s.jnl != nil {
			s.jnl.Close()
		}
	})
}

// instrument wraps a handler with request counting and latency observation.
func (s *Server) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		s.metrics.countRequest(path, rec.code)
		if path == "/v1/solve" {
			s.metrics.requestLatency.observe(time.Since(start))
		}
	}
}

type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, wire.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeSolveError writes a classified solve failure, attaching Retry-After
// backpressure hints to 429 (queue full — scaled to the backlog) and 503
// (draining) so clients back off instead of hammering.
func (s *Server) writeSolveError(w http.ResponseWriter, serr *solveError) {
	switch serr.code {
	case http.StatusTooManyRequests:
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.retryAfterSeconds()))
		s.metrics.throttled.Add(1)
	case http.StatusServiceUnavailable:
		w.Header().Set("Retry-After", "1")
	}
	writeError(w, serr.code, "%s", serr.msg)
}

// retryAfterSeconds estimates how long a shed client should wait: the
// backlog divided by the worker parallelism, clamped to [1, 30] seconds.
func (s *Server) retryAfterSeconds() int {
	depth := s.queue.Depth()
	workers := s.cfg.SolveWorkers
	if workers < 1 {
		workers = 1
	}
	secs := 1 + depth/workers
	if secs > 30 {
		secs = 30
	}
	return secs
}

// decodeRequest parses and validates a solve request body, computes its
// graph and content digest, and re-encodes the request canonically for the
// journal. A false return means the response was already written.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request) (*solveWork, json.RawMessage, bool) {
	var req wire.SolveRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return nil, nil, false
	}
	work, raw, err := buildWork(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return nil, nil, false
	}
	if req.TimeoutMillis > 0 {
		work.deadline = time.Now().Add(time.Duration(req.TimeoutMillis) * time.Millisecond)
	} else if dl, ok := r.Context().Deadline(); ok {
		work.deadline = dl
	}
	return work, raw, true
}

// buildWork validates a request and maps it to a pool task — the single
// decode path shared by the HTTP handlers and journal replay.
func buildWork(req *wire.SolveRequest) (*solveWork, json.RawMessage, error) {
	if err := req.Validate(); err != nil {
		return nil, nil, err
	}
	g, err := req.Graph.ToGraph()
	if err != nil {
		return nil, nil, err
	}
	solver, err := kecss.ParseSolver(req.Solver)
	if err != nil {
		return nil, nil, err
	}
	raw, err := json.Marshal(req)
	if err != nil {
		return nil, nil, err
	}
	return &solveWork{
		digest: wire.Digest(g, req.SolveSpec),
		task: kecss.Task{
			Graph:  g,
			Solver: solver,
			K:      req.K,
			Opts:   OptionsFromSpec(req.SolveSpec),
		},
	}, raw, nil
}

// solveWork is a decoded, validated request: its content digest, the pool
// task it maps to, and the client deadline (zero = none).
type solveWork struct {
	digest   string
	task     kecss.Task
	deadline time.Time
}

// OptionsFromSpec maps the wire-level solver knobs onto kecss options —
// the single definition of how a network request configures a solve, shared
// with cmd/kecss-load's direct-solve verification.
func OptionsFromSpec(spec wire.SolveSpec) []kecss.Option {
	opts := []kecss.Option{kecss.WithSeed(spec.Seed)}
	if spec.SimulateMST {
		opts = append(opts, kecss.WithSimulatedMST())
	}
	if spec.VoteDenom > 0 {
		opts = append(opts, kecss.WithVoteDenominator(spec.VoteDenom))
	}
	if spec.LabelBits > 0 {
		opts = append(opts, kecss.WithLabelBits(spec.LabelBits))
	}
	if spec.PhaseLen > 0 {
		opts = append(opts, kecss.WithPhaseLength(spec.PhaseLen))
	}
	return opts
}

// handleSolve is POST /v1/solve: cache hit → immediate response; miss →
// join or create the digest's job (admission may shed with 429/503) and
// wait for it. A waiter that times out or disconnects leaves the job
// running for everyone else.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	work, rawReq, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	if resp, ok := s.cache.get(work.digest); ok {
		s.metrics.cacheHits.Add(1)
		s.serveCached(w, resp)
		return
	}
	j, created, serr := s.ensureJob(work, rawReq)
	if serr != nil {
		s.writeSolveError(w, serr)
		return
	}
	s.awaitJob(w, r, j, work, created)
}

// awaitJob blocks a sync request on a job's completion, honouring the
// client deadline and surviving client disconnects (the job keeps running;
// the disconnect is a metric, not a failure).
func (s *Server) awaitJob(w http.ResponseWriter, r *http.Request, j *job, work *solveWork, created bool) {
	var deadlineC <-chan time.Time
	if !work.deadline.IsZero() {
		t := time.NewTimer(time.Until(work.deadline))
		defer t.Stop()
		deadlineC = t.C
	}
	select {
	case <-j.done:
	case <-deadlineC:
		writeError(w, http.StatusGatewayTimeout,
			"deadline exceeded waiting for job %s (the solve continues; retry to hit the cache)", j.id)
		return
	case <-r.Context().Done():
		// Client went away: count it and let the shared job finish for the
		// cache and any other waiters. No response can be written.
		s.metrics.clientDisconnects.Add(1)
		return
	}
	snap := j.snapshot()
	if snap.Error != "" {
		j.mu.Lock()
		serr := j.err
		j.mu.Unlock()
		s.writeSolveError(w, serr)
		return
	}
	resp := *snap.Result
	if !created {
		// A joiner shares the creator's solve: a cache-equivalent hit.
		resp.Cached = true
	}
	if resp.Digest != work.digest {
		// Shared job solved the same digest by construction; this is a bug.
		writeError(w, http.StatusInternalServerError, "job/digest mismatch")
		return
	}
	writeJSON(w, http.StatusOK, &resp)
}

// serveCached re-serves a cached response (value copied; cache entries are
// immutable).
func (s *Server) serveCached(w http.ResponseWriter, resp *wire.SolveResponse) {
	out := *resp
	out.Cached = true
	writeJSON(w, http.StatusOK, &out)
}

// ensureJob returns the active job for work's digest, creating (admitting,
// journaling and enqueueing) it if none is in flight. Single-flight: one
// durable job per digest, shared by every concurrent sync waiter and async
// submission. The accepted record is durable before ensureJob returns. The
// second return reports whether this caller created the job (false = joined
// an existing flight).
func (s *Server) ensureJob(work *solveWork, rawReq json.RawMessage) (*job, bool, *solveError) {
	s.flightMu.Lock()
	if j, ok := s.flight[work.digest]; ok {
		s.flightMu.Unlock()
		s.metrics.cacheHits.Add(1) // joins a flight: a cache-equivalent hit
		return j, false, nil
	}
	serr := s.admitJob()
	if serr != nil {
		s.flightMu.Unlock()
		return nil, false, serr
	}
	s.metrics.cacheMisses.Add(1)
	j := s.jobs.create(work.digest)
	j.work = work
	j.rawReq = rawReq
	j.deadline = work.deadline
	j.admitted = true
	s.flight[work.digest] = j
	s.flightMu.Unlock()

	if err := s.journalAppend(&journal.Record{
		Type:     journal.TypeAccepted,
		JobID:    j.id,
		Digest:   j.digest,
		Deadline: unixOrZero(j.deadline),
		Request:  rawReq,
	}); err != nil {
		if j.tryFinish() {
			s.finishJob(j, nil, &solveError{code: http.StatusServiceUnavailable, msg: fmt.Sprintf("journal unavailable: %v", err)})
		}
		return nil, false, &solveError{code: http.StatusServiceUnavailable, msg: "journal unavailable"}
	}
	if err := s.queue.Enqueue(&queue.Job{
		ID:       j.id,
		Digest:   j.digest,
		Deadline: j.deadline,
		Payload:  j,
	}); err != nil {
		if j.tryFinish() {
			s.finishJob(j, nil, &solveError{code: http.StatusServiceUnavailable, msg: "server is shutting down"})
		}
		return nil, false, &solveError{code: http.StatusServiceUnavailable, msg: "server is shutting down"}
	}
	return j, true, nil
}

func unixOrZero(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// admitJob reserves an admission slot for one new job, refusing while
// draining (503) or when the backlog is full (429). The drainMu read lock
// makes the draining check atomic with the inflight registration.
func (s *Server) admitJob() *solveError {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining.Load() {
		return &solveError{code: http.StatusServiceUnavailable, msg: "server is draining"}
	}
	select {
	case s.sem <- struct{}{}:
	default:
		return &solveError{code: http.StatusTooManyRequests, msg: fmt.Sprintf("solve queue full (%d jobs in flight); retry later", cap(s.sem))}
	}
	s.inflight.Add(1)
	return nil
}

// finishJob publishes a job's outcome and releases its resources: the
// flight entry, the admission slot and the drain waiter. The caller must
// have won j.tryFinish (completion is exactly-once per job).
func (s *Server) finishJob(j *job, resp *wire.SolveResponse, serr *solveError) {
	j.finish(resp, serr)
	s.flightMu.Lock()
	if s.flight[j.digest] == j {
		delete(s.flight, j.digest)
	}
	s.flightMu.Unlock()
	if j.admitted {
		<-s.sem
	}
	s.inflight.Done()
}

// journalAppend durably logs rec, or does nothing in ephemeral mode.
func (s *Server) journalAppend(rec *journal.Record) error {
	if s.jnl == nil {
		return nil
	}
	return s.jnl.Append(rec)
}

// worker is one queue consumer: claim → journal lease → solve → journal
// outcome → finish → ack, with the chaos plan's crash points threaded
// through at the spots a real crash would hit.
func (s *Server) worker(ctx context.Context, name string) {
	defer s.workerWG.Done()
	for {
		lease, err := s.queue.Claim(ctx)
		if err != nil {
			return // ctx cancelled or queue closed
		}
		s.runLease(name, lease)
	}
}

// runLease executes one claimed delivery of a job.
func (s *Server) runLease(name string, lease *queue.Lease) {
	j := lease.Job.Payload.(*job)
	if j.finished() {
		// Duplicate delivery of an already-completed job (lease expired
		// after the work was done); nothing to do.
		lease.Ack()
		return
	}
	if err := s.journalAppend(&journal.Record{
		Type:    journal.TypeLeased,
		JobID:   j.id,
		Digest:  j.digest,
		Attempt: lease.Job.Attempt,
		Worker:  name,
	}); err != nil {
		lease.Nack(fmt.Sprintf("journal: %v", err))
		return
	}
	s.inj.At(chaos.QueueAfterLease) // planned crash: lease durable, no solve
	j.setRunning(lease.Job.Attempt)

	if dl := lease.Job.Deadline; !dl.IsZero() && time.Now().After(dl) {
		s.completeJob(j, lease, nil, &solveError{code: http.StatusGatewayTimeout, msg: "deadline exceeded before the solve started"})
		return
	}
	// The digest may have been solved by an earlier delivery of another
	// job between enqueue and claim.
	if resp, ok := s.cache.get(j.digest); ok {
		out := *resp
		out.Cached = true
		s.completeJob(j, lease, &out, nil)
		return
	}
	s.inj.At(chaos.WorkerSolve) // planned stall: outlive the lease TTL
	resp, serr := s.solveOnPool(j.work)
	if serr != nil && serr.retryable {
		lease.Nack(serr.msg)
		return
	}
	s.inj.At(chaos.WorkerBeforeDone) // planned crash: solved, not journaled
	s.completeJob(j, lease, resp, serr)
}

// completeJob journals a job's outcome and finishes it, exactly once per
// job: duplicate deliveries lose the tryFinish race and just release their
// lease. The outcome record is durable before waiters are released.
func (s *Server) completeJob(j *job, lease *queue.Lease, resp *wire.SolveResponse, serr *solveError) {
	if !j.tryFinish() {
		lease.Ack()
		return
	}
	rec := &journal.Record{JobID: j.id, Digest: j.digest}
	if serr != nil {
		rec.Type = journal.TypeFailed
		rec.Error = serr.msg
	} else {
		rec.Type = journal.TypeDone
		if raw, err := json.Marshal(resp); err == nil {
			rec.Result = raw
		}
	}
	if err := s.journalAppend(rec); err != nil {
		// The outcome could not be made durable; fail the waiters (the next
		// incarnation will re-solve from the accepted record).
		serr = &solveError{code: http.StatusServiceUnavailable, msg: fmt.Sprintf("journal unavailable: %v", err)}
		resp = nil
	}
	s.finishJob(j, resp, serr)
	lease.Ack()
}

// onDeadLetter finishes a job the queue gave up on (retry budget spent).
func (s *Server) onDeadLetter(d queue.DeadLetter) {
	j, ok := d.Job.Payload.(*job)
	if !ok {
		return
	}
	_ = s.journalAppend(&journal.Record{
		Type:    journal.TypeDead,
		JobID:   j.id,
		Digest:  j.digest,
		Attempt: d.Job.Attempt,
		Error:   d.Reason,
	})
	if j.tryFinish() {
		s.finishJob(j, nil, &solveError{code: http.StatusServiceUnavailable, msg: fmt.Sprintf("job %s dead-lettered after %d attempts: %s", j.id, d.Job.Attempt, d.Reason)})
	}
}

// solveOnPool runs one solve on the shared pool and caches the response.
func (s *Server) solveOnPool(work *solveWork) (*wire.SolveResponse, *solveError) {
	start := time.Now()
	results := s.pool.Sweep([]kecss.Task{work.task})
	elapsed := time.Since(start)
	res := results[0]
	if res.Err != nil {
		if errors.Is(res.Err, kecss.ErrPoolClosed) {
			return nil, &solveError{code: http.StatusServiceUnavailable, msg: "server is shut down", retryable: true}
		}
		// Anything else is an input the solver rejected (wrong connectivity,
		// bad k, ...): the request was well-formed but unsolvable — a
		// permanent failure, not retried.
		return nil, &solveError{code: http.StatusUnprocessableEntity, msg: res.Err.Error()}
	}
	s.metrics.solveLatency.observe(elapsed)
	resp := &wire.SolveResponse{
		Digest:       work.digest,
		Edges:        res.Edges,
		Weight:       res.Weight,
		Rounds:       res.Rounds,
		ResultDigest: wire.SolveResultDigest(res.Edges, res.Weight, res.Rounds),
		SolveMillis:  float64(elapsed) / float64(time.Millisecond),
	}
	s.cache.add(work.digest, resp)
	return resp, nil
}

// applyReplay reconstructs the job table from journal records: finished
// jobs come back pollable (results repopulate the cache), unfinished jobs
// are re-enqueued with their attempt count carried over.
func (s *Server) applyReplay(rep *journal.Replay) error {
	type jobState struct {
		accepted *journal.Record
		attempts int
		outcome  *journal.Record // done, failed or dead
	}
	states := make(map[string]*jobState)
	order := make([]string, 0, len(rep.Records))
	for i := range rep.Records {
		rec := &rep.Records[i]
		st := states[rec.JobID]
		if st == nil {
			st = &jobState{}
			states[rec.JobID] = st
			order = append(order, rec.JobID)
		}
		switch rec.Type {
		case journal.TypeAccepted:
			st.accepted = rec
		case journal.TypeLeased:
			if rec.Attempt > st.attempts {
				st.attempts = rec.Attempt
			}
		case journal.TypeDone, journal.TypeFailed, journal.TypeDead:
			st.outcome = rec
		}
	}
	s.replay = ReplayInfo{Records: len(rep.Records), TornBytes: rep.TornBytes}
	for _, id := range order {
		st := states[id]
		if st.accepted == nil {
			// Lease/outcome records whose accepted record was torn away are
			// orphans; the job was never acked to a client, skip it.
			continue
		}
		rec := st.accepted
		j := newJob(id, rec.Digest)
		if st.outcome != nil {
			s.replay.Completed++
			switch st.outcome.Type {
			case journal.TypeDone:
				var resp wire.SolveResponse
				if err := json.Unmarshal(st.outcome.Result, &resp); err != nil {
					return fmt.Errorf("server: replaying job %s result: %w", id, err)
				}
				j.finishing = true
				j.finish(&resp, nil)
				s.cache.add(rec.Digest, &resp)
			case journal.TypeFailed:
				j.finishing = true
				j.finish(nil, &solveError{code: http.StatusUnprocessableEntity, msg: st.outcome.Error})
			case journal.TypeDead:
				j.finishing = true
				j.finish(nil, &solveError{code: http.StatusServiceUnavailable, msg: fmt.Sprintf("job %s dead-lettered after %d attempts: %s", id, st.outcome.Attempt, st.outcome.Error)})
			}
			s.jobs.insert(j)
			continue
		}
		// Unfinished: rebuild the work from the journaled request and
		// re-enqueue. Replayed jobs bypass admission (they were admitted by
		// the previous incarnation) but count toward drain.
		var req wire.SolveRequest
		if err := json.Unmarshal(rec.Request, &req); err != nil {
			return fmt.Errorf("server: replaying job %s request: %w", id, err)
		}
		work, rawReq, err := buildWork(&req)
		if err != nil {
			return fmt.Errorf("server: replaying job %s request: %w", id, err)
		}
		j.work = work
		j.rawReq = rawReq
		if rec.Deadline != 0 {
			j.deadline = time.Unix(0, rec.Deadline)
		}
		s.jobs.insert(j)
		s.flightMu.Lock()
		s.flight[j.digest] = j
		s.flightMu.Unlock()
		s.inflight.Add(1)
		s.replay.Requeued++
		if err := s.queue.Enqueue(&queue.Job{
			ID:       j.id,
			Digest:   j.digest,
			Deadline: j.deadline,
			Payload:  j,
			Attempt:  st.attempts,
		}); err != nil {
			return fmt.Errorf("server: re-enqueueing job %s: %w", id, err)
		}
	}
	return nil
}

// handleHealth is GET /healthz: liveness. 200 while the process can serve
// anything at all (including cache hits during drain); 503 only once Close
// has torn the serving stack down.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	code := http.StatusOK
	status := "ok"
	switch {
	case s.closed.Load():
		code = http.StatusServiceUnavailable
		status = "closed"
	case s.draining.Load():
		status = "draining"
	}
	writeJSON(w, code, map[string]any{
		"status":         status,
		"workers":        s.pool.Workers(),
		"cache_entries":  s.cache.len(),
		"uptime_seconds": int64(time.Since(s.start).Seconds()),
	})
}

// handleReady is GET /readyz: readiness. 503 while draining or closed —
// load balancers stop routing here before liveness ever flips — with the
// journal replay summary in the body.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	code := http.StatusOK
	status := "ready"
	switch {
	case s.closed.Load():
		code = http.StatusServiceUnavailable
		status = "closed"
	case s.draining.Load():
		code = http.StatusServiceUnavailable
		status = "draining"
	}
	qs := s.queue.Stats()
	writeJSON(w, code, map[string]any{
		"status":          status,
		"journal":         s.cfg.JournalPath != "",
		"replay_records":  s.replay.Records,
		"replay_requeued": s.replay.Requeued,
		"replay_torn":     s.replay.TornBytes,
		"queue_ready":     qs.Ready,
		"queue_delayed":   qs.Delayed,
		"queue_leased":    qs.Leased,
		"dead_letters":    qs.Dead,
	})
}

// handleMetrics is GET /metrics in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.write(w, s)
	s.metrics.countRequest("/metrics", http.StatusOK)
}
