package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/graph"
	"repro/internal/wire"
)

func chaosT(t *testing.T, spec string) *chaos.Injector {
	t.Helper()
	inj, err := chaos.Parse(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

func testRequest(seed int64) *wire.SolveRequest {
	g := graph.Harary(2, 16, graph.RandomWeights(randSource(seed), 30))
	return &wire.SolveRequest{Graph: wire.GraphToJSON(g), SolveSpec: wire.SolveSpec{Solver: "2ecss", Seed: seed}}
}

func pollJob(t *testing.T, ts *httptest.Server, id string, want string, timeout time.Duration) *wire.JobResponse {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, body := getURL(t, ts.URL+"/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/jobs/%s = %d: %s", id, resp.StatusCode, body)
		}
		var out wire.JobResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.State == want {
			return &out
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q (want %q): %s", id, out.State, want, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// The drain-path satellite: with a solve in flight, StartDrain flips /readyz
// (but not /healthz), refuses new jobs with 503, and Drain completes within
// its deadline without dropping the in-flight job.
func TestDrainWithInflightSolve(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers:      1,
		SolveWorkers: 1,
		QueueDepth:   4,
		Chaos:        chaosT(t, "stall@worker.solve#1:250ms"),
	})

	resp, body := postJSON(t, ts.URL+"/v1/jobs", testRequest(41))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs = %d: %s", resp.StatusCode, body)
	}
	var jr wire.JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	pollJob(t, ts, jr.ID, wire.JobRunning, 5*time.Second)

	s.StartDrain()
	if resp, _ := getURL(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain = %d, want 503", resp.StatusCode)
	}
	if resp, _ := getURL(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz during drain = %d, want 200", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/solve", testRequest(43)); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("new solve during drain = %d, want 503", resp.StatusCode)
	} else if resp.Header.Get("Retry-After") == "" {
		t.Error("503 during drain has no Retry-After")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain with in-flight solve: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 4*time.Second {
		t.Fatalf("drain took %v", elapsed)
	}
	// The in-flight job was not dropped: it finished and stays pollable.
	done := pollJob(t, ts, jr.ID, wire.JobDone, time.Second)
	if done.Result == nil || done.Result.ResultDigest == "" {
		t.Fatalf("drained job has no result: %+v", done)
	}
}

// A Drain whose context expires with work still in flight reports the
// interruption instead of hanging.
func TestDrainDeadlineInterrupts(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers:      1,
		SolveWorkers: 1,
		QueueDepth:   4,
		Chaos:        chaosT(t, "stall@worker.solve#1:400ms"),
	})
	resp, body := postJSON(t, ts.URL+"/v1/jobs", testRequest(47))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs = %d: %s", resp.StatusCode, body)
	}
	var jr wire.JobResponse
	json.Unmarshal(body, &jr)
	pollJob(t, ts, jr.ID, wire.JobRunning, 5*time.Second)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil || !strings.Contains(err.Error(), "drain interrupted") {
		t.Fatalf("short-deadline drain = %v, want interruption error", err)
	}
	// The job still completes; a later unbounded drain succeeds.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	pollJob(t, ts, jr.ID, wire.JobDone, time.Second)
}

// The deadline satellite: a sync waiter past timeout_ms gets 504 while the
// solve continues and lands in the cache for the retry.
func TestDeadlinePropagation(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:      1,
		SolveWorkers: 1,
		QueueDepth:   4,
		Chaos:        chaosT(t, "stall@worker.solve#1:250ms"),
	})
	req := testRequest(53)
	req.TimeoutMillis = 40

	resp, body := postJSON(t, ts.URL+"/v1/solve", req)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("timed-out solve = %d: %s", resp.StatusCode, body)
	}

	// While the single worker is still stalled, submit a job whose deadline
	// will have passed by the time it is claimed: it fails fast instead of
	// solving.
	late := testRequest(59)
	late.TimeoutMillis = 1
	resp, body = postJSON(t, ts.URL+"/v1/jobs", late)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs = %d: %s", resp.StatusCode, body)
	}
	var jr wire.JobResponse
	json.Unmarshal(body, &jr)

	// Retry the timed-out digest without a deadline: joins the still-running
	// flight (or hits the cache) and succeeds.
	req.TimeoutMillis = 0
	out := solveOK(t, ts, req)
	if !out.Cached {
		t.Errorf("retry after 504 got a cold solve; want the shared/cached result")
	}

	fin := pollJob(t, ts, jr.ID, wire.JobFailed, 5*time.Second)
	if !strings.Contains(fin.Error, "deadline exceeded") {
		t.Fatalf("late job error = %q, want deadline exceeded", fin.Error)
	}
}

// The client-disconnect satellite: a cancelled request context counts as a
// disconnect metric and does not abandon the shared solve.
func TestClientDisconnectDoesNotAbandonSolve(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers:      1,
		SolveWorkers: 1,
		QueueDepth:   4,
		Chaos:        chaosT(t, "stall@worker.solve#1:250ms"),
	})
	req := testRequest(61)
	raw, _ := json.Marshal(req)

	ctx, cancel := context.WithCancel(context.Background())
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/solve", strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	if _, err := http.DefaultClient.Do(hr); err == nil {
		t.Fatal("cancelled request returned a response, want transport error")
	}

	// The solve keeps running: a fresh client gets the result, served from
	// the shared flight or the cache.
	out := solveOK(t, ts, req)
	if out.ResultDigest == "" {
		t.Fatal("post-disconnect solve has no result digest")
	}
	deadline := time.Now().Add(time.Second)
	for s.metrics.clientDisconnects.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("client disconnect was not counted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.metrics.clientDisconnects.Load(); got != 1 {
		t.Fatalf("clientDisconnects = %d, want 1", got)
	}
}

// A worker stalled past its lease TTL loses the job; with MaxAttempts 1 the
// expiry dead-letters it, visible to pollers, /v1/deadletters and metrics.
func TestLeaseExpiryDeadLetters(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers:      1,
		SolveWorkers: 1,
		QueueDepth:   4,
		LeaseTTL:     25 * time.Millisecond,
		MaxAttempts:  1,
		Chaos:        chaosT(t, "stall@worker.solve#1:200ms"),
	})
	resp, body := postJSON(t, ts.URL+"/v1/jobs", testRequest(67))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs = %d: %s", resp.StatusCode, body)
	}
	var jr wire.JobResponse
	json.Unmarshal(body, &jr)
	fin := pollJob(t, ts, jr.ID, wire.JobFailed, 5*time.Second)
	if !strings.Contains(fin.Error, "dead-lettered") {
		t.Fatalf("job error = %q, want dead-lettered", fin.Error)
	}

	resp, body = getURL(t, ts.URL+"/v1/deadletters")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/deadletters = %d", resp.StatusCode)
	}
	var dls wire.DeadLettersResponse
	if err := json.Unmarshal(body, &dls); err != nil {
		t.Fatal(err)
	}
	if len(dls.DeadLetters) != 1 || dls.DeadLetters[0].JobID != jr.ID || dls.DeadLetters[0].Reason != "lease expired" {
		t.Fatalf("dead letters = %+v, want one for %s (lease expired)", dls.DeadLetters, jr.ID)
	}
	if got := s.metrics.deadLetters.Load(); got != 1 {
		t.Errorf("deadLetters metric = %d, want 1", got)
	}
	if got := s.metrics.leaseExpirations.Load(); got != 1 {
		t.Errorf("leaseExpirations metric = %d, want 1", got)
	}
	// Give the stalled worker time to lose its completion race cleanly
	// before Cleanup closes the server.
	time.Sleep(250 * time.Millisecond)
}

// The tentpole's in-process restart path: jobs journaled by one incarnation
// are replayed by the next — finished jobs come back pollable with their
// cached results, unfinished jobs are re-enqueued and solved.
func TestJournalRestartRecoversJobs(t *testing.T) {
	dir := t.TempDir()
	wal := filepath.Join(dir, "journal.wal")

	s1, err := New(Config{
		Workers:      1,
		SolveWorkers: 1,
		QueueDepth:   8,
		JournalPath:  wal,
		Chaos:        chaosT(t, "stall@worker.solve#1:200ms"),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())

	reqA, reqB := testRequest(71), testRequest(73)
	// Job A is claimed (and stalls in the worker); job B waits behind it on
	// the single solve worker and is never claimed before Close.
	respA, bodyA := postJSON(t, ts1.URL+"/v1/jobs", reqA)
	if respA.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs A = %d: %s", respA.StatusCode, bodyA)
	}
	var jobA wire.JobResponse
	json.Unmarshal(bodyA, &jobA)
	pollJob(t, ts1, jobA.ID, wire.JobRunning, 5*time.Second)

	respB, bodyB := postJSON(t, ts1.URL+"/v1/jobs", reqB)
	if respB.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs B = %d: %s", respB.StatusCode, bodyB)
	}
	var jobB wire.JobResponse
	json.Unmarshal(bodyB, &jobB)

	// Close mid-flight: the stalled worker finishes A (its done record is
	// journaled); B is stranded with only its accepted record.
	ts1.Close()
	s1.Close()

	s2, err := New(Config{Workers: 1, SolveWorkers: 1, QueueDepth: 8, JournalPath: wal})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		s2.Close()
	})

	rep := s2.Replay()
	if rep.Completed != 1 || rep.Requeued != 1 {
		t.Fatalf("replay = %+v, want 1 completed, 1 requeued", rep)
	}

	// Job A survives the restart finished, under the same ID.
	finA := pollJob(t, ts2, jobA.ID, wire.JobDone, time.Second)
	// Job B is re-solved by the new incarnation.
	finB := pollJob(t, ts2, jobB.ID, wire.JobDone, 10*time.Second)

	// Results are byte-identical to fresh solves of the same requests.
	_, ts3 := newTestServer(t, Config{Workers: 1})
	wantA, wantB := solveOK(t, ts3, reqA), solveOK(t, ts3, reqB)
	if finA.Result.ResultDigest != wantA.ResultDigest || finA.Result.Digest != wantA.Digest {
		t.Errorf("replayed job A result digest %s, want %s", finA.Result.ResultDigest, wantA.ResultDigest)
	}
	if finB.Result.ResultDigest != wantB.ResultDigest || finB.Result.Digest != wantB.Digest {
		t.Errorf("re-solved job B result digest %s, want %s", finB.Result.ResultDigest, wantB.ResultDigest)
	}

	// Job A's replayed result repopulated the cache: a sync solve hits it
	// without a cold solve.
	out := solveOK(t, ts2, reqA)
	if !out.Cached {
		t.Errorf("solve of replayed digest was cold, want cache hit")
	}
	if cold := s2.metrics.solveLatency.count.Load(); cold != 1 {
		t.Errorf("second incarnation ran %d cold solves, want 1 (job B only)", cold)
	}
}

// Replay tolerates a torn tail (half-written accepted record): the torn job
// was never acked to a client, so dropping it is correct, and the journal
// keeps working after truncation.
func TestJournalRestartTornTail(t *testing.T) {
	dir := t.TempDir()
	wal := filepath.Join(dir, "journal.wal")

	s1, err := New(Config{Workers: 1, SolveWorkers: 1, JournalPath: wal})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	req := testRequest(79)
	if resp, body := postJSON(t, ts1.URL+"/v1/solve", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("solve = %d: %s", resp.StatusCode, body)
	}
	ts1.Close()
	s1.Close()

	// Tear the tail by hand: append garbage that looks like a half-written
	// record.
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := New(Config{Workers: 1, SolveWorkers: 1, JournalPath: wal})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		s2.Close()
	})
	rep := s2.Replay()
	if rep.TornBytes != 5 {
		t.Fatalf("replay torn bytes = %d, want 5", rep.TornBytes)
	}
	if resp, body := getURL(t, ts2.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after torn replay = %d: %s", resp.StatusCode, body)
	}
	// The truncated journal still accepts appends.
	if resp, body := postJSON(t, ts2.URL+"/v1/jobs", testRequest(83)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs after torn replay = %d: %s", resp.StatusCode, body)
	}
}

// Duplicate async submissions of one digest share a single durable job: the
// journal records one accepted entry, and both clients get the same ID.
func TestAsyncSubmissionsShareOneJob(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:      1,
		SolveWorkers: 1,
		QueueDepth:   8,
		Chaos:        chaosT(t, "stall@worker.solve#1:150ms"),
	})
	req := testRequest(89)
	_, body1 := postJSON(t, ts.URL+"/v1/jobs", req)
	_, body2 := postJSON(t, ts.URL+"/v1/jobs", req)
	var j1, j2 wire.JobResponse
	json.Unmarshal(body1, &j1)
	json.Unmarshal(body2, &j2)
	if j1.ID == "" || j1.ID != j2.ID {
		t.Fatalf("duplicate submissions got IDs %q and %q, want one shared ID", j1.ID, j2.ID)
	}
	fin := pollJob(t, ts, j1.ID, wire.JobDone, 5*time.Second)
	if fin.Result == nil {
		t.Fatal("shared job finished without a result")
	}
}
