package server

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/queue"
)

// latencyBuckets are the upper bounds (seconds) of the solve/request latency
// histograms, Prometheus cumulative-bucket style. The tail extends to 120s
// because queue-wait under lease expiry (TTL + backoff + re-solve) routinely
// exceeds the old 5s ceiling, and a histogram whose observations all land in
// +Inf cannot answer "how much worse".
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,
	10, 30, 60, 120,
}

// histogram is a fixed-bucket latency histogram with atomic counters.
type histogram struct {
	counts []atomic.Int64 // one per bucket, non-cumulative; +Inf is implicit
	inf    atomic.Int64
	sumNS  atomic.Int64
	count  atomic.Int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Int64, len(latencyBuckets))}
}

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	placed := false
	for i, ub := range latencyBuckets {
		if s <= ub {
			h.counts[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.inf.Add(1)
	}
	h.sumNS.Add(int64(d))
	h.count.Add(1)
}

// write renders the histogram in Prometheus text exposition format. labels,
// when non-empty, is a rendered label pair list (e.g. `stage="solve"`)
// attached to every sample, letting several histograms share one metric
// family (kecss_stage_seconds{stage=...}).
func (h *histogram) write(w io.Writer, name, labels string) {
	pre := ""
	if labels != "" {
		pre = labels + ","
	}
	var cum int64
	for i, ub := range latencyBuckets {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, pre, fmt.Sprintf("%g", ub), cum)
	}
	cum += h.inf.Load()
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, pre, cum)
	if labels != "" {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, float64(h.sumNS.Load())/1e9)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.count.Load())
		return
	}
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sumNS.Load())/1e9)
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}

// metrics is the server's instrumentation: request counters by
// (path, status), cache hit/miss counters, job-layer counters (leases,
// expirations, retries, dead letters, client disconnects), and latency
// histograms for cold solves, whole requests and journal fsync batches.
type metrics struct {
	mu       sync.Mutex
	requests map[string]*atomic.Int64 // guarded by mu; key: path + "|" + code

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	throttled   atomic.Int64

	jobsEnqueued      atomic.Int64
	leases            atomic.Int64
	leaseExpirations  atomic.Int64
	retries           atomic.Int64
	deadLetters       atomic.Int64
	clientDisconnects atomic.Int64

	solveLatency   *histogram // cold solves only
	requestLatency *histogram // every /v1/solve round-trip
	journalFsync   *histogram // journal fsync batches

	// Stage histograms derived from trace span boundaries: one job
	// contributes one queue_wait observation per delivery, one solve
	// observation per completed claim, one store_put per frontend publish.
	stageQueueWait *histogram
	stageSolve     *histogram
	stageStorePut  *histogram
}

func newMetrics() *metrics {
	return &metrics{
		requests:       make(map[string]*atomic.Int64),
		solveLatency:   newHistogram(),
		requestLatency: newHistogram(),
		journalFsync:   newHistogram(),
		stageQueueWait: newHistogram(),
		stageSolve:     newHistogram(),
		stageStorePut:  newHistogram(),
	}
}

// countQueueEvent is the queue.Config.OnEvent hook.
func (m *metrics) countQueueEvent(ev queue.Event) {
	switch ev {
	case queue.EventEnqueue:
		m.jobsEnqueued.Add(1)
	case queue.EventLease:
		m.leases.Add(1)
	case queue.EventExpire:
		m.leaseExpirations.Add(1)
	case queue.EventRetry:
		m.retries.Add(1)
	case queue.EventDead:
		m.deadLetters.Add(1)
	}
}

func (m *metrics) countRequest(path string, code int) {
	key := fmt.Sprintf("%s|%d", path, code)
	m.mu.Lock()
	c, ok := m.requests[key]
	if !ok {
		c = new(atomic.Int64)
		m.requests[key] = c
	}
	m.mu.Unlock()
	c.Add(1)
}

// write renders every metric in Prometheus text exposition format.
func (m *metrics) write(w io.Writer, s *Server) {
	m.mu.Lock()
	keys := make([]string, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	counts := make([]int64, len(keys))
	for i, k := range keys {
		counts[i] = m.requests[k].Load()
	}
	m.mu.Unlock()

	fmt.Fprintln(w, "# TYPE kecss_requests_total counter")
	for i, k := range keys {
		sep := strings.LastIndex(k, "|")
		fmt.Fprintf(w, "kecss_requests_total{path=%q,code=%q} %d\n", k[:sep], k[sep+1:], counts[i])
	}
	fmt.Fprintln(w, "# TYPE kecss_cache_hits_total counter")
	fmt.Fprintf(w, "kecss_cache_hits_total %d\n", m.cacheHits.Load())
	fmt.Fprintln(w, "# TYPE kecss_cache_misses_total counter")
	fmt.Fprintf(w, "kecss_cache_misses_total %d\n", m.cacheMisses.Load())
	fmt.Fprintln(w, "# TYPE kecss_throttled_total counter")
	fmt.Fprintf(w, "kecss_throttled_total %d\n", m.throttled.Load())
	fmt.Fprintln(w, "# TYPE kecss_cache_entries gauge")
	fmt.Fprintf(w, "kecss_cache_entries %d\n", s.store.CacheLen())

	ss := s.store.Stats()
	fmt.Fprintln(w, "# TYPE kecss_store_hits_total counter")
	fmt.Fprintf(w, "kecss_store_hits_total{tier=\"mem\"} %d\n", ss.MemHits)
	fmt.Fprintf(w, "kecss_store_hits_total{tier=\"disk\"} %d\n", ss.DiskHits)
	fmt.Fprintln(w, "# TYPE kecss_store_misses_total counter")
	fmt.Fprintf(w, "kecss_store_misses_total %d\n", ss.Misses)
	fmt.Fprintln(w, "# TYPE kecss_store_puts_total counter")
	fmt.Fprintf(w, "kecss_store_puts_total %d\n", ss.Puts)
	fmt.Fprintln(w, "# TYPE kecss_store_corrupt_total counter")
	fmt.Fprintf(w, "kecss_store_corrupt_total %d\n", ss.Corrupt)

	qs := s.queue.Stats()
	fmt.Fprintln(w, "# TYPE kecss_queue_depth gauge")
	fmt.Fprintf(w, "kecss_queue_depth %d\n", qs.Ready+qs.Delayed+qs.Leased)
	fmt.Fprintln(w, "# TYPE kecss_queue_ready gauge")
	fmt.Fprintf(w, "kecss_queue_ready %d\n", qs.Ready)
	fmt.Fprintln(w, "# TYPE kecss_queue_delayed gauge")
	fmt.Fprintf(w, "kecss_queue_delayed %d\n", qs.Delayed)
	fmt.Fprintln(w, "# TYPE kecss_queue_leased gauge")
	fmt.Fprintf(w, "kecss_queue_leased %d\n", qs.Leased)
	fmt.Fprintln(w, "# TYPE kecss_queue_capacity gauge")
	fmt.Fprintf(w, "kecss_queue_capacity %d\n", cap(s.sem))
	fmt.Fprintln(w, "# TYPE kecss_jobs_enqueued_total counter")
	fmt.Fprintf(w, "kecss_jobs_enqueued_total %d\n", m.jobsEnqueued.Load())
	fmt.Fprintln(w, "# TYPE kecss_leases_total counter")
	fmt.Fprintf(w, "kecss_leases_total %d\n", m.leases.Load())
	fmt.Fprintln(w, "# TYPE kecss_lease_expirations_total counter")
	fmt.Fprintf(w, "kecss_lease_expirations_total %d\n", m.leaseExpirations.Load())
	fmt.Fprintln(w, "# TYPE kecss_retries_total counter")
	fmt.Fprintf(w, "kecss_retries_total %d\n", m.retries.Load())
	fmt.Fprintln(w, "# TYPE kecss_dead_letters_total counter")
	fmt.Fprintf(w, "kecss_dead_letters_total %d\n", m.deadLetters.Load())
	fmt.Fprintln(w, "# TYPE kecss_client_disconnects_total counter")
	fmt.Fprintf(w, "kecss_client_disconnects_total %d\n", m.clientDisconnects.Load())

	active, retained := s.traces.Stats()
	fmt.Fprintln(w, "# TYPE kecss_traces_active gauge")
	fmt.Fprintf(w, "kecss_traces_active %d\n", active)
	fmt.Fprintln(w, "# TYPE kecss_traces_retained gauge")
	fmt.Fprintf(w, "kecss_traces_retained %d\n", retained)

	fmt.Fprintln(w, "# TYPE kecss_pool_workers gauge")
	fmt.Fprintf(w, "kecss_pool_workers %d\n", s.workerCount())
	fmt.Fprintln(w, "# TYPE kecss_solve_seconds histogram")
	m.solveLatency.write(w, "kecss_solve_seconds", "")
	fmt.Fprintln(w, "# TYPE kecss_request_seconds histogram")
	m.requestLatency.write(w, "kecss_request_seconds", "")
	fmt.Fprintln(w, "# TYPE kecss_stage_seconds histogram")
	m.stageQueueWait.write(w, "kecss_stage_seconds", `stage="queue_wait"`)
	m.stageSolve.write(w, "kecss_stage_seconds", `stage="solve"`)
	m.stageStorePut.write(w, "kecss_stage_seconds", `stage="store_put"`)
	if s.jnl != nil {
		fmt.Fprintln(w, "# TYPE kecss_journal_fsync_seconds histogram")
		m.journalFsync.write(w, "kecss_journal_fsync_seconds", "")
		fmt.Fprintln(w, "# TYPE kecss_journal_syncs_total counter")
		fmt.Fprintf(w, "kecss_journal_syncs_total %d\n", s.jnl.Syncs())
	}
}
