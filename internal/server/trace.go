package server

import (
	"net/http"
	"time"

	"repro/internal/queue"
	"repro/internal/telemetry"
)

// This file is the frontend half of the job tracing pipeline: every
// admitted job gets a telemetry.Trace (trace ID = job ID) whose span tree
// follows the job through admission → journal append → enqueue →
// queue.wait → claim → (agent spans, grafted) → store.put → complete.
// Each delivery attempt gets its own "claim" span as a sibling subtree, so
// a lease expiry or agent SIGKILL reads as two attempts in one timeline
// with the expiry gap visible between them.
//
// Lock order: j.mu before trace.mu (trace methods never call back into the
// job). Every helper tolerates j.trace == nil — cache-hit async jobs and
// replayed finished jobs never enter the queue and carry no trace.

// beginTrace creates the job's trace: the root "job" span plus an
// "admission" span back-dated to when the request entered ensureJob.
func (s *Server) beginTrace(j *job, admitStart time.Time) {
	tr := s.traces.Start(j.id, "frontend")
	j.mu.Lock()
	j.trace = tr
	j.rootSpan = tr.Start(0, "job", 0, telemetry.String("digest", j.digest))
	tr.Add(j.rootSpan.ID(), "admission", 0, admitStart, time.Since(admitStart))
	j.mu.Unlock()
}

// traceSpan opens a span under the job's root, returning an inert ref when
// the job has no trace.
func (s *Server) traceSpan(j *job, name string, attempt int, attrs ...telemetry.Attr) telemetry.SpanRef {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.trace == nil {
		return telemetry.SpanRef{}
	}
	return j.trace.Start(j.rootSpan.ID(), name, attempt, attrs...)
}

// traceWait starts a "queue.wait" span: the job is in the broker's ready
// (or delayed) set, waiting for an agent to claim it.
func (s *Server) traceWait(j *job) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.trace == nil {
		return
	}
	j.waitSpan = j.trace.Start(j.rootSpan.ID(), "queue.wait", 0)
	j.waitStart = time.Now()
}

// traceClaim closes the current queue.wait (observing the queue_wait stage)
// and opens this delivery's "claim" span. It returns the claim span's ID —
// the trace context stamped onto the lease payload so the agent's spans
// come back addressed to this attempt.
func (s *Server) traceClaim(j *job, attempt int) uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.trace == nil {
		return 0
	}
	if j.waitSpan.Valid() {
		j.waitSpan.End()
		j.waitSpan = telemetry.SpanRef{}
		s.metrics.stageQueueWait.observe(time.Since(j.waitStart))
	}
	j.claimSpan = j.trace.Start(j.rootSpan.ID(), "claim", attempt,
		telemetry.Int("attempt", int64(attempt)))
	j.claimAt = time.Now()
	j.claimAttempt = attempt
	return j.claimSpan.ID()
}

// onLeaseExpired is the queue's OnExpired hook: a lease lapsed without an
// ack. The current claim span is closed as expired, the gap is marked with
// a "lease.expired" event, and a fresh queue.wait opens for the redelivery.
func (s *Server) onLeaseExpired(qj *queue.Job) {
	s.log.Warn("lease expired", "job_id", qj.ID, "digest", qj.Digest, "attempt", qj.Attempt)
	j, ok := s.jobs.get(qj.ID)
	if !ok {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.trace == nil {
		return
	}
	// Close only the expired delivery's claim span: the queue may already
	// have redelivered by the time this hook is flushed, in which case
	// claimSpan belongs to the next attempt and must stay open.
	if j.claimSpan.Valid() && j.claimAttempt == qj.Attempt {
		j.claimSpan.End(telemetry.Bool("expired", true))
		j.claimSpan = telemetry.SpanRef{}
	}
	j.trace.Event(j.rootSpan.ID(), "lease.expired", qj.Attempt,
		telemetry.Int("attempt", int64(qj.Attempt)))
	j.waitSpan = j.trace.Start(j.rootSpan.ID(), "queue.wait", 0)
	j.waitStart = time.Now()
}

// traceOutcome records an outcome's arrival: the claim span closes
// (observing the solve stage — claim to completion, agent time plus
// transport), and the agent's spans are grafted under it so the solver's
// phase timeline lands inside this attempt's subtree.
func (s *Server) traceOutcome(j *job, out *queue.Outcome) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.trace == nil {
		return
	}
	if j.claimSpan.Valid() {
		j.claimSpan.End()
		s.metrics.stageSolve.observe(time.Since(j.claimAt))
	}
	if len(out.Spans) > 0 {
		j.trace.Graft(out.Spans, j.claimSpan.ID())
	}
	j.claimSpan = telemetry.SpanRef{}
}

// finishTrace closes the job's trace — ending any spans still open, adding
// a terminal "complete" event with the outcome — and moves it into the
// registry's retention sets. Safe to call for traceless jobs and after any
// partial progress (admission failures, dead letters, shutdown).
func (s *Server) finishTrace(j *job, serr *solveError) {
	j.mu.Lock()
	if j.trace == nil {
		j.mu.Unlock()
		return
	}
	tr := j.trace
	if j.waitSpan.Valid() {
		j.waitSpan.End()
		j.waitSpan = telemetry.SpanRef{}
	}
	if j.claimSpan.Valid() {
		j.claimSpan.End()
		j.claimSpan = telemetry.SpanRef{}
	}
	attrs := []telemetry.Attr{telemetry.String("state", j.state)}
	if serr != nil {
		attrs = append(attrs,
			telemetry.Int("code", int64(serr.code)),
			telemetry.String("error", serr.msg))
	}
	tr.Event(j.rootSpan.ID(), "complete", j.attempt, attrs...)
	j.rootSpan.End()
	j.trace = nil
	j.mu.Unlock()
	s.traces.Finish(j.id)
}

// handleJobTrace is GET /v1/jobs/{id}/trace: the job's span timeline as
// JSON — a live snapshot while the job runs, the retained snapshot after.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	d, ok := s.traces.Lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no trace for job %q (finished traces are retained bounded; slow ones longest)", id)
		return
	}
	writeJSON(w, http.StatusOK, d)
}

// handleDebugTraces is GET /debug/traces: the bounded retention listing —
// most recent finished traces plus the slowest-N survivors.
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.traces.List())
}
