package server

import (
	"container/list"
	"sync"

	"repro/internal/wire"
)

// resultCache is a digest-keyed LRU over solved responses. Values are
// treated as immutable once stored: readers copy the struct before mutating
// presentation fields (Cached), so one entry can serve many requests
// concurrently.
type resultCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key  string
	resp *wire.SolveResponse
}

// newResultCache returns a cache holding at most max entries; max <= 0
// disables caching entirely (every lookup misses, every add is dropped).
func newResultCache(max int) *resultCache {
	return &resultCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

func (c *resultCache) get(key string) (*wire.SolveResponse, bool) {
	if c.max <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).resp, true
}

func (c *resultCache) add(key string, resp *wire.SolveResponse) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		// Deterministic solves make duplicates byte-identical; just refresh.
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).resp = resp
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, resp: resp})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
