package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/promtext"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// fetchTrace polls GET /v1/jobs/{id}/trace until the trace is complete.
func fetchTrace(t *testing.T, base, id string, timeout time.Duration) *telemetry.Data {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, body := getURL(t, base+"/v1/jobs/"+id+"/trace")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET trace = %d: %s", resp.StatusCode, body)
		}
		var d telemetry.Data
		if err := json.Unmarshal(body, &d); err != nil {
			t.Fatalf("bad trace payload: %v", err)
		}
		if d.Complete {
			return &d
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace for %s never completed; spans: %d", id, len(d.Spans))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func spansNamed(d *telemetry.Data, name string) []telemetry.Span {
	var out []telemetry.Span
	for _, s := range d.Spans {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

func spanByID(d *telemetry.Data, id uint64) *telemetry.Span {
	for i := range d.Spans {
		if d.Spans[i].ID == id {
			return &d.Spans[i]
		}
	}
	return nil
}

// The tentpole acceptance path: a cache-miss solve produces one stitched
// trace carrying the frontend stages, the claim, and — grafted under it —
// the agent's store/solve spans with per-phase solver sub-spans annotated
// with CONGEST round counts.
func TestJobTraceEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:     2,
		JournalPath: filepath.Join(t.TempDir(), "journal.wal"),
	})

	req := testRequest(91)
	raw, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/solve = %d", resp.StatusCode)
	}
	jobID := resp.Header.Get("X-Kecss-Job")
	if jobID == "" {
		t.Fatal("solve response missing X-Kecss-Job header")
	}

	d := fetchTrace(t, ts.URL, jobID, 5*time.Second)
	if d.TraceID != jobID {
		t.Fatalf("trace ID = %q, want %q", d.TraceID, jobID)
	}
	if d.DurationNanos <= 0 {
		t.Fatalf("complete trace has no root duration: %d", d.DurationNanos)
	}

	// Every frontend stage is present exactly once.
	for _, name := range []string{"job", "admission", "journal.accept", "enqueue", "queue.wait", "claim", "complete"} {
		got := spansNamed(d, name)
		if len(got) != 1 {
			t.Fatalf("want one %q span, got %d (trace: %+v)", name, len(got), d.Spans)
		}
		if got[0].Process != "frontend" {
			t.Fatalf("%q span process = %q, want frontend", name, got[0].Process)
		}
	}
	root := d.FindSpan("job")
	if root.Parent != 0 || root.End == 0 {
		t.Fatalf("root span not closed at completion: %+v", root)
	}
	claim := d.FindSpan("claim")
	if claim.Attempt != 1 || claim.Parent != root.ID {
		t.Fatalf("claim span = %+v, want attempt 1 under root %d", claim, root.ID)
	}

	// The agent subtree is grafted under the claim span and keeps its
	// process tag.
	agent := d.FindSpan("agent")
	if agent == nil || agent.Parent != claim.ID || agent.Process != "agent" {
		t.Fatalf("agent span = %+v, want process=agent under claim %d", agent, claim.ID)
	}
	for _, name := range []string{"store.get", "solve"} {
		sp := d.FindSpan(name)
		if sp == nil || sp.Process != "agent" {
			t.Fatalf("%q span = %+v, want agent-side span", name, sp)
		}
		if p := spanByID(d, sp.Parent); p == nil || (p.Name != "agent" && p.Name != "solve") {
			t.Fatalf("%q span parent %d not inside the agent subtree", name, sp.Parent)
		}
	}
	// Both sides publish: the agent's store.put (under its root) and the
	// frontend's re-publish (under the job root).
	puts := spansNamed(d, "store.put")
	procs := map[string]bool{}
	for _, p := range puts {
		procs[p.Process] = true
	}
	if !procs["agent"] || !procs["frontend"] {
		t.Fatalf("store.put spans = %+v, want one agent-side and one frontend-side", puts)
	}

	// Solver phases land as children of the solve span, and the simulated
	// stages carry their CONGEST round counts (testRequest is a 2-ECSS
	// solve: mst + tap).
	solve := d.FindSpan("solve")
	sawRounds := false
	var phases []string
	for _, sp := range d.Spans {
		if !strings.HasPrefix(sp.Name, "phase.") {
			continue
		}
		if sp.Parent != solve.ID {
			t.Fatalf("phase span %q parent = %d, want solve span %d", sp.Name, sp.Parent, solve.ID)
		}
		phases = append(phases, sp.Name)
		if a, ok := sp.Attr("rounds"); ok && a.Int > 0 {
			sawRounds = true
		}
	}
	if len(phases) < 2 {
		t.Fatalf("want >= 2 solver phase spans, got %v", phases)
	}
	if !sawRounds {
		t.Fatal("no phase span carries a positive rounds attribute")
	}

	// A repeat of the same request is a cache hit: no new job, no trace.
	resp2, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Kecss-Job"); got != "" {
		t.Fatalf("cache hit carried X-Kecss-Job %q, want none", got)
	}
}

// A lease expiry mid-solve must read as two sibling attempts in one
// timeline: claim(attempt 1, expired) → lease.expired → queue.wait →
// claim(attempt 2) with the recovered solve grafted under the second.
func TestJobTraceLeaseExpiryShowsBothAttempts(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:      1,
		SolveWorkers: 1,
		QueueDepth:   4,
		LeaseTTL:     25 * time.Millisecond,
		MaxAttempts:  3,
		Chaos:        chaosT(t, "stall@worker.solve#1:300ms"),
	})
	resp, body := postJSON(t, ts.URL+"/v1/jobs", testRequest(67))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs = %d: %s", resp.StatusCode, body)
	}
	var jr wire.JobResponse
	json.Unmarshal(body, &jr)
	pollJob(t, ts, jr.ID, wire.JobDone, 10*time.Second)

	d := fetchTrace(t, ts.URL, jr.ID, 5*time.Second)
	claims := spansNamed(d, "claim")
	if len(claims) != 2 {
		t.Fatalf("want 2 claim spans after a lease expiry, got %d: %+v", len(claims), claims)
	}
	if claims[0].Attempt != 1 || claims[1].Attempt != 2 {
		t.Fatalf("claim attempts = %d, %d; want 1, 2", claims[0].Attempt, claims[1].Attempt)
	}
	if a, ok := claims[0].Attr("expired"); !ok || !a.Bool {
		t.Fatalf("first claim span not marked expired: %+v", claims[0])
	}
	if len(spansNamed(d, "lease.expired")) != 1 {
		t.Fatal("trace missing the lease.expired marker")
	}
	// The expiry gap: attempt 2 starts after attempt 1's claim ended, with
	// the redelivery backoff in between.
	if claims[1].Start < claims[0].End {
		t.Fatalf("attempt 2 (start %d) overlaps attempt 1 (end %d)", claims[1].Start, claims[0].End)
	}
	// Two queue waits: admission → attempt 1, expiry → attempt 2.
	if got := len(spansNamed(d, "queue.wait")); got != 2 {
		t.Fatalf("want 2 queue.wait spans, got %d", got)
	}
	// The successful solve's agent subtree hangs under attempt 2.
	agents := spansNamed(d, "agent")
	found := false
	for _, a := range agents {
		if a.Parent == claims[1].ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("no agent subtree under attempt 2's claim (%d); agents: %+v", claims[1].ID, agents)
	}
	// Give the stalled first delivery time to lose its completion race
	// cleanly before Cleanup closes the server.
	time.Sleep(300 * time.Millisecond)
}

// /debug/traces retains finished jobs bounded, newest first.
func TestDebugTracesListing(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	for seed := int64(1); seed <= 3; seed++ {
		solveOK(t, ts, testRequest(seed*101))
	}
	resp, body := getURL(t, ts.URL+"/debug/traces")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces = %d", resp.StatusCode)
	}
	var l telemetry.Listing
	if err := json.Unmarshal(body, &l); err != nil {
		t.Fatal(err)
	}
	if len(l.Recent) != 3 {
		t.Fatalf("recent = %d traces, want 3", len(l.Recent))
	}
	if len(l.Slowest) != 3 {
		t.Fatalf("slowest = %d traces, want 3", len(l.Slowest))
	}
	for _, s := range l.Recent {
		if !s.Complete || s.DurationNanos <= 0 || s.Spans == 0 {
			t.Fatalf("retained summary looks empty: %+v", s)
		}
	}
}

// The /metrics payload — stage histograms, trace gauges and all — must
// stay valid exposition format end to end.
func TestMetricsExpositionLints(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:     2,
		JournalPath: filepath.Join(t.TempDir(), "journal.wal"),
	})
	solveOK(t, ts, testRequest(55))
	solveOK(t, ts, testRequest(55)) // a cache hit too
	getURL(t, ts.URL+"/healthz")

	resp, body := getURL(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if err := promtext.Lint(body); err != nil {
		t.Fatalf("/metrics payload fails exposition lint: %v\npayload:\n%s", err, body)
	}
	for _, want := range []string{
		`kecss_stage_seconds_bucket{stage="queue_wait",le=`,
		`kecss_stage_seconds_count{stage="solve"}`,
		`kecss_stage_seconds_count{stage="store_put"}`,
		"kecss_traces_active",
		"kecss_traces_retained",
		`le="120"`,
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

// The standalone agent's metrics writer speaks the same format.
func TestAgentMetricsExpositionLints(t *testing.T) {
	m := NewAgentMetrics()
	m.claims.Add(3)
	m.solves.Add(2)
	m.storeHits.Add(1)
	m.solveLatency.observe(12 * time.Millisecond)
	m.solveLatency.observe(700 * time.Millisecond)
	var buf bytes.Buffer
	m.WriteMetrics(&buf)
	if err := promtext.Lint(buf.Bytes()); err != nil {
		t.Fatalf("agent metrics fail exposition lint: %v\npayload:\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "kecss_agent_claims_total 3") {
		t.Fatalf("agent metrics missing claims counter:\n%s", buf.String())
	}
}
