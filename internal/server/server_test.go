package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	kecss "repro"
	"repro/internal/graph"
	"repro/internal/wire"
)

func randSource(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func solveOK(t *testing.T, ts *httptest.Server, req *wire.SolveRequest) *wire.SolveResponse {
	t.Helper()
	resp, body := postJSON(t, ts.URL+"/v1/solve", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/solve = %d: %s", resp.StatusCode, body)
	}
	var out wire.SolveResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad solve response: %v", err)
	}
	return &out
}

// The end-to-end equivalence satellite: for every solver, results served
// over HTTP — cold and from cache — are byte-identical to the direct
// in-process serial API with the same seed and options.
func TestServedResultsMatchDirectSolves(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	g2 := graph.Harary(2, 18, graph.RandomWeights(randSource(3), 40))
	g3 := graph.Harary(3, 16, graph.RandomWeights(randSource(5), 25))

	cases := []struct {
		name   string
		graph  *graph.Graph
		spec   wire.SolveSpec
		direct func() (edges []int, weight, rounds int64, err error)
	}{
		{
			name:  "2ecss",
			graph: g2,
			spec:  wire.SolveSpec{Solver: "2ecss", Seed: 11},
			direct: func() ([]int, int64, int64, error) {
				r, err := kecss.Solve2ECSS(g2, kecss.WithSeed(11))
				if err != nil {
					return nil, 0, 0, err
				}
				return r.Edges, r.Weight, r.Rounds, nil
			},
		},
		{
			name:  "kecss",
			graph: g3,
			spec:  wire.SolveSpec{Solver: "kecss", K: 3, Seed: 13, SimulateMST: true},
			direct: func() ([]int, int64, int64, error) {
				r, err := kecss.SolveKECSS(g3, 3, kecss.WithSeed(13), kecss.WithSimulatedMST())
				if err != nil {
					return nil, 0, 0, err
				}
				return r.Edges, r.Weight, r.Rounds, nil
			},
		},
		{
			name:  "3ecss",
			graph: g3,
			spec:  wire.SolveSpec{Solver: "3ecss", Seed: 17},
			direct: func() ([]int, int64, int64, error) {
				r, err := kecss.Solve3ECSSUnweighted(g3, kecss.WithSeed(17))
				if err != nil {
					return nil, 0, 0, err
				}
				return r.Edges, r.Weight, r.Rounds, nil
			},
		},
		{
			name:  "3ecss-weighted",
			graph: g3,
			spec:  wire.SolveSpec{Solver: "3ecss-weighted", Seed: 19},
			direct: func() ([]int, int64, int64, error) {
				r, err := kecss.Solve3ECSSWeighted(g3, kecss.WithSeed(19))
				if err != nil {
					return nil, 0, 0, err
				}
				return r.Edges, r.Weight, r.Rounds, nil
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			edges, weight, rounds, err := tc.direct()
			if err != nil {
				t.Fatalf("direct solve: %v", err)
			}
			wantDigest := wire.SolveResultDigest(edges, weight, rounds)
			req := &wire.SolveRequest{Graph: wire.GraphToJSON(tc.graph), SolveSpec: tc.spec}

			cold := solveOK(t, ts, req)
			if cold.Cached {
				t.Fatal("first solve claimed to be cached")
			}
			hot := solveOK(t, ts, req)
			if !hot.Cached {
				t.Fatal("second identical solve missed the cache")
			}
			for _, got := range []*wire.SolveResponse{cold, hot} {
				if !reflect.DeepEqual(got.Edges, edges) || got.Weight != weight || got.Rounds != rounds {
					t.Errorf("served result differs from direct solve:\n  got  %v w=%d r=%d\n  want %v w=%d r=%d",
						got.Edges, got.Weight, got.Rounds, edges, weight, rounds)
				}
				if got.ResultDigest != wantDigest {
					t.Errorf("result digest %s, want %s", got.ResultDigest, wantDigest)
				}
			}
		})
	}
}

func TestBackpressure429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	// Occupy the only queue slot so the next cache-miss is shed.
	s.sem <- struct{}{}
	g := graph.Harary(2, 12, graph.UnitWeights())
	req := &wire.SolveRequest{Graph: wire.GraphToJSON(g), SolveSpec: wire.SolveSpec{Solver: "2ecss", Seed: 1}}
	resp, body := postJSON(t, ts.URL+"/v1/solve", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue: status = %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	// Async submission is shed the same way.
	resp, _ = postJSON(t, ts.URL+"/v1/jobs", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue: jobs status = %d, want 429", resp.StatusCode)
	}
	// Freeing the slot restores service.
	<-s.sem
	if out := solveOK(t, ts, req); out.Cached {
		t.Error("first post-backpressure solve should be cold")
	}
}

func TestAsyncJobs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	g := graph.Harary(3, 14, graph.UnitWeights())
	req := &wire.SolveRequest{Graph: wire.GraphToJSON(g), SolveSpec: wire.SolveSpec{Solver: "3ecss", Seed: 23}}

	resp, body := postJSON(t, ts.URL+"/v1/jobs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs = %d: %s", resp.StatusCode, body)
	}
	var jr wire.JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for jr.State != wire.JobDone && jr.State != wire.JobFailed {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", jr.State)
		}
		time.Sleep(5 * time.Millisecond)
		getResp, getBody := getURL(t, ts.URL+"/v1/jobs/"+jr.ID)
		if getResp.StatusCode != http.StatusOK {
			t.Fatalf("GET job = %d: %s", getResp.StatusCode, getBody)
		}
		jr = wire.JobResponse{}
		if err := json.Unmarshal(getBody, &jr); err != nil {
			t.Fatal(err)
		}
	}
	if jr.State != wire.JobDone || jr.Result == nil {
		t.Fatalf("job finished as %q (err %q)", jr.State, jr.Error)
	}

	// The async result matches the sync path (which now hits the cache).
	sync := solveOK(t, ts, req)
	if !sync.Cached {
		t.Error("sync solve after the job should be a cache hit")
	}
	if sync.ResultDigest != jr.Result.ResultDigest || !reflect.DeepEqual(sync.Edges, jr.Result.Edges) {
		t.Error("async and sync results diverge")
	}

	// A second job for the same digest is born done from the cache.
	resp, body = postJSON(t, ts.URL+"/v1/jobs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second POST /v1/jobs = %d", resp.StatusCode)
	}
	var jr2 wire.JobResponse
	if err := json.Unmarshal(body, &jr2); err != nil {
		t.Fatal(err)
	}
	if jr2.State != wire.JobDone || jr2.Result == nil || !jr2.Result.Cached {
		t.Fatalf("cached-job state = %q, want born-done from cache", jr2.State)
	}

	// Unknown job IDs 404.
	if resp, _ := getURL(t, ts.URL+"/v1/jobs/nope"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", resp.StatusCode)
	}
}

func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	ring := graph.Cycle(10, graph.UnitWeights())

	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("{not json"); code != http.StatusBadRequest {
		t.Errorf("malformed JSON = %d, want 400", code)
	}
	if code := post(`{"solver":"2ecss"}`); code != http.StatusBadRequest {
		t.Errorf("missing graph = %d, want 400", code)
	}
	if code := post(`{"graph":{"n":3,"edges":[[0,1,1]]},"solver":"frobnicate"}`); code != http.StatusBadRequest {
		t.Errorf("unknown solver = %d, want 400", code)
	}
	if code := post(`{"graph":{"n":3,"edges":[[0,1,1]]},"solver":"kecss","k":0}`); code != http.StatusBadRequest {
		t.Errorf("kecss k=0 = %d, want 400", code)
	}
	if code := post(`{"graph":{"n":3,"edges":[[0,0,1]]},"solver":"2ecss"}`); code != http.StatusBadRequest {
		t.Errorf("self-loop = %d, want 400", code)
	}
	// Well-formed but unsolvable: a ring is not 3-edge-connected.
	req := &wire.SolveRequest{Graph: wire.GraphToJSON(ring), SolveSpec: wire.SolveSpec{Solver: "3ecss", Seed: 1}}
	resp, body := postJSON(t, ts.URL+"/v1/solve", req)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("unsolvable input = %d (%s), want 422", resp.StatusCode, body)
	}
}

func TestHealthMetricsAndDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	g := graph.Harary(2, 10, graph.UnitWeights())
	req := &wire.SolveRequest{Graph: wire.GraphToJSON(g), SolveSpec: wire.SolveSpec{Solver: "2ecss", Seed: 2}}

	if resp, body := getURL(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"ok"`)) {
		t.Fatalf("healthz = %d %s", resp.StatusCode, body)
	}
	solveOK(t, ts, req) // cold
	solveOK(t, ts, req) // hit

	_, body := getURL(t, ts.URL+"/metrics")
	for _, want := range []string{
		`kecss_requests_total{path="/v1/solve",code="200"} 2`,
		"kecss_cache_hits_total 1",
		"kecss_cache_misses_total 1",
		"kecss_cache_entries 1",
		`kecss_store_hits_total{tier="mem"} 1`,
		`kecss_store_hits_total{tier="disk"} 0`,
		"kecss_store_puts_total",
		"kecss_store_misses_total",
		"kecss_solve_seconds_count 1",
		"kecss_request_seconds_count 2",
		"kecss_queue_capacity 4",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}

	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Liveness vs readiness: draining flips /readyz to 503 while /healthz
	// stays 200 (the process is alive and still serves cache hits).
	if resp, _ := getURL(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining = %d, want 503", resp.StatusCode)
	}
	if resp, body := getURL(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"draining"`)) {
		t.Errorf("healthz while draining = %d %s, want 200 draining", resp.StatusCode, body)
	}
	// Cache hits are still served during drain; new work is refused.
	if out := solveOK(t, ts, req); !out.Cached {
		t.Error("cached result not served during drain")
	}
	fresh := &wire.SolveRequest{Graph: wire.GraphToJSON(g), SolveSpec: wire.SolveSpec{Solver: "2ecss", Seed: 99}}
	if resp, _ := postJSON(t, ts.URL+"/v1/solve", fresh); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("cold solve while draining = %d, want 503", resp.StatusCode)
	}
	s.Close()
	s.Close() // idempotent
	if resp, _ := getURL(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz after close = %d, want 503", resp.StatusCode)
	}
}

// Concurrent identical cache-misses are deduplicated: exactly one cold
// solve runs, everyone gets byte-identical results.
func TestSingleFlightDeduplication(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 2})
	g := graph.Harary(2, 20, graph.RandomWeights(randSource(7), 30))
	req := &wire.SolveRequest{Graph: wire.GraphToJSON(g), SolveSpec: wire.SolveSpec{Solver: "2ecss", Seed: 31}}

	const clients = 8
	type outcome struct {
		resp *wire.SolveResponse
		err  error
	}
	outcomes := make(chan outcome, clients)
	for i := 0; i < clients; i++ {
		go func() {
			raw, _ := json.Marshal(req)
			resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(raw))
			if err != nil {
				outcomes <- outcome{err: err}
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				body, _ := io.ReadAll(resp.Body)
				outcomes <- outcome{err: fmt.Errorf("status %d: %s", resp.StatusCode, body)}
				return
			}
			var out wire.SolveResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				outcomes <- outcome{err: err}
				return
			}
			outcomes <- outcome{resp: &out}
		}()
	}
	var first *wire.SolveResponse
	cold := 0
	for i := 0; i < clients; i++ {
		o := <-outcomes
		if o.err != nil {
			t.Fatal(o.err)
		}
		if !o.resp.Cached {
			cold++
		}
		if first == nil {
			first = o.resp
		} else if !reflect.DeepEqual(first.Edges, o.resp.Edges) || first.ResultDigest != o.resp.ResultDigest {
			t.Error("deduplicated clients got different results")
		}
	}
	if cold != 1 {
		t.Errorf("%d cold solves for %d identical concurrent requests, want exactly 1", cold, clients)
	}
	if got := s.metrics.solveLatency.count.Load(); got != 1 {
		t.Errorf("solve histogram recorded %d cold solves, want 1", got)
	}
	// Every request is accounted exactly once: 1 miss (the flight leader),
	// the rest hits — never both.
	hits, misses := s.metrics.cacheHits.Load(), s.metrics.cacheMisses.Load()
	if misses != 1 || hits+misses != clients {
		t.Errorf("metrics hits=%d misses=%d for %d requests, want misses=1 and hits+misses=%d",
			hits, misses, clients, clients)
	}
}

func getURL(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}
