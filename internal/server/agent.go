package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	kecss "repro"
	"repro/internal/chaos"
	"repro/internal/queue"
	"repro/internal/store"
	"repro/internal/wire"
)

// Agent is a stateless solver worker: it claims jobs from a broker,
// solves them on its own kecss.Pool, publishes results to the store, and
// reports outcomes through the lease. All durable state lives behind the
// broker (the frontend's journal) and the store — an agent can be
// SIGKILLed at any instant and the worst that happens is one lease
// expires and its job is redelivered.
//
// The same Agent runs fused inside the frontend process (the default
// kecss-serve mode, consuming the local broker directly) or standalone as
// cmd/kecss-agent (consuming an httpbroker.Client); the solve path is
// identical in both.
type Agent struct {
	broker  queue.Broker
	pool    *kecss.Pool
	st      *store.Store
	inj     *chaos.Injector
	onSolve func(time.Duration)

	cancel    context.CancelFunc
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// AgentConfig sizes an Agent.
type AgentConfig struct {
	// Workers is the solver pool size (0 = GOMAXPROCS).
	Workers int
	// Loops is how many claim loops run concurrently (0 = pool workers).
	Loops int
	// Store is where results are published before completion (required;
	// a memory-only store is fine for an agent, the frontend re-publishes
	// outcomes to its own store).
	Store *store.Store
	// Chaos is the fault-injection plan (nil in production).
	Chaos *chaos.Injector
	// OnSolve, when set, observes each cold solve's latency.
	OnSolve func(time.Duration)
}

// NewAgent starts an agent consuming b. Stop with Close.
func NewAgent(b queue.Broker, cfg AgentConfig) *Agent {
	pool := kecss.NewPool(cfg.Workers)
	loops := cfg.Loops
	if loops <= 0 {
		loops = pool.Workers()
	}
	a := &Agent{broker: b, pool: pool, st: cfg.Store, inj: cfg.Chaos, onSolve: cfg.OnSolve}
	ctx, cancel := context.WithCancel(context.Background())
	a.cancel = cancel
	for i := 0; i < loops; i++ {
		a.wg.Add(1)
		go a.loop(ctx)
	}
	return a
}

// Workers reports the solver pool size.
func (a *Agent) Workers() int { return a.pool.Workers() }

// Close stops claiming, waits for in-flight solves to complete (and
// report through their leases), then shuts the pool down. Idempotent.
func (a *Agent) Close() {
	a.closeOnce.Do(func() {
		a.cancel()
		a.wg.Wait()
		a.pool.Close()
	})
}

func (a *Agent) loop(ctx context.Context) {
	defer a.wg.Done()
	for {
		lease, err := a.broker.Claim(ctx)
		if err != nil {
			return // ctx cancelled or broker closed
		}
		a.runLease(lease)
	}
}

// runLease executes one claimed delivery: deadline fail-fast → store hit
// → solve → store put → complete, with the chaos plan's crash points at
// the spots a real crash would hit. The store put precedes the completion
// so a crash between them costs a redelivery, never a lost result.
func (a *Agent) runLease(lease *queue.Lease) {
	qj := lease.Job
	if dl := qj.Deadline(); !dl.IsZero() && time.Now().After(dl) {
		lease.Complete(&queue.Outcome{Err: "deadline exceeded before the solve started", Code: http.StatusGatewayTimeout})
		return
	}
	// The digest may already be solved — an earlier delivery, another
	// agent, or a previous run of a shared store.
	if v, ok := a.st.Get(qj.Digest); ok {
		resp := *(v.(*wire.SolveResponse))
		resp.Cached = true
		if raw, err := json.Marshal(&resp); err == nil {
			lease.Complete(&queue.Outcome{Result: raw})
			return
		}
	}
	a.inj.At(chaos.WorkerSolve) // planned stall: outlive the lease TTL
	var req wire.SolveRequest
	if err := json.Unmarshal(qj.Request, &req); err != nil {
		lease.Complete(&queue.Outcome{Err: fmt.Sprintf("undecodable job request: %v", err), Code: http.StatusBadRequest})
		return
	}
	work, _, err := buildWork(&req)
	if err != nil {
		lease.Complete(&queue.Outcome{Err: err.Error(), Code: http.StatusBadRequest})
		return
	}
	resp, serr := a.solve(work)
	if serr != nil {
		if serr.retryable {
			lease.Nack(serr.msg)
			return
		}
		lease.Complete(&queue.Outcome{Err: serr.msg, Code: serr.code})
		return
	}
	raw, err := json.Marshal(resp)
	if err != nil {
		lease.Complete(&queue.Outcome{Err: fmt.Sprintf("encoding result: %v", err), Code: http.StatusInternalServerError})
		return
	}
	if err := a.st.Put(work.digest, raw, resp); err != nil {
		// The result could not be made durable locally; retry the job
		// rather than completing with an unpublished result.
		lease.Nack(fmt.Sprintf("store: %v", err))
		return
	}
	a.inj.At(chaos.WorkerBeforeDone) // planned crash: solved, not journaled
	lease.Complete(&queue.Outcome{Result: raw})
}

// solve runs one cold solve on the pool.
func (a *Agent) solve(work *solveWork) (*wire.SolveResponse, *solveError) {
	start := time.Now()
	results := a.pool.Sweep([]kecss.Task{work.task})
	elapsed := time.Since(start)
	res := results[0]
	if res.Err != nil {
		if errors.Is(res.Err, kecss.ErrPoolClosed) {
			return nil, &solveError{code: http.StatusServiceUnavailable, msg: "agent is shut down", retryable: true}
		}
		// Anything else is an input the solver rejected (wrong
		// connectivity, bad k, ...): permanent, not retried.
		return nil, &solveError{code: http.StatusUnprocessableEntity, msg: res.Err.Error()}
	}
	if a.onSolve != nil {
		a.onSolve(elapsed)
	}
	return &wire.SolveResponse{
		Digest:       work.digest,
		Edges:        res.Edges,
		Weight:       res.Weight,
		Rounds:       res.Rounds,
		ResultDigest: wire.SolveResultDigest(res.Edges, res.Weight, res.Rounds),
		SolveMillis:  float64(elapsed) / float64(time.Millisecond),
	}, nil
}
