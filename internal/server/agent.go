package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	kecss "repro"
	"repro/internal/chaos"
	"repro/internal/queue"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Agent is a stateless solver worker: it claims jobs from a broker,
// solves them on its own kecss.Pool, publishes results to the store, and
// reports outcomes through the lease. All durable state lives behind the
// broker (the frontend's journal) and the store — an agent can be
// SIGKILLed at any instant and the worst that happens is one lease
// expires and its job is redelivered.
//
// The same Agent runs fused inside the frontend process (the default
// kecss-serve mode, consuming the local broker directly) or standalone as
// cmd/kecss-agent (consuming an httpbroker.Client); the solve path is
// identical in both.
type Agent struct {
	broker  queue.Broker
	pool    *kecss.Pool
	st      *store.Store
	inj     *chaos.Injector
	onSolve func(time.Duration)
	process string
	am      *AgentMetrics
	extend  time.Duration
	log     *slog.Logger

	cancel    context.CancelFunc
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// AgentConfig sizes an Agent.
type AgentConfig struct {
	// Workers is the solver pool size (0 = GOMAXPROCS).
	Workers int
	// Loops is how many claim loops run concurrently (0 = pool workers).
	Loops int
	// Store is where results are published before completion (required;
	// a memory-only store is fine for an agent, the frontend re-publishes
	// outcomes to its own store).
	Store *store.Store
	// Chaos is the fault-injection plan (nil in production).
	Chaos *chaos.Injector
	// OnSolve, when set, observes each cold solve's latency.
	OnSolve func(time.Duration)
	// Process tags the agent's trace spans ("agent" when empty); give
	// each remote agent a distinct tag so a stitched timeline names the
	// process that ran each attempt.
	Process string
	// Metrics, when set, receives the agent's own counters — for the
	// standalone agent's /metrics endpoint (the fused agent reports
	// through the frontend's metrics instead).
	Metrics *AgentMetrics
	// ExtendEvery, when > 0, heartbeats each held lease on that period so
	// long solves outlive the lease TTL. Off by default: the fault-
	// injection harness relies on stalled solves losing their leases.
	ExtendEvery time.Duration
	// Logger receives structured logs keyed by job_id/digest/attempt; nil
	// discards them.
	Logger *slog.Logger
}

// NewAgent starts an agent consuming b. Stop with Close.
func NewAgent(b queue.Broker, cfg AgentConfig) *Agent {
	pool := kecss.NewPool(cfg.Workers)
	loops := cfg.Loops
	if loops <= 0 {
		loops = pool.Workers()
	}
	process := cfg.Process
	if process == "" {
		process = "agent"
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	a := &Agent{
		broker:  b,
		pool:    pool,
		st:      cfg.Store,
		inj:     cfg.Chaos,
		onSolve: cfg.OnSolve,
		process: process,
		am:      cfg.Metrics,
		extend:  cfg.ExtendEvery,
		log:     logger,
	}
	ctx, cancel := context.WithCancel(context.Background())
	a.cancel = cancel
	for i := 0; i < loops; i++ {
		a.wg.Add(1)
		go a.loop(ctx)
	}
	return a
}

// Workers reports the solver pool size.
func (a *Agent) Workers() int { return a.pool.Workers() }

// Close stops claiming, waits for in-flight solves to complete (and
// report through their leases), then shuts the pool down. Idempotent.
func (a *Agent) Close() {
	a.closeOnce.Do(func() {
		a.cancel()
		a.wg.Wait()
		a.pool.Close()
	})
}

func (a *Agent) loop(ctx context.Context) {
	defer a.wg.Done()
	for {
		lease, err := a.broker.Claim(ctx)
		if err != nil {
			return // ctx cancelled or broker closed
		}
		a.runLease(lease)
	}
}

// leaseTrace is the agent-side slice of a job's trace: a subtree rooted at
// parent 0 that the frontend grafts under this delivery's claim span. A
// nil leaseTrace (the delivery carried no trace context) makes every
// method a no-op, so the solve path pays nothing when tracing is off.
type leaseTrace struct {
	tr   *telemetry.Trace
	root telemetry.SpanRef
}

func newLeaseTrace(qj *queue.Job, process string) *leaseTrace {
	if qj.TraceSpan == 0 {
		return nil
	}
	lt := &leaseTrace{tr: telemetry.New(qj.ID, process)}
	lt.root = lt.tr.Start(0, "agent", qj.Attempt,
		telemetry.Int("attempt", int64(qj.Attempt)))
	return lt
}

// span opens a child of the agent root (inert when tracing is off).
func (lt *leaseTrace) span(name string, attempt int, attrs ...telemetry.Attr) telemetry.SpanRef {
	if lt == nil {
		return telemetry.SpanRef{}
	}
	return lt.tr.Start(lt.root.ID(), name, attempt, attrs...)
}

// attach closes the root and ships the subtree on the outcome.
func (lt *leaseTrace) attach(out *queue.Outcome) *queue.Outcome {
	if lt == nil {
		return out
	}
	lt.root.End()
	out.Spans = lt.tr.Export()
	return out
}

// runLease executes one claimed delivery: deadline fail-fast → store hit
// → solve → store put → complete, with the chaos plan's crash points at
// the spots a real crash would hit. The store put precedes the completion
// so a crash between them costs a redelivery, never a lost result.
func (a *Agent) runLease(lease *queue.Lease) {
	qj := lease.Job
	if a.am != nil {
		a.am.claims.Add(1)
	}
	a.log.Debug("lease claimed", "job_id", qj.ID, "digest", qj.Digest, "attempt", qj.Attempt)
	lt := newLeaseTrace(qj, a.process)
	if a.extend > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go a.heartbeat(lease, stop)
	}
	if dl := qj.Deadline(); !dl.IsZero() && time.Now().After(dl) {
		lease.Complete(lt.attach(&queue.Outcome{Err: "deadline exceeded before the solve started", Code: http.StatusGatewayTimeout}))
		return
	}
	// The digest may already be solved — an earlier delivery, another
	// agent, or a previous run of a shared store.
	gspan := lt.span("store.get", qj.Attempt)
	v, hit := a.st.Get(qj.Digest)
	gspan.End(telemetry.Bool("hit", hit))
	if hit {
		if a.am != nil {
			a.am.storeHits.Add(1)
		}
		resp := *(v.(*wire.SolveResponse))
		resp.Cached = true
		if raw, err := json.Marshal(&resp); err == nil {
			lease.Complete(lt.attach(&queue.Outcome{Result: raw}))
			return
		}
	}
	a.inj.At(chaos.WorkerSolve) // planned stall: outlive the lease TTL
	var req wire.SolveRequest
	if err := json.Unmarshal(qj.Request, &req); err != nil {
		lease.Complete(lt.attach(&queue.Outcome{Err: fmt.Sprintf("undecodable job request: %v", err), Code: http.StatusBadRequest}))
		return
	}
	work, _, err := buildWork(&req)
	if err != nil {
		lease.Complete(lt.attach(&queue.Outcome{Err: err.Error(), Code: http.StatusBadRequest}))
		return
	}
	resp, serr := a.solve(work, lt, qj.Attempt)
	if serr != nil {
		if a.am != nil {
			a.am.solveErrs.Add(1)
		}
		a.log.Info("solve failed", "job_id", qj.ID, "digest", qj.Digest, "attempt", qj.Attempt, "err", serr.msg, "retryable", serr.retryable)
		if serr.retryable {
			lease.Nack(serr.msg)
			return
		}
		lease.Complete(lt.attach(&queue.Outcome{Err: serr.msg, Code: serr.code}))
		return
	}
	raw, err := json.Marshal(resp)
	if err != nil {
		lease.Complete(lt.attach(&queue.Outcome{Err: fmt.Sprintf("encoding result: %v", err), Code: http.StatusInternalServerError}))
		return
	}
	pspan := lt.span("store.put", qj.Attempt)
	err = a.st.Put(work.digest, raw, resp)
	pspan.End()
	if err != nil {
		// The result could not be made durable locally; retry the job
		// rather than completing with an unpublished result.
		lease.Nack(fmt.Sprintf("store: %v", err))
		return
	}
	a.inj.At(chaos.WorkerBeforeDone) // planned crash: solved, not journaled
	a.log.Info("solve complete", "job_id", qj.ID, "digest", qj.Digest, "attempt", qj.Attempt, "solve_millis", resp.SolveMillis)
	lease.Complete(lt.attach(&queue.Outcome{Result: raw}))
}

// heartbeat extends the lease every a.extend until the delivery finishes
// or the lease is lost (an Extend on a lapsed lease reports false).
func (a *Agent) heartbeat(lease *queue.Lease, stop <-chan struct{}) {
	t := time.NewTicker(a.extend)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if !lease.Extend() {
				return
			}
			if a.am != nil {
				a.am.extends.Add(1)
			}
		}
	}
}

// solve runs one cold solve on the pool. With tracing on, a phase observer
// rides the task options and every solver phase (validation, base
// labeling, cut enumeration, augmentation, ...) lands as a "phase.*" child
// of the solve span, annotated with its CONGEST round/message counts.
func (a *Agent) solve(work *solveWork, lt *leaseTrace, attempt int) (*wire.SolveResponse, *solveError) {
	task := work.task
	sspan := lt.span("solve", attempt)
	if lt != nil {
		sid := sspan.ID()
		obs := kecss.PhaseObserver(func(ev kecss.PhaseEvent) {
			attrs := make([]telemetry.Attr, 0, 5)
			if ev.Level > 0 {
				attrs = append(attrs, telemetry.Int("level", int64(ev.Level)))
			}
			if ev.Rounds > 0 {
				attrs = append(attrs, telemetry.Int("rounds", ev.Rounds))
			}
			if ev.Messages > 0 {
				attrs = append(attrs, telemetry.Int("messages", ev.Messages))
			}
			if ev.Iterations > 0 {
				attrs = append(attrs, telemetry.Int("iterations", int64(ev.Iterations)))
			}
			if ev.Items > 0 {
				attrs = append(attrs, telemetry.Int("items", int64(ev.Items)))
			}
			lt.tr.Add(sid, "phase."+ev.Phase, attempt, ev.Start, ev.Duration, attrs...)
		})
		task.Opts = append(append([]kecss.Option(nil), task.Opts...), kecss.WithPhaseObserver(obs))
	}
	start := time.Now()
	results := a.pool.Sweep([]kecss.Task{task})
	elapsed := time.Since(start)
	res := results[0]
	if res.Err != nil {
		sspan.End(telemetry.String("error", res.Err.Error()))
		if errors.Is(res.Err, kecss.ErrPoolClosed) {
			return nil, &solveError{code: http.StatusServiceUnavailable, msg: "agent is shut down", retryable: true}
		}
		// Anything else is an input the solver rejected (wrong
		// connectivity, bad k, ...): permanent, not retried.
		return nil, &solveError{code: http.StatusUnprocessableEntity, msg: res.Err.Error()}
	}
	sspan.End(telemetry.Int("rounds", res.Rounds), telemetry.Int("edges", int64(len(res.Edges))))
	if a.onSolve != nil {
		a.onSolve(elapsed)
	}
	if a.am != nil {
		a.am.solves.Add(1)
		a.am.solveLatency.observe(elapsed)
	}
	return &wire.SolveResponse{
		Digest:       work.digest,
		Edges:        res.Edges,
		Weight:       res.Weight,
		Rounds:       res.Rounds,
		ResultDigest: wire.SolveResultDigest(res.Edges, res.Weight, res.Rounds),
		SolveMillis:  float64(elapsed) / float64(time.Millisecond),
	}, nil
}

// AgentMetrics is the standalone agent's own instrumentation: claim /
// solve / store counters and a solve-latency histogram, rendered by
// WriteMetrics in the same Prometheus text format the frontend uses.
type AgentMetrics struct {
	claims    atomic.Int64
	solves    atomic.Int64
	solveErrs atomic.Int64
	storeHits atomic.Int64
	extends   atomic.Int64

	solveLatency *histogram
}

// NewAgentMetrics builds an empty metrics set.
func NewAgentMetrics() *AgentMetrics {
	return &AgentMetrics{solveLatency: newHistogram()}
}

// WriteMetrics renders the agent metrics in Prometheus text exposition
// format.
func (m *AgentMetrics) WriteMetrics(w io.Writer) {
	fmt.Fprintln(w, "# TYPE kecss_agent_claims_total counter")
	fmt.Fprintf(w, "kecss_agent_claims_total %d\n", m.claims.Load())
	fmt.Fprintln(w, "# TYPE kecss_agent_solves_total counter")
	fmt.Fprintf(w, "kecss_agent_solves_total %d\n", m.solves.Load())
	fmt.Fprintln(w, "# TYPE kecss_agent_solve_errors_total counter")
	fmt.Fprintf(w, "kecss_agent_solve_errors_total %d\n", m.solveErrs.Load())
	fmt.Fprintln(w, "# TYPE kecss_agent_store_hits_total counter")
	fmt.Fprintf(w, "kecss_agent_store_hits_total %d\n", m.storeHits.Load())
	fmt.Fprintln(w, "# TYPE kecss_agent_lease_extends_total counter")
	fmt.Fprintf(w, "kecss_agent_lease_extends_total %d\n", m.extends.Load())
	fmt.Fprintln(w, "# TYPE kecss_agent_solve_seconds histogram")
	m.solveLatency.write(w, "kecss_agent_solve_seconds", "")
}
