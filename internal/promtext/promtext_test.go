package promtext

import (
	"strings"
	"testing"
)

func TestLintAcceptsWellFormedPayload(t *testing.T) {
	payload := `# TYPE kecss_requests_total counter
kecss_requests_total{path="/v1/solve",code="200"} 12
kecss_requests_total{path="/v1/solve",code="429"} 1
# TYPE kecss_queue_depth gauge
kecss_queue_depth 3
# TYPE kecss_solve_seconds histogram
kecss_solve_seconds_bucket{le="0.1"} 2
kecss_solve_seconds_bucket{le="1"} 5
kecss_solve_seconds_bucket{le="+Inf"} 6
kecss_solve_seconds_sum 4.2
kecss_solve_seconds_count 6
`
	if err := Lint([]byte(payload)); err != nil {
		t.Fatalf("well-formed payload rejected: %v", err)
	}
}

func TestLintAcceptsLabeledHistogramFamily(t *testing.T) {
	payload := `# TYPE kecss_stage_seconds histogram
kecss_stage_seconds_bucket{stage="queue_wait",le="0.5"} 1
kecss_stage_seconds_bucket{stage="queue_wait",le="+Inf"} 2
kecss_stage_seconds_sum{stage="queue_wait"} 0.9
kecss_stage_seconds_count{stage="queue_wait"} 2
kecss_stage_seconds_bucket{stage="solve",le="0.5"} 0
kecss_stage_seconds_bucket{stage="solve",le="+Inf"} 0
kecss_stage_seconds_sum{stage="solve"} 0
kecss_stage_seconds_count{stage="solve"} 0
`
	if err := Lint([]byte(payload)); err != nil {
		t.Fatalf("labeled histogram family rejected: %v", err)
	}
}

func TestLintRejections(t *testing.T) {
	cases := []struct {
		name    string
		payload string
		want    string
	}{
		{
			"garbage line",
			"!!! not a metric\n",
			"does not start with a metric name",
		},
		{
			"bad value",
			"kecss_up one\n",
			"bad value",
		},
		{
			"duplicate TYPE",
			"# TYPE a counter\na 1\n# TYPE a counter\n",
			"duplicate # TYPE",
		},
		{
			"TYPE after samples",
			"a 1\n# TYPE a counter\n",
			"after its samples",
		},
		{
			"interleaved families",
			"a 1\nb 2\na 3\n",
			"not consecutive",
		},
		{
			"non-cumulative buckets",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			"not cumulative",
		},
		{
			"missing +Inf",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
			"+Inf",
		},
		{
			"count mismatch",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 7\n",
			"_count 7 != +Inf bucket 5",
		},
		{
			"missing sum",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n",
			"missing _count or _sum",
		},
		{
			"unterminated label value",
			"a{x=\"oops} 1\n",
			"unterminated",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Lint([]byte(tc.payload))
			if err == nil {
				t.Fatalf("payload accepted, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}
