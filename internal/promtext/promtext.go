// Package promtext validates Prometheus text exposition payloads — the
// hand-rolled /metrics output of kecss-serve and kecss-agent. It is a
// lint, not a full parser: it enforces the subset of the format a real
// scraper depends on, so a formatting regression (stray text, duplicated
// TYPE lines, non-cumulative histogram buckets) fails a test instead of
// silently breaking ingestion.
//
// Checks:
//
//   - every line is empty, a # HELP/# TYPE comment, or a sample of the
//     form name{labels} value, with the name well-formed, the labels
//     parseable and the value a float
//   - at most one # TYPE line per metric family, appearing before the
//     family's first sample
//   - a family's samples are consecutive (no interleaving with another
//     family's)
//   - histogram families have, per label set: le-ordered strictly
//     increasing bucket bounds, non-decreasing (cumulative) bucket
//     values, a +Inf bucket, and _count/_sum samples with _count equal
//     to the +Inf bucket
package promtext

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// sample is one parsed metric line.
type sample struct {
	name   string
	labels map[string]string
	value  float64
	line   int
}

// family collects what the lint saw of one metric family.
type family struct {
	typ     string // from # TYPE, "" if undeclared
	typLine int
	samples []sample
	sealed  bool // a different family's sample appeared after ours
}

// Lint validates a text exposition payload, returning the first problem
// found (nil = clean).
func Lint(b []byte) error {
	families := map[string]*family{}
	var order []string
	get := func(name string) *family {
		f, ok := families[name]
		if !ok {
			f = &family{}
			families[name] = f
			order = append(order, name)
		}
		return f
	}
	lastFamily := ""
	for i, line := range strings.Split(string(b), "\n") {
		n := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := parseComment(line)
			if err != nil {
				return fmt.Errorf("line %d: %v", n, err)
			}
			if kind == "TYPE" {
				f := get(name)
				if f.typ != "" {
					return fmt.Errorf("line %d: duplicate # TYPE for %s (first at line %d)", n, name, f.typLine)
				}
				if len(f.samples) > 0 {
					return fmt.Errorf("line %d: # TYPE for %s after its samples (first sample at line %d)", n, name, f.samples[0].line)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", n, rest)
				}
				f.typ = rest
				f.typLine = n
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", n, err)
		}
		s.line = n
		base := familyName(s.name, families)
		f := get(base)
		if f.sealed {
			return fmt.Errorf("line %d: samples of %s are not consecutive (family resumed after other samples)", n, base)
		}
		if lastFamily != "" && lastFamily != base {
			families[lastFamily].sealed = true
		}
		lastFamily = base
		f.samples = append(f.samples, s)
	}
	for _, name := range order {
		f := families[name]
		if f.typ == "histogram" {
			if err := checkHistogram(name, f); err != nil {
				return err
			}
		}
	}
	return nil
}

// parseComment splits a # HELP / # TYPE line.
func parseComment(line string) (kind, name, rest string, err error) {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 || fields[0] != "#" {
		return "", "", "", fmt.Errorf("malformed comment %q", line)
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) != 4 {
			return "", "", "", fmt.Errorf("malformed # TYPE line %q", line)
		}
		if !validName(fields[2]) {
			return "", "", "", fmt.Errorf("bad metric name %q in # TYPE", fields[2])
		}
		return "TYPE", fields[2], fields[3], nil
	case "HELP":
		if len(fields) < 3 || !validName(fields[2]) {
			return "", "", "", fmt.Errorf("malformed # HELP line %q", line)
		}
		return "HELP", fields[2], "", nil
	default:
		// Other comments are legal and ignored by scrapers.
		return "", "", "", nil
	}
}

// parseSample parses `name{labels} value [timestamp]`.
func parseSample(line string) (sample, error) {
	s := sample{labels: map[string]string{}}
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("sample line %q does not start with a metric name", line)
	}
	s.name = line[:i]
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, err := parseLabels(rest, s.labels)
		if err != nil {
			return s, err
		}
		rest = rest[end:]
	}
	rest = strings.TrimLeft(rest, " \t")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("sample %q: want `value [timestamp]` after name, got %q", s.name, rest)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("sample %q: bad value %q: %v", s.name, fields[0], err)
	}
	s.value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("sample %q: bad timestamp %q", s.name, fields[1])
		}
	}
	return s, nil
}

// parseLabels parses a {k="v",...} block starting at in[0] == '{',
// returning the index just past the closing brace.
func parseLabels(in string, out map[string]string) (int, error) {
	i := 1
	for {
		for i < len(in) && (in[i] == ' ' || in[i] == ',') {
			i++
		}
		if i < len(in) && in[i] == '}' {
			return i + 1, nil
		}
		start := i
		for i < len(in) && isNameChar(in[i], i == start) {
			i++
		}
		if i == start {
			return 0, fmt.Errorf("bad label block %q", in)
		}
		key := in[start:i]
		if i >= len(in) || in[i] != '=' {
			return 0, fmt.Errorf("label %q not followed by =", key)
		}
		i++
		if i >= len(in) || in[i] != '"' {
			return 0, fmt.Errorf("label %q value not quoted", key)
		}
		i++
		var val strings.Builder
		for i < len(in) && in[i] != '"' {
			if in[i] == '\\' && i+1 < len(in) {
				i++
				switch in[i] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(in[i])
				default:
					return 0, fmt.Errorf("label %q: bad escape \\%c", key, in[i])
				}
			} else {
				val.WriteByte(in[i])
			}
			i++
		}
		if i >= len(in) {
			return 0, fmt.Errorf("label %q value unterminated", key)
		}
		i++ // closing quote
		if _, dup := out[key]; dup {
			return 0, fmt.Errorf("duplicate label %q", key)
		}
		out[key] = val.String()
	}
}

func validName(s string) bool {
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i == 0) {
			return false
		}
	}
	return len(s) > 0
}

func isNameChar(c byte, first bool) bool {
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' {
		return true
	}
	return !first && c >= '0' && c <= '9'
}

// familyName maps a sample name to its family: histogram suffixes
// (_bucket/_sum/_count) fold into the declared histogram family.
func familyName(name string, families map[string]*family) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suf)
		if !ok {
			continue
		}
		if f, exists := families[base]; exists && (f.typ == "histogram" || f.typ == "summary") {
			return base
		}
	}
	return name
}

// checkHistogram validates cumulative buckets and _count/_sum consistency
// per label set of one histogram family.
func checkHistogram(name string, f *family) error {
	type series struct {
		bounds []float64
		counts []float64
		count  *sample
		sum    *sample
		line   int
	}
	byLabels := map[string]*series{}
	var order []string
	get := func(s sample) *series {
		key := labelKey(s.labels)
		sr, ok := byLabels[key]
		if !ok {
			sr = &series{line: s.line}
			byLabels[key] = sr
			order = append(order, key)
		}
		return sr
	}
	for i := range f.samples {
		s := f.samples[i]
		switch s.name {
		case name + "_bucket":
			le, ok := s.labels["le"]
			if !ok {
				return fmt.Errorf("line %d: %s_bucket without le label", s.line, name)
			}
			var bound float64
			if le == "+Inf" {
				bound = float64(1 << 62) // sorts after every finite bound
			} else {
				v, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("line %d: %s_bucket has bad le %q", s.line, name, le)
				}
				bound = v
			}
			delete(s.labels, "le")
			sr := get(s)
			sr.bounds = append(sr.bounds, bound)
			sr.counts = append(sr.counts, s.value)
		case name + "_count":
			sr := get(s)
			if sr.count != nil {
				return fmt.Errorf("line %d: duplicate %s_count for label set", s.line, name)
			}
			sr.count = &f.samples[i]
		case name + "_sum":
			sr := get(s)
			if sr.sum != nil {
				return fmt.Errorf("line %d: duplicate %s_sum for label set", s.line, name)
			}
			sr.sum = &f.samples[i]
		default:
			return fmt.Errorf("line %d: histogram %s has stray sample %s", s.line, name, s.name)
		}
	}
	for _, key := range order {
		sr := byLabels[key]
		where := fmt.Sprintf("histogram %s{%s} (near line %d)", name, key, sr.line)
		if len(sr.bounds) == 0 {
			return fmt.Errorf("%s: no buckets", where)
		}
		for i := 1; i < len(sr.bounds); i++ {
			if sr.bounds[i] <= sr.bounds[i-1] {
				return fmt.Errorf("%s: bucket bounds not increasing", where)
			}
			if sr.counts[i] < sr.counts[i-1] {
				return fmt.Errorf("%s: bucket counts not cumulative", where)
			}
		}
		if sr.bounds[len(sr.bounds)-1] != float64(1<<62) {
			return fmt.Errorf("%s: missing le=\"+Inf\" bucket", where)
		}
		if sr.count == nil || sr.sum == nil {
			return fmt.Errorf("%s: missing _count or _sum", where)
		}
		if inf := sr.counts[len(sr.counts)-1]; sr.count.value != inf {
			return fmt.Errorf("%s: _count %g != +Inf bucket %g", where, sr.count.value, inf)
		}
	}
	return nil
}

// labelKey renders a label set canonically (sorted keys).
func labelKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%q", k, labels[k])
	}
	return strings.Join(parts, ",")
}
