package service

import (
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/mst"
)

func TestPoolRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		p := NewPool(workers, false)
		const n = 100
		counts := make([]int32, n)
		var mu sync.Mutex
		p.Run(n, func(i int, w *Worker) {
			if w.Arena != nil {
				t.Error("pool built without arenas handed out an arena")
			}
			mu.Lock()
			counts[i]++
			mu.Unlock()
		})
		p.Close()
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestPoolWorkersOwnDistinctArenas(t *testing.T) {
	p := NewPool(4, true)
	defer p.Close()
	if p.Size() != 4 {
		t.Fatalf("Size = %d, want 4", p.Size())
	}
	seen := map[*congest.NetworkArena]int{}
	var mu sync.Mutex
	p.Run(64, func(i int, w *Worker) {
		if w.Arena == nil {
			t.Error("arena-enabled pool handed out a nil arena")
			return
		}
		mu.Lock()
		seen[w.Arena] = w.ID
		mu.Unlock()
	})
	for a, id := range seen {
		_ = id
		if a == nil {
			t.Fatal("nil arena recorded")
		}
	}
	if len(seen) > 4 {
		t.Fatalf("more arenas (%d) than workers (4)", len(seen))
	}
}

// The load-bearing property: per-index derivation makes batch output
// independent of worker count and scheduling, including when tasks drive
// real simulations through per-worker arenas.
func TestPoolResultsIndependentOfWorkerCount(t *testing.T) {
	run := func(workers int, arenas bool) []int64 {
		p := NewPool(workers, arenas)
		defer p.Close()
		out := make([]int64, 12)
		p.Run(len(out), func(i int, w *Worker) {
			g := graph.Harary(3, 16+2*i, graph.UnitWeights())
			var opts []congest.Option
			if w.Arena != nil {
				opts = append(opts, congest.WithArena(w.Arena))
			}
			res, err := mst.DistributedBoruvka(g, opts...)
			if err != nil {
				t.Error(err)
				return
			}
			out[i] = res.Weight + int64(res.Metrics.Rounds)<<20
		})
		return out
	}
	want := run(1, false)
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0) + 2} {
		for _, arenas := range []bool{false, true} {
			got := run(workers, arenas)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d arenas=%v: task %d diverged: %d vs %d",
						workers, arenas, i, got[i], want[i])
				}
			}
		}
	}
}

func TestPoolConcurrentBatches(t *testing.T) {
	p := NewPool(3, true)
	defer p.Close()
	var wg sync.WaitGroup
	for b := 0; b < 4; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sum := make([]int, 50)
			p.Run(50, func(i int, w *Worker) { sum[i] = i })
			for i, v := range sum {
				if v != i {
					t.Errorf("batch task %d not run", i)
				}
			}
		}()
	}
	wg.Wait()
}

func TestPoolTaskPanicPropagates(t *testing.T) {
	p := NewPool(2, false)
	defer p.Close()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic in task did not propagate to Run")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("panic value %v does not carry the task's message", r)
		}
	}()
	p.Run(10, func(i int, w *Worker) {
		if i == 3 {
			panic("boom")
		}
	})
}

func TestPoolRunAfterCloseRejected(t *testing.T) {
	p := NewPool(1, false)
	p.Close()
	p.Close() // idempotent
	ran := false
	if err := p.Run(1, func(int, *Worker) { ran = true }); err != ErrClosed {
		t.Fatalf("Run on a closed pool returned %v, want ErrClosed", err)
	}
	if ran {
		t.Fatal("Run on a closed pool executed its task")
	}
}

// Run racing Close must yield either a fully-executed batch or ErrClosed —
// never a panic, never a partial batch. Exercised under -race in CI.
func TestPoolCloseConcurrentWithRun(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		p := NewPool(2, false)
		const n = 32
		var wg sync.WaitGroup
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var count atomic.Int64
				err := p.Run(n, func(int, *Worker) { count.Add(1) })
				switch {
				case err == nil && count.Load() != n:
					t.Errorf("admitted batch ran %d/%d tasks", count.Load(), n)
				case err == ErrClosed && count.Load() != 0:
					t.Errorf("rejected batch still ran %d tasks", count.Load())
				case err != nil && err != ErrClosed:
					t.Errorf("unexpected Run error: %v", err)
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Close()
		}()
		wg.Wait()
		p.Close()
	}
}

func TestDoRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 9} {
		const n = 100
		var hits [n]atomic.Int64
		Do(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, hits[i].Load())
			}
		}
	}
	Do(4, 0, func(int) { t.Fatal("n=0 must run nothing") })
}

func TestDoInlineWhenSequential(t *testing.T) {
	// workers <= 1 must run on the caller's goroutine, in order.
	var order []int
	Do(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential Do out of order: %v", order)
		}
	}
}

func TestDoPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("Do must re-panic on the caller's goroutine")
		}
	}()
	Do(4, 50, func(i int) {
		if i == 13 {
			panic("boom")
		}
	})
}
