// Package service provides the persistent worker pool behind kecss.Pool and
// the experiment sweeps: a fixed set of long-lived workers, each owning a
// private congest.NetworkArena, executing index-addressed task batches.
//
// The pool's contract is built around determinism under arbitrary
// scheduling: Run hands out task *indices* through a work-stealing cursor,
// so which worker executes which index is unspecified — but results are
// written by index, and callers derive all per-task state (RNG seeds in
// particular) from the index, never from the worker. A batch therefore
// produces byte-identical results whether the pool has one worker or many.
//
// Arenas, by contrast, are deliberately per-worker: a worker runs its tasks
// sequentially, so its arena is never borrowed by two live networks at once
// (the ownership rule in congest.NetworkArena), while consecutive tasks on
// the same worker recycle each other's simulation buffers.
package service

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/congest"
	"repro/internal/cycles"
)

// ErrClosed is returned by Run on a pool whose Close has begun. Callers that
// race Run against Close get either a fully-executed batch or ErrClosed,
// never a partial batch and never a panic.
var ErrClosed = errors.New("service: pool is closed")

// Worker is the per-goroutine state a task runs with. A worker executes one
// task at a time, so a task may use every field without locking.
type Worker struct {
	// ID is the worker's index in 0..Size()-1. It identifies the goroutine,
	// not the task: per-task state (RNGs especially) must be derived from
	// the task index passed to Run, or results become schedule-dependent.
	ID int
	// Arena is the worker's private simulation arena, or nil for a pool
	// built with arenas disabled. Tasks pass it to the congest layer
	// (congest.WithArena) so consecutive tasks on this worker reuse each
	// other's network buffers.
	Arena *congest.NetworkArena
	// Labels is the worker's private incremental-labeling arena (nil when
	// arenas are disabled). Tasks pass it to the 3-ECSS solvers
	// (core.ThreeECSSOptions.LabelArena) so consecutive solves on this
	// worker recycle the labeling engine's per-edge tables and count maps.
	Labels *cycles.Arena
}

// batch is one Run call: n tasks claimed through a shared cursor by every
// worker of the pool.
type batch struct {
	n      int
	fn     func(i int, w *Worker)
	cursor *atomic.Int64
	wg     *sync.WaitGroup
	failed *atomic.Value // first recovered panic, if any
}

// Pool is a fixed-size pool of persistent workers. Create with NewPool, use
// with Run, shut down with Close. Run may be called from multiple
// goroutines concurrently and is safe, but batches are coarse-grained: a
// worker services its current batch until the batch is out of tasks, so a
// small batch submitted while a large one is in flight waits for workers
// to free up rather than interleaving task-by-task. Tasks must not call
// Run on their own pool (the workers are all busy running them — it would
// deadlock).
//
// Close is idempotent and may race with Run: a Run that wins admission
// completes its whole batch before Close returns, and a Run that loses
// returns ErrClosed.
type Pool struct {
	workers []*Worker
	jobs    chan batch
	done    sync.WaitGroup

	// mu serialises batch submission against Close: Run holds it shared
	// while checking closed and handing its batch to the workers, Close
	// holds it exclusively while marking closed and closing jobs. This is
	// what turns the Run/Close race from a send-on-closed-channel panic
	// into a clean ErrClosed.
	mu     sync.RWMutex
	closed bool // guarded by mu (writes hold mu; reads may hold mu.RLock)
}

// NewPool returns a running pool of n workers; n <= 0 means GOMAXPROCS.
// arenas selects whether each worker owns a congest.NetworkArena (disable
// only to measure the arenas' effect; results are identical either way).
func NewPool(n int, arenas bool) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{jobs: make(chan batch)}
	for i := 0; i < n; i++ {
		w := &Worker{ID: i}
		if arenas {
			w.Arena = congest.NewArena()
			w.Labels = cycles.NewLabelArena()
		}
		p.workers = append(p.workers, w)
		p.done.Add(1)
		go p.loop(w)
	}
	return p
}

// Size returns the number of workers.
func (p *Pool) Size() int { return len(p.workers) }

// Run executes fn(i, w) for every i in 0..n-1 on the pool's workers and
// returns when all n calls have finished. Indices are claimed dynamically,
// so fn must derive per-task state from i, never from w.ID. If a task
// panics, the remaining tasks of the batch are abandoned and Run re-panics
// with the first recovered value.
//
// On a closed pool Run executes nothing and returns ErrClosed; a Run that
// was admitted before Close always completes its whole batch.
func (p *Pool) Run(n int, fn func(i int, w *Worker)) error {
	if n <= 0 {
		return nil
	}
	b := batch{
		n:      n,
		fn:     fn,
		cursor: new(atomic.Int64),
		wg:     new(sync.WaitGroup),
		failed: new(atomic.Value),
	}
	b.wg.Add(len(p.workers))
	// Hand the batch to every worker under the shared lock: once the last
	// send returns, each worker holds its copy, so Close (which waits for
	// the exclusive lock) can close jobs without stranding this batch.
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return ErrClosed
	}
	for range p.workers {
		p.jobs <- b
	}
	p.mu.RUnlock()
	b.wg.Wait()
	if v := b.failed.Load(); v != nil {
		panic(fmt.Sprintf("service: task panicked: %v", v))
	}
	return nil
}

// Close shuts the workers down and waits for them to exit. Close is
// idempotent, safe to call concurrently with Run (in-flight batches
// complete first; not-yet-admitted Runs return ErrClosed), and safe to call
// from multiple goroutines.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()
	p.done.Wait() // every Close caller returns only once the workers exit
}

// Do executes fn(i) for every i in 0..n-1 across up to `workers` transient
// goroutines and returns when all calls have finished. It is the
// lightweight, poolless sibling of Pool.Run for parallel sections inside a
// task (a task must not call Run on its own pool, but may call Do): indices
// are claimed dynamically through a shared cursor, so fn must derive all
// per-index state from i — never from goroutine identity — to keep results
// schedule-independent. workers <= 1 (or n <= 1) runs the loop inline on the
// caller's goroutine with no synchronisation at all.
//
// If any fn panics, the remaining indices are abandoned and Do panics on
// the caller's goroutine with a message describing the first recovered
// value (stringified with its index, exactly like Run — the original panic
// value is not preserved).
func Do(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var cursor atomic.Int64
	var failed atomic.Value
	var wg sync.WaitGroup
	body := func() {
		defer wg.Done()
		for failed.Load() == nil {
			i := int(cursor.Add(1)) - 1
			if i >= n {
				return
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						failed.CompareAndSwap(nil, fmt.Sprintf("index %d: %v", i, r))
					}
				}()
				fn(i)
			}()
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go body()
	}
	wg.Wait()
	if v := failed.Load(); v != nil {
		panic(fmt.Sprintf("service: Do worker panicked: %v", v))
	}
}

func (p *Pool) loop(w *Worker) {
	defer p.done.Done()
	for b := range p.jobs {
		b.run(w)
	}
}

// run claims tasks until the batch is exhausted or a task has panicked.
func (b batch) run(w *Worker) {
	defer b.wg.Done()
	for b.failed.Load() == nil {
		i := int(b.cursor.Add(1)) - 1
		if i >= b.n {
			return
		}
		b.call(i, w)
	}
}

// call runs one task, converting a panic into the batch's failure marker so
// the other workers stop claiming and Run can re-panic on the caller's
// goroutine instead of killing a pool worker.
func (b batch) call(i int, w *Worker) {
	defer func() {
		if r := recover(); r != nil {
			b.failed.CompareAndSwap(nil, fmt.Sprintf("task %d: %v", i, r))
		}
	}()
	b.fn(i, w)
}
