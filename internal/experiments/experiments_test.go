package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// The experiment suite is the repository's reproduction deliverable, so it
// must run end-to-end; Quick scale keeps these tests fast while exercising
// every code path.
func TestAllExperimentsQuick(t *testing.T) {
	tables, err := All(Scale{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 18 {
		t.Fatalf("got %d tables, want 18", len(tables))
	}
	seen := map[string]bool{}
	for _, tbl := range tables {
		if tbl.ID == "" || tbl.Title == "" || tbl.Claim == "" {
			t.Errorf("table %q missing metadata", tbl.ID)
		}
		if seen[tbl.ID] {
			t.Errorf("duplicate table ID %q", tbl.ID)
		}
		seen[tbl.ID] = true
		if len(tbl.Rows) == 0 {
			t.Errorf("table %s has no rows", tbl.ID)
		}
		for _, r := range tbl.Rows {
			if len(r) != len(tbl.Header) {
				t.Errorf("table %s: row width %d vs header %d", tbl.ID, len(r), len(tbl.Header))
			}
		}
		s := tbl.String()
		if !strings.Contains(s, tbl.ID) || !strings.Contains(s, "claim:") {
			t.Errorf("table %s renders incorrectly:\n%s", tbl.ID, s)
		}
	}
}

func TestE8OneSidedness(t *testing.T) {
	tbl, err := E8(Scale{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// The "missed" column (last) must be 0 in every row: the error is
	// one-sided by Lemma 5.1.
	for _, r := range tbl.Rows {
		if r[len(r)-1] != "0" {
			t.Fatalf("E8 missed a true cut pair: %v", r)
		}
	}
}

func TestE9BoundsHold(t *testing.T) {
	tbl, err := E9(Scale{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tbl.Rows {
		// segments/√n (col 5) and diam/√n (col 6) must stay below modest
		// constants.
		for _, col := range []int{5, 6} {
			var v float64
			if _, err := fmt.Sscan(r[col], &v); err != nil {
				t.Fatalf("parse %q: %v", r[col], err)
			}
			if v > 8 {
				t.Fatalf("E9 normalized value %v exceeds constant bound: row %v", v, r)
			}
		}
	}
}
