package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/baselines"
	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/rounds"
	"repro/internal/segments"
	"repro/internal/service"
	"repro/internal/tap"
	"repro/internal/tree"
)

// E7 reproduces Theorem 1.3: unweighted 3-ECSS in O(D·log³n) rounds —
// rounds track D on a diameter sweep at roughly constant log n, and beat
// the generic k-ECSS algorithm (whose rounds include an additive n).
func E7(s Scale) (*Table, error) {
	t := &Table{
		ID:     "E7",
		Title:  "unweighted 3-ECSS rounds (Theorem 1.3)",
		Claim:  "O(D·log³n) rounds — D-dominated, no additive n term",
		Header: []string{"family", "n", "D", "iters", "rounds", "D·log³n", "rounds/ref", "generic k-ECSS rounds"},
	}
	type inst struct {
		family string
		g      *graph.Graph
	}
	var cases []inst
	lengths := []int{4, 8, 16, 32}
	if s.Quick {
		lengths = []int{4, 8}
	}
	for _, l := range lengths {
		cases = append(cases, inst{fmt.Sprintf("chain(L=%d)", l), graph.CliqueChain(l, 6, 3, graph.UnitWeights())})
	}
	sizes := []int{64, 128}
	if s.Quick {
		sizes = []int{64}
	}
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(int64(n)))
		cases = append(cases, inst{"random", graph.RandomKConnected(n, 3, 2*n, rng, graph.UnitWeights())})
	}
	err := runTrials(s, t, len(cases), func(i int, w *service.Worker) ([][]any, error) {
		tc := cases[i]
		g := tc.g
		res, err := core.Solve3ECSSUnweighted(g, s.threeOpts(7, w))
		if err != nil {
			return nil, fmt.Errorf("E7 %s: %w", tc.family, err)
		}
		gen, err := core.SolveKECSS(g, 3, core.KECSSOptions{Rng: rand.New(rand.NewSource(8)), CutEnum: s.cutEnum()})
		if err != nil {
			return nil, fmt.Errorf("E7 generic %s: %w", tc.family, err)
		}
		n, d := g.N(), g.DiameterEstimate()
		logn := log2(float64(n))
		ref := float64(d) * logn * logn * logn
		return one(tc.family, n, d, res.Iterations, res.Rounds, int64(ref),
			float64(res.Rounds)/ref, gen.Rounds), nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"rounds/ref bounded across the D sweep reproduces the theorem",
		"the generic §4 algorithm pays its additive O(n) and loses on every row")
	return t, nil
}

// E8 reproduces Lemma 5.4/5.5 and Figure 2: label computation in O(D)
// rounds, exact cut-pair detection at Θ(log n) width, one-sided error, and
// the false-positive rate as the width shrinks.
func E8(s Scale) (*Table, error) {
	t := &Table{
		ID:     "E8",
		Title:  "cycle space sampling (Pritchard–Thurimella; §5.1, Figure 2)",
		Claim:  "O(D)-round labels; φ(e)=φ(f) iff cut pair, error one-sided and 2^-b",
		Header: []string{"graph", "n", "bits", "label rounds", "tree height", "true pairs", "detected", "false+", "missed"},
	}
	type inst struct {
		name string
		g    *graph.Graph
	}
	cases := []inst{
		{"figure2", graph.PaperFigure2Graph()},
		{"cycle24", graph.Cycle(24, graph.UnitWeights())},
		{"grid6x6", graph.Grid(6, 6, graph.UnitWeights())},
	}
	if !s.Quick {
		rng := rand.New(rand.NewSource(88))
		cases = append(cases, inst{"random64", graph.RandomKConnected(64, 2, 20, rng, graph.UnitWeights())})
	}
	widths := []int{1, 4, 16, 48}
	err := runTrials(s, t, len(cases), func(i int, w *service.Worker) ([][]any, error) {
		tc := cases[i]
		truth := pairSet(tc.g.CutPairs())
		tr, err := tree.FromBFS(tc.g.BFS(0))
		if err != nil {
			return nil, fmt.Errorf("E8 %s: %w", tc.name, err)
		}
		var rows [][]any
		for _, b := range widths {
			var opts []congest.Option
			if w.Arena != nil {
				opts = append(opts, congest.WithArena(w.Arena))
			}
			l, err := cycles.ComputeLabels(tc.g, tr, b, rand.New(rand.NewSource(5)), opts...)
			if err != nil {
				return nil, fmt.Errorf("E8 %s b=%d: %w", tc.name, b, err)
			}
			detected := pairSet(l.CutPairs())
			falsePos, missed := 0, 0
			for p := range detected {
				if !truth[p] {
					falsePos++
				}
			}
			for p := range truth {
				if !detected[p] {
					missed++
				}
			}
			rows = append(rows, []any{tc.name, tc.g.N(), b, l.Metrics.Rounds, tr.Height(),
				len(truth), len(detected), falsePos, missed})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"missed always 0 (one-sided error); false+ vanishes by b=16",
		"label rounds tracking tree height (≤ 2D) reproduces Lemma 5.5")
	return t, nil
}

func pairSet(ps []graph.CutPair) map[graph.CutPair]bool {
	out := make(map[graph.CutPair]bool, len(ps))
	for _, p := range ps {
		out[p] = true
	}
	return out
}

// E9 reproduces Lemma 3.4 / Figure 1: the segment decomposition has O(√n)
// segments of diameter O(√n).
func E9(s Scale) (*Table, error) {
	t := &Table{
		ID:     "E9",
		Title:  "segment decomposition scaling (Lemma 3.4, Figure 1)",
		Claim:  "O(√n) edge-disjoint segments of diameter O(√n)",
		Header: []string{"n", "√n", "marked", "segments", "max seg diam", "segments/√n", "diam/√n"},
	}
	sizes := []int{100, 400, 1600, 6400}
	if s.Quick {
		sizes = []int{100, 400}
	}
	err := runTrials(s, t, len(sizes), func(i int, _ *service.Worker) ([][]any, error) {
		n := sizes[i]
		g := randomWeighted(n, 2, n, int64(n+1))
		ids, _ := mst.Kruskal(g)
		tr := tree.MustFromEdges(g, ids, 0)
		dec, err := segments.Decompose(g, tr, segments.DefaultTarget(n))
		if err != nil {
			return nil, fmt.Errorf("E9 n=%d: %w", n, err)
		}
		sq := math.Sqrt(float64(n))
		return one(n, int(sq), dec.MarkedCount(), len(dec.Segments), dec.MaxSegmentDiameter(),
			float64(len(dec.Segments))/sq, float64(dec.MaxSegmentDiameter())/sq), nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "both normalized columns flat across n reproduces the lemma")
	return t, nil
}

// E10 reproduces the unweighted k-ECSS baseline comparison: Thurimella's
// sparse certificate (2-approx, k(D+√n) rounds [36]) vs this paper's
// algorithms on identical unweighted instances.
func E10(s Scale) (*Table, error) {
	t := &Table{
		ID:     "E10",
		Title:  "unweighted k-ECSS: sparse certificates [36] vs this paper",
		Claim:  "[36] guarantees size 2·OPT in k(D+√n·log*n) rounds; this paper guarantees only O(log n)·OPT but measures *smaller* (certificates keep every forest edge, the covering algorithm does not)",
		Header: []string{"n", "D", "k", "LB=⌈kn/2⌉", "cert size", "alg size", "cert rounds[36]", "alg rounds"},
	}
	type inst struct {
		g *graph.Graph
		k int
	}
	var cases []inst
	sizes := []int{48, 96}
	if s.Quick {
		sizes = []int{48}
	}
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(int64(n * 3)))
		cases = append(cases, inst{graph.RandomKConnected(n, 3, 2*n, rng, graph.UnitWeights()), 3})
	}
	cases = append(cases, inst{graph.CliqueChain(12, 6, 3, graph.UnitWeights()), 3})
	err := runTrials(s, t, len(cases), func(i int, w *service.Worker) ([][]any, error) {
		tc := cases[i]
		g := tc.g
		cert := baselines.ThurimellaCertificate(g, tc.k)
		res, err := core.Solve3ECSSUnweighted(g, s.threeOpts(6, w))
		if err != nil {
			return nil, fmt.Errorf("E10: %w", err)
		}
		n, d := g.N(), g.DiameterEstimate()
		lb := (tc.k*n + 1) / 2
		return one(n, d, tc.k, lb, len(cert), res.Size,
			rounds.ThurimellaBaseline(tc.k, n, d), res.Rounds), nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"both sizes sit between LB and their guarantees; measured sizes favour this paper",
		"rounds favour [36] at these scales — its advantage region is D·log³n >> √n")
	return t, nil
}

// AblationVoteThreshold measures the TAP vote-acceptance denominator's
// effect (DESIGN.md §5): larger thresholds accept fewer candidates per
// iteration (more iterations, tighter guarantee constant).
func AblationVoteThreshold(s Scale) (*Table, error) {
	t := &Table{
		ID:     "A1",
		Title:  "ablation: TAP vote threshold |Ce|/d",
		Claim:  "paper uses d=8 for the guarantee; d trades iterations vs weight",
		Header: []string{"d", "iterations", "aug weight", "aug edges"},
	}
	n := 256
	if s.Quick {
		n = 96
	}
	g := randomWeighted(n, 2, 3*n, 1234)
	tr := mstTreeOf(g)
	denoms := []int64{2, 4, 8, 16, 32}
	err := runTrials(s, t, len(denoms), func(i int, _ *service.Worker) ([][]any, error) {
		d := denoms[i]
		res, err := tap.Augment(g, tr, tap.Options{Rng: rand.New(rand.NewSource(5)), VoteDenom: d})
		if err != nil {
			return nil, fmt.Errorf("ablation d=%d: %w", d, err)
		}
		return one(d, res.Iterations, res.Weight, len(res.Augmentation)), nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// AblationRounding compares rounded vs exact cost-effectiveness candidate
// selection.
func AblationRounding(s Scale) (*Table, error) {
	t := &Table{
		ID:     "A2",
		Title:  "ablation: rounded vs exact cost-effectiveness",
		Claim:  "rounding admits more simultaneous candidates (fewer iterations) at the same guarantee",
		Header: []string{"mode", "iterations", "aug weight"},
	}
	n := 256
	if s.Quick {
		n = 96
	}
	g := randomWeighted(n, 2, 3*n, 777)
	tr := mstTreeOf(g)
	modes := []bool{false, true}
	err := runTrials(s, t, len(modes), func(i int, _ *service.Worker) ([][]any, error) {
		exact := modes[i]
		res, err := tap.Augment(g, tr, tap.Options{Rng: rand.New(rand.NewSource(5)), DisableRounding: exact})
		if err != nil {
			return nil, fmt.Errorf("ablation rounding: %w", err)
		}
		mode := "rounded (paper)"
		if exact {
			mode = "exact"
		}
		return one(mode, res.Iterations, res.Weight), nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// AblationPhaseLength varies the M in "double p every M·log n iterations".
func AblationPhaseLength(s Scale) (*Table, error) {
	t := &Table{
		ID:     "A3",
		Title:  "ablation: Aug_k activation phase length M",
		Claim:  "larger M means slower schedule: more iterations, fewer simultaneous additions",
		Header: []string{"M", "iterations", "aug weight", "aug edges"},
	}
	n := 96
	if s.Quick {
		n = 48
	}
	g := randomWeighted(n, 2, 2*n, 999)
	treeIDs, _ := mst.Kruskal(g)
	ms := []int{1, 2, 4}
	err := runTrials(s, t, len(ms), func(i int, _ *service.Worker) ([][]any, error) {
		m := ms[i]
		res, err := core.Aug(g, treeIDs, 2, core.AugOptions{Rng: rand.New(rand.NewSource(5)), PhaseLen: m, CutEnum: s.cutEnum()})
		if err != nil {
			return nil, fmt.Errorf("ablation M=%d: %w", m, err)
		}
		return one(m, res.Iterations, res.Weight, len(res.Added)), nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// AblationExecutor compares the sequential, pooled-parallel and sharded
// executors on the genuinely simulated pieces (identical results, different
// host parallelism) — wall-clock is measured by the corresponding benchmark.
func AblationExecutor(s Scale) (*Table, error) {
	t := &Table{
		ID:     "A4",
		Title:  "ablation: simulator executor",
		Claim:  "results identical; pooled executors exercise real parallelism",
		Header: []string{"executor", "MST weight", "MST phases", "measured rounds"},
	}
	n := 128
	if s.Quick {
		n = 48
	}
	g := randomWeighted(n, 2, 2*n, 321)
	// Each trial runs on a pool worker whose arena recycles the simulation
	// buffers of whatever ran on that worker before it.
	execs := []struct {
		name string
		exec congest.Executor
	}{
		{"sequential", congest.SequentialExecutor{}},
		{"parallel", congest.ParallelExecutor{}},
		{"sharded", congest.ShardedExecutor{}},
	}
	err := runTrials(s, t, len(execs), func(i int, w *service.Worker) ([][]any, error) {
		tc := execs[i]
		res, err := mst.DistributedBoruvka(g, congest.WithExecutor(tc.exec), congest.WithArena(w.Arena))
		if err != nil {
			return nil, fmt.Errorf("ablation executor: %w", err)
		}
		return one(tc.name, res.Weight, res.Phases, res.Metrics.Rounds), nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// All runs every experiment and ablation in order.
func All(s Scale) ([]*Table, error) {
	runs := []func(Scale) (*Table, error){
		E1, E2, E3, E4, E5, E6, E7, E8, E9, E10, E11, E12, E13, E14,
		AblationVoteThreshold, AblationRounding, AblationPhaseLength, AblationExecutor,
	}
	out := make([]*Table, 0, len(runs))
	for _, f := range runs {
		tbl, err := f(s)
		if err != nil {
			return out, err
		}
		out = append(out, tbl)
	}
	return out, nil
}
