package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/baselines"
	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/segments"
	"repro/internal/service"
	"repro/internal/tapdist"
	"repro/internal/tree"
	"repro/internal/verify"
)

// E11 validates the charged-cost model of the TAP iterations against the
// genuinely message-passing implementation of §3.1's information flows
// (internal/tapdist): both the computed |Ce| values (exactness) and the
// per-iteration round counts (the O(D+√n) shape, Lemma 3.3).
func E11(s Scale) (*Table, error) {
	t := &Table{
		ID:     "E11",
		Title:  "TAP iteration cost: charged model vs message-level measurement (Lemma 3.3)",
		Claim:  "each iteration's information flows run in O(D+√n) rounds",
		Header: []string{"n", "D", "√n", "measured rounds", "messages", "(D+√n)", "rounds/(D+√n)", "Ce mismatches"},
	}
	sizes := []int{100, 400, 900, 1600}
	if s.Quick {
		sizes = []int{100, 400}
	}
	// Each trial's four information-flow networks share the trial's worker
	// arena, reusing the buffers of whatever that worker ran before.
	err := runTrials(s, t, len(sizes), func(i int, w *service.Worker) ([][]any, error) {
		n := sizes[i]
		g := randomWeighted(n, 2, 2*n, int64(n+17))
		ids, _ := mst.Kruskal(g)
		tr := tree.MustFromEdges(g, ids, 0)
		dec, err := segments.Decompose(g, tr, segments.DefaultTarget(n))
		if err != nil {
			return nil, fmt.Errorf("E11 n=%d: %w", n, err)
		}
		rng := rand.New(rand.NewSource(9))
		covered := map[int]bool{}
		for _, id := range tr.EdgeIDs() {
			covered[id] = rng.Float64() < 0.5
		}
		res, err := tapdist.ComputeCe(g, dec, covered, nil, congest.WithArena(w.Arena))
		if err != nil {
			return nil, fmt.Errorf("E11 n=%d: %w", n, err)
		}
		// Exactness vs the direct tree-path computation.
		mismatches := 0
		inTree := tr.IsTreeEdge()
		for _, e := range g.Edges() {
			if inTree[e.ID] {
				continue
			}
			var want int64
			for _, te := range tr.PathEdges(e.U, e.V) {
				if !covered[te] {
					want++
				}
			}
			if res.Ce[e.ID] != want {
				mismatches++
			}
		}
		d := g.DiameterEstimate()
		sq := segments.DefaultTarget(n)
		ref := float64(d + sq)
		return one(n, d, sq, res.Metrics.Rounds, res.Metrics.Messages, int(ref),
			float64(res.Metrics.Rounds)/ref, mismatches), nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"Ce mismatches must be 0: the distributed Case 1–3 computation is exact",
		"rounds/(D+√n) staying O(1) is the measured version of Lemma 3.3")
	return t, nil
}

// E12 reproduces the §5 verification corollary: O(D)-round distributed
// verification of 2- and 3-edge-connectivity via cycle space sampling,
// checked against exact oracles.
func E12(s Scale) (*Table, error) {
	t := &Table{
		ID:     "E12",
		Title:  "distributed connectivity verification (§5, Pritchard–Thurimella)",
		Claim:  "2EC/3EC verified in O(D) rounds, one-sided error",
		Header: []string{"graph", "n", "D", "check", "verdict", "oracle", "rounds"},
	}
	type inst struct {
		name string
		g    *graph.Graph
	}
	cases := []inst{
		{"cycle32", graph.Cycle(32, graph.UnitWeights())},
		{"harary3-36", graph.Harary(3, 36, graph.UnitWeights())},
		{"bridge", bridgeGraph()},
	}
	if !s.Quick {
		rng := rand.New(rand.NewSource(41))
		cases = append(cases,
			inst{"random128", graph.RandomKConnected(128, 2, 64, rng, graph.UnitWeights())},
			inst{"chain", graph.CliqueChain(12, 5, 3, graph.UnitWeights())},
		)
	}
	// Per-case RNG (derived from the case index) instead of one stream
	// threaded through the loop, so cases are independent trials; at 48-bit
	// labels the verdicts are unaffected w.h.p. Verification networks use
	// the trial's worker arena.
	err := runTrials(s, t, len(cases), func(i int, w *service.Worker) ([][]any, error) {
		tc := cases[i]
		rng := rand.New(rand.NewSource(int64(5 + i)))
		d := tc.g.DiameterEstimate()
		rep2, err := verify.TwoEdgeConnectivity(tc.g, 48, rng, congest.WithArena(w.Arena))
		if err != nil {
			return nil, fmt.Errorf("E12 %s: %w", tc.name, err)
		}
		rep3, err := verify.ThreeEdgeConnectivity(tc.g, 48, rng, congest.WithArena(w.Arena))
		if err != nil {
			return nil, fmt.Errorf("E12 %s: %w", tc.name, err)
		}
		return [][]any{
			{tc.name, tc.g.N(), d, "2EC", rep2.OK, tc.g.TwoEdgeConnected(), rep2.Rounds},
			{tc.name, tc.g.N(), d, "3EC", rep3.OK, tc.g.IsKEdgeConnected(3), rep3.Rounds},
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "verdict must equal oracle on every row; rounds track D (plus #labels for 3EC)")
	return t, nil
}

func bridgeGraph() *graph.Graph {
	g := graph.New(8)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 3}} {
		g.AddEdge(e[0], e[1], 1)
	}
	g.AddEdge(2, 3, 1) // the bridge
	return g
}

// E13 reproduces the FT-MST connection (§1.2/§3.2): the decomposition's
// machinery yields a fault-tolerant MST of 2(n-1) edges; every single edge
// failure leaves an MST of the surviving graph inside it.
func E13(s Scale) (*Table, error) {
	t := &Table{
		ID:     "E13",
		Title:  "fault-tolerant MST (§1.2, Ghaffari–Parter connection)",
		Claim:  "FT-MST has <= 2(n-1) edges and contains an MST of G\\{e} for every e",
		Header: []string{"n", "m", "MST edges", "FT edges", "2(n-1)", "failures checked", "violations"},
	}
	sizes := []int{30, 60}
	if s.Quick {
		sizes = []int{30}
	}
	err := runTrials(s, t, len(sizes), func(i int, _ *service.Worker) ([][]any, error) {
		n := sizes[i]
		g := randomWeighted(n, 2, 2*n, int64(n+23))
		res, err := mst.FaultTolerantMST(g)
		if err != nil {
			return nil, fmt.Errorf("E13 n=%d: %w", n, err)
		}
		violations := 0
		checked := 0
		for _, e := range g.Edges() {
			gMinus, _ := g.SubgraphWithout(map[int]bool{e.ID: true})
			if !gMinus.Connected() {
				continue
			}
			checked++
			_, wantW := mst.Kruskal(gMinus)
			ftIDs := make([]int, 0, len(res.Edges))
			for _, id := range res.Edges {
				if id != e.ID {
					ftIDs = append(ftIDs, id)
				}
			}
			ftMinus, _ := g.SubgraphOf(ftIDs)
			_, gotW := mst.Kruskal(ftMinus)
			if gotW != wantW {
				violations++
			}
		}
		return one(n, g.M(), len(res.MSTEdges), len(res.Edges), 2*(n-1), checked, violations), nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "violations must be 0 on every row")
	return t, nil
}

// E14 exercises the §5.4 weighted 3-ECSS variant against the unweighted one
// and the k-ECSS generic algorithm on weighted 3-connected inputs.
func E14(s Scale) (*Table, error) {
	t := &Table{
		ID:     "E14",
		Title:  "weighted 3-ECSS (§5.4 remark)",
		Claim:  "same structure as Theorem 1.3 with |Ce|/w; per-iteration cost follows tree height, not D",
		Header: []string{"n", "variant", "weight", "degree LB", "ratio", "iters", "rounds"},
	}
	sizes := []int{24, 40}
	if s.Quick {
		sizes = []int{24}
	}
	err := runTrials(s, t, len(sizes), func(i int, w *service.Worker) ([][]any, error) {
		n := sizes[i]
		g := randomWeighted(n, 3, n, int64(n+29))
		lb := baselines.DegreeLowerBound(g, 3)
		wres, err := coreSolve3Weighted(g, 11, w, s)
		if err != nil {
			return nil, fmt.Errorf("E14 n=%d: %w", n, err)
		}
		ures, err := coreSolve3Unweighted(g, 11, w, s)
		if err != nil {
			return nil, fmt.Errorf("E14 n=%d: %w", n, err)
		}
		return [][]any{
			{n, "weighted §5.4", wres.Weight, lb, float64(wres.Weight) / float64(lb), wres.Iterations, wres.Rounds},
			{n, "weight-blind §5", ures.Weight, lb, float64(ures.Weight) / float64(lb), ures.Iterations, ures.Rounds},
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "the weighted variant's ratio should not exceed the weight-blind one's")
	return t, nil
}

func coreSolve3Weighted(g *graph.Graph, seed int64, w *service.Worker, s Scale) (*core.ThreeECSSResult, error) {
	return core.Solve3ECSSWeighted(g, s.threeOpts(seed, w))
}

func coreSolve3Unweighted(g *graph.Graph, seed int64, w *service.Worker, s Scale) (*core.ThreeECSSResult, error) {
	return core.Solve3ECSSUnweighted(g, s.threeOpts(seed, w))
}
