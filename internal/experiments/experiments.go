package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/rounds"
	"repro/internal/service"
	"repro/internal/tap"
	"repro/internal/tree"
)

// Scale shrinks or grows every experiment's instance sizes (1 = the default
// table sizes; benchmarks may pass a smaller value for quick runs).
type Scale struct {
	// Quick trims the sweeps to their smallest sizes for smoke runs.
	Quick bool
	// Workers sets how many pool workers run each experiment's independent
	// trials (0 = GOMAXPROCS). Tables are identical at any worker count;
	// only wall-clock changes.
	Workers int
	// CutEnumWorkers parallelises the size >= 3 min-cut enumeration inside
	// each k-ECSS/Aug trial (0/1 = sequential). Tables are identical at any
	// value — the enumerator's trials are deterministically seeded and
	// merged in trial order.
	CutEnumWorkers int
	// ReferenceLabeling drives the 3-ECSS experiments through the retained
	// from-scratch per-iteration label scan instead of the incremental
	// labeling engine (see core.ThreeECSSOptions.ReferenceLabeling).
	// Tables are identical except for the round columns, which then report
	// fully measured label scans.
	ReferenceLabeling bool
}

func (s Scale) cutEnum() core.CutEnumOptions {
	return core.CutEnumOptions{Workers: s.CutEnumWorkers}
}

// threeOpts is the 3-ECSS option set every experiment trial uses: per-trial
// seed, the worker's simulation and labeling arenas, and the Scale's
// labeling strategy.
func (s Scale) threeOpts(seed int64, w *service.Worker) core.ThreeECSSOptions {
	return core.ThreeECSSOptions{
		Rng:               rand.New(rand.NewSource(seed)),
		Arena:             w.Arena,
		LabelArena:        w.Labels,
		ReferenceLabeling: s.ReferenceLabeling,
	}
}

func log2(x float64) float64 { return math.Log2(x) }

func randomWeighted(n, k, extra int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	return graph.RandomKConnected(n, k, extra, rng, graph.RandomWeights(rng, 1000))
}

func mstTreeOf(g *graph.Graph) *tree.Rooted {
	ids, _ := mst.Kruskal(g)
	return tree.MustFromEdges(g, ids, 0)
}

// E1 reproduces the round-complexity shape of Theorem 1.1: measured 2-ECSS
// rounds vs the (D+√n)·log²n reference and the hMST+√n baseline model of
// [1], on a low-diameter random family and a Θ(√n)-diameter grid family.
func E1(s Scale) (*Table, error) {
	t := &Table{
		ID:     "E1",
		Title:  "weighted 2-ECSS rounds (Theorem 1.1)",
		Claim:  "O((D+√n)·log²n) rounds w.h.p.; beats the O(hMST+√n) baseline [1] when hMST >> √n",
		Header: []string{"family", "n", "D", "hMST", "iters", "rounds", "(D+√n)log²n", "baseline[1]", "rounds/ref"},
	}
	type inst struct {
		family string
		g      *graph.Graph
	}
	var cases []inst
	sizes := []int{64, 128, 256, 512}
	if s.Quick {
		sizes = []int{64, 128}
	}
	for _, n := range sizes {
		cases = append(cases, inst{"random", randomWeighted(n, 2, 3*n, int64(n))})
	}
	gridCols := []int{16, 32, 64}
	if s.Quick {
		gridCols = []int{16}
	}
	for _, c := range gridCols {
		rng := rand.New(rand.NewSource(int64(c)))
		cases = append(cases, inst{"grid4xC", graph.Grid(4, c, graph.RandomWeights(rng, 1000))})
	}
	// Adversarial family for the baseline [1]: a light ring (whose MST is a
	// Hamiltonian path, hMST = n-1) plus heavy random chords (which keep the
	// hop diameter small). Here hMST >> D+√n and the baseline's O(hMST+√n)
	// bound collapses while Theorem 1.1's bound does not.
	ringSizes := []int{256, 1024}
	if s.Quick {
		ringSizes = []int{256}
	}
	for _, n := range ringSizes {
		rng := rand.New(rand.NewSource(int64(n + 5)))
		g := graph.Cycle(n, graph.UnitWeights())
		for i := 0; i < n/2; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v, 1000)
			}
		}
		cases = append(cases, inst{"ring+chords", g})
	}
	err := runTrials(s, t, len(cases), func(i int, _ *service.Worker) ([][]any, error) {
		tc := cases[i]
		g := tc.g
		res, err := core.Solve2ECSS(g, core.TwoECSSOptions{Rng: rand.New(rand.NewSource(42))})
		if err != nil {
			return nil, fmt.Errorf("E1 %s n=%d: %w", tc.family, g.N(), err)
		}
		n := g.N()
		d := g.DiameterEstimate()
		h := res.Tree.Height()
		logn := log2(float64(n))
		ref := (float64(d) + math.Sqrt(float64(n))) * logn * logn
		base := rounds.TAPBaselineCH(n, h)
		return one(tc.family, n, d, h, res.TAP.Iterations, res.Rounds, int64(ref), base,
			float64(res.Rounds)/ref), nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"rounds/ref staying O(1) across n reproduces the theorem's shape",
		"baseline[1] = hMST+√n·log*n wins when the MST happens to be shallow;",
		"the ring+chords rows (hMST=n-1, small D) show the worst case the paper fixes")
	return t, nil
}

// E2 reproduces the approximation guarantee of Theorem 1.1: ratio to the
// exact optimum on small instances and to the MST lower bound on large ones,
// against the O(log n) claim.
func E2(s Scale) (*Table, error) {
	t := &Table{
		ID:     "E2",
		Title:  "weighted 2-ECSS approximation (Theorem 1.1)",
		Claim:  "guaranteed O(log n)-approximation",
		Header: []string{"n", "oracle", "alg weight", "bound", "ratio", "ln n"},
	}
	trials := 6
	if s.Quick {
		trials = 3
	}
	large := []int{128, 512}
	if s.Quick {
		large = []int{128}
	}
	err := runTrials(s, t, trials+len(large), func(i int, _ *service.Worker) ([][]any, error) {
		if i < trials {
			trial := i
			n := 8 + trial
			g := randomWeighted(n, 2, 6, int64(100+trial))
			tr := mstTreeOf(g)
			_, optAug, err := baselines.ExactTAP(g, tr)
			if err != nil {
				return nil, fmt.Errorf("E2 exact: %w", err)
			}
			_, mstW := mst.Kruskal(g)
			res, err := core.Solve2ECSS(g, core.TwoECSSOptions{Rng: rand.New(rand.NewSource(int64(trial)))})
			if err != nil {
				return nil, fmt.Errorf("E2 alg: %w", err)
			}
			// Exact 2-ECSS optimum is lower-bounded by MST + exact TAP optimum
			// of the MST... not exactly, so report ratio vs (mstW + optAug),
			// the optimum of the algorithm's own decomposition, and vs MST.
			oracle := mstW + optAug
			return one(n, "MST+TAP*", res.Weight, oracle, float64(res.Weight)/float64(oracle), math.Log(float64(n))), nil
		}
		n := large[i-trials]
		g := randomWeighted(n, 2, 3*n, int64(n+7))
		res, err := core.Solve2ECSS(g, core.TwoECSSOptions{Rng: rand.New(rand.NewSource(5))})
		if err != nil {
			return nil, fmt.Errorf("E2 large: %w", err)
		}
		return one(n, "MST bound", res.Weight, res.MSTWeight,
			float64(res.Weight)/float64(res.MSTWeight), math.Log(float64(n))), nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "ratio growing no faster than ln n reproduces the guarantee")
	return t, nil
}

// E3 reproduces Lemma 3.11: the number of TAP voting iterations is
// O(log² n) w.h.p.
func E3(s Scale) (*Table, error) {
	t := &Table{
		ID:     "E3",
		Title:  "TAP iteration count (Lemma 3.11)",
		Claim:  "O(log² n) iterations w.h.p.",
		Header: []string{"n", "iters(med)", "iters(max)", "log²n", "med/log²n"},
	}
	sizes := []int{64, 128, 256, 512, 1024}
	reps := 5
	if s.Quick {
		sizes = []int{64, 128, 256}
		reps = 3
	}
	err := runTrials(s, t, len(sizes), func(i int, _ *service.Worker) ([][]any, error) {
		n := sizes[i]
		g := randomWeighted(n, 2, 3*n, int64(n+13))
		tr := mstTreeOf(g)
		var iters []int
		for r := 0; r < reps; r++ {
			res, err := tap.Augment(g, tr, tap.Options{Rng: rand.New(rand.NewSource(int64(r + 1)))})
			if err != nil {
				return nil, fmt.Errorf("E3 n=%d: %w", n, err)
			}
			iters = append(iters, res.Iterations)
		}
		med, max := medianMax(iters)
		l2 := log2(float64(n)) * log2(float64(n))
		return one(n, med, max, int(l2), float64(med)/l2), nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "med/log²n staying bounded (in fact shrinking) reproduces the lemma")
	return t, nil
}

// E4 reproduces the round complexity of Theorem 1.2: weighted k-ECSS rounds
// vs the k(D·log³n+n) reference and the O(knD) primal-dual baseline [35].
func E4(s Scale) (*Table, error) {
	t := &Table{
		ID:     "E4",
		Title:  "weighted k-ECSS rounds (Theorem 1.2)",
		Claim:  "O(k(D·log³n+n)) rounds; the O(knD) baseline [35] loses once D >> log³n",
		Header: []string{"k", "n", "D", "iters", "rounds", "k(Dlog³n+n)", "knD [35]", "rounds/ref"},
	}
	ks := []int{2, 3, 4}
	sizes := []int{32, 64, 96}
	if s.Quick {
		ks = []int{2, 3}
		sizes = []int{32, 64}
	}
	type combo struct{ k, n int }
	var combos []combo
	for _, k := range ks {
		for _, n := range sizes {
			combos = append(combos, combo{k, n})
		}
	}
	// High-diameter instance where the primal-dual baseline collapses: a
	// sparse ring (D = Θ(n)) with a few chords. knD = Θ(n²) here, while this
	// algorithm stays near-linear. It runs as the final trial.
	ringN := 600
	if s.Quick {
		ringN = 200
	}
	err := runTrials(s, t, len(combos)+1, func(i int, _ *service.Worker) ([][]any, error) {
		if i < len(combos) {
			k, n := combos[i].k, combos[i].n
			g := randomWeighted(n, k, 2*n, int64(k*1000+n))
			res, err := core.SolveKECSS(g, k, core.KECSSOptions{Rng: rand.New(rand.NewSource(3)), CutEnum: s.cutEnum()})
			if err != nil {
				return nil, fmt.Errorf("E4 k=%d n=%d: %w", k, n, err)
			}
			d := g.DiameterEstimate()
			logn := log2(float64(n))
			ref := float64(k) * (float64(d)*logn*logn*logn + float64(n))
			pd := rounds.PrimalDualBaseline(k, n, d)
			return one(k, n, d, res.Iterations, res.Rounds, int64(ref), pd, float64(res.Rounds)/ref), nil
		}
		rng := rand.New(rand.NewSource(77))
		g := graph.Cycle(ringN, graph.RandomWeights(rng, 1000))
		for j := 0; j < 6; j++ {
			u, v := rng.Intn(ringN), rng.Intn(ringN)
			if u != v {
				g.AddEdge(u, v, 1+rng.Int63n(1000))
			}
		}
		res, err := core.SolveKECSS(g, 2, core.KECSSOptions{Rng: rand.New(rand.NewSource(4)), CutEnum: s.cutEnum()})
		if err != nil {
			return nil, fmt.Errorf("E4 ring: %w", err)
		}
		n, d := g.N(), g.DiameterEstimate()
		logn := log2(float64(n))
		ref := 2 * (float64(d)*logn*logn*logn + float64(n))
		return one(2, n, d, res.Iterations, res.Rounds, int64(ref), rounds.PrimalDualBaseline(2, n, d),
			float64(res.Rounds)/ref), nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"small-D rows: the knD baseline [35] is fine when D is tiny (knD < k(Dlog³n+n))",
		"last row: Θ(D)=Θ(n) ring — knD = Θ(n²) explodes, this algorithm stays near-linear")
	return t, nil
}

// E5 reproduces the approximation claim of Theorem 1.2: expected
// O(k·log n) ratio, vs the exact optimum (small) and the degree lower
// bound (larger).
func E5(s Scale) (*Table, error) {
	t := &Table{
		ID:     "E5",
		Title:  "weighted k-ECSS approximation (Theorem 1.2)",
		Claim:  "O(k·log n) expected approximation",
		Header: []string{"k", "n", "oracle", "alg weight", "bound", "ratio", "k·ln n"},
	}
	// Small exact instances.
	small := 4
	if s.Quick {
		small = 2
	}
	ks := []int{2, 3, 4}
	if s.Quick {
		ks = []int{2, 3}
	}
	err := runTrials(s, t, small+len(ks), func(i int, _ *service.Worker) ([][]any, error) {
		if i < small {
			trial := i
			g := randomWeighted(7, 2, 3, int64(trial+900))
			if g.M() > baselines.MaxExactKECSSEdges {
				return nil, nil
			}
			_, opt, err := baselines.ExactKECSS(g, 2)
			if err != nil {
				return nil, fmt.Errorf("E5 exact: %w", err)
			}
			res, err := core.SolveKECSS(g, 2, core.KECSSOptions{Rng: rand.New(rand.NewSource(int64(trial))), CutEnum: s.cutEnum()})
			if err != nil {
				return nil, fmt.Errorf("E5 alg: %w", err)
			}
			return one(2, 7, "exact OPT", res.Weight, opt, float64(res.Weight)/float64(opt),
				2*math.Log(7.0)), nil
		}
		k := ks[i-small]
		n := 60
		g := randomWeighted(n, k, 2*n, int64(k*31))
		res, err := core.SolveKECSS(g, k, core.KECSSOptions{Rng: rand.New(rand.NewSource(9)), CutEnum: s.cutEnum()})
		if err != nil {
			return nil, fmt.Errorf("E5 k=%d: %w", k, err)
		}
		lb := baselines.DegreeLowerBound(g, k)
		return one(k, n, "degree LB", res.Weight, lb, float64(res.Weight)/float64(lb),
			float64(k)*math.Log(float64(n))), nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "ratios below k·ln n reproduce the expected guarantee")
	return t, nil
}

// E6 reproduces the §4 phase analysis: Aug iteration counts O(log³n) and
// the Lemma 4.5 decay of the maximum cut degree along the p_i schedule.
func E6(s Scale) (*Table, error) {
	t := &Table{
		ID:     "E6",
		Title:  "Aug_k iterations and cut-degree decay (§4, Lemma 4.5)",
		Claim:  "O(log³n) iterations; max cut degree <= 2^l in the p=2^-l phase w.h.p.",
		Header: []string{"n", "iters", "log³n", "iters/log³n", "deg(start)", "deg(mid)", "deg(end)", "violations"},
	}
	sizes := []int{48, 96, 192}
	if s.Quick {
		sizes = []int{48, 96}
	}
	err := runTrials(s, t, len(sizes), func(i int, _ *service.Worker) ([][]any, error) {
		n := sizes[i]
		g := randomWeighted(n, 2, 2*n, int64(n+3))
		treeIDs, _ := mst.Kruskal(g)
		res, err := core.Aug(g, treeIDs, 2, core.AugOptions{Rng: rand.New(rand.NewSource(21)), CutEnum: s.cutEnum()})
		if err != nil {
			return nil, fmt.Errorf("E6 n=%d: %w", n, err)
		}
		l3 := math.Pow(log2(float64(n)), 3)
		trace := res.MaxCutDegreeTrace
		var start, mid, end int
		if len(trace) > 0 {
			start = trace[0]
			mid = trace[len(trace)/2]
			end = trace[len(trace)-1]
		}
		// Lemma 4.5 check: in the phase with exponent l, max degree <= 2^l
		// — count violations (expected ~0 with slack factor 4).
		violations := 0
		for j, deg := range trace {
			l := res.PTrace[j]
			if int64(deg) > 4<<uint(l) {
				violations++
			}
		}
		return one(n, res.Iterations, int(l3), float64(res.Iterations)/l3, start, mid, end, violations), nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "degree trace shrinking along the schedule reproduces Lemma 4.5")
	return t, nil
}

func medianMax(xs []int) (int, int) {
	if len(xs) == 0 {
		return 0, 0
	}
	sorted := append([]int(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	max := sorted[len(sorted)-1]
	return sorted[len(sorted)/2], max
}
