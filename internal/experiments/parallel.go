package experiments

import "repro/internal/service"

// runTrials executes n independent trials on a worker pool sized by
// s.Workers (0 = GOMAXPROCS) and appends every trial's rows to t in trial
// order, so scheduling can never reorder or interleave a table. Each trial
// derives all of its randomness from its index or from fixed seeds — never
// from state shared between trials — which makes every table byte-identical
// at any worker count. Trials that drive the simulator take their arena
// from the worker, so consecutive trials on a worker recycle buffers
// exactly like the old serial sweeps did.
//
// The first trial error (in trial order, not completion order) aborts the
// experiment, matching the old serial fail-fast behaviour deterministically.
func runTrials(s Scale, t *Table, n int, trial func(i int, w *service.Worker) ([][]any, error)) error {
	pool := service.NewPool(s.Workers, true)
	defer pool.Close()
	rows := make([][][]any, n)
	errs := make([]error, n)
	if err := pool.Run(n, func(i int, w *service.Worker) {
		rows[i], errs[i] = trial(i, w)
	}); err != nil {
		return err // unreachable for this private pool, but keep the contract
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for _, rs := range rows {
		for _, r := range rs {
			t.AddRow(r...)
		}
	}
	return nil
}

// one wraps a single table row as a trial result.
func one(cells ...any) [][]any { return [][]any{cells} }
