// Package experiments implements the reproduction experiments E1–E14 of
// DESIGN.md: one per theorem/lemma/figure of the paper. Each experiment
// returns a Table whose rows are the series the paper's claim is about
// (measured rounds or ratios next to the claimed asymptotic reference and
// the prior-work baselines). The cmd/kecss-bench binary prints them; the
// root bench_test.go wraps each in a testing.B benchmark.
//
// Every experiment's independent trials run on a service.Pool sized by
// Scale.Workers (see runTrials): trials are index-addressed, derive their
// randomness from fixed per-trial seeds, and append their rows in trial
// order, so a table is byte-identical at any worker count while the wall
// clock scales with the host's cores.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's output: a titled grid of stringified cells.
type Table struct {
	ID     string
	Title  string
	Claim  string // the paper claim being reproduced
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row, stringifying each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(w, "claim: %s\n", t.Claim)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Header)
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}
