// Package store is the durable, content-addressed result store behind
// kecss-serve. Results are keyed by wire.Digest — a pure function of
// (graph, solver spec) — so an entry, once written, is immutable and any
// re-solve of the same digest produces byte-identical content. That
// determinism is what makes the design simple: writes are idempotent,
// duplicate puts are no-ops, and a reader can trust any entry whose
// checksum verifies.
//
// Layout on disk (the "ops note" in README.md walks through it):
//
//	<dir>/<digest[:2]>/<digest>     one entry per digest, 256-way fanout
//
// Each entry file is:
//
//	magic "kcas" | version byte | len uint32 LE | crc32c uint32 LE | payload
//
// — the same CRC framing the write-ahead journal uses (Castagnoli, over
// the payload). Writes go to a temp file in the same directory, fsync,
// then rename: an entry is either fully published or absent. Crash
// recovery therefore drops at most the one in-flight entry: Open sweeps
// leftover temp files, and Get treats a torn or corrupt entry as a miss
// and removes it (the deterministic solver regenerates it bit-for-bit).
//
// A small LRU of decoded values fronts the disk tier so the hot path
// stays allocation- and decode-free, exactly like the in-memory cache it
// replaces — but the store survives restarts, and several processes can
// share one directory (writers never collide: temp names are unique and
// rename is atomic within the directory).
//
// GC is external and trivial because entries are immutable leaves:
// deleting any entry file at any time is safe and costs at most one
// re-solve. Store.GC removes entries not accessed for a given age;
// there is no compaction to run, ever — there is no log to compact.
package store

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
)

// Entry file framing.
var magic = [4]byte{'k', 'c', 'a', 's'}

// FormatVersion is the entry format version byte. Bump it when the layout
// changes; readers refuse versions they do not know (treated as corrupt,
// so the entry is re-solved and rewritten in the current format).
const FormatVersion = 0x01

const headerSize = 4 + 1 + 4 + 4 // magic | version | len | crc

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options configures Open. The zero value is a memory-only store with
// caching disabled (every Get misses).
type Options struct {
	// Dir is the store root; "" runs memory-only (no durability — the
	// pre-split in-process cache behavior).
	Dir string
	// CacheSize bounds the in-memory tier (decoded values); <= 0 disables
	// it, which still leaves the disk tier if Dir is set.
	CacheSize int
	// Decode turns a verified payload into the value Get returns and the
	// LRU holds. Nil means Get returns the raw []byte payload.
	Decode func([]byte) (any, error)
	// Inject is the fault plan for crash tests (nil-safe).
	Inject *chaos.Injector
}

// Stats is the store's counter census.
type Stats struct {
	MemHits  uint64 `json:"mem_hits"`
	DiskHits uint64 `json:"disk_hits"`
	Misses   uint64 `json:"misses"`
	Puts     uint64 `json:"puts"`
	// Corrupt counts entries dropped because their frame failed to verify
	// (torn writes, bit rot, unknown versions).
	Corrupt uint64 `json:"corrupt"`
}

// Store is a digest-keyed result store: an LRU of decoded values over an
// optional directory of checksummed entry files.
type Store struct {
	dir string
	dec func([]byte) (any, error)
	inj *chaos.Injector

	mu    sync.Mutex
	max   int                      // immutable after Open; read unlocked
	ll    *list.List               // guarded by mu; front = most recently used
	items map[string]*list.Element // guarded by mu

	memHits  atomic.Uint64
	diskHits atomic.Uint64
	misses   atomic.Uint64
	puts     atomic.Uint64
	corrupt  atomic.Uint64
}

type entry struct {
	key string
	val any
}

// Open prepares the store: creates the root, sweeps temp files a crash
// left behind, and mounts the memory tier.
func Open(opts Options) (*Store, error) {
	s := &Store{
		dir:   opts.Dir,
		dec:   opts.Decode,
		inj:   opts.Inject,
		max:   opts.CacheSize,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
	if s.dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create root: %w", err)
	}
	// Recovery: a crash between temp write and rename leaves only a temp
	// file; the entry was never published, so removing it loses nothing
	// that was promised durable.
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if strings.Contains(d.Name(), ".tmp-") {
			return os.Remove(path)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: sweep temp files: %w", err)
	}
	return s, nil
}

// path maps a digest to its entry file.
func (s *Store) path(digest string) string {
	fanout := "_"
	if len(digest) >= 2 {
		fanout = digest[:2]
	}
	return filepath.Join(s.dir, fanout, digest)
}

// Get returns the decoded value for digest. It checks the memory tier,
// then the disk tier; a disk hit is verified, decoded, and promoted into
// memory. A torn or corrupt entry is removed and reported as a miss.
func (s *Store) Get(digest string) (any, bool) {
	if s.max > 0 {
		s.mu.Lock()
		if el, ok := s.items[digest]; ok {
			s.ll.MoveToFront(el)
			v := el.Value.(*entry).val
			s.mu.Unlock()
			s.memHits.Add(1)
			return v, true
		}
		s.mu.Unlock()
	}
	if s.dir == "" {
		s.misses.Add(1)
		return nil, false
	}
	raw, err := s.readEntry(digest)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			// Verification failed: drop the entry so the next solve
			// rewrites it cleanly.
			s.corrupt.Add(1)
			_ = os.Remove(s.path(digest))
		}
		s.misses.Add(1)
		return nil, false
	}
	val := any(raw)
	if s.dec != nil {
		v, err := s.dec(raw)
		if err != nil {
			s.corrupt.Add(1)
			_ = os.Remove(s.path(digest))
			s.misses.Add(1)
			return nil, false
		}
		val = v
	}
	s.promote(digest, val)
	s.diskHits.Add(1)
	return val, true
}

// readEntry loads and verifies one entry file, returning its payload.
func (s *Store) readEntry(digest string) ([]byte, error) {
	b, err := os.ReadFile(s.path(digest))
	if err != nil {
		return nil, err
	}
	if len(b) < headerSize {
		return nil, fmt.Errorf("store: entry %s: short header (%d bytes)", digest, len(b))
	}
	if [4]byte(b[:4]) != magic {
		return nil, fmt.Errorf("store: entry %s: bad magic", digest)
	}
	if b[4] != FormatVersion {
		return nil, fmt.Errorf("store: entry %s: unknown format version %d", digest, b[4])
	}
	n := binary.LittleEndian.Uint32(b[5:9])
	sum := binary.LittleEndian.Uint32(b[9:13])
	if int(n) != len(b)-headerSize {
		return nil, fmt.Errorf("store: entry %s: torn payload (%d of %d bytes)", digest, len(b)-headerSize, n)
	}
	payload := b[headerSize:]
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, fmt.Errorf("store: entry %s: checksum mismatch", digest)
	}
	return payload, nil
}

// Put publishes raw as the entry for digest. decoded, when non-nil, is
// the already-decoded value for the memory tier (saves a re-decode on the
// solve path); nil falls back to Decode, then to the raw bytes. Put is
// idempotent: if the entry already exists the disk write is skipped —
// determinism guarantees the bytes would have been identical.
func (s *Store) Put(digest string, raw []byte, decoded any) error {
	s.puts.Add(1)
	if decoded == nil {
		if s.dec != nil {
			v, err := s.dec(raw)
			if err != nil {
				return fmt.Errorf("store: put %s: decode: %w", digest, err)
			}
			decoded = v
		} else {
			decoded = raw
		}
	}
	s.promote(digest, decoded)
	if s.dir == "" {
		return nil
	}
	final := s.path(digest)
	if _, err := os.Stat(final); err == nil {
		return nil
	}
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		return fmt.Errorf("store: put %s: %w", digest, err)
	}
	f, err := os.CreateTemp(filepath.Dir(final), digest+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: put %s: %w", digest, err)
	}
	tmp := f.Name()
	cleanup := func() { f.Close(); os.Remove(tmp) }
	hdr := make([]byte, headerSize)
	copy(hdr[:4], magic[:])
	hdr[4] = FormatVersion
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(raw)))
	binary.LittleEndian.PutUint32(hdr[9:13], crc32.Checksum(raw, castagnoli))
	if _, err := f.Write(hdr); err != nil {
		cleanup()
		return fmt.Errorf("store: put %s: %w", digest, err)
	}
	if _, err := f.Write(raw); err != nil {
		cleanup()
		return fmt.Errorf("store: put %s: %w", digest, err)
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("store: put %s: fsync: %w", digest, err)
	}
	// Planned crash between write and publish: ActCrash leaves the temp
	// file for Open's sweep; ActCrashTorn first truncates it to half,
	// modeling a torn final record that verification must reject.
	switch s.inj.At(chaos.StorePut) {
	case chaos.ActCrashTorn:
		f.Truncate(int64(headerSize + len(raw)/2))
		f.Sync()
		f.Close()
		// The torn artifact is renamed into place — the worst case, where
		// the entry looks published but its frame does not verify.
		os.Rename(tmp, final)
		s.inj.Exit()
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: put %s: close: %w", digest, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: put %s: publish: %w", digest, err)
	}
	// Make the rename itself durable.
	if d, err := os.Open(filepath.Dir(final)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// promote installs val at the front of the memory tier.
func (s *Store) promote(digest string, val any) {
	if s.max <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[digest]; ok {
		s.ll.MoveToFront(el)
		el.Value.(*entry).val = val
		return
	}
	s.items[digest] = s.ll.PushFront(&entry{key: digest, val: val})
	for s.ll.Len() > s.max {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.items, oldest.Value.(*entry).key)
	}
}

// CacheLen reports the memory-tier entry count (the kecss_cache_entries
// metric).
func (s *Store) CacheLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Entries walks the disk tier and counts published entries. Memory-only
// stores report 0. This is an ops call, not a hot-path one.
func (s *Store) Entries() (int, error) {
	if s.dir == "" {
		return 0, nil
	}
	n := 0
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || strings.Contains(d.Name(), ".tmp-") {
			return err
		}
		n++
		return nil
	})
	return n, err
}

// GC removes entries whose file modification time is older than maxAge.
// Entries are immutable leaves, so this is always safe: a collected
// digest just costs one deterministic re-solve on its next request. The
// memory tier is left alone — cached values stay correct forever.
func (s *Store) GC(maxAge time.Duration) (removed int, err error) {
	if s.dir == "" {
		return 0, nil
	}
	cutoff := time.Now().Add(-maxAge)
	walkErr := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || strings.Contains(d.Name(), ".tmp-") {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return nil // raced with a concurrent GC; skip
		}
		if info.ModTime().Before(cutoff) {
			if os.Remove(path) == nil {
				removed++
			}
		}
		return nil
	})
	return removed, walkErr
}

// Stats reports the counter census.
func (s *Store) Stats() Stats {
	return Stats{
		MemHits:  s.memHits.Load(),
		DiskHits: s.diskHits.Load(),
		Misses:   s.misses.Load(),
		Puts:     s.puts.Load(),
		Corrupt:  s.corrupt.Load(),
	}
}

// Dir reports the disk root ("" when memory-only).
func (s *Store) Dir() string { return s.dir }
