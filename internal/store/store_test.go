package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
)

type payload struct {
	N int `json:"n"`
}

func decodePayload(b []byte) (any, error) {
	var p payload
	if err := json.Unmarshal(b, &p); err != nil {
		return nil, err
	}
	return &p, nil
}

func openT(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func put(t *testing.T, s *Store, digest string, n int) {
	t.Helper()
	raw, _ := json.Marshal(payload{N: n})
	if err := s.Put(digest, raw, &payload{N: n}); err != nil {
		t.Fatal(err)
	}
}

func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir, CacheSize: 8, Decode: decodePayload})
	put(t, s, "aabbcc", 7)
	if v, ok := s.Get("aabbcc"); !ok || v.(*payload).N != 7 {
		t.Fatalf("Get after Put = %v, %v", v, ok)
	}
	if st := s.Stats(); st.MemHits != 1 {
		t.Fatalf("stats after warm Get = %+v, want MemHits 1", st)
	}
	// A fresh store over the same directory — the restart case the old
	// in-memory cache could not survive.
	s2 := openT(t, Options{Dir: dir, CacheSize: 8, Decode: decodePayload})
	v, ok := s2.Get("aabbcc")
	if !ok || v.(*payload).N != 7 {
		t.Fatalf("Get after reopen = %v, %v", v, ok)
	}
	if st := s2.Stats(); st.DiskHits != 1 {
		t.Fatalf("stats after cold Get = %+v, want DiskHits 1", st)
	}
	// The disk hit promoted the entry; the second read is a memory hit.
	if _, ok := s2.Get("aabbcc"); !ok {
		t.Fatal("promoted Get missed")
	}
	if st := s2.Stats(); st.MemHits != 1 {
		t.Fatalf("stats after promoted Get = %+v, want MemHits 1", st)
	}
}

func TestPutIdempotent(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir, CacheSize: 4, Decode: decodePayload})
	put(t, s, "aabbcc", 1)
	put(t, s, "aabbcc", 1)
	n, err := s.Entries()
	if err != nil || n != 1 {
		t.Fatalf("Entries after duplicate puts = %d, %v; want 1", n, err)
	}
}

func TestMemoryOnlyMode(t *testing.T) {
	s := openT(t, Options{CacheSize: 4, Decode: decodePayload})
	put(t, s, "aabbcc", 3)
	if v, ok := s.Get("aabbcc"); !ok || v.(*payload).N != 3 {
		t.Fatalf("memory-only Get = %v, %v", v, ok)
	}
	if n, err := s.Entries(); err != nil || n != 0 {
		t.Fatalf("memory-only Entries = %d, %v", n, err)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("memory-only Get of unknown digest hit")
	}
}

func TestLRUEvictionKeepsDiskTier(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir, CacheSize: 2, Decode: decodePayload})
	for i := 0; i < 3; i++ {
		put(t, s, fmt.Sprintf("d%d", i), i)
	}
	if got := s.CacheLen(); got != 2 {
		t.Fatalf("CacheLen = %d, want 2", got)
	}
	// d0 was evicted from memory but must still be served from disk.
	if v, ok := s.Get("d0"); !ok || v.(*payload).N != 0 {
		t.Fatalf("evicted entry not recovered from disk: %v, %v", v, ok)
	}
	if st := s.Stats(); st.DiskHits != 1 {
		t.Fatalf("stats = %+v, want DiskHits 1", st)
	}
}

func TestCorruptEntryDroppedAndRewritable(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir, CacheSize: 0, Decode: decodePayload})
	put(t, s, "aabbcc", 9)
	path := filepath.Join(dir, "aa", "aabbcc")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte: the CRC must catch it.
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("aabbcc"); ok {
		t.Fatal("Get returned a corrupt entry")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("stats = %+v, want Corrupt 1", st)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corrupt entry not removed: %v", err)
	}
	// The slot is clean again: a re-solve rewrites it.
	put(t, s, "aabbcc", 9)
	if v, ok := s.Get("aabbcc"); !ok || v.(*payload).N != 9 {
		t.Fatalf("Get after rewrite = %v, %v", v, ok)
	}
}

func TestUnknownVersionRejected(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir})
	if err := s.Put("aabbcc", []byte(`{"n":1}`), nil); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "aa", "aabbcc")
	b, _ := os.ReadFile(path)
	b[4] = 0x7f
	os.WriteFile(path, b, 0o644)
	if _, ok := s.Get("aabbcc"); ok {
		t.Fatal("Get accepted an unknown format version")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("stats = %+v, want Corrupt 1", st)
	}
}

func TestTornTailDropsOnlyThatEntry(t *testing.T) {
	// Three published entries, the final one torn mid-payload: recovery
	// must drop only the tail entry and leave the rest readable.
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir, Decode: decodePayload})
	for i := 0; i < 3; i++ {
		put(t, s, fmt.Sprintf("d%d", i), i)
	}
	path := filepath.Join(dir, "d2", "d2")
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, Options{Dir: dir, Decode: decodePayload})
	for i := 0; i < 2; i++ {
		if v, ok := s2.Get(fmt.Sprintf("d%d", i)); !ok || v.(*payload).N != i {
			t.Fatalf("intact entry d%d lost: %v, %v", i, v, ok)
		}
	}
	if _, ok := s2.Get("d2"); ok {
		t.Fatal("torn entry served")
	}
	if st := s2.Stats(); st.Corrupt != 1 || st.DiskHits != 2 {
		t.Fatalf("stats = %+v, want Corrupt 1 DiskHits 2", st)
	}
}

func TestGC(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir})
	s.Put("old111", []byte("a"), nil)
	s.Put("new222", []byte("b"), nil)
	stale := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(filepath.Join(dir, "ol", "old111"), stale, stale); err != nil {
		t.Fatal(err)
	}
	removed, err := s.GC(time.Hour)
	if err != nil || removed != 1 {
		t.Fatalf("GC = %d, %v; want 1 removed", removed, err)
	}
	if n, _ := s.Entries(); n != 1 {
		t.Fatalf("Entries after GC = %d, want 1", n)
	}
}

// Chaos-injected crash tests: the child process runs a Put under a fault
// plan and exits with the planned-crash code; the parent verifies what a
// reopen recovers. Same re-exec pattern as the kecss-serve crash matrix.

const crashEnv = "STORE_CRASH_HELPER"

func TestCrashHelper(t *testing.T) {
	plan := os.Getenv(crashEnv)
	if plan == "" {
		t.Skip("helper process only")
	}
	inj, err := chaos.Parse(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(Options{Dir: os.Getenv("STORE_CRASH_DIR"), Decode: decodePayload, Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-seed one durable entry, then crash inside the second put.
	if err := s.Put("seed00", []byte(`{"n":42}`), nil); err != nil {
		t.Fatal(err)
	}
	s.Put("victim", []byte(`{"n":43}`), nil) // exits here per the plan
	t.Fatal("planned crash did not fire")
}

func runCrashHelper(t *testing.T, dir, plan string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestCrashHelper$", "-test.v")
	cmd.Env = append(os.Environ(), crashEnv+"="+plan, "STORE_CRASH_DIR="+dir)
	out, err := cmd.CombinedOutput()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != chaos.ExitCode {
		t.Fatalf("helper under %q exited %v, want code %d\n%s", plan, err, chaos.ExitCode, out)
	}
}

func TestCrashDuringPutRecovers(t *testing.T) {
	// Hit #1 is the seed put; the plan crashes inside hit #2, the victim.
	for _, plan := range []string{"crash@store.put#2", "torn@store.put#2"} {
		t.Run(plan, func(t *testing.T) {
			dir := t.TempDir()
			runCrashHelper(t, dir, plan)
			s := openT(t, Options{Dir: dir, Decode: decodePayload})
			// Only the in-flight entry is lost; the pre-seeded one survives.
			if v, ok := s.Get("seed00"); !ok || v.(*payload).N != 42 {
				t.Fatalf("pre-crash entry lost: %v, %v", v, ok)
			}
			if _, ok := s.Get("victim"); ok {
				t.Fatal("in-flight entry served after crash")
			}
			// No temp debris after the recovery sweep.
			err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
				if err == nil && !d.IsDir() && strings.Contains(d.Name(), ".tmp-") {
					t.Errorf("temp debris left after sweep: %s", path)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			// The digest is rewritable after recovery.
			if err := s.Put("victim", []byte(`{"n":43}`), nil); err != nil {
				t.Fatal(err)
			}
			if v, ok := s.Get("victim"); !ok || v.(*payload).N != 43 {
				t.Fatalf("rewrite after crash = %v, %v", v, ok)
			}
		})
	}
}
