// Package chaos is a deterministic fault-injection harness for the serving
// stack. A Plan names crash/stall faults at well-known instrumentation
// points (see the Point constants); an Injector counts hits on each point
// and fires the planned fault on the configured hit — always the same hit
// for the same plan string and seed, so a crash test that passes once
// passes forever.
//
// Plans are spelled as comma-separated fault specs:
//
//	crash@journal.before-fsync#3    exit before the 3rd batch is written
//	torn@journal.before-fsync#2     write half the 2nd batch, then exit
//	crash@queue.after-lease#1       exit after the 1st lease is journaled
//	stall@worker.solve#2:300ms      sleep 300ms inside the 2nd solve
//	stall@worker.solve#*:20ms       sleep 20ms inside every solve
//	crash@worker.before-done#1      exit after solving, before the done record
//
// The `#n` hit index is 1-based. When omitted, the hit is derived from the
// plan seed (splitmix64), uniformly in [1, 8] — a cheap way to get a seed
// matrix out of one spec. `#*` fires on every hit instead of one — with
// stall this turns a fault plan into a latency model (each solve costs at
// least the stall), which is how the CI agent-scaling smoke makes
// horizontal scaling visible on a small runner. An empty plan string yields a nil Injector, and
// every Injector method is nil-safe, so production code calls the hooks
// unconditionally.
//
// The process-killing actions call os.Exit(ExitCode) — the test harness
// treats that exit code as "planned crash". Torn writes are performed by
// the instrumented code itself (the journal writes a prefix of its pending
// batch) via the ActCrashTorn action, because only the owner of the file
// knows what a convincing torn tail looks like.
package chaos

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Point names one instrumented fault site.
type Point string

// The instrumented points in the serving stack.
const (
	// JournalBeforeFsync fires in the journal flusher after a batch is
	// assembled but before any of it reaches the file. ActCrash here loses
	// the whole un-acked batch; ActCrashTorn writes a prefix first.
	JournalBeforeFsync Point = "journal.before-fsync"
	// QueueAfterLease fires in the server worker after a claim's lease
	// record is durably journaled, before the solve starts.
	QueueAfterLease Point = "queue.after-lease"
	// WorkerSolve fires inside the worker immediately before the solve
	// runs; a stall here outlives the lease TTL and forces redelivery.
	WorkerSolve Point = "worker.solve"
	// WorkerBeforeDone fires after a solve succeeds, before its done
	// record is journaled — the job must be re-solved on restart.
	WorkerBeforeDone Point = "worker.before-done"
	// StorePut fires in the result store after the temp file is written,
	// before the rename publishes it. ActCrash here leaves only a *.tmp
	// file, which recovery must sweep; ActCrashTorn truncates the temp
	// file first, modeling a torn final record.
	StorePut Point = "store.put"
)

// Action is what an instrumentation point should do right now.
type Action int

const (
	// ActNone: proceed normally (the common case).
	ActNone Action = iota
	// ActCrash: the caller must not proceed; Injector.At already called
	// os.Exit unless the point is ActCrashTorn-aware (it is not for
	// ActCrash — At exits directly).
	ActCrash
	// ActCrashTorn: the caller should produce a torn artifact (write a
	// prefix of its pending bytes) and then call Exit.
	ActCrashTorn
	// ActStall: At already slept for the planned duration; proceed.
	ActStall
)

// ExitCode is the status a planned crash exits with, letting the harness
// distinguish planned crashes from genuine panics.
const ExitCode = 43

// fault is one parsed spec entry.
type fault struct {
	action Action
	hit    uint64 // 1-based hit index on which to fire
	every  bool   // fire on every hit (`#*`) instead of one
	stall  time.Duration
	fired  bool
	once   bool // crash faults fire at most once even if the process survives
}

// Injector counts hits per point and fires planned faults. A nil *Injector
// is inert; all methods are nil-safe.
type Injector struct {
	mu     sync.Mutex
	counts map[Point]uint64 // guarded by mu
	plan   map[Point]*fault // guarded by mu
	// exit is os.Exit, swappable for the injector's own tests.
	exit func(int)
	// sleep is time.Sleep, swappable for tests.
	sleep func(time.Duration)
}

// Parse builds an Injector from a plan spec (see the package comment).
// An empty spec returns (nil, nil). The seed fills in omitted hit indices.
func Parse(spec string, seed int64) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	inj := &Injector{
		counts: make(map[Point]uint64),
		plan:   make(map[Point]*fault),
		exit:   os.Exit,
		sleep:  time.Sleep,
	}
	rng := uint64(seed)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f, pt, err := parseFault(part, &rng)
		if err != nil {
			return nil, err
		}
		if _, dup := inj.plan[pt]; dup {
			return nil, fmt.Errorf("chaos: duplicate fault for point %q", pt)
		}
		inj.plan[pt] = f
	}
	return inj, nil
}

// splitmix64 advances the plan seed; used only to derive omitted hit
// indices deterministically.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func parseFault(part string, rng *uint64) (*fault, Point, error) {
	actionStr, rest, ok := strings.Cut(part, "@")
	if !ok {
		return nil, "", fmt.Errorf("chaos: fault %q: want action@point[#hit][:stall]", part)
	}
	f := &fault{hit: splitmix64(rng)%8 + 1, once: true}
	switch actionStr {
	case "crash":
		f.action = ActCrash
	case "torn":
		f.action = ActCrashTorn
	case "stall":
		f.action = ActStall
		f.stall = 250 * time.Millisecond
	default:
		return nil, "", fmt.Errorf("chaos: unknown action %q (want crash, torn or stall)", actionStr)
	}
	if rest2, stallStr, ok := strings.Cut(rest, ":"); ok {
		if f.action != ActStall {
			return nil, "", fmt.Errorf("chaos: fault %q: only stall takes a duration", part)
		}
		d, err := time.ParseDuration(stallStr)
		if err != nil {
			return nil, "", fmt.Errorf("chaos: fault %q: %v", part, err)
		}
		f.stall = d
		rest = rest2
	}
	pointStr, hitStr, hasHit := strings.Cut(rest, "#")
	if hasHit {
		if hitStr == "*" {
			f.every = true
		} else {
			n, err := strconv.ParseUint(hitStr, 10, 32)
			if err != nil || n == 0 {
				return nil, "", fmt.Errorf("chaos: fault %q: hit index must be a positive integer or *", part)
			}
			f.hit = n
		}
	}
	switch pt := Point(pointStr); pt {
	case JournalBeforeFsync, QueueAfterLease, WorkerSolve, WorkerBeforeDone, StorePut:
		return f, pt, nil
	default:
		return nil, "", fmt.Errorf("chaos: unknown point %q", pointStr)
	}
}

// At records a hit on pt and fires its planned fault when the hit index
// matches. ActCrash exits the process here. ActStall sleeps here and
// returns ActStall. ActCrashTorn returns without exiting: the caller
// produces its torn artifact and then calls Exit. Nil-safe.
func (inj *Injector) At(pt Point) Action {
	if inj == nil {
		return ActNone
	}
	inj.mu.Lock()
	inj.counts[pt]++
	f := inj.plan[pt]
	if f == nil || f.fired || (!f.every && inj.counts[pt] != f.hit) {
		inj.mu.Unlock()
		return ActNone
	}
	if !f.every {
		f.fired = true
	}
	inj.mu.Unlock()
	switch f.action {
	case ActCrash:
		inj.exit(ExitCode)
		return ActCrash // only reached with a swapped exit func
	case ActStall:
		inj.sleep(f.stall)
		return ActStall
	}
	return f.action
}

// Exit terminates the process with the planned-crash exit code. Callers use
// it to finish an ActCrashTorn after writing the torn artifact. Nil-safe:
// a nil Injector ignores the call (no plan, no crash).
func (inj *Injector) Exit() {
	if inj == nil {
		return
	}
	inj.exit(ExitCode)
}

// Hits reports how many times pt has been reached. Nil-safe.
func (inj *Injector) Hits(pt Point) uint64 {
	if inj == nil {
		return 0
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.counts[pt]
}
