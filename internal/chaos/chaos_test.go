package chaos

import (
	"strings"
	"testing"
	"time"
)

func TestParseEmptyIsNil(t *testing.T) {
	for _, spec := range []string{"", "  ", "\t"} {
		inj, err := Parse(spec, 1)
		if err != nil || inj != nil {
			t.Fatalf("Parse(%q) = %v, %v; want nil, nil", spec, inj, err)
		}
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	if act := inj.At(JournalBeforeFsync); act != ActNone {
		t.Fatalf("nil At = %v, want ActNone", act)
	}
	if n := inj.Hits(JournalBeforeFsync); n != 0 {
		t.Fatalf("nil Hits = %d, want 0", n)
	}
	inj.Exit() // must not crash the test process
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"crash",                                 // no point
		"explode@worker.solve",                  // unknown action
		"crash@nowhere",                         // unknown point
		"crash@worker.solve#0",                  // zero hit
		"crash@worker.solve#x",                  // non-numeric hit
		"crash@worker.solve:100ms",              // duration on non-stall
		"stall@worker.solve:notaperiod",         // bad duration
		"crash@worker.solve,crash@worker.solve", // duplicate point
	} {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestExplicitHitFires(t *testing.T) {
	inj, err := Parse("crash@queue.after-lease#3", 1)
	if err != nil {
		t.Fatal(err)
	}
	var exited []int
	inj.exit = func(code int) { exited = append(exited, code) }
	for i := 1; i <= 5; i++ {
		inj.At(QueueAfterLease)
	}
	if len(exited) != 1 || exited[0] != ExitCode {
		t.Fatalf("exit calls = %v, want one with code %d", exited, ExitCode)
	}
	if n := inj.Hits(QueueAfterLease); n != 5 {
		t.Fatalf("Hits = %d, want 5", n)
	}
}

func TestSeedDerivedHitDeterministic(t *testing.T) {
	fire := func(seed int64) int {
		inj, err := Parse("crash@worker.before-done", seed)
		if err != nil {
			t.Fatal(err)
		}
		fired := 0
		inj.exit = func(int) { fired = int(inj.Hits(WorkerBeforeDone)) }
		for i := 0; i < 16; i++ {
			inj.At(WorkerBeforeDone)
		}
		if fired == 0 {
			t.Fatalf("seed %d: fault never fired in 16 hits", seed)
		}
		return fired
	}
	hits := make(map[int]bool)
	for seed := int64(1); seed <= 8; seed++ {
		h1, h2 := fire(seed), fire(seed)
		if h1 != h2 {
			t.Fatalf("seed %d fired at hit %d then %d", seed, h1, h2)
		}
		if h1 < 1 || h1 > 8 {
			t.Fatalf("seed %d fired at hit %d, want [1, 8]", seed, h1)
		}
		hits[h1] = true
	}
	if len(hits) < 2 {
		t.Fatalf("8 seeds all fired at the same hit — no matrix coverage")
	}
}

func TestStallSleeps(t *testing.T) {
	inj, err := Parse("stall@worker.solve#2:137ms", 5)
	if err != nil {
		t.Fatal(err)
	}
	var slept time.Duration
	inj.sleep = func(d time.Duration) { slept += d }
	if act := inj.At(WorkerSolve); act != ActNone {
		t.Fatalf("hit 1 = %v, want ActNone", act)
	}
	if act := inj.At(WorkerSolve); act != ActStall {
		t.Fatalf("hit 2 = %v, want ActStall", act)
	}
	if slept != 137*time.Millisecond {
		t.Fatalf("slept %v, want 137ms", slept)
	}
	if act := inj.At(WorkerSolve); act != ActNone {
		t.Fatalf("hit 3 = %v, want ActNone (fires once)", act)
	}
}

func TestEveryHitStalls(t *testing.T) {
	inj, err := Parse("stall@worker.solve#*:13ms", 5)
	if err != nil {
		t.Fatal(err)
	}
	var slept time.Duration
	inj.sleep = func(d time.Duration) { slept += d }
	for hit := 1; hit <= 4; hit++ {
		if act := inj.At(WorkerSolve); act != ActStall {
			t.Fatalf("hit %d = %v, want ActStall (#* fires every time)", hit, act)
		}
	}
	if slept != 4*13*time.Millisecond {
		t.Fatalf("slept %v, want 52ms", slept)
	}
}

func TestTornReturnsForCaller(t *testing.T) {
	inj, err := Parse("torn@journal.before-fsync#1", 1)
	if err != nil {
		t.Fatal(err)
	}
	exited := false
	inj.exit = func(int) { exited = true }
	if act := inj.At(JournalBeforeFsync); act != ActCrashTorn {
		t.Fatalf("At = %v, want ActCrashTorn", act)
	}
	if exited {
		t.Fatal("ActCrashTorn exited inside At; the caller owns the torn write")
	}
	inj.Exit()
	if !exited {
		t.Fatal("Exit did not call the exit func")
	}
}

func TestMultiFaultPlan(t *testing.T) {
	inj, err := Parse("stall@worker.solve#1:1ms, crash@queue.after-lease#2", 1)
	if err != nil {
		t.Fatal(err)
	}
	inj.exit = func(int) {}
	inj.sleep = func(time.Duration) {}
	if act := inj.At(WorkerSolve); act != ActStall {
		t.Fatalf("worker.solve hit 1 = %v, want ActStall", act)
	}
	if act := inj.At(QueueAfterLease); act != ActNone {
		t.Fatalf("queue.after-lease hit 1 = %v, want ActNone", act)
	}
	inj.At(QueueAfterLease) // hit 2 fires crash (swapped exit)
	if n := inj.Hits(QueueAfterLease); n != 2 {
		t.Fatalf("Hits = %d, want 2", n)
	}
}

func TestParseErrorMentionsSpec(t *testing.T) {
	_, err := Parse("crash@worker.solve#0", 1)
	if err == nil || !strings.Contains(err.Error(), "hit index") {
		t.Fatalf("err = %v, want hit-index complaint", err)
	}
}
