package baselines

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/tree"
)

func mstTree(t *testing.T, g *graph.Graph) *tree.Rooted {
	t.Helper()
	ids, _ := mst.Kruskal(g)
	tr, err := tree.FromEdges(g, ids, 0)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func isAugmentation(g *graph.Graph, tr *tree.Rooted, aug []int) bool {
	all := append(append([]int(nil), tr.EdgeIDs()...), aug...)
	sub, _ := g.SubgraphOf(all)
	return sub.TwoEdgeConnected()
}

func TestGreedyTAPProducesValidAugmentation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomKConnected(15+rng.Intn(15), 2, 20, rng, graph.RandomWeights(rng, 30))
		tr := mstTree(t, g)
		aug, w, err := GreedyTAP(g, tr)
		if err != nil {
			t.Fatal(err)
		}
		if !isAugmentation(g, tr, aug) {
			t.Fatalf("trial %d: greedy augmentation invalid", trial)
		}
		if w != g.WeightOf(aug) {
			t.Fatalf("trial %d: weight mismatch", trial)
		}
	}
}

func TestGreedyTAPZeroWeightEdgesTakenFirst(t *testing.T) {
	// Explicit spanning tree (the path 0-1-2-3) with a zero-weight closing
	// chord: the chord must be taken in preprocessing, weight stays 0.
	g := graph.New(4)
	t01 := g.AddEdge(0, 1, 5)
	t12 := g.AddEdge(1, 2, 5)
	t23 := g.AddEdge(2, 3, 5)
	z := g.AddEdge(3, 0, 0)
	tr, err := tree.FromEdges(g, []int{t01, t12, t23}, 0)
	if err != nil {
		t.Fatal(err)
	}
	aug, w, err := GreedyTAP(g, tr)
	if err != nil {
		t.Fatal(err)
	}
	if w != 0 || len(aug) != 1 || aug[0] != z {
		t.Fatalf("aug=%v w=%d, want just the zero edge", aug, w)
	}
}

func TestExactTAPOnKnownInstance(t *testing.T) {
	// Cycle 0-1-2-3-0 with unit weights: tree is the path, the single
	// closing edge is the only augmentation.
	g := graph.Cycle(4, graph.UnitWeights())
	tr := mstTree(t, g)
	aug, w, err := ExactTAP(g, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(aug) != 1 || w != 1 {
		t.Fatalf("aug=%v w=%d, want one unit edge", aug, w)
	}
}

func TestExactTAPBeatsOrMatchesGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 15; trial++ {
		g := graph.RandomKConnected(8+rng.Intn(6), 2, 6, rng, graph.RandomWeights(rng, 20))
		tr := mstTree(t, g)
		exact, ew, err := ExactTAP(g, tr)
		if err != nil {
			t.Fatal(err)
		}
		if !isAugmentation(g, tr, exact) {
			t.Fatalf("trial %d: exact augmentation invalid", trial)
		}
		_, gw, err := GreedyTAP(g, tr)
		if err != nil {
			t.Fatal(err)
		}
		if ew > gw {
			t.Fatalf("trial %d: exact %d worse than greedy %d", trial, ew, gw)
		}
	}
}

func TestExactTAPErrorsOnBridge(t *testing.T) {
	// A graph with a bridge: its tree edge cannot be covered.
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 0, 1)
	g.AddEdge(2, 3, 1) // bridge
	tr := mstTree(t, g)
	if _, _, err := ExactTAP(g, tr); err == nil {
		t.Fatal("expected error for uncoverable bridge")
	}
	if _, _, err := GreedyTAP(g, tr); err == nil {
		t.Fatal("expected greedy error for uncoverable bridge")
	}
}

func TestExactKECSSCycle(t *testing.T) {
	// The minimum 2-ECSS of a cycle is the cycle itself.
	g := graph.Cycle(6, graph.UnitWeights())
	ids, w, err := ExactKECSS(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 6 || w != 6 {
		t.Fatalf("got %d edges weight %d, want the full cycle", len(ids), w)
	}
}

func TestExactKECSSPrunesHeavyEdges(t *testing.T) {
	// Cycle of weight-1 edges plus an expensive chord: the chord must not
	// appear in the optimum.
	g := graph.Cycle(5, graph.UnitWeights())
	chord := g.AddEdge(0, 2, 100)
	ids, w, err := ExactKECSS(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if w != 5 {
		t.Fatalf("weight = %d, want 5", w)
	}
	for _, id := range ids {
		if id == chord {
			t.Fatal("optimum contains the expensive chord")
		}
	}
}

func TestExactKECSSK3(t *testing.T) {
	g := graph.Harary(3, 6, graph.UnitWeights())
	ids, w, err := ExactKECSS(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Harary is minimum-size: ceil(3*6/2) = 9 edges.
	if len(ids) != 9 || w != 9 {
		t.Fatalf("got %d edges weight %d, want 9/9", len(ids), w)
	}
	sub, _ := g.SubgraphOf(ids)
	if !sub.IsKEdgeConnected(3) {
		t.Fatal("result not 3-edge-connected")
	}
}

func TestExactKECSSRejectsBigInstance(t *testing.T) {
	g := graph.Circulant(30, 2, graph.UnitWeights())
	if _, _, err := ExactKECSS(g, 2); err == nil {
		t.Fatal("expected size-limit error")
	}
}

func TestExactKECSSRejectsUnderConnected(t *testing.T) {
	g := graph.Cycle(6, graph.UnitWeights())
	if _, _, err := ExactKECSS(g, 3); err == nil {
		t.Fatal("expected connectivity error")
	}
}

func TestThurimellaCertificate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, k := range []int{1, 2, 3} {
		for trial := 0; trial < 5; trial++ {
			g := graph.RandomKConnected(20+rng.Intn(15), k, 25, rng, graph.UnitWeights())
			cert := ThurimellaCertificate(g, k)
			if len(cert) > k*(g.N()-1) {
				t.Fatalf("k=%d: certificate has %d edges, want <= k(n-1)=%d", k, len(cert), k*(g.N()-1))
			}
			sub, _ := g.SubgraphOf(cert)
			if !sub.IsKEdgeConnected(k) {
				t.Fatalf("k=%d trial %d: certificate not %d-edge-connected", k, trial, k)
			}
			// 2-approximation for unweighted: |cert| <= 2 * (kn/2) = kn,
			// and any k-ECSS has >= kn/2 edges.
			if 2*len(cert) > 4*(k*g.N()/2)+4 {
				t.Fatalf("k=%d: certificate too large for 2-approx: %d", k, len(cert))
			}
		}
	}
}

func TestTwoECSSUnweighted2Approx(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomKConnected(20+rng.Intn(20), 2, 15, rng, graph.UnitWeights())
		ids, tr, err := TwoECSSUnweighted2Approx(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		sub, _ := g.SubgraphOf(ids)
		if !sub.TwoEdgeConnected() {
			t.Fatalf("trial %d: result not 2-edge-connected", trial)
		}
		if len(ids) > 2*(g.N()-1) {
			t.Fatalf("trial %d: %d edges, want <= 2(n-1)=%d", trial, len(ids), 2*(g.N()-1))
		}
		if tr.Root != 0 {
			t.Fatalf("trial %d: root = %d", trial, tr.Root)
		}
		// Diameter O(D): the subgraph contains the whole BFS tree.
		if sd, gd := sub.Diameter(), g.Diameter(); sd > 2*gd+2 {
			t.Fatalf("trial %d: subgraph diameter %d vs graph %d", trial, sd, gd)
		}
	}
}

func TestTwoECSSUnweighted2ApproxErrorsOnBridge(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 0, 1)
	g.AddEdge(2, 3, 1)
	if _, _, err := TwoECSSUnweighted2Approx(g, 0); err == nil {
		t.Fatal("expected error")
	}
}

func TestDegreeLowerBound(t *testing.T) {
	// Unit cycle: bound = n (each vertex contributes its 2 unit edges / 2).
	g := graph.Cycle(7, graph.UnitWeights())
	if got := DegreeLowerBound(g, 2); got != 7 {
		t.Fatalf("bound = %d, want 7", got)
	}
	// The bound never exceeds OPT on exactly solvable instances.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		gg := graph.RandomKConnected(7, 2, 3, rng, graph.RandomWeights(rng, 15))
		if gg.M() > MaxExactKECSSEdges {
			continue
		}
		_, opt, err := ExactKECSS(gg, 2)
		if err != nil {
			t.Fatal(err)
		}
		if lb := DegreeLowerBound(gg, 2); lb > opt {
			t.Fatalf("trial %d: lower bound %d exceeds OPT %d", trial, lb, opt)
		}
	}
}
