// Package baselines implements the comparison algorithms and oracles the
// experiments measure against:
//
//   - the classic sequential greedy set-cover TAP (what the paper's voting
//     scheme parallelises),
//   - exact branch-and-bound solvers for TAP and k-ECSS on small instances
//     (the OPT oracle for approximation-ratio experiments),
//   - Thurimella's sparse-certificate 2-approximation for unweighted k-ECSS
//     (k successive maximal spanning forests) [36],
//   - the O(D)-round 2-approximation for unweighted 2-ECSS [1] that the
//     paper's 3-ECSS algorithm uses to build its base subgraph H,
//   - combinatorial lower bounds for large instances.
package baselines

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/graph"
	"repro/internal/tree"
)

// ---------------------------------------------------------------------------
// Sequential greedy TAP (classic O(log n)-approximation).
// ---------------------------------------------------------------------------

// GreedyTAP repeatedly adds the non-tree edge maximizing |Ce|/w(e) (exact
// ratio, ties by edge ID) until every tree edge is covered. Weight-0 edges
// are all taken first, mirroring the paper's preprocessing.
func GreedyTAP(g *graph.Graph, tr *tree.Rooted) ([]int, int64, error) {
	inTree := tr.IsTreeEdge()
	type cand struct {
		id int
		se []int
	}
	var cands []cand
	covered := make(map[int]bool, g.N()-1)
	for id := range inTree {
		covered[id] = false
	}
	uncovered := len(covered)
	cover := func(se []int) {
		for _, t := range se {
			if !covered[t] {
				covered[t] = true
				uncovered--
			}
		}
	}
	var out []int
	var weight int64
	for _, e := range g.Edges() {
		if inTree[e.ID] {
			continue
		}
		se := tr.PathEdges(e.U, e.V)
		if e.W == 0 {
			out = append(out, e.ID)
			cover(se)
			continue
		}
		cands = append(cands, cand{id: e.ID, se: se})
	}
	for uncovered > 0 {
		bestIdx := -1
		var bestCe, bestW int64 = 0, 1
		for i, c := range cands {
			var ce int64
			for _, t := range c.se {
				if !covered[t] {
					ce++
				}
			}
			if ce == 0 {
				continue
			}
			w := g.Edge(c.id).W
			cmp := ce*bestW - bestCe*w
			if cmp > 0 || (cmp == 0 && bestIdx != -1 && c.id < cands[bestIdx].id) {
				bestIdx, bestCe, bestW = i, ce, w
			}
		}
		if bestIdx == -1 {
			return nil, 0, fmt.Errorf("baselines: greedy TAP stuck with %d uncovered tree edges", uncovered)
		}
		c := cands[bestIdx]
		out = append(out, c.id)
		weight += g.Edge(c.id).W
		cover(c.se)
	}
	return out, g.WeightOf(out), nil
}

// ---------------------------------------------------------------------------
// Exact TAP via branch and bound (set cover over tree edges).
// ---------------------------------------------------------------------------

// ExactTAP returns a minimum-weight augmentation of tr in g. It solves the
// set-cover instance exactly by branch and bound: branch on the uncovered
// tree edge with the fewest covering candidates. Intended for small
// instances (oracle for ratio experiments); returns an error if the tree is
// not augmentable.
func ExactTAP(g *graph.Graph, tr *tree.Rooted) ([]int, int64, error) {
	inTree := tr.IsTreeEdge()
	// Index tree edges 0..T-1.
	treeIdx := make(map[int]int, len(inTree))
	var treeIDs []int
	for _, e := range g.Edges() {
		if inTree[e.ID] {
			treeIdx[e.ID] = len(treeIDs)
			treeIDs = append(treeIDs, e.ID)
		}
	}
	nt := len(treeIDs)
	words := (nt + 63) / 64
	type cand struct {
		id   int
		w    int64
		mask []uint64
	}
	var cands []cand
	for _, e := range g.Edges() {
		if inTree[e.ID] {
			continue
		}
		mask := make([]uint64, words)
		for _, t := range tr.PathEdges(e.U, e.V) {
			i := treeIdx[t]
			mask[i/64] |= 1 << uint(i%64)
		}
		cands = append(cands, cand{id: e.ID, w: e.W, mask: mask})
	}
	// Candidates covering each tree edge.
	coverers := make([][]int, nt)
	for ci, c := range cands {
		for i := 0; i < nt; i++ {
			if c.mask[i/64]&(1<<uint(i%64)) != 0 {
				coverers[i] = append(coverers[i], ci)
			}
		}
	}
	for i, cs := range coverers {
		if len(cs) == 0 {
			return nil, 0, fmt.Errorf("baselines: tree edge %d is not coverable (graph not 2-edge-connected)", treeIDs[i])
		}
	}
	full := make([]uint64, words)
	for i := 0; i < nt; i++ {
		full[i/64] |= 1 << uint(i%64)
	}

	const inf = int64(1) << 62
	best := inf
	var bestSet []int
	cur := make([]int, 0, len(cands))
	covered := make([]uint64, words)

	allCovered := func() bool {
		for i := range covered {
			if covered[i] != full[i] {
				return false
			}
		}
		return true
	}
	var dfs func(weight int64)
	dfs = func(weight int64) {
		if weight >= best {
			return
		}
		if allCovered() {
			best = weight
			bestSet = append(bestSet[:0], cur...)
			return
		}
		// Branch on the uncovered tree edge with the fewest coverers.
		pick, pickCount := -1, 1<<30
		for i := 0; i < nt; i++ {
			if covered[i/64]&(1<<uint(i%64)) != 0 {
				continue
			}
			if len(coverers[i]) < pickCount {
				pick, pickCount = i, len(coverers[i])
			}
		}
		for _, ci := range coverers[pick] {
			c := cands[ci]
			saved := make([]uint64, words)
			copy(saved, covered)
			for j := range covered {
				covered[j] |= c.mask[j]
			}
			cur = append(cur, c.id)
			dfs(weight + c.w)
			cur = cur[:len(cur)-1]
			copy(covered, saved)
		}
	}
	dfs(0)
	if best == inf {
		return nil, 0, fmt.Errorf("baselines: no augmentation found")
	}
	sort.Ints(bestSet)
	return bestSet, best, nil
}

// ---------------------------------------------------------------------------
// Exact k-ECSS by bounded enumeration (small instances only).
// ---------------------------------------------------------------------------

// MaxExactKECSSEdges bounds the instance size ExactKECSS accepts.
const MaxExactKECSSEdges = 24

// ExactKECSS returns a minimum-weight k-edge-connected spanning subgraph of
// g by exhaustive enumeration with weight pruning. Only instances with at
// most MaxExactKECSSEdges edges are accepted.
func ExactKECSS(g *graph.Graph, k int) ([]int, int64, error) {
	m := g.M()
	if m > MaxExactKECSSEdges {
		return nil, 0, fmt.Errorf("baselines: ExactKECSS limited to %d edges, got %d", MaxExactKECSSEdges, m)
	}
	if !g.IsKEdgeConnected(k) {
		return nil, 0, fmt.Errorf("baselines: input graph is not %d-edge-connected", k)
	}
	minEdges := (k*g.N() + 1) / 2
	const inf = int64(1) << 62
	best := inf
	var bestMask uint32
	weights := make([]int64, m)
	for i, e := range g.Edges() {
		weights[i] = e.W
	}
	for mask := uint32(0); mask < 1<<uint(m); mask++ {
		if bits.OnesCount32(mask) < minEdges {
			continue
		}
		var w int64
		for i := 0; i < m; i++ {
			if mask&(1<<uint(i)) != 0 {
				w += weights[i]
			}
		}
		if w >= best {
			continue
		}
		ids := maskToIDs(mask, m)
		sub, _ := g.SubgraphOf(ids)
		if sub.IsKEdgeConnected(k) {
			best = w
			bestMask = mask
		}
	}
	if best == inf {
		return nil, 0, fmt.Errorf("baselines: no %d-ECSS found", k)
	}
	return maskToIDs(bestMask, m), best, nil
}

func maskToIDs(mask uint32, m int) []int {
	ids := make([]int, 0, bits.OnesCount32(mask))
	for i := 0; i < m; i++ {
		if mask&(1<<uint(i)) != 0 {
			ids = append(ids, i)
		}
	}
	return ids
}

// ---------------------------------------------------------------------------
// Thurimella sparse certificates: unweighted k-ECSS 2-approximation [36].
// ---------------------------------------------------------------------------

// ThurimellaCertificate computes k successive maximal spanning forests
// F1..Fk (each Fi a spanning forest of G minus the previous forests) and
// returns their union: a k-edge-connected subgraph (if G is) with at most
// k(n-1) edges — a 2-approximation for unweighted k-ECSS since any k-ECSS
// has at least kn/2 edges. Forests are chosen in edge-ID order, matching a
// deterministic distributed implementation.
func ThurimellaCertificate(g *graph.Graph, k int) []int {
	used := make(map[int]bool, k*g.N())
	var out []int
	for i := 0; i < k; i++ {
		uf := graph.NewUnionFind(g.N())
		for _, e := range g.Edges() {
			if used[e.ID] {
				// Edges in earlier forests stay removed but their endpoints
				// are *not* pre-merged: each forest is maximal in G minus
				// previous forests.
				continue
			}
			if uf.Union(e.U, e.V) {
				used[e.ID] = true
				out = append(out, e.ID)
			}
		}
	}
	sort.Ints(out)
	return out
}

// ---------------------------------------------------------------------------
// O(D)-round 2-approximation for unweighted 2-ECSS [1].
// ---------------------------------------------------------------------------

// TwoECSSUnweighted2Approx builds a BFS tree from root and augments it with
// at most n-1 non-tree edges (shallowest-LCA greedy, bottom-up), giving a
// 2-edge-connected subgraph of at most 2(n-1) < 2·OPT edges whose diameter
// is O(D). This is the base-subgraph construction the paper's unweighted
// 3-ECSS algorithm starts from.
func TwoECSSUnweighted2Approx(g *graph.Graph, root int) ([]int, *tree.Rooted, error) {
	tr, err := tree.FromBFS(g.BFS(root))
	if err != nil {
		return nil, nil, fmt.Errorf("baselines: BFS tree: %w", err)
	}
	inTree := tr.IsTreeEdge()
	n := g.N()

	// bestReach[v]: non-tree edge with an endpoint in subtree(v) whose LCA
	// is shallowest; computed bottom-up.
	type reach struct {
		depth int // depth of the edge's LCA; n means none
		edge  int
	}
	bestReach := make([]reach, n)
	for v := range bestReach {
		bestReach[v] = reach{depth: n, edge: -1}
	}
	lcaDepth := make(map[int]int)
	for _, e := range g.Edges() {
		if inTree[e.ID] {
			continue
		}
		l := tr.LCA(e.U, e.V)
		lcaDepth[e.ID] = tr.Depth[l]
		for _, x := range [2]int{e.U, e.V} {
			if tr.Depth[l] < bestReach[x].depth {
				bestReach[x] = reach{depth: tr.Depth[l], edge: e.ID}
			}
		}
	}
	for _, v := range tr.PostOrder() {
		for _, c := range tr.Children(v) {
			if bestReach[c].depth < bestReach[v].depth {
				bestReach[v] = bestReach[c]
			}
		}
	}

	covered := make(map[int]bool, n-1)
	out := append([]int(nil), tr.EdgeIDs()...)
	// Vertices by decreasing depth: each uncovered tree edge {v, p(v)} gets
	// the shallowest-reaching edge from subtree(v).
	order := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if v != tr.Root {
			order = append(order, v)
		}
	}
	sort.Slice(order, func(i, j int) bool { return tr.Depth[order[i]] > tr.Depth[order[j]] })
	for _, v := range order {
		te := tr.ParentEdge[v]
		if covered[te] {
			continue
		}
		r := bestReach[v]
		if r.edge == -1 || r.depth >= tr.Depth[v] {
			return nil, nil, fmt.Errorf("baselines: tree edge above %d not coverable (graph not 2-edge-connected)", v)
		}
		e := g.Edge(r.edge)
		out = append(out, r.edge)
		for _, t := range tr.PathEdges(e.U, e.V) {
			covered[t] = true
		}
	}
	sort.Ints(out)
	return out, tr, nil
}

// ---------------------------------------------------------------------------
// Lower bounds for large-instance ratio experiments.
// ---------------------------------------------------------------------------

// DegreeLowerBound returns the degree LP bound on the weight of any k-ECSS:
// every vertex must keep at least k incident edges, so OPT is at least half
// the sum over vertices of their k cheapest incident edge weights.
func DegreeLowerBound(g *graph.Graph, k int) int64 {
	var total int64
	for v := 0; v < g.N(); v++ {
		ws := make([]int64, 0, g.Degree(v))
		for _, a := range g.Adj(v) {
			ws = append(ws, g.Edge(a.Edge).W)
		}
		sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
		for i := 0; i < k && i < len(ws); i++ {
			total += ws[i]
		}
	}
	return (total + 1) / 2
}
