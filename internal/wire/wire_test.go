package wire

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
)

// generatorFamilies builds one representative of every generator family in
// internal/graph/generators.go, deterministically.
func generatorFamilies() map[string]*graph.Graph {
	rng := func(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
	unit := graph.UnitWeights()
	return map[string]*graph.Graph{
		"cycle":       graph.Cycle(17, unit),
		"circulant":   graph.Circulant(16, 3, unit),
		"harary":      graph.Harary(4, 15, graph.RandomWeights(rng(2), 50)),
		"random":      graph.RandomKConnected(30, 3, 40, rng(3), graph.RandomWeights(rng(4), 100)),
		"grid":        graph.Grid(4, 6, unit),
		"cliquechain": graph.CliqueChain(4, 5, 3, unit),
		"geometric":   graph.RandomGeometric(40, 0.3, 2, rng(5)),
		"chunglu":     graph.ChungLu(36, 2.5, 6, 2, rng(6), unit),
		"fattree":     graph.FatTree(4, unit),
		"figure2":     graph.PaperFigure2Graph(),
	}
}

// goldenDigests pins the content digest of every family's representative
// under a fixed spec. These values must never change: they freeze both the
// canonical binary encoding and the generators' outputs. If a digest moves,
// either the wire format or a generator changed — both invalidate every
// cache and recorded comparison in the wild.
var goldenDigests = map[string]string{
	"chunglu":     "a46ace521897cba232f9e691808b96fac5fc9d68355b0a85ea76e6b32726e868",
	"circulant":   "6a06c35b1929b491ff73adb3583e001b02b93583992ea94660ceb952b782129a",
	"cliquechain": "7f6cff3a41728232bfe447b45472c808ac30129e70e639d8e4d9b76256c8d06c",
	"cycle":       "8afa7e7abeba0e8474a00ded15ecd9774552320358ae8b59aed7e216015a29e9",
	"fattree":     "3a69dd72c8dc246fdc5249637195103f5882d1f0b3662d5738c838dcc11864f5",
	"figure2":     "02ee8ed596c3ea4974fc7cae1c291c958ff85ffe88a9f5dddbd1395d2e954446",
	"geometric":   "26c4cb4117033c36e27c8bbef983efaa0e63bf6379fdc58f67478dac5d15020d",
	"grid":        "cf2e3dbae7ab82af82e949a6d665241327f3976b1e37a23d5a90c6e2adbbcd94",
	"harary":      "f0e904090dd16226b81ac6560185ad14a02ebbcb89e32c592fb2680880673b5d",
	"random":      "70133ffd0132cd1b235e819503592b33ed922a8896326b8e30646f74ec207556",
}

func graphsEqual(a, b *graph.Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	return reflect.DeepEqual(a.Edges(), b.Edges())
}

func TestRoundTripEveryFamily(t *testing.T) {
	spec := SolveSpec{Solver: "kecss", K: 3, Seed: 42}
	for name, g := range generatorFamilies() {
		// Graph → JSON → Graph.
		gj := GraphToJSON(g)
		raw, err := json.Marshal(gj)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		var gj2 GraphJSON
		if err := json.Unmarshal(raw, &gj2); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		fromJSON, err := gj2.ToGraph()
		if err != nil {
			t.Fatalf("%s: ToGraph: %v", name, err)
		}
		if !graphsEqual(g, fromJSON) {
			t.Fatalf("%s: JSON round trip changed the graph", name)
		}
		// Graph → binary → Graph.
		fromBinary, err := DecodeGraph(EncodeGraph(g))
		if err != nil {
			t.Fatalf("%s: DecodeGraph: %v", name, err)
		}
		if !graphsEqual(g, fromBinary) {
			t.Fatalf("%s: binary round trip changed the graph", name)
		}
		// JSON-decoded and binary-decoded copies digest identically to the
		// original — the property the server's cache keys rely on.
		d0 := Digest(g, spec)
		if d1 := Digest(fromJSON, spec); d1 != d0 {
			t.Fatalf("%s: JSON round trip changed the digest: %s vs %s", name, d1, d0)
		}
		if d2 := Digest(fromBinary, spec); d2 != d0 {
			t.Fatalf("%s: binary round trip changed the digest: %s vs %s", name, d2, d0)
		}
	}
}

func TestGoldenDigestsStable(t *testing.T) {
	spec := SolveSpec{Solver: "kecss", K: 3, Seed: 42}
	families := generatorFamilies()
	if len(families) != len(goldenDigests) {
		t.Fatalf("have %d families but %d golden digests", len(families), len(goldenDigests))
	}
	for name, g := range families {
		want, ok := goldenDigests[name]
		if !ok {
			t.Fatalf("no golden digest recorded for family %q (got %s)", name, Digest(g, spec))
		}
		if got := Digest(g, spec); got != want {
			t.Errorf("family %q digest drifted:\n  got  %s\n  want %s", name, got, want)
		}
	}
}

func TestDigestSensitivity(t *testing.T) {
	g := graph.Harary(3, 12, graph.UnitWeights())
	base := SolveSpec{Solver: "kecss", K: 3, Seed: 7}
	d0 := Digest(g, base)

	variants := []SolveSpec{
		{Solver: "3ecss", K: 3, Seed: 7},
		{Solver: "kecss", K: 4, Seed: 7},
		{Solver: "kecss", K: 3, Seed: 8},
		{Solver: "kecss", K: 3, Seed: 7, SimulateMST: true},
		{Solver: "kecss", K: 3, Seed: 7, VoteDenom: 4},
		{Solver: "kecss", K: 3, Seed: 7, LabelBits: 32},
		{Solver: "kecss", K: 3, Seed: 7, PhaseLen: 2},
	}
	for i, v := range variants {
		if Digest(g, v) == d0 {
			t.Errorf("variant %d (%+v) collided with the base spec", i, v)
		}
	}
	// A different graph with the same spec must differ too.
	g2 := graph.Harary(3, 12, graph.UnitWeights())
	g2.AddEdge(0, 6, 1)
	if Digest(g2, base) == d0 {
		t.Error("adding an edge did not change the digest")
	}
	// And an equal graph built independently must collide (content address).
	g3 := graph.Harary(3, 12, graph.UnitWeights())
	if Digest(g3, base) != d0 {
		t.Error("identical graphs digested differently")
	}
}

func TestDecodeGraphRejectsMalformed(t *testing.T) {
	g := graph.Harary(2, 8, graph.UnitWeights())
	enc := EncodeGraph(g)
	if _, err := DecodeGraph(enc[:len(enc)-1]); err == nil {
		t.Error("truncated encoding accepted")
	}
	if _, err := DecodeGraph(append(append([]byte{}, enc...), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	if _, err := DecodeGraph([]byte("nope")); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestGraphJSONRejectsMalformed(t *testing.T) {
	bad := []GraphJSON{
		{N: -1},
		{N: 4, Edges: [][3]int64{{0, 4, 1}}},  // endpoint out of range
		{N: 4, Edges: [][3]int64{{2, 2, 1}}},  // self-loop
		{N: 4, Edges: [][3]int64{{0, 1, -5}}}, // negative weight
	}
	for i, gj := range bad {
		if _, err := gj.ToGraph(); err == nil {
			t.Errorf("malformed graph %d accepted", i)
		}
	}
}

func TestResultDigestMatchesPinnedFormat(t *testing.T) {
	lines := []ResultLine{
		{Task: 0, Edges: []int{3, 1, 2}, Weight: 10, Rounds: 99},
		{Task: 1, Err: "boom"},
	}
	// Golden value pins the "%d|%v|%d|%d|%v\n" line format (with "<nil>"
	// for success) that cmd/kecss-bench -compare has used since PR 2.
	const want = "fc3854e1d692bb96"
	if got := ResultDigest(lines); got != want {
		t.Errorf("ResultDigest = %s, want %s", got, want)
	}
	if SolveResultDigest([]int{3, 1, 2}, 10, 99) != ResultDigest(lines[:1]) {
		t.Error("SolveResultDigest disagrees with ResultDigest on the same line")
	}
	if ResultDigest(lines) == ResultDigest(lines[:1]) {
		t.Error("dropping a line did not change the digest")
	}
}
