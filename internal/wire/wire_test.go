package wire

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
)

// generatorFamilies builds one representative of every generator family in
// internal/graph/generators.go, deterministically.
func generatorFamilies() map[string]*graph.Graph {
	rng := func(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
	unit := graph.UnitWeights()
	return map[string]*graph.Graph{
		"cycle":       graph.Cycle(17, unit),
		"circulant":   graph.Circulant(16, 3, unit),
		"harary":      graph.Harary(4, 15, graph.RandomWeights(rng(2), 50)),
		"random":      graph.RandomKConnected(30, 3, 40, rng(3), graph.RandomWeights(rng(4), 100)),
		"grid":        graph.Grid(4, 6, unit),
		"cliquechain": graph.CliqueChain(4, 5, 3, unit),
		"geometric":   graph.RandomGeometric(40, 0.3, 2, rng(5)),
		"chunglu":     graph.ChungLu(36, 2.5, 6, 2, rng(6), unit),
		"fattree":     graph.FatTree(4, unit),
		"figure2":     graph.PaperFigure2Graph(),
	}
}

// goldenDigests pins the content digest of every family's representative
// under a fixed spec. These values must never change for a given
// wire.DigestVersion: they freeze the version byte, the canonical binary
// encoding and the generators' outputs. If a digest moves, either the
// pre-image layout or a generator changed — both invalidate every store
// entry and recorded comparison in the wild, and the layout case requires
// a DigestVersion bump (recorded under version 0x01).
var goldenDigests = map[string]string{
	"chunglu":     "fca0e0f1e2c6719fd4a500e553b27788fdcd5a14356aaa14c94545194ed41f9b",
	"circulant":   "daaea34748d4061af52e61327060b0c6fc2364a601f5178965f820d6bf534157",
	"cliquechain": "639fd9cfe9eea457c5c747e2782e3c0be336923d584af45f23e71f11313b59aa",
	"cycle":       "024fa4fc0dad2f961318f01b83ebc6c916286b34eb232b98b8230c79324877fc",
	"fattree":     "3aed0e6a7a11c651bb23bf373e0a84a6d8415daedec8dd4c67e8e9b7b44855c3",
	"figure2":     "bed5d33dc073f812fc972a047b353250dbaa7166e0ae13aecabfb2e52abdc474",
	"geometric":   "0df33f161100e4e66e8c15dcb13e6643a67ed3405292c43efcb787f1e3cfcbc0",
	"grid":        "5ae93abc4ed73161025a83e01af8106d6fad3db104dcaa52a41beda77ba7fe88",
	"harary":      "4332c53b54930ad38eba2b663dd568a73e327cb8811f67304659512057317055",
	"random":      "b9ebc73aed9e9b446ee4df34638bbb2c2719833d35d238e71b04c50f0afa32aa",
}

func graphsEqual(a, b *graph.Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	return reflect.DeepEqual(a.Edges(), b.Edges())
}

func TestRoundTripEveryFamily(t *testing.T) {
	spec := SolveSpec{Solver: "kecss", K: 3, Seed: 42}
	for name, g := range generatorFamilies() {
		// Graph → JSON → Graph.
		gj := GraphToJSON(g)
		raw, err := json.Marshal(gj)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		var gj2 GraphJSON
		if err := json.Unmarshal(raw, &gj2); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		fromJSON, err := gj2.ToGraph()
		if err != nil {
			t.Fatalf("%s: ToGraph: %v", name, err)
		}
		if !graphsEqual(g, fromJSON) {
			t.Fatalf("%s: JSON round trip changed the graph", name)
		}
		// Graph → binary → Graph.
		fromBinary, err := DecodeGraph(EncodeGraph(g))
		if err != nil {
			t.Fatalf("%s: DecodeGraph: %v", name, err)
		}
		if !graphsEqual(g, fromBinary) {
			t.Fatalf("%s: binary round trip changed the graph", name)
		}
		// JSON-decoded and binary-decoded copies digest identically to the
		// original — the property the server's cache keys rely on.
		d0 := Digest(g, spec)
		if d1 := Digest(fromJSON, spec); d1 != d0 {
			t.Fatalf("%s: JSON round trip changed the digest: %s vs %s", name, d1, d0)
		}
		if d2 := Digest(fromBinary, spec); d2 != d0 {
			t.Fatalf("%s: binary round trip changed the digest: %s vs %s", name, d2, d0)
		}
	}
}

func TestGoldenDigestsStable(t *testing.T) {
	spec := SolveSpec{Solver: "kecss", K: 3, Seed: 42}
	families := generatorFamilies()
	if len(families) != len(goldenDigests) {
		t.Fatalf("have %d families but %d golden digests", len(families), len(goldenDigests))
	}
	for name, g := range families {
		want, ok := goldenDigests[name]
		if !ok {
			t.Fatalf("no golden digest recorded for family %q (got %s)", name, Digest(g, spec))
		}
		if got := Digest(g, spec); got != want {
			t.Errorf("family %q digest drifted:\n  got  %s\n  want %s", name, got, want)
		}
	}
}

// TestDigestPreImageLayout pins the digest pre-image byte-for-byte:
// version byte | EncodeGraph | canonical spec rendering. A digest built by
// hand from those parts must equal Digest — this is what lets a future
// schema change prove it bumped DigestVersion instead of silently
// reshuffling the pre-image under the same version.
func TestDigestPreImageLayout(t *testing.T) {
	g := graph.Harary(3, 12, graph.UnitWeights())
	spec := SolveSpec{Solver: "kecss", K: 3, Seed: 7, VoteDenom: 4}
	pre := []byte{DigestVersion}
	pre = append(pre, EncodeGraph(g)...)
	pre = append(pre, []byte("|solver=kecss|k=3|seed=7|mst=false|vote=4|bits=0|phase=0")...)
	sum := sha256.Sum256(pre)
	if want := hex.EncodeToString(sum[:]); Digest(g, spec) != want {
		t.Fatalf("Digest = %s, want hand-built pre-image digest %s", Digest(g, spec), want)
	}
	if DigestVersion != 0x01 {
		t.Fatalf("DigestVersion = %#x; bumping it requires re-recording goldenDigests", DigestVersion)
	}
}

func TestDigestSensitivity(t *testing.T) {
	g := graph.Harary(3, 12, graph.UnitWeights())
	base := SolveSpec{Solver: "kecss", K: 3, Seed: 7}
	d0 := Digest(g, base)

	variants := []SolveSpec{
		{Solver: "3ecss", K: 3, Seed: 7},
		{Solver: "kecss", K: 4, Seed: 7},
		{Solver: "kecss", K: 3, Seed: 8},
		{Solver: "kecss", K: 3, Seed: 7, SimulateMST: true},
		{Solver: "kecss", K: 3, Seed: 7, VoteDenom: 4},
		{Solver: "kecss", K: 3, Seed: 7, LabelBits: 32},
		{Solver: "kecss", K: 3, Seed: 7, PhaseLen: 2},
	}
	for i, v := range variants {
		if Digest(g, v) == d0 {
			t.Errorf("variant %d (%+v) collided with the base spec", i, v)
		}
	}
	// A different graph with the same spec must differ too.
	g2 := graph.Harary(3, 12, graph.UnitWeights())
	g2.AddEdge(0, 6, 1)
	if Digest(g2, base) == d0 {
		t.Error("adding an edge did not change the digest")
	}
	// And an equal graph built independently must collide (content address).
	g3 := graph.Harary(3, 12, graph.UnitWeights())
	if Digest(g3, base) != d0 {
		t.Error("identical graphs digested differently")
	}
}

func TestDecodeGraphRejectsMalformed(t *testing.T) {
	g := graph.Harary(2, 8, graph.UnitWeights())
	enc := EncodeGraph(g)
	if _, err := DecodeGraph(enc[:len(enc)-1]); err == nil {
		t.Error("truncated encoding accepted")
	}
	if _, err := DecodeGraph(append(append([]byte{}, enc...), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	if _, err := DecodeGraph([]byte("nope")); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestGraphJSONRejectsMalformed(t *testing.T) {
	bad := []GraphJSON{
		{N: -1},
		{N: 4, Edges: [][3]int64{{0, 4, 1}}},  // endpoint out of range
		{N: 4, Edges: [][3]int64{{2, 2, 1}}},  // self-loop
		{N: 4, Edges: [][3]int64{{0, 1, -5}}}, // negative weight
	}
	for i, gj := range bad {
		if _, err := gj.ToGraph(); err == nil {
			t.Errorf("malformed graph %d accepted", i)
		}
	}
}

func TestResultDigestMatchesPinnedFormat(t *testing.T) {
	lines := []ResultLine{
		{Task: 0, Edges: []int{3, 1, 2}, Weight: 10, Rounds: 99},
		{Task: 1, Err: "boom"},
	}
	// Golden value pins the "%d|%v|%d|%d|%v\n" line format (with "<nil>"
	// for success) that cmd/kecss-bench -compare has used since PR 2.
	const want = "fc3854e1d692bb96"
	if got := ResultDigest(lines); got != want {
		t.Errorf("ResultDigest = %s, want %s", got, want)
	}
	if SolveResultDigest([]int{3, 1, 2}, 10, 99) != ResultDigest(lines[:1]) {
		t.Error("SolveResultDigest disagrees with ResultDigest on the same line")
	}
	if ResultDigest(lines) == ResultDigest(lines[:1]) {
		t.Error("dropping a line did not change the digest")
	}
}
