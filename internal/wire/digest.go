package wire

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/graph"
)

// SolveSpec is every solver-visible knob of a solve request, excluding the
// graph itself. Together with the graph it fully determines the result
// bytes: executors, worker counts and arenas are deliberately absent because
// they never change results (the PR-1/PR-2 determinism contract).
//
// The zero value of each optional field means "library default". The digest
// hashes every field including zeros, so "default by omission" and "default
// spelled out as 0" produce the same bytes by construction.
type SolveSpec struct {
	// Solver is the algorithm's short name: "2ecss", "kecss", "3ecss" or
	// "3ecss-weighted" (the cmd/kecss-bench scenario vocabulary).
	Solver string `json:"solver"`
	// K is the target connectivity for "kecss" (ignored otherwise).
	K int `json:"k,omitempty"`
	// Seed is passed to kecss.WithSeed.
	Seed int64 `json:"seed"`
	// SimulateMST selects kecss.WithSimulatedMST.
	SimulateMST bool `json:"simulate_mst,omitempty"`
	// VoteDenom overrides the TAP vote denominator when > 0.
	VoteDenom int64 `json:"vote_denom,omitempty"`
	// LabelBits overrides the cycle-space label width when > 0.
	LabelBits int `json:"label_bits,omitempty"`
	// PhaseLen overrides the Aug_k activation phase length when > 0.
	PhaseLen int `json:"phase_len,omitempty"`
}

// DigestVersion is the format-version byte prefixed to every digest
// pre-image. Digests are durable now (they key result-store entries on
// disk), so the pre-image layout must be able to evolve without silently
// colliding with entries written under the old layout: when the solve-spec
// schema grows a new knob, bump this byte and every old digest becomes
// unreachable — stored entries are cleanly orphaned (and GC-able) instead
// of wrongly served for a spec they do not describe.
const DigestVersion = 0x01

// Digest returns the content key of solving g under spec: the hex SHA-256
// of the version byte, the canonical binary graph encoding, and a
// canonical rendering of every spec field. Identical digests guarantee
// byte-identical results. The pre-image layout is pinned by the golden
// tests in this package.
func Digest(g *graph.Graph, spec SolveSpec) string {
	h := sha256.New()
	h.Write([]byte{DigestVersion})
	h.Write(EncodeGraph(g))
	fmt.Fprintf(h, "|solver=%s|k=%d|seed=%d|mst=%t|vote=%d|bits=%d|phase=%d",
		spec.Solver, spec.K, spec.Seed, spec.SimulateMST,
		spec.VoteDenom, spec.LabelBits, spec.PhaseLen)
	return hex.EncodeToString(h.Sum(nil))
}

// ResultLine is one solve outcome as seen by ResultDigest: the task's index
// in its batch, the solved edge-ID set, the total weight and round count,
// and the error text ("" for success).
type ResultLine struct {
	Task   int
	Edges  []int
	Weight int64
	Rounds int64
	Err    string
}

// ResultDigest hashes a batch's visible outcome. It is the single
// byte-identity check used by cmd/kecss-bench -compare, the server's
// result_digest field, and cmd/kecss-load's end-to-end verification.
//
// The line format (including "<nil>" for success) is pinned by the golden
// tests in this package; changing it invalidates recorded digests.
func ResultDigest(lines []ResultLine) string {
	h := sha256.New()
	for _, l := range lines {
		errText := l.Err
		if errText == "" {
			errText = "<nil>"
		}
		fmt.Fprintf(h, "%d|%v|%d|%d|%v\n", l.Task, l.Edges, l.Weight, l.Rounds, errText)
	}
	return hex.EncodeToString(h.Sum(nil)[:8])
}

// SolveResultDigest is ResultDigest for a single successful solve, the form
// served in SolveResponse.ResultDigest and recomputed by kecss-load against
// direct in-process solves.
func SolveResultDigest(edges []int, weight, rounds int64) string {
	return ResultDigest([]ResultLine{{Task: 0, Edges: edges, Weight: weight, Rounds: rounds}})
}
