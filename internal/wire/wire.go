// Package wire defines the canonical over-the-wire representations of this
// repository's graphs and solve requests: a JSON form for the HTTP API, a
// compact deterministic binary form used for content addressing, and the
// SHA-256 digests derived from them.
//
// Two digests matter operationally:
//
//   - Digest(g, spec) is the content key of a solve: it hashes the canonical
//     binary encoding of the graph together with every solver-visible knob
//     (solver, k, seed, executor-independent options). Two requests with the
//     same Digest are guaranteed to produce byte-identical results, so the
//     serving layer (internal/server) uses it as its cache key.
//   - ResultDigest hashes a sweep's visible outcome (edge sets, weights,
//     rounds, errors). It is the byte-identity check shared by
//     cmd/kecss-bench's -compare mode, internal/server's result_digest
//     response field, and cmd/kecss-load's end-to-end verification — all
//     three use this one function, so they can never drift.
//
// The binary graph encoding is canonical in the strict sense: it is a pure
// function of the graph (vertex count, then edges in ID order as
// uvarint-packed (u, v, w) triples). Edge insertion order is part of a
// graph's identity here because edge IDs are the repository-wide canonical
// edge identity (results are edge-ID sets), so two graphs with the same edge
// set but different insertion orders are deliberately distinct.
package wire

import (
	"encoding/binary"
	"fmt"

	"repro/internal/graph"
)

// binaryMagic versions the canonical binary graph encoding. Bump it if the
// encoding ever changes shape, so stale digests cannot collide with new ones.
const binaryMagic = "kwf1"

// AppendGraph appends the canonical binary encoding of g to dst and returns
// the extended slice: the magic, then uvarint(n), uvarint(m), then each edge
// in ID order as uvarint(u), uvarint(v), uvarint(w).
func AppendGraph(dst []byte, g *graph.Graph) []byte {
	dst = append(dst, binaryMagic...)
	var buf [binary.MaxVarintLen64]byte
	put := func(x uint64) {
		n := binary.PutUvarint(buf[:], x)
		dst = append(dst, buf[:n]...)
	}
	put(uint64(g.N()))
	put(uint64(g.M()))
	for _, e := range g.Edges() {
		put(uint64(e.U))
		put(uint64(e.V))
		put(uint64(e.W))
	}
	return dst
}

// EncodeGraph returns the canonical binary encoding of g.
func EncodeGraph(g *graph.Graph) []byte {
	// 3 varints per edge, usually 1-2 bytes each on the graphs we serve.
	return AppendGraph(make([]byte, 0, len(binaryMagic)+10+6*g.M()), g)
}

// DecodeGraph parses a canonical binary encoding back into a graph,
// validating the same invariants as GraphJSON.ToGraph.
func DecodeGraph(b []byte) (*graph.Graph, error) {
	if len(b) < len(binaryMagic) || string(b[:len(binaryMagic)]) != binaryMagic {
		return nil, fmt.Errorf("wire: bad magic, not a canonical graph encoding")
	}
	b = b[len(binaryMagic):]
	next := func(what string) (uint64, error) {
		x, n := binary.Uvarint(b)
		if n <= 0 {
			return 0, fmt.Errorf("wire: truncated encoding reading %s", what)
		}
		b = b[n:]
		return x, nil
	}
	n, err := next("vertex count")
	if err != nil {
		return nil, err
	}
	m, err := next("edge count")
	if err != nil {
		return nil, err
	}
	const maxN = 1 << 30
	if n > maxN || m > maxN {
		return nil, fmt.Errorf("wire: implausible sizes n=%d m=%d", n, m)
	}
	g := graph.New(int(n))
	for i := uint64(0); i < m; i++ {
		u, err := next("edge endpoint")
		if err != nil {
			return nil, err
		}
		v, err := next("edge endpoint")
		if err != nil {
			return nil, err
		}
		w, err := next("edge weight")
		if err != nil {
			return nil, err
		}
		if err := checkEdge(int(n), int64(u), int64(v), int64(w)); err != nil {
			return nil, fmt.Errorf("wire: edge %d: %w", i, err)
		}
		g.AddEdge(int(u), int(v), int64(w))
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after %d edges", len(b), m)
	}
	return g, nil
}

// GraphJSON is the JSON wire form of a graph: {"n": N, "edges": [[u,v,w],...]}.
// Edge order in the array is the edge-ID order and is part of the graph's
// identity (results are edge-ID sets).
type GraphJSON struct {
	N     int        `json:"n"`
	Edges [][3]int64 `json:"edges"`
}

// GraphToJSON converts a graph to its JSON wire form.
func GraphToJSON(g *graph.Graph) *GraphJSON {
	gj := &GraphJSON{N: g.N(), Edges: make([][3]int64, g.M())}
	for i, e := range g.Edges() {
		gj.Edges[i] = [3]int64{int64(e.U), int64(e.V), e.W}
	}
	return gj
}

// ToGraph converts the JSON wire form back into a graph, validating every
// edge (endpoints in range, no self-loops, non-negative weights) so that
// malformed network input returns an error instead of panicking.
func (gj *GraphJSON) ToGraph() (*graph.Graph, error) {
	if gj.N < 0 {
		return nil, fmt.Errorf("wire: negative vertex count %d", gj.N)
	}
	g := graph.New(gj.N)
	for i, e := range gj.Edges {
		u, v, w := e[0], e[1], e[2]
		if err := checkEdge(gj.N, u, v, w); err != nil {
			return nil, fmt.Errorf("wire: edge %d: %w", i, err)
		}
		g.AddEdge(int(u), int(v), w)
	}
	return g, nil
}

func checkEdge(n int, u, v, w int64) error {
	if u < 0 || u >= int64(n) || v < 0 || v >= int64(n) {
		return fmt.Errorf("endpoint {%d,%d} out of range [0,%d)", u, v, n)
	}
	if u == v {
		return fmt.Errorf("self-loop at vertex %d", u)
	}
	if w < 0 {
		return fmt.Errorf("negative weight %d", w)
	}
	return nil
}
