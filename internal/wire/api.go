package wire

import "fmt"

// SolveRequest is the JSON body of POST /v1/solve and POST /v1/jobs: the
// graph in wire form plus the embedded SolveSpec fields (solver, k, seed and
// the option overrides) at the top level.
type SolveRequest struct {
	Graph *GraphJSON `json:"graph"`
	SolveSpec
	// TimeoutMillis, when > 0, is how long the caller is willing to wait
	// for the result. The server propagates it into the job as a deadline:
	// a sync waiter past it gets 504 (the solve itself continues and lands
	// in the cache), and a job claimed after it fails fast instead of
	// solving. Deliberately not part of SolveSpec — it must not change the
	// content digest.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
}

// Validate checks the request shape (graph present, solver named, k sane)
// without building the graph. Solver-specific connectivity requirements are
// checked by the solve itself.
func (r *SolveRequest) Validate() error {
	if r.Graph == nil {
		return fmt.Errorf("wire: request has no graph")
	}
	switch r.Solver {
	case "2ecss", "3ecss", "3ecss-weighted":
	case "kecss":
		if r.K < 1 {
			return fmt.Errorf("wire: solver %q needs k >= 1, got %d", r.Solver, r.K)
		}
	case "":
		return fmt.Errorf("wire: request names no solver")
	default:
		return fmt.Errorf("wire: unknown solver %q", r.Solver)
	}
	if r.TimeoutMillis < 0 {
		return fmt.Errorf("wire: timeout_ms must be >= 0, got %d", r.TimeoutMillis)
	}
	return nil
}

// SolveResponse is the JSON body returned for a solved request, and the
// value cached by the server (cached copies are re-served with Cached set).
type SolveResponse struct {
	// Digest is the request's content key (wire.Digest of graph + spec).
	Digest string `json:"digest"`
	// Cached reports whether this response was served from the result cache
	// rather than freshly solved.
	Cached bool `json:"cached"`
	// Edges, Weight and Rounds mirror the solver result.
	Edges  []int `json:"edges"`
	Weight int64 `json:"weight"`
	Rounds int64 `json:"rounds"`
	// ResultDigest is wire.SolveResultDigest(Edges, Weight, Rounds); clients
	// compare it against direct in-process solves.
	ResultDigest string `json:"result_digest"`
	// SolveMillis is the wall-clock of the underlying solve (the original
	// cold solve for cached responses).
	SolveMillis float64 `json:"solve_ms"`
}

// Job states reported by GET /v1/jobs/{id}.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// JobResponse is the JSON body of the async-job endpoints.
type JobResponse struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Attempts is how many times the job has been delivered to a worker
	// (0 while queued; > 1 means leases expired and the job was retried).
	Attempts int `json:"attempts,omitempty"`
	// Error is the failure message when State is "failed".
	Error string `json:"error,omitempty"`
	// Result is present when State is "done".
	Result *SolveResponse `json:"result,omitempty"`
}

// DeadLetter is one entry of GET /v1/deadletters: a job that exhausted its
// retry budget.
type DeadLetter struct {
	JobID    string `json:"job_id"`
	Digest   string `json:"digest"`
	Attempts int    `json:"attempts"`
	Reason   string `json:"reason"`
	Unix     int64  `json:"unix"`
}

// DeadLettersResponse is the JSON body of GET /v1/deadletters.
type DeadLettersResponse struct {
	DeadLetters []DeadLetter `json:"dead_letters"`
}

// ErrorResponse is the JSON body of every non-2xx API response.
type ErrorResponse struct {
	Error string `json:"error"`
}
