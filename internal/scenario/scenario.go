// Package scenario defines the JSON scenario-set schema shared by
// cmd/kecss-bench (pooled sweeps) and cmd/kecss-load (HTTP load replay):
// named (topology, solver) pairs swept over independent trials, built
// deterministically from the scenario's seed.
package scenario

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"

	kecss "repro"
	"repro/internal/graph"
	"repro/internal/wire"
)

// File is a JSON scenario set (see scenarios/).
type File struct {
	// Name labels the set in reports.
	Name string `json:"name"`
	// Scenarios are run as one pooled sweep (all trials of all scenarios in
	// a single task batch) by kecss-bench, or replayed as the request mix by
	// kecss-load.
	Scenarios []Scenario `json:"scenarios"`
}

// Scenario describes one (topology, solver) pair swept over Trials
// independent runs. Exactly one graph is built per scenario, and trial
// randomness is derived deterministically — but the two consumers derive it
// differently: Tasks gives every trial the scenario seed and lets the pool
// XOR in the trial's index in the whole batch, while Requests bakes
// scenario-seed XOR trial-index into each request explicitly. Each is
// reproducible run-to-run; the same named trial does not produce the same
// edges across the two paths.
type Scenario struct {
	Name   string `json:"name"`
	Family string `json:"family"` // random | grid | ring | clique-chain | chung-lu | geometric | fattree | harary
	N      int    `json:"n"`      // vertices (approximate for grid/fattree)
	K      int    `json:"k"`      // generator connectivity floor and kecss solver target (default 2)
	Extra  int    `json:"extra"`  // random family: extra edges (default 2n)

	Beta   float64 `json:"beta"`    // chung-lu exponent (default 2.5)
	AvgDeg float64 `json:"avg_deg"` // chung-lu mean degree (default 6)
	Radius float64 `json:"radius"`  // geometric radius (default 0.2)
	Pods   int     `json:"pods"`    // fattree arity k (default 4; N ignored)

	MaxW int64 `json:"max_w"` // edge weight cap; 0 = unit weights

	Solver      string `json:"solver"` // 2ecss | kecss | 3ecss | 3ecss-weighted
	SimulateMST bool   `json:"simulate_mst"`
	Trials      int    `json:"trials"` // default 1
	Seed        int64  `json:"seed"`   // base seed passed to WithSeed (omitted = 0)
}

// Load reads and parses a scenario file.
func Load(path string) (*File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Scenarios) == 0 {
		return nil, fmt.Errorf("%s: no scenarios", path)
	}
	return &f, nil
}

// TrialCount returns Trials with its default applied.
func (sc *Scenario) TrialCount() int {
	if sc.Trials == 0 {
		return 1
	}
	return sc.Trials
}

// TargetK returns K with its default applied.
func (sc *Scenario) TargetK() int {
	if sc.K == 0 {
		return 2
	}
	return sc.K
}

// BuildGraph deterministically constructs the scenario's topology.
func (sc *Scenario) BuildGraph() (*graph.Graph, error) {
	rng := rand.New(rand.NewSource(sc.Seed + 1))
	wf := graph.UnitWeights()
	if sc.MaxW > 0 {
		wf = graph.RandomWeights(rng, sc.MaxW)
	}
	k := sc.TargetK()
	switch sc.Family {
	case "random", "":
		extra := sc.Extra
		if extra == 0 {
			extra = 2 * sc.N
		}
		return graph.RandomKConnected(sc.N, k, extra, rng, wf), nil
	case "grid":
		cols := sc.N / 4
		if cols < 2 {
			cols = 2
		}
		return graph.Grid(4, cols, wf), nil
	case "ring":
		return graph.Cycle(sc.N, wf), nil
	case "clique-chain":
		size := 6
		length := sc.N / size
		if length < 1 {
			length = 1
		}
		return graph.CliqueChain(length, size, k, wf), nil
	case "chung-lu":
		beta := sc.Beta
		if beta == 0 {
			beta = 2.5
		}
		avg := sc.AvgDeg
		if avg == 0 {
			avg = 6
		}
		return graph.ChungLu(sc.N, beta, avg, k, rng, wf), nil
	case "geometric":
		r := sc.Radius
		if r == 0 {
			r = 0.2
		}
		return graph.RandomGeometric(sc.N, r, k, rng), nil
	case "fattree":
		pods := sc.Pods
		if pods == 0 {
			pods = 4
		}
		return graph.FatTree(pods, wf), nil
	case "harary":
		return graph.Harary(k, sc.N, wf), nil
	}
	return nil, fmt.Errorf("unknown family %q", sc.Family)
}

// SolverKind maps the scenario's solver name to the kecss constant.
func (sc *Scenario) SolverKind() (kecss.Solver, error) {
	return kecss.ParseSolver(sc.Solver)
}

// Tasks expands the scenario set into one flat kecss.Task list (the
// kecss-bench sweep batch), returning the per-scenario trial count for
// reports.
func (f *File) Tasks() ([]kecss.Task, []int, error) {
	var tasks []kecss.Task
	counts := make([]int, len(f.Scenarios))
	for i := range f.Scenarios {
		sc := &f.Scenarios[i]
		g, err := sc.BuildGraph()
		if err != nil {
			return nil, nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		solver, err := sc.SolverKind()
		if err != nil {
			return nil, nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		opts := []kecss.Option{kecss.WithSeed(sc.Seed)}
		if sc.SimulateMST {
			opts = append(opts, kecss.WithSimulatedMST())
		}
		trials := sc.TrialCount()
		counts[i] = trials
		for trial := 0; trial < trials; trial++ {
			tasks = append(tasks, kecss.Task{Graph: g, Solver: solver, K: sc.TargetK(), Opts: opts})
		}
	}
	return tasks, counts, nil
}

// Requests expands the scenario set into the wire-form request mix replayed
// by kecss-load: one request per trial, with the trial's seed baked in
// explicitly as scenario seed XOR trial index, so distinct trials are
// distinct cache entries and each request is self-contained (its served
// result depends only on the request bytes, never on batch position).
func (f *File) Requests() ([]*wire.SolveRequest, error) {
	var reqs []*wire.SolveRequest
	for i := range f.Scenarios {
		sc := &f.Scenarios[i]
		g, err := sc.BuildGraph()
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		if _, err := sc.SolverKind(); err != nil {
			return nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		solver := sc.Solver
		if solver == "" {
			solver = "2ecss"
		}
		gj := wire.GraphToJSON(g)
		for trial := 0; trial < sc.TrialCount(); trial++ {
			reqs = append(reqs, &wire.SolveRequest{
				Graph: gj,
				SolveSpec: wire.SolveSpec{
					Solver:      solver,
					K:           sc.TargetK(),
					Seed:        sc.Seed ^ int64(trial),
					SimulateMST: sc.SimulateMST,
				},
			})
		}
	}
	return reqs, nil
}
