package congest

import (
	"testing"

	"repro/internal/graph"
)

// floodProgram floods a token from vertex 0; every node records the round in
// which it first heard the token. The token reaches distance-d vertices in
// round d+1 of the simulation (Init sends arrive at round 1).
type floodProgram struct {
	heardAt int
	sent    bool
}

func (f *floodProgram) Init(ctx *Context) {
	f.heardAt = -1
	if ctx.Node() == 0 {
		f.heardAt = 0
		f.sent = true
		ctx.Broadcast(Payload{Kind: 1})
	}
}

func (f *floodProgram) Round(ctx *Context, inbox []Message) bool {
	if f.heardAt == -1 && len(inbox) > 0 {
		f.heardAt = 0 // will be set by the test via metrics; mark as heard
	}
	if f.heardAt != -1 && !f.sent {
		f.sent = true
		ctx.Broadcast(Payload{Kind: 1})
	}
	return f.heardAt != -1
}

func TestFloodTerminatesInDiameterRounds(t *testing.T) {
	g := graph.Cycle(10, graph.UnitWeights())
	for _, exec := range []Executor{SequentialExecutor{}, ParallelExecutor{}, ShardedExecutor{}} {
		net := NewNetwork(g, func(int) Program { return &floodProgram{} }, WithExecutor(exec))
		m, err := net.Run(100)
		if err != nil {
			t.Fatalf("%T: %v", exec, err)
		}
		d := g.Diameter()
		// Flood needs exactly D rounds to inform everyone plus <=1 quiesce round.
		if m.Rounds < d || m.Rounds > d+2 {
			t.Errorf("%T: rounds = %d, want about D=%d", exec, m.Rounds, d)
		}
		for v := 0; v < g.N(); v++ {
			if net.Program(v).(*floodProgram).heardAt == -1 {
				t.Errorf("%T: vertex %d never heard the flood", exec, v)
			}
		}
	}
}

func TestRunErrorsWhenBudgetExhausted(t *testing.T) {
	g := graph.Cycle(4, graph.UnitWeights())
	// A program that never finishes.
	net := NewNetwork(g, func(int) Program { return neverDone{} })
	if _, err := net.Run(5); err == nil {
		t.Fatal("expected round-budget error")
	}
}

type neverDone struct{}

func (neverDone) Init(*Context)                  {}
func (neverDone) Round(*Context, []Message) bool { return false }

func TestDoubleSendOnEdgePanics(t *testing.T) {
	g := graph.Cycle(3, graph.UnitWeights())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double send")
		}
	}()
	NewNetwork(g, func(int) Program { return doubleSender{} })
}

type doubleSender struct{}

func (doubleSender) Init(ctx *Context) {
	e := ctx.Neighbors()[0].Edge
	ctx.Send(e, Payload{})
	ctx.Send(e, Payload{})
}
func (doubleSender) Round(*Context, []Message) bool { return true }

func TestSendOnNonIncidentEdgePanics(t *testing.T) {
	g := graph.Cycle(4, graph.UnitWeights())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-incident edge")
		}
	}()
	NewNetwork(g, func(v int) Program { return badEdgeSender{} })
}

type badEdgeSender struct{}

func (badEdgeSender) Init(ctx *Context) {
	// Edge 2 (between vertices 2 and 3) is not incident to vertices 0.
	if ctx.Node() == 0 {
		ctx.Send(2, Payload{})
	}
}
func (badEdgeSender) Round(*Context, []Message) bool { return true }

func TestMessageAccounting(t *testing.T) {
	g := graph.Cycle(5, graph.UnitWeights())
	net := NewNetwork(g, func(int) Program { return oneShot{} })
	m, err := net.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	// Every node broadcasts once in Init: 2 messages per node on a cycle.
	if m.Messages != 10 {
		t.Errorf("messages = %d, want 10", m.Messages)
	}
	if m.Bits != 10*int64(Payload{}.Bits()) {
		t.Errorf("bits = %d", m.Bits)
	}
}

type oneShot struct{}

func (oneShot) Init(ctx *Context)              { ctx.Broadcast(Payload{Kind: 7}) }
func (oneShot) Round(*Context, []Message) bool { return true }

func TestSendToNeighbor(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 1)
	var got []Message
	net := NewNetwork(g, func(v int) Program {
		return &captor{target: 1 - v, out: &got, me: v}
	})
	if _, err := net.Run(10); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("captured %d messages, want 2", len(got))
	}
}

type captor struct {
	target int
	me     int
	out    *[]Message
	sent   bool
}

func (c *captor) Init(ctx *Context) {
	ctx.SendTo(c.target, Payload{Kind: 3, A: int64(c.me)})
	c.sent = true
}

func (c *captor) Round(_ *Context, inbox []Message) bool {
	*c.out = append(*c.out, inbox...)
	return true
}

// TestSendToParallelEdges checks the documented SendTo tie-break on a
// multigraph: repeated sends to the same neighbour in one round use unused
// parallel edges in ascending edge-ID order.
func TestSendToParallelEdges(t *testing.T) {
	g := graph.New(2)
	e0 := g.AddEdge(0, 1, 1)
	e1 := g.AddEdge(0, 1, 1)
	e2 := g.AddEdge(0, 1, 1)
	var got []Message
	net := NewNetwork(g, func(v int) Program {
		if v == 0 {
			return &tripleSender{}
		}
		return &captor{target: 0, out: &got, me: v}
	})
	if _, err := net.Run(10); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("captured %d messages, want 3", len(got))
	}
	for i, wantEdge := range []int{e0, e1, e2} {
		if got[i].Edge != wantEdge {
			t.Errorf("message %d travelled edge %d, want %d (ascending edge IDs)", i, got[i].Edge, wantEdge)
		}
	}
}

type tripleSender struct{ sent bool }

func (s *tripleSender) Init(ctx *Context) {
	for i := int64(0); i < 3; i++ {
		ctx.SendTo(1, Payload{Kind: 4, A: i})
	}
	s.sent = true
}
func (s *tripleSender) Round(*Context, []Message) bool { return true }

// TestArenaReuse runs simulations of different shapes and sizes through one
// arena and checks each against an arena-free reference run.
func TestArenaReuse(t *testing.T) {
	arena := NewArena()
	graphs := []*graph.Graph{
		graph.Cycle(10, graph.UnitWeights()),
		graph.Grid(4, 12, graph.UnitWeights()),
		graph.Cycle(6, graph.UnitWeights()),
	}
	for rep := 0; rep < 3; rep++ {
		for gi, g := range graphs {
			fresh := NewNetwork(g, func(int) Program { return &floodProgram{} })
			wantM, err := fresh.Run(100)
			if err != nil {
				t.Fatal(err)
			}
			reused := NewNetwork(g, func(int) Program { return &floodProgram{} }, WithArena(arena))
			gotM, err := reused.Run(100)
			if err != nil {
				t.Fatalf("rep %d graph %d: %v", rep, gi, err)
			}
			if gotM != wantM {
				t.Errorf("rep %d graph %d: arena metrics %+v, want %+v", rep, gi, gotM, wantM)
			}
			for v := 0; v < g.N(); v++ {
				if reused.Program(v).(*floodProgram).heardAt != fresh.Program(v).(*floodProgram).heardAt {
					t.Errorf("rep %d graph %d: vertex %d state diverges under arena reuse", rep, gi, v)
				}
			}
		}
	}
}

// TestArenaStampResetClearsFullBacking forces the stamp-headroom reset while
// the arena's current sentStamp view is smaller than its backing array, then
// reuses the full backing: stale stamps beyond the shrunken view must not
// survive the reset and read as "port already used".
func TestArenaStampResetClearsFullBacking(t *testing.T) {
	arena := NewArena()
	big := graph.Cycle(64, graph.UnitWeights())
	small := graph.Cycle(8, graph.UnitWeights())
	run := func(a *NetworkArena, g *graph.Graph, p func() Program) Metrics {
		net := NewNetwork(g, func(int) Program { return p() }, WithArena(a))
		m, err := net.Run(200)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	countdown := func() Program { return &countdownBroadcaster{left: 50} }
	// A node that stays silent until round 50 first touches its ports at
	// exactly the stamp value the first run left behind (its last broadcast
	// round) — the one access pattern that can meet a stale stamp.
	delayed := func() Program { return &delayedBroadcaster{wait: 50} }

	run(arena, big, countdown) // leaves stamp 51 on all 128 ports
	run(arena, small, countdown)
	arena.stamp = 1 << 31 // force the headroom reset on the next acquire
	got := run(arena, big, delayed)
	want := run(NewArena(), big, delayed)
	if got != want {
		t.Errorf("big graph after stamp reset: metrics %+v, want %+v", got, want)
	}
}

// countdownBroadcaster broadcasts on every port for a fixed number of rounds.
type countdownBroadcaster struct{ left int }

func (c *countdownBroadcaster) Init(*Context) {}
func (c *countdownBroadcaster) Round(ctx *Context, _ []Message) bool {
	if c.left > 0 {
		c.left--
		ctx.Broadcast(Payload{Kind: 9})
	}
	return c.left == 0
}

// delayedBroadcaster is silent until its wait elapses, then broadcasts once.
type delayedBroadcaster struct{ wait int }

func (d *delayedBroadcaster) Init(*Context) {}
func (d *delayedBroadcaster) Round(ctx *Context, _ []Message) bool {
	d.wait--
	if d.wait == 0 {
		ctx.Broadcast(Payload{Kind: 9})
	}
	return d.wait <= 0
}

// TestArenaStepAfterRunPanics pins the ownership rule: once Run returns an
// arena-backed network's buffers, stepping it again must fail loudly rather
// than corrupt a successor network.
func TestArenaStepAfterRunPanics(t *testing.T) {
	g := graph.Cycle(4, graph.UnitWeights())
	net := NewNetwork(g, func(int) Program { return oneShot{} }, WithArena(NewArena()))
	if _, err := net.Run(10); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic stepping a released network")
		}
	}()
	net.Step()
}

// TestArenaNestedFallsBack checks that a second network built from a busy
// arena silently gets fresh buffers instead of corrupting the first.
func TestArenaNestedFallsBack(t *testing.T) {
	g := graph.Cycle(8, graph.UnitWeights())
	arena := NewArena()
	outer := NewNetwork(g, func(int) Program { return &floodProgram{} }, WithArena(arena))
	inner := NewNetwork(g, func(int) Program { return &floodProgram{} }, WithArena(arena))
	im, err := inner.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	om, err := outer.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if im != om {
		t.Errorf("inner metrics %+v differ from outer %+v", im, om)
	}
}
