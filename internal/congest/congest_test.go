package congest

import (
	"testing"

	"repro/internal/graph"
)

// floodProgram floods a token from vertex 0; every node records the round in
// which it first heard the token. The token reaches distance-d vertices in
// round d+1 of the simulation (Init sends arrive at round 1).
type floodProgram struct {
	heardAt int
	sent    bool
}

func (f *floodProgram) Init(ctx *Context) {
	f.heardAt = -1
	if ctx.Node() == 0 {
		f.heardAt = 0
		f.sent = true
		ctx.Broadcast(Payload{Kind: 1})
	}
}

func (f *floodProgram) Round(ctx *Context, inbox []Message) bool {
	if f.heardAt == -1 && len(inbox) > 0 {
		f.heardAt = 0 // will be set by the test via metrics; mark as heard
	}
	if f.heardAt != -1 && !f.sent {
		f.sent = true
		ctx.Broadcast(Payload{Kind: 1})
	}
	return f.heardAt != -1
}

func TestFloodTerminatesInDiameterRounds(t *testing.T) {
	g := graph.Cycle(10, graph.UnitWeights())
	for _, exec := range []Executor{SequentialExecutor{}, ParallelExecutor{}} {
		net := NewNetwork(g, func(int) Program { return &floodProgram{} }, WithExecutor(exec))
		m, err := net.Run(100)
		if err != nil {
			t.Fatalf("%T: %v", exec, err)
		}
		d := g.Diameter()
		// Flood needs exactly D rounds to inform everyone plus <=1 quiesce round.
		if m.Rounds < d || m.Rounds > d+2 {
			t.Errorf("%T: rounds = %d, want about D=%d", exec, m.Rounds, d)
		}
		for v := 0; v < g.N(); v++ {
			if net.Program(v).(*floodProgram).heardAt == -1 {
				t.Errorf("%T: vertex %d never heard the flood", exec, v)
			}
		}
	}
}

func TestRunErrorsWhenBudgetExhausted(t *testing.T) {
	g := graph.Cycle(4, graph.UnitWeights())
	// A program that never finishes.
	net := NewNetwork(g, func(int) Program { return neverDone{} })
	if _, err := net.Run(5); err == nil {
		t.Fatal("expected round-budget error")
	}
}

type neverDone struct{}

func (neverDone) Init(*Context)                  {}
func (neverDone) Round(*Context, []Message) bool { return false }

func TestDoubleSendOnEdgePanics(t *testing.T) {
	g := graph.Cycle(3, graph.UnitWeights())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double send")
		}
	}()
	NewNetwork(g, func(int) Program { return doubleSender{} })
}

type doubleSender struct{}

func (doubleSender) Init(ctx *Context) {
	e := ctx.Neighbors()[0].Edge
	ctx.Send(e, Payload{})
	ctx.Send(e, Payload{})
}
func (doubleSender) Round(*Context, []Message) bool { return true }

func TestSendOnNonIncidentEdgePanics(t *testing.T) {
	g := graph.Cycle(4, graph.UnitWeights())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-incident edge")
		}
	}()
	NewNetwork(g, func(v int) Program { return badEdgeSender{} })
}

type badEdgeSender struct{}

func (badEdgeSender) Init(ctx *Context) {
	// Edge 2 (between vertices 2 and 3) is not incident to vertices 0.
	if ctx.Node() == 0 {
		ctx.Send(2, Payload{})
	}
}
func (badEdgeSender) Round(*Context, []Message) bool { return true }

func TestMessageAccounting(t *testing.T) {
	g := graph.Cycle(5, graph.UnitWeights())
	net := NewNetwork(g, func(int) Program { return oneShot{} })
	m, err := net.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	// Every node broadcasts once in Init: 2 messages per node on a cycle.
	if m.Messages != 10 {
		t.Errorf("messages = %d, want 10", m.Messages)
	}
	if m.Bits != 10*int64(Payload{}.Bits()) {
		t.Errorf("bits = %d", m.Bits)
	}
}

type oneShot struct{}

func (oneShot) Init(ctx *Context)              { ctx.Broadcast(Payload{Kind: 7}) }
func (oneShot) Round(*Context, []Message) bool { return true }

func TestSendToNeighbor(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 1)
	var got []Message
	net := NewNetwork(g, func(v int) Program {
		return &captor{target: 1 - v, out: &got, me: v}
	})
	if _, err := net.Run(10); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("captured %d messages, want 2", len(got))
	}
}

type captor struct {
	target int
	me     int
	out    *[]Message
	sent   bool
}

func (c *captor) Init(ctx *Context) {
	ctx.SendTo(c.target, Payload{Kind: 3, A: int64(c.me)})
	c.sent = true
}

func (c *captor) Round(_ *Context, inbox []Message) bool {
	*c.out = append(*c.out, inbox...)
	return true
}
