package congest

import (
	"fmt"

	"repro/internal/graph"
)

// Metrics accumulates the cost of a simulation: the quantities the paper's
// theorems bound.
type Metrics struct {
	Rounds   int   // synchronous rounds executed
	Messages int64 // messages delivered
	Bits     int64 // total message bits (congestion volume)
}

// Network is one instantiation of the CONGEST model over a communication
// graph, with one Program per vertex. See the package documentation for the
// buffer layout. A Network is the borrower of its arena: it marks the arena
// busy in attachBuffers and returns the buffers in Release, so its lifetime
// is exactly one loan.
//
//kecss:arena-owner
type Network struct {
	g        *graph.Graph
	exec     Executor
	programs []Program
	ctxs     []Context
	done     []bool
	inboxes  [][]Message // per-node views into inboxArena, reset each round

	// Flat buffers, carved per node by portStart. All are either freshly
	// allocated or borrowed from a NetworkArena.
	slots      []Message  // 2m message slots, indexed 2*edge + direction
	inboxArena []Message  // 2m inbox backing, partitioned by receiver degree
	neighbors  []Neighbor // 2m, partitioned by node
	sentStamp  []uint32   // 2m per-port round stamps
	outBack    []int32    // 2m out-slot backing, partitioned by node
	slotOf     []int32    // 2m per-port slot IDs
	nextSame   []int32    // 2m per-port same-neighbour chain
	portStart  []int32    // n+1 prefix sums of degree
	portAtU    []int32    // m: port of edge e in e.U's adjacency
	portAtV    []int32    // m: port of edge e in e.V's adjacency

	// nbrPort maps nbrKey(v, u) to the lowest port of v leading to u;
	// further parallel ports are chained through nextSame. One map for the
	// whole network keeps construction at O(1) allocations.
	nbrPort map[int64]int32

	roundFn  func(v int) // per-round executor callback, built once
	stamp    uint32      // current round stamp (strictly increasing)
	metrics  Metrics
	arena    *NetworkArena // non-nil if buffers are borrowed
	released bool          // arena buffers returned; stepping is an error
}

// config collects option state before buffers are allocated; it exists only
// inside NewNetwork, before the arena loan is even taken.
//
//kecss:arena-owner
type config struct {
	exec  Executor
	arena *NetworkArena
}

// Option configures a Network.
type Option func(*config)

// WithExecutor selects the round executor. Default: SequentialExecutor.
func WithExecutor(e Executor) Option {
	return func(c *config) { c.exec = e }
}

// WithArena makes the network borrow its buffers from a, avoiding
// re-allocation across repeated NewNetwork calls. See NetworkArena for the
// ownership rules.
func WithArena(a *NetworkArena) Option {
	return func(c *config) { c.arena = a }
}

// NewNetwork builds a network over g where vertex v runs factory(v).
// Init is called for every node (messages sent there arrive in round 1).
func NewNetwork(g *graph.Graph, factory Factory, opts ...Option) *Network {
	cfg := config{exec: SequentialExecutor{}}
	for _, opt := range opts {
		opt(&cfg)
	}
	n := &Network{
		g:    g,
		exec: cfg.exec,
		// programs is the one per-network allocation kept off the arena:
		// callers read final program state via Program(v) after Run has
		// returned the buffers, so it must not be recycled under them.
		programs: make([]Program, g.N()),
	}
	n.attachBuffers(cfg.arena)
	n.buildTopology()
	n.roundFn = func(v int) {
		n.done[v] = n.programs[v].Round(&n.ctxs[v], n.inboxes[v])
	}
	for v := 0; v < g.N(); v++ {
		n.programs[v] = factory(v)
	}
	// Init phase: all nodes, sequentially (Init does setup only).
	for v := 0; v < g.N(); v++ {
		n.programs[v].Init(&n.ctxs[v])
	}
	n.deliver()
	return n
}

// attachBuffers points the network's flat buffers at freshly allocated or
// arena-recycled memory and fixes the starting round stamp.
func (n *Network) attachBuffers(a *NetworkArena) {
	nv, m := n.g.N(), n.g.M()
	p2 := 2 * m
	if a != nil && !a.busy {
		a.busy = true
		n.arena = a
		n.stamp = a.acquire(nv, p2, m)
		n.slots, n.inboxArena = a.slots, a.inboxArena
		n.neighbors, n.sentStamp = a.neighbors, a.sentStamp
		n.outBack, n.slotOf, n.nextSame = a.outBack, a.slotOf, a.nextSame
		n.portStart, n.portAtU, n.portAtV = a.portStart, a.portAtU, a.portAtV
		n.ctxs, n.done, n.inboxes = a.ctxs, a.done, a.inboxes
		if a.nbrPort == nil {
			a.nbrPort = make(map[int64]int32, p2)
		} else {
			clear(a.nbrPort)
		}
		n.nbrPort = a.nbrPort
		return
	}
	n.stamp = 1
	n.slots = make([]Message, p2)
	n.inboxArena = make([]Message, p2)
	n.neighbors = make([]Neighbor, p2)
	n.sentStamp = make([]uint32, p2)
	i32 := make([]int32, 3*p2+2*m)
	n.outBack, n.slotOf, n.nextSame = i32[:p2:p2], i32[p2:2*p2:2*p2], i32[2*p2:3*p2:3*p2]
	n.portAtU, n.portAtV = i32[3*p2:3*p2+m:3*p2+m], i32[3*p2+m:]
	n.portStart = make([]int32, nv+1)
	n.ctxs = make([]Context, nv)
	n.done = make([]bool, nv)
	n.inboxes = make([][]Message, nv)
	n.nbrPort = make(map[int64]int32, p2)
}

// buildTopology fills the port index and per-node context views from the
// graph: one pass over all adjacency lists, O(n + m).
func (n *Network) buildTopology() {
	g := n.g
	nv := g.N()
	n.portStart[0] = 0
	for v := 0; v < nv; v++ {
		n.portStart[v+1] = n.portStart[v] + int32(g.Degree(v))
	}
	for v := 0; v < nv; v++ {
		lo, hi := n.portStart[v], n.portStart[v+1]
		nbrs := n.neighbors[lo:hi:hi]
		slotOf := n.slotOf[lo:hi:hi]
		for i, a := range g.Adj(v) {
			e := g.Edge(a.Edge)
			nbrs[i] = Neighbor{ID: a.To, Edge: a.Edge, Weight: e.W}
			slot := int32(2 * a.Edge)
			if v == e.U {
				n.portAtU[a.Edge] = int32(i)
			} else {
				n.portAtV[a.Edge] = int32(i)
				slot++
			}
			slotOf[i] = slot
		}
		// Per-neighbour port chains: nbrPort[nbrKey(v, id)] is the lowest
		// port of v leading to id, nextSame links ports of the same
		// neighbour in ascending order (adjacency order is edge-insertion
		// order, so ascending port means ascending edge ID — the SendTo
		// tie-break).
		nextSame := n.nextSame[lo:hi:hi]
		for i := len(nbrs) - 1; i >= 0; i-- {
			key := nbrKey(v, nbrs[i].ID)
			if j, ok := n.nbrPort[key]; ok {
				nextSame[i] = j
			} else {
				nextSame[i] = -1
			}
			n.nbrPort[key] = int32(i)
		}
		n.ctxs[v] = Context{
			node:      v,
			n:         nv,
			net:       n,
			neighbors: nbrs,
			sentStamp: n.sentStamp[lo:hi:hi],
			outSlots:  n.outBack[lo:lo:hi],
			slotOf:    slotOf,
			nextSame:  nextSame,
		}
		n.inboxes[v] = n.inboxArena[lo:lo:hi]
		n.done[v] = false
	}
}

// deliver moves every slot written this round into its destination inbox, in
// sender-ID then send order (the order a sequential scan of per-node out
// queues would produce), and advances the round stamp, which clears all
// per-port send state in O(1).
//
//kecss:alloc-free
func (n *Network) deliver() {
	for v := range n.inboxes {
		n.inboxes[v] = n.inboxes[v][:0]
	}
	var delivered int64
	for v := range n.ctxs {
		ctx := &n.ctxs[v]
		for _, s := range ctx.outSlots {
			m := &n.slots[s]
			n.inboxes[m.To] = append(n.inboxes[m.To], *m)
		}
		delivered += int64(len(ctx.outSlots))
		ctx.outSlots = ctx.outSlots[:0]
	}
	n.metrics.Messages += delivered
	n.metrics.Bits += delivered * int64(Payload{}.Bits())
	n.stamp++
	if n.stamp == 0 { // uint32 wraparound after ~4·10⁹ rounds
		// Clear the full backing, not just the current view: arena-borrowed
		// buffers may be larger than 2m, and a stale tail would outlive the
		// restarted counter (same invariant as the arena's headroom reset).
		clear(n.sentStamp[:cap(n.sentStamp)])
		n.stamp = 1
	}
}

// Step executes one synchronous round. It returns true if the network has
// quiesced: every node reported done and no messages are in flight.
//
//kecss:alloc-free
func (n *Network) Step() bool {
	if n.released {
		panic("congest: Step on a network whose arena buffers were released (Run already finished)")
	}
	n.metrics.Rounds++
	n.exec.RunRound(n.g.N(), n.roundFn)
	n.deliver()
	allDone := true
	for v := range n.done {
		if !n.done[v] {
			allDone = false
			break
		}
	}
	inFlight := false
	for v := range n.inboxes {
		if len(n.inboxes[v]) > 0 {
			inFlight = true
			break
		}
	}
	return allDone && !inFlight
}

// Run executes rounds until quiescence or maxRounds, returning the metrics.
// It returns an error if the round budget is exhausted, which in this
// repository always indicates a non-terminating algorithm bug or an
// insufficient budget, never a legitimate outcome.
//
// When the network was built with WithArena, Run returns the borrowed
// buffers to the arena before returning: final program state (Program),
// Metrics and Graph remain readable, but further Step calls panic.
func (n *Network) Run(maxRounds int) (Metrics, error) {
	defer n.release()
	for r := 0; r < maxRounds; r++ {
		if n.Step() {
			return n.metrics, nil
		}
	}
	return n.metrics, fmt.Errorf("congest: no quiescence within %d rounds", maxRounds)
}

// release returns arena-borrowed buffers. Idempotent; no-op for networks
// with privately owned buffers.
func (n *Network) release() {
	a := n.arena
	if a == nil || n.released {
		return
	}
	n.released = true
	a.stamp = n.stamp
	a.busy = false
}

// Metrics returns the metrics accumulated so far.
func (n *Network) Metrics() Metrics { return n.metrics }

// Program returns the program instance running at vertex v, so callers can
// read its final local state (the standard way a distributed algorithm's
// output is defined: each vertex knows its part). Valid even after Run has
// returned the network's buffers to an arena.
func (n *Network) Program(v int) Program { return n.programs[v] }

// Graph returns the underlying communication graph.
func (n *Network) Graph() *graph.Graph { return n.g }
