package congest

import (
	"fmt"

	"repro/internal/graph"
)

// Metrics accumulates the cost of a simulation: the quantities the paper's
// theorems bound.
type Metrics struct {
	Rounds   int   // synchronous rounds executed
	Messages int64 // messages delivered
	Bits     int64 // total message bits (congestion volume)
}

// Network is one instantiation of the CONGEST model over a communication
// graph, with one Program per vertex.
type Network struct {
	g        *graph.Graph
	programs []Program
	ctxs     []*Context
	inboxes  [][]Message
	done     []bool
	exec     Executor
	metrics  Metrics
}

// Option configures a Network.
type Option func(*Network)

// WithExecutor selects the round executor. Default: SequentialExecutor.
func WithExecutor(e Executor) Option {
	return func(n *Network) { n.exec = e }
}

// NewNetwork builds a network over g where vertex v runs factory(v).
// Init is called for every node (messages sent there arrive in round 1).
func NewNetwork(g *graph.Graph, factory Factory, opts ...Option) *Network {
	n := &Network{
		g:        g,
		programs: make([]Program, g.N()),
		ctxs:     make([]*Context, g.N()),
		inboxes:  make([][]Message, g.N()),
		done:     make([]bool, g.N()),
		exec:     SequentialExecutor{},
	}
	for _, opt := range opts {
		opt(n)
	}
	for v := 0; v < g.N(); v++ {
		neighbors := make([]Neighbor, 0, g.Degree(v))
		for _, a := range g.Adj(v) {
			neighbors = append(neighbors, Neighbor{ID: a.To, Edge: a.Edge, Weight: g.Edge(a.Edge).W})
		}
		n.ctxs[v] = &Context{
			node:      v,
			n:         g.N(),
			neighbors: neighbors,
			sentOn:    make(map[int]bool),
		}
		n.programs[v] = factory(v)
	}
	// Init phase: all nodes, sequentially (Init does setup only).
	for v := 0; v < g.N(); v++ {
		n.ctxs[v].sentOn = make(map[int]bool)
		n.programs[v].Init(n.ctxs[v])
	}
	n.deliver()
	return n
}

// deliver moves every queued outgoing message into its destination inbox and
// clears per-round send state.
func (n *Network) deliver() {
	for v := range n.inboxes {
		n.inboxes[v] = n.inboxes[v][:0]
	}
	for v := range n.ctxs {
		ctx := n.ctxs[v]
		for _, m := range ctx.out {
			n.inboxes[m.To] = append(n.inboxes[m.To], m)
			n.metrics.Messages++
			n.metrics.Bits += int64(m.Bits())
		}
		ctx.out = ctx.out[:0]
		ctx.sentOn = make(map[int]bool)
	}
}

// Step executes one synchronous round. It returns true if the network has
// quiesced: every node reported done and no messages are in flight.
func (n *Network) Step() bool {
	n.metrics.Rounds++
	n.exec.RunRound(n.g.N(), func(v int) {
		n.done[v] = n.programs[v].Round(n.ctxs[v], n.inboxes[v])
	})
	n.deliver()
	allDone := true
	for v := range n.done {
		if !n.done[v] {
			allDone = false
			break
		}
	}
	inFlight := false
	for v := range n.inboxes {
		if len(n.inboxes[v]) > 0 {
			inFlight = true
			break
		}
	}
	return allDone && !inFlight
}

// Run executes rounds until quiescence or maxRounds, returning the metrics.
// It returns an error if the round budget is exhausted, which in this
// repository always indicates a non-terminating algorithm bug or an
// insufficient budget, never a legitimate outcome.
func (n *Network) Run(maxRounds int) (Metrics, error) {
	for r := 0; r < maxRounds; r++ {
		if n.Step() {
			return n.metrics, nil
		}
	}
	return n.metrics, fmt.Errorf("congest: no quiescence within %d rounds", maxRounds)
}

// Metrics returns the metrics accumulated so far.
func (n *Network) Metrics() Metrics { return n.metrics }

// Program returns the program instance running at vertex v, so callers can
// read its final local state (the standard way a distributed algorithm's
// output is defined: each vertex knows its part).
func (n *Network) Program(v int) Program { return n.programs[v] }

// Graph returns the underlying communication graph.
func (n *Network) Graph() *graph.Graph { return n.g }
