package congest

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Executor abstracts how the per-node round functions run. Implementations
// must invoke fn(v) exactly once for every v in 0..n-1 and return only after
// all calls complete; fn touches only per-node state, so any schedule is
// correct and all executors produce identical simulation results.
type Executor interface {
	// RunRound invokes fn(v) for every v in 0..n-1, returning after all
	// complete. Implementations must not let fn calls race on shared state;
	// fn itself touches only per-node state.
	RunRound(n int, fn func(v int))
}

// SequentialExecutor runs nodes one at a time in vertex order.
type SequentialExecutor struct{}

// RunRound implements Executor.
func (SequentialExecutor) RunRound(n int, fn func(v int)) {
	for v := 0; v < n; v++ {
		fn(v)
	}
}

// ParallelExecutor runs each round on a persistent worker pool shared by the
// whole process: GOMAXPROCS workers started once, handed chunked vertex
// ranges through an atomic cursor, and joined by a reusable barrier. This
// replaces the naive goroutine-per-node-per-round embedding, whose spawn and
// scheduling cost dominated the simulation at large n.
type ParallelExecutor struct{}

// RunRound implements Executor.
func (ParallelExecutor) RunRound(n int, fn func(v int)) { runPooled(n, fn, false) }

// ShardedExecutor runs each round on the same persistent pool, but
// partitions the vertices into one contiguous range per worker instead of
// interleaving small chunks. Contiguous ranges keep each worker touching a
// contiguous run of per-node state (contexts, inboxes), which is friendlier
// to caches when per-node work is uniform; dynamic chunking (ParallelExecutor)
// balances better when it is not.
type ShardedExecutor struct{}

// RunRound implements Executor.
func (ShardedExecutor) RunRound(n int, fn func(v int)) { runPooled(n, fn, true) }

// poolTask is one round of work, executed cooperatively by the pool workers
// and the submitting goroutine.
type poolTask struct {
	fn      func(v int)
	n       int
	chunk   int64 // chunked mode: vertices per cursor claim
	parts   int64 // sharded mode: number of contiguous shards
	sharded bool
	cursor  atomic.Int64 // next chunk start (chunked) or next shard (sharded)
	wg      sync.WaitGroup
}

// run consumes work from the task until none is left.
func (t *poolTask) run() {
	if t.sharded {
		for {
			s := t.cursor.Add(1) - 1
			if s >= t.parts {
				return
			}
			lo := int(s) * t.n / int(t.parts)
			hi := int(s+1) * t.n / int(t.parts)
			for v := lo; v < hi; v++ {
				t.fn(v)
			}
		}
	}
	for {
		lo := t.cursor.Add(t.chunk) - t.chunk
		if lo >= int64(t.n) {
			return
		}
		hi := lo + t.chunk
		if hi > int64(t.n) {
			hi = int64(t.n)
		}
		for v := int(lo); v < int(hi); v++ {
			t.fn(v)
		}
	}
}

const (
	// minChunk bounds cursor contention in chunked mode.
	minChunk = 16
	// poolCutoff is the round size below which the cross-goroutine handoff
	// costs more than it saves; smaller rounds run inline.
	poolCutoff = 64
)

var (
	poolOnce  sync.Once
	poolSize  int
	poolTasks chan *poolTask
	taskPool  = sync.Pool{New: func() any { return new(poolTask) }}
)

// startPool launches the persistent workers. They live for the life of the
// process, blocked on the task channel between rounds.
func startPool() {
	poolSize = runtime.GOMAXPROCS(0)
	if poolSize < 1 {
		poolSize = 1
	}
	poolTasks = make(chan *poolTask, poolSize)
	for i := 0; i < poolSize; i++ {
		go func() {
			for t := range poolTasks {
				t.run()
				t.wg.Done()
			}
		}()
	}
}

// runPooled executes fn(0..n-1) on the shared pool. The calling goroutine
// participates as one of the executors, so a round never waits on a worker
// that is busy with another network's round.
func runPooled(n int, fn func(v int), sharded bool) {
	if n <= 0 {
		return
	}
	poolOnce.Do(startPool)
	if poolSize == 1 || n < poolCutoff {
		SequentialExecutor{}.RunRound(n, fn)
		return
	}
	helpers := poolSize - 1
	if maxHelpers := n/minChunk - 1; helpers > maxHelpers {
		helpers = maxHelpers
	}
	t := taskPool.Get().(*poolTask)
	t.fn, t.n, t.sharded = fn, n, sharded
	t.cursor.Store(0)
	if sharded {
		t.parts = int64(helpers + 1)
	} else {
		chunk := n / (8 * (helpers + 1))
		if chunk < minChunk {
			chunk = minChunk
		}
		t.chunk = int64(chunk)
	}
	t.wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		poolTasks <- t
	}
	t.run()
	t.wg.Wait()
	t.fn = nil
	taskPool.Put(t)
}

var (
	_ Executor = SequentialExecutor{}
	_ Executor = ParallelExecutor{}
	_ Executor = ShardedExecutor{}
)
