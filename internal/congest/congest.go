// Package congest simulates the synchronous CONGEST model of distributed
// computing used by the paper: n processors, one per graph vertex,
// communicating over the graph edges in synchronous rounds, where each edge
// can carry one O(log n)-bit message in each direction per round.
//
// Algorithms are written as per-node Programs. The simulator enforces the
// model's constraints (bounded message size, one message per edge direction
// per round) and accounts rounds and messages, which is what the paper's
// theorems are about.
//
// # Simulator architecture
//
// The hot path is allocation-free in steady state. Four mechanisms make a
// simulated round cost O(messages + n) machine work with zero heap growth:
//
//   - Port indexing. A node's incident edges are its ports 0..deg-1, in
//     adjacency order. NewNetwork builds, once, a global edge→port index
//     (portAtU/portAtV, one int32 per edge endpoint) and a network-wide
//     (node, neighbour)→lowest-port map chained through per-port nextSame
//     links, so Send and SendTo resolve an edge or neighbour to a port in
//     O(1) instead of scanning the neighbour list.
//
//   - Round-stamped send state. The model admits at most one message per
//     edge direction per round. Instead of a per-round map of used edges,
//     each port carries a uint32 stamp; a port is "used this round" iff its
//     stamp equals the network's current round stamp, so clearing the send
//     state of the whole network is a single integer increment.
//
//   - Slot delivery. All messages in flight live in a flat []Message of
//     length 2m — slot 2e for the message travelling U→V on edge e, slot
//     2e+1 for V→U. Send writes the message into its slot (each slot has
//     exactly one possible writer per round, so parallel executors need no
//     locks) and records the slot in the sender's out-list. deliver copies
//     slots into per-node inbox views — fixed-capacity sub-slices of a
//     second flat 2m arena, partitioned by receiver degree — in sender-ID
//     order, preserving the exact inbox ordering of a sequential simulator.
//
//   - Buffer reuse. Every buffer above is sized by the graph's n and m and
//     carved out of a handful of flat allocations. A NetworkArena recycles
//     them across repeated NewNetwork calls (see arena.go), so repetition
//     sweeps construct networks without re-allocating contexts, inboxes or
//     neighbour tables.
//
// Executors (see executor.go) decide how the n per-node Round calls run:
// sequentially, on a persistent work-stealing worker pool (ParallelExecutor),
// or on the same pool with contiguous vertex shards (ShardedExecutor). All
// three produce byte-identical results and Metrics because programs touch
// only per-node state and delivery order is fixed by the network, not the
// executor.
//
//kecss:deterministic
package congest

import "fmt"

// Payload is the content of one CONGEST message: a small constant number of
// O(log n)-bit fields. IDs, weights, counts and labels in the paper all fit
// in O(log n) bits, so a Payload of a few int64 fields is a faithful
// O(log n)-bit message. Kind distinguishes message types within a Program.
type Payload struct {
	Kind       int8
	A, B, C, D int64
}

// Bits returns the nominal size of the payload in bits, for congestion
// accounting: 8 bits of kind plus 64 per field.
func (p Payload) Bits() int { return 8 + 4*64 }

// Message is a payload in transit over one edge in one direction.
type Message struct {
	From int // sender vertex
	To   int // receiver vertex
	Edge int // graph edge ID it travelled on
	Payload
}

// Neighbor describes one incident edge as seen from a node.
type Neighbor struct {
	ID     int   // neighbouring vertex id
	Edge   int   // edge ID
	Weight int64 // edge weight (known to both endpoints initially, per the model)
}

// Context is a node's handle to the network during a round. It is only valid
// during the Init/Round call it was passed to.
type Context struct {
	node      int
	n         int
	net       *Network
	neighbors []Neighbor // port-indexed incident edges
	sentStamp []uint32   // per port: == net.stamp iff used this round
	outSlots  []int32    // slots written this round, in send order
	slotOf    []int32    // per port: its message slot (2*edge + direction)
	nextSame  []int32    // per port: next port with the same neighbour, -1 if none
}

// Node returns this node's vertex ID.
func (c *Context) Node() int { return c.node }

// N returns the number of vertices in the network. The paper assumes nodes
// know n (learnable in O(D) rounds over a BFS tree).
func (c *Context) N() int { return c.n }

// Neighbors returns the node's incident edges, indexed by port. Callers must
// not mutate it.
func (c *Context) Neighbors() []Neighbor { return c.neighbors }

// Send queues a message on the given incident edge. It panics if the edge is
// not incident to this node or if a second message is sent on the same edge
// in the same round — both violate the CONGEST model and indicate a bug in
// the algorithm, not a runtime condition.
//
//kecss:alloc-free
func (c *Context) Send(edge int, p Payload) {
	net := c.net
	if edge < 0 || edge >= net.g.M() {
		panic(fmt.Sprintf("congest: node %d sending on non-existent edge %d", c.node, edge))
	}
	e := net.g.Edge(edge)
	var port int32
	var to int
	switch c.node {
	case e.U:
		port, to = net.portAtU[edge], e.V
	case e.V:
		port, to = net.portAtV[edge], e.U
	default:
		panic(fmt.Sprintf("congest: node %d sending on non-incident edge %d", c.node, edge))
	}
	c.sendPort(port, to, edge, p)
}

// sendPort performs the actual send on a resolved port: stamps it, writes
// the message into its slot and records the slot in send order.
//
//kecss:alloc-free
func (c *Context) sendPort(port int32, to, edge int, p Payload) {
	net := c.net
	if c.sentStamp[port] == net.stamp {
		panic(fmt.Sprintf("congest: node %d sent two messages on edge %d in one round", c.node, edge))
	}
	c.sentStamp[port] = net.stamp
	slot := c.slotOf[port]
	net.slots[slot] = Message{From: c.node, To: to, Edge: edge, Payload: p}
	c.outSlots = append(c.outSlots, slot)
}

// SendTo queues a message to the named neighbour. If several parallel edges
// lead to that neighbour, the lowest-ID unused one is chosen.
func (c *Context) SendTo(neighbor int, p Payload) {
	stamp := c.net.stamp
	if port, ok := c.net.nbrPort[nbrKey(c.node, neighbor)]; ok {
		for ; port != -1; port = c.nextSame[port] {
			if c.sentStamp[port] != stamp {
				nb := &c.neighbors[port]
				c.sendPort(port, nb.ID, nb.Edge, p)
				return
			}
		}
	}
	panic(fmt.Sprintf("congest: node %d has no free edge to neighbour %d", c.node, neighbor))
}

// nbrKey packs a (node, neighbour) pair into the key of the network-wide
// neighbour→port map (vertex IDs are dense ints well below 2³²).
func nbrKey(node, neighbor int) int64 { return int64(node)<<32 | int64(neighbor) }

// Broadcast sends the same payload on every incident edge not yet used this
// round.
func (c *Context) Broadcast(p Payload) {
	stamp := c.net.stamp
	for port := range c.neighbors {
		if c.sentStamp[port] != stamp {
			nb := &c.neighbors[port]
			c.sendPort(int32(port), nb.ID, nb.Edge, p)
		}
	}
}

// Program is a distributed algorithm as run by a single node. The simulator
// creates one Program instance per vertex via a Factory.
//
// Init runs before round 1 and may send messages (they arrive in round 1).
// Round is called once per round with the messages received; it returns true
// once the node is locally done. A done node still receives messages and has
// Round called (it may un-done itself by returning false), matching the
// standard "termination by quiescence" convention.
type Program interface {
	Init(ctx *Context)
	Round(ctx *Context, inbox []Message) bool
}

// Factory builds the Program for vertex v.
type Factory func(v int) Program
