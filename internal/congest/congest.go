// Package congest simulates the synchronous CONGEST model of distributed
// computing used by the paper: n processors, one per graph vertex,
// communicating over the graph edges in synchronous rounds, where each edge
// can carry one O(log n)-bit message in each direction per round.
//
// Algorithms are written as per-node Programs. The simulator enforces the
// model's constraints (bounded message size, one message per edge direction
// per round) and accounts rounds and messages, which is what the paper's
// theorems are about.
package congest

import (
	"fmt"
	"sync"
)

// Payload is the content of one CONGEST message: a small constant number of
// O(log n)-bit fields. IDs, weights, counts and labels in the paper all fit
// in O(log n) bits, so a Payload of a few int64 fields is a faithful
// O(log n)-bit message. Kind distinguishes message types within a Program.
type Payload struct {
	Kind       int8
	A, B, C, D int64
}

// Bits returns the nominal size of the payload in bits, for congestion
// accounting: 8 bits of kind plus 64 per field.
func (p Payload) Bits() int { return 8 + 4*64 }

// Message is a payload in transit over one edge in one direction.
type Message struct {
	From int // sender vertex
	To   int // receiver vertex
	Edge int // graph edge ID it travelled on
	Payload
}

// Neighbor describes one incident edge as seen from a node.
type Neighbor struct {
	ID     int   // neighbouring vertex id
	Edge   int   // edge ID
	Weight int64 // edge weight (known to both endpoints initially, per the model)
}

// Context is a node's handle to the network during a round. It is only valid
// during the Init/Round call it was passed to.
type Context struct {
	node      int
	n         int
	neighbors []Neighbor
	out       []Message
	sentOn    map[int]bool // edge IDs already used this round by this node
}

// Node returns this node's vertex ID.
func (c *Context) Node() int { return c.node }

// N returns the number of vertices in the network. The paper assumes nodes
// know n (learnable in O(D) rounds over a BFS tree).
func (c *Context) N() int { return c.n }

// Neighbors returns the node's incident edges. Callers must not mutate it.
func (c *Context) Neighbors() []Neighbor { return c.neighbors }

// Send queues a message on the given incident edge. It panics if the edge is
// not incident to this node or if a second message is sent on the same edge
// in the same round — both violate the CONGEST model and indicate a bug in
// the algorithm, not a runtime condition.
func (c *Context) Send(edge int, p Payload) {
	var to = -1
	for _, nb := range c.neighbors {
		if nb.Edge == edge {
			to = nb.ID
			break
		}
	}
	if to == -1 {
		panic(fmt.Sprintf("congest: node %d sending on non-incident edge %d", c.node, edge))
	}
	if c.sentOn[edge] {
		panic(fmt.Sprintf("congest: node %d sent two messages on edge %d in one round", c.node, edge))
	}
	c.sentOn[edge] = true
	c.out = append(c.out, Message{From: c.node, To: to, Edge: edge, Payload: p})
}

// SendTo queues a message to the named neighbour. If several parallel edges
// lead to that neighbour, the lowest-ID unused one is chosen.
func (c *Context) SendTo(neighbor int, p Payload) {
	for _, nb := range c.neighbors {
		if nb.ID == neighbor && !c.sentOn[nb.Edge] {
			c.Send(nb.Edge, p)
			return
		}
	}
	panic(fmt.Sprintf("congest: node %d has no free edge to neighbour %d", c.node, neighbor))
}

// Broadcast sends the same payload on every incident edge not yet used this
// round.
func (c *Context) Broadcast(p Payload) {
	for _, nb := range c.neighbors {
		if !c.sentOn[nb.Edge] {
			c.Send(nb.Edge, p)
		}
	}
}

// Program is a distributed algorithm as run by a single node. The simulator
// creates one Program instance per vertex via a Factory.
//
// Init runs before round 1 and may send messages (they arrive in round 1).
// Round is called once per round with the messages received; it returns true
// once the node is locally done. A done node still receives messages and has
// Round called (it may un-done itself by returning false), matching the
// standard "termination by quiescence" convention.
type Program interface {
	Init(ctx *Context)
	Round(ctx *Context, inbox []Message) bool
}

// Factory builds the Program for vertex v.
type Factory func(v int) Program

// Executor abstracts how the per-node round functions run: sequentially
// (deterministic order, fastest for small graphs) or one goroutine per node
// (exercises the natural goroutines-as-processors mapping).
type Executor interface {
	// RunRound invokes fn(v) for every v in 0..n-1, returning after all
	// complete. Implementations must not let fn calls race on shared state;
	// fn itself touches only per-node state.
	RunRound(n int, fn func(v int))
}

// SequentialExecutor runs nodes one at a time in vertex order.
type SequentialExecutor struct{}

// RunRound implements Executor.
func (SequentialExecutor) RunRound(n int, fn func(v int)) {
	for v := 0; v < n; v++ {
		fn(v)
	}
}

// ParallelExecutor runs every node in its own goroutine each round, joined
// by a WaitGroup barrier — the direct goroutines-per-processor embedding of
// the synchronous model.
type ParallelExecutor struct{}

// RunRound implements Executor.
func (ParallelExecutor) RunRound(n int, fn func(v int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for v := 0; v < n; v++ {
		go func(v int) {
			defer wg.Done()
			fn(v)
		}(v)
	}
	wg.Wait()
}

var (
	_ Executor = SequentialExecutor{}
	_ Executor = ParallelExecutor{}
)
