package congest

// NetworkArena recycles a Network's internal buffers across repeated
// NewNetwork calls. Experiment sweeps and multi-phase algorithms build
// hundreds of networks over same-sized graphs; with an arena, each
// construction reuses the previous network's contexts, inboxes, neighbour
// tables and message slots instead of re-allocating them.
//
// Ownership rules:
//
//   - At most one live network may borrow an arena's buffers at a time.
//     NewNetwork(WithArena(a)) borrows them if they are free, and silently
//     falls back to fresh allocation if they are not — so nesting is safe,
//     just not accelerated.
//   - Run returns the buffers when it finishes (success or error). Reading
//     results (Program, Metrics, Graph) stays valid afterwards; calling
//     Step on the finished network panics.
//   - An arena is not safe for concurrent use. Use one arena per goroutine.
//
// The round stamp is carried across networks (see sentStamp in the package
// documentation): recycled stamp buffers never need re-zeroing because a new
// network's starting stamp is strictly greater than every stale stamp.
//
//kecss:arena
type NetworkArena struct {
	slots      []Message
	inboxArena []Message
	neighbors  []Neighbor
	sentStamp  []uint32
	outBack    []int32
	slotOf     []int32
	nextSame   []int32
	portStart  []int32
	portAtU    []int32
	portAtV    []int32
	ctxs       []Context
	done       []bool
	inboxes    [][]Message
	nbrPort    map[int64]int32
	stamp      uint32
	busy       bool
}

// NewArena returns an empty arena. Buffers are allocated lazily, sized by
// the largest graph simulated through it.
func NewArena() *NetworkArena { return &NetworkArena{} }

// WithDefaultArena returns opts prefixed with a fresh-arena option: the
// standard pattern for a function that runs several consecutive networks and
// wants them to share buffers by default. Because options apply in order, a
// caller-supplied WithArena later in opts still wins.
func WithDefaultArena(opts []Option) []Option {
	return append([]Option{WithArena(NewArena())}, opts...)
}

// acquire resizes the arena's buffers for a graph with nv vertices, m edges
// (p2 = 2m ports) and returns the starting round stamp for the borrowing
// network. Buffers large enough are reused as-is; growing ones are replaced.
func (a *NetworkArena) acquire(nv, p2, m int) uint32 {
	if a.stamp >= 1<<31 {
		// Headroom check: restart stamps long before uint32 wraparound so a
		// borrowed network can run billions of rounds safely. The full
		// backing array is cleared — a smaller current view may hide stale
		// stamps that a later, larger acquire would re-expose.
		clear(a.sentStamp[:cap(a.sentStamp)])
		a.stamp = 0
	}
	a.slots = growSlice(a.slots, p2)
	a.inboxArena = growSlice(a.inboxArena, p2)
	a.neighbors = growSlice(a.neighbors, p2)
	a.sentStamp = growSlice(a.sentStamp, p2)
	a.outBack = growSlice(a.outBack, p2)
	a.slotOf = growSlice(a.slotOf, p2)
	a.nextSame = growSlice(a.nextSame, p2)
	a.portStart = growSlice(a.portStart, nv+1)
	a.portAtU = growSlice(a.portAtU, m)
	a.portAtV = growSlice(a.portAtV, m)
	a.ctxs = growSlice(a.ctxs, nv)
	a.done = growSlice(a.done, nv)
	a.inboxes = growSlice(a.inboxes, nv)
	// Contexts and inbox views hold pointers (to their network and message
	// backing); clear any tail beyond the current graph so a sweep over
	// shrinking graphs does not pin finished networks in memory.
	clear(a.ctxs[nv:cap(a.ctxs)])
	clear(a.inboxes[nv:cap(a.inboxes)])
	return a.stamp + 1
}

// growSlice returns buf resized to length n, reusing its backing array when
// large enough. Contents are unspecified; callers overwrite every element
// they read (sentStamp relies on the arena's monotone stamps instead).
func growSlice[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}
