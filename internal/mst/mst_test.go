package mst

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/tree"
)

func TestKruskalKnown(t *testing.T) {
	// Triangle with weights 1, 2, 3: MST takes the two lightest edges.
	g := graph.New(3)
	a := g.AddEdge(0, 1, 1)
	b := g.AddEdge(1, 2, 2)
	g.AddEdge(0, 2, 3)
	ids, w := Kruskal(g)
	if w != 3 {
		t.Fatalf("weight = %d, want 3", w)
	}
	sort.Ints(ids)
	if len(ids) != 2 || ids[0] != a || ids[1] != b {
		t.Fatalf("edges = %v, want [%d %d]", ids, a, b)
	}
}

func TestKruskalIsSpanningTree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		g := graph.RandomKConnected(20+rng.Intn(30), 2, 20, rng, graph.RandomWeights(rng, 100))
		ids, _ := Kruskal(g)
		if len(ids) != g.N()-1 {
			t.Fatalf("trial %d: %d edges, want %d", trial, len(ids), g.N()-1)
		}
		if _, err := tree.FromEdges(g, ids, 0); err != nil {
			t.Fatalf("trial %d: not a spanning tree: %v", trial, err)
		}
	}
}

func TestKruskalCutProperty(t *testing.T) {
	// For every tree edge, it is the (weight, id)-minimal edge crossing the
	// cut induced by removing it from the tree.
	rng := rand.New(rand.NewSource(2))
	g := graph.RandomKConnected(25, 2, 30, rng, graph.RandomWeights(rng, 20))
	ids, _ := Kruskal(g)
	tr, err := tree.FromEdges(g, ids, 0)
	if err != nil {
		t.Fatal(err)
	}
	inTree := tr.IsTreeEdge()
	for _, id := range ids {
		// Side of the cut: the subtree below the deeper endpoint.
		e := g.Edge(id)
		child := e.U
		if tr.Depth[e.V] > tr.Depth[e.U] {
			child = e.V
		}
		inSub := make(map[int]bool)
		var mark func(v int)
		mark = func(v int) {
			inSub[v] = true
			for _, c := range tr.Children(v) {
				mark(c)
			}
		}
		mark(child)
		for _, f := range g.Edges() {
			if inTree[f.ID] || inSub[f.U] == inSub[f.V] {
				continue
			}
			if f.W < e.W || (f.W == e.W && f.ID < e.ID) {
				t.Fatalf("cut property violated: non-tree edge %d (w=%d) beats tree edge %d (w=%d)",
					f.ID, f.W, e.ID, e.W)
			}
		}
	}
}

func TestDistributedBoruvkaMatchesKruskal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	graphs := []*graph.Graph{
		graph.Cycle(8, graph.RandomWeights(rng, 10)),
		graph.Grid(4, 5, graph.RandomWeights(rng, 50)),
		graph.Harary(3, 14, graph.RandomWeights(rng, 7)),
		graph.RandomKConnected(30, 2, 40, rng, graph.RandomWeights(rng, 100)),
		graph.RandomKConnected(25, 3, 25, rng, graph.UnitWeights()),
	}
	for i, g := range graphs {
		res, err := DistributedBoruvka(g)
		if err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
		wantIDs, wantW := Kruskal(g)
		if res.Weight != wantW {
			t.Fatalf("graph %d: weight %d, want %d", i, res.Weight, wantW)
		}
		got := append([]int(nil), res.EdgeIDs...)
		sort.Ints(got)
		want := append([]int(nil), wantIDs...)
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("graph %d: %d edges, want %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("graph %d: edge sets differ: %v vs %v", i, got, want)
			}
		}
		if res.Phases > bitLen(g.N())+1 {
			t.Errorf("graph %d: %d phases for n=%d, want <= log n + 1", i, res.Phases, g.N())
		}
	}
}

func TestDistributedBoruvkaParallelExecutor(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.RandomKConnected(20, 2, 15, rng, graph.RandomWeights(rng, 30))
	res, err := DistributedBoruvka(g, congest.WithExecutor(congest.ParallelExecutor{}))
	if err != nil {
		t.Fatal(err)
	}
	_, wantW := Kruskal(g)
	if res.Weight != wantW {
		t.Fatalf("weight %d, want %d", res.Weight, wantW)
	}
}

func TestDistributedBoruvkaSingleVertex(t *testing.T) {
	g := graph.New(1)
	res, err := DistributedBoruvka(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EdgeIDs) != 0 || res.Weight != 0 {
		t.Fatalf("unexpected result %+v", res)
	}
}

func TestDistributedBoruvkaDisconnectedFails(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	if _, err := DistributedBoruvka(g); err == nil {
		t.Fatal("expected error on disconnected graph")
	}
}

// Property: Borůvka equals Kruskal on random weighted instances.
func TestBoruvkaKruskalQuick(t *testing.T) {
	f := func(seed int64, nRaw, extraRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%25) + 5
		g := graph.RandomKConnected(n, 2, int(extraRaw%20), rng, graph.RandomWeights(rng, 40))
		res, err := DistributedBoruvka(g)
		if err != nil {
			return false
		}
		_, wantW := Kruskal(g)
		return res.Weight == wantW
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
