package mst

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestFaultTolerantMSTReplacementsAreMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomKConnected(15+rng.Intn(15), 2, 20, rng, graph.RandomWeights(rng, 50))
		res, err := FaultTolerantMST(g)
		if err != nil {
			t.Fatal(err)
		}
		inTree := make(map[int]bool, len(res.MSTEdges))
		for _, id := range res.MSTEdges {
			inTree[id] = true
		}
		for _, te := range res.MSTEdges {
			rep := res.Replacement[te]
			// Brute-force the minimal crossing edge: remove te from the
			// tree, find the two components, scan all non-tree edges.
			remTree, _ := g.SubgraphOf(without(res.MSTEdges, te))
			comp, _ := remTree.Components()
			bestID := -1
			for _, e := range g.Edges() {
				if inTree[e.ID] || comp[e.U] == comp[e.V] {
					continue
				}
				if bestID == -1 {
					bestID = e.ID
					continue
				}
				b := g.Edge(bestID)
				if e.W < b.W || (e.W == b.W && e.ID < b.ID) {
					bestID = e.ID
				}
			}
			if rep != bestID {
				t.Fatalf("trial %d: tree edge %d replacement %d, want %d", trial, te, rep, bestID)
			}
		}
	}
}

func without(ids []int, drop int) []int {
	out := make([]int, 0, len(ids)-1)
	for _, id := range ids {
		if id != drop {
			out = append(out, id)
		}
	}
	return out
}

func TestFaultTolerantMSTContainsAllPostFailureMSTs(t *testing.T) {
	// The defining property: for every edge e of G, the FT subgraph contains
	// an MST of G\{e} — equivalently, the MST weight of (FT \ e) equals the
	// MST weight of (G \ e).
	rng := rand.New(rand.NewSource(2))
	g := graph.RandomKConnected(18, 2, 20, rng, graph.RandomWeights(rng, 40))
	res, err := FaultTolerantMST(g)
	if err != nil {
		t.Fatal(err)
	}
	ftSet := make(map[int]bool, len(res.Edges))
	for _, id := range res.Edges {
		ftSet[id] = true
	}
	for _, e := range g.Edges() {
		gMinus, _ := g.SubgraphWithout(map[int]bool{e.ID: true})
		if !gMinus.Connected() {
			continue
		}
		_, wantW := Kruskal(gMinus)
		ftIDs := make([]int, 0, len(res.Edges))
		for _, id := range res.Edges {
			if id != e.ID {
				ftIDs = append(ftIDs, id)
			}
		}
		ftMinus, _ := g.SubgraphOf(ftIDs)
		if !ftMinus.Connected() {
			t.Fatalf("FT subgraph minus edge %d is disconnected", e.ID)
		}
		_, gotW := Kruskal(ftMinus)
		if gotW != wantW {
			t.Fatalf("edge %d: FT-subgraph MST weight %d, want %d", e.ID, gotW, wantW)
		}
	}
}

func TestFaultTolerantMSTSize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.RandomKConnected(40, 2, 80, rng, graph.RandomWeights(rng, 100))
	res, err := FaultTolerantMST(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Edges) > 2*(g.N()-1) {
		t.Fatalf("FT-MST has %d edges, want <= 2(n-1)=%d", len(res.Edges), 2*(g.N()-1))
	}
	if res.Rounds <= 0 {
		t.Fatal("no rounds charged")
	}
}

func TestFaultTolerantMSTBridges(t *testing.T) {
	// A bridge has no replacement and is reported as such.
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 0, 1)
	bridge := g.AddEdge(2, 3, 5)
	res, err := FaultTolerantMST(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replacement[bridge] != -1 {
		t.Fatalf("bridge replacement = %d, want -1", res.Replacement[bridge])
	}
}

func TestFaultTolerantMSTDisconnected(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	if _, err := FaultTolerantMST(g); err == nil {
		t.Fatal("expected error on disconnected input")
	}
}
