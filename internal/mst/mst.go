// Package mst provides minimum-spanning-tree computation: a sequential
// Kruskal oracle and a distributed Borůvka/GHS-style algorithm running on
// the CONGEST simulator.
//
// The paper builds its MSTs with Kutten–Peleg (O(D+√n·log*n) rounds). That
// algorithm's minimum k-dominating-set machinery is out of scope here; the
// distributed Borůvka below is the classic O((D+F)·log n)-round alternative
// that produces the *identical* tree under (weight, edgeID) lexicographic
// tie-breaking, so every structure built on top of the MST (fragments,
// segments, TAP) is exactly the one the paper's pipeline would see. Headline
// round accounting for the theorems charges the Kutten–Peleg bound via
// internal/rounds (see DESIGN.md, substitutions).
//
//kecss:deterministic
package mst

import (
	"fmt"
	"sort"

	"repro/internal/congest"
	"repro/internal/graph"
)

// Kruskal returns the edge IDs and total weight of the minimum spanning
// tree under (weight, edgeID) lexicographic order. With that tie-break all
// edge weights are effectively distinct, so the MST is unique — this is the
// verification oracle for the distributed algorithm.
func Kruskal(g *graph.Graph) ([]int, int64) {
	uf := graph.NewUnionFind(g.N())
	ids := g.SortedEdgeIDsByWeight()
	out := make([]int, 0, g.N()-1)
	var weight int64
	for _, id := range ids {
		e := g.Edge(id)
		if uf.Union(e.U, e.V) {
			out = append(out, id)
			weight += e.W
		}
	}
	return out, weight
}

// Result is the outcome of the distributed MST computation.
type Result struct {
	EdgeIDs []int           // MST edge IDs
	Weight  int64           // total MST weight
	Phases  int             // Borůvka phases executed
	Metrics congest.Metrics // accumulated simulator cost
}

// edgeKey orders edges by (weight, ID): the effective distinct-weight order.
type edgeKey struct {
	w  int64
	id int64
}

func (k edgeKey) less(o edgeKey) bool {
	if k.w != o.w {
		return k.w < o.w
	}
	return k.id < o.id
}

var infKey = edgeKey{w: 1 << 62, id: 1 << 62}

// DistributedBoruvka computes the MST by synchronous Borůvka phases where
// every inter-node data movement is performed by message-passing programs on
// the simulator:
//
//  1. each node exchanges its fragment ID with its neighbours (1 round);
//  2. each fragment convergecasts its minimum-weight outgoing edge (MWOE)
//     up its fragment tree and broadcasts the winner back down;
//  3. chosen MWOEs are announced across to the other endpoint;
//  4. merged clusters agree on their new fragment ID (min old ID) by
//     flooding restricted to fragment-tree ∪ MWOE edges, then re-root their
//     fragment tree by a restricted BFS from the new ID's vertex.
//
// Metrics accumulate over all sub-runs. O(log n) phases.
func DistributedBoruvka(g *graph.Graph, opts ...congest.Option) (*Result, error) {
	n := g.N()
	if n == 0 {
		return &Result{}, nil
	}
	// Every phase builds several short-lived networks over g; by default one
	// arena lets them all share buffers.
	st := &boruvkaState{
		g:          g,
		fragID:     make([]int, n),
		parent:     make([]int, n),
		parentEdge: make([]int, n),
		opts:       congest.WithDefaultArena(opts),
	}
	for v := 0; v < n; v++ {
		st.fragID[v] = v
		st.parent[v] = -1
		st.parentEdge[v] = -1
	}
	res := &Result{}
	fragments := n
	for fragments > 1 {
		res.Phases++
		if res.Phases > 2*bitLen(n)+2 {
			return nil, fmt.Errorf("mst: Borůvka exceeded %d phases (bug)", res.Phases)
		}
		merged, err := st.phase(&res.Metrics)
		if err != nil {
			return nil, err
		}
		if merged == 0 {
			return nil, fmt.Errorf("mst: no merges with %d fragments left (disconnected graph?)", fragments)
		}
		fragments -= merged
	}
	res.EdgeIDs = append(res.EdgeIDs, st.mstEdges...)
	for _, id := range res.EdgeIDs {
		res.Weight += g.Edge(id).W
	}
	return res, nil
}

func bitLen(n int) int {
	b := 0
	for n > 0 {
		b++
		n >>= 1
	}
	return b
}

// boruvkaState holds the global view the simulation maintains between
// phases: each entry is per-vertex local knowledge (its fragment ID and its
// parent within the fragment tree), mirrored here so successive network runs
// can be parameterized by it.
type boruvkaState struct {
	g          *graph.Graph
	fragID     []int
	parent     []int // parent within fragment tree, -1 at fragment root
	parentEdge []int
	mstEdges   []int
	opts       []congest.Option
}

// phase runs one Borůvka phase, returns the number of fragment merges.
func (st *boruvkaState) phase(acc *congest.Metrics) (int, error) {
	g := st.g
	n := g.N()

	// Step 1+2: fragment-ID exchange, then MWOE convergecast + broadcast on
	// the fragment forest.
	mwoe, err := st.findMWOEs(acc)
	if err != nil {
		return 0, err
	}

	// Collect chosen MWOE per fragment; resolve merge forest.
	chosen := make(map[int]int) // fragment ID -> edge ID
	for f, k := range mwoe {
		if k != infKey {
			chosen[f] = int(k.id)
		}
	}
	if len(chosen) == 0 {
		return 0, nil
	}
	// Step 3 happens implicitly: both endpoints of a chosen edge learn it
	// in the cluster-flood below because chosen edges are part of the flood
	// edge set that both endpoints are told about. For edge accounting we
	// charge one extra round for the cross-edge announcement.
	acc.Rounds++
	acc.Messages += int64(len(chosen))
	acc.Bits += int64(len(chosen)) * int64(congest.Payload{}.Bits())

	// Append the phase's new MST edges in fragment-ID order: map iteration
	// order is randomized, and the result's edge order should be a pure
	// function of the input (the executor-equivalence tests pin this).
	fragIDs := make([]int, 0, len(chosen))
	for f := range chosen {
		fragIDs = append(fragIDs, f)
	}
	sort.Ints(fragIDs)
	newEdges := make(map[int]bool, len(chosen))
	for _, f := range fragIDs {
		id := chosen[f]
		if !newEdges[id] {
			newEdges[id] = true
			st.mstEdges = append(st.mstEdges, id)
		}
	}

	// Step 4a: clusters (fragment trees + new MWOE edges) agree on min
	// fragment ID by restricted flooding.
	clusterEdge := make(map[int]bool, n+len(newEdges))
	for v := 0; v < n; v++ {
		if st.parentEdge[v] != -1 {
			clusterEdge[st.parentEdge[v]] = true
		}
	}
	for id := range newEdges {
		clusterEdge[id] = true
	}
	newID, err := minFloodRestricted(g, clusterEdge, st.fragID, st.opts, acc)
	if err != nil {
		return 0, err
	}

	// Step 4b: re-root each cluster at the vertex whose ID equals the new
	// cluster ID by a restricted BFS.
	parent, parentEdge, err := bfsRestricted(g, clusterEdge, newID, st.opts, acc)
	if err != nil {
		return 0, err
	}

	mergedAway := 0
	seenOld := make(map[int]bool, n)
	seenNew := make(map[int]bool, n)
	for v := 0; v < n; v++ {
		seenOld[st.fragID[v]] = true
		seenNew[newID[v]] = true
	}
	mergedAway = len(seenOld) - len(seenNew)
	st.fragID = newID
	st.parent = parent
	st.parentEdge = parentEdge
	return mergedAway, nil
}

// findMWOEs returns, per fragment ID, the minimum outgoing edge key. It runs
// two network programs: one exchange round so every node learns neighbour
// fragment IDs, then convergecast+broadcast on fragment trees.
func (st *boruvkaState) findMWOEs(acc *congest.Metrics) (map[int]edgeKey, error) {
	g := st.g
	// Exchange round: every node learns the fragment ID across each edge.
	exchanged := make([]map[int]int, g.N())
	net := congest.NewNetwork(g, func(v int) congest.Program {
		return &fragExchangeProgram{fragID: int64(st.fragID[v]), got: &exchanged[v]}
	}, st.opts...)
	m, err := net.Run(3)
	if err != nil {
		return nil, fmt.Errorf("mst: fragment exchange: %w", err)
	}
	accAdd(acc, m)

	// Local MWOE candidate per node.
	localBest := make([]edgeKey, g.N())
	for v := 0; v < g.N(); v++ {
		localBest[v] = infKey
		for _, a := range g.Adj(v) {
			of, ok := exchanged[v][a.Edge]
			if !ok {
				return nil, fmt.Errorf("mst: missing fragment id on edge %d at vertex %d", a.Edge, v)
			}
			if of == st.fragID[v] {
				continue
			}
			k := edgeKey{w: g.Edge(a.Edge).W, id: int64(a.Edge)}
			if k.less(localBest[v]) {
				localBest[v] = k
			}
		}
	}

	// Convergecast min edgeKey up fragment trees, then broadcast winner.
	out := make(map[int]edgeKey)
	children := make([]int, g.N())
	for u := 0; u < g.N(); u++ {
		if st.parent[u] != -1 {
			children[st.parent[u]]++
		}
	}
	progs := make([]*mwoeProgram, g.N())
	net2 := congest.NewNetwork(g, func(v int) congest.Program {
		p := &mwoeProgram{
			parent:     st.parent[v],
			parentEdge: st.parentEdge[v],
			pending:    children[v],
			best:       localBest[v],
		}
		progs[v] = p
		return p
	}, st.opts...)
	m2, err := net2.Run(g.N() + 3)
	if err != nil {
		return nil, fmt.Errorf("mst: MWOE convergecast: %w", err)
	}
	accAdd(acc, m2)
	for v := 0; v < g.N(); v++ {
		if st.parent[v] == -1 { // fragment root
			out[st.fragID[v]] = progs[v].best
		}
	}
	return out, nil
}

func accAdd(acc *congest.Metrics, m congest.Metrics) {
	acc.Rounds += m.Rounds
	acc.Messages += m.Messages
	acc.Bits += m.Bits
}

// fragExchangeProgram: every node announces its fragment ID on all edges and
// records what it hears per edge.
type fragExchangeProgram struct {
	fragID int64
	got    *map[int]int
}

func (p *fragExchangeProgram) Init(ctx *congest.Context) {
	*p.got = make(map[int]int, len(ctx.Neighbors()))
	ctx.Broadcast(congest.Payload{Kind: 11, A: p.fragID})
}

func (p *fragExchangeProgram) Round(_ *congest.Context, inbox []congest.Message) bool {
	for _, m := range inbox {
		if m.Kind == 11 {
			(*p.got)[m.Edge] = int(m.A)
		}
	}
	return true
}

// mwoeProgram convergecasts the minimum edgeKey up a fragment tree. A leaf
// (pending == 0) sends immediately; internal nodes wait for all children.
// After the root decides, no broadcast back down is needed by the simulation
// itself (the global driver reads the root's result and the following
// cluster flood informs everyone), but we keep the message count honest by
// having the root's decision flow through the subsequent restricted flood.
type mwoeProgram struct {
	parent     int
	parentEdge int
	pending    int
	best       edgeKey
	sentUp     bool
}

func (p *mwoeProgram) Init(*congest.Context) {}

func (p *mwoeProgram) Round(ctx *congest.Context, inbox []congest.Message) bool {
	for _, m := range inbox {
		if m.Kind == 12 {
			k := edgeKey{w: m.A, id: m.B}
			if k.less(p.best) {
				p.best = k
			}
			p.pending--
		}
	}
	if p.pending == 0 && !p.sentUp {
		p.sentUp = true
		if p.parent != -1 {
			ctx.Send(p.parentEdge, congest.Payload{Kind: 12, A: p.best.w, B: p.best.id})
		}
	}
	return p.sentUp
}

// minFloodRestricted floods the minimum of start[] over the subgraph whose
// edges are in allowed; returns per-vertex minimum of its connected cluster.
func minFloodRestricted(g *graph.Graph, allowed map[int]bool, start []int, opts []congest.Option, acc *congest.Metrics) ([]int, error) {
	progs := make([]*restrictedMinProgram, g.N())
	net := congest.NewNetwork(g, func(v int) congest.Program {
		p := &restrictedMinProgram{allowed: allowed, best: int64(start[v])}
		progs[v] = p
		return p
	}, opts...)
	m, err := net.Run(2*g.N() + 4)
	if err != nil {
		return nil, fmt.Errorf("mst: cluster min flood: %w", err)
	}
	accAdd(acc, m)
	out := make([]int, g.N())
	for v := range out {
		out[v] = int(progs[v].best)
	}
	return out, nil
}

type restrictedMinProgram struct {
	allowed   map[int]bool
	best      int64
	announced int64
	started   bool
}

func (p *restrictedMinProgram) Init(*congest.Context) { p.announced = -1 }

func (p *restrictedMinProgram) Round(ctx *congest.Context, inbox []congest.Message) bool {
	improved := !p.started
	p.started = true
	for _, m := range inbox {
		if m.Kind == 13 && m.A < p.best {
			p.best = m.A
			improved = true
		}
	}
	if improved && p.announced != p.best {
		p.announced = p.best
		for _, nb := range ctx.Neighbors() {
			if p.allowed[nb.Edge] {
				ctx.Send(nb.Edge, congest.Payload{Kind: 13, A: p.best})
			}
		}
		return false
	}
	return true
}

// bfsRestricted runs a BFS restricted to allowed edges, rooted at every
// vertex v with rootID[v] == v, producing per-vertex parent pointers within
// its cluster.
func bfsRestricted(g *graph.Graph, allowed map[int]bool, rootID []int, opts []congest.Option, acc *congest.Metrics) (parent, parentEdge []int, err error) {
	progs := make([]*restrictedBFSProgram, g.N())
	net := congest.NewNetwork(g, func(v int) congest.Program {
		p := &restrictedBFSProgram{allowed: allowed, isRoot: rootID[v] == v}
		progs[v] = p
		return p
	}, opts...)
	m, err := net.Run(2*g.N() + 4)
	if err != nil {
		return nil, nil, fmt.Errorf("mst: cluster BFS: %w", err)
	}
	accAdd(acc, m)
	parent = make([]int, g.N())
	parentEdge = make([]int, g.N())
	for v := range parent {
		if !progs[v].joined {
			return nil, nil, fmt.Errorf("mst: vertex %d not reached by cluster BFS", v)
		}
		parent[v] = progs[v].parent
		parentEdge[v] = progs[v].parentEdge
	}
	return parent, parentEdge, nil
}

type restrictedBFSProgram struct {
	allowed    map[int]bool
	isRoot     bool
	joined     bool
	parent     int
	parentEdge int
	sent       bool
}

func (p *restrictedBFSProgram) Init(ctx *congest.Context) {
	p.parent = -1
	p.parentEdge = -1
	if p.isRoot {
		p.joined = true
		p.send(ctx)
	}
}

func (p *restrictedBFSProgram) send(ctx *congest.Context) {
	p.sent = true
	for _, nb := range ctx.Neighbors() {
		if p.allowed[nb.Edge] {
			ctx.Send(nb.Edge, congest.Payload{Kind: 14})
		}
	}
}

func (p *restrictedBFSProgram) Round(ctx *congest.Context, inbox []congest.Message) bool {
	if !p.joined {
		best := -1
		for i, m := range inbox {
			if m.Kind != 14 || !p.allowed[m.Edge] {
				continue
			}
			if best == -1 || m.Edge < inbox[best].Edge {
				best = i
			}
		}
		if best != -1 {
			p.joined = true
			p.parent = inbox[best].From
			p.parentEdge = inbox[best].Edge
		}
	}
	if p.joined && !p.sent {
		p.send(ctx)
	}
	return p.joined
}
