package mst

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/rounds"
	"repro/internal/tree"
)

// FTMSTResult is the output of the fault-tolerant MST construction (§1.2 of
// the paper; Ghaffari–Parter): a sparse subgraph containing, for every edge
// e, an MST of G \ {e}.
type FTMSTResult struct {
	// MSTEdges is the underlying MST (edge IDs).
	MSTEdges []int
	// Replacement maps each MST edge ID to the minimum-weight non-tree edge
	// that reconnects the tree when it fails, or -1 if none exists (the
	// edge is a bridge of G).
	Replacement map[int]int
	// Edges is the full fault-tolerant subgraph: MST ∪ replacements.
	Edges []int
	// Rounds charges the Kutten–Peleg-based construction of the paper's
	// §3.2 ("combined with the FT-MST algorithm in [14] gives a
	// deterministic algorithm ... in O(D+√n·log*n) rounds").
	Rounds int64
}

// FaultTolerantMST computes the MST plus, for every tree edge, its
// replacement: the (weight, ID)-minimal non-tree edge crossing the cut the
// tree edge induces. The union is a 2(n-1)-edge subgraph that contains an
// MST of G\{e} for every single edge failure e (swap e for its
// replacement). Tree edges without replacements are bridges of G and are
// reported with Replacement[e] = -1.
func FaultTolerantMST(g *graph.Graph) (*FTMSTResult, error) {
	if g.N() == 0 {
		return &FTMSTResult{Replacement: map[int]int{}}, nil
	}
	if !g.Connected() {
		return nil, fmt.Errorf("mst: FaultTolerantMST requires a connected graph")
	}
	ids, _ := Kruskal(g)
	tr, err := tree.FromEdges(g, ids, 0)
	if err != nil {
		return nil, fmt.Errorf("mst: rooting MST: %w", err)
	}
	res := &FTMSTResult{
		MSTEdges:    ids,
		Replacement: make(map[int]int, len(ids)),
		Rounds:      rounds.MSTKuttenPeleg(g.N(), g.DiameterEstimate()),
	}
	inTree := tr.IsTreeEdge()
	for _, id := range ids {
		res.Replacement[id] = -1
	}

	// Order non-tree edges by (weight, ID); process them in order and let
	// each one claim every still-unclaimed tree edge on its path — since it
	// is the cheapest remaining crossing edge for exactly those cuts, this
	// assigns every tree edge its minimal replacement. Path walking uses
	// "skip climbed regions" pointers for near-linear total work.
	skip := make([]int, g.N()) // skip[v] = next unclaimed vertex toward root
	for v := range skip {
		skip[v] = v
	}
	var find func(v int) int
	find = func(v int) int {
		if skip[v] == v {
			return v
		}
		skip[v] = find(skip[v])
		return skip[v]
	}
	order := g.SortedEdgeIDsByWeight()
	for _, id := range order {
		if inTree[id] {
			continue
		}
		e := g.Edge(id)
		l := tr.LCA(e.U, e.V)
		for _, end := range [2]int{e.U, e.V} {
			v := find(end)
			for tr.Depth[v] > tr.Depth[l] {
				te := tr.ParentEdge[v]
				if res.Replacement[te] == -1 {
					res.Replacement[te] = id
				}
				skip[v] = tr.Parent[v]
				v = find(tr.Parent[v])
			}
		}
	}

	set := make(map[int]bool, 2*len(ids))
	for _, id := range ids {
		set[id] = true
	}
	for _, rep := range res.Replacement {
		if rep != -1 {
			set[rep] = true
		}
	}
	res.Edges = make([]int, 0, len(set))
	for id := range set {
		res.Edges = append(res.Edges, id)
	}
	sort.Ints(res.Edges)
	return res, nil
}
