package rounds

import "testing"

func TestAccountant(t *testing.T) {
	var a Accountant
	if a.Total() != 0 {
		t.Fatal("zero value should have zero total")
	}
	a.Charge("x", 10)
	a.Charge("y", 5)
	a.Charge("x", 7)
	if a.Total() != 22 {
		t.Fatalf("total = %d, want 22", a.Total())
	}
	bd := a.Breakdown()
	if len(bd) != 2 || bd[0].Label != "x" || bd[0].Rounds != 17 || bd[1].Label != "y" || bd[1].Rounds != 5 {
		t.Fatalf("breakdown = %v", bd)
	}
}

func TestAccountantPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var a Accountant
	a.Charge("bad", -1)
}

func TestLogStar(t *testing.T) {
	tests := []struct{ n, want int }{
		{1, 0}, {2, 1}, {4, 2}, {16, 3}, {65536, 4}, {1 << 20, 5},
	}
	for _, tc := range tests {
		if got := LogStar(tc.n); got != tc.want {
			t.Errorf("LogStar(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestSqrtCeil(t *testing.T) {
	tests := []struct {
		n    int
		want int64
	}{
		{0, 0}, {1, 1}, {2, 2}, {4, 2}, {5, 3}, {100, 10}, {101, 11},
	}
	for _, tc := range tests {
		if got := SqrtCeil(tc.n); got != tc.want {
			t.Errorf("SqrtCeil(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestLog2Ceil(t *testing.T) {
	tests := []struct {
		n    int
		want int64
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11},
	}
	for _, tc := range tests {
		if got := Log2Ceil(tc.n); got != tc.want {
			t.Errorf("Log2Ceil(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestBaselineModelsMonotone(t *testing.T) {
	// Sanity: every cost model grows in each parameter.
	if MSTKuttenPeleg(100, 10) >= MSTKuttenPeleg(10000, 10) {
		t.Error("MSTKuttenPeleg not growing in n")
	}
	if MSTKuttenPeleg(100, 10) >= MSTKuttenPeleg(100, 1000) {
		t.Error("MSTKuttenPeleg not growing in D")
	}
	if TAPBaselineCH(100, 10) >= TAPBaselineCH(100, 99) {
		t.Error("TAPBaselineCH not growing in hMST")
	}
	if PrimalDualBaseline(2, 100, 10) != 2000 {
		t.Errorf("PrimalDualBaseline = %d, want 2000", PrimalDualBaseline(2, 100, 10))
	}
	if ThurimellaBaseline(3, 100, 10) != 3*MSTKuttenPeleg(100, 10) {
		t.Error("ThurimellaBaseline should be k x Kutten-Peleg")
	}
}
