// Package rounds provides the round-cost accounting used for the paper's
// headline complexity claims. Simple building blocks (BFS, flooding, MST
// phases, label computation) run as real message-passing programs whose
// rounds are measured directly by internal/congest; the higher-level
// algorithms (TAP iterations, Aug_k iterations) consist of a fixed sequence
// of standard-technique primitives whose costs the paper states per
// iteration, and this package charges those costs using *measured* instance
// parameters (D, number of segments, segment diameters, message counts), so
// the reported totals scale exactly as a full message-level implementation
// would.
package rounds

import (
	"fmt"
	"math"
)

// Charge is one accounted cost item.
type Charge struct {
	Label  string
	Rounds int64
}

// Accountant accumulates charged rounds with a breakdown by label.
// The zero value is ready to use.
type Accountant struct {
	total   int64
	byLabel map[string]int64
	order   []string
}

// Charge adds r rounds under the given label. Negative charges panic: they
// always indicate a bug in a cost formula.
func (a *Accountant) Charge(label string, r int64) {
	if r < 0 {
		panic(fmt.Sprintf("rounds: negative charge %d for %q", r, label))
	}
	if a.byLabel == nil {
		a.byLabel = make(map[string]int64)
	}
	if _, ok := a.byLabel[label]; !ok {
		a.order = append(a.order, label)
	}
	a.byLabel[label] += r
	a.total += r
}

// Total returns the accumulated rounds.
func (a *Accountant) Total() int64 { return a.total }

// Breakdown returns the charges grouped by label, in first-charge order.
func (a *Accountant) Breakdown() []Charge {
	out := make([]Charge, 0, len(a.order))
	for _, l := range a.order {
		out = append(out, Charge{Label: l, Rounds: a.byLabel[l]})
	}
	return out
}

// LogStar returns the iterated base-2 logarithm of n (the number of times
// log2 must be applied before the value drops to at most 1), the factor in
// the Kutten–Peleg MST bound.
func LogStar(n int) int {
	count := 0
	x := float64(n)
	for x > 1 {
		x = math.Log2(x)
		count++
	}
	return count
}

// SqrtCeil returns ⌈√n⌉.
func SqrtCeil(n int) int64 {
	if n <= 0 {
		return 0
	}
	return int64(math.Ceil(math.Sqrt(float64(n))))
}

// Log2Ceil returns ⌈log2 n⌉ for n >= 1 (0 for n <= 1).
func Log2Ceil(n int) int64 {
	out := int64(0)
	v := 1
	for v < n {
		v <<= 1
		out++
	}
	return out
}

// MSTKuttenPeleg is the Kutten–Peleg MST round bound O(D + √n·log*n), the
// cost the paper charges for its MST constructions.
func MSTKuttenPeleg(n, diameter int) int64 {
	return int64(diameter) + SqrtCeil(n)*int64(LogStar(n))
}

// TAPBaselineCH is the round model of the prior weighted-TAP/2-ECSS
// algorithm [Censor-Hillel & Dory, OPODIS 2017]: O(hMST + √n·log*n).
func TAPBaselineCH(n, hMST int) int64 {
	return int64(hMST) + SqrtCeil(n)*int64(LogStar(n))
}

// PrimalDualBaseline is the round model of the prior weighted k-ECSS
// algorithm [Shadeh 2009]: O(k·n·D).
func PrimalDualBaseline(k, n, diameter int) int64 {
	return int64(k) * int64(n) * int64(diameter)
}

// ThurimellaBaseline is the round model of the unweighted k-ECSS
// 2-approximation [Thurimella, PODC 1995]: O(k·(D + √n·log*n)).
func ThurimellaBaseline(k, n, diameter int) int64 {
	return int64(k) * MSTKuttenPeleg(n, diameter)
}
