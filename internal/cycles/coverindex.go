package cycles

import (
	"repro/internal/tree"
)

// CoverIndex maintains the CoverCount of a fixed candidate-edge set under
// the Incremental engine's label updates, output-sensitively: instead of
// re-walking every candidate's O(height) tree path each iteration, it keeps
// a cached count per candidate and recomputes only the candidates whose
// count can actually have changed since the last Refresh.
//
// It rests on an exact decomposition of Claim 5.8. For a candidate e={u,v}
// with tree path P and per-label active-edge counts n_φ,
//
//	|S²_e| = Σ_L ne_L·(n_L − ne_L)
//	       = Σ_{t∈P} n_φ(t)  −  |P|  −  2·#{{t,t'} ⊆ P : φ(t) = φ(t')}
//
// (ne_L is the number of path edges labeled L; Σ ne_L·n_L telescopes into a
// per-edge sum, and Σ ne_L² = |P| + 2·same-label pairs). The first term is a
// Fenwick path sum over heavy-path-decomposition positions (O(log² n)); the
// last touches only labels carried by ≥ 2 tree edges — exactly the cut-pair
// labels, a set the engine keeps tiny — each tested against the path in
// O(1) by subtree position. So one recompute is O(log² n + cut pairs)
// instead of O(height).
//
// Change tracking hooks into the engine (labelHook): a candidate is dirty
// iff some tree edge on its path changed label or changed its stored
// n_φ(t) weight — found through the tree-edge→candidate adjacency the
// index builds once (O(Σ path lengths)). Everything is exact integer
// arithmetic: Refresh reproduces Incremental.CoverCount bit for bit, which
// the equivalence tests pin.
//
// A CoverIndex attaches to exactly one engine (NewCoverIndex registers the
// hook) and is not safe for concurrent use.
type CoverIndex struct {
	inc *Incremental
	hp  *tree.HPD

	// Candidates, by index: host endpoints, liveness, cached count.
	candU, candV []int32
	active       []bool
	ce           []int64

	// Tree-edge→candidate adjacency, CSR over child vertices.
	adjOff  []int32
	adjList []int32

	// Per tree edge (by child vertex): the stored Fenwick weight
	// w[x] = n_φ(φ(parent edge of x)), and the Fenwick tree over HPD
	// positions holding exactly these values.
	w   []int64
	fen []int64

	edgeChild []int32 // host edge ID -> child vertex, -1 for non-tree edges

	// Label -> child vertices of the tree edges carrying it, with O(1)
	// swap-delete via posInLabel; multi lists the labels carried by ≥ 2
	// tree edges (the only labels that can contribute same-label pairs).
	byLabel    map[uint64][]int32
	posInLabel []int32
	multi      []uint64
	multiPos   map[uint64]int

	dirty     []bool
	dirtyList []int32
}

// NewCoverIndex builds the index for the given candidate host edges over
// eng's tree and registers it as the engine's label hook (replacing any
// previous index). Candidates already active in the engine start
// deactivated. All live candidates start dirty, so the first Refresh
// computes every cover count.
func NewCoverIndex(eng *Incremental, candIDs []int) *CoverIndex {
	n := eng.G.N()
	cx := &CoverIndex{
		inc:        eng,
		hp:         tree.NewHPD(eng.Tree),
		candU:      make([]int32, len(candIDs)),
		candV:      make([]int32, len(candIDs)),
		active:     make([]bool, len(candIDs)),
		ce:         make([]int64, len(candIDs)),
		w:          make([]int64, n),
		fen:        make([]int64, n+1),
		edgeChild:  make([]int32, eng.G.M()),
		byLabel:    make(map[uint64][]int32, n),
		posInLabel: make([]int32, n),
		multiPos:   make(map[uint64]int, 8),
		dirty:      make([]bool, len(candIDs)),
		dirtyList:  make([]int32, 0, len(candIDs)),
	}
	for i := range cx.edgeChild {
		cx.edgeChild[i] = -1
	}
	for v := 0; v < n; v++ {
		if v != eng.Tree.Root {
			cx.edgeChild[eng.Tree.ParentEdge[v]] = int32(v)
		}
	}
	for i, id := range candIDs {
		e := eng.G.Edge(id)
		cx.candU[i], cx.candV[i] = int32(e.U), int32(e.V)
		if !eng.IsActive(id) {
			cx.active[i] = true
			cx.dirty[i] = true
			cx.dirtyList = append(cx.dirtyList, int32(i))
		}
	}
	// Tree-edge→candidate adjacency: count, prefix-sum, fill.
	counts := make([]int32, n)
	cx.eachPathVertex(func(x int32, _ int32) { counts[x]++ })
	cx.adjOff = make([]int32, n+1)
	for v := 0; v < n; v++ {
		cx.adjOff[v+1] = cx.adjOff[v] + counts[v]
	}
	cx.adjList = make([]int32, cx.adjOff[n])
	fill := make([]int32, n)
	copy(fill, cx.adjOff[:n])
	cx.eachPathVertex(func(x int32, ci int32) {
		cx.adjList[fill[x]] = ci
		fill[x]++
	})
	cx.rebuildLabels()
	eng.hook = cx
	return cx
}

// eachPathVertex calls fn(childVertex, candidateIndex) for every tree edge
// on every live candidate's path.
func (cx *CoverIndex) eachPathVertex(fn func(x, ci int32)) {
	for i := range cx.candU {
		if !cx.active[i] {
			continue
		}
		ci := int32(i)
		cx.hp.ForEachPathSegment(int(cx.candU[i]), int(cx.candV[i]), func(lo, hi int) {
			for p := lo; p <= hi; p++ {
				fn(int32(cx.hp.VertexAt(p)), ci)
			}
		})
	}
}

// rebuildLabels recomputes the label index, Fenwick weights and multi set
// from the engine's current state (construction and reset()).
func (cx *CoverIndex) rebuildLabels() {
	clear(cx.byLabel)
	clear(cx.multiPos)
	cx.multi = cx.multi[:0]
	clear(cx.fen)
	tr := cx.inc.Tree
	for v := range cx.w {
		cx.w[v] = 0
		if v == tr.Root {
			continue
		}
		lab := cx.inc.phi[tr.ParentEdge[v]]
		cx.labelAdd(lab, int32(v))
		wv := int64(cx.inc.nphi[lab])
		cx.w[v] = wv
		cx.fenAdd(cx.hp.Pos[v], wv)
	}
}

// labelAdd appends tree edge x to lab's list, maintaining the multi set.
func (cx *CoverIndex) labelAdd(lab uint64, x int32) {
	l := cx.byLabel[lab]
	cx.posInLabel[x] = int32(len(l))
	l = append(l, x)
	cx.byLabel[lab] = l
	if len(l) == 2 {
		cx.multiPos[lab] = len(cx.multi)
		cx.multi = append(cx.multi, lab)
	}
}

// labelRemove removes tree edge x from lab's list by swap-delete.
func (cx *CoverIndex) labelRemove(lab uint64, x int32) {
	l := cx.byLabel[lab]
	p := cx.posInLabel[x]
	last := len(l) - 1
	l[p] = l[last]
	cx.posInLabel[l[p]] = p
	l = l[:last]
	if last == 0 {
		delete(cx.byLabel, lab)
	} else {
		cx.byLabel[lab] = l
	}
	if last == 1 {
		mp := cx.multiPos[lab]
		lastLab := cx.multi[len(cx.multi)-1]
		cx.multi[mp] = lastLab
		cx.multiPos[lastLab] = mp
		cx.multi = cx.multi[:len(cx.multi)-1]
		delete(cx.multiPos, lab)
	}
}

// fenAdd adds delta at HPD position p (0-based).
func (cx *CoverIndex) fenAdd(p int, delta int64) {
	for i := p + 1; i < len(cx.fen); i += i & -i {
		cx.fen[i] += delta
	}
}

// fenPrefix returns the sum over positions [0, p] (0-based, inclusive).
func (cx *CoverIndex) fenPrefix(p int) int64 {
	var s int64
	for i := p + 1; i > 0; i -= i & -i {
		s += cx.fen[i]
	}
	return s
}

// setW moves tree edge x's stored weight to val, updating the Fenwick tree
// and dirtying the candidates covering x.
func (cx *CoverIndex) setW(x int32, val int64) {
	if cx.w[x] == val {
		return
	}
	cx.fenAdd(cx.hp.Pos[x], val-cx.w[x])
	cx.w[x] = val
	cx.markEdge(x)
}

// markEdge dirties every live candidate whose path covers tree edge x.
func (cx *CoverIndex) markEdge(x int32) {
	for _, ci := range cx.adjList[cx.adjOff[x]:cx.adjOff[x+1]] {
		if cx.active[ci] && !cx.dirty[ci] {
			cx.dirty[ci] = true
			cx.dirtyList = append(cx.dirtyList, ci)
		}
	}
}

// nphiChanged implements labelHook: every tree edge carrying lab stores
// n_lab, so each moves by delta.
func (cx *CoverIndex) nphiChanged(lab uint64, delta int) {
	for _, x := range cx.byLabel[lab] {
		cx.setW(x, cx.w[x]+int64(delta))
	}
}

// treeRelabeled implements labelHook: move the edge between label lists,
// restore its weight to the (already-adjusted) count of its new label, and
// dirty its candidates — a relabel can change the same-label pair term even
// when the weight happens not to move.
func (cx *CoverIndex) treeRelabeled(t int, old, new uint64) {
	x := cx.edgeChild[t]
	cx.labelRemove(old, x)
	cx.labelAdd(new, x)
	cx.setW(x, int64(cx.inc.nphi[new]))
	cx.markEdge(x)
}

// reset implements labelHook: the engine recounted wholesale, so rebuild
// the label state and dirty every live candidate.
func (cx *CoverIndex) reset() {
	cx.rebuildLabels()
	cx.dirtyList = cx.dirtyList[:0]
	for i := range cx.active {
		cx.dirty[i] = cx.active[i]
		if cx.active[i] {
			cx.dirtyList = append(cx.dirtyList, int32(i))
		}
	}
}

// coverCount answers |S²_e| for e={u,v} by the decomposition above.
func (cx *CoverIndex) coverCount(u, v int) int64 {
	var sum int64
	pathLen := 0
	cx.hp.ForEachPathSegment(u, v, func(lo, hi int) {
		sum += cx.fenPrefix(hi) - cx.fenPrefix(lo-1)
		pathLen += hi - lo + 1
	})
	var pairs int64
	for _, lab := range cx.multi {
		k := int64(0)
		for _, x := range cx.byLabel[lab] {
			if cx.hp.OnPath(int(x), u, v) {
				k++
			}
		}
		pairs += k * (k - 1) / 2
	}
	return sum - int64(pathLen) - 2*pairs
}

// Refresh recomputes the cover count of every dirty live candidate, calls
// fn(i, ce) for each, and clears the dirty set. After Refresh, Ce(i) equals
// Incremental.CoverCount for every live candidate.
func (cx *CoverIndex) Refresh(fn func(i int, ce int64)) {
	for _, ci := range cx.dirtyList {
		cx.dirty[ci] = false
		if !cx.active[ci] {
			continue
		}
		c := cx.coverCount(int(cx.candU[ci]), int(cx.candV[ci]))
		cx.ce[ci] = c
		fn(int(ci), c)
	}
	cx.dirtyList = cx.dirtyList[:0]
}

// Ce returns candidate i's cached cover count (current after a Refresh).
func (cx *CoverIndex) Ce(i int) int64 { return cx.ce[i] }

// Deactivate drops candidate i from all future dirty tracking — called when
// the solver selects it (the edge is about to become active in the engine,
// where a cover count no longer applies).
func (cx *CoverIndex) Deactivate(i int) { cx.active[i] = false }
