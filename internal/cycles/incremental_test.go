package cycles

import (
	"math/rand"
	"testing"

	"repro/internal/congest"
	"repro/internal/graph"
)

// snapshotPhi copies the labels of every active edge.
func snapshotPhi(inc *Incremental) map[int]uint64 {
	out := make(map[int]uint64, inc.ActiveCount())
	for _, id := range inc.activeIDs {
		out[id] = inc.Phi(id)
	}
	return out
}

// spanning2EC returns a 2-edge-connected random host graph and a base edge
// set: a spanning cycle through all vertices (2-edge-connected, spanning),
// leaving the remaining edges as AddEdges candidates.
func spanning2EC(n, extra int, seed int64) (*graph.Graph, []int, []int) {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	base := make([]int, 0, n)
	for v := 0; v < n; v++ {
		base = append(base, g.AddEdge(v, (v+1)%n, 1))
	}
	cands := make([]int, 0, extra)
	for len(cands) < extra {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		cands = append(cands, g.AddEdge(u, v, 1))
	}
	return g, base, cands
}

func TestIncrementalValidation(t *testing.T) {
	g, base, _ := spanning2EC(6, 2, 1)
	if _, err := NewIncremental(g, base, 0, rand.New(rand.NewSource(1)), nil); err == nil {
		t.Fatal("expected error for bits=0")
	}
	if _, err := NewIncremental(g, base, 32, nil, nil); err == nil {
		t.Fatal("expected error for nil rng")
	}
	// A non-spanning base (single edge) must be rejected — and must hand a
	// borrowed arena back instead of leaking it busy for the worker's life.
	ar := NewLabelArena()
	if _, err := NewIncremental(g, base[:1], 32, rand.New(rand.NewSource(1)), ar); err == nil {
		t.Fatal("expected error for non-spanning base")
	}
	inc, err := NewIncremental(g, base, 32, rand.New(rand.NewSource(1)), ar)
	if err != nil {
		t.Fatal(err)
	}
	if inc.arena == nil {
		t.Fatal("arena leaked busy by the failed construction")
	}
	inc.Release()
}

func TestIncrementalInitMatchesComputeLabels(t *testing.T) {
	// With the same tree and the same seed, the engine's base labeling must
	// be bit-for-bit the one-shot ComputeLabels labeling: both draw the
	// non-tree labels in owner-vertex order.
	rng := rand.New(rand.NewSource(3))
	g := graph.RandomKConnected(18, 2, 12, rng, graph.UnitWeights())
	all := make([]int, g.M())
	for i := range all {
		all[i] = i
	}
	inc, err := NewIncremental(g, all, 48, rand.New(rand.NewSource(7)), nil)
	if err != nil {
		t.Fatal(err)
	}
	l, err := ComputeLabels(g, inc.Tree, 48, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for id, lab := range l.Phi {
		if inc.Phi(id) != lab {
			t.Fatalf("edge %d: engine %x, ComputeLabels %x", id, inc.Phi(id), lab)
		}
	}
	if got, want := inc.ThreeEdgeConnected(), l.ThreeEdgeConnectedWith(); got != want {
		t.Fatalf("predicate: engine %v, labeling %v", got, want)
	}
	if inc.Metrics.Rounds != l.Metrics.Rounds {
		t.Fatalf("measured rounds differ: %d vs %d", inc.Metrics.Rounds, l.Metrics.Rounds)
	}
}

func TestIncrementalAddEdgesMatchesRelabelScan(t *testing.T) {
	// The tentpole invariant: after any AddEdges sequence, the incremental
	// XOR state equals the retained from-scratch distributed scan —
	// bit-for-bit, and the rebuilt counts agree with the maintained ones.
	for _, seed := range []int64{1, 2, 3} {
		g, base, cands := spanning2EC(20, 30, seed)
		inc, err := NewIncremental(g, base, 48, rand.New(rand.NewSource(seed*100)), nil)
		if err != nil {
			t.Fatal(err)
		}
		for len(cands) > 0 {
			k := 3
			if k > len(cands) {
				k = len(cands)
			}
			batch := cands[:k]
			cands = cands[k:]
			inc.AddEdges(batch)
			incPhi := snapshotPhi(inc)
			incBad := inc.nBad
			if _, err := inc.RelabelScan(); err != nil {
				t.Fatal(err)
			}
			for id, lab := range incPhi {
				if inc.Phi(id) != lab {
					t.Fatalf("seed %d: edge %d: incremental %x, scan %x", seed, id, lab, inc.Phi(id))
				}
			}
			if inc.nBad != incBad {
				t.Fatalf("seed %d: maintained nBad %d, rebuilt %d", seed, incBad, inc.nBad)
			}
		}
	}
}

func TestIncrementalCoverCountMatchesBruteForce(t *testing.T) {
	// Claim 5.8 on the active subgraph: CoverCount of a prospective edge
	// equals the number of cut pairs of H∪A it would cover.
	rng := rand.New(rand.NewSource(9))
	g, base, cands := spanning2EC(12, 10, 9)
	inc, err := NewIncremental(g, base, 48, rand.New(rand.NewSource(17)), nil)
	if err != nil {
		t.Fatal(err)
	}
	inc.AddEdges(cands[:4])
	active := append(append([]int(nil), base...), cands[:4]...)
	sub, _ := g.SubgraphOf(active)
	pairs := sub.CutPairs()
	for probe := 0; probe < 15; probe++ {
		u, v := rng.Intn(g.N()), rng.Intn(g.N())
		if u == v {
			continue
		}
		var want int64
		for _, p := range pairs {
			h2 := sub.Clone()
			h2.AddEdge(u, v, 1)
			rem, _ := h2.SubgraphWithout(map[int]bool{p.A: true, p.B: true})
			if rem.Connected() {
				want++
			}
		}
		if got := inc.CoverCount(u, v); got != want {
			t.Fatalf("CoverCount(%d,%d) = %d, want %d", u, v, got, want)
		}
	}
}

func TestIncrementalPredicateAgainstOracle(t *testing.T) {
	// Grow H∪A edge by edge; at every step the Claim 5.10 predicate must
	// agree with the exact 3-edge-connectivity oracle (48-bit labels make
	// collisions negligible at these sizes).
	for _, seed := range []int64{4, 5} {
		g, base, cands := spanning2EC(10, 25, seed)
		inc, err := NewIncremental(g, base, 48, rand.New(rand.NewSource(seed)), nil)
		if err != nil {
			t.Fatal(err)
		}
		active := append([]int(nil), base...)
		check := func() {
			sub, _ := g.SubgraphOf(active)
			if got, want := inc.ThreeEdgeConnected(), sub.IsKEdgeConnected(3); got != want {
				t.Fatalf("seed %d, |A|=%d: predicate %v, oracle %v",
					seed, len(active)-len(base), got, want)
			}
		}
		check()
		for _, id := range cands {
			inc.AddEdges([]int{id})
			active = append(active, id)
			check()
		}
	}
}

func TestIncrementalExecutorsAgree(t *testing.T) {
	g, base, cands := spanning2EC(16, 20, 11)
	run := func(opts ...congest.Option) map[int]uint64 {
		inc, err := NewIncremental(g, base, 48, rand.New(rand.NewSource(5)), nil, opts...)
		if err != nil {
			t.Fatal(err)
		}
		inc.AddEdges(cands)
		return snapshotPhi(inc)
	}
	seq := run()
	par := run(congest.WithExecutor(congest.ParallelExecutor{}))
	for id, lab := range seq {
		if par[id] != lab {
			t.Fatalf("edge %d: labels differ across executors", id)
		}
	}
}

func TestIncrementalArena(t *testing.T) {
	ar := NewLabelArena()
	g1, base1, cands1 := spanning2EC(14, 12, 21)
	run := func(ar *Arena) map[int]uint64 {
		inc, err := NewIncremental(g1, base1, 48, rand.New(rand.NewSource(6)), ar)
		if err != nil {
			t.Fatal(err)
		}
		defer inc.Release()
		inc.AddEdges(cands1)
		return snapshotPhi(inc)
	}
	fresh := run(nil)
	pooled1 := run(ar)
	pooled2 := run(ar) // recycled buffers must not leak state
	for id, lab := range fresh {
		if pooled1[id] != lab || pooled2[id] != lab {
			t.Fatalf("edge %d: arena runs diverge from unpooled", id)
		}
	}
	// A busy arena is not handed out twice: the nested engine silently
	// falls back to fresh allocation and still works.
	inc1, err := NewIncremental(g1, base1, 48, rand.New(rand.NewSource(6)), ar)
	if err != nil {
		t.Fatal(err)
	}
	inc2, err := NewIncremental(g1, base1, 48, rand.New(rand.NewSource(6)), ar)
	if err != nil {
		t.Fatal(err)
	}
	if inc2.arena != nil {
		t.Fatal("nested engine borrowed a busy arena")
	}
	inc2.AddEdges(cands1)
	inc1.AddEdges(cands1)
	for _, id := range cands1 {
		if inc1.Phi(id) != inc2.Phi(id) {
			t.Fatalf("edge %d: pooled and fallback engines diverge", id)
		}
	}
	inc1.Release()
	// After release the arena is free again.
	if inc3, err := NewIncremental(g1, base1, 48, rand.New(rand.NewSource(6)), ar); err != nil {
		t.Fatal(err)
	} else if inc3.arena == nil {
		t.Fatal("released arena was not reused")
	}
}

func TestIncrementalAddEdgesPanicsOnDouble(t *testing.T) {
	g, base, cands := spanning2EC(8, 4, 2)
	inc, err := NewIncremental(g, base, 48, rand.New(rand.NewSource(1)), nil)
	if err != nil {
		t.Fatal(err)
	}
	inc.AddEdges(cands[:1])
	defer func() {
		if recover() == nil {
			t.Fatal("double activation did not panic")
		}
	}()
	inc.AddEdges(cands[:1])
}
