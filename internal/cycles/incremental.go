package cycles

import (
	"fmt"
	"math/rand"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/tree"
)

// Arena recycles an Incremental engine's scratch across repeated
// NewIncremental calls, in the style of congest.NetworkArena: the 3-ECSS
// solvers build one engine per solve, and pool workers / experiment sweeps
// run thousands of solves over same-sized graphs, so the per-edge label and
// activation tables and the per-label count maps are worth reusing.
//
// Ownership rules (mirroring congest.NetworkArena):
//
//   - At most one live engine may borrow an arena's buffers at a time.
//     NewIncremental borrows them if they are free and silently falls back
//     to fresh allocation if they are not — nesting is safe, just not
//     accelerated.
//   - Release returns the buffers; the engine must not be used afterwards
//     (the next NewIncremental on the arena will overwrite them).
//   - An arena is not safe for concurrent use. Use one arena per goroutine
//     (pool workers each own one, next to their simulation arena).
//
//kecss:arena
type Arena struct {
	phi       []uint64
	active    []bool
	isTree    []bool
	activeIDs []int
	nphi      map[uint64]int
	treeCnt   map[uint64]int
	onPath    map[uint64]int64
	deg       []int
	arcs      []graph.Arc
	adj       [][]graph.Arc
	queue     []int
	owned     [][]int
	busy      bool
}

// NewLabelArena returns an empty arena. Buffers are allocated lazily, sized
// by the largest graph labeled through it.
func NewLabelArena() *Arena { return &Arena{} }

// growSlice returns buf resized to length n, reusing its backing array when
// large enough. Contents are unspecified; attachScratch clears the tables
// whose stale contents could be observed.
func growSlice[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// Incremental maintains the cycle-space labeling of a growing subgraph
// H ∪ A of a host graph G, over a spanning tree of the base H that is fixed
// for the engine's whole lifetime.
//
// The contract, and how it squares with §5:
//
//   - NewIncremental computes a BFS tree of H and runs the genuine
//     distributed label scan (Lemma 5.5) once, on the simulator, over the
//     host network; Metrics records its measured cost.
//   - AddEdges activates further host edges: each gets a fresh uniform
//     b-bit label which is XOR-ed into every tree edge on its
//     fundamental-cycle path. Because a tree edge's label is by definition
//     the XOR of the labels of the non-tree edges covering it, the result
//     is bit-for-bit the labeling the full scan would produce with the same
//     per-edge draws — deterministically, not just w.h.p. (RelabelScan is
//     that full scan, retained as the reference path, and the equivalence
//     tests pin the two against each other.)
//   - The per-label counts n_φ (NPhi of §5.3) and the Claim 5.10
//     termination predicate are maintained under every update, never
//     recomputed: activating one edge costs O(height) count adjustments.
//
// Unlike the per-iteration resampling of the paper's exposition, labels
// persist across AddEdges calls, so a label collision (probability ~m²/2^b
// per solve — negligible at the default 48-bit width) persists for the
// engine's lifetime: RelabelScan resamples nothing and reproduces the same
// state, so only the solver's exact verification clears it. The error stays
// one-sided (Claim 5.10 can falsely reject, never falsely certify); the
// cost of a persistent collision is extra augmentation edges, not
// incorrectness. An Incremental is not safe for concurrent use. It is the
// borrower of its Arena: attachScratch marks the arena busy, Release
// returns it, so the engine's lifetime is one loan.
//
//kecss:arena-owner
type Incremental struct {
	G    *graph.Graph
	Tree *tree.Rooted
	Bits int
	// Metrics is the simulator cost of the initial distributed base scan
	// (RelabelScan returns, but does not accumulate here, its own cost).
	Metrics congest.Metrics

	mask uint64
	rng  *rand.Rand

	phi       []uint64 // by host edge ID; meaningful only where active
	active    []bool   // by host edge ID
	isTree    []bool   // by host edge ID
	activeIDs []int    // activation order: base first, then AddEdges order

	nphi    map[uint64]int // label -> active-edge count (n_φ)
	treeCnt map[uint64]int // label -> tree-edge count
	nBad    int            // distinct labels with treeCnt>0 && nphi>1

	onPath map[uint64]int64 // CoverCount scratch
	arena  *Arena

	// hook observes label-state changes for the CoverIndex (nil otherwise).
	// Suspended while rebuildCounts replays the active set, which instead
	// ends with a single reset() notification.
	hook          labelHook
	hookSuspended bool
}

// labelHook receives the engine's label-state deltas, in the order they are
// applied. The CoverIndex implements it to keep per-candidate cover counts
// current without rescanning.
type labelHook interface {
	// nphiChanged fires after the active-edge count of lab moved by delta.
	nphiChanged(lab uint64, delta int)
	// treeRelabeled fires after tree edge t (a host edge ID) changed label
	// from old to new, with all count adjustments already applied.
	treeRelabeled(t int, old, new uint64)
	// reset fires after a wholesale recount (construction, RelabelScan):
	// incremental deltas were not reported, rebuild from current state.
	reset()
}

// NewIncremental builds the incremental labeling of the base subgraph of g
// given by edge IDs base (which must span g and be connected — the 3-ECSS
// solvers pass their 2-edge-connected base H): it roots a BFS tree of the
// base at vertex 0, samples non-tree labels, and runs the distributed label
// scan over the host network. bits must be in [1, 64]; rng drives all label
// sampling (here and in AddEdges). ar may be nil for unpooled scratch.
func NewIncremental(g *graph.Graph, base []int, bits int, rng *rand.Rand, ar *Arena, simOpts ...congest.Option) (*Incremental, error) {
	if bits < 1 || bits > 64 {
		return nil, fmt.Errorf("cycles: bits must be in [1,64], got %d", bits)
	}
	if rng == nil {
		return nil, fmt.Errorf("cycles: rng is required")
	}
	inc := &Incremental{G: g, Bits: bits, mask: labelMask(bits), rng: rng}
	inc.attachScratch(ar)

	tr, err := inc.baseTree(base)
	if err != nil {
		inc.Release()   // hand the arena back: a leaked busy flag would
		return nil, err // silently disable pooling for the worker's lifetime
	}
	inc.Tree = tr
	for v := 0; v < g.N(); v++ {
		if v != tr.Root {
			inc.isTree[tr.ParentEdge[v]] = true
		}
	}

	// Sample non-tree base labels at the smaller endpoint (deterministic
	// owner), in owner-vertex order — the draw order of ComputeLabels.
	owned := inc.ownedLists(base)
	for v := 0; v < g.N(); v++ {
		for _, e := range owned[v] {
			inc.phi[e] = inc.rng.Uint64() & inc.mask
		}
	}
	for _, id := range base {
		inc.active[id] = true
		inc.activeIDs = append(inc.activeIDs, id)
	}
	progs, metrics, err := runLabelScan(g, tr, owned, func(e int) uint64 { return inc.phi[e] }, simOpts)
	if err != nil {
		inc.Release()
		return nil, err
	}
	inc.Metrics = metrics
	for v := 0; v < g.N(); v++ {
		if v != tr.Root {
			inc.phi[tr.ParentEdge[v]] = progs[v].upLabel
		}
	}
	inc.rebuildCounts()
	return inc, nil
}

// attachScratch points the engine's tables at arena-recycled or fresh
// memory, cleared for a host with g.M() edges.
func (inc *Incremental) attachScratch(ar *Arena) {
	m := inc.G.M()
	n := inc.G.N()
	if ar != nil && !ar.busy {
		ar.busy = true
		inc.arena = ar
		ar.phi = growSlice(ar.phi, m)
		ar.active = growSlice(ar.active, m)
		ar.isTree = growSlice(ar.isTree, m)
		ar.deg = growSlice(ar.deg, n)
		ar.arcs = growSlice(ar.arcs, 2*m)
		ar.adj = growSlice(ar.adj, n)
		ar.queue = growSlice(ar.queue, n)
		ar.owned = growSlice(ar.owned, n)
		if ar.nphi == nil {
			ar.nphi = make(map[uint64]int, 64)
			ar.treeCnt = make(map[uint64]int, 64)
			ar.onPath = make(map[uint64]int64, 16)
		}
		clear(ar.active)
		clear(ar.isTree)
		clear(ar.nphi)
		clear(ar.treeCnt)
		inc.phi, inc.active, inc.isTree = ar.phi, ar.active, ar.isTree
		inc.activeIDs = ar.activeIDs[:0]
		inc.nphi, inc.treeCnt, inc.onPath = ar.nphi, ar.treeCnt, ar.onPath
		return
	}
	inc.phi = make([]uint64, m)
	inc.active = make([]bool, m)
	inc.isTree = make([]bool, m)
	inc.nphi = make(map[uint64]int, 64)
	inc.treeCnt = make(map[uint64]int, 64)
	inc.onPath = make(map[uint64]int64, 16)
}

// Release returns the engine's scratch to its arena (a no-op for unpooled
// engines). The engine must not be used afterwards.
func (inc *Incremental) Release() {
	if inc.arena == nil {
		return
	}
	inc.arena.activeIDs = inc.activeIDs[:0]
	inc.arena.busy = false
	inc.arena = nil
}

// baseTree roots a BFS tree of the base subgraph at vertex 0 without
// materializing the subgraph: adjacency is carved from (arena) scratch, and
// only the parent arrays the tree retains are freshly allocated.
func (inc *Incremental) baseTree(base []int) (*tree.Rooted, error) {
	g := inc.G
	n := g.N()
	var deg, queue []int
	var arcs []graph.Arc
	var adj [][]graph.Arc
	if inc.arena != nil {
		deg, queue, arcs, adj = inc.arena.deg, inc.arena.queue, inc.arena.arcs, inc.arena.adj
	} else {
		deg = make([]int, n)
		queue = make([]int, n)
		arcs = make([]graph.Arc, 2*len(base))
		adj = make([][]graph.Arc, n)
	}
	for v := 0; v < n; v++ {
		deg[v] = 0
	}
	for _, id := range base {
		e := g.Edge(id)
		deg[e.U]++
		deg[e.V]++
	}
	off := 0
	for v := 0; v < n; v++ {
		adj[v] = arcs[off : off : off+deg[v]]
		off += deg[v]
	}
	for _, id := range base {
		e := g.Edge(id)
		adj[e.U] = append(adj[e.U], graph.Arc{To: e.V, Edge: id})
		adj[e.V] = append(adj[e.V], graph.Arc{To: e.U, Edge: id})
	}
	// The tree keeps these slices, so they cannot come from the arena.
	parent := make([]int, n)
	parentEdge := make([]int, n)
	for v := range parent {
		parent[v] = -2
		parentEdge[v] = -1
	}
	parent[0] = -1
	queue = append(queue[:0], 0)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, a := range adj[v] {
			if parent[a.To] == -2 {
				parent[a.To] = v
				parentEdge[a.To] = a.Edge
				queue = append(queue, a.To)
			}
		}
	}
	for v, p := range parent {
		if p == -2 {
			return nil, fmt.Errorf("cycles: base subgraph does not span vertex %d", v)
		}
	}
	return tree.FromParents(0, parent, parentEdge)
}

// BFSHeight returns the height of the BFS tree, rooted at vertex 0, of the
// subgraph of g given by edge IDs base — the height a rebuilt labeling
// engine over that subgraph would have — or -1 if base does not span g.
// The 3-ECSS rebalance knob probes with this (O(n + |base|), plain
// allocation: the probe runs at most once per iteration, and only while
// the current tree is tall) before paying for an engine rebuild.
func BFSHeight(g *graph.Graph, base []int) int {
	n := g.N()
	deg := make([]int, n)
	for _, id := range base {
		e := g.Edge(id)
		deg[e.U]++
		deg[e.V]++
	}
	arcs := make([]graph.Arc, 2*len(base))
	adj := make([][]graph.Arc, n)
	off := 0
	for v := 0; v < n; v++ {
		adj[v] = arcs[off : off : off+deg[v]]
		off += deg[v]
	}
	for _, id := range base {
		e := g.Edge(id)
		adj[e.U] = append(adj[e.U], graph.Arc{To: e.V, Edge: id})
		adj[e.V] = append(adj[e.V], graph.Arc{To: e.U, Edge: id})
	}
	depth := make([]int, n)
	for v := range depth {
		depth[v] = -1
	}
	depth[0] = 0
	queue := make([]int, 1, n)
	height := 0
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, a := range adj[v] {
			if depth[a.To] == -1 {
				depth[a.To] = depth[v] + 1
				if depth[a.To] > height {
					height = depth[a.To]
				}
				queue = append(queue, a.To)
			}
		}
	}
	if len(queue) != n {
		return -1
	}
	return height
}

// ownedLists distributes the non-tree edges of ids to their smaller
// endpoint (the announcing owner of the distributed scan).
func (inc *Incremental) ownedLists(ids []int) [][]int {
	n := inc.G.N()
	var deg []int
	var owned [][]int
	if inc.arena != nil {
		deg, owned = inc.arena.deg, inc.arena.owned
	} else {
		deg = make([]int, n)
		owned = make([][]int, n)
	}
	for v := 0; v < n; v++ {
		deg[v] = 0
	}
	ownerOf := func(id int) int {
		e := inc.G.Edge(id)
		if e.V < e.U {
			return e.V
		}
		return e.U
	}
	nonTree := 0
	for _, id := range ids {
		if inc.isTree[id] {
			continue
		}
		deg[ownerOf(id)]++
		nonTree++
	}
	flat := make([]int, nonTree)
	off := 0
	for v := 0; v < n; v++ {
		owned[v] = flat[off : off : off+deg[v]]
		off += deg[v]
	}
	for _, id := range ids {
		if inc.isTree[id] {
			continue
		}
		o := ownerOf(id)
		owned[o] = append(owned[o], id)
	}
	return owned
}

// rebuildCounts recomputes nphi/treeCnt/nBad from the current labels — used
// at construction and after a reference rescan. The hook is suspended for
// the replay and handed one reset() instead.
func (inc *Incremental) rebuildCounts() {
	clear(inc.nphi)
	clear(inc.treeCnt)
	inc.nBad = 0
	inc.hookSuspended = true
	for _, id := range inc.activeIDs {
		dTree := 0
		if inc.isTree[id] {
			dTree = 1
		}
		inc.adjust(inc.phi[id], 1, dTree)
	}
	inc.hookSuspended = false
	if inc.hook != nil {
		inc.hook.reset()
	}
}

// isBad reports whether label lab currently violates Claim 5.10: it sits on
// a tree edge and on at least one other active edge.
func (inc *Incremental) isBad(lab uint64) bool {
	return inc.treeCnt[lab] > 0 && inc.nphi[lab] > 1
}

// adjust moves label lab's active-edge count by dAll and its tree-edge
// count by dTree, keeping the bad-label tally exact.
//
//kecss:alloc-free
func (inc *Incremental) adjust(lab uint64, dAll, dTree int) {
	if inc.isBad(lab) {
		inc.nBad--
	}
	if c := inc.nphi[lab] + dAll; c > 0 {
		inc.nphi[lab] = c
	} else {
		delete(inc.nphi, lab)
	}
	if dTree != 0 {
		if c := inc.treeCnt[lab] + dTree; c > 0 {
			inc.treeCnt[lab] = c
		} else {
			delete(inc.treeCnt, lab)
		}
	}
	if inc.isBad(lab) {
		inc.nBad++
	}
	if inc.hook != nil && !inc.hookSuspended && dAll != 0 {
		inc.hook.nphiChanged(lab, dAll)
	}
}

// AddEdges activates the given (inactive, non-tree) host edges: each gets a
// fresh uniform b-bit label, XOR-ed into every tree edge on its
// fundamental-cycle tree path, with all per-label counts maintained.
// O(|ids|·height), allocation-free warm. Labels are drawn in ids order.
//
//kecss:alloc-free
func (inc *Incremental) AddEdges(ids []int) {
	for _, id := range ids {
		if inc.active[id] {
			panic(fmt.Sprintf("cycles: edge %d activated twice", id))
		}
		lab := inc.rng.Uint64() & inc.mask
		e := inc.G.Edge(id)
		inc.phi[id] = lab
		inc.active[id] = true
		inc.activeIDs = append(inc.activeIDs, id)
		inc.adjust(lab, 1, 0)
		inc.Tree.ForEachPathEdge(e.U, e.V, func(t int) {
			old := inc.phi[t]
			inc.adjust(old, -1, -1)
			inc.phi[t] = old ^ lab
			inc.adjust(old^lab, 1, 1)
			if inc.hook != nil {
				inc.hook.treeRelabeled(t, old, old^lab)
			}
		})
	}
}

// ThreeEdgeConnected is the Claim 5.10 termination predicate over the
// active subgraph: true iff n_φ(t) = 1 for every tree edge t. O(1) — the
// bad-label tally is maintained under every update. One-sided like
// Labeling.ThreeEdgeConnectedWith: true is always correct, false is correct
// w.h.p. in the label width.
func (inc *Incremental) ThreeEdgeConnected() bool { return inc.nBad == 0 }

// CoverCount returns |S²_e| (Claim 5.8) for a prospective edge e = {u, v}
// of the host not yet active: the number of cut pairs of the active
// subgraph that activating e would cover. O(height), allocation-free warm.
//
//kecss:alloc-free
func (inc *Incremental) CoverCount(u, v int) int64 {
	clear(inc.onPath)
	inc.Tree.ForEachPathEdge(u, v, func(t int) {
		inc.onPath[inc.phi[t]]++
	})
	var total int64
	for lab, ne := range inc.onPath {
		total += ne * (int64(inc.nphi[lab]) - ne)
	}
	return total
}

// IsActive reports whether the host edge is part of the labeled subgraph.
func (inc *Incremental) IsActive(id int) bool { return inc.active[id] }

// ActiveCount returns the number of active edges.
func (inc *Incremental) ActiveCount() int { return len(inc.activeIDs) }

// Phi returns the current label of an active host edge.
func (inc *Incremental) Phi(id int) uint64 { return inc.phi[id] }

// RelabelScan is the retained from-scratch reference path: it re-runs the
// full distributed label scan of Lemma 5.5 over the active subgraph (same
// tree, same non-tree labels — nothing is resampled), overwrites the tree
// labels with the scan's result, rebuilds the per-label counts, and returns
// the measured simulator rounds. Because a tree edge's label is the XOR of
// its covering non-tree labels, the scan reproduces the incrementally
// maintained state bit-for-bit; the solvers run it once per iteration when
// ThreeECSSOptions.ReferenceLabeling is set, and the equivalence tests pin
// it against AddEdges.
func (inc *Incremental) RelabelScan(simOpts ...congest.Option) (int64, error) {
	owned := inc.ownedLists(inc.activeIDs)
	progs, metrics, err := runLabelScan(inc.G, inc.Tree, owned, func(e int) uint64 { return inc.phi[e] }, simOpts)
	if err != nil {
		return 0, err
	}
	for v := 0; v < inc.G.N(); v++ {
		if v != inc.Tree.Root {
			inc.phi[inc.Tree.ParentEdge[v]] = progs[v].upLabel
		}
	}
	inc.rebuildCounts()
	return int64(metrics.Rounds), nil
}
