package cycles

import (
	"math/rand"
	"testing"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/tree"
)

func bfsTree(t *testing.T, g *graph.Graph) *tree.Rooted {
	t.Helper()
	tr, err := tree.FromBFS(g.BFS(0))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func labelsFor(t *testing.T, g *graph.Graph, bits int, seed int64) *Labeling {
	t.Helper()
	l, err := ComputeLabels(g, bfsTree(t, g), bits, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func pairSet(pairs []graph.CutPair) map[graph.CutPair]bool {
	s := make(map[graph.CutPair]bool, len(pairs))
	for _, p := range pairs {
		s[p] = true
	}
	return s
}

func TestComputeLabelsValidation(t *testing.T) {
	g := graph.Cycle(4, graph.UnitWeights())
	tr := bfsTree(t, g)
	if _, err := ComputeLabels(g, tr, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected error for bits=0")
	}
	if _, err := ComputeLabels(g, tr, 65, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected error for bits=65")
	}
	if _, err := ComputeLabels(g, tr, 32, nil); err == nil {
		t.Fatal("expected error for nil rng")
	}
}

func TestProperty51OnKnownGraphs(t *testing.T) {
	// With wide labels, φ(e)=φ(f) iff {e,f} is a cut pair — compare against
	// the brute-force enumeration.
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"cycle6", graph.Cycle(6, graph.UnitWeights())},
		{"figure2", graph.PaperFigure2Graph()},
		{"grid", graph.Grid(4, 4, graph.UnitWeights())},
		{"harary3", graph.Harary(3, 10, graph.UnitWeights())},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if !tc.g.TwoEdgeConnected() {
				t.Fatal("test graph must be 2-edge-connected")
			}
			l := labelsFor(t, tc.g, 48, 7)
			got := pairSet(l.CutPairs())
			want := pairSet(tc.g.CutPairs())
			if len(got) != len(want) {
				t.Fatalf("got %d cut pairs, want %d", len(got), len(want))
			}
			for p := range want {
				if !got[p] {
					t.Errorf("missing cut pair %v", p)
				}
			}
		})
	}
}

func TestProperty51Random(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		g := graph.RandomKConnected(10+rng.Intn(15), 2, rng.Intn(10), rng, graph.UnitWeights())
		l := labelsFor(t, g, 48, int64(trial))
		got := pairSet(l.CutPairs())
		want := pairSet(g.CutPairs())
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d pairs, want %d", trial, len(got), len(want))
		}
		for p := range want {
			if !got[p] {
				t.Fatalf("trial %d: missing %v", trial, p)
			}
		}
	}
}

func TestOneSidedErrorHoldsAtAnyWidth(t *testing.T) {
	// True cut pairs must share labels even with 1-bit labels (the error is
	// only in the other direction).
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomKConnected(12, 2, 5, rng, graph.UnitWeights())
		l := labelsFor(t, g, 1, int64(trial))
		for _, p := range g.CutPairs() {
			if l.Phi[p.A] != l.Phi[p.B] {
				t.Fatalf("trial %d: cut pair %v has different labels", trial, p)
			}
		}
	}
}

func TestNarrowLabelsProduceFalsePositives(t *testing.T) {
	// With 1-bit labels on a graph with many non-cut pairs, collisions are
	// overwhelmingly likely — checks the failure mode is real, which is what
	// E8 measures.
	g := graph.Harary(4, 16, graph.UnitWeights()) // 4-edge-connected: no cut pairs at all
	collisions := 0
	for seed := int64(0); seed < 10; seed++ {
		l := labelsFor(t, g, 1, seed)
		collisions += len(l.CutPairs())
	}
	if collisions == 0 {
		t.Fatal("expected 1-bit label collisions on a cut-pair-free graph")
	}
	// And with 48 bits there should be none.
	l := labelsFor(t, g, 48, 3)
	if extra := len(l.CutPairs()); extra != 0 {
		t.Fatalf("48-bit labels produced %d spurious pairs", extra)
	}
}

func TestLabelScanRoundsAreTreeHeight(t *testing.T) {
	g := graph.Grid(3, 20, graph.UnitWeights())
	tr := bfsTree(t, g)
	l, err := ComputeLabels(g, tr, 32, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if l.Metrics.Rounds > tr.Height()+3 {
		t.Fatalf("label rounds = %d, want <= height+3 = %d", l.Metrics.Rounds, tr.Height()+3)
	}
}

func TestLabelScanParallelExecutorMatches(t *testing.T) {
	g := graph.PaperFigure2Graph()
	tr := bfsTree(t, g)
	a, err := ComputeLabels(g, tr, 32, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ComputeLabels(g, tr, 32, rand.New(rand.NewSource(9)),
		congest.WithExecutor(congest.ParallelExecutor{}))
	if err != nil {
		t.Fatal(err)
	}
	for id, la := range a.Phi {
		if b.Phi[id] != la {
			t.Fatalf("edge %d: labels differ across executors", id)
		}
	}
}

func TestTreeEdgeLabelIsXOROfCoveringEdges(t *testing.T) {
	// Definition check: φ(t) = XOR of φ(e) over non-tree e whose tree path
	// contains t.
	rng := rand.New(rand.NewSource(21))
	g := graph.RandomKConnected(15, 2, 10, rng, graph.UnitWeights())
	tr := bfsTree(t, g)
	l, err := ComputeLabels(g, tr, 64, rand.New(rand.NewSource(22)))
	if err != nil {
		t.Fatal(err)
	}
	inTree := tr.IsTreeEdge()
	for v := 0; v < g.N(); v++ {
		if v == tr.Root {
			continue
		}
		te := tr.ParentEdge[v]
		var want uint64
		for _, e := range g.Edges() {
			if inTree[e.ID] {
				continue
			}
			for _, pt := range tr.PathEdges(e.U, e.V) {
				if pt == te {
					want ^= l.Phi[e.ID]
					break
				}
			}
		}
		if l.Phi[te] != want {
			t.Fatalf("tree edge %d: label %x, want %x", te, l.Phi[te], want)
		}
	}
}

func TestCoverCountMatchesBruteForce(t *testing.T) {
	// |S²_e| from labels (Claim 5.8) must equal the number of cut pairs of H
	// that stop being cuts in H ∪ {e}.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 8; trial++ {
		h := graph.RandomKConnected(9+rng.Intn(5), 2, 3, rng, graph.UnitWeights())
		l := labelsFor(t, h, 48, int64(100+trial))
		pairs := h.CutPairs()
		// Try a handful of prospective new edges.
		for probe := 0; probe < 10; probe++ {
			u := rng.Intn(h.N())
			v := rng.Intn(h.N())
			if u == v {
				continue
			}
			var want int64
			for _, p := range pairs {
				// e covers {f,f'} iff the pair is no longer a 2-cut in H+e.
				h2 := h.Clone()
				h2.AddEdge(u, v, 1)
				rem, _ := h2.SubgraphWithout(map[int]bool{p.A: true, p.B: true})
				if rem.Connected() {
					want++
				}
			}
			if got := l.CoverCount(u, v); got != want {
				t.Fatalf("trial %d: CoverCount(%d,%d) = %d, want %d", trial, u, v, got, want)
			}
			// CoversPair consistency.
			var viaPairs int64
			for _, p := range pairs {
				if l.CoversPair(u, v, p) {
					viaPairs++
				}
			}
			if viaPairs != want {
				t.Fatalf("trial %d: CoversPair count %d, want %d", trial, viaPairs, want)
			}
		}
	}
}

func TestThreeEdgeConnectedWith(t *testing.T) {
	t.Run("cycle is not 3ec", func(t *testing.T) {
		l := labelsFor(t, graph.Cycle(6, graph.UnitWeights()), 48, 1)
		if l.ThreeEdgeConnectedWith() {
			t.Fatal("cycle reported 3-edge-connected")
		}
	})
	t.Run("harary3 is 3ec", func(t *testing.T) {
		l := labelsFor(t, graph.Harary(3, 10, graph.UnitWeights()), 48, 2)
		if !l.ThreeEdgeConnectedWith() {
			t.Fatal("H_{3,10} not reported 3-edge-connected")
		}
	})
	t.Run("agrees with oracle on random graphs", func(t *testing.T) {
		rng := rand.New(rand.NewSource(41))
		for trial := 0; trial < 10; trial++ {
			g := graph.RandomKConnected(10, 2, rng.Intn(12), rng, graph.UnitWeights())
			l := labelsFor(t, g, 48, int64(trial+50))
			if got, want := l.ThreeEdgeConnectedWith(), g.IsKEdgeConnected(3); got != want {
				t.Fatalf("trial %d: labels say %v, oracle says %v", trial, got, want)
			}
		}
	})
}
