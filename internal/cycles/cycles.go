// Package cycles implements the cycle space sampling technique of Pritchard
// and Thurimella as used in Section 5 of the paper: random b-bit
// circulations assign each edge of a 2-edge-connected graph a label φ(e)
// such that, w.h.p., φ(e) = φ(f) iff {e,f} is a cut pair (a 2-edge cut).
// The labels are computed by a genuine O(height)-round leaf-to-root XOR scan
// on the CONGEST simulator, and support the cost-effectiveness counting of
// the paper's unweighted 3-ECSS algorithm (Claims 5.8–5.10).
//
// Two labeling front-ends share that scan:
//
//   - Labeling (ComputeLabels) is the one-shot form: it labels a fixed graph
//     once and answers queries against that snapshot. A Labeling is immutable
//     after ComputeLabels returns, so its per-label counts are computed once
//     and cached (NPhi), and its query methods reuse internal scratch —
//     which makes a single Labeling NOT safe for concurrent queries. Use one
//     Labeling per goroutine.
//
//   - Incremental (NewIncremental) is the growing form driving the §5
//     3-ECSS augmentation loop: the spanning tree and labels of the base
//     subgraph H are computed once (distributed, measured), and AddEdges
//     then activates candidate edges by sampling a fresh label for each and
//     XOR-ing it along the edge's fundamental-cycle tree path in
//     O(|added|·height) — no re-labeling of the whole subgraph. The
//     per-label counts n_φ and the Claim 5.10 termination predicate are
//     maintained under every update, so CoverCount and ThreeEdgeConnected
//     stay O(height) and O(1). See incremental.go for the engine's contract
//     (what the counts cover, the from-scratch reference scan, and the
//     Arena ownership rules).
//
//kecss:deterministic
package cycles

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/tree"
)

// Labeling holds the b-bit labels of every edge of a 2-edge-connected graph.
//
// A Labeling is immutable once ComputeLabels returns, but its query methods
// (NPhi, CoverCount, CoversPair, ThreeEdgeConnectedWith) share cached counts
// and path scratch, so a single Labeling must not be queried concurrently.
type Labeling struct {
	G    *graph.Graph
	Tree *tree.Rooted
	Bits int
	// Phi maps every edge ID of G to its label. Non-tree labels are the
	// sampled uniform bit strings; tree labels are the XOR of the non-tree
	// labels covering them.
	Phi map[int]uint64
	// Metrics is the simulator cost of the distributed label computation.
	Metrics congest.Metrics

	// nphi is the per-label edge count, built lazily on first use: the
	// labeling is immutable, so the counts never need invalidating.
	nphi map[uint64]int
	// pathBuf and onPath are query scratch (CoverCount runs once per
	// candidate edge per 3-ECSS iteration; allocating per call was an O(m²)
	// map storm on that path).
	pathBuf []int
	onPath  map[uint64]int64
}

const (
	kindShareLabel int8 = iota + 40
	kindXORUp
)

// ownedLabel is one (edge, label) announcement a label program makes in
// round 1.
type ownedLabel struct {
	edge  int
	label uint64
}

// labelProgram performs the distributed label computation of Lemma 5.5:
// round 1 exchanges the assigned non-tree labels across their edges; then a
// leaf-to-root convergecast computes φ({v,p(v)}) as the XOR of φ(f) for all
// f ∈ δ(v) \ {v,p(v)}.
type labelProgram struct {
	tr *tree.Rooted
	// nonTree holds the labels this node announces (it is the owner
	// endpoint), in the caller's owned-edge order: round-1 sends must not
	// depend on map iteration order, because inbox delivery preserves each
	// sender's send order.
	nonTree   []ownedLabel
	collected map[int]uint64 // all incident non-tree labels, learned round 1
	pending   int            // children not yet reported
	shared    bool
	sentUp    bool
	upLabel   uint64 // φ of the parent edge once computed
	acc       uint64
}

func (p *labelProgram) Init(ctx *congest.Context) {
	p.collected = make(map[int]uint64, len(ctx.Neighbors()))
	p.pending = len(p.tr.Children(ctx.Node()))
	for _, el := range p.nonTree {
		p.collected[el.edge] = el.label
		ctx.Send(el.edge, congest.Payload{Kind: kindShareLabel, A: int64(el.label)})
	}
	p.shared = true
}

func (p *labelProgram) Round(ctx *congest.Context, inbox []congest.Message) bool {
	for _, m := range inbox {
		switch m.Kind {
		case kindShareLabel:
			p.collected[m.Edge] = uint64(m.A)
		case kindXORUp:
			p.acc ^= uint64(m.A)
			p.pending--
		}
	}
	v := ctx.Node()
	if p.pending == 0 && !p.sentUp && v != p.tr.Root {
		p.sentUp = true
		label := p.acc
		for e, l := range p.collected {
			if e != p.tr.ParentEdge[v] {
				label ^= l
			}
		}
		p.upLabel = label
		ctx.Send(p.tr.ParentEdge[v], congest.Payload{Kind: kindXORUp, A: int64(label)})
	}
	return p.sentUp || v == p.tr.Root
}

// runLabelScan runs the distributed convergecast of Lemma 5.5 on host with
// pre-assigned non-tree labels: owned[v] lists the non-tree edge IDs whose
// label vertex v announces in round 1 (v must be an endpoint of each), and
// labelOf returns the label of an owned edge. Edges of host that appear in
// no owned list and in no tree ParentEdge carry no messages, which is how
// the Incremental engine scans an active subgraph in place over the full
// host network. After the scan, progs[v].upLabel is φ(tr.ParentEdge[v]).
func runLabelScan(host *graph.Graph, tr *tree.Rooted, owned [][]int, labelOf func(edgeID int) uint64, opts []congest.Option) ([]*labelProgram, congest.Metrics, error) {
	progs := make([]*labelProgram, host.N())
	net := congest.NewNetwork(host, func(v int) congest.Program {
		var nt []ownedLabel
		if len(owned[v]) > 0 {
			nt = make([]ownedLabel, 0, len(owned[v]))
			for _, e := range owned[v] {
				nt = append(nt, ownedLabel{edge: e, label: labelOf(e)})
			}
		}
		p := &labelProgram{tr: tr, nonTree: nt}
		progs[v] = p
		return p
	}, opts...)
	metrics, err := net.Run(tr.Height() + 4)
	if err != nil {
		return nil, metrics, fmt.Errorf("cycles: label scan did not quiesce: %w", err)
	}
	return progs, metrics, nil
}

// ComputeLabels samples a random b-bit circulation of g (which must be
// connected; 2-edge-connectedness is required for the cut-pair
// characterization, not for the computation) over the given spanning tree
// and returns the labels, running the distributed scan on the simulator.
// bits must be in [1, 64].
func ComputeLabels(g *graph.Graph, tr *tree.Rooted, bits int, rng *rand.Rand, opts ...congest.Option) (*Labeling, error) {
	if bits < 1 || bits > 64 {
		return nil, fmt.Errorf("cycles: bits must be in [1,64], got %d", bits)
	}
	if rng == nil {
		return nil, fmt.Errorf("cycles: rng is required")
	}
	mask := labelMask(bits)
	inTree := tr.IsTreeEdge()
	// Sample non-tree labels at the smaller endpoint (deterministic owner).
	owned := make([][]int, g.N())
	for _, e := range g.Edges() {
		if inTree[e.ID] {
			continue
		}
		o := e.U
		if e.V < o {
			o = e.V
		}
		owned[o] = append(owned[o], e.ID)
	}
	// Draw the labels in owner-vertex order — the same deterministic order
	// the network's sequential program construction used to draw them in.
	labels := make(map[int]uint64, g.M())
	for v := 0; v < g.N(); v++ {
		for _, e := range owned[v] {
			labels[e] = rng.Uint64() & mask
		}
	}
	progs, metrics, err := runLabelScan(g, tr, owned, func(e int) uint64 { return labels[e] }, opts)
	if err != nil {
		return nil, err
	}
	for v := 0; v < g.N(); v++ {
		if v != tr.Root {
			labels[tr.ParentEdge[v]] = progs[v].upLabel
		}
	}
	return &Labeling{G: g, Tree: tr, Bits: bits, Phi: labels, Metrics: metrics}, nil
}

func labelMask(bits int) uint64 {
	if bits < 64 {
		return (1 << uint(bits)) - 1
	}
	return ^uint64(0)
}

// NPhi returns, per label value, the number of edges of G carrying it
// (the n_φ(t) quantities of §5.3). The map is computed once and cached —
// callers must not mutate it.
func (l *Labeling) NPhi() map[uint64]int {
	if l.nphi == nil {
		l.nphi = make(map[uint64]int, len(l.Phi))
		for _, lab := range l.Phi {
			l.nphi[lab]++
		}
	}
	return l.nphi
}

// CutPairs returns every unordered pair of edges with equal labels — by
// Property 5.1 exactly the cut pairs, w.h.p. in the label width. The order
// is a pure function of the labeling (groups by label value, ascending edge
// IDs within a group), never of map iteration.
func (l *Labeling) CutPairs() []graph.CutPair {
	ids := make([]int, 0, len(l.Phi))
	for id := 0; id < l.G.M(); id++ {
		if _, ok := l.Phi[id]; ok {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if l.Phi[a] != l.Phi[b] {
			return l.Phi[a] < l.Phi[b]
		}
		return a < b
	})
	var out []graph.CutPair
	for i := 0; i < len(ids); {
		j := i + 1
		for j < len(ids) && l.Phi[ids[j]] == l.Phi[ids[i]] {
			j++
		}
		for x := i; x < j; x++ {
			for y := x + 1; y < j; y++ {
				out = append(out, graph.CutPair{A: ids[x], B: ids[y]})
			}
		}
		i = j
	}
	return out
}

// ThreeEdgeConnectedWith reports whether the labeled graph is
// 3-edge-connected according to Claim 5.10: it is iff n_φ(t) = 1 for every
// tree edge t (no tree edge shares its label with any other edge).
// One-sided: a true answer is always correct; a false answer is correct
// w.h.p.
func (l *Labeling) ThreeEdgeConnectedWith() bool {
	nphi := l.NPhi()
	for v := 0; v < l.Tree.N(); v++ {
		if v == l.Tree.Root {
			continue
		}
		if nphi[l.Phi[l.Tree.ParentEdge[v]]] != 1 {
			return false
		}
	}
	return true
}

// CoverCount returns |S²_e| for a prospective new edge e = {u, v} ∉ G: the
// number of cut pairs of G that e covers, via Claim 5.8:
// Σ over labels L on the tree path u..v of n_{L,e}·(n_L − n_{L,e}).
func (l *Labeling) CoverCount(u, v int) int64 {
	nphi := l.NPhi()
	if l.onPath == nil {
		l.onPath = make(map[uint64]int64, 16)
	}
	clear(l.onPath)
	l.pathBuf = l.Tree.AppendPathEdges(l.pathBuf[:0], u, v)
	for _, t := range l.pathBuf {
		l.onPath[l.Phi[t]]++
	}
	var total int64
	for lab, ne := range l.onPath {
		total += ne * (int64(nphi[lab]) - ne)
	}
	return total
}

// CoversPair reports whether adding e = {u, v} covers the specific cut pair
// {f, f'}: by Corollary 5.7, iff exactly one of f, f' lies on the tree path
// of e.
func (l *Labeling) CoversPair(u, v int, pair graph.CutPair) bool {
	var onA, onB bool
	l.Tree.ForEachPathEdge(u, v, func(t int) {
		if t == pair.A {
			onA = true
		}
		if t == pair.B {
			onB = true
		}
	})
	return onA != onB
}
