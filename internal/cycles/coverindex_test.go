package cycles

import (
	"math/rand"
	"testing"
)

// TestCoverIndexMatchesCoverCount pins the index's decomposed cover counts
// against Incremental.CoverCount, bit for bit, across randomized AddEdges
// sequences — including narrow labels, where collisions force the
// same-label pair term and the shared-count term to cancel exactly the way
// the direct per-path histogram does.
func TestCoverIndexMatchesCoverCount(t *testing.T) {
	for _, tc := range []struct {
		n, extra int
		bits     int
		seed     int64
	}{
		{12, 18, 48, 1},
		{24, 40, 48, 2},
		{24, 40, 4, 3}, // 4-bit labels: collisions everywhere
		{40, 60, 2, 4}, // 2-bit labels: heavy collisions, big multi set
		{60, 80, 48, 5},
	} {
		g, base, cands := spanning2EC(tc.n, tc.extra, tc.seed)
		inc, err := NewIncremental(g, base, tc.bits, rand.New(rand.NewSource(tc.seed*31)), nil)
		if err != nil {
			t.Fatal(err)
		}
		cx := NewCoverIndex(inc, cands)
		selected := make([]bool, len(cands))
		check := func(step string) {
			cx.Refresh(func(int, int64) {})
			for i, id := range cands {
				if selected[i] {
					continue
				}
				e := g.Edge(id)
				if got, want := cx.Ce(i), inc.CoverCount(e.U, e.V); got != want {
					t.Fatalf("n=%d bits=%d seed=%d %s: cand %d (edge %d): index %d, engine %d",
						tc.n, tc.bits, tc.seed, step, i, id, got, want)
				}
			}
		}
		check("initial")
		rng := rand.New(rand.NewSource(tc.seed * 97))
		remaining := make([]int, len(cands))
		for i := range remaining {
			remaining[i] = i
		}
		for len(remaining) > 0 {
			k := 1 + rng.Intn(3)
			if k > len(remaining) {
				k = len(remaining)
			}
			batch := make([]int, 0, k)
			for j := 0; j < k; j++ {
				pick := rng.Intn(len(remaining))
				ci := remaining[pick]
				remaining[pick] = remaining[len(remaining)-1]
				remaining = remaining[:len(remaining)-1]
				selected[ci] = true
				cx.Deactivate(ci)
				batch = append(batch, cands[ci])
			}
			inc.AddEdges(batch)
			check("after AddEdges")
			// A reference rescan must leave the index equivalent via reset().
			if len(remaining)%5 == 0 {
				if _, err := inc.RelabelScan(); err != nil {
					t.Fatal(err)
				}
				check("after RelabelScan")
			}
		}
	}
}

// TestCoverIndexDirtySetIsSound verifies the output-sensitivity contract
// from the other side: candidates the index does NOT dirty really cannot
// have changed — after each update, cached counts (without any recompute of
// clean candidates) equal the engine's direct recomputation. Implied by
// the test above but stated separately so a dirty-tracking regression fails
// with a pointed message.
func TestCoverIndexDirtySetIsSound(t *testing.T) {
	g, base, cands := spanning2EC(30, 50, 11)
	inc, err := NewIncremental(g, base, 48, rand.New(rand.NewSource(13)), nil)
	if err != nil {
		t.Fatal(err)
	}
	cx := NewCoverIndex(inc, cands)
	cx.Refresh(func(int, int64) {})
	for step, ci := range []int{3, 17, 40, 8} {
		cx.Deactivate(ci)
		inc.AddEdges([]int{cands[ci]})
		// Read caches of clean candidates BEFORE Refresh: they must already
		// be correct, or the dirty set under-approximated.
		for i, id := range cands {
			if i == 3 || i == 17 || i == 40 || i == 8 || cx.dirty[i] {
				continue
			}
			e := g.Edge(id)
			if got, want := cx.Ce(i), inc.CoverCount(e.U, e.V); got != want {
				t.Fatalf("step %d: clean candidate %d stale: cached %d, engine %d", step, i, got, want)
			}
		}
		cx.Refresh(func(int, int64) {})
	}
}
