// Package verify implements the distributed verification algorithms the
// paper builds on (§1.2, §5): O(D)-round CONGEST verification of
// connectivity, 2-edge-connectivity and 3-edge-connectivity of the
// communication graph itself, via BFS + cycle space sampling
// (Pritchard–Thurimella). Each verifier returns the verdict together with
// the measured simulator cost.
//
// Error model: the 2/3-edge-connectivity verifiers use random b-bit labels.
// A bridge always labels 0 and a cut pair always shares labels, so an
// "is k-edge-connected" verdict is exact, while a "not k-edge-connected"
// verdict is correct w.h.p. in b (a healthy edge labels 0, or two unrelated
// edges collide, with probability 2^-b each — Lemma 5.4's one-sidedness).
//
//kecss:deterministic
package verify

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/congest"
	"repro/internal/cycles"
	"repro/internal/graph"
	"repro/internal/primitives"
	"repro/internal/tree"
)

// Report is the outcome of a distributed verification.
type Report struct {
	OK      bool
	Rounds  int   // total simulator rounds across the verification's phases
	Bits    int   // label width used (0 for pure-BFS checks)
	Witness []int // for failed 2EC checks: the bridge edge IDs (w.h.p. all)
}

// Connectivity checks that the graph is connected: a BFS from the minimum-ID
// leader reaches everyone (each vertex checks locally that it joined; a
// convergecast of the joined-count to the root completes the verification).
// O(D) rounds.
func Connectivity(g *graph.Graph, opts ...congest.Option) (*Report, error) {
	if g.N() == 0 {
		return &Report{OK: true}, nil
	}
	opts = congest.WithDefaultArena(opts)
	leader, m1, err := primitives.ElectLeader(g, opts...)
	if err != nil {
		if !errors.Is(err, primitives.ErrNoGlobalLeader) {
			return nil, fmt.Errorf("verify: leader election: %w", err)
		}
		// Disagreeing minima already prove disconnection, but the protocol's
		// BFS phase still runs — from the true global minimum, vertex 0 —
		// so the verdict below comes from the explicit non-spanning
		// detection and the report charges the full cost actually incurred.
		leader = 0
	}
	tr, m2, err := primitives.BuildBFSTree(g, leader, opts...)
	if err != nil {
		// A non-spanning BFS is itself the "disconnected" verdict — and an
		// explicit one (ErrBFSNotSpanning), not an inference from tree
		// validation. The rounds the failed BFS consumed are real simulator
		// work and count toward the verification's cost. Any other BFS
		// error is a genuine failure and propagates.
		if errors.Is(err, primitives.ErrBFSNotSpanning) {
			return &Report{OK: false, Rounds: m1.Rounds + m2.Rounds}, nil
		}
		return nil, fmt.Errorf("verify: BFS: %w", err)
	}
	ones := make([]int64, g.N())
	for i := range ones {
		ones[i] = 1
	}
	count, m3, err := primitives.Aggregate(g, tr, ones, primitives.Sum)
	if err != nil {
		return nil, fmt.Errorf("verify: count convergecast: %w", err)
	}
	return &Report{
		OK:     count == int64(g.N()),
		Rounds: m1.Rounds + m2.Rounds + m3.Rounds,
	}, nil
}

// TwoEdgeConnectivity checks that the graph has no bridges using cycle
// space sampling: a tree edge is a bridge iff no non-tree edge covers it,
// i.e. iff its label is the all-zero string; a non-tree edge is never a
// bridge. A "true" verdict is exact (bridges always label 0); a "false"
// verdict is correct w.h.p. in bits. O(D) rounds.
func TwoEdgeConnectivity(g *graph.Graph, bits int, rng *rand.Rand, opts ...congest.Option) (*Report, error) {
	return twoEdgeConnectivity(g, bits, rng, congest.WithDefaultArena(opts))
}

// twoEdgeConnectivity is TwoEdgeConnectivity with the caller responsible for
// arena wiring (ThreeEdgeConnectivity shares one arena across both checks).
func twoEdgeConnectivity(g *graph.Graph, bits int, rng *rand.Rand, opts []congest.Option) (*Report, error) {
	if g.N() < 2 {
		return &Report{OK: true, Bits: bits}, nil
	}
	l, tr, total, err := labelGraph(g, bits, rng, opts...)
	if err != nil {
		return nil, err
	}
	rep := &Report{OK: true, Rounds: total, Bits: bits}
	for v := 0; v < g.N(); v++ {
		if v == tr.Root {
			continue
		}
		te := tr.ParentEdge[v]
		if l.Phi[te] == 0 {
			rep.OK = false
			rep.Witness = append(rep.Witness, te)
		}
	}
	return rep, nil
}

// ThreeEdgeConnectivity checks the graph is 3-edge-connected via Claim
// 5.10: no tree edge may share its label with any other edge. The
// per-label counts n_φ(t) are gathered by a pipelined upcast of the label
// multiset to the root (O(D + #labels) rounds), mirroring §5.3's
// implementation. Requires 2-edge-connectivity (checked first).
func ThreeEdgeConnectivity(g *graph.Graph, bits int, rng *rand.Rand, opts ...congest.Option) (*Report, error) {
	opts = congest.WithDefaultArena(opts)
	two, err := twoEdgeConnectivity(g, bits, rng, opts)
	if err != nil {
		return nil, err
	}
	if !two.OK {
		return two, nil
	}
	l, tr, total, err := labelGraph(g, bits, rng, opts...)
	if err != nil {
		return nil, err
	}
	// Every vertex contributes the labels of edges it owns (the smaller
	// endpoint), then the duplicate-label verdict is computed at the root.
	// A real implementation upcasts (label,count) pairs; here the upcast of
	// the distinct labels measures the dominant pipelined cost and the
	// verdict uses the exact counts.
	items := make([][]int64, g.N())
	for id := 0; id < g.M(); id++ {
		lab, ok := l.Phi[id]
		if !ok {
			continue
		}
		e := g.Edge(id)
		o := e.U
		if e.V < o {
			o = e.V
		}
		items[o] = append(items[o], int64(lab))
	}
	_, m, err := primitives.Upcast(g, tr, items)
	if err != nil {
		return nil, fmt.Errorf("verify: label upcast: %w", err)
	}
	total += m.Rounds
	return &Report{OK: l.ThreeEdgeConnectedWith(), Rounds: two.Rounds + total, Bits: bits}, nil
}

// labelGraph builds the leader-rooted BFS tree and cycle-space labels,
// returning the combined measured rounds.
func labelGraph(g *graph.Graph, bits int, rng *rand.Rand, opts ...congest.Option) (*cycles.Labeling, *tree.Rooted, int, error) {
	leader, m1, err := primitives.ElectLeader(g, opts...)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("verify: leader election: %w", err)
	}
	tr, m2, err := primitives.BuildBFSTree(g, leader, opts...)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("verify: BFS (graph disconnected?): %w", err)
	}
	l, err := cycles.ComputeLabels(g, tr, bits, rng, opts...)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("verify: labels: %w", err)
	}
	return l, tr, m1.Rounds + m2.Rounds + l.Metrics.Rounds, nil
}
