package verify

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/primitives"
)

func TestConnectivity(t *testing.T) {
	t.Run("connected graph verifies", func(t *testing.T) {
		g := graph.Grid(5, 5, graph.UnitWeights())
		rep, err := Connectivity(g)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK {
			t.Fatal("grid should verify connected")
		}
		if d := g.Diameter(); rep.Rounds > 4*d+12 {
			t.Errorf("rounds = %d, want O(D)=O(%d)", rep.Rounds, d)
		}
	})
	t.Run("disconnected graph rejected with full round accounting", func(t *testing.T) {
		// Two separate triangles: leader election disagrees across the
		// components and the BFS from the global minimum cannot span.
		g := graph.New(6)
		for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}} {
			g.AddEdge(e[0], e[1], 1)
		}
		rep, err := Connectivity(g)
		if err != nil {
			t.Fatalf("disconnected graph must be a verdict, not an error: %v", err)
		}
		if rep.OK {
			t.Fatal("disconnected graph verified as connected")
		}
		// Regression: the report must include the rounds of the failed BFS
		// phase, not just leader election.
		_, m1, electErr := primitives.ElectLeader(g)
		if !errors.Is(electErr, primitives.ErrNoGlobalLeader) {
			t.Fatalf("expected ErrNoGlobalLeader on disconnected graph, got %v", electErr)
		}
		if rep.Rounds <= m1.Rounds {
			t.Fatalf("Rounds = %d: dropped the failed BFS phase (election alone = %d)", rep.Rounds, m1.Rounds)
		}
	})
	t.Run("isolated vertex detected", func(t *testing.T) {
		g := graph.New(4)
		g.AddEdge(0, 1, 1)
		g.AddEdge(1, 2, 1)
		g.AddEdge(2, 0, 1) // vertex 3 is isolated
		rep, err := Connectivity(g)
		if err != nil {
			t.Fatal(err)
		}
		if rep.OK {
			t.Fatal("graph with isolated vertex verified as connected")
		}
	})
	t.Run("empty graph", func(t *testing.T) {
		rep, err := Connectivity(graph.New(0))
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK {
			t.Fatal("empty graph is connected")
		}
	})
}

func TestTwoEdgeConnectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	t.Run("cycle passes", func(t *testing.T) {
		rep, err := TwoEdgeConnectivity(graph.Cycle(12, graph.UnitWeights()), 32, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK {
			t.Fatal("cycle should verify 2-edge-connected")
		}
	})
	t.Run("bridge detected with witness", func(t *testing.T) {
		g := graph.New(6)
		g.AddEdge(0, 1, 1)
		g.AddEdge(1, 2, 1)
		g.AddEdge(2, 0, 1)
		bridge := g.AddEdge(2, 3, 1)
		g.AddEdge(3, 4, 1)
		g.AddEdge(4, 5, 1)
		g.AddEdge(5, 3, 1)
		rep, err := TwoEdgeConnectivity(g, 32, rng)
		if err != nil {
			t.Fatal(err)
		}
		if rep.OK {
			t.Fatal("bridge graph verified 2-edge-connected")
		}
		found := false
		for _, w := range rep.Witness {
			if w == bridge {
				found = true
			}
		}
		if !found {
			t.Fatalf("witness %v does not include the bridge %d", rep.Witness, bridge)
		}
	})
	t.Run("agrees with oracle on random graphs", func(t *testing.T) {
		for trial := 0; trial < 20; trial++ {
			g := graph.New(10)
			for i := 0; i+1 < 10; i++ {
				g.AddEdge(i, i+1, 1)
			}
			for j := 0; j < trial%7; j++ {
				u, v := rng.Intn(10), rng.Intn(10)
				if u != v {
					g.AddEdge(u, v, 1)
				}
			}
			rep, err := TwoEdgeConnectivity(g, 48, rng)
			if err != nil {
				t.Fatal(err)
			}
			if want := g.TwoEdgeConnected(); rep.OK != want {
				t.Fatalf("trial %d: verifier %v, oracle %v", trial, rep.OK, want)
			}
		}
	})
}

func TestThreeEdgeConnectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tests := []struct {
		name string
		g    *graph.Graph
		want bool
	}{
		{"harary3", graph.Harary(3, 10, graph.UnitWeights()), true},
		{"harary4", graph.Harary(4, 12, graph.UnitWeights()), true},
		{"cycle", graph.Cycle(10, graph.UnitWeights()), false},
		{"figure2", graph.PaperFigure2Graph(), false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := ThreeEdgeConnectivity(tc.g, 48, rng)
			if err != nil {
				t.Fatal(err)
			}
			if rep.OK != tc.want {
				t.Fatalf("verifier = %v, want %v", rep.OK, tc.want)
			}
		})
	}
	t.Run("agrees with oracle on random graphs", func(t *testing.T) {
		for trial := 0; trial < 15; trial++ {
			g := graph.RandomKConnected(10, 2, trial, rng, graph.UnitWeights())
			rep, err := ThreeEdgeConnectivity(g, 48, rng)
			if err != nil {
				t.Fatal(err)
			}
			if want := g.IsKEdgeConnected(3); rep.OK != want {
				t.Fatalf("trial %d: verifier %v, oracle %v", trial, rep.OK, want)
			}
		}
	})
}

func TestVerifyRoundsAreNearDiameter(t *testing.T) {
	// O(D)-round claim (§5): verification rounds must track D, not n.
	rng := rand.New(rand.NewSource(3))
	small := graph.Harary(4, 64, graph.UnitWeights()) // D small
	big := graph.Harary(4, 512, graph.UnitWeights())  // D still small, n big
	repS, err := TwoEdgeConnectivity(small, 32, rng)
	if err != nil {
		t.Fatal(err)
	}
	repB, err := TwoEdgeConnectivity(big, 32, rng)
	if err != nil {
		t.Fatal(err)
	}
	dS, dB := small.DiameterEstimate(), big.DiameterEstimate()
	if repB.Rounds > repS.Rounds*(dB+4)/(max(dS, 1))*4 {
		t.Errorf("rounds grew with n, not D: %d (D=%d) -> %d (D=%d)",
			repS.Rounds, dS, repB.Rounds, dB)
	}
}

func TestVerifyParallelExecutor(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.Harary(3, 14, graph.UnitWeights())
	rep, err := ThreeEdgeConnectivity(g, 48, rng, congest.WithExecutor(congest.ParallelExecutor{}))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatal("parallel executor changed verdict")
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
