package tap

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/baselines"
	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/tree"
)

func mstTree(t *testing.T, g *graph.Graph) *tree.Rooted {
	t.Helper()
	ids, _ := mst.Kruskal(g)
	tr, err := tree.FromEdges(g, ids, 0)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func checkAugmentation(t *testing.T, g *graph.Graph, tr *tree.Rooted, res *Result) {
	t.Helper()
	all := append(append([]int(nil), tr.EdgeIDs()...), res.Augmentation...)
	sub, _ := g.SubgraphOf(all)
	if !sub.TwoEdgeConnected() {
		t.Fatal("T ∪ A is not 2-edge-connected")
	}
	if res.Weight != g.WeightOf(res.Augmentation) {
		t.Fatalf("weight %d != recomputed %d", res.Weight, g.WeightOf(res.Augmentation))
	}
}

func TestAugmentRequiresRng(t *testing.T) {
	g := graph.Cycle(4, graph.UnitWeights())
	if _, err := Augment(g, mstTree(t, g), Options{}); err == nil {
		t.Fatal("expected error without Rng")
	}
}

func TestAugmentCycle(t *testing.T) {
	g := graph.Cycle(8, graph.UnitWeights())
	tr := mstTree(t, g)
	res, err := Augment(g, tr, Options{Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	checkAugmentation(t, g, tr, res)
	// The only non-tree edge is the cycle-closing one.
	if len(res.Augmentation) != 1 {
		t.Fatalf("augmentation = %v, want a single edge", res.Augmentation)
	}
	if res.Iterations != 1 {
		t.Fatalf("iterations = %d, want 1", res.Iterations)
	}
}

func TestAugmentRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		g := graph.RandomKConnected(20+rng.Intn(40), 2, 30+rng.Intn(30), rng, graph.RandomWeights(rng, 50))
		tr := mstTree(t, g)
		res, err := Augment(g, tr, Options{Rng: rand.New(rand.NewSource(int64(trial)))})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkAugmentation(t, g, tr, res)
	}
}

func TestAugmentZeroWeightEdges(t *testing.T) {
	// Zero-weight chords must be taken in preprocessing with zero cost and
	// zero iterations if they cover everything.
	g := graph.New(5)
	var treeIDs []int
	for i := 0; i+1 < 5; i++ {
		treeIDs = append(treeIDs, g.AddEdge(i, i+1, 10))
	}
	g.AddEdge(4, 0, 0)
	tr, err := tree.FromEdges(g, treeIDs, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Augment(g, tr, Options{Rng: rand.New(rand.NewSource(2))})
	if err != nil {
		t.Fatal(err)
	}
	checkAugmentation(t, g, tr, res)
	if res.Weight != 0 || res.Iterations != 0 {
		t.Fatalf("weight=%d iterations=%d, want 0/0", res.Weight, res.Iterations)
	}
}

func TestAugmentErrorsOnBridgeGraph(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 0, 1)
	g.AddEdge(2, 3, 1) // bridge
	tr := mstTree(t, g)
	if _, err := Augment(g, tr, Options{Rng: rand.New(rand.NewSource(3))}); err == nil {
		t.Fatal("expected error: bridge cannot be covered")
	}
}

func TestApproximationAgainstExactOptimum(t *testing.T) {
	// The paper guarantees O(log n); measure the actual ratio against the
	// exact TAP optimum on small instances and require it within the
	// analytical bound with the paper's constants (cost argument gives
	// 8·H_n ≈ 8·ln n + 8; use 16·ln(n)+16 as a hard cap).
	rng := rand.New(rand.NewSource(11))
	worst := 0.0
	for trial := 0; trial < 20; trial++ {
		n := 8 + rng.Intn(8)
		g := graph.RandomKConnected(n, 2, 8, rng, graph.RandomWeights(rng, 25))
		tr := mstTree(t, g)
		_, opt, err := baselines.ExactTAP(g, tr)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Augment(g, tr, Options{Rng: rand.New(rand.NewSource(int64(trial * 31)))})
		if err != nil {
			t.Fatal(err)
		}
		checkAugmentation(t, g, tr, res)
		ratio := float64(res.Weight) / float64(opt)
		if ratio > worst {
			worst = ratio
		}
		bound := 16*math.Log(float64(n)) + 16
		if ratio > bound {
			t.Fatalf("trial %d: ratio %.2f exceeds bound %.2f (n=%d)", trial, ratio, bound, n)
		}
	}
	t.Logf("worst observed ratio vs exact OPT: %.3f", worst)
}

func TestIterationCountLemma311(t *testing.T) {
	// Lemma 3.11: O(log² n) iterations w.h.p. Check that measured iteration
	// counts stay within c·log²n across sizes with a modest constant.
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{50, 150, 400} {
		g := graph.RandomKConnected(n, 2, 2*n, rng, graph.RandomWeights(rng, 100))
		tr := mstTree(t, g)
		res, err := Augment(g, tr, Options{Rng: rand.New(rand.NewSource(17))})
		if err != nil {
			t.Fatal(err)
		}
		logn := math.Log2(float64(n))
		if float64(res.Iterations) > 6*logn*logn {
			t.Errorf("n=%d: %d iterations, want <= 6·log²n = %.0f", n, res.Iterations, 6*logn*logn)
		}
	}
}

func TestRoundsScaleWithSqrtN(t *testing.T) {
	// Theorem 3.12 shape: charged rounds per iteration stay O(D+√n).
	rng := rand.New(rand.NewSource(19))
	for _, n := range []int{100, 400} {
		g := graph.RandomKConnected(n, 2, 2*n, rng, graph.RandomWeights(rng, 60))
		tr := mstTree(t, g)
		res, err := Augment(g, tr, Options{Rng: rand.New(rand.NewSource(23))})
		if err != nil {
			t.Fatal(err)
		}
		d := g.DiameterEstimate()
		perIter := float64(res.Rounds) / float64(res.Iterations+1)
		budget := 40 * float64(d+int(math.Sqrt(float64(n)))+1)
		if perIter > budget {
			t.Errorf("n=%d: %.0f rounds/iteration, want O(D+√n) <= %.0f", n, perIter, budget)
		}
	}
}

func TestVoteThresholdAblation(t *testing.T) {
	// A larger vote denominator accepts more candidates; both must stay
	// correct. (The guarantee argument needs 8; 2 is the ablation.)
	rng := rand.New(rand.NewSource(29))
	g := graph.RandomKConnected(40, 2, 60, rng, graph.RandomWeights(rng, 40))
	tr := mstTree(t, g)
	for _, denom := range []int64{2, 8, 32} {
		res, err := Augment(g, tr, Options{Rng: rand.New(rand.NewSource(31)), VoteDenom: denom})
		if err != nil {
			t.Fatalf("denom %d: %v", denom, err)
		}
		checkAugmentation(t, g, tr, res)
	}
}

func TestDisableRoundingAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	g := graph.RandomKConnected(30, 2, 40, rng, graph.RandomWeights(rng, 25))
	tr := mstTree(t, g)
	res, err := Augment(g, tr, Options{Rng: rand.New(rand.NewSource(41)), DisableRounding: true})
	if err != nil {
		t.Fatal(err)
	}
	checkAugmentation(t, g, tr, res)
}

func TestRoundedExp(t *testing.T) {
	tests := []struct {
		ce, w int64
		want  int
	}{
		{1, 1, 1},  // ρ=1 → smallest power > 1 is 2
		{3, 1, 2},  // ρ=3 → 4
		{4, 1, 3},  // ρ=4 → 8
		{1, 2, 0},  // ρ=0.5 → 1
		{1, 3, -1}, // ρ=1/3 → 1/2
		{1, 4, -1}, // ρ=0.25 → 0.5
		{1, 5, -2}, // ρ=0.2 → 0.25
		{1000, 1, 10},
		{1, 1 << 40, -39},
	}
	for _, tc := range tests {
		if got := RoundedExp(tc.ce, tc.w); got != tc.want {
			t.Errorf("RoundedExp(%d,%d) = %d, want %d", tc.ce, tc.w, got, tc.want)
		}
	}
}

// Property: rounded cost-effectiveness 2^i satisfies 2^(i-1) <= ce/w < 2^i.
func TestRoundedExpQuick(t *testing.T) {
	f := func(ceRaw, wRaw uint32) bool {
		ce := int64(ceRaw%100000) + 1
		w := int64(wRaw%100000) + 1
		i := RoundedExp(ce, w)
		rho := float64(ce) / float64(w)
		upper := math.Pow(2, float64(i))
		lower := math.Pow(2, float64(i-1))
		return rho < upper && rho >= lower*(1-1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: augmentation is always valid on random 2-connected instances.
func TestAugmentQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%30) + 6
		g := graph.RandomKConnected(n, 2, n, rng, graph.RandomWeights(rng, 20))
		ids, _ := mst.Kruskal(g)
		tr, err := tree.FromEdges(g, ids, 0)
		if err != nil {
			return false
		}
		res, err := Augment(g, tr, Options{Rng: rng})
		if err != nil {
			return false
		}
		all := append(append([]int(nil), tr.EdgeIDs()...), res.Augmentation...)
		sub, _ := g.SubgraphOf(all)
		return sub.TwoEdgeConnected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
