// Package tap implements the paper's Section 3: the distributed weighted
// tree augmentation (TAP) algorithm that underlies Theorem 1.1. Given a
// spanning tree T of a 2-edge-connected weighted graph G, it selects a set A
// of non-tree edges such that T ∪ A is 2-edge-connected, with a *guaranteed*
// O(log n) approximation of the optimum augmentation, in O(log² n)
// iterations w.h.p., each costing O(D + √n) rounds.
//
// The iteration logic (rounded cost-effectiveness, random voting with
// threshold |Ce|/8) is implemented exactly as specified. Coverage and voting
// are computed over the tree paths S_e; the per-iteration round cost is
// charged from the measured segment-decomposition parameters per the
// implementation plan of §3.1 (computations (I)–(III), each O(D + √n):
// a constant number of segment-local pipelined scans of length ≤ the maximum
// segment diameter plus skeleton/BFS-tree broadcasts of length ≤ D + number
// of segments).
package tap

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/rounds"
	"repro/internal/segments"
	"repro/internal/tree"
)

// Options configures the TAP algorithm. The zero value selects the paper's
// parameters.
type Options struct {
	// Rng drives the random voting. Required.
	Rng *rand.Rand
	// VoteDenom is the acceptance threshold denominator: a candidate needs
	// at least |Ce|/VoteDenom votes. The paper uses 8. 0 means 8.
	VoteDenom int64
	// DisableRounding makes candidate selection use exact maximum
	// cost-effectiveness instead of the power-of-2 rounded value
	// (an ablation; the approximation proof needs rounding).
	DisableRounding bool
	// SegmentTarget overrides the √n decomposition parameter (0 = default).
	SegmentTarget int
	// MaxIterations bounds the main loop; 0 means 40·(log n)² + 100, far
	// above the w.h.p. bound of Lemma 3.11.
	MaxIterations int
}

// Result is the outcome of the augmentation.
type Result struct {
	// Augmentation holds the selected non-tree edge IDs (the set A).
	Augmentation []int
	// Weight is the total weight of the augmentation.
	Weight int64
	// Iterations is the number of voting iterations executed (Lemma 3.11:
	// O(log² n) w.h.p.).
	Iterations int
	// Rounds is the total charged round count (Theorem 3.12:
	// O((D+√n)·log² n)).
	Rounds int64
	// RoundBreakdown itemizes the charges.
	RoundBreakdown []rounds.Charge
	// Decomposition is the segment decomposition used for accounting.
	Decomposition *segments.Decomposition
}

// Augment runs the weighted TAP algorithm on graph g with spanning tree tr.
// Every tree edge must be coverable by some non-tree edge (g must be
// 2-edge-connected), otherwise an error is returned.
func Augment(g *graph.Graph, tr *tree.Rooted, opts Options) (*Result, error) {
	if opts.Rng == nil {
		return nil, fmt.Errorf("tap: Options.Rng is required")
	}
	voteDenom := opts.VoteDenom
	if voteDenom == 0 {
		voteDenom = 8
	}
	n := g.N()
	target := opts.SegmentTarget
	if target == 0 {
		target = segments.DefaultTarget(n)
	}
	maxIters := opts.MaxIterations
	if maxIters == 0 {
		l := int(rounds.Log2Ceil(n)) + 1
		maxIters = 40*l*l + 100
	}

	dec, err := segments.Decompose(g, tr, target)
	if err != nil {
		return nil, fmt.Errorf("tap: decomposition failed: %w", err)
	}
	var acc rounds.Accountant
	// Construction costs charged once: the decomposition itself plus the
	// initial dissemination of Claims 3.1/3.2 (all O(D + √n)).
	d := int64(g.DiameterEstimate())
	segCost := int64(dec.MaxSegmentDiameter()) + int64(len(dec.Segments))
	acc.Charge("decomposition", d+segCost)

	st := newState(g, tr, voteDenom, !opts.DisableRounding, opts.Rng)

	// Pre-iteration step: add all weight-0 edges and mark their coverage
	// (§3: "at the beginning of the algorithm we add to A all the edges with
	// weight 0").
	for _, c := range st.cands {
		if g.Edge(c.edge).W == 0 {
			st.addToA(c)
		}
	}
	acc.Charge("zero-weight preprocessing", d+segCost)

	res := &Result{Decomposition: dec}
	for st.uncovered > 0 {
		if res.Iterations >= maxIters {
			return nil, fmt.Errorf("tap: exceeded %d iterations with %d tree edges uncovered", maxIters, st.uncovered)
		}
		res.Iterations++
		progressed, err := st.iterate()
		if err != nil {
			return nil, err
		}
		// Per-iteration charge, Lemma 3.3 / §3.1: computations (I)–(III)
		// are each a constant number of segment pipelines (≤ max segment
		// diameter), skeleton/BFS broadcasts (≤ D + #segments) and global
		// aggregations (≤ D).
		acc.Charge("iterations", 3*(d+segCost)+2*d)
		if !progressed {
			return nil, fmt.Errorf("tap: no progress in iteration %d (tree not augmentable?)", res.Iterations)
		}
	}
	res.Augmentation = append(res.Augmentation, st.a...)
	res.Weight = g.WeightOf(res.Augmentation)
	res.Rounds = acc.Total()
	res.RoundBreakdown = acc.Breakdown()
	return res, nil
}

// candidate is the per-non-tree-edge bookkeeping.
type candidate struct {
	edge int
	se   []int // tree edge IDs on the covered path (S_e), fixed
	inA  bool
}

type state struct {
	g         *graph.Graph
	tr        *tree.Rooted
	voteDenom int64
	rounding  bool
	rng       *rand.Rand

	cands     []*candidate
	covered   map[int]bool // tree edge ID -> covered
	uncovered int
	a         []int
}

func newState(g *graph.Graph, tr *tree.Rooted, voteDenom int64, rounding bool, rng *rand.Rand) *state {
	st := &state{
		g:         g,
		tr:        tr,
		voteDenom: voteDenom,
		rounding:  rounding,
		rng:       rng,
		covered:   make(map[int]bool, g.N()-1),
	}
	inTree := tr.IsTreeEdge()
	for _, e := range g.Edges() {
		if inTree[e.ID] {
			st.covered[e.ID] = false
			continue
		}
		se := tr.PathEdges(e.U, e.V)
		if len(se) == 0 {
			// Parallel to a tree edge? PathEdges of endpoints of a non-tree
			// edge parallel to a tree edge returns that tree edge, so an
			// empty path can only mean a self-loop, which Graph forbids.
			continue
		}
		st.cands = append(st.cands, &candidate{edge: e.ID, se: se})
	}
	st.uncovered = len(st.covered)
	return st
}

// ceLen returns |Ce|: uncovered tree edges on the candidate's path.
func (st *state) ceLen(c *candidate) int64 {
	var k int64
	for _, t := range c.se {
		if !st.covered[t] {
			k++
		}
	}
	return k
}

// addToA puts the candidate into the augmentation and marks its whole path
// covered.
func (st *state) addToA(c *candidate) {
	if c.inA {
		return
	}
	c.inA = true
	st.a = append(st.a, c.edge)
	for _, t := range c.se {
		if !st.covered[t] {
			st.covered[t] = true
			st.uncovered--
		}
	}
}

// RoundedExp returns the exponent i of the rounded cost-effectiveness
// ρ̃ = 2^i: the smallest power of two strictly greater than ρ = ce/w
// (§2.1). Requires ce >= 1 and w >= 1 (zero-weight edges are handled in
// preprocessing and ce = 0 edges are never candidates). Exact integer
// arithmetic, overflow-safe. Exported because the Aug_k algorithm of §4
// rounds its cost-effectiveness identically.
func RoundedExp(ce, w int64) int {
	for i := -62; i <= 62; i++ {
		if pow2TimesExceeds(i, w, ce) {
			return i
		}
	}
	return 63
}

// pow2TimesExceeds reports whether 2^i · w > ce, without overflowing.
func pow2TimesExceeds(i int, w, ce int64) bool {
	if i >= 0 {
		if w > (int64(1)<<62)>>uint(i) {
			return true // 2^i·w exceeds 2^62 > any ce we see
		}
		return (w << uint(i)) > ce
	}
	s := uint(-i)
	if ce > (int64(1)<<62)>>s {
		return false // ce·2^s exceeds 2^62 >= w
	}
	return w > (ce << s)
}

// voteKey orders candidates for tree-edge voting: by random number, then by
// edge ID (the paper's tie-break).
type voteKey struct {
	r  int64
	id int
}

func (k voteKey) less(o voteKey) bool {
	if k.r != o.r {
		return k.r < o.r
	}
	return k.id < o.id
}

// iterate executes one voting iteration (Lines 1–6 of the §3 algorithm).
// It reports whether at least one edge was added to A.
func (st *state) iterate() (bool, error) {
	// Line 1–2: rounded cost-effectiveness; candidates achieve the maximum.
	type scored struct {
		c  *candidate
		ce int64
	}
	var (
		best      = -1 << 30 // max rounded exponent
		bestExact struct{ ce, w int64 }
		pool      []scored
		exact     = !st.rounding
	)
	bestExact.w = 1
	for _, c := range st.cands {
		if c.inA {
			continue
		}
		ce := st.ceLen(c)
		if ce == 0 {
			continue
		}
		w := st.g.Edge(c.edge).W
		if exact {
			// Compare ce/w with bestExact by cross-multiplication.
			cmp := ce*bestExact.w - bestExact.ce*w
			if cmp > 0 {
				bestExact.ce, bestExact.w = ce, w
				pool = pool[:0]
			}
			if cmp >= 0 {
				pool = append(pool, scored{c, ce})
			}
			continue
		}
		e := RoundedExp(ce, w)
		if e > best {
			best = e
			pool = pool[:0]
		}
		if e == best {
			pool = append(pool, scored{c, ce})
		}
	}
	if len(pool) == 0 {
		return false, fmt.Errorf("tap: %d uncovered tree edges but no candidate covers any (graph not 2-edge-connected)", st.uncovered)
	}

	// Line 3: random numbers.
	keys := make(map[int]voteKey, len(pool))
	for _, s := range pool {
		keys[s.c.edge] = voteKey{r: st.rng.Int63(), id: s.c.edge}
	}

	// Line 4: each uncovered tree edge votes for the first candidate
	// covering it.
	bestFor := make(map[int]voteKey, st.uncovered)
	chosen := make(map[int]bool, st.uncovered)
	for _, s := range pool {
		k := keys[s.c.edge]
		for _, t := range s.c.se {
			if st.covered[t] {
				continue
			}
			cur, ok := bestFor[t]
			if !ok || k.less(cur) {
				bestFor[t] = k
				chosen[t] = true
			}
		}
	}

	// Line 5: count votes against the coverage state at the start of the
	// iteration; all acceptances happen simultaneously, so collect first.
	var accepted []*candidate
	for _, s := range pool {
		k := keys[s.c.edge]
		var votes int64
		for _, t := range s.c.se {
			if !st.covered[t] && chosen[t] && bestFor[t] == k {
				votes++
			}
		}
		if votes*st.voteDenom >= s.ce {
			accepted = append(accepted, s.c)
		}
	}
	// Line 6: add the accepted candidates and refresh coverage.
	for _, c := range accepted {
		st.addToA(c)
	}
	return len(accepted) > 0, nil
}
