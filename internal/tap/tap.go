// Package tap implements the paper's Section 3: the distributed weighted
// tree augmentation (TAP) algorithm that underlies Theorem 1.1. Given a
// spanning tree T of a 2-edge-connected weighted graph G, it selects a set A
// of non-tree edges such that T ∪ A is 2-edge-connected, with a *guaranteed*
// O(log n) approximation of the optimum augmentation, in O(log² n)
// iterations w.h.p., each costing O(D + √n) rounds.
//
// The iteration logic (rounded cost-effectiveness, random voting with
// threshold |Ce|/8) is implemented exactly as specified. Coverage and voting
// are computed over the tree paths S_e; the per-iteration round cost is
// charged from the measured segment-decomposition parameters per the
// implementation plan of §3.1 (computations (I)–(III), each O(D + √n):
// a constant number of segment-local pipelined scans of length ≤ the maximum
// segment diameter plus skeleton/BFS-tree broadcasts of length ≤ D + number
// of segments).
//
//kecss:deterministic
package tap

import (
	"fmt"
	"math/bits"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/rounds"
	"repro/internal/segments"
	"repro/internal/tree"
)

// Options configures the TAP algorithm. The zero value selects the paper's
// parameters.
type Options struct {
	// Rng drives the random voting. Required.
	Rng *rand.Rand
	// VoteDenom is the acceptance threshold denominator: a candidate needs
	// at least |Ce|/VoteDenom votes. The paper uses 8. 0 means 8.
	VoteDenom int64
	// DisableRounding makes candidate selection use exact maximum
	// cost-effectiveness instead of the power-of-2 rounded value
	// (an ablation; the approximation proof needs rounding).
	DisableRounding bool
	// SegmentTarget overrides the √n decomposition parameter (0 = default).
	SegmentTarget int
	// MaxIterations bounds the main loop; 0 means 40·(log n)² + 100, far
	// above the w.h.p. bound of Lemma 3.11.
	MaxIterations int
}

// Result is the outcome of the augmentation.
type Result struct {
	// Augmentation holds the selected non-tree edge IDs (the set A).
	Augmentation []int
	// Weight is the total weight of the augmentation.
	Weight int64
	// Iterations is the number of voting iterations executed (Lemma 3.11:
	// O(log² n) w.h.p.).
	Iterations int
	// Rounds is the total charged round count (Theorem 3.12:
	// O((D+√n)·log² n)).
	Rounds int64
	// RoundBreakdown itemizes the charges.
	RoundBreakdown []rounds.Charge
	// Decomposition is the segment decomposition used for accounting.
	Decomposition *segments.Decomposition
}

// Augment runs the weighted TAP algorithm on graph g with spanning tree tr.
// Every tree edge must be coverable by some non-tree edge (g must be
// 2-edge-connected), otherwise an error is returned.
func Augment(g *graph.Graph, tr *tree.Rooted, opts Options) (*Result, error) {
	if opts.Rng == nil {
		return nil, fmt.Errorf("tap: Options.Rng is required")
	}
	voteDenom := opts.VoteDenom
	if voteDenom == 0 {
		voteDenom = 8
	}
	n := g.N()
	target := opts.SegmentTarget
	if target == 0 {
		target = segments.DefaultTarget(n)
	}
	maxIters := opts.MaxIterations
	if maxIters == 0 {
		l := int(rounds.Log2Ceil(n)) + 1
		maxIters = 40*l*l + 100
	}

	dec, err := segments.Decompose(g, tr, target)
	if err != nil {
		return nil, fmt.Errorf("tap: decomposition failed: %w", err)
	}
	var acc rounds.Accountant
	// Construction costs charged once: the decomposition itself plus the
	// initial dissemination of Claims 3.1/3.2 (all O(D + √n)).
	d := int64(g.DiameterEstimate())
	segCost := int64(dec.MaxSegmentDiameter()) + int64(len(dec.Segments))
	acc.Charge("decomposition", d+segCost)

	st := newState(g, tr, voteDenom, !opts.DisableRounding, opts.Rng)

	// Pre-iteration step: add all weight-0 edges and mark their coverage
	// (§3: "at the beginning of the algorithm we add to A all the edges with
	// weight 0").
	for i := range st.cands {
		if c := &st.cands[i]; g.Edge(c.edge).W == 0 {
			st.addToA(c)
		}
	}
	acc.Charge("zero-weight preprocessing", d+segCost)

	res := &Result{Decomposition: dec}
	for st.uncovered > 0 {
		if res.Iterations >= maxIters {
			return nil, fmt.Errorf("tap: exceeded %d iterations with %d tree edges uncovered", maxIters, st.uncovered)
		}
		res.Iterations++
		progressed, err := st.iterate()
		if err != nil {
			return nil, err
		}
		// Per-iteration charge, Lemma 3.3 / §3.1: computations (I)–(III)
		// are each a constant number of segment pipelines (≤ max segment
		// diameter), skeleton/BFS broadcasts (≤ D + #segments) and global
		// aggregations (≤ D).
		acc.Charge("iterations", 3*(d+segCost)+2*d)
		if !progressed {
			return nil, fmt.Errorf("tap: no progress in iteration %d (tree not augmentable?)", res.Iterations)
		}
	}
	res.Augmentation = append(res.Augmentation, st.a...)
	res.Weight = g.WeightOf(res.Augmentation)
	res.Rounds = acc.Total()
	res.RoundBreakdown = acc.Breakdown()
	return res, nil
}

// candidate is the per-non-tree-edge bookkeeping. se points into the state's
// shared path arena.
type candidate struct {
	edge int
	se   []int // tree edge IDs on the covered path (S_e), fixed
	inA  bool
}

// state keeps all per-edge data in dense slices indexed by graph edge ID —
// the voting loop is the hot path of the whole 2-ECSS solve, and map lookups
// per tree edge per candidate per iteration dominated it.
type state struct {
	g         *graph.Graph
	tr        *tree.Rooted
	voteDenom int64
	rounding  bool
	rng       *rand.Rand

	cands     []candidate
	isTree    []bool // per edge ID: tree edge of tr
	covered   []bool // per edge ID: covered tree edge (false for non-tree)
	uncovered int
	a         []int

	// Per-iteration scratch, reused across iterations.
	pool     []scored  // candidates at the maximum rounded cost-effectiveness
	keys     []voteKey // random keys, aligned with pool
	voteBest []voteKey // per tree edge: winning key this iteration
	voteIter []int32   // per tree edge: iteration voteBest was written
	iter     int32
	accepted []int32 // pool indices accepted this iteration
}

// scored pairs a candidate index with its current |Ce|.
type scored struct {
	cand int
	ce   int64
}

func newState(g *graph.Graph, tr *tree.Rooted, voteDenom int64, rounding bool, rng *rand.Rand) *state {
	m := g.M()
	st := &state{
		g:         g,
		tr:        tr,
		voteDenom: voteDenom,
		rounding:  rounding,
		rng:       rng,
		isTree:    make([]bool, m),
		covered:   make([]bool, m),
		voteBest:  make([]voteKey, m),
		voteIter:  make([]int32, m),
	}
	for v := 0; v < tr.N(); v++ {
		if v != tr.Root {
			st.isTree[tr.ParentEdge[v]] = true
		}
	}
	// Candidate paths live in one flat arena: total length first, then fill.
	// (A non-tree edge with an empty path could only be a self-loop, which
	// Graph forbids, so every non-tree edge is a candidate.)
	nCands, totalLen := 0, 0
	for _, e := range g.Edges() {
		if !st.isTree[e.ID] {
			nCands++
			totalLen += tr.PathLen(e.U, e.V)
		}
	}
	arena := make([]int, 0, totalLen)
	st.cands = make([]candidate, 0, nCands)
	for _, e := range g.Edges() {
		if st.isTree[e.ID] {
			continue
		}
		start := len(arena)
		arena = tr.AppendPathEdges(arena, e.U, e.V)
		st.cands = append(st.cands, candidate{edge: e.ID, se: arena[start:len(arena):len(arena)]})
	}
	st.uncovered = tr.N() - 1
	return st
}

// ceLen returns |Ce|: uncovered tree edges on the candidate's path.
func (st *state) ceLen(c *candidate) int64 {
	var k int64
	for _, t := range c.se {
		if !st.covered[t] {
			k++
		}
	}
	return k
}

// addToA puts the candidate into the augmentation and marks its whole path
// covered.
func (st *state) addToA(c *candidate) {
	if c.inA {
		return
	}
	c.inA = true
	st.a = append(st.a, c.edge)
	for _, t := range c.se {
		if !st.covered[t] {
			st.covered[t] = true
			st.uncovered--
		}
	}
}

// RoundedExp returns the exponent i of the rounded cost-effectiveness
// ρ̃ = 2^i: the smallest power of two strictly greater than ρ = ce/w
// (§2.1). Requires ce >= 1 and w >= 1 (zero-weight edges are handled in
// preprocessing and ce = 0 edges are never candidates). Exact integer
// arithmetic, overflow-safe. Exported because the Aug_k algorithm of §4
// rounds its cost-effectiveness identically.
func RoundedExp(ce, w int64) int {
	// 2^i·w > ce is monotone in i and first becomes true within one step of
	// the bit-length difference, so probe from there instead of scanning the
	// full exponent range (this runs once per candidate per iteration).
	start := bits.Len64(uint64(ce)) - bits.Len64(uint64(w)) - 1
	if start < -62 {
		start = -62
	}
	for i := start; i <= 62; i++ {
		if pow2TimesExceeds(i, w, ce) {
			return i
		}
	}
	return 63
}

// pow2TimesExceeds reports whether 2^i · w > ce, without overflowing.
func pow2TimesExceeds(i int, w, ce int64) bool {
	if i >= 0 {
		if w > (int64(1)<<62)>>uint(i) {
			return true // 2^i·w exceeds 2^62 > any ce we see
		}
		return (w << uint(i)) > ce
	}
	s := uint(-i)
	if ce > (int64(1)<<62)>>s {
		return false // ce·2^s exceeds 2^62 >= w
	}
	return w > (ce << s)
}

// voteKey orders candidates for tree-edge voting: by random number, then by
// edge ID (the paper's tie-break).
type voteKey struct {
	r  int64
	id int
}

func (k voteKey) less(o voteKey) bool {
	if k.r != o.r {
		return k.r < o.r
	}
	return k.id < o.id
}

// iterate executes one voting iteration (Lines 1–6 of the §3 algorithm).
// It reports whether at least one edge was added to A. All per-iteration
// working sets are dense slices reused across iterations; the per-tree-edge
// vote table is invalidated by bumping st.iter instead of clearing.
func (st *state) iterate() (bool, error) {
	// Line 1–2: rounded cost-effectiveness; candidates achieve the maximum.
	var (
		best      = -1 << 30 // max rounded exponent
		bestExact struct{ ce, w int64 }
		exact     = !st.rounding
	)
	bestExact.w = 1
	st.pool = st.pool[:0]
	for i := range st.cands {
		c := &st.cands[i]
		if c.inA {
			continue
		}
		ce := st.ceLen(c)
		if ce == 0 {
			continue
		}
		w := st.g.Edge(c.edge).W
		if exact {
			// Compare ce/w with bestExact by cross-multiplication.
			cmp := ce*bestExact.w - bestExact.ce*w
			if cmp > 0 {
				bestExact.ce, bestExact.w = ce, w
				st.pool = st.pool[:0]
			}
			if cmp >= 0 {
				st.pool = append(st.pool, scored{i, ce})
			}
			continue
		}
		e := RoundedExp(ce, w)
		if e > best {
			best = e
			st.pool = st.pool[:0]
		}
		if e == best {
			st.pool = append(st.pool, scored{i, ce})
		}
	}
	if len(st.pool) == 0 {
		return false, fmt.Errorf("tap: %d uncovered tree edges but no candidate covers any (graph not 2-edge-connected)", st.uncovered)
	}

	// Line 3: random numbers.
	st.keys = st.keys[:0]
	for _, s := range st.pool {
		st.keys = append(st.keys, voteKey{r: st.rng.Int63(), id: st.cands[s.cand].edge})
	}

	// Line 4: each uncovered tree edge votes for the first candidate
	// covering it.
	st.iter++
	for pi, s := range st.pool {
		k := st.keys[pi]
		for _, t := range st.cands[s.cand].se {
			if st.covered[t] {
				continue
			}
			if st.voteIter[t] != st.iter || k.less(st.voteBest[t]) {
				st.voteIter[t] = st.iter
				st.voteBest[t] = k
			}
		}
	}

	// Line 5: count votes against the coverage state at the start of the
	// iteration; all acceptances happen simultaneously, so collect first.
	st.accepted = st.accepted[:0]
	for pi, s := range st.pool {
		k := st.keys[pi]
		var votes int64
		for _, t := range st.cands[s.cand].se {
			if !st.covered[t] && st.voteIter[t] == st.iter && st.voteBest[t] == k {
				votes++
			}
		}
		if votes*st.voteDenom >= s.ce {
			st.accepted = append(st.accepted, int32(s.cand))
		}
	}
	// Line 6: add the accepted candidates and refresh coverage.
	for _, ci := range st.accepted {
		st.addToA(&st.cands[ci])
	}
	return len(st.accepted) > 0, nil
}
