package core

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/rounds"
)

// KECSSOptions configures the weighted k-ECSS solver (§4, Theorem 1.2).
// The option value (and the arena it may carry) lives for one Solve call
// on the caller's goroutine.
//
//kecss:arena-owner
type KECSSOptions struct {
	// Rng drives all randomness. Required.
	Rng *rand.Rand
	// PhaseLen is forwarded to each Aug_i (see AugOptions.PhaseLen).
	PhaseLen int
	// SimulateMST runs the first level (connectivity 0→1) as the real
	// message-passing Borůvka on the CONGEST simulator and uses its measured
	// rounds; otherwise the level is computed by Kruskal and charged the
	// Kutten–Peleg bound the paper assumes.
	SimulateMST bool
	// Executor selects the simulator executor when SimulateMST is set.
	Executor congest.Executor
	// Arena, if set, supplies reusable simulation buffers (for repetition
	// sweeps that solve many same-sized instances).
	Arena *congest.NetworkArena
	// SkipValidation skips the up-front k-edge-connectivity check of the
	// input graph. The check costs a capped max-flow sweep per call; sweep
	// drivers that solve many trials on one already-validated graph (the
	// kecss.Pool does) validate once and set this for the per-trial solves.
	// With an input that is not k-edge-connected the solver fails later,
	// with a less precise error.
	SkipValidation bool
	// CutEnum tunes the minimum-cut enumeration of every Aug level (see
	// CutEnumOptions); results are byte-identical at any setting.
	CutEnum CutEnumOptions
	// Phase, if set, receives a PhaseEvent per completed solver phase
	// (validate, mst, then cut-enum/augment per level, audit for k >= 4).
	// Nil costs nothing.
	Phase PhaseObserver
}

// KECSSResult is the outcome of the k-ECSS computation.
type KECSSResult struct {
	// Edges holds the edge IDs of the k-edge-connected spanning subgraph.
	Edges []int
	// Weight is the subgraph's total weight.
	Weight int64
	// Rounds is the charged/measured round total across all k levels
	// (Theorem 1.2: O(k(D·log³n + n))).
	Rounds int64
	// Iterations is the total Aug iteration count across levels.
	Iterations int
	// Levels records the per-level augmentation results (Levels[0] is the
	// MST step and has only Added/Weight/Rounds populated).
	Levels []*AugResult
}

// SolveKECSS computes a k-edge-connected spanning subgraph of g by the
// framework of Claim 2.1: level 1 is an MST (the optimal Aug_1), and each
// level i in 2..k runs the §4 algorithm to augment connectivity from i-1
// to i. Expected approximation O(k·log n).
func SolveKECSS(g *graph.Graph, k int, opts KECSSOptions) (*KECSSResult, error) {
	if opts.Rng == nil {
		return nil, fmt.Errorf("core: KECSSOptions.Rng is required")
	}
	if k < 1 {
		return nil, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	if !opts.SkipValidation {
		t0 := opts.Phase.phaseStart()
		ok := g.IsKEdgeConnected(k)
		opts.Phase.emit(PhaseEvent{Phase: "validate", Start: t0})
		if !ok {
			return nil, fmt.Errorf("core: input graph is not %d-edge-connected", k)
		}
	}
	res := &KECSSResult{}

	// Level 1: MST.
	level1 := &AugResult{}
	t0 := opts.Phase.phaseStart()
	var mstMessages int64
	if opts.SimulateMST {
		var simOpts []congest.Option
		if opts.Executor != nil {
			simOpts = append(simOpts, congest.WithExecutor(opts.Executor))
		}
		if opts.Arena != nil {
			simOpts = append(simOpts, congest.WithArena(opts.Arena))
		}
		mres, err := mst.DistributedBoruvka(g, simOpts...)
		if err != nil {
			return nil, fmt.Errorf("core: distributed MST: %w", err)
		}
		level1.Added = mres.EdgeIDs
		level1.Weight = mres.Weight
		level1.Rounds = int64(mres.Metrics.Rounds)
		mstMessages = mres.Metrics.Messages
	} else {
		ids, w := mst.Kruskal(g)
		level1.Added = ids
		level1.Weight = w
		level1.Rounds = rounds.MSTKuttenPeleg(g.N(), g.DiameterEstimate())
	}
	opts.Phase.emit(PhaseEvent{
		Phase: "mst", Level: 1, Start: t0,
		Rounds: level1.Rounds, Messages: mstMessages, Items: len(level1.Added),
	})
	res.Levels = append(res.Levels, level1)
	h := append([]int(nil), level1.Added...)
	res.Rounds += level1.Rounds

	for i := 2; i <= k; i++ {
		ar, err := Aug(g, h, i, AugOptions{Rng: opts.Rng, PhaseLen: opts.PhaseLen, CutEnum: opts.CutEnum, Phase: opts.Phase})
		if err != nil {
			return nil, fmt.Errorf("core: Aug_%d: %w", i, err)
		}
		res.Levels = append(res.Levels, ar)
		res.Rounds += ar.Rounds
		res.Iterations += ar.Iterations
		h = append(h, ar.Added...)
	}
	sort.Ints(h)
	if k >= 4 {
		// Levels with size >= 3 cut enumeration are complete w.h.p., not
		// certainly (Karger–Stein trials); intermediate misses surface at
		// the next level's connectivity check, but the final level has no
		// next level. The pooled-Dinic audit makes a missed cut an explicit
		// error instead of a silently under-connected result. k <= 3 levels
		// enumerate exactly (bridges, cut pairs) and need no audit.
		t0 := opts.Phase.phaseStart()
		sub, _ := g.SubgraphOf(h)
		ok := sub.IsKEdgeConnected(k)
		opts.Phase.emit(PhaseEvent{Phase: "audit", Level: k, Start: t0, Items: len(h)})
		if !ok {
			return nil, fmt.Errorf("core: %d-ECSS output failed the connectivity audit (cut enumeration missed a minimum cut; raise CutEnumOptions.TrialFactor)", k)
		}
	}
	res.Edges = h
	res.Weight = g.WeightOf(h)
	return res, nil
}
