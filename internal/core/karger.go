package core

// Recursive Karger–Stein contraction for enumerating all minimum cuts of a
// graph with known edge connectivity size >= 3.
//
// One trial contracts the graph to ~n/√2 supernodes, relabels the
// supernodes densely, and recurses twice on that shared prefix; at <= ksBase
// supernodes the recursion stops and every bipartition of the contracted
// graph is enumerated exactly, emitting each one whose crossing-edge count
// equals the target size. A fixed minimum cut survives one trial with
// probability Ω(1/log n) — versus Ω(1/n²) for a flat contraction to two
// supernodes — so Θ(log²n) trials enumerate all minimum cuts w.h.p.,
// replacing the reference implementation's Θ(n²·log n) flat runs.
//
// Two de-amortisations keep a trial cheap. First, dense relabelling: level
// d works on n_d ≈ n/√2^d supernodes, so its union-find, edge list, and
// the snapshot taken for the second child are all O(n_d + m_d), not
// O(n + m). Second, signature interning: a qualifying bipartition is
// identified by the sorted IDs of its `size` crossing edges (a perfect
// identity for minimum cuts), so re-sightings of known cuts cost O(λ);
// the O(n·depth) reconstruction of original-vertex membership — composing
// the per-level supernode maps — runs only on each cut's first sighting.
//
// All per-trial state lives in a cutArena drawn from a sync.Pool: the
// per-level edge lists, union-find and relabelling scratch, the side-bitset
// buffer, the O(1)-seed per-trial RNG, and the arena's signature intern
// table. After the arena's buffers have grown to the graph's size, a trial
// allocates only when it discovers a bipartition this arena has never seen
// (the interned signature plus the materialised bitset, carved from a
// shared block).
//
// Determinism contract (the same one internal/service established for
// sweeps): trial t always draws from a private RNG seeded baseSeed XOR t,
// where baseSeed is one Int63 drawn from the caller's RNG; trial results
// merge in trial order; the merged set is sorted canonically. Together
// these make the output byte-identical at any CutEnumOptions.Workers value
// and under any goroutine scheduling.

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sync"

	"repro/internal/graph"
	"repro/internal/service"
)

// ksBase is the supernode count at which contraction stops and the trial
// enumerates every bipartition of the contracted graph exactly.
const ksBase = 6

// ksEdge is a surviving edge between two supernodes of its level, in that
// level's dense labels. id is the original edge ID, carried through every
// relabelling so leaves can identify cuts by their crossing-edge signature.
type ksEdge struct{ u, v, id int32 }

// ksRand is the per-trial PRNG: splitmix64, chosen because re-seeding is
// O(1) (math/rand's source regenerates a 607-entry table per Seed, which
// would dominate whole trials on small graphs). Contraction only needs
// uniform edge picks, and every trial re-seeds, so the tiny state is ideal.
type ksRand struct{ s uint64 }

func (r *ksRand) seed(v int64) { r.s = uint64(v) }

func (r *ksRand) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform int in [0, n). The modulo bias is < n/2⁶⁴ —
// irrelevant against the contraction analysis' constant slack.
func (r *ksRand) intn(n int) int {
	return int(r.next() % uint64(n))
}

// ksLevel is one recursion level's contraction state.
type ksLevel struct {
	nodes int      // supernode count n_d; labels are 0..nodes-1
	edges []ksEdge // surviving non-loop edges in this level's labels
	v0    int32    // supernode containing original vertex 0
	mapTo []int32  // parent-level supernode -> this level's supernode
	// contraction scratch (sized to this level's nodes / edges)
	work   []ksEdge // mutable edge copy the random picks consume
	parent []int32  // union-find over this level's supernodes
	newid  []int32  // root -> dense child label
}

// cutArena owns every buffer a contraction worker needs. Arenas are
// recycled through arenaPool; prepare resets them for a new graph. An arena
// is single-goroutine state: the parallel driver hands each arena to one
// worker at a time.
type cutArena struct {
	n      int
	levels []ksLevel
	side   []uint64
	ids    []int32 // original vertex -> leaf supernode, during materialisation
	sig    []int32 // crossing-edge signature scratch
	rng    ksRand
	sigs   sigInterner
	store  cutStore
	fresh  []Cut // cuts first seen by this arena in the current trial
}

// sigInterner dedups minimum cuts by their crossing-edge signature: the
// sorted IDs of the `stride` crossing edges. For a minimum cut the
// signature is a perfect identity — removing its λ edges splits the graph
// into exactly the cut's two sides — and probing it costs O(λ), versus
// O(n) to materialise the bipartition bitset. Hash collisions are resolved
// by comparing the stored signatures.
type sigInterner struct {
	stride int
	table  map[uint64][]int32
	sigs   []int32 // flattened, stride entries per interned cut
}

func (si *sigInterner) reset(stride int) {
	si.stride = stride
	if si.table == nil {
		si.table = make(map[uint64][]int32)
	} else {
		clear(si.table)
	}
	si.sigs = si.sigs[:0]
}

// add interns the sorted signature, reporting whether it was new.
func (si *sigInterner) add(sig []int32) bool {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for _, id := range sig {
		h = (h ^ uint64(uint32(id))) * prime64
	}
	for _, idx := range si.table[h] {
		stored := si.sigs[int(idx)*si.stride : (int(idx)+1)*si.stride]
		same := true
		for i := range sig {
			if stored[i] != sig[i] {
				same = false
				break
			}
		}
		if same {
			return false
		}
	}
	si.table[h] = append(si.table[h], int32(len(si.sigs)/si.stride))
	si.sigs = append(si.sigs, sig...)
	return true
}

var arenaPool = sync.Pool{New: func() any { return new(cutArena) }}

// prepare resets the arena for an n-vertex graph whose trials recurse at
// most maxDepth levels and identify cuts by `size`-edge signatures, growing
// (never shrinking) its buffers.
func (a *cutArena) prepare(n, maxDepth, size int) {
	a.n = n
	if cap(a.side) < cutWords(n) {
		a.side = make([]uint64, cutWords(n))
	}
	a.side = a.side[:cutWords(n)]
	if cap(a.ids) < n {
		a.ids = make([]int32, n)
	}
	a.ids = a.ids[:n]
	for len(a.levels) <= maxDepth {
		a.levels = append(a.levels, ksLevel{})
	}
	a.fresh = a.fresh[:0]
	a.sigs.reset(size)
	a.store.reset(n)
}

// ksFind is find with path halving over a flat parent array.
func ksFind(p []int32, x int32) int32 {
	for p[x] != x {
		p[x] = p[p[x]]
		x = p[x]
	}
	return x
}

// ksTarget is the supernode count one recursion step contracts to: n/√2,
// the shrink factor under which a fixed minimum cut survives the step with
// probability about 1/2. Rounding down (instead of the analysis'
// ⌈1+n/√2⌉) trims several low-shrink tail levels off the recursion — a
// 4–8× reduction in leaves — at a constant-factor hit to per-trial success
// probability that the empirically calibrated trial count absorbs.
func ksTarget(n int) int {
	t := int(float64(n) / math.Sqrt2)
	if t >= n {
		t = n - 1
	}
	if t < 2 {
		t = 2
	}
	return t
}

// ksDepth returns the recursion depth a trial on an n-vertex graph reaches.
func ksDepth(n int) int {
	d := 0
	for n > ksBase {
		n = ksTarget(n)
		d++
	}
	return d
}

// ksTrials returns the Karger–Stein repetition count for an n-vertex graph:
// Θ(log²n) trials drive the probability of missing any of the <= n(n-1)/2
// minimum cuts below 1/poly(n). The constant is calibrated against the
// worst observed coverage need on the adversarial Θ(n²)-cut family
// (doubled cycles: 65 trials to full coverage at n=96 over 30 seeds, vs
// 192 here) while ordinary families cover within ~14 trials; the
// exhaustive <= ksBase base case is what makes trials this productive.
// TrialFactor in CutEnumOptions scales it for callers wanting more margin.
func ksTrials(n int) int {
	l := bits.Len(uint(n)) + 1
	t := 3 * l * l
	if t < 64 {
		t = 64
	}
	return t
}

// runTrial executes one full Karger–Stein trial over the base edge list,
// appending cuts this arena first sees to a.fresh.
func (a *cutArena) runTrial(base []ksEdge, size int) {
	lv := &a.levels[0]
	lv.nodes = a.n
	lv.edges = append(lv.edges[:0], base...)
	lv.v0 = 0
	a.recurse(0, size)
}

func (a *cutArena) recurse(depth, size int) {
	lv := &a.levels[depth]
	if lv.nodes <= ksBase {
		a.enumerateBase(depth, size)
		return
	}
	target := ksTarget(lv.nodes)
	a.contractInto(depth, target)
	a.recurse(depth+1, size)
	a.contractInto(depth, target)
	a.recurse(depth+1, size)
}

// contractInto contracts level depth's graph to `target` supernodes and
// writes the relabelled result into level depth+1, leaving level depth
// intact for the sibling call. Non-loop edges are picked uniformly at
// random (self-loops are removed lazily when picked, which keeps each pick
// uniform over the surviving multi-edges).
func (a *cutArena) contractInto(depth, target int) {
	lv := &a.levels[depth]
	child := &a.levels[depth+1]
	n := lv.nodes
	if cap(lv.parent) < n {
		lv.parent = make([]int32, n)
		lv.newid = make([]int32, n)
	}
	p := lv.parent[:n]
	for i := range p {
		p[i] = int32(i)
	}
	work := append(lv.work[:0], lv.edges...)
	remaining := n
	for remaining > target && len(work) > 0 {
		i := a.rng.intn(len(work))
		e := work[i]
		ru := ksFind(p, e.u)
		rv := ksFind(p, e.v)
		if ru == rv {
			work[i] = work[len(work)-1]
			work = work[:len(work)-1]
			continue
		}
		p[ru] = rv
		remaining--
	}
	lv.work = work[:0]
	// Dense relabelling: roots get child labels in scan order (deterministic
	// for a fixed random stream).
	newid := lv.newid[:n]
	next := int32(0)
	for i := int32(0); i < int32(n); i++ {
		if p[i] == i {
			newid[i] = next
			next++
		}
	}
	if cap(child.mapTo) < n {
		child.mapTo = make([]int32, n)
	}
	mapTo := child.mapTo[:n]
	for i := int32(0); i < int32(n); i++ {
		mapTo[i] = newid[ksFind(p, i)]
	}
	child.mapTo = mapTo
	child.nodes = int(next)
	child.v0 = mapTo[lv.v0]
	child.edges = child.edges[:0]
	for _, e := range lv.edges {
		u, v := mapTo[e.u], mapTo[e.v]
		if u != v {
			child.edges = append(child.edges, ksEdge{u, v, e.id})
		}
	}
}

// enumerateBase checks every bipartition of the <= ksBase supernodes at
// `depth` and records each one crossed by exactly `size` edges. Because
// size equals the graph's edge connectivity, every recorded bipartition is
// a genuine minimum cut (and both its sides are automatically connected: a
// disconnected side would split δ(S) into two disjoint nonempty cuts of
// total size λ, contradicting each being >= λ).
func (a *cutArena) enumerateBase(depth, size int) {
	lv := &a.levels[depth]
	if len(lv.edges) < size || lv.nodes < 2 {
		return
	}
	if cap(a.sig) < size {
		a.sig = make([]int32, size)
	}
	composed := false
	for mask := 1; mask < 1<<uint(lv.nodes); mask++ {
		if mask&(1<<uint(lv.v0)) != 0 {
			continue // canonical orientation: vertex 0's supernode stays out
		}
		crossing := 0
		sig := a.sig[:size]
		for _, e := range lv.edges {
			if (mask>>uint(e.u))&1 != (mask>>uint(e.v))&1 {
				if crossing == size {
					crossing++
					break
				}
				sig[crossing] = e.id
				crossing++
			}
		}
		if crossing != size {
			continue
		}
		// Identify the cut by its sorted crossing-edge signature — O(λ)
		// against O(n) for a bitset — and only materialise first sightings.
		for i := 1; i < size; i++ {
			for j := i; j > 0 && sig[j] < sig[j-1]; j-- {
				sig[j], sig[j-1] = sig[j-1], sig[j]
			}
		}
		if !a.sigs.add(sig) {
			continue
		}
		if !composed {
			a.composeIDs(depth)
			composed = true
		}
		// Materialise the vertex bipartition. Vertex 0's side is 0 by the
		// mask restriction, so the bitset is already canonical.
		side := a.side
		for i := range side {
			side[i] = 0
		}
		for v := 0; v < a.n; v++ {
			if mask&(1<<uint(a.ids[v])) != 0 {
				side[v/64] |= 1 << uint(v%64)
			}
		}
		a.fresh = append(a.fresh, a.store.alloc(side))
	}
}

// composeIDs fills a.ids with each original vertex's supernode label at
// `depth` by composing the per-level maps. Called at most once per leaf
// visit, and only for leaves that found a qualifying bipartition.
func (a *cutArena) composeIDs(depth int) {
	ids := a.ids
	for v := range ids {
		ids[v] = int32(v)
	}
	for d := 1; d <= depth; d++ {
		mapTo := a.levels[d].mapTo
		for v := range ids {
			ids[v] = mapTo[ids[v]]
		}
	}
}

// cutsByContraction enumerates all minimum cuts of h (whose edge
// connectivity must equal size) by deterministic, optionally parallel
// Karger–Stein trials. See the file comment for the scheme and the
// determinism contract.
func cutsByContraction(h *graph.Graph, size int, rng *rand.Rand, opts CutEnumOptions) ([]Cut, error) {
	if rng == nil {
		return nil, fmt.Errorf("core: contraction enumeration requires rng")
	}
	if kc := opts.KnownConnectivity; kc > 0 {
		if kc > size {
			return nil, nil // no cuts of this size: already (size+1)-connected
		}
		if kc < size {
			return nil, fmt.Errorf("core: graph has connectivity %d < requested cut size %d", kc, size)
		}
		if d := h.MinDegree(); d < size {
			return nil, fmt.Errorf("core: KnownConnectivity %d contradicts min degree %d", kc, d)
		}
	} else {
		lambda := h.EdgeConnectivityUpTo(size + 1)
		if lambda > size {
			return nil, nil // no cuts of this size: already (size+1)-connected
		}
		if lambda < size {
			return nil, fmt.Errorf("core: graph has connectivity %d < requested cut size %d", lambda, size)
		}
	}
	n := h.N()
	trials := ksTrials(n)
	if opts.TrialFactor > 1 {
		trials *= opts.TrialFactor
	}
	maxDepth := ksDepth(n)
	base := make([]ksEdge, h.M())
	for i, e := range h.Edges() {
		base[i] = ksEdge{u: int32(e.U), v: int32(e.V), id: int32(e.ID)}
	}
	baseSeed := rng.Int63()

	workers := opts.Workers
	if workers > trials {
		workers = trials
	}
	if workers <= 1 {
		// Sequential: one arena, whose intern table is the global dedup, so
		// already-seen bipartitions cost no allocation at all.
		a := arenaPool.Get().(*cutArena)
		a.prepare(n, maxDepth, size)
		out := make([]Cut, 0, 16)
		for t := 0; t < trials; t++ {
			a.rng.seed(baseSeed ^ int64(t))
			a.fresh = a.fresh[:0]
			a.runTrial(base, size)
			out = append(out, a.fresh...)
		}
		arenaPool.Put(a)
		sortCuts(out)
		return out, nil
	}

	// Parallel: each worker borrows one arena per trial from a shared ring;
	// an arena dedups across all trials it happens to serve. found[t] holds
	// the cuts trial t's arena saw for the first time; merging in trial
	// order then reproduces the sequential first-occurrence order exactly
	// (the globally first occurrence of a cut is necessarily fresh for
	// whichever arena runs it).
	arenas := make(chan *cutArena, workers)
	for w := 0; w < workers; w++ {
		a := arenaPool.Get().(*cutArena)
		a.prepare(n, maxDepth, size)
		arenas <- a
	}
	found := make([][]Cut, trials)
	service.Do(workers, trials, func(t int) {
		a := <-arenas
		a.rng.seed(baseSeed ^ int64(t))
		a.fresh = a.fresh[:0]
		a.runTrial(base, size)
		if len(a.fresh) > 0 {
			found[t] = append([]Cut(nil), a.fresh...)
		}
		arenas <- a
	})
	for w := 0; w < workers; w++ {
		arenaPool.Put(<-arenas)
	}
	var merge cutInterner
	merge.reset(n)
	var out []Cut
	for _, fs := range found {
		for _, c := range fs {
			if merge.addCut(c) {
				out = append(out, c)
			}
		}
	}
	sortCuts(out)
	return out, nil
}
