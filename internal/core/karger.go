package core

// Recursive Karger–Stein contraction for enumerating all minimum cuts of a
// graph with known edge connectivity size >= 3.
//
// One trial contracts the graph to ~n/√2 supernodes, relabels the
// supernodes densely, and recurses twice on that shared prefix; at <= ksBase
// supernodes the recursion stops and every bipartition of the contracted
// graph is enumerated exactly, emitting each one whose crossing-edge count
// equals the target size. A fixed minimum cut survives one trial with
// probability Ω(1/log n) — versus Ω(1/n²) for a flat contraction to two
// supernodes — so Θ(log²n) trials enumerate all minimum cuts w.h.p.,
// replacing the reference implementation's Θ(n²·log n) flat runs.
//
// Four de-amortisations keep a trial cheap. First, dense relabelling:
// level d works on n_d ≈ n/√2^d supernodes, so its union-find, edge list,
// and the snapshot taken for the second child are all O(n_d + m_d), not
// O(n + m) — and the contraction writes a composed supernode→child-label
// map (ksLevel.comp), making the relabelling pass one array read per
// endpoint and fully branchless (see contractInto). Second, signature
// interning: a qualifying bipartition is identified by the sorted IDs of
// its `size` crossing edges (a perfect identity for minimum cuts), so
// re-sightings of known cuts cost O(λ); the reconstruction of
// original-vertex membership runs only on each cut's first sighting.
// Third, the gray-code leaf sweep: a leaf's 2^(n_leaf - 1) bipartitions
// are visited in gray-code order, so each step flips one supernode, whose
// incident-edge bitmask XORs into the crossing set — one XOR plus one
// popcount per bipartition instead of an O(m_leaf) recount — and the
// crossing edge IDs are gathered only for the rare bipartitions whose
// count equals the target (the sweep is output-sensitive; the per-mask
// recount survives behind CutEnumOptions.LeafRecount as the reference).
// Fourth, sibling-shared materialisation: the original-vertex → supernode
// composition is cached per level with a valid-prefix watermark, so the
// O(n)-per-level composing work for a leaf's first-sighted cut is shared
// with every later leaf under the same ancestors — contracting into level
// d+1 only invalidates compositions at levels > d, which both sibling
// subtrees of level d sit below.
//
// All per-trial state lives in a cutArena drawn from a sync.Pool: the
// per-level edge lists, union-find and relabelling scratch, the side-bitset
// buffer, the O(1)-seed per-trial RNG, and the arena's signature intern
// table. After the arena's buffers have grown to the graph's size, a trial
// allocates only when it discovers a bipartition this arena has never seen
// (the interned signature plus the materialised bitset, carved from a
// shared block).
//
// Determinism contract (the same one internal/service established for
// sweeps): trial t always draws from a private RNG seeded baseSeed XOR t,
// where baseSeed is one Int63 drawn from the caller's RNG; trial results
// merge in trial order; the merged set is sorted canonically. Together
// these make the output byte-identical at any CutEnumOptions.Workers value
// and under any goroutine scheduling.

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sync"

	"repro/internal/graph"
	"repro/internal/service"
)

// ksBase is the supernode count at which contraction stops and the trial
// enumerates every bipartition of the contracted graph exactly.
const ksBase = 6

// ksEdge is one surviving multigraph edge between two supernodes of its
// level, in that level's dense labels, carrying its original edge ID through
// every relabelling so leaves can identify cuts by their crossing-edge
// signature. Parallel edges stay separate 12-byte entries: an experiment
// that merged them into multiplicity bundles lost more to merge-branch
// mispredictions and merge-grid cache traffic at every level than the
// 2-3x shorter deep edge lists saved.
type ksEdge struct {
	u, v, id int32
}

// ksRand is the per-trial PRNG: splitmix64, chosen because re-seeding is
// O(1) (math/rand's source regenerates a 607-entry table per Seed, which
// would dominate whole trials on small graphs). Contraction only needs
// uniform edge picks, and every trial re-seeds, so the tiny state is ideal.
type ksRand struct{ s uint64 }

func (r *ksRand) seed(v int64) { r.s = uint64(v) }

func (r *ksRand) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform int in [0, n) by Lemire's multiply-shift on the
// top 32 output bits — two multiplies against the 20+-cycle division a
// modulo would cost, on a path run ~10 times per contraction. The bias is
// < n/2³² — irrelevant against the contraction analysis' constant slack.
func (r *ksRand) intn(n int) int {
	return int((r.next() >> 32) * uint64(n) >> 32)
}

// ksLevel is one recursion level's contraction state.
type ksLevel struct {
	nodes int      // supernode count n_d; labels are 0..nodes-1
	v0    int32    // supernode containing original vertex 0
	edges []ksEdge // surviving non-loop multigraph edges in this level's labels
	// comp (this level's supernode -> child supernode) is the composed
	// union-find + dense-relabel map that the latest contractInto of this
	// level wrote; composeIDs reads it directly.
	comp []int32
	ids  []int32 // original vertex -> this level's supernode (cached; see idsValid)
	// contraction scratch (sized to this level's nodes / edges)
	dead   []uint64 // edges discovered to be self-loops during the picks
	parent []int32  // union-find over this level's supernodes
	newid  []int32  // root -> dense child label
}

// ksStats counts what the base-case sweeps of one arena did. leaves and
// steps are per-trial quantities, so their totals across a run are
// deterministic at any worker count (unlike per-arena first-sighting
// counts, which depend on trial→arena assignment).
type ksStats struct {
	leaves int64 // base-case enumerations executed
	steps  int64 // bipartitions visited across all leaves
}

// cutArena owns every buffer a contraction worker needs. Arenas are
// recycled through arenaPool; prepare resets them for a new graph. An arena
// is single-goroutine state: the parallel driver hands each arena to one
// worker at a time.
//
//kecss:arena
type cutArena struct {
	n        int
	levels   []ksLevel
	side     []uint64
	sig      []int32 // crossing-edge signature scratch
	idsValid int     // deepest level whose ids cache is current (level 0 always is)
	recount  bool    // use the per-mask recount oracle instead of the gray sweep
	stats    ksStats
	rng      ksRand
	sigs     sigInterner
	store    cutStore
	fresh    []Cut // cuts first seen by this arena in the current trial
}

// sigInterner dedups minimum cuts by their crossing-edge signature: the
// sorted IDs of the `stride` crossing edges. For a minimum cut the
// signature is a perfect identity — removing its λ edges splits the graph
// into exactly the cut's two sides — and probing it costs O(λ), versus
// O(n) to materialise the bipartition bitset. Hash collisions are resolved
// by comparing the stored signatures.
type sigInterner struct {
	stride int
	table  map[uint64][]int32
	sigs   []int32 // flattened, stride entries per interned cut
}

func (si *sigInterner) reset(stride int) {
	si.stride = stride
	if si.table == nil {
		si.table = make(map[uint64][]int32)
	} else {
		clear(si.table)
	}
	si.sigs = si.sigs[:0]
}

// add interns the sorted signature, reporting whether it was new.
func (si *sigInterner) add(sig []int32) bool {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for _, id := range sig {
		h = (h ^ uint64(uint32(id))) * prime64
	}
	for _, idx := range si.table[h] {
		stored := si.sigs[int(idx)*si.stride : (int(idx)+1)*si.stride]
		same := true
		for i := range sig {
			if stored[i] != sig[i] {
				same = false
				break
			}
		}
		if same {
			return false
		}
	}
	si.table[h] = append(si.table[h], int32(len(si.sigs)/si.stride))
	si.sigs = append(si.sigs, sig...)
	return true
}

var arenaPool = sync.Pool{New: func() any { return new(cutArena) }}

// prepare resets the arena for an n-vertex graph whose trials recurse at
// most maxDepth levels and identify cuts by `size`-edge signatures, growing
// (never shrinking) its buffers.
func (a *cutArena) prepare(n, maxDepth, size int) {
	a.n = n
	if cap(a.side) < cutWords(n) {
		a.side = make([]uint64, cutWords(n))
	}
	a.side = a.side[:cutWords(n)]
	for len(a.levels) <= maxDepth {
		a.levels = append(a.levels, ksLevel{})
	}
	// Level 0's vertex→supernode map is the identity and never invalidated.
	lv0 := &a.levels[0]
	if cap(lv0.ids) < n {
		lv0.ids = make([]int32, n)
	}
	lv0.ids = lv0.ids[:n]
	for v := range lv0.ids {
		lv0.ids[v] = int32(v)
	}
	a.idsValid = 0
	a.stats = ksStats{}
	a.fresh = a.fresh[:0]
	a.sigs.reset(size)
	a.store.reset(n)
}

// ksFind is find with path halving over a flat parent array.
func ksFind(p []int32, x int32) int32 {
	for p[x] != x {
		p[x] = p[p[x]]
		x = p[x]
	}
	return x
}

// ksTarget is the supernode count one recursion step contracts to: n/√2,
// the shrink factor under which a fixed minimum cut survives the step with
// probability about 1/2. Rounding down (instead of the analysis'
// ⌈1+n/√2⌉) trims several low-shrink tail levels off the recursion — a
// 4–8× reduction in leaves — at a constant-factor hit to per-trial success
// probability that the empirically calibrated trial count absorbs.
func ksTarget(n int) int {
	t := int(float64(n) / math.Sqrt2)
	if t >= n {
		t = n - 1
	}
	if t < 2 {
		t = 2
	}
	return t
}

// ksDepth returns the recursion depth a trial on an n-vertex graph reaches.
func ksDepth(n int) int {
	d := 0
	for n > ksBase {
		n = ksTarget(n)
		d++
	}
	return d
}

// ksTrials returns the Karger–Stein repetition count for an n-vertex graph:
// Θ(log²n) trials drive the probability of missing any of the <= n(n-1)/2
// minimum cuts below 1/poly(n). The constant is calibrated against the
// worst observed coverage need on the adversarial Θ(n²)-cut family
// (doubled cycles: 65 trials to full coverage at n=96 over 30 seeds, vs
// 192 here) while ordinary families cover within ~14 trials; the
// exhaustive <= ksBase base case is what makes trials this productive.
// TrialFactor in CutEnumOptions scales it for callers wanting more margin.
func ksTrials(n int) int {
	l := bits.Len(uint(n)) + 1
	t := 3 * l * l
	if t < 64 {
		t = 64
	}
	return t
}

// runTrial executes one full Karger–Stein trial over the base edge list,
// appending cuts this arena first sees to a.fresh.
func (a *cutArena) runTrial(base []ksEdge, size int) {
	lv := &a.levels[0]
	lv.nodes = a.n
	lv.edges = append(lv.edges[:0], base...)
	lv.v0 = 0
	a.recurse(0, size)
}

func (a *cutArena) recurse(depth, size int) {
	lv := &a.levels[depth]
	if lv.nodes <= ksBase {
		a.enumerateBase(depth, size)
		return
	}
	target := ksTarget(lv.nodes)
	a.contractInto(depth, target)
	a.recurse(depth+1, size)
	a.contractInto(depth, target)
	a.recurse(depth+1, size)
}

// contractInto contracts level depth's graph to `target` supernodes and
// writes the relabelled result into level depth+1, leaving level depth
// intact for the sibling call. Multi-edges are picked uniformly at random by
// rejection against a dead-edge bitmap: edges discovered to be self-loops
// are marked dead, keeping each accepted pick uniform over the surviving
// multi-edges without copying the edge list.
func (a *cutArena) contractInto(depth, target int) {
	lv := &a.levels[depth]
	child := &a.levels[depth+1]
	n := lv.nodes
	m := len(lv.edges)
	if cap(lv.parent) < n {
		lv.parent = make([]int32, n)
		lv.newid = make([]int32, n)
		lv.comp = make([]int32, n)
	}
	p := lv.parent[:n]
	newid := lv.newid[:n]
	for i := range p {
		p[i] = int32(i)
		newid[i] = -1
	}
	dw := (m + 63) / 64
	if cap(lv.dead) < dw {
		lv.dead = make([]uint64, dw)
	}
	dead := lv.dead[:dw]
	for i := range dead {
		dead[i] = 0
	}
	alive := m
	remaining := n
	for remaining > target && alive > 0 {
		i := a.rng.intn(m)
		if dead[i>>6]&(1<<uint(i&63)) != 0 {
			continue
		}
		e := &lv.edges[i]
		ru := ksFind(p, e.u)
		rv := ksFind(p, e.v)
		if ru == rv {
			dead[i>>6] |= 1 << uint(i&63)
			alive--
			continue
		}
		p[ru] = rv
		remaining--
	}
	// Resolve every supernode to its root once, handing roots dense child
	// labels in scan order (deterministic for a fixed random stream), and
	// store the composed supernode→child-label map: the relabelling pass
	// then needs a single comp read per endpoint instead of chained
	// root/label lookups.
	comp := lv.comp[:n]
	next := int32(0)
	for i := int32(0); i < int32(n); i++ {
		r := ksFind(p, i)
		// Branchless label assignment: a fresh root (newid still -1) takes
		// the next dense label. The root-vs-merged stream defeats branch
		// prediction at deep levels, so this is sign-mask selection.
		id := newid[r]
		neg := id >> 31
		id = (id &^ neg) | (next & neg)
		newid[r] = id
		next -= neg
		comp[i] = id
	}
	child.nodes = int(next)
	child.v0 = comp[lv.v0]
	if cap(child.edges) < m {
		child.edges = make([]ksEdge, m)
	}
	cedges := child.edges[:cap(child.edges)]
	k := 0
	// Branchless relabel: every edge is written at the write cursor, and
	// the cursor advances only for non-loops — self-loops are overwritten
	// by the next edge instead of branching on a 25%-taken, unpredictable
	// skip.
	for i := range lv.edges {
		e := &lv.edges[i]
		u := comp[e.u]
		v := comp[e.v]
		cedges[k] = ksEdge{u: u, v: v, id: e.id}
		nz := uint32(u ^ v)
		k += int((nz | -nz) >> 31)
	}
	child.edges = cedges[:k]
	// Levels below depth+1 now describe the replaced subtree; level depth
	// and every ancestor keep their cached vertex→supernode compositions,
	// which is what shares materialisation work across the two sibling
	// recursions (the second child recomposes only levels > depth).
	if a.idsValid > depth {
		a.idsValid = depth
	}
}

// enumerateBase visits every bipartition of the <= ksBase supernodes at
// `depth` and records each one crossed by exactly `size` edges. Because
// size equals the graph's edge connectivity, every recorded bipartition is
// a genuine minimum cut (and both its sides are automatically connected: a
// disconnected side would split δ(S) into two disjoint nonempty cuts of
// total size λ, contradicting each being >= λ).
//
// The bipartitions are swept in binary-reflected gray-code order over the
// supernodes other than v0 (so vertex 0's supernode stays on side 0 — the
// canonical orientation). Step i flips exactly the supernode indexed by
// TrailingZeros(i); an edge changes crossing state iff it is incident to
// the flipped supernode, so with per-supernode incident-edge bitmasks the
// crossing set updates with one XOR and the crossing count is one popcount
// — no per-step dependence on the leaf's edge count. The set of visited
// masks is identical to the recount's ascending scan; only the order
// differs, which the signature dedup and the final canonical sort make
// immaterial.
func (a *cutArena) enumerateBase(depth, size int) {
	lv := &a.levels[depth]
	m := len(lv.edges)
	if m < size || lv.nodes < 2 {
		return
	}
	if cap(a.sig) < size {
		a.sig = make([]int32, size)
	}
	a.stats.leaves++
	if a.recount {
		a.enumerateBaseRecount(depth, size)
		return
	}
	nodes := lv.nodes
	var free [ksBase]int32
	nf := 0
	for s := int32(0); s < int32(nodes); s++ {
		if s != lv.v0 {
			free[nf] = s
			nf++
		}
	}
	steps := uint32(1) << uint(nf)
	a.stats.steps += int64(steps) - 1
	if m <= 64 {
		// Per-supernode incident-edge bitmasks over the (deep leaves are
		// sparse) <= 64 surviving edges: crossSet's bit i says edge i
		// currently crosses, maintained by one XOR per gray step.
		var inc [ksBase]uint64
		for i := range lv.edges {
			e := &lv.edges[i]
			b := uint64(1) << uint(i)
			inc[e.u] ^= b
			inc[e.v] ^= b
		}
		// Unrolled by two: every odd gray step flips free[0], so its mask
		// bit and XOR delta are loop constants — which also breaks the
		// serial dependency chain between consecutive steps.
		m0 := 1 << uint(free[0])
		inc0 := inc[free[0]]
		mask := 0
		cross := uint64(0)
		for i := uint32(1); i < steps; i += 2 {
			mask ^= m0
			cross ^= inc0
			if bits.OnesCount64(cross) == size {
				a.recordLeafCrossSet(depth, mask, size, cross)
			}
			if i+1 >= steps {
				break
			}
			s := free[bits.TrailingZeros32(i+1)]
			mask ^= 1 << uint(s)
			cross ^= inc[s]
			if bits.OnesCount64(cross) == size {
				a.recordLeafCrossSet(depth, mask, size, cross)
			}
		}
		return
	}
	// Fallback for leaves with more than 64 surviving edges (dense or
	// multigraph inputs contracted only a little): a pairwise multiplicity
	// matrix, updated per flip in O(n_leaf).
	var c [ksBase][ksBase]int32
	for i := range lv.edges {
		e := &lv.edges[i]
		c[e.u][e.v]++
		c[e.v][e.u]++
	}
	mask := 0
	crossing := 0
	for i := uint32(1); i < steps; i++ {
		s := free[bits.TrailingZeros32(i)]
		mask ^= 1 << uint(s)
		ms := (mask >> uint(s)) & 1
		row := &c[s]
		// Flipping s toggles the crossing state of exactly its incident
		// edges (c[s][s] is 0, so including t == s is harmless); the sign
		// is branchless because the bipartition stream defeats prediction.
		for t := 0; t < nodes; t++ {
			sign := int((mask>>uint(t))&1^ms)<<1 - 1
			crossing += sign * int(row[t])
		}
		if crossing == size {
			a.recordLeafCut(depth, mask, size)
		}
	}
}

// enumerateBaseRecount is the pre-gray-code base case: an ascending mask
// scan recounting crossings from scratch per bipartition. Retained behind
// CutEnumOptions.LeafRecount as the oracle the sweep is tested against.
func (a *cutArena) enumerateBaseRecount(depth, size int) {
	lv := &a.levels[depth]
	for mask := 1; mask < 1<<uint(lv.nodes); mask++ {
		if mask&(1<<uint(lv.v0)) != 0 {
			continue // canonical orientation: vertex 0's supernode stays out
		}
		a.stats.steps++
		crossing := 0
		for i := range lv.edges {
			e := &lv.edges[i]
			if (mask>>uint(e.u))&1 != (mask>>uint(e.v))&1 {
				crossing++
				if crossing > size {
					break
				}
			}
		}
		if crossing == size {
			a.recordLeafCut(depth, mask, size)
		}
	}
}

// recordLeafCrossSet is recordLeafCut for the bitmask sweep: the crossing
// edge set is already in hand as a bitmask, so the signature gathers its
// exactly `size` set bits directly instead of rescanning the edge list.
func (a *cutArena) recordLeafCrossSet(depth, mask, size int, cross uint64) {
	lv := &a.levels[depth]
	sig := a.sig[:size]
	for k := 0; k < size; k++ {
		i := bits.TrailingZeros64(cross)
		cross &= cross - 1
		sig[k] = lv.edges[i].id
	}
	a.commitLeafCut(depth, mask, size, sig)
}

// recordLeafCut handles a bipartition with exactly `size` crossing edges:
// gather its crossing-edge signature by an O(m_leaf) edge scan (the matrix
// and recount paths have no crossing bitmask in hand), then commit it.
func (a *cutArena) recordLeafCut(depth, mask, size int) {
	lv := &a.levels[depth]
	sig := a.sig[:size]
	k := 0
	for i := range lv.edges {
		e := &lv.edges[i]
		if (mask>>uint(e.u))&1 != (mask>>uint(e.v))&1 {
			sig[k] = e.id
			k++
		}
	}
	a.commitLeafCut(depth, mask, size, sig)
}

// commitLeafCut dedups a qualifying bipartition against the arena's intern
// table by its sorted crossing-edge signature — O(λ) probes against O(n)
// for a bitset — and materialises the vertex bipartition on first sighting
// only.
func (a *cutArena) commitLeafCut(depth, mask, size int, sig []int32) {
	for i := 1; i < size; i++ {
		for j := i; j > 0 && sig[j] < sig[j-1]; j-- {
			sig[j], sig[j-1] = sig[j-1], sig[j]
		}
	}
	if !a.sigs.add(sig) {
		return
	}
	ids := a.composeIDs(depth)
	// Materialise the vertex bipartition. Vertex 0's side is 0 by the
	// mask restriction, so the bitset is already canonical.
	side := a.side
	for i := range side {
		side[i] = 0
	}
	for v := 0; v < a.n; v++ {
		if mask&(1<<uint(ids[v])) != 0 {
			side[v/64] |= 1 << uint(v%64)
		}
	}
	a.fresh = append(a.fresh, a.store.alloc(side))
}

// composeIDs returns the original-vertex → supernode map for `depth`,
// composing the per-level contraction maps. Compositions are cached per
// level with a.idsValid as the valid-prefix watermark (contractInto lowers
// it), so the work for level d is shared by every leaf below d that sights
// a new cut — across sibling subtrees, not just within one leaf.
func (a *cutArena) composeIDs(depth int) []int32 {
	for d := a.idsValid + 1; d <= depth; d++ {
		lv := &a.levels[d]
		if cap(lv.ids) < a.n {
			lv.ids = make([]int32, a.n)
		}
		ids := lv.ids[:a.n]
		par := &a.levels[d-1]
		prev := par.ids[:a.n]
		comp := par.comp[:par.nodes] // written by the ancestor path's latest contractInto
		for v := range ids {
			ids[v] = comp[prev[v]]
		}
		lv.ids = ids
	}
	if depth > a.idsValid {
		a.idsValid = depth
	}
	return a.levels[depth].ids[:a.n]
}

// cutsByContraction enumerates all minimum cuts of h (whose edge
// connectivity must equal size) by deterministic, optionally parallel
// Karger–Stein trials. See the file comment for the scheme and the
// determinism contract.
func cutsByContraction(h *graph.Graph, size int, rng *rand.Rand, opts CutEnumOptions) ([]Cut, error) {
	if rng == nil {
		return nil, fmt.Errorf("core: contraction enumeration requires rng")
	}
	if kc := opts.KnownConnectivity; kc > 0 {
		if kc > size {
			return nil, nil // no cuts of this size: already (size+1)-connected
		}
		if kc < size {
			return nil, fmt.Errorf("core: graph has connectivity %d < requested cut size %d", kc, size)
		}
		if d := h.MinDegree(); d < size {
			return nil, fmt.Errorf("core: KnownConnectivity %d contradicts min degree %d", kc, d)
		}
	} else {
		lambda := h.EdgeConnectivityUpTo(size + 1)
		if lambda > size {
			return nil, nil // no cuts of this size: already (size+1)-connected
		}
		if lambda < size {
			return nil, fmt.Errorf("core: graph has connectivity %d < requested cut size %d", lambda, size)
		}
	}
	n := h.N()
	trials := ksTrials(n)
	if opts.TrialFactor > 1 {
		trials *= opts.TrialFactor
	}
	if opts.MaxTrials > 0 && trials > opts.MaxTrials {
		trials = opts.MaxTrials
	}
	maxDepth := ksDepth(n)
	base := make([]ksEdge, h.M())
	for i, e := range h.Edges() {
		base[i] = ksEdge{u: int32(e.U), v: int32(e.V), id: int32(e.ID)}
	}
	baseSeed := rng.Int63()

	workers := opts.Workers
	if workers > trials {
		workers = trials
	}
	sweepStart := opts.Phase.phaseStart()
	if workers <= 1 {
		// Sequential: one arena, whose intern table is the global dedup, so
		// already-seen bipartitions cost no allocation at all.
		a := arenaPool.Get().(*cutArena)
		a.prepare(n, maxDepth, size)
		a.recount = opts.LeafRecount
		out := make([]Cut, 0, 16)
		for t := 0; t < trials; t++ {
			a.rng.seed(baseSeed ^ int64(t))
			a.fresh = a.fresh[:0]
			a.runTrial(base, size)
			out = append(out, a.fresh...)
		}
		st := a.stats
		arenaPool.Put(a)
		opts.Phase.emit(PhaseEvent{Phase: "ks-sweep", Start: sweepStart, Iterations: trials, Items: int(st.steps)})
		matStart := opts.Phase.phaseStart()
		sortCuts(out)
		opts.Phase.emit(PhaseEvent{Phase: "ks-materialise", Start: matStart, Items: len(out)})
		return out, nil
	}

	// Parallel: each worker borrows one arena per trial from a shared ring;
	// an arena dedups across all trials it happens to serve. found[t] holds
	// the cuts trial t's arena saw for the first time; merging in trial
	// order then reproduces the sequential first-occurrence order exactly
	// (the globally first occurrence of a cut is necessarily fresh for
	// whichever arena runs it).
	arenas := make(chan *cutArena, workers)
	for w := 0; w < workers; w++ {
		a := arenaPool.Get().(*cutArena)
		a.prepare(n, maxDepth, size)
		a.recount = opts.LeafRecount
		arenas <- a
	}
	found := make([][]Cut, trials)
	service.Do(workers, trials, func(t int) {
		a := <-arenas
		a.rng.seed(baseSeed ^ int64(t))
		a.fresh = a.fresh[:0]
		a.runTrial(base, size)
		if len(a.fresh) > 0 {
			found[t] = append([]Cut(nil), a.fresh...)
		}
		arenas <- a
	})
	var st ksStats
	for w := 0; w < workers; w++ {
		a := <-arenas
		// leaves/steps are per-trial totals, so this sum is independent of
		// which arena served which trial.
		st.leaves += a.stats.leaves
		st.steps += a.stats.steps
		arenaPool.Put(a)
	}
	opts.Phase.emit(PhaseEvent{Phase: "ks-sweep", Start: sweepStart, Iterations: trials, Items: int(st.steps)})
	matStart := opts.Phase.phaseStart()
	var merge cutInterner
	merge.reset(n)
	var out []Cut
	for _, fs := range found {
		for _, c := range fs {
			if merge.addCut(c) {
				out = append(out, c)
			}
		}
	}
	sortCuts(out)
	opts.Phase.emit(PhaseEvent{Phase: "ks-materialise", Start: matStart, Items: len(out)})
	return out, nil
}
