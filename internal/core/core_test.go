package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/baselines"
	"repro/internal/graph"
)

// --- Cut enumeration -------------------------------------------------------

// bruteForceMinCuts enumerates bipartitions (S, V\S) with |δ(S)| == size by
// trying every subset (n <= 16).
func bruteForceMinCuts(h *graph.Graph, size int) map[string]bool {
	n := h.N()
	out := make(map[string]bool)
	for mask := 1; mask < 1<<uint(n-1); mask++ {
		// Vertex 0 always outside S (canonical orientation).
		inS := func(v int) bool { return v != 0 && mask&(1<<uint(v-1)) != 0 }
		crossing := 0
		for _, e := range h.Edges() {
			if inS(e.U) != inS(e.V) {
				crossing++
			}
		}
		if crossing != size {
			continue
		}
		// Both sides must be connected (minimum cuts only).
		if !sideConnected(h, inS, true) || !sideConnected(h, inS, false) {
			continue
		}
		c := newCut(n, inS)
		out[c.Key()] = true
	}
	return out
}

func sideConnected(h *graph.Graph, inS func(int) bool, side bool) bool {
	var start = -1
	count := 0
	for v := 0; v < h.N(); v++ {
		if inS(v) == side {
			count++
			if start == -1 {
				start = v
			}
		}
	}
	if count == 0 {
		return false
	}
	seen := map[int]bool{start: true}
	queue := []int{start}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, a := range h.Adj(v) {
			if inS(a.To) == side && !seen[a.To] {
				seen[a.To] = true
				queue = append(queue, a.To)
			}
		}
	}
	return len(seen) == count
}

func TestEnumerateMinCutsBridges(t *testing.T) {
	// Path: every edge is a size-1 cut.
	g := graph.New(5)
	for i := 0; i+1 < 5; i++ {
		g.AddEdge(i, i+1, 1)
	}
	cuts, err := EnumerateMinCuts(g, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) != 4 {
		t.Fatalf("got %d cuts, want 4", len(cuts))
	}
}

func TestEnumerateMinCutsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, size := range []int{1, 2, 3} {
		for trial := 0; trial < 6; trial++ {
			var h *graph.Graph
			switch size {
			case 1:
				// A tree plus a few chords leaves some bridges.
				h = graph.New(9)
				for i := 0; i+1 < 9; i++ {
					h.AddEdge(i, i+1, 1)
				}
				h.AddEdge(0, 3, 1)
			case 2:
				h = graph.RandomKConnected(8+trial, 2, trial%3, rng, graph.UnitWeights())
			case 3:
				h = graph.Harary(3, 8+trial, graph.UnitWeights())
			}
			if h.EdgeConnectivity() != size {
				continue // only minimum cuts are in scope
			}
			cuts, err := EnumerateMinCuts(h, size, rng)
			if err != nil {
				t.Fatalf("size %d trial %d: %v", size, trial, err)
			}
			got := make(map[string]bool, len(cuts))
			for _, c := range cuts {
				got[c.Key()] = true
			}
			want := bruteForceMinCuts(h, size)
			if len(got) != len(want) {
				t.Fatalf("size %d trial %d: %d cuts, want %d", size, trial, len(got), len(want))
			}
			for k := range want {
				if !got[k] {
					t.Fatalf("size %d trial %d: missing cut", size, trial)
				}
			}
		}
	}
}

func TestCutCrossesCanonical(t *testing.T) {
	c := newCut(6, func(v int) bool { return v >= 3 })
	if c.contains(0) {
		t.Fatal("vertex 0 must be canonicalised outside")
	}
	if !c.Crosses(2, 3) || c.Crosses(0, 1) || c.Crosses(4, 5) {
		t.Fatal("Crosses wrong")
	}
	// Complement orientation produces the same key.
	c2 := newCut(6, func(v int) bool { return v < 3 })
	if c.Key() != c2.Key() {
		t.Fatal("complementary cuts should share a key")
	}
}

// --- Aug -------------------------------------------------------------------

func TestAugValidation(t *testing.T) {
	g := graph.Cycle(5, graph.UnitWeights())
	if _, err := Aug(g, nil, 2, AugOptions{}); err == nil {
		t.Fatal("expected error without rng")
	}
	if _, err := Aug(g, nil, 1, AugOptions{Rng: rand.New(rand.NewSource(1))}); err == nil {
		t.Fatal("expected error for k=1")
	}
}

func TestAugTwoOnSpanningTree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomKConnected(12+rng.Intn(15), 2, 15, rng, graph.RandomWeights(rng, 30))
		// H = a spanning tree (1-edge-connected).
		tree := spanningTreeIDs(g)
		res, err := Aug(g, tree, 2, AugOptions{Rng: rng})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		all := append(append([]int(nil), tree...), res.Added...)
		sub, _ := g.SubgraphOf(all)
		if !sub.TwoEdgeConnected() {
			t.Fatalf("trial %d: H∪A not 2-edge-connected", trial)
		}
	}
}

func spanningTreeIDs(g *graph.Graph) []int {
	uf := graph.NewUnionFind(g.N())
	var out []int
	for _, e := range g.Edges() {
		if uf.Union(e.U, e.V) {
			out = append(out, e.ID)
		}
	}
	return out
}

func TestAugForestInvariantClaim41(t *testing.T) {
	// Claim 4.1: the added set A never contains a cycle.
	rng := rand.New(rand.NewSource(7))
	g := graph.RandomKConnected(20, 2, 25, rng, graph.RandomWeights(rng, 20))
	tree := spanningTreeIDs(g)
	res, err := Aug(g, tree, 2, AugOptions{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	sub, _ := g.SubgraphOf(res.Added)
	_, count := sub.Components()
	// Forest iff m = n - #components.
	if sub.M() != sub.N()-count {
		t.Fatalf("A has a cycle: m=%d, n=%d, comps=%d", sub.M(), sub.N(), count)
	}
}

func TestAugOnAlreadyConnectedEnough(t *testing.T) {
	g := graph.Harary(3, 10, graph.UnitWeights())
	all := make([]int, g.M())
	for i := range all {
		all[i] = i
	}
	// H = whole graph is already 3-edge-connected: Aug_3 adds nothing.
	res, err := Aug(g, all, 3, AugOptions{Rng: rand.New(rand.NewSource(9))})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Added) != 0 || res.Cuts != 0 {
		t.Fatalf("added=%v cuts=%d, want none", res.Added, res.Cuts)
	}
}

// --- SolveKECSS ------------------------------------------------------------

func TestSolveKECSSValidation(t *testing.T) {
	g := graph.Cycle(6, graph.UnitWeights())
	if _, err := SolveKECSS(g, 2, KECSSOptions{}); err == nil {
		t.Fatal("expected error without rng")
	}
	if _, err := SolveKECSS(g, 0, KECSSOptions{Rng: rand.New(rand.NewSource(1))}); err == nil {
		t.Fatal("expected error for k=0")
	}
	if _, err := SolveKECSS(g, 3, KECSSOptions{Rng: rand.New(rand.NewSource(1))}); err == nil {
		t.Fatal("expected error: cycle is not 3-edge-connected")
	}
}

func TestSolveKECSSProducesKConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, k := range []int{1, 2, 3, 4} {
		g := graph.RandomKConnected(16, k, 20, rng, graph.RandomWeights(rng, 25))
		res, err := SolveKECSS(g, k, KECSSOptions{Rng: rng})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		sub, _ := g.SubgraphOf(res.Edges)
		if !sub.IsKEdgeConnected(k) {
			t.Fatalf("k=%d: result not %d-edge-connected (λ=%d)", k, k, sub.EdgeConnectivity())
		}
		if res.Weight != g.WeightOf(res.Edges) {
			t.Fatalf("k=%d: weight mismatch", k)
		}
		if len(res.Levels) != k {
			t.Fatalf("k=%d: %d levels", k, len(res.Levels))
		}
	}
}

func TestSolveKECSSWithSimulatedMST(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := graph.RandomKConnected(14, 2, 12, rng, graph.RandomWeights(rng, 10))
	res, err := SolveKECSS(g, 2, KECSSOptions{Rng: rng, SimulateMST: true})
	if err != nil {
		t.Fatal(err)
	}
	sub, _ := g.SubgraphOf(res.Edges)
	if !sub.TwoEdgeConnected() {
		t.Fatal("not 2-edge-connected")
	}
	if res.Levels[0].Rounds == 0 {
		t.Fatal("simulated MST should report measured rounds")
	}
}

func TestSolveKECSSApproxAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	worst := 0.0
	for trial := 0; trial < 8; trial++ {
		g := graph.RandomKConnected(7, 2, 3, rng, graph.RandomWeights(rng, 12))
		if g.M() > baselines.MaxExactKECSSEdges {
			continue
		}
		_, opt, err := baselines.ExactKECSS(g, 2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := SolveKECSS(g, 2, KECSSOptions{Rng: rng})
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(res.Weight) / float64(opt)
		if ratio > worst {
			worst = ratio
		}
		// Theorem 1.2 bound with generous constants for a 7-vertex graph.
		if ratio > 2*8*math.Log(float64(g.N()))+8 {
			t.Fatalf("trial %d: ratio %.2f too large", trial, ratio)
		}
	}
	t.Logf("worst 2-ECSS (via Aug framework) ratio vs OPT: %.2f", worst)
}

// --- Solve2ECSS ------------------------------------------------------------

func TestSolve2ECSS(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 8; trial++ {
		g := graph.RandomKConnected(25+rng.Intn(25), 2, 40, rng, graph.RandomWeights(rng, 60))
		res, err := Solve2ECSS(g, TwoECSSOptions{Rng: rand.New(rand.NewSource(int64(trial)))})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sub, _ := g.SubgraphOf(res.Edges)
		if !sub.TwoEdgeConnected() {
			t.Fatalf("trial %d: not 2-edge-connected", trial)
		}
		if res.Weight < res.MSTWeight {
			t.Fatalf("trial %d: weight %d below MST bound %d", trial, res.Weight, res.MSTWeight)
		}
		if res.TAP.Iterations < 1 {
			t.Fatalf("trial %d: no TAP iterations recorded", trial)
		}
	}
}

func TestSolve2ECSSSimulatedMSTAgreesOnWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := graph.RandomKConnected(18, 2, 20, rng, graph.RandomWeights(rng, 15))
	a, err := Solve2ECSS(g, TwoECSSOptions{Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve2ECSS(g, TwoECSSOptions{Rng: rand.New(rand.NewSource(1)), SimulateMST: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.MSTWeight != b.MSTWeight {
		t.Fatalf("MST weight differs: %d vs %d", a.MSTWeight, b.MSTWeight)
	}
}

// --- Solve3ECSSUnweighted --------------------------------------------------

func TestSolve3ECSSUnweighted(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 6; trial++ {
		g := graph.RandomKConnected(14+rng.Intn(12), 3, 20, rng, graph.UnitWeights())
		res, err := Solve3ECSSUnweighted(g, ThreeECSSOptions{Rng: rand.New(rand.NewSource(int64(trial)))})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sub, _ := g.SubgraphOf(res.Edges)
		if !sub.IsKEdgeConnected(3) {
			t.Fatalf("trial %d: result not 3-edge-connected", trial)
		}
		if res.Size != len(res.Edges) {
			t.Fatalf("trial %d: size mismatch", trial)
		}
		// Any 3-ECSS has >= 3n/2 edges; the algorithm is O(log n)-approx, so
		// cap generously.
		lower := 3 * g.N() / 2
		if res.Size > lower*int(4*math.Log2(float64(g.N()))+8) {
			t.Fatalf("trial %d: size %d way above O(log n)·OPT", trial, res.Size)
		}
		if res.CorrectionEdges != 0 {
			t.Errorf("trial %d: exact fallback fired (%d edges) — labels too narrow?",
				trial, res.CorrectionEdges)
		}
	}
}

func TestSolve3ECSSRejectsUnderConnected(t *testing.T) {
	g := graph.Cycle(8, graph.UnitWeights())
	if _, err := Solve3ECSSUnweighted(g, ThreeECSSOptions{Rng: rand.New(rand.NewSource(1))}); err == nil {
		t.Fatal("expected error")
	}
}

func TestSolve3ECSSHarary(t *testing.T) {
	// On the minimum 3-edge-connected graph the algorithm must keep
	// essentially everything: |result| within [3n/2, m].
	g := graph.Harary(3, 12, graph.UnitWeights())
	res, err := Solve3ECSSUnweighted(g, ThreeECSSOptions{Rng: rand.New(rand.NewSource(2))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Size < 3*g.N()/2 || res.Size > g.M() {
		t.Fatalf("size %d outside [%d,%d]", res.Size, 3*g.N()/2, g.M())
	}
}

// Property: SolveKECSS output is always k-edge-connected.
func TestSolveKECSSQuick(t *testing.T) {
	f := func(seed int64, kRaw, nRaw uint8) bool {
		k := int(kRaw%3) + 1
		n := int(nRaw%10) + 2*k + 4
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomKConnected(n, k, n/2, rng, graph.RandomWeights(rng, 9))
		res, err := SolveKECSS(g, k, KECSSOptions{Rng: rng})
		if err != nil {
			return false
		}
		sub, _ := g.SubgraphOf(res.Edges)
		return sub.IsKEdgeConnected(k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
