package core

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/graph"
)

// multiplyEdges returns g with every edge duplicated `times` times, which
// multiplies the edge connectivity by `times` (families like Grid or Cycle
// whose λ is pinned at 2 join the size >= 3 corpus this way; the model
// permits multigraphs).
func multiplyEdges(g *graph.Graph, times int) *graph.Graph {
	d := graph.New(g.N())
	for _, e := range g.Edges() {
		for i := 0; i < times; i++ {
			d.AddEdge(e.U, e.V, e.W)
		}
	}
	return d
}

// equivCase is one corpus instance: a generator-family representative whose
// edge connectivity (pinned by `lambda`) lies in the contraction range
// {3,4,5}.
type equivCase struct {
	name   string
	lambda int
	build  func() *graph.Graph
}

func equivCorpus() []equivCase {
	u := graph.UnitWeights()
	return []equivCase{
		{"harary/k=3", 3, func() *graph.Graph { return graph.Harary(3, 14, u) }},
		{"harary/k=4", 4, func() *graph.Graph { return graph.Harary(4, 14, u) }},
		{"harary/k=5", 5, func() *graph.Graph { return graph.Harary(5, 14, u) }},
		{"cycle-x2/k=4", 4, func() *graph.Graph { return multiplyEdges(graph.Cycle(12, u), 2) }},
		{"circulant/k=4", 4, func() *graph.Graph { return graph.Circulant(13, 2, u) }},
		{"randomk/k=4a", 4, func() *graph.Graph {
			return graph.RandomKConnected(14, 3, 6, rand.New(rand.NewSource(11)), u)
		}},
		{"randomk/k=4b", 4, func() *graph.Graph {
			return graph.RandomKConnected(16, 4, 2, rand.New(rand.NewSource(7)), u)
		}},
		{"grid-x2/k=4", 4, func() *graph.Graph { return multiplyEdges(graph.Grid(3, 5, u), 2) }},
		{"cliquechain/k=3", 3, func() *graph.Graph { return graph.CliqueChain(3, 5, 3, u) }},
		{"cliquechain/k=4", 4, func() *graph.Graph { return graph.CliqueChain(3, 6, 4, u) }},
		{"cliquechain/k=5", 5, func() *graph.Graph { return graph.CliqueChain(2, 6, 5, u) }},
		{"geometric/k=3", 3, func() *graph.Graph {
			return graph.RandomGeometric(16, 0.30, 2, rand.New(rand.NewSource(2)))
		}},
		{"geometric/k=5", 5, func() *graph.Graph {
			return graph.RandomGeometric(16, 0.35, 3, rand.New(rand.NewSource(1)))
		}},
		{"chunglu/k=5", 5, func() *graph.Graph {
			return graph.ChungLu(16, 2.5, 6, 3, rand.New(rand.NewSource(1)), u)
		}},
		{"fattree-x2/k=4", 4, func() *graph.Graph { return multiplyEdges(graph.FatTree(4, u), 2) }},
		{"paperfig2-x2/k=4", 4, func() *graph.Graph { return multiplyEdges(graph.PaperFigure2Graph(), 2) }},
	}
}

func cutKeySet(cuts []Cut) map[string]bool {
	m := make(map[string]bool, len(cuts))
	for _, c := range cuts {
		m[c.Key()] = true
	}
	return m
}

// TestEnumerateMinCutsEquivalenceCorpus asserts that the Karger–Stein
// enumerator returns exactly the same cut sets (canonical bipartitions) as
// the retained flat-Karger reference across all ten generator families at
// sizes 3–5, and that the new enumerator is byte-identical at workers=1
// vs 4.
func TestEnumerateMinCutsEquivalenceCorpus(t *testing.T) {
	for _, tc := range equivCorpus() {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.build()
			if lam := g.EdgeConnectivity(); lam != tc.lambda {
				t.Fatalf("corpus drift: λ=%d, case pins %d", lam, tc.lambda)
			}
			ref, err := EnumerateMinCutsReference(g, tc.lambda, rand.New(rand.NewSource(101)))
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			got, err := EnumerateMinCuts(g, tc.lambda, rand.New(rand.NewSource(202)))
			if err != nil {
				t.Fatalf("karger–stein: %v", err)
			}
			refSet, gotSet := cutKeySet(ref), cutKeySet(got)
			if len(ref) != len(refSet) || len(got) != len(gotSet) {
				t.Fatalf("duplicate cuts: ref %d/%d, got %d/%d", len(ref), len(refSet), len(got), len(gotSet))
			}
			if !reflect.DeepEqual(refSet, gotSet) {
				t.Fatalf("cut sets differ: reference %d cuts, karger–stein %d cuts", len(refSet), len(gotSet))
			}
			par, err := EnumerateMinCutsOpts(g, tc.lambda, rand.New(rand.NewSource(202)), CutEnumOptions{Workers: 4})
			if err != nil {
				t.Fatalf("workers=4: %v", err)
			}
			if !reflect.DeepEqual(got, par) {
				t.Fatalf("workers=1 vs 4 not byte-identical: %d vs %d cuts", len(got), len(par))
			}
		})
	}
}

// TestEnumerateMinCutsParallelDeterministic pins the determinism contract
// on a larger instance and under concurrent enumeration (the arenas come
// from a shared sync.Pool; run with -race).
func TestEnumerateMinCutsParallelDeterministic(t *testing.T) {
	g := graph.RandomKConnected(48, 4, 10, rand.New(rand.NewSource(5)), graph.UnitWeights())
	size := g.EdgeConnectivity()
	if size < 3 {
		t.Fatalf("instance drift: λ=%d < 3", size)
	}
	want, err := EnumerateMinCutsOpts(g, size, rand.New(rand.NewSource(9)), CutEnumOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("no cuts found")
	}
	for _, workers := range []int{2, 4, 7} {
		got, err := EnumerateMinCutsOpts(g, size, rand.New(rand.NewSource(9)), CutEnumOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d differs from workers=1", workers)
		}
	}
	// Concurrent enumerations racing over the shared arena pool must not
	// interfere with each other.
	var wg sync.WaitGroup
	results := make([][]Cut, 8)
	errs := make([]error, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := 1 + i%3
			results[i], errs[i] = EnumerateMinCutsOpts(g, size, rand.New(rand.NewSource(9)), CutEnumOptions{Workers: w})
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if errs[i] != nil {
			t.Fatalf("concurrent %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(want, r) {
			t.Fatalf("concurrent enumeration %d differs", i)
		}
	}
}

// TestEnumerateMinCutsTrialFactor: raising the trial count must never
// change the (already complete w.h.p.) result set.
func TestEnumerateMinCutsTrialFactor(t *testing.T) {
	g := graph.Harary(3, 20, graph.UnitWeights())
	base, err := EnumerateMinCuts(g, 3, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	more, err := EnumerateMinCutsOpts(g, 3, rand.New(rand.NewSource(1)), CutEnumOptions{TrialFactor: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cutKeySet(base), cutKeySet(more)) {
		t.Fatalf("TrialFactor changed the cut set: %d vs %d", len(base), len(more))
	}
}

// TestEnumerateMinCutsKnownConnectivity pins the λ pass-in contract: a
// correct promise reproduces the recomputed result, a too-high promise
// means "no cuts of this size", a contradicted promise errors.
func TestEnumerateMinCutsKnownConnectivity(t *testing.T) {
	g := graph.Harary(4, 14, graph.UnitWeights())
	want, err := EnumerateMinCuts(g, 4, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := EnumerateMinCutsOpts(g, 4, rand.New(rand.NewSource(3)), CutEnumOptions{KnownConnectivity: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("KnownConnectivity=λ changed the result")
	}
	none, err := EnumerateMinCutsOpts(g, 3, rand.New(rand.NewSource(3)), CutEnumOptions{KnownConnectivity: 4})
	if err != nil {
		t.Fatal(err)
	}
	if none != nil {
		t.Fatalf("KnownConnectivity > size must report no cuts, got %d", len(none))
	}
	if _, err := EnumerateMinCutsOpts(g, 5, rand.New(rand.NewSource(3)), CutEnumOptions{KnownConnectivity: 4}); err == nil {
		t.Fatal("KnownConnectivity < size must error")
	}
	// A promise contradicted by the min degree is caught by the assertion.
	if _, err := EnumerateMinCutsOpts(g, 5, rand.New(rand.NewSource(3)), CutEnumOptions{KnownConnectivity: 5}); err == nil {
		t.Fatal("contradicted KnownConnectivity must error")
	}
}

// TestCutInterner covers dedup, collision-safe equality, and block
// detachment on reset.
func TestCutInterner(t *testing.T) {
	var it cutInterner
	it.reset(130) // 3 words
	a := []uint64{1, 2, 3}
	b := []uint64{1, 2, 4}
	c1, new1 := it.add(a)
	if !new1 {
		t.Fatal("first add not new")
	}
	if _, new2 := it.add(a); new2 {
		t.Fatal("duplicate add reported new")
	}
	if _, new3 := it.add(b); !new3 {
		t.Fatal("distinct add not new")
	}
	if !it.addCut(Cut{side: []uint64{9, 9, 9}}) || it.addCut(c1) {
		t.Fatal("addCut dedup wrong")
	}
	// Mutating the input after add must not affect the interned copy.
	a[0] = 77
	if _, isNew := it.add([]uint64{1, 2, 3}); isNew {
		t.Fatal("interned copy was aliased to caller memory")
	}
	old := c1.side
	it.reset(130)
	if _, isNew := it.add([]uint64{1, 2, 3}); !isNew {
		t.Fatal("reset kept old entries")
	}
	if old[0] != 1 || old[1] != 2 || old[2] != 3 {
		t.Fatal("reset clobbered a cut handed out earlier")
	}
}

// TestComponentsSkipping pins the scan against the SubgraphWithout oracle.
func TestComponentsSkipping(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := graph.RandomKConnected(12, 2, 8, rng, graph.UnitWeights())
	comp := make([]int, g.N())
	queue := make([]int, 0, g.N())
	for a := 0; a < g.M(); a++ {
		for b := -1; b < a; b++ {
			skip := map[int]bool{a: true}
			if b >= 0 {
				skip[b] = true
			}
			sub, _ := g.SubgraphWithout(skip)
			wantComp, wantCount := sub.Components()
			gotCount := componentsSkipping(g, comp, queue, a, b)
			if gotCount != wantCount {
				t.Fatalf("skip{%d,%d}: %d components, want %d", a, b, gotCount, wantCount)
			}
			for v := range wantComp {
				if comp[v] != wantComp[v] {
					t.Fatalf("skip{%d,%d}: vertex %d in comp %d, want %d", a, b, v, comp[v], wantComp[v])
				}
			}
		}
	}
}

// TestEnumerateMinCutsTwoVertexMultigraph: the smallest size >= 3 instance
// (two vertices, three parallel edges) exercises the base case without any
// contraction.
func TestEnumerateMinCutsTwoVertexMultigraph(t *testing.T) {
	g := graph.New(2)
	for i := 0; i < 3; i++ {
		g.AddEdge(0, 1, 1)
	}
	cuts, err := EnumerateMinCuts(g, 3, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) != 1 || !cuts[0].Crosses(0, 1) {
		t.Fatalf("want the single {0}|{1} cut, got %d cuts", len(cuts))
	}
}

func BenchmarkEquivalenceCorpusKargerStein(b *testing.B) {
	// Convenience: per-corpus-case timing of the new enumerator.
	for _, tc := range equivCorpus() {
		g := tc.build()
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := EnumerateMinCuts(g, tc.lambda, rand.New(rand.NewSource(int64(i)))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// cutSliceDigest folds every cut's bitset words, in slice order, into one
// order-sensitive 64-bit digest (FNV-1a). Byte-identical cut slices produce
// equal digests, and any divergence — content or order — flips it w.h.p.;
// used where the result sets are too large to hold two at once.
func cutSliceDigest(cuts []Cut) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range cuts {
		for _, w := range c.side {
			for s := 0; s < 64; s += 8 {
				h ^= (w >> uint(s)) & 0xff
				h *= prime
			}
		}
	}
	return h
}

// TestGrayCodeMatchesRecountLarge pins the gray-code leaf sweep against the
// per-mask recount oracle on ring-like instances at n=4096 — large enough
// that the contraction tree is ~19 levels deep and the sweep's incremental
// crossing counts, sibling-shared leaf materialisation, and composed
// component maps all operate far outside the small-n regime the corpus
// above covers. MaxTrials caps the Karger–Stein schedule to a smoke (capped
// runs may miss cuts; irrelevant here — both evaluators walk the same
// capped trajectory), and with identical seeds the two must return
// byte-identical cut slices, as must workers=1 vs 4. The doubled cycle is
// cut-dense (a single capped trial materialises >10^6 bipartitions), so its
// runs are compared by order-sensitive digest and released one at a time
// instead of held side by side.
func TestGrayCodeMatchesRecountLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("n=4096 equivalence family; skipped in -short")
	}
	u := graph.UnitWeights()

	t.Run("harary-ring/k=3/n=4096", func(t *testing.T) {
		g := graph.Harary(3, 4096, u)
		// KnownConnectivity skips the capped max-flow λ verification, which
		// at n=4096 would dominate the whole test.
		opts := CutEnumOptions{KnownConnectivity: 3, MaxTrials: 2}
		sweep, err := EnumerateMinCutsOpts(g, 3, rand.New(rand.NewSource(77)), opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(sweep) == 0 {
			t.Fatal("capped run found no cuts; family or cap drifted")
		}
		ro := opts
		ro.LeafRecount = true
		recount, err := EnumerateMinCutsOpts(g, 3, rand.New(rand.NewSource(77)), ro)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sweep, recount) {
			t.Fatalf("gray-code sweep and recount diverge: %d vs %d cuts", len(sweep), len(recount))
		}
		po := opts
		po.Workers = 4
		par, err := EnumerateMinCutsOpts(g, 3, rand.New(rand.NewSource(77)), po)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sweep, par) {
			t.Fatalf("workers=1 vs 4 not byte-identical: %d vs %d cuts", len(sweep), len(par))
		}
	})

	t.Run("cycle-x2/k=4/n=4096", func(t *testing.T) {
		g := multiplyEdges(graph.Cycle(4096, u), 2)
		opts := CutEnumOptions{KnownConnectivity: 4, MaxTrials: 1}
		run := func(o CutEnumOptions) (int, uint64) {
			cuts, err := EnumerateMinCutsOpts(g, 4, rand.New(rand.NewSource(77)), o)
			if err != nil {
				t.Fatal(err)
			}
			return len(cuts), cutSliceDigest(cuts)
		}
		n1, d1 := run(opts)
		if n1 == 0 {
			t.Fatal("capped run found no cuts; family or cap drifted")
		}
		ro := opts
		ro.LeafRecount = true
		n2, d2 := run(ro)
		if n1 != n2 || d1 != d2 {
			t.Fatalf("gray-code sweep and recount diverge: %d/%#x vs %d/%#x cuts", n1, d1, n2, d2)
		}
	})
}
