package core

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/rounds"
	"repro/internal/tap"
)

// AugOptions configures one Aug_k run (§4).
type AugOptions struct {
	// Rng drives the activation sampling and cut enumeration. Required.
	Rng *rand.Rand
	// PhaseLen is the M in the paper's "every M·log n iterations we increase
	// p by a factor of 2". 0 means 1 (the smallest constant; the analysis
	// fixes M large for the w.h.p. argument, the measured behaviour is the
	// experiment).
	PhaseLen int
	// MaxIterations bounds the main loop; 0 derives a generous O(log³ n)
	// cap.
	MaxIterations int
	// CutEnum tunes the minimum-cut enumeration that opens the level
	// (parallel Karger–Stein trials, trial count). Aug computes H's
	// connectivity itself with one capped max-flow pass and hands it to the
	// enumerator, so CutEnum.KnownConnectivity is ignored here.
	CutEnum CutEnumOptions
	// Phase, if set, receives a cut-enum and an augment PhaseEvent for this
	// level (Level = k). Nil costs nothing.
	Phase PhaseObserver
}

// AugResult is the outcome of one connectivity augmentation step.
type AugResult struct {
	// Added holds the edge IDs added to the augmentation (the set A).
	Added []int
	// Weight is their total weight.
	Weight int64
	// Iterations is the number of sampling iterations executed.
	Iterations int
	// Cuts is the number of size-(k-1) cuts of H that had to be covered.
	Cuts int
	// Rounds is the charged round total for this augmentation.
	Rounds int64
	// MaxCutDegreeTrace records, per iteration, the maximum number of
	// candidates covering any uncovered cut — the quantity Lemma 4.5 argues
	// decays along the p_i schedule (experiment E6).
	MaxCutDegreeTrace []int
	// PTrace records the activation probability exponent (p = 2^-PTrace[i])
	// per iteration.
	PTrace []int
}

// Aug augments the (k-1)-edge-connected spanning subgraph H (given by edge
// IDs of g) to k-edge-connectivity following §4: in each iteration every
// maximum-rounded-cost-effectiveness edge becomes a candidate, candidates
// activate with probability p_i, and the active candidates joining the
// MST-filter forest (weights: A=0, active=1, rest=2 — realised by the
// equivalent union-find filter seeded with A's components) are added to A.
// The p_i schedule starts at 1/2^⌈log m⌉ and doubles every PhaseLen·⌈log n⌉
// iterations, restarting whenever the maximum rounded cost-effectiveness
// drops.
func Aug(g *graph.Graph, h []int, k int, opts AugOptions) (*AugResult, error) {
	if opts.Rng == nil {
		return nil, fmt.Errorf("core: AugOptions.Rng is required")
	}
	if k < 2 {
		return nil, fmt.Errorf("core: Aug requires k >= 2 (k=1 is the MST step)")
	}
	hs, _ := g.SubgraphOf(h)
	size := k - 1
	enumOpts := opts.CutEnum
	enumOpts.KnownConnectivity = 0
	if enumOpts.Phase == nil && opts.Phase != nil {
		// Forward the solver observer into the enumeration so its ks-sweep /
		// ks-materialise events appear inside this level's cut-enum span,
		// tagged with the level they belong to.
		inner := opts.Phase
		enumOpts.Phase = func(ev PhaseEvent) {
			ev.Level = k
			inner(ev)
		}
	}
	enumStart := opts.Phase.phaseStart()
	var cuts []Cut
	var err error
	if size >= 3 {
		// One capped max-flow pass (on the pooled Dinic scratch) decides
		// whether H is already k-edge-connected; the enumerator is told the
		// answer instead of re-verifying it with a cold check of its own.
		switch lam := hs.EdgeConnectivityUpTo(size + 1); {
		case lam > size:
			cuts = nil // H is already k-edge-connected: nothing to cover
		case lam < size:
			return nil, fmt.Errorf("core: enumerating size-%d cuts: subgraph H has connectivity %d < %d", size, lam, size)
		default:
			enumOpts.KnownConnectivity = size
			cuts, err = EnumerateMinCutsOpts(hs, size, opts.Rng, enumOpts)
		}
	} else {
		// Sizes 1–2 use the exact enumerators, which need no λ pre-check.
		cuts, err = EnumerateMinCutsOpts(hs, size, opts.Rng, enumOpts)
	}
	if err != nil {
		return nil, fmt.Errorf("core: enumerating size-%d cuts: %w", size, err)
	}
	opts.Phase.emit(PhaseEvent{Phase: "cut-enum", Level: k, Start: enumStart, Items: len(cuts)})
	res := &AugResult{Cuts: len(cuts)}
	var acc rounds.Accountant
	n := g.N()
	d := int64(g.DiameterEstimate())
	// All vertices learn H once: O(D + |H|) by pipelined broadcast.
	acc.Charge("learn H", d+int64(len(h)))
	loopStart := opts.Phase.phaseStart()

	if len(cuts) == 0 {
		res.Rounds = acc.Total()
		opts.Phase.emit(PhaseEvent{Phase: "augment", Level: k, Start: loopStart, Rounds: res.Rounds})
		return res, nil // H is already k-edge-connected
	}

	inH := make(map[int]bool, len(h))
	for _, id := range h {
		inH[id] = true
	}
	logn := int(rounds.Log2Ceil(n)) + 1
	phaseLen := opts.PhaseLen
	if phaseLen == 0 {
		phaseLen = 1
	}
	maxIters := opts.MaxIterations
	if maxIters == 0 {
		maxIters = 20*logn*logn*logn + 200
	}

	// Candidate pool: edges outside H, with the cuts they cross, each
	// carrying its live uncovered-cut count ce — kept current by the
	// cut→candidate transpose below, so the per-iteration Lines 1–2 scan
	// reads a cached integer per candidate instead of re-walking c.cuts.
	type cand struct {
		id   int
		w    int64
		ce   int64 // uncovered cuts crossed; maintained, never rescanned
		cuts []int // indices into the cuts slice
		inA  bool
	}
	var cands []*cand
	for _, e := range g.Edges() {
		if inH[e.ID] {
			continue
		}
		c := &cand{id: e.ID, w: e.W}
		for ci, cut := range cuts {
			if cut.Crosses(e.U, e.V) {
				c.cuts = append(c.cuts, ci)
			}
		}
		if len(c.cuts) > 0 {
			c.ce = int64(len(c.cuts))
			cands = append(cands, c)
		}
	}
	// cutCands is the transpose of c.cuts (cut index → candidates crossing
	// it): when a cut flips to covered in the Line-4 loop, exactly the
	// candidates whose cost-effectiveness that changes get their cached ce
	// decremented — total maintenance work O(Σ |c.cuts|) over the whole
	// run, in place of a per-iteration rescan of every candidate's list.
	cutCands := make([][]int32, len(cuts))
	for i, c := range cands {
		for _, ci := range c.cuts {
			cutCands[ci] = append(cutCands[ci], int32(i))
		}
	}

	covered := make([]bool, len(cuts))
	uncovered := len(cuts)
	// Union-find re-seeded (Reset, one allocation for the whole loop) each
	// iteration with A's forest, realising the MST filter of Line 4
	// (Claims 4.1–4.3).
	uf := graph.NewUnionFind(n)
	deg := make([]int, len(cuts))
	var a []int

	// expOf returns the rounded cost-effectiveness exponent, with weight-0
	// edges treated as +infinity per §2.1.
	expOf := func(c *cand, ce int64) int {
		if c.w == 0 {
			return infExp
		}
		return tap.RoundedExp(ce, c.w)
	}

	mExp := 0
	for v := 1; v < g.M(); v <<= 1 {
		mExp++
	}
	pExp := mExp // p = 2^-pExp
	prevBest := infExp + 1
	itersAtThisP := 0

	for uncovered > 0 {
		if res.Iterations >= maxIters {
			return nil, fmt.Errorf("core: Aug_%d exceeded %d iterations with %d cuts uncovered", k, maxIters, uncovered)
		}
		res.Iterations++

		// Lines 1–2: cost-effectiveness and candidate selection, O(1) per
		// candidate off the maintained ce caches.
		best := -(1 << 30)
		var pool []*cand
		for _, c := range cands {
			if c.inA || c.ce == 0 {
				continue
			}
			e := expOf(c, c.ce)
			if e > best {
				best = e
				pool = pool[:0]
			}
			if e == best {
				pool = append(pool, c)
			}
		}
		if len(pool) == 0 {
			return nil, fmt.Errorf("core: Aug_%d stuck with %d cuts uncovered (graph not %d-edge-connected?)", k, uncovered, k)
		}

		// p_i schedule bookkeeping.
		if best < prevBest {
			pExp = mExp
			itersAtThisP = 0
		}
		prevBest = best
		res.PTrace = append(res.PTrace, pExp)

		// Record the max cut degree for E6 before sampling.
		for i := range deg {
			deg[i] = 0
		}
		for _, c := range pool {
			for _, ci := range c.cuts {
				if !covered[ci] {
					deg[ci]++
				}
			}
		}
		maxDeg := 0
		for _, x := range deg {
			if x > maxDeg {
				maxDeg = x
			}
		}
		res.MaxCutDegreeTrace = append(res.MaxCutDegreeTrace, maxDeg)

		// Line 3: activation with probability p = 2^-pExp.
		var active []*cand
		for _, c := range pool {
			if pExp == 0 || opts.Rng.Int63n(1<<uint(pExp)) == 0 {
				active = append(active, c)
			}
		}
		sort.Slice(active, func(i, j int) bool { return active[i].id < active[j].id })

		// Line 4: MST filter — active candidates joining the forest A.
		uf.Reset()
		for _, id := range a {
			e := g.Edge(id)
			uf.Union(e.U, e.V)
		}
		addedNow := 0
		for _, c := range active {
			e := g.Edge(c.id)
			if uf.Union(e.U, e.V) {
				c.inA = true
				a = append(a, c.id)
				addedNow++
			}
			// Claim 4.3 either way: every cut crossed by an active candidate
			// is covered by the end of the iteration — if the candidate was
			// rejected it closed a cycle in A, and a cycle crosses every cut
			// an even number of times, so another A-edge covers each cut.
			// Each flip pushes the decrement through the transpose, so every
			// crossing candidate's cached ce stays exact.
			for _, ci := range c.cuts {
				if !covered[ci] {
					covered[ci] = true
					uncovered--
					for _, cj := range cutCands[ci] {
						cands[cj].ce--
					}
				}
			}
		}

		// Per-iteration round charge (§4.1): O(D) for the global max, the
		// Kutten–Peleg MST of Line 4, and O(D + n_i) to disseminate the
		// added edges.
		acc.Charge("iteration aggregation", 2*d)
		acc.Charge("iteration MST filter", rounds.MSTKuttenPeleg(n, int(d)))
		acc.Charge("learn added edges", d+int64(addedNow))

		itersAtThisP++
		if itersAtThisP >= phaseLen*logn && pExp > 0 {
			pExp--
			itersAtThisP = 0
		}
	}
	sort.Ints(a)
	res.Added = a
	res.Weight = g.WeightOf(a)
	res.Rounds = acc.Total()
	opts.Phase.emit(PhaseEvent{
		Phase: "augment", Level: k, Start: loopStart,
		Rounds: res.Rounds, Iterations: res.Iterations, Items: len(res.Added),
	})
	return res, nil
}
