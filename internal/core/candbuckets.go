package core

// infExp is the rounded cost-effectiveness exponent of a weight-0 edge
// (treated as +infinity per §2.1). Shared by the 3-ECSS and Aug_k loops.
const infExp = 1 << 20

// nExpBuckets spans every value tap.RoundedExp can return (−62..63, at
// indices 0..125) plus the infExp sentinel at index 126.
const nExpBuckets = 127

func expBucketIdx(exp int) int {
	if exp == infExp {
		return 126
	}
	return exp + 62
}

// expBuckets maintains the candidate set of the 3-ECSS loop bucketed by
// rounded cost-effectiveness exponent, so each iteration's "max exponent +
// pool of candidates attaining it" (Lines 1–2) costs O(pool + stale
// entries) instead of a full candidate rescan. Deletion is lazy: cur[] is
// authoritative, list entries are dropped when their bucket is next
// inspected, and every exponent change appends at most one entry — so the
// total compaction work is bounded by the total number of cover-count
// updates the CoverIndex reports.
type expBuckets struct {
	lists [nExpBuckets][]int32
	cur   []int8  // authoritative bucket index per candidate, -1 = none
	stamp []int32 // per-candidate round mark, dedupes re-entered candidates
	round int32
	max   int // highest possibly-nonempty bucket, -1 when all empty
}

func newExpBuckets(n int) *expBuckets {
	b := &expBuckets{
		cur:   make([]int8, n),
		stamp: make([]int32, n),
		max:   -1,
	}
	for i := range b.cur {
		b.cur[i] = -1
	}
	return b
}

// update moves candidate ci to the bucket of exp.
func (b *expBuckets) update(ci int, exp int) {
	idx := expBucketIdx(exp)
	if int(b.cur[ci]) == idx {
		return
	}
	b.cur[ci] = int8(idx)
	b.lists[idx] = append(b.lists[idx], int32(ci))
	if idx > b.max {
		b.max = idx
	}
}

// remove drops candidate ci (selected, or cover count fell to zero).
func (b *expBuckets) remove(ci int) { b.cur[ci] = -1 }

// pool appends to dst the edge IDs of every candidate in the highest
// non-empty bucket (compacting stale entries as it descends) and returns
// the extended slice with the bucket's exponent. dst order is list order —
// callers needing the legacy ascending-ID order sort it. An empty dst with
// exp 0 means no candidate has a positive cover count.
func (b *expBuckets) pool(dst []int, candIDs []int) ([]int, int) {
	b.round++
	for b.max >= 0 {
		l := b.lists[b.max]
		kept := l[:0]
		for _, ci := range l {
			if int(b.cur[ci]) != b.max || b.stamp[ci] == b.round {
				continue
			}
			b.stamp[ci] = b.round
			kept = append(kept, ci)
			dst = append(dst, candIDs[ci])
		}
		b.lists[b.max] = kept
		if len(kept) > 0 {
			exp := b.max - 62
			if b.max == 126 {
				exp = infExp
			}
			return dst, exp
		}
		b.max--
	}
	return dst, 0
}
